package main

import (
	"testing"
	"time"
)

func TestRun(t *testing.T) {
	if err := run("slot10a:12", 4, 8*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadModule(t *testing.T) {
	if err := run("bogus", 4, time.Millisecond, 1); err == nil {
		t.Fatal("expected error")
	}
}
