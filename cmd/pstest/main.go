// Command pstest measures and reports power and energy at increasing
// intervals for testing purposes — the counterpart of the paper's pstest
// utility (Section III-C), operating on a simulated bench setup.
//
// Usage:
//
//	pstest [-module slot10a:12] [-amps 8] [-max 8s] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/simsetup"
)

func main() {
	module := flag.String("module", "slot10a:12", "sensor module as kind:volts")
	amps := flag.Float64("amps", 8, "bench load current in amperes")
	maxIv := flag.Duration("max", 8*time.Second, "longest measurement interval")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	if err := run(*module, *amps, *maxIv, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "pstest:", err)
		os.Exit(1)
	}
}

func run(module string, amps float64, maxIv time.Duration, seed uint64) error {
	dev, err := simsetup.BenchDevice(module, amps, seed)
	if err != nil {
		return err
	}
	ps, err := core.Open(dev)
	if err != nil {
		return err
	}
	defer ps.Close()

	fmt.Printf("pstest: module %s, load %.2f A\n", module, amps)
	fmt.Printf("%12s %12s %12s %12s\n", "interval", "joules", "watts", "samples")
	for iv := time.Millisecond; iv <= maxIv; iv *= 2 {
		first := ps.Read()
		ps.Advance(iv)
		second := ps.Read()
		fmt.Printf("%12v %12.4f %12.3f %12d\n",
			iv,
			core.Joules(first, second, -1),
			core.Watts(first, second, -1),
			second.Samples-first.Samples)
	}
	return nil
}
