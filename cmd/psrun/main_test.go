package main

import "testing"

func TestWorkloads(t *testing.T) {
	// The GPU FMA workloads take a couple of virtual seconds each; the SSD
	// ones run 10 virtual seconds. All should succeed.
	for _, w := range []string{"fma-nvidia", "fma-amd", "beamformer"} {
		if err := run(w, 1); err != nil {
			t.Fatalf("%s: %v", w, err)
		}
	}
}

func TestSSDWorkload(t *testing.T) {
	if err := run("ssd-read", 1); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownWorkload(t *testing.T) {
	if err := run("mine-bitcoin", 1); err == nil {
		t.Fatal("expected error")
	}
}
