// Command psrun connects to a PowerSensor3, runs the requested workload,
// and reports the total energy consumed after execution — the counterpart
// of the paper's psrun utility (Section III-C). Where the real psrun execs
// an arbitrary program, this simulated version runs one of the paper's
// workloads on the matching simulated device.
//
// Usage:
//
//	psrun [-seed 1] <workload>
//
// Workloads:
//
//	fma-nvidia     synthetic FMA kernel on the RTX 4000 Ada (Fig. 7a)
//	fma-amd        synthetic FMA kernel on the AMD W7700 (Fig. 7b)
//	fma-jetson     synthetic FMA kernel on the Jetson AGX Orin
//	beamformer     one Tensor-Core Beamformer launch on the RTX 4000 Ada
//	ssd-read       10 s of 128 KiB random reads on the simulated SSD
//	ssd-write      10 s of 4 KiB random writes on the simulated SSD
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/fio"
	"repro/internal/kernels"
	"repro/internal/simsetup"
)

func main() {
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: psrun [-seed N] <workload>")
		fmt.Fprintln(os.Stderr, "workloads: fma-nvidia fma-amd fma-jetson beamformer ssd-read ssd-write")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *seed); err != nil {
		fmt.Fprintln(os.Stderr, "psrun:", err)
		os.Exit(1)
	}
}

func run(workload string, seed uint64) error {
	switch workload {
	case "fma-nvidia":
		return runGPU("rtx4000ada", seed, 2*time.Second, false)
	case "fma-amd":
		return runGPU("w7700", seed, 2*time.Second, false)
	case "fma-jetson":
		return runGPU("jetson", seed, 2*time.Second, false)
	case "beamformer":
		return runGPU("rtx4000ada", seed, 0, true)
	case "ssd-read":
		return runSSD(seed, fio.RandRead, 128)
	case "ssd-write":
		return runSSD(seed, fio.RandWrite, 4)
	default:
		return fmt.Errorf("unknown workload %q", workload)
	}
}

func runGPU(device string, seed uint64, fmaDuration time.Duration, beamformer bool) error {
	r, err := simsetup.GPURig(device, seed)
	if err != nil {
		return err
	}
	defer r.Close()
	r.Idle(100 * time.Millisecond)

	var dur time.Duration
	var joules float64
	if beamformer {
		cfg := kernels.Space()[300]
		k := cfg.Kernel(r.GPU.Spec(), r.GPU.Spec().BoostClockMHz, kernels.DefaultProblem())
		dur, joules = r.MeasureKernel(k)
		fmt.Printf("workload: Tensor-Core Beamformer variant %s\n", cfg)
	} else {
		k := kernels.SyntheticFMA(r.GPU.Spec(), fmaDuration)
		dur, joules = r.MeasureKernel(k)
		fmt.Printf("workload: synthetic FMA on %s\n", r.GPU.Spec().Name)
	}
	fmt.Printf("execution time : %v\n", dur.Round(time.Microsecond))
	fmt.Printf("energy consumed: %.2f J\n", joules)
	fmt.Printf("average power  : %.2f W\n", joules/dur.Seconds())
	return nil
}

func runSSD(seed uint64, pattern fio.Pattern, blockKiB int) error {
	r, err := simsetup.NewDiskRig(seed, true)
	if err != nil {
		return err
	}
	defer r.PS.Close()

	before := r.PS.Read()
	res := fio.Run(r.Disk, fio.Job{
		Pattern: pattern, BlockKiB: blockKiB, IODepth: 8,
		Runtime: 10 * time.Second, Seed: seed,
	}, r.Sync)
	after := r.PS.Read()

	fmt.Printf("workload: fio %s bs=%dKiB iodepth=8 10s\n", pattern, blockKiB)
	fmt.Printf("bandwidth      : %.0f MiB/s\n", res.MeanMiBps)
	fmt.Printf("IOPS           : %.0f\n", res.IOPS)
	fmt.Printf("energy consumed: %.2f J\n", core.Joules(before, after, -1))
	fmt.Printf("average power  : %.2f W\n", core.Watts(before, after, -1))
	return nil
}
