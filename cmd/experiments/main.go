// Command experiments regenerates every table and figure of the paper's
// evaluation from the simulated measurement chain.
//
// Usage:
//
//	experiments [-quick] [name ...]
//
// Names: table1 fig4 table2 stability fig5 fig7a fig7b fig8 fig10 fig12a
// fig12b (default: all). -quick shrinks sample counts and search spaces so
// the full set finishes in seconds; without it the paper-sized runs execute.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
)

type runner struct {
	quick bool
	rep   *report.Builder
}

func main() {
	quick := flag.Bool("quick", false, "reduced sample counts and spaces")
	out := flag.String("out", "", "also write a Markdown report to this file")
	flag.Parse()

	names := flag.Args()
	if len(names) == 0 {
		names = []string{"table1", "fig4", "table2", "stability", "fig5",
			"fig7a", "fig7b", "fig8", "fig10", "fig12a", "fig12b",
			"ssdhires", "ablation"}
	}
	r := runner{quick: *quick}
	if *out != "" {
		r.rep = report.New("PowerSensor3 reproduction — generated results")
	}
	for _, name := range names {
		if err := r.run(name); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	if r.rep != nil {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := r.rep.Write(f, time.Now()); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println("report written to", *out)
	}
}

// emit prints a table (and optional plot) and mirrors it into the report.
func (r runner) emit(heading string, t experiments.Table, plot string) {
	fmt.Println(t.Render())
	if plot != "" {
		fmt.Println(plot)
	}
	if r.rep != nil {
		r.rep.AddTable(heading, t)
		if plot != "" {
			r.rep.AddText(heading+" (plot)", "```\n"+plot+"```")
		}
	}
}

func (r runner) run(name string) error {
	start := time.Now()
	defer func() {
		fmt.Printf("[%s finished in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}()
	switch name {
	case "table1":
		r.emit("Table I", experiments.RunTable1().Table(), "")
	case "fig4":
		opts := experiments.DefaultFig4Options()
		if r.quick {
			opts.Samples = 8 * 1024
			opts.StepA = 2.5
		}
		res, err := experiments.RunFig4(opts)
		if err != nil {
			return err
		}
		r.emit("Fig. 4", res.Table(), res.Plot())
	case "table2":
		opts := experiments.Table2Options{Samples: 128 * 1024}
		if r.quick {
			opts.Samples = 16 * 1024
		}
		res, err := experiments.RunTable2(opts)
		if err != nil {
			return err
		}
		r.emit("Table II", res.Table(), "")
	case "stability":
		opts := experiments.DefaultStabilityOptions()
		if r.quick {
			opts.Duration = 2 * time.Hour
			opts.Samples = 16 * 1024
		}
		res, err := experiments.RunStability(opts)
		if err != nil {
			return err
		}
		r.emit("Long-term stability", res.Table(), "")
	case "fig5":
		res, err := experiments.RunFig5()
		if err != nil {
			return err
		}
		r.emit("Fig. 5", res.Table(), res.Plot())
	case "fig7a":
		res, err := experiments.RunFig7a(r.fig7Options())
		if err != nil {
			return err
		}
		r.emit("Fig. 7a", res.Table(), res.Plot())
	case "fig7b":
		res, err := experiments.RunFig7b(r.fig7Options())
		if err != nil {
			return err
		}
		r.emit("Fig. 7b", res.Table(), res.Plot())
	case "fig8":
		res, err := experiments.RunFig8(r.tuningOptions())
		if err != nil {
			return err
		}
		r.emit("Fig. 8", res.Table(), res.Plot())
	case "fig10":
		res, err := experiments.RunFig10(r.tuningOptions())
		if err != nil {
			return err
		}
		r.emit("Fig. 10", res.Table(), res.Plot())
	case "fig12a":
		opts := experiments.DefaultFig12aOptions()
		if r.quick {
			opts.Sizes = []int{1, 8, 64, 512, 4096}
			opts.PerPoint = 2 * time.Second
		}
		res, err := experiments.RunFig12a(opts)
		if err != nil {
			return err
		}
		r.emit("Fig. 12a", res.Table(), res.Plot())
	case "fig12b":
		opts := experiments.DefaultFig12bOptions()
		if r.quick {
			opts.Duration = 60 * time.Second
		}
		res, err := experiments.RunFig12b(opts)
		if err != nil {
			return err
		}
		r.emit("Fig. 12b", res.Table(), res.Plot())
	case "ssdhires":
		opts := experiments.SSDHiResOptions{Window: 4 * time.Second}
		if r.quick {
			opts.Window = 2 * time.Second
		}
		res, err := experiments.RunSSDHiRes(opts)
		if err != nil {
			return err
		}
		r.emit("Sub-millisecond SSD analysis", res.Table(), res.Plot())
	case "ablation":
		opts := experiments.AblationRateOptions{Kernels: 20}
		if r.quick {
			opts.Kernels = 8
		}
		res, err := experiments.RunAblationSamplingRate(opts)
		if err != nil {
			return err
		}
		r.emit("Sampling-rate ablation", res.Table(), "")
		avg := experiments.RunAblationAveraging()
		fmt.Println("Averaging-depth trade (firmware design point = 6 samples):")
		for _, row := range avg.Rows {
			marker := " "
			if row.SamplesPerAvg == 6 {
				marker = "*"
			}
			fmt.Printf("  %s %2d samples → %6.1f kHz, noise std %.2f W\n",
				marker, row.SamplesPerAvg, row.OutputRateHz/1000, row.NoiseStdW)
		}
		fmt.Println()
	default:
		return fmt.Errorf("unknown experiment (have table1 fig4 table2 stability fig5 fig7a fig7b fig8 fig10 fig12a fig12b ssdhires ablation)")
	}
	return nil
}

func (r runner) fig7Options() experiments.Fig7Options {
	opts := experiments.DefaultFig7Options()
	if r.quick {
		opts.KernelDuration = time.Second
		opts.Tail = 800 * time.Millisecond
	}
	return opts
}

func (r runner) tuningOptions() experiments.TuningOptions {
	if r.quick {
		return experiments.TuningOptions{Subsample: 16, Trials: 3}
	}
	return experiments.TuningOptions{}
}
