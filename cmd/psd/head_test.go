// Head-mode daemon tests: the -federate flag grammar and the wired head
// (setupHead, the exact assembly runHead serves) over real leaf daemons.

package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/federation"
)

// TestParseLeaves pins the -federate grammar: name=URL entries, bare
// host:port auto-naming, the @file form with comments, and the rejects.
func TestParseLeaves(t *testing.T) {
	leaves, err := parseLeaves("rack0=10.0.0.1:9120, rack1=http://10.0.0.2:9120 ,10.0.0.3:9120")
	if err != nil {
		t.Fatal(err)
	}
	want := []federation.Leaf{
		{Name: "rack0", URL: "10.0.0.1:9120"},
		{Name: "rack1", URL: "http://10.0.0.2:9120"},
		{Name: "10.0.0.3:9120", URL: "10.0.0.3:9120"},
	}
	if len(leaves) != len(want) {
		t.Fatalf("parsed %d leaves, want %d", len(leaves), len(want))
	}
	for i := range want {
		if leaves[i] != want[i] {
			t.Errorf("leaf %d = %+v, want %+v", i, leaves[i], want[i])
		}
	}

	path := filepath.Join(t.TempDir(), "leaves.conf")
	conf := "# production racks\nrack0=10.0.0.1:9120\n\nrack1=10.0.0.2:9120 # spare\n"
	if err := os.WriteFile(path, []byte(conf), 0o644); err != nil {
		t.Fatal(err)
	}
	leaves, err = parseLeaves("@" + path)
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) != 2 || leaves[0].Name != "rack0" || leaves[1].Name != "rack1" ||
		leaves[1].URL != "10.0.0.2:9120" {
		t.Errorf("file form parsed %+v", leaves)
	}

	for _, bad := range []string{"", " , ", "=url", "name=", "@" + filepath.Join(t.TempDir(), "missing")} {
		if _, err := parseLeaves(bad); err == nil {
			t.Errorf("parseLeaves(%q) accepted", bad)
		}
	}
}

// TestServeHead wires a head exactly as runHead does (minus the
// listener) over two real leaf daemons built by setup, and exercises the
// merged endpoints end to end.
func TestServeHead(t *testing.T) {
	leafURLs := make([]string, 2)
	for i, spec := range []string{"ga=synth,gb=synth", "ga=synth"} {
		mgr, handler, err := setup(spec, 1, 0, 5*time.Millisecond, 20, 256, 1, 0,
			100*time.Millisecond, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer mgr.Close()
		srv := httptest.NewServer(handler)
		defer srv.Close()
		leafURLs[i] = srv.URL
	}

	head, handler, err := setupHead([]federation.Leaf{
		{Name: "left", URL: leafURLs[0]},
		{Name: "right", URL: leafURLs[1]},
	}, time.Second, 500*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer head.Stop()

	// setupHead's synchronous first round means the first scrape already
	// sees every leaf, without Start ever running.
	if up := head.UpCount(); up != 2 {
		t.Fatalf("UpCount after setupHead = %d, want 2", up)
	}

	srv := httptest.NewServer(handler)
	defer srv.Close()
	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, line := range []string{
		`powersensor_leaf_up{leaf="left"} 1`,
		`powersensor_leaf_up{leaf="right"} 1`,
		`powersensor_head_leaves 2`,
	} {
		if !strings.Contains(body, line+"\n") {
			t.Errorf("/metrics missing %q", line)
		}
	}
	// The duplicate station name serves once per owning leaf.
	for _, leaf := range []string{"left", "right"} {
		if !strings.Contains(body, `powersensor_board_watts{leaf="`+leaf+`",device="ga"}`) {
			t.Errorf("/metrics missing ga under leaf %s", leaf)
		}
	}

	code, body = get("/api/fleet")
	if code != http.StatusOK {
		t.Fatalf("/api/fleet: status %d", code)
	}
	var v federation.HeadFleetJSON
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if len(v.Leaves) != 2 || len(v.Devices) != 3 {
		t.Fatalf("merged view: %d leaves %d devices, want 2 and 3", len(v.Leaves), len(v.Devices))
	}

	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz: status %d", code)
	}
	code, body = get("/api/device/left/ga/trace?format=json&points=2")
	if code != http.StatusOK || !strings.Contains(body, `"points"`) {
		t.Errorf("proxied trace: status %d body %q", code, body)
	}
	if code, _ := get("/api/device/elsewhere/ga/trace"); code != http.StatusNotFound {
		t.Errorf("unknown leaf proxy: status %d, want 404", code)
	}
}

// TestNewHTTPServerTimeouts pins the slow-loris limits every psd
// listener gets — leaf, head and debug alike.
func TestNewHTTPServerTimeouts(t *testing.T) {
	srv := newHTTPServer(":0", http.NotFoundHandler())
	if srv.ReadHeaderTimeout <= 0 || srv.ReadTimeout <= 0 || srv.IdleTimeout <= 0 {
		t.Fatalf("server timeouts unset: header=%v read=%v idle=%v",
			srv.ReadHeaderTimeout, srv.ReadTimeout, srv.IdleTimeout)
	}
	if srv.WriteTimeout != 0 {
		t.Fatal("WriteTimeout set; trace/history downloads legitimately stream")
	}
}
