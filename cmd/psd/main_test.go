package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/simsetup"
)

// TestServeFleet wires the daemon exactly as run does (minus the
// listener) and exercises every endpoint against the default mixed fleet:
// four PowerSensor3 rigs plus two software meters (NVML and RAPL).
func TestServeFleet(t *testing.T) {
	mgr, handler, err := setup(simsetup.DefaultFleetSpec,
		1, 0, 5*time.Millisecond, 20, 4096, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	mgr.Start()
	defer mgr.Stop()

	srv := httptest.NewServer(handler)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, dev := range []string{"gpu0", "gpu1", "soc0", "ssd0", "gpu0sw", "cpu0"} {
		if !strings.Contains(body, `powersensor_joules_total{device="`+dev+`"} `) {
			t.Errorf("/metrics missing joules for %s", dev)
		}
	}
	// Per-backend kind and native rate are scrape labels.
	for _, want := range []string{
		`powersensor_source_info{device="gpu0",backend="powersensor3",kind="rtx4000ada"} 1`,
		`powersensor_source_info{device="gpu0sw",backend="nvml",kind="nvml"} 1`,
		`powersensor_source_info{device="cpu0",backend="rapl",kind="rapl"} 1`,
		`powersensor_source_rate_hz{device="gpu0"} 20000`,
		`powersensor_source_rate_hz{device="gpu0sw"} 10`,
		`powersensor_source_rate_hz{device="cpu0"} 1000`,
	} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("/metrics missing %q", want)
		}
	}
	code, body = get("/api/fleet")
	if code != http.StatusOK {
		t.Errorf("/api/fleet: status %d", code)
	}
	for _, want := range []string{`"backend": "powersensor3"`, `"backend": "nvml"`,
		`"backend": "rapl"`, `"rate_hz": 20000`, `"rate_hz": 1000`} {
		if !strings.Contains(body, want) {
			t.Errorf("/api/fleet missing %q", want)
		}
	}
	// Traces serve from hardware and software stations alike.
	if code, _ := get("/api/device/gpu1/trace?points=20"); code != http.StatusOK {
		t.Errorf("/api/device/gpu1/trace: status %d", code)
	}
	if code, _ := get("/api/device/cpu0/trace?points=20"); code != http.StatusOK {
		t.Errorf("/api/device/cpu0/trace: status %d", code)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz: status %d", code)
	}
}

func TestSetupBadSpec(t *testing.T) {
	if _, _, err := setup("gpu0=warp9", 1, 0, time.Millisecond, 20, 64, 0); err == nil {
		t.Fatal("bad spec accepted")
	}
}
