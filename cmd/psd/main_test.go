package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestServeFleet wires the daemon exactly as run does (minus the listener)
// and exercises every endpoint against a 4-station fleet.
func TestServeFleet(t *testing.T) {
	mgr, handler, err := setup("gpu0=rtx4000ada,gpu1=w7700,soc0=jetson,ssd0=ssd",
		1, 0, 5*time.Millisecond, 20, 4096, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	mgr.Start()
	defer mgr.Stop()

	srv := httptest.NewServer(handler)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, dev := range []string{"gpu0", "gpu1", "soc0", "ssd0"} {
		if !strings.Contains(body, `powersensor_joules_total{device="`+dev+`"} `) {
			t.Errorf("/metrics missing joules for %s", dev)
		}
	}
	if code, _ := get("/api/fleet"); code != http.StatusOK {
		t.Errorf("/api/fleet: status %d", code)
	}
	if code, _ := get("/api/device/gpu1/trace?points=20"); code != http.StatusOK {
		t.Errorf("/api/device/gpu1/trace: status %d", code)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz: status %d", code)
	}
}

func TestSetupBadSpec(t *testing.T) {
	if _, _, err := setup("gpu0=warp9", 1, 0, time.Millisecond, 20, 64, 0); err == nil {
		t.Fatal("bad spec accepted")
	}
}
