package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/simsetup"
)

// TestServeFleet wires the daemon exactly as run does (minus the
// listener) and exercises every endpoint against the default mixed fleet:
// four PowerSensor3 rigs, two software meters (NVML and RAPL) and two
// derived pipeline views (a 1 kHz resampled+recalibrated twin of gpu0's
// rig, and the RAPL meter rate-limited to 100 Hz).
func TestServeFleet(t *testing.T) {
	mgr, handler, err := setup(simsetup.DefaultFleetSpec,
		1, 0, 5*time.Millisecond, 20, 4096, 8, 0, 500*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	mgr.Start()
	defer mgr.Stop()

	srv := httptest.NewServer(handler)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, dev := range []string{"gpu0", "gpu1", "soc0", "ssd0", "gpu0sw", "cpu0",
		"gpu0lo", "cpu0lim"} {
		if !strings.Contains(body, `powersensor_joules_total{device="`+dev+`"} `) {
			t.Errorf("/metrics missing joules for %s", dev)
		}
	}
	// Per-backend kind and native rate are scrape labels; derived views
	// carry their stage-suffixed backend and rewritten rate.
	for _, want := range []string{
		`powersensor_source_info{device="gpu0",backend="powersensor3",kind="rtx4000ada"} 1`,
		`powersensor_source_info{device="gpu0sw",backend="nvml",kind="nvml"} 1`,
		`powersensor_source_info{device="cpu0",backend="rapl",kind="rapl"} 1`,
		`powersensor_source_info{device="gpu0lo",backend="powersensor3+resample+calib",kind="rtx4000ada@0|resample:1000|calib:0.98:0.25"} 1`,
		`powersensor_source_info{device="cpu0lim",backend="rapl+ratelimit",kind="rapl@5|ratelimit:100"} 1`,
		`powersensor_source_rate_hz{device="gpu0"} 20000`,
		`powersensor_source_rate_hz{device="gpu0sw"} 10`,
		`powersensor_source_rate_hz{device="cpu0"} 1000`,
		`powersensor_source_rate_hz{device="gpu0lo"} 1000`,
		`powersensor_source_rate_hz{device="cpu0lim"} 100`,
	} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The rate-limited meter accounts its sampling overhead as a series.
	if !strings.Contains(body, `powersensor_source_overhead_seconds{device="cpu0lim"} `) {
		t.Error("/metrics missing cpu0lim sampling overhead")
	}
	// Self-telemetry rides every scrape: the warmup steps already fed the
	// fold histogram, the default fleet's pipe stations fed the stage
	// histograms, and build info identifies the daemon.
	for _, want := range []string{
		`powersensor_self_ingest_fold_seconds_bucket{le="+Inf"} `,
		`powersensor_self_stage_read_seconds_bucket{stage="resample",le="+Inf"} `,
		`powersensor_self_stage_read_seconds_bucket{stage="ratelimit",le="+Inf"} `,
		`powersensor_self_events_total `,
		`powersensor_build_info{version="dev",go="`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing self-telemetry %q", want)
		}
	}
	code, body = get("/api/fleet")
	if code != http.StatusOK {
		t.Errorf("/api/fleet: status %d", code)
	}
	for _, want := range []string{`"backend": "powersensor3"`, `"backend": "nvml"`,
		`"backend": "rapl"`, `"backend": "powersensor3+resample+calib"`,
		`"backend": "rapl+ratelimit"`, `"rate_hz": 20000`, `"rate_hz": 1000`} {
		if !strings.Contains(body, want) {
			t.Errorf("/api/fleet missing %q", want)
		}
	}
	// Traces serve from hardware, software and derived stations alike.
	if code, _ := get("/api/device/gpu1/trace?points=20"); code != http.StatusOK {
		t.Errorf("/api/device/gpu1/trace: status %d", code)
	}
	if code, _ := get("/api/device/gpu0lo/trace?points=20"); code != http.StatusOK {
		t.Errorf("/api/device/gpu0lo/trace: status %d", code)
	}
	if code, _ := get("/api/device/cpu0/trace?points=20"); code != http.StatusOK {
		t.Errorf("/api/device/cpu0/trace: status %d", code)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz: status %d", code)
	}
}

// TestEventsFreshBoot wires a daemon the way run does and asserts the
// acceptance contract of the lifecycle log: /api/events on a fresh boot
// carries one adopt event per default-fleet station.
func TestEventsFreshBoot(t *testing.T) {
	mgr, handler, err := setup(simsetup.DefaultFleetSpec,
		1, 0, 5*time.Millisecond, 20, 4096, 8, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	srv := httptest.NewServer(handler)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/events: status %d", resp.StatusCode)
	}
	var log struct {
		Total   uint64 `json:"total"`
		Dropped uint64 `json:"dropped"`
		Events  []struct {
			Seq     uint64 `json:"seq"`
			Type    string `json:"type"`
			Station string `json:"station"`
			Kind    string `json:"kind"`
		} `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&log); err != nil {
		t.Fatal(err)
	}
	adopted := map[string]bool{}
	for _, ev := range log.Events {
		if ev.Type == "adopt" {
			adopted[ev.Station] = true
		}
	}
	for _, dev := range []string{"gpu0", "gpu1", "soc0", "ssd0", "gpu0sw", "cpu0",
		"gpu0lo", "cpu0lim"} {
		if !adopted[dev] {
			t.Errorf("/api/events missing adopt event for %s (got %+v)", dev, log.Events)
		}
	}
	if log.Dropped != 0 || log.Total != uint64(len(log.Events)) {
		t.Errorf("fresh boot: total=%d dropped=%d events=%d, want all retained",
			log.Total, log.Dropped, len(log.Events))
	}
}

// TestNewLogger covers the -log-format wiring: both formats carry
// structured fields, unknown formats fail fast.
func TestNewLogger(t *testing.T) {
	var buf strings.Builder
	logger, err := newLogger("text", &buf)
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("adopted station", "station", "gpu9", "kind", "synth")
	if out := buf.String(); !strings.Contains(out, "station=gpu9") ||
		!strings.Contains(out, "kind=synth") {
		t.Errorf("text log missing structured fields: %q", out)
	}
	buf.Reset()
	logger, err = newLogger("json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("serving", "addr", ":9120")
	var rec map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &rec); err != nil {
		t.Fatalf("json log is not JSON: %v (%q)", err, buf.String())
	}
	if rec["addr"] != ":9120" || rec["msg"] != "serving" {
		t.Errorf("json log fields wrong: %v", rec)
	}
	if _, err := newLogger("yaml", &buf); err == nil {
		t.Error("bad log format accepted")
	}
}

// TestDebugMux proves the pprof surface is mounted on its own mux — and
// only there.
func TestDebugMux(t *testing.T) {
	srv := httptest.NewServer(debugMux())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index: status %d body %q", resp.StatusCode, body)
	}

	// The scrape handler must not expose it.
	mgr, handler, err := setup("gpu0=synth", 1, 0, time.Millisecond, 20, 64, 8, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	main := httptest.NewServer(handler)
	defer main.Close()
	resp, err = http.Get(main.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof reachable through scrape port: status %d", resp.StatusCode)
	}
}

func TestSetupBadSpec(t *testing.T) {
	if _, _, err := setup("gpu0=warp9", 1, 0, time.Millisecond, 20, 64, 8, 0, 0, nil); err == nil {
		t.Fatal("bad spec accepted")
	}
}

// TestAdminAddRemove drives the lifecycle endpoints against a serving
// daemon: a station hot-added over HTTP starts serving scrape series, a
// retired one disappears, and the churn counters follow along.
func TestAdminAddRemove(t *testing.T) {
	// Paced at real time so driver goroutines sleep between slices and
	// the HTTP round-trips get CPU on small hosts.
	mgr, handler, err := setup("gpu0=synth", 1, 1, 5*time.Millisecond,
		20, 4096, 8, 0, 100*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	mgr.Start()
	defer mgr.Stop()
	srv := httptest.NewServer(handler)
	defer srv.Close()

	post := func(path string) (int, string) {
		resp, err := http.Post(srv.URL+path, "application/x-www-form-urlencoded", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := post("/api/fleet/add?name=hot0&kind=synth"); code != http.StatusOK {
		t.Fatalf("add hot0: status %d: %s", code, body)
	}
	if mgr.Size() != 2 || mgr.Device("hot0") == nil {
		t.Fatalf("hot0 not adopted: size=%d", mgr.Size())
	}
	_, body := get("/metrics")
	for _, want := range []string{
		`powersensor_source_info{device="hot0",backend="synthetic",kind="synth"} 1`,
		"powersensor_fleet_adopted_total 2",
		"powersensor_fleet_retired_total 0",
	} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("/metrics after add missing %q", want)
		}
	}

	// Error paths: duplicate name, unknown kind, missing params, unknown
	// removal target, wrong method.
	if code, _ := post("/api/fleet/add?name=hot0&kind=synth"); code != http.StatusConflict {
		t.Errorf("duplicate add: status %d, want %d", code, http.StatusConflict)
	}
	if code, _ := post("/api/fleet/add?name=x&kind=warp9"); code != http.StatusBadRequest {
		t.Errorf("unknown kind: status %d, want %d", code, http.StatusBadRequest)
	}
	if code, _ := post("/api/fleet/add?name=x&kind=synth%7Cresample:0"); code != http.StatusBadRequest {
		t.Errorf("bad stage arg: status %d, want %d", code, http.StatusBadRequest)
	}
	if code, _ := post("/api/fleet/add"); code != http.StatusBadRequest {
		t.Errorf("missing params: status %d, want %d", code, http.StatusBadRequest)
	}
	if code, _ := post("/api/fleet/remove/nope"); code != http.StatusNotFound {
		t.Errorf("remove unknown: status %d, want %d", code, http.StatusNotFound)
	}
	// A GET on the add endpoint falls through to the read-only exporter
	// (the catch-all route), which has no such path: the write surface is
	// unreachable without POST.
	if code, _ := get("/api/fleet/add?name=y&kind=synth"); code != http.StatusNotFound {
		t.Errorf("GET on add: status %d, want %d", code, http.StatusNotFound)
	}
	if mgr.Device("y") != nil {
		t.Error("GET on add adopted a station")
	}

	// Hot-add accepts full kindspecs: a piped derived view over HTTP
	// (the pipe URL-encoded as %7C).
	if code, body := post("/api/fleet/add?name=hot1&kind=synth%7Cresample:1000%7Ccalib:0.5"); code != http.StatusOK {
		t.Fatalf("add piped hot1: status %d: %s", code, body)
	}
	_, body = get("/metrics")
	if !strings.Contains(body,
		`powersensor_source_info{device="hot1",backend="synthetic+resample+calib",kind="synth|resample:1000|calib:0.5"} 1`+"\n") {
		t.Error("/metrics missing piped hot1 derived backend")
	}
	if code, _ := post("/api/fleet/remove/hot1"); code != http.StatusOK {
		t.Error("remove piped hot1 failed")
	}

	if code, body := post("/api/fleet/remove/hot0"); code != http.StatusOK {
		t.Fatalf("remove hot0: status %d: %s", code, body)
	}
	if mgr.Size() != 1 || mgr.Device("hot0") != nil {
		t.Fatalf("hot0 not retired: size=%d", mgr.Size())
	}
	_, body = get("/metrics")
	if strings.Contains(body, `device="hot0"`) {
		t.Error("/metrics still carries retired hot0 series")
	}
	if !strings.Contains(body, "powersensor_fleet_retired_total 2\n") {
		t.Error("/metrics retired counter did not account both removals")
	}
}

// TestEnergyEndpointThroughDaemon wires the daemon as run does and
// exercises the windowed energy API end to end: the warmed default fleet
// answers a real window with positive joules, an empty window is exactly
// 0 J, and the history trace export round-trips. With -history negative
// the tier is off but the endpoint still answers from the ring.
func TestEnergyEndpointThroughDaemon(t *testing.T) {
	mgr, handler, err := setup("gpu0=synth", 1, 0, 5*time.Millisecond,
		20, 4096, 8, 0, 500*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	srv := httptest.NewServer(handler)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	var ans struct {
		Joules    float64 `json:"joules"`
		MeanWatts float64 `json:"mean_watts"`
	}
	code, body := get("/api/device/gpu0/energy?from=0.1&to=0.4")
	if code != http.StatusOK {
		t.Fatalf("/energy: status %d: %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &ans); err != nil {
		t.Fatal(err)
	}
	if ans.Joules <= 0 || ans.MeanWatts <= 0 {
		t.Errorf("energy over [0.1s, 0.4s] = %v J at %v W, want > 0", ans.Joules, ans.MeanWatts)
	}
	if code, body = get("/api/device/gpu0/energy?from=0.2&to=0.2"); code != http.StatusOK {
		t.Fatalf("/energy empty window: status %d", code)
	}
	if err := json.Unmarshal([]byte(body), &ans); err != nil {
		t.Fatal(err)
	}
	if ans.Joules != 0 || ans.MeanWatts != 0 {
		t.Errorf("empty window = %v J at %v W, want exactly 0/0", ans.Joules, ans.MeanWatts)
	}
	if code, body = get("/api/device/gpu0/history?points=100"); code != http.StatusOK ||
		!strings.Contains(body, "time_s,w0,total,marker") {
		t.Errorf("/history: status %d, body %.60q", code, body)
	}
	// The history tier's self families ride the daemon's scrape.
	if _, body = get("/metrics"); !strings.Contains(body, "powersensor_self_history_points ") {
		t.Error("/metrics missing history self-telemetry")
	}

	// -history -1: tier off, ring fallback still answers.
	mgrOff, handlerOff, err := setup("gpu0=synth", 1, 0, 5*time.Millisecond,
		20, 4096, 8, -1, 200*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mgrOff.Close()
	srvOff := httptest.NewServer(handlerOff)
	defer srvOff.Close()
	resp, err := http.Get(srvOff.URL + "/api/device/gpu0/energy?from=0.05&to=0.15")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("disabled-tier /energy: status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(raw, &ans); err != nil {
		t.Fatal(err)
	}
	if ans.Joules <= 0 {
		t.Errorf("disabled-tier energy = %v J, want ring-fallback > 0", ans.Joules)
	}
}
