// Command psd is the PowerSensor3 fleet daemon: it assembles a fleet of
// simulated measurement stations, drives each on its own goroutine, and
// serves the fleet's telemetry over HTTP — the service counterpart of the
// one-shot command line tools.
//
// Stations are heterogeneous: every backend is a streaming source
// (internal/source), so 20 kHz PowerSensor3 rigs serve next to the
// paper's software-meter baselines polled at their native rates.
//
// Usage:
//
//	psd [-listen :9120] [-fleet spec] [-seed 1] [-rate 1] [-slice 5ms]
//	    [-block 20] [-ring 4096] [-warmup 2s]
//
// Flags:
//
//	-listen  HTTP listen address (default :9120)
//	-fleet   comma-separated name=kindspec stations. The kindspec grammar —
//	         station kinds, "@index" seed pinning, and the "|"-separated
//	         derived-source pipe stages (resample, calib, ratelimit,
//	         smooth) — is documented in one place: simsetup.ParseFleet.
//	         The default is simsetup.DefaultFleetSpec, a mixed fleet of
//	         four PowerSensor3 rigs, two software meters and two derived
//	         views — including gpu0lo, a 1 kHz resampled + recalibrated
//	         view of the same rig gpu0 serves raw at 20 kHz.
//	-seed    base simulation seed; each station derives its own
//	-rate    virtual seconds simulated per wall second (1 = real time,
//	         0 = as fast as the host allows)
//	-slice   virtual-time quantum each station goroutine advances per
//	         iteration
//	-block   downsample window per ring point, in 20 kHz sample periods
//	         (20 → 1 ms points); each station derives its own block size
//	         from that window and its source's native rate
//	-ring    per-station ring capacity, in downsampled points
//	-warmup  virtual time advanced synchronously before serving, so the
//	         first scrape already sees data
//
// Endpoints:
//
//	GET  /metrics                     Prometheus text exposition
//	GET  /api/fleet                   JSON status of every station
//	GET  /api/device/{name}/trace     recent trace (?format=csv|json, ?points=N)
//	GET  /healthz                     liveness probe
//	POST /api/fleet/add               hot-add a station to the running fleet:
//	                                  name= and kind= (any -fleet kindspec,
//	                                  pipe stages included) as form or query
//	                                  parameters
//	POST /api/fleet/remove/{name}     retire a station: its driver stops, the
//	                                  final downsample block drains, and its
//	                                  series leave /metrics
//
// The admin endpoints make the serving fleet dynamic — stations come and
// go without restarting the daemon, mirroring rigs being recabled or
// vendor meters restarting. Churn is observable: /metrics carries
// powersensor_fleet_adopted_total and powersensor_fleet_retired_total,
// and scrapes during churn stay well-formed. For example:
//
//	$ curl -X POST 'localhost:9120/api/fleet/add?name=gpu2&kind=synth'
//	{"name":"gpu2","kind":"synth"}
//	$ curl -X POST localhost:9120/api/fleet/remove/gpu2
//	{"name":"gpu2","retired":true}
//
// A scrape looks like:
//
//	$ curl -s localhost:9120/metrics | grep -e gpu0 -e cpu0
//	powersensor_source_info{device="gpu0",backend="powersensor3",kind="rtx4000ada"} 1
//	powersensor_source_info{device="gpu0lo",backend="powersensor3+resample+calib",kind="rtx4000ada@0|resample:1000|calib:0.98:0.25"} 1
//	powersensor_source_info{device="cpu0",backend="rapl",kind="rapl"} 1
//	powersensor_source_rate_hz{device="gpu0"} 20000
//	powersensor_source_rate_hz{device="gpu0lo"} 1000
//	powersensor_source_rate_hz{device="cpu0"} 1000
//	powersensor_source_overhead_seconds{device="cpu0lim"} 0.00041...
//	powersensor_watts{device="gpu0",pair="2",channel="pcie8pin"} 55.88...
//	powersensor_watts{device="cpu0",pair="0",channel="package"} 47.3...
//	powersensor_board_watts{device="gpu0"} 67.7...
//	powersensor_joules_total{device="gpu0"} 154.9...
//	powersensor_samples_total{device="gpu0"} 40000
//	...
//
// The raw 20 kHz station and its 1 kHz derived view serve concurrently,
// each paced by its own (stage-rewritten) rate; the rate-limited meter's
// cumulative sampling overhead — the monitoring footprint the throttle
// bounds — is a first-class scrape series.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/export"
	"repro/internal/fleet"
	"repro/internal/simsetup"
)

func main() {
	listen := flag.String("listen", ":9120", "HTTP listen address")
	spec := flag.String("fleet", simsetup.DefaultFleetSpec,
		"fleet spec: comma-separated name=kindspec (grammar: simsetup.ParseFleet)")
	seed := flag.Uint64("seed", 1, "base simulation seed")
	rate := flag.Float64("rate", 1, "virtual seconds per wall second (0 = unpaced)")
	slice := flag.Duration("slice", 5*time.Millisecond, "virtual-time quantum per iteration")
	block := flag.Int("block", 20, "sample sets averaged per ring point")
	ring := flag.Int("ring", 4096, "per-station ring capacity in points")
	warmup := flag.Duration("warmup", 2*time.Second, "virtual time simulated before serving")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: psd [flags]; see -h")
		os.Exit(2)
	}
	if *rate < 0 {
		fmt.Fprintln(os.Stderr, "psd: -rate must be >= 0 (0 = unpaced)")
		os.Exit(2)
	}
	if err := run(*listen, *spec, *seed, *rate, *slice, *block, *ring, *warmup); err != nil {
		fmt.Fprintln(os.Stderr, "psd:", err)
		os.Exit(1)
	}
}

// admin serves the fleet lifecycle: hot-adding and retiring stations on
// the running manager. It builds station sources the same way the -fleet
// flag does (simsetup.BuildStation, so pipe-stage kindspecs work over
// HTTP too), deriving each new station's seed from the daemon's base
// seed and a monotonic adoption index so hot-added rigs decorrelate like
// spec-listed ones.
type admin struct {
	mgr  *fleet.Manager
	seed uint64
	next atomic.Uint64 // station index for seed derivation
}

func (a *admin) add(w http.ResponseWriter, r *http.Request) {
	name, kind := r.FormValue("name"), r.FormValue("kind")
	if name == "" || kind == "" {
		http.Error(w, "want name= and kind= parameters", http.StatusBadRequest)
		return
	}
	src, err := simsetup.BuildStation(kind, a.seed, int(a.next.Add(1)))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if _, err := a.mgr.Add(name, kind, src); err != nil {
		src.Close()
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	log.Printf("adopted station %s (kind %s)", name, kind)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]string{"name": name, "kind": kind})
}

func (a *admin) remove(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := a.mgr.Remove(name); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	log.Printf("retired station %s", name)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"name": name, "retired": true})
}

// setup assembles the fleet and its HTTP handler — the daemon's wiring,
// split from run so tests can serve it through httptest. The handler is
// the exporter's read-only surface plus the daemon's lifecycle admin
// endpoints.
func setup(spec string, seed uint64, rate float64,
	slice time.Duration, block, ring int, warmup time.Duration) (*fleet.Manager, http.Handler, error) {
	mgr, err := fleet.FromSpec(spec, seed, fleet.Config{
		Slice: slice, Block: block, RingCap: ring, Rate: rate,
	})
	if err != nil {
		return nil, nil, err
	}
	if warmup > 0 {
		log.Printf("warming up: %v of virtual time over %d stations", warmup, mgr.Size())
		mgr.StepAll(warmup)
	}
	a := &admin{mgr: mgr, seed: seed}
	a.next.Store(uint64(mgr.Size()))
	mux := http.NewServeMux()
	mux.Handle("/", export.New(mgr).Handler())
	mux.HandleFunc("POST /api/fleet/add", a.add)
	mux.HandleFunc("POST /api/fleet/remove/{name}", a.remove)
	return mgr, mux, nil
}

func run(listen, spec string, seed uint64, rate float64,
	slice time.Duration, block, ring int, warmup time.Duration) error {
	mgr, handler, err := setup(spec, seed, rate, slice, block, ring, warmup)
	if err != nil {
		return err
	}
	defer mgr.Close()
	mgr.Start()

	srv := &http.Server{Addr: listen, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving %d stations (%s) on %s", mgr.Size(), spec, listen)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		log.Printf("%v: shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}
