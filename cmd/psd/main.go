// Command psd is the PowerSensor3 fleet daemon: it assembles a fleet of
// simulated measurement stations, drives each on its own goroutine, and
// serves the fleet's telemetry over HTTP — the service counterpart of the
// one-shot command line tools.
//
// Stations are heterogeneous: every backend is a streaming source
// (internal/source), so 20 kHz PowerSensor3 rigs serve next to the
// paper's software-meter baselines polled at their native rates.
//
// Usage:
//
//	psd [-listen :9120] [-fleet spec] [-seed 1] [-rate 1] [-slice 5ms]
//	    [-block 20] [-ring 4096] [-shards 8] [-history 1048576]
//	    [-history-sync 1s] [-warmup 2s] [-log-format text]
//	    [-debug-addr addr] [-version]
//
//	psd -federate leaves [-federate-interval 1s] [-federate-timeout dur]
//	    [-listen :9120] [-log-format text] [-debug-addr addr]
//
// The first form is a leaf: it owns a local fleet and serves it. The
// second is a federation head (internal/federation): it owns no stations
// of its own, polls the named leaf daemons' /api/fleet with per-leaf
// timeouts, retries and circuit breakers, and serves the merged view —
// one /metrics with a leaf label on every station series, one merged
// /api/fleet, per-device drill-downs proxied to the owning leaf. A dead
// leaf's stations serve marked stale and powersensor_leaf_up drops to 0;
// the aggregate scrape never stalls on it.
//
// Flags:
//
//	-listen      HTTP listen address (default :9120)
//	-fleet       comma-separated name=kindspec stations. The kindspec grammar —
//	             station kinds, "@index" seed pinning, and the "|"-separated
//	             derived-source pipe stages (resample, calib, ratelimit,
//	             smooth) plus the seed-pinned fault-injection stages
//	             (dropout:P:DUR, stuck:P:DUR, spike:P:MAG, skew:PPM,
//	             jitter:SD) — is documented in one place:
//	             simsetup.ParseFleet. Faulted stations replay their failure
//	             scenario identically for a given -seed, so a fleet that
//	             degrades on Tuesday degrades the same way in Wednesday's
//	             repro. The default is simsetup.DefaultFleetSpec, a mixed
//	             fleet of four PowerSensor3 rigs, two software meters and
//	             two derived views — including gpu0lo, a 1 kHz resampled +
//	             recalibrated view of the same rig gpu0 serves raw at
//	             20 kHz. Example faulted station:
//
//	               flaky0=rtx4000ada|dropout:0.1:5ms|spike:0.01:8
//
//	             The fleet watchdog (internal/fleet doc.go) detects the
//	             injected faults and publishes per-station health — the
//	             powersensor_station_health gauge and the
//	             powersensor_station_{gaps,flatlines,spikes_quarantined,
//	             restarts}_total counters on /metrics.
//	-seed        base simulation seed; each station derives its own
//	-rate        virtual seconds simulated per wall second (1 = real time,
//	             0 = as fast as the host allows)
//	-slice       virtual-time quantum each station goroutine advances per
//	             iteration
//	-block       downsample window per ring point, in 20 kHz sample periods
//	             (20 → 1 ms points); each station derives its own block size
//	             from that window and its source's native rate
//	-ring        per-station ring capacity, in downsampled points
//	-shards      fleet shard count (1–64; default 8). Stations hash to shards
//	             by name; each shard keeps its own device list, memory pool
//	             and cached /metrics exposition segment, so churn and
//	             downsample-block activity on one station invalidate 1/Nth
//	             of the scrape instead of all of it. -shards 1 recovers the
//	             unsharded daemon; large fleets (thousands of stations) want
//	             the default or higher
//	-history     per-station compressed history budget, in bytes (default
//	             1 MiB — weeks of millisecond-averaged points at the tier's
//	             typical >4x compression). The long-horizon tier sits behind
//	             each station's ring and answers the windowed energy API;
//	             negative disables it, leaving energy queries to the ring's
//	             short retention
//	-history-sync  how often the daemon drains every station's ring into
//	             its history series (default 1s). Syncs also happen on
//	             every query and at retirement; the timer bounds how much
//	             a ring can wrap between queries. 0 disables the timer
//	-warmup      virtual time advanced synchronously before serving, so the
//	             first scrape already sees data
//	-log-format  "text" (default) or "json": structured log/slog output on
//	             stderr; station lifecycle lines carry station/kind fields
//	-debug-addr  when set (e.g. "localhost:6060"), serve net/http/pprof on a
//	             second listener at that address — profiling stays off the
//	             scrape port and off by default
//	-version     print the build version (stamped via
//	             -ldflags "-X repro/internal/version.Version=...") and exit
//	-federate    run as a federation head over these leaves instead of
//	             serving a local fleet. Comma-separated entries, each
//	             name=URL or a bare host:port (auto-named by its address,
//	             http scheme assumed); "@path" reads the same entries
//	             from a file, one per line, # comments allowed:
//
//	               psd -federate rack0=10.0.0.1:9120,rack1=10.0.0.2:9120
//	               psd -federate @/etc/psd/leaves.conf
//
//	             The fleet-building flags (-fleet, -seed, -rate, -slice,
//	             -block, -ring, -shards, -history, -history-sync,
//	             -warmup) do not apply to a head and are rejected if set
//	-federate-interval  head poll cadence per leaf (default 1s)
//	-federate-timeout   per-attempt poll timeout against one leaf
//	             (default half the interval, clamped to [50ms, 2s]); a
//	             leaf slower than this fails its poll at the deadline
//	             instead of delaying the round. Each poll retries once
//	             with backoff before counting as a failure; 3 consecutive
//	             failures open the leaf's circuit breaker, which rejects
//	             polls for 4 intervals and then admits a half-open probe
//
// Endpoints:
//
//	GET  /metrics                     Prometheus text exposition, including
//	                                  the powersensor_self_* self-telemetry
//	                                  families and powersensor_build_info
//	GET  /api/fleet                   JSON status of every station
//	GET  /api/events                  JSON tail of the fleet lifecycle event
//	                                  ring (adopt/start/retire/close, ?n=N
//	                                  caps the tail, default 100)
//	GET  /api/device/{name}/trace     recent trace (?format=csv|json, ?points=N)
//	GET  /api/device/{name}/energy    windowed energy query over the
//	                                  long-horizon history tier: ?from= and
//	                                  ?to= (seconds or Go durations) bound
//	                                  the window; the JSON answer carries
//	                                  joules and mean watts, and an empty
//	                                  window is exactly 0 J
//	GET  /api/device/{name}/history   long-range summed-power trace decoded
//	                                  from the compressed tier (?from=, ?to=,
//	                                  ?points=N decimation, ?format=csv|json)
//	GET  /healthz                     fleet health probe: 200 with
//	                                  {"stations":N,"degraded":K} while any
//	                                  station serves, 503 once every station
//	                                  is stale or flatlined — wired for
//	                                  load-balancer checks that should stop
//	                                  routing to a daemon whose whole fleet
//	                                  went dark
//	POST /api/fleet/add               hot-add a station to the running fleet:
//	                                  name= and kind= (any -fleet kindspec,
//	                                  pipe stages included) as form or query
//	                                  parameters
//	POST /api/fleet/remove/{name}     retire a station: its driver stops, the
//	                                  final downsample block drains, and its
//	                                  series leave /metrics
//
// A federation head serves instead:
//
//	GET  /metrics                     merged exposition: every leaf's
//	                                  station families under a leaf label,
//	                                  plus powersensor_leaf_up, breaker
//	                                  state, per-leaf poll histograms
//	GET  /api/fleet                   merged JSON: per-leaf poll state and
//	                                  every station with leaf + stale
//	GET  /api/events                  leaf up/down and breaker transitions
//	GET  /api/device/{leaf}/{name}/energy    proxied to the owning leaf
//	GET  /api/device/{leaf}/{name}/trace     (503 while the leaf is down)
//	GET  /api/device/{leaf}/{name}/history
//	GET  /healthz                     200 while any leaf is up, 503 once
//	                                  every leaf is down
//
// With -debug-addr set, the debug listener serves GET /debug/pprof/ (and
// the cmdline/profile/symbol/trace handlers under it).
//
// Every listener sets ReadHeaderTimeout/ReadTimeout/IdleTimeout, and
// SIGINT/SIGTERM drain in-flight requests through http.Server.Shutdown
// (5 s deadline) before the fleet manager or head poller closes.
//
// The admin endpoints make the serving fleet dynamic — stations come and
// go without restarting the daemon, mirroring rigs being recabled or
// vendor meters restarting. Churn is observable three ways: /metrics
// carries powersensor_fleet_adopted_total and
// powersensor_fleet_retired_total, /api/events carries the structured
// lifecycle record of every transition, and scrapes during churn stay
// well-formed. For example:
//
//	$ curl -X POST 'localhost:9120/api/fleet/add?name=gpu2&kind=synth'
//	{"name":"gpu2","kind":"synth"}
//	$ curl -X POST localhost:9120/api/fleet/remove/gpu2
//	{"name":"gpu2","retired":true}
//
// A scrape looks like:
//
//	$ curl -s localhost:9120/metrics | grep -e gpu0 -e cpu0
//	powersensor_source_info{device="gpu0",backend="powersensor3",kind="rtx4000ada"} 1
//	powersensor_source_info{device="gpu0lo",backend="powersensor3+resample+calib",kind="rtx4000ada@0|resample:1000|calib:0.98:0.25"} 1
//	powersensor_source_info{device="cpu0",backend="rapl",kind="rapl"} 1
//	powersensor_source_rate_hz{device="gpu0"} 20000
//	powersensor_source_rate_hz{device="gpu0lo"} 1000
//	powersensor_source_rate_hz{device="cpu0"} 1000
//	powersensor_source_overhead_seconds{device="cpu0lim"} 0.00041...
//	powersensor_watts{device="gpu0",pair="2",channel="pcie8pin"} 55.88...
//	powersensor_watts{device="cpu0",pair="0",channel="package"} 47.3...
//	powersensor_board_watts{device="gpu0"} 67.7...
//	powersensor_joules_total{device="gpu0"} 154.9...
//	powersensor_samples_total{device="gpu0"} 40000
//	...
//
// The raw 20 kHz station and its 1 kHz derived view serve concurrently,
// each paced by its own (stage-rewritten) rate; the rate-limited meter's
// cumulative sampling overhead — the monitoring footprint the throttle
// bounds — is a first-class scrape series.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/export"
	"repro/internal/federation"
	"repro/internal/fleet"
	"repro/internal/simsetup"
	"repro/internal/version"
)

func main() {
	listen := flag.String("listen", ":9120", "HTTP listen address")
	spec := flag.String("fleet", simsetup.DefaultFleetSpec,
		"fleet spec: comma-separated name=kindspec (grammar: simsetup.ParseFleet)")
	seed := flag.Uint64("seed", 1, "base simulation seed")
	rate := flag.Float64("rate", 1, "virtual seconds per wall second (0 = unpaced)")
	slice := flag.Duration("slice", 5*time.Millisecond, "virtual-time quantum per iteration")
	block := flag.Int("block", 20, "sample sets averaged per ring point")
	ring := flag.Int("ring", 4096, "per-station ring capacity in points")
	shards := flag.Int("shards", 8, "fleet shard count, 1-64 (1 = unsharded)")
	histBytes := flag.Int("history", 0,
		"per-station compressed history budget in bytes (0 = 1 MiB default, negative = disabled)")
	histSync := flag.Duration("history-sync", time.Second,
		"ring-to-history sync interval (0 = timer off; queries still sync)")
	warmup := flag.Duration("warmup", 2*time.Second, "virtual time simulated before serving")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	debugAddr := flag.String("debug-addr", "",
		"serve net/http/pprof on this address (empty = no debug listener)")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	federate := flag.String("federate", "",
		"run as a federation head over these leaves (name=URL or host:port, comma-separated; @path reads a file)")
	fedInterval := flag.Duration("federate-interval", time.Second, "head poll cadence per leaf")
	fedTimeout := flag.Duration("federate-timeout", 0,
		"per-attempt poll timeout against one leaf (0 = half the interval)")
	flag.Parse()
	if *showVersion {
		fmt.Printf("psd %s %s\n", version.Version, version.GoVersion())
		return
	}
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: psd [flags]; see -h")
		os.Exit(2)
	}
	logger, err := newLogger(*logFormat, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psd:", err)
		os.Exit(2)
	}
	if *federate != "" {
		// Head mode owns no stations: a fleet-building flag set alongside
		// -federate is a misconfiguration, rejected rather than ignored.
		if set := fleetFlagsSet(); len(set) != 0 {
			fmt.Fprintf(os.Stderr, "psd: -federate (head mode) rejects fleet flags: -%s\n",
				strings.Join(set, ", -"))
			os.Exit(2)
		}
		leaves, err := parseLeaves(*federate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "psd:", err)
			os.Exit(2)
		}
		if err := runHead(*listen, *debugAddr, leaves, *fedInterval, *fedTimeout, logger); err != nil {
			logger.Error("exiting", "err", err)
			os.Exit(1)
		}
		return
	}
	if *rate < 0 {
		fmt.Fprintln(os.Stderr, "psd: -rate must be >= 0 (0 = unpaced)")
		os.Exit(2)
	}
	if *shards < 1 || *shards > fleet.MaxShards {
		fmt.Fprintf(os.Stderr, "psd: -shards must be in [1, %d]\n", fleet.MaxShards)
		os.Exit(2)
	}
	if err := run(*listen, *debugAddr, *spec, *seed, *rate, *slice, *block, *ring,
		*shards, *histBytes, *histSync, *warmup, logger); err != nil {
		logger.Error("exiting", "err", err)
		os.Exit(1)
	}
}

// fleetFlagsSet lists the fleet-building flags the user set explicitly —
// the ones head mode rejects.
func fleetFlagsSet() []string {
	fleetOnly := map[string]bool{
		"fleet": true, "seed": true, "rate": true, "slice": true,
		"block": true, "ring": true, "shards": true, "history": true,
		"history-sync": true, "warmup": true,
	}
	var set []string
	flag.Visit(func(f *flag.Flag) {
		if fleetOnly[f.Name] {
			set = append(set, f.Name)
		}
	})
	return set
}

// parseLeaves parses the -federate value: comma-separated name=URL or
// bare host:port entries (bare entries are named by their address), or
// "@path" naming a file with one entry per line, # comments and blank
// lines skipped.
func parseLeaves(spec string) ([]federation.Leaf, error) {
	var entries []string
	if strings.HasPrefix(spec, "@") {
		raw, err := os.ReadFile(spec[1:])
		if err != nil {
			return nil, fmt.Errorf("-federate: %w", err)
		}
		for _, line := range strings.Split(string(raw), "\n") {
			if i := strings.Index(line, "#"); i >= 0 {
				line = line[:i]
			}
			if line = strings.TrimSpace(line); line != "" {
				entries = append(entries, line)
			}
		}
	} else {
		for _, e := range strings.Split(spec, ",") {
			if e = strings.TrimSpace(e); e != "" {
				entries = append(entries, e)
			}
		}
	}
	if len(entries) == 0 {
		return nil, errors.New("-federate: no leaves given")
	}
	leaves := make([]federation.Leaf, 0, len(entries))
	for _, e := range entries {
		var l federation.Leaf
		if name, url, ok := strings.Cut(e, "="); ok {
			l = federation.Leaf{Name: strings.TrimSpace(name), URL: strings.TrimSpace(url)}
			if l.Name == "" || l.URL == "" {
				return nil, fmt.Errorf("-federate: bad entry %q (want name=URL)", e)
			}
		} else {
			l = federation.Leaf{Name: e, URL: e}
		}
		leaves = append(leaves, l)
	}
	return leaves, nil
}

// newLogger builds the daemon's structured logger: log/slog in text form
// by default, JSON for log aggregators.
func newLogger(format string, w io.Writer) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	}
	return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
}

// admin serves the fleet lifecycle: hot-adding and retiring stations on
// the running manager. It builds station sources the same way the -fleet
// flag does (simsetup.BuildStation, so pipe-stage kindspecs work over
// HTTP too), deriving each new station's seed from the daemon's base
// seed and a monotonic adoption index so hot-added rigs decorrelate like
// spec-listed ones.
type admin struct {
	mgr  *fleet.Manager
	log  *slog.Logger
	seed uint64
	next atomic.Uint64 // station index for seed derivation
}

func (a *admin) add(w http.ResponseWriter, r *http.Request) {
	name, kind := r.FormValue("name"), r.FormValue("kind")
	if name == "" || kind == "" {
		http.Error(w, "want name= and kind= parameters", http.StatusBadRequest)
		return
	}
	src, err := simsetup.BuildStation(kind, a.seed, int(a.next.Add(1)))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if _, err := a.mgr.Add(name, kind, src); err != nil {
		src.Close()
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	a.log.Info("adopted station", "station", name, "kind", kind)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]string{"name": name, "kind": kind})
}

func (a *admin) remove(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := a.mgr.Remove(name); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	a.log.Info("retired station", "station", name)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"name": name, "retired": true})
}

// setup assembles the fleet and its HTTP handler — the daemon's wiring,
// split from run so tests can serve it through httptest. The handler is
// the exporter's read-only surface plus the daemon's lifecycle admin
// endpoints. logger may be nil, meaning discard (the test form).
func setup(spec string, seed uint64, rate float64, slice time.Duration,
	block, ring, shards, histBytes int, warmup time.Duration, logger *slog.Logger) (*fleet.Manager, http.Handler, error) {
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	mgr, err := fleet.FromSpec(spec, seed, fleet.Config{
		Slice: slice, Block: block, RingCap: ring, Rate: rate, Shards: shards,
		HistoryBytes: histBytes,
	})
	if err != nil {
		return nil, nil, err
	}
	if warmup > 0 {
		logger.Info("warming up", "virtual", warmup, "stations", mgr.Size())
		mgr.StepAll(warmup)
	}
	a := &admin{mgr: mgr, log: logger, seed: seed}
	a.next.Store(uint64(mgr.Size()))
	mux := http.NewServeMux()
	mux.Handle("/", export.New(mgr).Handler())
	mux.HandleFunc("POST /api/fleet/add", a.add)
	mux.HandleFunc("POST /api/fleet/remove/{name}", a.remove)
	return mgr, mux, nil
}

// debugMux builds the -debug-addr listener's routes: the net/http/pprof
// handlers, explicitly registered on their own mux so profiling is never
// reachable through the scrape port (importing the package for its side
// effect would mount it on http.DefaultServeMux instead).
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// newHTTPServer wraps a handler in a server with the slow-loris limits
// every psd listener sets: a peer that never finishes its request
// headers cannot pin a connection (ReadHeaderTimeout), a trickling body
// cannot hold one forever (ReadTimeout), and idle keep-alives are
// bounded (IdleTimeout). Federation heads polling leaves over real
// networks — and being polled by real scrapers — make these
// non-optional. WriteTimeout stays unset: trace and history downloads
// legitimately stream large bodies.
func newHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// shutdownDeadline bounds how long a SIGINT/SIGTERM drain waits for
// in-flight requests before the daemon exits anyway.
const shutdownDeadline = 5 * time.Second

// serveUntilSignal starts srv (and the debug listener when non-nil) and
// blocks until the listener fails or SIGINT/SIGTERM arrives. On a signal
// it drains in-flight requests through http.Server.Shutdown under
// shutdownDeadline, so a scrape racing the signal completes instead of
// dying mid-body; the caller closes its own subsystems (fleet manager,
// head poller) after this returns — after the drain.
func serveUntilSignal(srv, dsrv *http.Server, logger *slog.Logger) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	if dsrv != nil {
		go func() {
			// A failed debug listener (port taken, bad address) downgrades
			// profiling, not serving: log it and keep the daemon up.
			if err := dsrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "addr", dsrv.Addr, "err", err)
			}
		}()
		logger.Info("debug listener up", "addr", dsrv.Addr)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		logger.Info("shutting down", "signal", s.String())
		ctx, cancel := context.WithTimeout(context.Background(), shutdownDeadline)
		defer cancel()
		if dsrv != nil {
			_ = dsrv.Close()
		}
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}
}

func run(listen, debugAddr, spec string, seed uint64, rate float64,
	slice time.Duration, block, ring, shards, histBytes int, histSync,
	warmup time.Duration, logger *slog.Logger) error {
	mgr, handler, err := setup(spec, seed, rate, slice, block, ring, shards,
		histBytes, warmup, logger)
	if err != nil {
		return err
	}
	// Close runs after serveUntilSignal's drain: in-flight scrapes finish
	// against a live manager, then the stations retire.
	defer mgr.Close()
	mgr.Start()

	// The history sync timer: drain every station's ring into its
	// compressed series so points survive ring wraparound even when no
	// query arrives. Queries and retirement sync on their own; the timer
	// only bounds the wraparound exposure between them.
	if histBytes >= 0 && histSync > 0 {
		stopSync := make(chan struct{})
		defer close(stopSync)
		go func() {
			tick := time.NewTicker(histSync)
			defer tick.Stop()
			for {
				select {
				case <-stopSync:
					return
				case <-tick.C:
					if _, missed := mgr.SyncHistory(); missed > 0 {
						logger.Warn("history sync missed ring points; "+
							"raise -ring or lower -history-sync", "missed", missed)
					}
				}
			}
		}()
	}

	var dsrv *http.Server
	if debugAddr != "" {
		dsrv = newHTTPServer(debugAddr, debugMux())
	}
	logger.Info("serving", "stations", mgr.Size(), "fleet", spec, "addr", listen,
		"version", version.Version)
	return serveUntilSignal(newHTTPServer(listen, handler), dsrv, logger)
}

// setupHead assembles a federation head and its HTTP handler — the head
// counterpart of setup, split out so tests can serve it through
// httptest. The first poll round runs synchronously (the head-mode
// warmup: the first scrape already sees every reachable leaf), and the
// caller owns Start/Stop of the poll loop.
func setupHead(leaves []federation.Leaf, interval, timeout time.Duration,
	logger *slog.Logger) (*federation.Head, http.Handler, error) {
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	head, err := federation.New(federation.Config{
		Leaves:   leaves,
		Interval: interval,
		Timeout:  timeout,
	})
	if err != nil {
		return nil, nil, err
	}
	head.PollOnce(context.Background())
	logger.Info("first poll round done", "leaves", head.Leaves(), "up", head.UpCount())
	return head, head.Handler(), nil
}

func runHead(listen, debugAddr string, leaves []federation.Leaf,
	interval, timeout time.Duration, logger *slog.Logger) error {
	head, handler, err := setupHead(leaves, interval, timeout, logger)
	if err != nil {
		return err
	}
	// Stop runs after serveUntilSignal's drain: in-flight scrapes finish
	// against live views, then the poll loop ends.
	defer head.Stop()
	head.Start()
	var dsrv *http.Server
	if debugAddr != "" {
		dsrv = newHTTPServer(debugAddr, debugMux())
	}
	logger.Info("serving federation head", "leaves", head.Leaves(), "up", head.UpCount(),
		"addr", listen, "version", version.Version)
	return serveUntilSignal(newHTTPServer(listen, handler), dsrv, logger)
}
