package main

import "testing"

func TestReadOnly(t *testing.T) {
	if err := run(-1, "", 0, 0, 0, true, false, false, 1024, 1); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrateAndReboot(t *testing.T) {
	if err := run(-1, "", 0, 0, 0, true, true, true, 4096, 2); err != nil {
		t.Fatal(err)
	}
}

func TestWriteSensor(t *testing.T) {
	if err := run(0, "renamed", 0.119, 12, 0.01, true, false, false, 1024, 3); err != nil {
		t.Fatal(err)
	}
}

func TestWriteSensorOutOfRange(t *testing.T) {
	if err := run(9, "x", 0, 0, 0, true, false, false, 1024, 4); err == nil {
		t.Fatal("expected error")
	}
}
