// Command psconfig reads or writes the sensor configuration values and
// optionally calibrates or reboots the device — the counterpart of the
// paper's psconfig utility (Sections III-C and III-D), on a simulated
// device.
//
// Usage:
//
//	psconfig                            # print configuration
//	psconfig -sensor 0 -name X -sens 0.12 -volt 12   # write one sensor
//	psconfig -calibrate                 # run the one-time calibration
//	psconfig -reboot                    # reboot the device afterwards
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/analog"
	"repro/internal/bench"
	"repro/internal/calib"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/protocol"
)

func main() {
	sensor := flag.Int("sensor", -1, "sensor index to write (-1 = read-only)")
	name := flag.String("name", "", "sensor name to store")
	sens := flag.Float64("sens", 0, "sensitivity (V/A) or gain to store")
	volt := flag.Float64("volt", 0, "rail voltage to store")
	offset := flag.Float64("offset", 0, "calibration offset to store")
	enable := flag.Bool("enable", true, "sensor enabled state to store")
	calibrate := flag.Bool("calibrate", false, "run the one-time calibration procedure")
	reboot := flag.Bool("reboot", false, "reboot the device when done")
	samples := flag.Int("samples", 128*1024, "calibration samples")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	if err := run(*sensor, *name, *sens, *volt, *offset, *enable,
		*calibrate, *reboot, *samples, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "psconfig:", err)
		os.Exit(1)
	}
}

func run(sensor int, name string, sens, volt, offset float64, enable,
	calibrate, reboot bool, samples int, seed uint64) error {

	// An uncalibrated factory device: the modules carry representative
	// offset and gain errors for the calibration procedure to find.
	m := analog.NewModule(analog.Slot10A, 12)
	m.Current.OffsetA = 0.18
	m.Voltage.GainErr = 0.012
	dev := device.New(seed, device.Slot{
		Module: m,
		Source: device.BenchSource{Supply: &bench.Supply{Nominal: 12}, Load: bench.ConstantLoad(0)},
	})

	ps, err := core.Open(dev)
	if err != nil {
		return err
	}
	defer ps.Close()

	if calibrate {
		fmt.Printf("calibrating with %d unloaded samples per pair...\n", samples)
		results, err := calib.Calibrate(ps, dev, []calib.Reference{{TrueVolts: 12}}, samples)
		if err != nil {
			return err
		}
		for _, r := range results {
			fmt.Printf("  pair %d: current offset %+.4f A, voltage gain %.5f, noise %.1f mA rms\n",
				r.Pair, r.CurrentOffsetA, r.VoltageGain, r.NoiseARMS*1000)
		}
	}

	if sensor >= 0 {
		if sensor >= protocol.MaxSensors {
			return fmt.Errorf("sensor index %d out of range", sensor)
		}
		cfg := ps.SensorConfig(sensor)
		if name != "" {
			cfg.Name = name
		}
		if sens != 0 {
			cfg.Sensitivity = sens
		}
		if volt != 0 {
			cfg.Volt = volt
		}
		if offset != 0 {
			cfg.Offset = offset
		}
		cfg.Enabled = enable
		if cfg.Polarity == 0 {
			cfg.Polarity = 1
		}
		cmd := append([]byte{protocol.CmdWriteConfig, byte(sensor)}, protocol.MarshalConfig(cfg)...)
		dev.Write(cmd)
		dev.Run(time.Millisecond)
		fmt.Printf("sensor %d written\n", sensor)
	}

	if reboot {
		dev.Write([]byte{protocol.CmdReboot})
		dev.Run(time.Millisecond)
		fmt.Println("device rebooted")
	}

	fmt.Println("current configuration:")
	for i := 0; i < protocol.MaxSensors; i++ {
		cfg := dev.Firmware().SensorConfig(i)
		if !cfg.Enabled && cfg.Name == "" {
			continue
		}
		fmt.Printf("  sensor %d: name=%-18q rail=%gV sensitivity=%.6g offset=%+.5g enabled=%v\n",
			i, cfg.Name, cfg.Volt, cfg.Sensitivity, cfg.Offset, cfg.Enabled)
	}
	return nil
}
