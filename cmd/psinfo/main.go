// Command psinfo shows the configuration values of each enabled sensor, the
// latest measurements, and the total power — the counterpart of the paper's
// psinfo utility, on a simulated device.
//
// Usage:
//
//	psinfo [-module slot10a:12] [-amps 3] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/simsetup"
)

func main() {
	module := flag.String("module", "slot10a:12", "sensor module as kind:volts")
	amps := flag.Float64("amps", 3, "bench load current in amperes")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	if err := run(*module, *amps, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "psinfo:", err)
		os.Exit(1)
	}
}

func run(module string, amps float64, seed uint64) error {
	dev, err := simsetup.BenchDevice(module, amps, seed)
	if err != nil {
		return err
	}
	ps, err := core.Open(dev)
	if err != nil {
		return err
	}
	defer ps.Close()
	ps.Advance(10 * time.Millisecond)

	fmt.Println("sensor configuration:")
	for i := 0; i < protocol.MaxSensors; i++ {
		cfg := ps.SensorConfig(i)
		if !cfg.Enabled {
			continue
		}
		kind := "current"
		if i%2 == 1 {
			kind = "voltage"
		}
		fmt.Printf("  sensor %d (%s): name=%-18q rail=%gV sensitivity=%g offset=%g polarity=%+d\n",
			i, kind, cfg.Name, cfg.Volt, cfg.Sensitivity, cfg.Offset, cfg.Polarity)
	}

	st := ps.Read()
	fmt.Println("latest measurements:")
	var total float64
	for m := 0; m < ps.Pairs(); m++ {
		fmt.Printf("  pair %d: %7.3f V  %7.3f A  %8.3f W\n",
			m, st.Volts[m], st.Amps[m], st.Watts[m])
		total += st.Watts[m]
	}
	fmt.Printf("total power: %.3f W\n", total)
	return nil
}
