package main

import "testing"

func TestRun(t *testing.T) {
	if err := run("slot10a:12", 3, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadModule(t *testing.T) {
	if err := run("bogus", 3, 1); err == nil {
		t.Fatal("expected error")
	}
}
