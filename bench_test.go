// Benchmarks that regenerate every table and figure of the paper's
// evaluation. Each benchmark runs a (size-reduced) version of the
// corresponding experiment and reports the headline quantities as custom
// metrics, so `go test -bench=.` reproduces the paper's result set in one
// command. cmd/experiments (without -quick) runs the full paper-sized
// versions.
package repro

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/export"
	"repro/internal/fleet"
)

// BenchmarkTable1Accuracy regenerates Table I: the closed-form worst-case
// accuracy of the four sensor modules.
func BenchmarkTable1Accuracy(b *testing.B) {
	var res experiments.Table1Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunTable1()
	}
	b.ReportMetric(res.Rows[0].PowErr, "12V-worstcase-W")
	b.ReportMetric(res.Rows[1].PowErr, "3.3V-worstcase-W")
}

// BenchmarkFig4ErrorSweep regenerates Fig. 4: the power-error sweep of the
// four module types from negative to positive full-scale current.
func BenchmarkFig4ErrorSweep(b *testing.B) {
	var res experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFig4(experiments.Fig4Options{Samples: 8 * 1024, StepA: 2.5})
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := 0.0
	for _, sw := range res.Sweeps {
		for _, p := range sw.Points {
			if e := abs(p.MeanErr); e > worst {
				worst = e
			}
		}
	}
	b.ReportMetric(worst, "worst-mean-err-W")
}

// BenchmarkTable2Averaging regenerates Table II: noise versus effective
// sample rate under block averaging.
func BenchmarkTable2Averaging(b *testing.B) {
	var res experiments.Table2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunTable2(experiments.Table2Options{Samples: 32 * 1024})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res.Rows {
		if r.RateKHz == 20 && r.LoadA == 1.0 {
			b.ReportMetric(r.Std, "std-20kHz-W")
		}
		if r.RateKHz == 0.5 && r.LoadA == 1.0 {
			b.ReportMetric(r.Std, "std-0.5kHz-W")
		}
	}
}

// BenchmarkStability regenerates the Section IV-B long-term run (reduced to
// 2 virtual hours per iteration).
func BenchmarkStability(b *testing.B) {
	var res experiments.StabilityResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunStability(experiments.StabilityOptions{
			Duration: 2 * time.Hour, Interval: 15 * time.Minute, Samples: 8 * 1024,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MeanFluctuation, "fluctuation-W")
}

// BenchmarkFig5StepResponse regenerates Fig. 5: the 3.3 A → 8 A step at
// 20 kHz.
func BenchmarkFig5StepResponse(b *testing.B) {
	var res experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFig5()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.RiseSamples), "rise-samples")
	b.ReportMetric(res.HighW-res.LowW, "step-W")
}

// BenchmarkFig7aNvidiaTrace regenerates Fig. 7a: PS3 vs NVML on the
// RTX 4000 Ada.
func BenchmarkFig7aNvidiaTrace(b *testing.B) {
	var res experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFig7a(experiments.Fig7Options{
			KernelDuration: time.Second, Tail: 800 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.DipsPS3), "dips-ps3")
	b.ReportMetric(float64(res.DipsVendor), "dips-nvml")
	b.ReportMetric(res.PS3Joules/res.TrueJoules, "ps3/true-energy")
}

// BenchmarkFig7bAMDTrace regenerates Fig. 7b: PS3 vs AMD SMI on the W7700.
func BenchmarkFig7bAMDTrace(b *testing.B) {
	var res experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFig7b(experiments.Fig7Options{
			KernelDuration: time.Second, Tail: 800 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.VendorJoules/res.TrueJoules, "amdsmi/true-energy")
	b.ReportMetric(res.PS3Joules/res.TrueJoules, "ps3/true-energy")
}

// BenchmarkFig8TuningRTX regenerates Fig. 8 on a reduced space (every 17th
// variant, 3 clocks) and reports the headline metrics, including the
// tuning-time speedup the paper quotes as 3.25×.
func BenchmarkFig8TuningRTX(b *testing.B) {
	var res experiments.TuningResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFig8(experiments.TuningOptions{
			Subsample: 17, Trials: 3, Clocks: []float64{1485, 1635, 1815},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.FastestTFLOPS, "fastest-TFLOPs")
	b.ReportMetric(res.FastestTFLOPJ, "fastest-TFLOPJ")
	b.ReportMetric(res.Speedup, "tuning-speedup-x")
}

// BenchmarkFig10TuningJetson regenerates Fig. 10 on the Jetson AGX Orin.
func BenchmarkFig10TuningJetson(b *testing.B) {
	var res experiments.TuningResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFig10(experiments.TuningOptions{
			Subsample: 17, Trials: 3, Clocks: []float64{408, 816, 1300},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.FastestTFLOPS, "fastest-TFLOPs")
	b.ReportMetric(res.Speedup, "tuning-speedup-x")
}

// BenchmarkFig12aRandomReads regenerates Fig. 12a: SSD random-read power
// and bandwidth versus request size.
func BenchmarkFig12aRandomReads(b *testing.B) {
	var res experiments.Fig12aResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFig12a(experiments.Fig12aOptions{
			Sizes: []int{4, 64, 1024, 4096}, PerPoint: 2 * time.Second, IODepth: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := res.Points[len(res.Points)-1]
	b.ReportMetric(last.MiBps, "peak-MiBps")
	b.ReportMetric(last.PowerW, "peak-power-W")
	b.ReportMetric(res.Points[0].PowerW, "small-req-power-W")
}

// BenchmarkFig12bRandomWrites regenerates Fig. 12b: sustained random writes
// with GC-induced bandwidth variability against flat power.
func BenchmarkFig12bRandomWrites(b *testing.B) {
	var res experiments.Fig12bResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFig12b(experiments.Fig12bOptions{
			Duration: 40 * time.Second, IODepth: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.BandwidthCV, "bandwidth-CV")
	b.ReportMetric(res.PowerCV, "power-CV")
	b.ReportMetric(res.WriteAmp, "write-amplification")
}

// BenchmarkExtSSDHiRes regenerates the §V-C future-work experiment:
// sub-millisecond SSD power analysis.
func BenchmarkExtSSDHiRes(b *testing.B) {
	var res experiments.SSDHiResResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunSSDHiRes(experiments.SSDHiResOptions{Window: 2 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.HiResP2P, "hires-p2p-W")
	b.ReportMetric(res.CoarseP2P, "coarse-p2p-W")
	b.ReportMetric(res.BurstsPerSecond, "bursts/s")
}

// BenchmarkAblationSamplingRate regenerates the sampling-rate ablation:
// kernel-energy error at the rates of the tools the paper surveys.
func BenchmarkAblationSamplingRate(b *testing.B) {
	var res experiments.AblationRateResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunAblationSamplingRate(experiments.AblationRateOptions{Kernels: 10})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		switch row.RateHz {
		case 20000:
			b.ReportMetric(row.MeanErr*100, "err%-20kHz")
		case 1000:
			b.ReportMetric(row.MeanErr*100, "err%-1kHz")
		case 10:
			b.ReportMetric(row.MeanErr*100, "err%-10Hz")
		}
	}
}

// fleetSpec builds a dev00=kind,... spec of size stations cycling over
// kinds.
func fleetSpec(size int, kinds []string) string {
	spec := ""
	for i := 0; i < size; i++ {
		if i > 0 {
			spec += ","
		}
		spec += fmt.Sprintf("dev%03d=%s", i, kinds[i%len(kinds)])
	}
	return spec
}

// BenchmarkFleetIngest measures steady-state fleet ingest end to end at
// growing fleet sizes: every station is a synthetic 20 kHz source (no
// simulated hardware behind it), so ns/op is the cost of the fleet layer
// itself — batch fill, columnar fold, ring arena push, telemetry publish.
// allocs/op must stay 0: the steady-state ingest path is allocation-free
// by contract (see internal/fleet's AllocsPerRun regression tests).
func BenchmarkFleetIngest(b *testing.B) {
	for _, size := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("size-%d", size), func(b *testing.B) {
			mgr, err := fleet.FromSpec(fleetSpec(size, []string{"synth"}), 1, fleet.Config{})
			if err != nil {
				b.Fatal(err)
			}
			defer mgr.Close()
			mgr.StepAll(100 * time.Millisecond) // reach steady state
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// One default manager slice per op — the cadence the
				// drive goroutines advance at in production.
				mgr.StepAll(5 * time.Millisecond)
			}
			b.StopTimer()
			// 100 samples per station per 5 ms slice at 20 kHz.
			ingested := float64(size * 100)
			perSample := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / ingested
			b.ReportMetric(perSample, "ns/sample-station")
			b.ReportMetric(ingested*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
		})
	}
}

// BenchmarkFleetScrape measures the fleet telemetry hot path at growing
// fleet sizes: ns/op is the latency of one full /metrics scrape, and the
// custom metrics report how fast the fleet ingests native-rate samples.
// The small sizes run the heterogeneous fleet — PowerSensor3 rigs
// interleaved with polled software meters; the large sizes use synthetic
// stations so hundreds of them build instantly. Scrape latency should
// grow only linearly in stations (flat per station), since a scrape
// touches per-station counters — never a device ingest mutex, and never
// the raw sample stream.
func BenchmarkFleetScrape(b *testing.B) {
	mixed := []string{"rtx4000ada", "jetson", "ssd", "w7700",
		"nvml", "rapl", "amdsmi", "jetson-ina"}
	for _, bc := range []struct {
		size  int
		kinds []string
	}{
		{1, mixed}, {4, mixed}, {16, mixed},
		{64, []string{"synth"}}, {256, []string{"synth"}},
	} {
		b.Run(fmt.Sprintf("size-%d", bc.size), func(b *testing.B) {
			mgr, err := fleet.FromSpec(fleetSpec(bc.size, bc.kinds), 1, fleet.Config{})
			if err != nil {
				b.Fatal(err)
			}
			defer mgr.Close()

			// Ingest rate: wall time to simulate a fixed slice of virtual
			// time across the whole fleet.
			const warmup = 100 * time.Millisecond
			began := time.Now()
			mgr.StepAll(warmup)
			elapsed := time.Since(began).Seconds()
			var ingested uint64
			for _, st := range mgr.Snapshot() {
				ingested += st.Samples
			}
			b.ReportMetric(float64(ingested)/elapsed, "samples/s")
			b.ReportMetric(float64(ingested)/float64(bc.size), "samples/station")

			// The body cache is disabled so every iteration measures the
			// full render path; BenchmarkFleetScrapeRepeat measures the
			// cached path.
			handler := export.New(mgr).DisableBodyCache().Handler()
			req := httptest.NewRequest("GET", "/metrics", nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := httptest.NewRecorder()
				handler.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("scrape status %d", rec.Code)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(bc.size),
				"ns/station")
		})
	}
}

// BenchmarkFleetScrapeRepeat measures the repeat-scrape path: the fleet
// produces no new downsample block between scrapes, so after the first
// render every /metrics response serves from the exporter's
// block-generation body cache — the cost drops from a full render to a
// generation check plus a memcpy. This is the idle-fleet / multi-scraper
// case the cache exists for; compare ns/station against
// BenchmarkFleetScrape (the always-render path) at the same size.
func BenchmarkFleetScrapeRepeat(b *testing.B) {
	for _, size := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("size-%d", size), func(b *testing.B) {
			mgr, err := fleet.FromSpec(fleetSpec(size, []string{"synth"}), 1, fleet.Config{})
			if err != nil {
				b.Fatal(err)
			}
			defer mgr.Close()
			mgr.StepAll(100 * time.Millisecond)
			handler := export.New(mgr).Handler()
			req := httptest.NewRequest("GET", "/metrics", nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := httptest.NewRecorder()
				handler.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("scrape status %d", rec.Code)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(size),
				"ns/station")
		})
	}
}

// discardRW is an http.ResponseWriter that keeps nothing: the large-fleet
// scrape benchmarks measure the render path, not recorder bookkeeping —
// at 10k stations an httptest recorder would reallocate a multi-megabyte
// body copy every iteration and dominate the numbers.
type discardRW struct{ h http.Header }

func (w *discardRW) Header() http.Header         { return w.h }
func (w *discardRW) Write(p []byte) (int, error) { return len(p), nil }
func (w *discardRW) WriteHeader(int)             {}

// shardSizes are the fleet sizes of the sharding benchmark matrix; each
// runs back-to-back as shards-1 (the serial/unsharded manager) and
// shards-8 so the sharded and unsharded rows come from one window.
var shardSizes = []int{256, 1024, 4096, 10240}

// shardedSynthFleet builds size synthetic stations over the given shard
// count, with a modest ring so the 10k fleets fit in memory.
func shardedSynthFleet(b *testing.B, size, shards int) *fleet.Manager {
	b.Helper()
	mgr, err := fleet.FromSpec(fleetSpec(size, []string{"synth"}), 1,
		fleet.Config{Shards: shards, RingCap: 128})
	if err != nil {
		b.Fatal(err)
	}
	return mgr
}

// BenchmarkFleetScrapeColdSharded measures the cold /metrics render —
// cache off, every station re-rendered every scrape — at large fleet
// sizes, sharded vs unsharded. On a multi-core host stale shards render
// across the worker pool; on a single-core host (renderWorkers clamps to
// GOMAXPROCS) the rows mainly pin that sharding adds no render-path
// regression, and the sharding win shows in the BusyStation rows, where
// the cache makes re-render cost proportional to stale shards.
func BenchmarkFleetScrapeColdSharded(b *testing.B) {
	for _, size := range shardSizes {
		for _, shards := range []int{1, 8} {
			b.Run(fmt.Sprintf("size-%d/shards-%d", size, shards), func(b *testing.B) {
				mgr := shardedSynthFleet(b, size, shards)
				defer mgr.Close()
				mgr.StepAll(20 * time.Millisecond)
				handler := export.New(mgr).DisableBodyCache().Handler()
				req := httptest.NewRequest("GET", "/metrics", nil)
				w := &discardRW{h: make(http.Header, 4)}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					handler.ServeHTTP(w, req)
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(size),
					"ns/station")
			})
		}
	}
}

// BenchmarkFleetScrapeBusyStation is the headline sharding scenario: one
// 20 kHz station stays busy while the rest of the fleet (10 Hz software
// meters) sits between sample boundaries, and every iteration advances
// 1 ms of virtual time then scrapes. Unsharded, the busy station's new
// blocks invalidate the whole body and every scrape re-renders all N
// stations; sharded, only the busy station's shard re-renders (~N/8
// stations) and the other segments serve as memcpys. The gap between the
// shards-1 and shards-8 rows at one size is the repeat-scrape cost the
// per-shard generations remove. (Every 100th iteration the 10 Hz meters
// all tick at once and that scrape legitimately re-renders everything —
// included in the mean, as a real fleet would see.)
func BenchmarkFleetScrapeBusyStation(b *testing.B) {
	for _, size := range shardSizes {
		for _, shards := range []int{1, 8} {
			b.Run(fmt.Sprintf("size-%d/shards-%d", size, shards), func(b *testing.B) {
				spec := "busy0=synth"
				for i := 1; i < size; i++ {
					spec += fmt.Sprintf(",idle%d=nvml", i)
				}
				mgr, err := fleet.FromSpec(spec, 1,
					fleet.Config{Shards: shards, RingCap: 128})
				if err != nil {
					b.Fatal(err)
				}
				defer mgr.Close()
				mgr.StepAll(20 * time.Millisecond)
				e := export.New(mgr)
				handler := e.Handler()
				req := httptest.NewRequest("GET", "/metrics", nil)
				w := &discardRW{h: make(http.Header, 4)}
				handler.ServeHTTP(w, req) // cold render outside the timer
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					mgr.StepAll(time.Millisecond)
					handler.ServeHTTP(w, req)
				}
				b.StopTimer()
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(size),
					"ns/station")
			})
		}
	}
}

// BenchmarkFleetIngestSharded extends the steady-state ingest benchmark
// to the sharded manager at large sizes: shards-8 fans each shard's
// stations out to its own persistent step worker (a wash or a handoff
// tax on one core, a scaling lever on many), and allocs/op must read 0
// at every size — the zero-alloc contract extended to the parallel path.
func BenchmarkFleetIngestSharded(b *testing.B) {
	for _, size := range shardSizes {
		for _, shards := range []int{1, 8} {
			b.Run(fmt.Sprintf("size-%d/shards-%d", size, shards), func(b *testing.B) {
				mgr := shardedSynthFleet(b, size, shards)
				defer mgr.Close()
				mgr.StepAll(20 * time.Millisecond)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					mgr.StepAll(5 * time.Millisecond)
				}
				b.StopTimer()
				ingested := float64(size * 100) // 100 samples/station per 5ms at 20kHz
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/ingested,
					"ns/sample-station")
			})
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
