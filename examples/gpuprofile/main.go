// GPU profiling example: capture a 20 kHz power trace of a GPU kernel with
// time-synced markers, the continuous-mode workflow of Section V-A.
//
// The example attaches a PowerSensor3 to a simulated NVIDIA RTX 4000 Ada
// through the riser-card wiring of Fig. 6 (slot 3.3 V + slot 12 V + external
// 8-pin), runs the paper's synthetic FMA workload, marks the kernel start
// and end in the dump, and prints a decimated trace plus summary.
//
//	go run ./examples/gpuprofile
package main

import (
	"bufio"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/rig"
)

func main() {
	g := gpu.New(gpu.RTX4000Ada(), 7)
	r, err := rig.NewPCIe(g, 7)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()

	// Continuous mode: every 20 kHz sample set goes to the dump.
	var dump strings.Builder
	r.PS.StartDump(&dump)

	r.Idle(200 * time.Millisecond) // idle baseline

	r.PS.Mark('K') // kernel start marker, time-synced on the device
	k := kernels.SyntheticFMA(g.Spec(), 1500*time.Millisecond)
	run := g.LaunchKernel(k, r.Now())
	r.PS.Advance(run.End - r.Now())
	r.PS.Mark('E') // kernel end marker
	r.Idle(500 * time.Millisecond)

	if err := r.PS.StopDump(); err != nil {
		log.Fatal(err)
	}

	// Parse the dump back: columns are "S <t> <w0> <w1> <w2> <total> [Mx]".
	var times, watts []float64
	var markers []string
	sc := bufio.NewScanner(strings.NewReader(dump.String()))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 6 {
			continue
		}
		t, _ := strconv.ParseFloat(f[1], 64)
		w, _ := strconv.ParseFloat(f[5], 64)
		times = append(times, t)
		watts = append(watts, w)
		if strings.HasPrefix(f[len(f)-1], "M") {
			markers = append(markers, fmt.Sprintf("%s at t=%.4fs power=%.1fW", f[len(f)-1], t, w))
		}
	}

	fmt.Printf("captured %d samples at 20 kHz\n", len(times))
	for _, m := range markers {
		fmt.Println("marker:", m)
	}

	// Decimated trace: one line per 100 ms.
	fmt.Println("\n  time(s)  power(W)")
	step := len(times) / 22
	for i := 0; i < len(times); i += step {
		bar := strings.Repeat("#", int(watts[i]/3))
		fmt.Printf("  %7.3f  %7.1f  %s\n", times[i], watts[i], bar)
	}

	// Summary: peak and the slow NVIDIA idle return the paper highlights.
	peak := 0.0
	for _, w := range watts {
		if w > peak {
			peak = w
		}
	}
	fmt.Printf("\npeak power: %.1f W (limit %v W)\n", peak, g.Spec().LimitW)
	fmt.Printf("kernel energy: measure between the K and E markers in the dump\n")
}
