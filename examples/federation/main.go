// Federation: aggregate two leaf daemons behind one head, then kill a
// leaf and watch the head degrade gracefully instead of stalling.
//
// Two in-process leaves each serve a small fleet over the standard psd
// HTTP API — leaves need no federation-specific code at all. A head
// (internal/federation, what psd -federate runs) polls their /api/fleet
// with per-leaf timeouts and circuit breakers and serves the merged
// view: every station series gains a leaf label, so the two fleets'
// identically-named stations stay distinct. The demo's second act cuts
// rack-b's network: the head keeps answering scrapes, rack-b's
// last-known stations serve marked stale, powersensor_leaf_up drops to
// 0, and the lifecycle event log records the outage. The third act
// restores it and the head converges back — up 1 → 0 → 1.
//
//	go run ./examples/federation
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/export"
	"repro/internal/federation"
	"repro/internal/fleet"
)

// flakyLeaf fronts a leaf handler with a kill switch: down, it cuts the
// connection the way a crashed daemon would.
type flakyLeaf struct {
	h    http.Handler
	down atomic.Bool
}

func (f *flakyLeaf) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.down.Load() {
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		http.Error(w, "down", http.StatusBadGateway)
		return
	}
	f.h.ServeHTTP(w, r)
}

func newLeaf(spec string) (*fleet.Manager, *flakyLeaf, *httptest.Server) {
	mgr, err := fleet.FromSpec(spec, 1, fleet.Config{RingCap: 1024})
	if err != nil {
		log.Fatal(err)
	}
	mgr.StepAll(50 * time.Millisecond) // warm up so the first poll sees data
	fl := &flakyLeaf{h: export.New(mgr).Handler()}
	return mgr, fl, httptest.NewServer(fl)
}

// show prints the head-side lines that tell the story: leaf health and
// one station series per leaf.
func show(head *federation.Head, label string) {
	fmt.Printf("── %s\n", label)
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	head.Handler().ServeHTTP(rec, req)
	body, _ := io.ReadAll(rec.Result().Body)
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "powersensor_leaf_up{") ||
			strings.HasPrefix(line, "powersensor_leaf_breaker_state{") ||
			strings.Contains(line, `powersensor_station_health{leaf=`) {
			fmt.Println("  ", line)
		}
	}
}

func main() {
	// Two leaves, deliberately reusing station names: the head's leaf
	// label is what keeps rack-a's gpu0 and rack-b's gpu0 apart.
	mgrA, _, leafA := newLeaf("gpu0=rtx4000ada,node0=rapl")
	defer leafA.Close()
	defer mgrA.Close()
	mgrB, flakyB, leafB := newLeaf("gpu0=w7700,node0=nvml")
	defer leafB.Close()
	defer mgrB.Close()

	head, err := federation.New(federation.Config{
		Leaves: []federation.Leaf{
			{Name: "rack-a", URL: leafA.URL},
			{Name: "rack-b", URL: leafB.URL},
		},
		Interval:      200 * time.Millisecond,
		Timeout:       100 * time.Millisecond,
		Retries:       0,
		FailThreshold: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Act 1 — both racks up: every station fresh, grouped by leaf.
	head.PollOnce(ctx)
	show(head, "both racks up")

	// Act 2 — rack-b dies. The head keeps answering: rack-a stays
	// fresh, rack-b's last-known stations serve at health 3 (stale) and
	// its leaf_up gauge drops; three straight failures open its breaker,
	// so later rounds cost one rejected decision, not a timeout.
	flakyB.down.Store(true)
	for i := 0; i < 3; i++ {
		head.PollOnce(ctx)
	}
	show(head, "rack-b down (stations stale, breaker open)")

	// Act 3 — rack-b restarts. PollOnce here stands in for the poll
	// loop's next tick after the breaker's cooldown; the half-open probe
	// succeeds, the breaker closes, and the view converges fresh.
	flakyB.down.Store(false)
	mgrB.StepAll(50 * time.Millisecond)
	time.Sleep(850 * time.Millisecond) // let the 4×interval cooldown lapse
	head.PollOnce(ctx)
	show(head, "rack-b recovered")

	fmt.Println("── lifecycle events")
	for _, ev := range head.Events().Tail(0) {
		fmt.Printf("   %-8s leaf=%s %s\n", ev.Type, ev.Station, ev.Reason)
	}
}
