// Auto-tuning example: optimise the Tensor-Core Beamformer for both compute
// performance and energy efficiency on a simulated RTX 4000 Ada, the
// Section V-A2 workflow.
//
// A reduced search space keeps the example fast; cmd/experiments fig8 runs
// the paper-sized 5120-configuration sweep.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/rig"
	"repro/internal/tuner"
)

func main() {
	g := gpu.New(gpu.RTX4000Ada(), 21)
	r, err := rig.NewPCIe(g, 21)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()

	opts := tuner.DefaultOptions(g.Spec())
	opts.Trials = 3
	// Every 15th variant (odd stride to cover all parameter dimensions).
	space := kernels.Space()
	for i := 0; i < len(space); i += 15 {
		opts.Configs = append(opts.Configs, space[i])
	}
	opts.Clocks = []float64{1485, 1590, 1710, 1815}

	res, err := tuner.Tune(r, tuner.PowerSensor3Strategy, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmarked %d configurations in %.0f s of tuning time\n",
		len(res.Measurements), res.TuningTime.Seconds())

	fast, eff := res.Fastest(), res.MostEfficient()
	fmt.Printf("\nfastest        : %s @ %v MHz → %.1f TFLOP/s, %.2f TFLOP/J\n",
		fast.Config, fast.ClockMHz, fast.TFLOPS, fast.TFLOPJ)
	fmt.Printf("most efficient : %s @ %v MHz → %.1f TFLOP/s, %.2f TFLOP/J\n",
		eff.Config, eff.ClockMHz, eff.TFLOPS, eff.TFLOPJ)
	fmt.Printf("trade-off      : +%.1f%% efficiency for -%.1f%% performance\n",
		(eff.TFLOPJ/fast.TFLOPJ-1)*100, (1-eff.TFLOPS/fast.TFLOPS)*100)

	fmt.Println("\nPareto front (TFLOP/J ↑, TFLOP/s ↓):")
	for _, p := range res.Front {
		m := res.Measurements[p.Tag]
		fmt.Printf("  %.2f TFLOP/J  %5.1f TFLOP/s  %s @ %v MHz\n",
			m.TFLOPJ, m.TFLOPS, m.Config, m.ClockMHz)
	}
}
