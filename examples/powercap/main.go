// Power-capping example: one of the software techniques the paper's
// introduction motivates. A controller uses PowerSensor3 feedback to pick
// the highest GPU application clock whose measured power stays under a
// budget — a closed measurement loop that the 10 Hz on-board sensors are
// too slow and too coarse to drive per-kernel.
//
//	go run ./examples/powercap
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/rig"
	"repro/internal/tuner"
)

func main() {
	const budgetW = 95.0

	g := gpu.New(gpu.RTX4000Ada(), 55)
	r, err := rig.NewPCIe(g, 55)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()

	// The workload: a fixed beamformer variant; only the clock is tuned.
	cfg := kernels.BeamformerConfig{BlockX: 128, BlockY: 2, FragsPerBlock: 4, FragsPerWarp: 4, DoubleBuffer: true}
	problem := kernels.DefaultProblem()

	fmt.Printf("power budget: %.0f W\n\n", budgetW)
	fmt.Println("  clock   measured W   TFLOP/s   within budget")

	type pick struct {
		clock  float64
		watts  float64
		tflops float64
	}
	var best pick
	for _, clock := range tuner.ClocksFor(g.Spec()) {
		g.SetAppClock(clock)
		r.Idle(50 * time.Millisecond) // settle at the new clock

		// Measure one kernel directly: at 20 kHz a single run suffices.
		k := cfg.Kernel(g.Spec(), clock, problem)
		dur, joules := r.MeasureKernel(k)
		watts := joules / dur.Seconds()
		tflops := problem.FLOPs() / dur.Seconds() / 1e12

		ok := watts <= budgetW
		mark := " "
		if ok && tflops > best.tflops {
			best = pick{clock, watts, tflops}
			mark = "*"
		}
		fmt.Printf("%s %5.0f    %8.1f    %6.1f    %v\n", mark, clock, watts, tflops, ok)
	}
	g.SetAppClock(0)

	if best.clock == 0 {
		fmt.Println("\nno clock meets the budget")
		return
	}
	fmt.Printf("\nselected %g MHz: %.1f TFLOP/s at %.1f W (budget %.0f W)\n",
		best.clock, best.tflops, best.watts, budgetW)
	fmt.Println("with an on-board sensor this loop would need seconds of dwell per")
	fmt.Println("clock; PowerSensor3 resolves each kernel in a single execution.")
}
