// Fleet: run three measurement stations concurrently and scrape them once.
//
// This is the smallest end-to-end use of the fleet subsystem: a PCIe GPU,
// a USB-C SoC and an SSD, each driven by its own goroutine with its own
// self-repeating workload, served over HTTP by the exporter and scraped a
// single time — what cmd/psd does continuously.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/export"
	"repro/internal/fleet"
)

func main() {
	// Assemble the fleet: three named stations. (With real hardware each
	// would be one PowerSensor3 on /dev/ttyACM*, wired to a different
	// device under test.)
	mgr, err := fleet.FromSpec("gpu0=rtx4000ada,soc0=jetson,ssd0=ssd", 42, fleet.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Close()

	// Let every station simulate one second of virtual time: GPU kernel
	// launches, SoC load and SSD I/O all land in the per-station rings.
	mgr.StepAll(time.Second)

	// Fleet status, as /api/fleet reports it.
	fmt.Println("station      kind        power      energy    samples")
	for _, st := range mgr.Snapshot() {
		fmt.Printf("%-12s %-11s %7.2f W %8.2f J %10d\n",
			st.Name, st.Kind, st.Watts, st.Joules, st.Samples)
	}

	// Serve the exporter and scrape /metrics once, like Prometheus would.
	srv := httptest.NewServer(export.New(mgr).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nscrape excerpt (per-station board power and energy):")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "powersensor_board_watts") ||
			strings.HasPrefix(line, "powersensor_joules_total") {
			fmt.Println(" ", line)
		}
	}
}
