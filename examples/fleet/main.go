// Fleet: run a heterogeneous fleet of measurement stations — including
// derived pipeline views — scrape it, then hot-add and retire a station
// while the fleet keeps serving.
//
// This is the smallest end-to-end use of the dynamic fleet subsystem: a
// PCIe GPU and an SSD measured by PowerSensor3 at 20 kHz, next to two
// software meters — an NVML counter at ~10 Hz and a RAPL energy counter
// at ~1 kHz throttled to 100 Hz with sampling-overhead accounting — all
// behind the same streaming source layer, each driven with its own
// self-repeating workload, served over HTTP by the exporter. The fleet
// also serves gpu0lo, a derived view of gpu0's rig: the same 20 kHz
// stream resampled to 1 kHz with a 0.98 gain trim, stacked from pipeline
// stages via the spec's pipe syntax (the full grammar is documented on
// simsetup.ParseFleet). A sixth station, flaky0, carries a reproducible
// failure scenario — a stuck register and rare single-sample glitches
// from the fault-injection stages — and the demo's first act replays it
// deterministically, printing the station-health transitions the fleet
// watchdog publishes as it detects the flatline, quarantines the spikes
// and recovers the station. Mid-serve, a station is adopted and later
// retired — what the psd daemon's POST /api/fleet/add and
// /api/fleet/remove/{name} endpoints do on an operator's request — while
// scrapes keep flowing.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/export"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/simsetup"
)

func scrape(srv *httptest.Server, prefixes ...string) []string {
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	var out []string
	for _, line := range strings.Split(string(body), "\n") {
		for _, p := range prefixes {
			if strings.HasPrefix(line, p) {
				out = append(out, line)
			}
		}
	}
	return out
}

func main() {
	// Assemble the fleet: five named stations over two backend families
	// plus a derived view. gpu0lo pins gpu0's seed index with "@0", so it
	// is the same simulated rig served through a resample+calibrate
	// pipeline; cpu0 is rate-limited so the fleet ingests 100 Hz of its
	// 1 kHz counter. (With real hardware the PowerSensor3 stations would
	// each be one sensor on /dev/ttyACM*; the software meters would poll
	// NVML/RAPL.) Rate 20 paces virtual time at 20× wall, so the demo's
	// short sleeps cover whole workload cycles.
	// flaky0 is the same SSD rig with a reproducible failure scenario
	// stacked on: a register that sticks for whole 2 s windows (serving
	// the last healthy reading at full rate — fake liveness) and rare 8×
	// single-sample glitches. The fault stages draw from the station seed,
	// so this exact failure timeline replays on every run.
	mgr, err := fleet.FromSpec(
		"gpu0=rtx4000ada,gpu0lo=rtx4000ada@0|resample:1000|calib:0.98,"+
			"ssd0=ssd,gpu0sw=nvml,cpu0=rapl|ratelimit:100,"+
			"flaky0=ssd|stuck:0.35:2s|spike:0.0001:8",
		42, fleet.Config{Rate: 20})
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Close()

	// Before going live, replay flaky0's failure scenario
	// deterministically: drive the fleet by hand for 14 virtual seconds
	// and watch the watchdog walk the station through its health states —
	// the stuck windows flatline it (bit-identical blocks at full rate),
	// the glitches are quarantined before they can reach the ring, and
	// each clean stretch recovers it.
	fmt.Println("flaky0 health timeline (stuck:0.35:2s + spike:0.0001:8, watchdog reacting):")
	seen := 0
	for v := 0; v < 140; v++ {
		mgr.StepAll(100 * time.Millisecond)
		events := mgr.Events().Tail(0)
		for _, ev := range events[seen:] {
			if ev.Station == "flaky0" && ev.Type == obs.EventHealth {
				fmt.Printf("  t=%4.1fs  %s\n", float64(v+1)*0.1, ev.Reason)
			}
		}
		seen = len(events)
	}
	st := mgr.Device("flaky0").Status()
	fmt.Printf("  episodes: %d flatlines, %d spikes quarantined (health now %q)\n",
		st.Flatlines, st.SpikesQuarantined, st.Health)

	// Hand the stations to their driver goroutines — from here on the
	// fleet serves live.
	mgr.Start()
	defer mgr.Stop()
	srv := httptest.NewServer(export.New(mgr).Handler())
	defer srv.Close()

	// The raw 20 kHz station and its 1 kHz derived view serve side by
	// side; the throttled meter accounts the wall time its sampling cost.
	fmt.Println("\nstation      backend                      rate        power      energy    samples  state    health")
	snap := mgr.Snapshot()
	for _, st := range snap {
		fmt.Printf("%-12s %-28s %7g Hz %7.2f W %8.2f J %10d  %-8s %s\n",
			st.Name, st.Backend, st.RateHz, st.Watts, st.Joules, st.Samples, st.State, st.Health)
	}
	for _, st := range snap {
		if st.OverheadSeconds > 0 {
			fmt.Printf("\n%s sampling overhead so far: %.3g s (powersensor_source_overhead_seconds)\n",
				st.Name, st.OverheadSeconds)
		}
	}

	// Hot-add a station against the running manager: its driver goroutine
	// spawns immediately, and the next scrape carries its series. This is
	// what POST /api/fleet/add?name=gpu1&kind=synth does on a psd daemon.
	hot, err := simsetup.NewStation("synth", 7)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := mgr.Add("gpu1", "synth", hot); err != nil {
		log.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the new driver ingest
	fmt.Println("\nafter hot add (fleet keeps serving):")
	for _, line := range scrape(srv, "powersensor_fleet_", "powersensor_board_watts") {
		fmt.Println(" ", line)
	}

	// Retire it again: the driver stops, the in-flight downsample block
	// drains into the ring as a final point, subscriptions close, and the
	// station's series leave the exposition — the survivors never pause.
	if err := mgr.Remove("gpu1"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter retirement:")
	for _, line := range scrape(srv, "powersensor_fleet_", "powersensor_board_watts") {
		fmt.Println(" ", line)
	}
	fmt.Printf("\nchurn: %d stations adopted, %d retired over the fleet's life\n",
		mgr.Adopted(), mgr.Retired())
}
