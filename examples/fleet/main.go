// Fleet: run a heterogeneous fleet of measurement stations, scrape it,
// then hot-add and retire a station while the fleet keeps serving.
//
// This is the smallest end-to-end use of the dynamic fleet subsystem: a
// PCIe GPU and an SSD measured by PowerSensor3 at 20 kHz, next to two
// software meters — an NVML counter at ~10 Hz and a RAPL energy counter
// at ~1 kHz — all behind the same streaming source layer, each driven
// with its own self-repeating workload, served over HTTP by the exporter.
// Mid-serve, a fifth station is adopted and later retired — what the psd
// daemon's POST /api/fleet/add and /api/fleet/remove/{name} endpoints do
// on an operator's request — while scrapes keep flowing.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/export"
	"repro/internal/fleet"
	"repro/internal/simsetup"
)

func scrape(srv *httptest.Server, prefixes ...string) []string {
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	var out []string
	for _, line := range strings.Split(string(body), "\n") {
		for _, p := range prefixes {
			if strings.HasPrefix(line, p) {
				out = append(out, line)
			}
		}
	}
	return out
}

func main() {
	// Assemble the fleet: four named stations over two backend families.
	// (With real hardware the PowerSensor3 stations would each be one
	// sensor on /dev/ttyACM*; the software meters would poll NVML/RAPL.)
	// Rate 20 paces virtual time at 20× wall, so the demo's short sleeps
	// cover whole workload cycles.
	mgr, err := fleet.FromSpec("gpu0=rtx4000ada,ssd0=ssd,gpu0sw=nvml,cpu0=rapl",
		42, fleet.Config{Rate: 20})
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Close()

	// Warm up one virtual second synchronously, then hand the stations to
	// their driver goroutines — from here on the fleet serves live.
	mgr.StepAll(time.Second)
	mgr.Start()
	defer mgr.Stop()
	srv := httptest.NewServer(export.New(mgr).Handler())
	defer srv.Close()

	fmt.Println("station      kind        backend       rate        power      energy    samples  state")
	for _, st := range mgr.Snapshot() {
		fmt.Printf("%-12s %-11s %-13s %7g Hz %7.2f W %8.2f J %10d  %s\n",
			st.Name, st.Kind, st.Backend, st.RateHz, st.Watts, st.Joules, st.Samples, st.State)
	}

	// Hot-add a station against the running manager: its driver goroutine
	// spawns immediately, and the next scrape carries its series. This is
	// what POST /api/fleet/add?name=gpu1&kind=synth does on a psd daemon.
	hot, err := simsetup.NewStation("synth", 7)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := mgr.Add("gpu1", "synth", hot); err != nil {
		log.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the new driver ingest
	fmt.Println("\nafter hot add (fleet keeps serving):")
	for _, line := range scrape(srv, "powersensor_fleet_", "powersensor_board_watts") {
		fmt.Println(" ", line)
	}

	// Retire it again: the driver stops, the in-flight downsample block
	// drains into the ring as a final point, subscriptions close, and the
	// station's series leave the exposition — the survivors never pause.
	if err := mgr.Remove("gpu1"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter retirement:")
	for _, line := range scrape(srv, "powersensor_fleet_", "powersensor_board_watts") {
		fmt.Println(" ", line)
	}
	fmt.Printf("\nchurn: %d stations adopted, %d retired over the fleet's life\n",
		mgr.Adopted(), mgr.Retired())
}
