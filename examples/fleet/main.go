// Fleet: run a heterogeneous fleet of measurement stations and scrape it
// once.
//
// This is the smallest end-to-end use of the fleet subsystem: a PCIe GPU
// and an SSD measured by PowerSensor3 at 20 kHz, next to two software
// meters — an NVML counter at ~10 Hz and a RAPL energy counter at ~1 kHz
// — all behind the same streaming source layer, each driven with its own
// self-repeating workload, served over HTTP by the exporter and scraped a
// single time — what cmd/psd does continuously.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/export"
	"repro/internal/fleet"
)

func main() {
	// Assemble the fleet: four named stations over two backend families.
	// (With real hardware the PowerSensor3 stations would each be one
	// sensor on /dev/ttyACM*; the software meters would poll NVML/RAPL.)
	mgr, err := fleet.FromSpec("gpu0=rtx4000ada,ssd0=ssd,gpu0sw=nvml,cpu0=rapl",
		42, fleet.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Close()

	// Let every station simulate one second of virtual time: GPU kernel
	// launches, SSD I/O and CPU duty cycles all land in the per-station
	// rings — each ingested at its backend's native rate.
	mgr.StepAll(time.Second)

	// Fleet status, as /api/fleet reports it.
	fmt.Println("station      kind        backend       rate        power      energy    samples")
	for _, st := range mgr.Snapshot() {
		fmt.Printf("%-12s %-11s %-13s %7g Hz %7.2f W %8.2f J %10d\n",
			st.Name, st.Kind, st.Backend, st.RateHz, st.Watts, st.Joules, st.Samples)
	}

	// Serve the exporter and scrape /metrics once, like Prometheus would.
	srv := httptest.NewServer(export.New(mgr).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nscrape excerpt (per-station board power and energy):")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "powersensor_board_watts") ||
			strings.HasPrefix(line, "powersensor_joules_total") {
			fmt.Println(" ", line)
		}
	}
}
