// Quickstart: open a PowerSensor3, measure an interval, read energy.
//
// This is the smallest end-to-end use of the library: a 12 V / 10 A sensor
// module on a bench supply with an 8 A load — the paper's basic accuracy
// setup (Fig. 3) — measured in interval mode.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/analog"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/device"
)

func main() {
	// Assemble the hardware: one sensor module between a lab supply and an
	// electronic load. (With real hardware this would be plugging the
	// module into the baseboard and opening /dev/ttyACM0.)
	dev := device.New(42, device.Slot{
		Module: analog.NewModule(analog.Slot10A, 12),
		Source: device.BenchSource{
			Supply: &bench.Supply{Nominal: 12},
			Load:   bench.ConstantLoad(8), // 8 A → 96 W
		},
	})

	// Open the sensor: reads the device configuration and starts the
	// 20 kHz stream.
	ps, err := core.Open(dev)
	if err != nil {
		log.Fatal(err)
	}
	defer ps.Close()

	// Interval mode: snapshot, run the workload, snapshot, difference.
	first := ps.Read()
	ps.Advance(2 * time.Second) // the "workload" is two seconds of load
	second := ps.Read()

	fmt.Printf("interval : %.3f s\n", core.Seconds(first, second))
	fmt.Printf("energy   : %.2f J\n", core.Joules(first, second, 0))
	fmt.Printf("power    : %.2f W (expected ~96 W)\n", core.Watts(first, second, 0))
	fmt.Printf("samples  : %d (20 kHz)\n", second.Samples-first.Samples)

	// Instantaneous values are available too.
	st := ps.Read()
	fmt.Printf("now      : %.3f V × %.3f A = %.2f W\n", st.Volts[0], st.Amps[0], st.Watts[0])
}
