// Step-response example: verify that PowerSensor3 resolves fast power
// transients — the Fig. 5 measurement. A 12 V / 10 A module watches an
// electronic load stepping between 3.3 A and 8 A at 100 Hz; the 20 kHz
// stream captures every edge within a sample or two.
//
//	go run ./examples/stepresponse
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/analog"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/device"
)

func main() {
	dev := device.New(11, device.Slot{
		Module: analog.NewModule(analog.Slot10A, 12),
		Source: device.BenchSource{
			Supply: &bench.Supply{Nominal: 12},
			Load:   bench.SquareLoad{High: 8, Low: 3.3, FreqHz: 100},
		},
	})
	ps, err := core.Open(dev)
	if err != nil {
		log.Fatal(err)
	}
	defer ps.Close()

	// Capture 25 ms (2.5 modulation periods) at full rate.
	var watts []float64
	hook := ps.AttachSample(func(s core.Sample) { watts = append(watts, s.Watts[0]) })
	ps.Advance(25 * time.Millisecond)
	ps.DetachSample(hook)

	fmt.Printf("captured %d samples at 20 kHz (50 µs resolution)\n\n", len(watts))

	// Render every 4th sample as a bar chart: the square wave is obvious.
	for i := 0; i < len(watts); i += 4 {
		t := float64(i) * 50e-3 // ms
		bar := strings.Repeat("#", int(watts[i]/2.5))
		fmt.Printf("%7.2f ms %7.1f W %s\n", t, watts[i], bar)
	}

	// Count edges: at 100 Hz over 25 ms there are 5 transitions.
	edges := 0
	for i := 1; i < len(watts); i++ {
		if (watts[i-1] < 65) != (watts[i] < 65) {
			edges++
		}
	}
	fmt.Printf("\ntransitions seen: %d (expected ~5 at 100 Hz over 25 ms)\n", edges)
	fmt.Println("each edge settles within 1-2 samples: the sensor bandwidth (300 kHz)")
	fmt.Println("is far above the 20 kHz output rate, as designed.")
}
