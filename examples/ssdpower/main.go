// SSD power example: measure a storage device that has no built-in power
// sensor, the Section V-C workflow. Runs a short request-size sweep of
// random reads and a sustained random-write window on the simulated
// Samsung 980 PRO, showing that write bandwidth varies under garbage
// collection while power stays flat.
//
//	go run ./examples/ssdpower
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fio"
	"repro/internal/simsetup"
	"repro/internal/stats"
)

func main() {
	r, err := simsetup.NewDiskRig(33, true)
	if err != nil {
		log.Fatal(err)
	}
	defer r.PS.Close()

	fmt.Println("random reads: power and bandwidth vs request size")
	fmt.Println("  req KiB   power W   MiB/s")
	for _, kib := range []int{4, 32, 256, 2048} {
		before := r.PS.Read()
		res := fio.Run(r.Disk, fio.Job{
			Pattern: fio.RandRead, BlockKiB: kib, IODepth: 8,
			Runtime: 2 * time.Second, Seed: uint64(kib),
		}, r.Sync)
		after := r.PS.Read()
		fmt.Printf("  %7d   %7.2f   %5.0f\n",
			kib, core.Watts(before, after, -1), res.MeanMiBps)
	}

	fmt.Println("\nsustained 4 KiB random writes (GC variability):")
	var powers []float64
	last := r.PS.Read()
	nextMark := r.Disk.Now() + time.Second
	res := fio.Run(r.Disk, fio.Job{
		Pattern: fio.RandWrite, BlockKiB: 4, IODepth: 8,
		Runtime: 20 * time.Second, Seed: 33, ReportGap: time.Second,
	}, func(now time.Duration) {
		r.Sync(now)
		for now >= nextMark {
			st := r.PS.Read()
			powers = append(powers, core.Watts(last, st, -1))
			last = st
			nextMark += time.Second
		}
	})

	fmt.Println("  sec   MiB/s    power W")
	for i := range res.SeriesTimes {
		p := 0.0
		if i < len(powers) {
			p = powers[i]
		}
		bar := strings.Repeat("=", int(res.SeriesMiBps[i]/25))
		fmt.Printf("  %3.0f   %6.0f    %5.2f  %s\n", res.SeriesTimes[i], res.SeriesMiBps[i], p, bar)
	}

	bw := stats.Summarize(res.SeriesMiBps)
	pw := stats.Summarize(powers)
	fmt.Printf("\nbandwidth: mean %.0f MiB/s, CV %.2f\n", bw.Mean, bw.Std/bw.Mean)
	fmt.Printf("power    : mean %.2f W,     CV %.2f\n", pw.Mean, pw.Std/pw.Mean)
	fmt.Printf("write amplification: %.2f\n", r.Disk.Stats().WriteAmplification())
	fmt.Println("\nconclusion: bandwidth is not an accurate indicator of SSD power.")
}
