package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Lifecycle event types, matching the fleet's device state machine.
const (
	// EventAdopt: a station was adopted by a manager (fleet Add).
	EventAdopt = "adopt"
	// EventStart: a driver goroutine began advancing a station.
	EventStart = "start"
	// EventRetire: retirement began (fleet Remove claimed the station).
	EventRetire = "retire"
	// EventClose: the station finished draining and released its source.
	EventClose = "close"
	// EventHealth: a station's health state changed; Reason carries the
	// new state ("healthy", "degraded", "stale", "flatlined").
	EventHealth = "health"
	// EventRestart: the watchdog acted on a faulted source; Reason says
	// how ("backoff" when a read error or stall began a backoff window,
	// "restart" on a recovery attempt, "recovered" when reads resumed
	// cleanly, "parked" when the restart budget ran out).
	EventRestart = "restart"
	// EventLeaf: a federation head's view of one leaf daemon changed;
	// Station carries the leaf name and Reason the transition ("up" when
	// polls resume succeeding, "down" when they start failing).
	EventLeaf = "leaf"
	// EventBreaker: a leaf's circuit breaker changed state; Station
	// carries the leaf name and Reason the new state ("open",
	// "half-open", "closed").
	EventBreaker = "breaker"
)

// Event is one structured fleet lifecycle transition.
type Event struct {
	// Seq numbers events from 1 in append order; gaps at the start of a
	// tail mean older events were overwritten (see EventRing.Dropped).
	Seq uint64 `json:"seq"`
	// Time is the wall-clock append time.
	Time time.Time `json:"time"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Station and Kind identify the station transitioning.
	Station string `json:"station"`
	Kind    string `json:"kind"`
	// Reason says why, when the type alone is ambiguous — "remove" for a
	// retirement-driven close versus "shutdown" for a manager close.
	Reason string `json:"reason,omitempty"`
}

// EventRing is a fixed-capacity ring of lifecycle events: appends
// overwrite oldest-first once full, and a drop counter records how many
// events the ring no longer holds. Lifecycle transitions are rare (per
// churn, not per sample), so appends take a mutex — this is explicitly
// NOT a hot-path instrument; the hot path gets Hist. Safe for concurrent
// use.
type EventRing struct {
	mu      sync.Mutex
	buf     []Event
	next    int // buf index the next append writes
	n       int // events currently held
	total   atomic.Uint64
	dropped atomic.Uint64
}

// NewEventRing returns a ring holding the most recent capacity events.
// It panics on a non-positive capacity — a construction-time wiring
// error, like fleet.NewRing's.
func NewEventRing(capacity int) *EventRing {
	if capacity <= 0 {
		panic("obs: NewEventRing with non-positive capacity")
	}
	return &EventRing{buf: make([]Event, capacity)}
}

// Cap returns the ring's fixed capacity.
func (r *EventRing) Cap() int { return len(r.buf) }

// Append records one event, stamping its sequence number and wall time.
// Once the ring is full the oldest event is dropped (counted in
// Dropped) to make room.
func (r *EventRing) Append(typ, station, kind, reason string) {
	now := time.Now()
	r.mu.Lock()
	seq := r.total.Add(1)
	r.buf[r.next] = Event{
		Seq: seq, Time: now, Type: typ,
		Station: station, Kind: kind, Reason: reason,
	}
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	if r.n < len(r.buf) {
		r.n++
	} else {
		r.dropped.Add(1)
	}
	r.mu.Unlock()
}

// Tail returns up to max of the most recent events, oldest first. A
// non-positive max returns everything held. The returned slice is the
// caller's own copy.
func (r *EventRing) Tail(max int) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.n
	if max > 0 && max < n {
		n = max
	}
	if n == 0 {
		return nil
	}
	out := make([]Event, n)
	// Oldest-first order starts at next when full, at 0 while filling;
	// skip (held-n) older entries when a cap was requested.
	start := 0
	if r.n == len(r.buf) {
		start = r.next
	}
	start = (start + r.n - n) % len(r.buf)
	for i := 0; i < n; i++ {
		out[i] = r.buf[(start+i)%len(r.buf)]
	}
	return out
}

// Total returns the number of events ever appended.
func (r *EventRing) Total() uint64 { return r.total.Load() }

// Dropped returns the number of events overwritten by wraparound —
// Total minus what the ring still holds.
func (r *EventRing) Dropped() uint64 { return r.dropped.Load() }
