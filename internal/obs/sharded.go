package obs

import "time"

// ShardedHist is a Hist striped across independent cells, for hot paths
// where many recorder goroutines are themselves partitioned — one fleet
// shard's step worker per stripe, for instance. A plain Hist is already
// lock-free, but recorders on different cores still bounce its bucket
// cache lines between caches; giving each partition its own stripe keeps
// recording core-local, and readers pay the (cold-path) cost of summing
// stripes at snapshot time instead.
//
// A ShardedHist presents the same read surface as Hist — Snapshot filling
// a caller-owned HistSnapshot, Count, Sum — so renderers treat the two
// interchangeably. Recorders go through Stripe(i), which returns an
// ordinary *Hist.
type ShardedHist struct {
	// pad stripes to their own cache lines: each Hist is 240 bytes
	// (8-byte sum + 29 8-byte buckets), so adjacent stripes would
	// otherwise share a line at their boundary and recorders on
	// neighbouring stripes would still false-share.
	stripes []paddedHist
}

type paddedHist struct {
	Hist
	_ [64 - (8*(NumBuckets+1))%64]byte
}

// NewShardedHist returns a histogram with n independent stripes (at
// least one).
func NewShardedHist(n int) *ShardedHist {
	if n < 1 {
		n = 1
	}
	return &ShardedHist{stripes: make([]paddedHist, n)}
}

// Stripes returns the stripe count.
func (h *ShardedHist) Stripes() int { return len(h.stripes) }

// Stripe returns stripe i's histogram for recording. Out-of-range
// indices clamp into the stripe array, so a caller with a loose index
// (a shard count that shrank across a config reload) records into a
// valid stripe rather than panicking.
func (h *ShardedHist) Stripe(i int) *Hist {
	if i < 0 {
		i = 0
	}
	return &h.stripes[i%len(h.stripes)].Hist
}

// Record adds one observation to stripe zero — the single-recorder
// convenience path; partitioned recorders should hold their own Stripe.
func (h *ShardedHist) Record(d time.Duration) {
	h.stripes[0].Hist.Record(d)
}

// Snapshot fills s with the sum over every stripe. Like Hist.Snapshot it
// is allocation-free and safe against concurrent recording: cells are
// read one at a time, so a racing Record may be missed but never torn,
// and Count equals the bucket total within the same snapshot.
func (h *ShardedHist) Snapshot(s *HistSnapshot) {
	s.Count = 0
	for i := range s.Buckets {
		s.Buckets[i] = 0
	}
	var sum int64
	for st := range h.stripes {
		hs := &h.stripes[st].Hist
		for i := range s.Buckets {
			n := hs.buckets[i].Load()
			s.Buckets[i] += n
			s.Count += n
		}
		sum += hs.sum.Load()
	}
	s.Sum = time.Duration(sum)
}

// Count returns the number of observations recorded across all stripes.
func (h *ShardedHist) Count() uint64 {
	var n uint64
	for st := range h.stripes {
		n += h.stripes[st].Hist.Count()
	}
	return n
}

// Sum returns the cumulative recorded latency across all stripes.
func (h *ShardedHist) Sum() time.Duration {
	var ns int64
	for st := range h.stripes {
		ns += h.stripes[st].Hist.sum.Load()
	}
	return time.Duration(ns)
}
