// Package obs is the self-telemetry layer: the instruments the
// measurement system uses to observe *itself*. The platform quantifies
// the power of devices under test; this package quantifies the cost and
// health of doing so — ingest fold latency, driver pacing jitter, stage
// sampling cost, scrape timing — the observer-overhead concern the
// RAPL-cost literature raises and per-backend self-reporting tools (PMT)
// ship, generalised from the pipeline layer's single cumulative
// overhead-seconds counter into full latency distributions plus a
// structured record of fleet lifecycle transitions.
//
// Two instrument families:
//
//   - Hist: a lock-free, zero-allocation latency histogram over
//     power-of-two buckets, backed by plain atomic arrays. Record is a
//     branch, two shifts and two atomic adds — no mutex, no allocation,
//     no amortised cost cliffs — so it is safe on the 20 kHz ingest hot
//     path, which must keep its allocs/op == 0 contract with
//     instrumentation enabled.
//
//   - EventRing: a fixed-capacity ring of structured lifecycle events
//     (station adopted, driver started, station retired, closed) with
//     oldest-first overwrite and a drop counter. Lifecycle transitions
//     are rare, so the ring takes a mutex; reads are cheap JSON-ready
//     tails for daemon introspection endpoints.
//
// The exporter renders Hist contents as Prometheus histogram families
// (powersensor_self_*) and serves EventRing tails as /api/events.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// histMinShift sets the first bucket's upper bound: 2^histMinShift
	// nanoseconds. Everything at or below 16 ns — around the cost of the
	// Record call itself — lands in bucket zero.
	histMinShift = 4

	// NumBuckets is the fixed bucket count of every Hist: buckets
	// 0..NumBuckets-2 have inclusive upper bounds 2^(histMinShift+i)
	// nanoseconds (16 ns up to ~2.1 s), and the last bucket absorbs
	// everything beyond — the +Inf bucket of the rendered exposition.
	NumBuckets = 29
)

// BucketBound returns bucket i's inclusive upper bound. The last bucket
// is unbounded; for it (and any larger i) BucketBound returns the
// largest Duration as a stand-in for +Inf.
func BucketBound(i int) time.Duration {
	if i >= NumBuckets-1 {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(1) << (histMinShift + i)
}

// bucketOf maps a latency in nanoseconds to its bucket index: the
// smallest i with ns <= BucketBound(i). Non-positive values land in
// bucket zero.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	// For ns in (2^(b-1), 2^b], Len64(ns-1) == b: an exact power of two
	// belongs to the bucket bounded by it, not the next one up.
	i := bits.Len64(uint64(ns-1)) - histMinShift
	if i < 0 {
		return 0
	}
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// Hist is a latency histogram over power-of-two buckets, safe for
// concurrent use by any number of recorders and readers. The zero value
// is ready to use. Record performs no allocation and takes no lock —
// one atomic add into the bucket array plus one into the running sum —
// so it can sit on paths with a hard zero-alloc contract. There is no
// separate count cell: the sample count is the sum over buckets, which
// keeps the rendered +Inf bucket and _count consistent by construction
// even against concurrent recording.
type Hist struct {
	sum     atomic.Int64 // cumulative nanoseconds
	buckets [NumBuckets]atomic.Uint64
}

// Record adds one latency observation. Negative durations (a clock
// stepping backwards mid-measurement) clamp into bucket zero with zero
// sum contribution.
func (h *Hist) Record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.sum.Add(ns)
}

// HistSnapshot is one point-in-time copy of a Hist, filled by Snapshot.
// Buckets holds per-bucket (not cumulative) counts; Count is their sum.
type HistSnapshot struct {
	Count   uint64
	Sum     time.Duration
	Buckets [NumBuckets]uint64
}

// Snapshot fills s from the histogram's atomic cells — allocation-free,
// usable concurrently with recorders. Cells are read one by one, so a
// snapshot racing a Record may miss that one observation from some
// buckets but never tears an individual cell, and Count always equals
// the bucket total within the same snapshot.
func (h *Hist) Snapshot(s *HistSnapshot) {
	s.Count = 0
	for i := range s.Buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	s.Sum = time.Duration(h.sum.Load())
}

// Count returns the number of observations recorded so far.
func (h *Hist) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the cumulative recorded latency.
func (h *Hist) Sum() time.Duration {
	return time.Duration(h.sum.Load())
}
