package obs

import (
	"sync"
	"testing"
	"time"
)

// TestBucketBounds pins the bucket layout: power-of-two inclusive upper
// bounds from 16 ns, +Inf last.
func TestBucketBounds(t *testing.T) {
	if BucketBound(0) != 16*time.Nanosecond {
		t.Errorf("BucketBound(0) = %v, want 16ns", BucketBound(0))
	}
	if BucketBound(1) != 32*time.Nanosecond {
		t.Errorf("BucketBound(1) = %v, want 32ns", BucketBound(1))
	}
	// The last finite bucket reaches past 2 s, so any realistic latency
	// has a finite bucket.
	if last := BucketBound(NumBuckets - 2); last <= 2*time.Second {
		t.Errorf("last finite bound %v, want > 2s", last)
	}
	if BucketBound(NumBuckets-1) != time.Duration(1<<63-1) {
		t.Errorf("+Inf bucket bound = %v", BucketBound(NumBuckets-1))
	}
	for i := 1; i < NumBuckets-1; i++ {
		if BucketBound(i) != 2*BucketBound(i-1) {
			t.Errorf("bound %d = %v, not double bound %d = %v",
				i, BucketBound(i), i-1, BucketBound(i-1))
		}
	}
}

// TestBucketOf checks exact placement at and around every boundary: a
// value equal to a bound belongs to that bucket, one past it to the next.
func TestBucketOf(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {15, 0}, {16, 0},
		{17, 1}, {32, 1}, {33, 2},
		{1 << 20, 16}, {1<<20 + 1, 17},
		{1 << 31, NumBuckets - 2},   // last finite bucket's bound exactly
		{1<<31 + 1, NumBuckets - 1}, // first value past it: +Inf bucket
		{1 << 62, NumBuckets - 1},   // way past: clamped
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Exhaustive invariant: every value sits at or under its bucket's
	// bound and over the previous one.
	for ns := int64(1); ns < int64(BucketBound(NumBuckets-2)); ns = ns*3 + 1 {
		i := bucketOf(ns)
		if time.Duration(ns) > BucketBound(i) {
			t.Fatalf("ns %d over its bucket %d bound %v", ns, i, BucketBound(i))
		}
		if i > 0 && time.Duration(ns) <= BucketBound(i-1) {
			t.Fatalf("ns %d fits the lower bucket %d", ns, i-1)
		}
	}
}

func TestHistRecordSnapshot(t *testing.T) {
	var h Hist
	h.Record(10 * time.Nanosecond)  // bucket 0
	h.Record(16 * time.Nanosecond)  // bucket 0
	h.Record(100 * time.Nanosecond) // bucket 3 (64,128]
	h.Record(-time.Second)          // clamps to bucket 0, sum += 0
	h.Record(10 * time.Second)      // +Inf bucket
	var s HistSnapshot
	h.Snapshot(&s)
	if s.Count != 5 {
		t.Errorf("Count = %d, want 5", s.Count)
	}
	if want := 10*time.Nanosecond + 16*time.Nanosecond + 100*time.Nanosecond + 10*time.Second; s.Sum != want {
		t.Errorf("Sum = %v, want %v", s.Sum, want)
	}
	if s.Buckets[0] != 3 || s.Buckets[3] != 1 || s.Buckets[NumBuckets-1] != 1 {
		t.Errorf("buckets = %v", s.Buckets)
	}
	if h.Count() != 5 || h.Sum() != s.Sum {
		t.Errorf("accessors disagree: count %d sum %v", h.Count(), h.Sum())
	}
	// The rendered +Inf bucket is cumulative over all buckets == Count.
	var cum uint64
	for _, b := range s.Buckets {
		cum += b
	}
	if cum != s.Count {
		t.Errorf("bucket total %d != count %d", cum, s.Count)
	}
}

// TestHistRecordZeroAlloc is the hot-path contract: recording allocates
// nothing.
func TestHistRecordZeroAlloc(t *testing.T) {
	var h Hist
	var s HistSnapshot
	if n := testing.AllocsPerRun(100, func() {
		h.Record(123 * time.Nanosecond)
	}); n != 0 {
		t.Errorf("Record allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		h.Snapshot(&s)
	}); n != 0 {
		t.Errorf("Snapshot allocates %v/op, want 0", n)
	}
}

// TestHistConcurrent hammers one histogram from many goroutines while a
// reader snapshots — -race exercises the lock-free claims, and no
// observation may be lost.
func TestHistConcurrent(t *testing.T) {
	const (
		goroutines = 8
		perG       = 10000
	)
	var h Hist
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		var s HistSnapshot
		for {
			select {
			case <-stop:
				return
			default:
				h.Snapshot(&s)
				if cum := func() (c uint64) {
					for _, b := range s.Buckets {
						c += b
					}
					return
				}(); cum != s.Count {
					t.Errorf("torn snapshot: bucket total %d != count %d", cum, s.Count)
					return
				}
			}
		}
	}()
	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < perG; i++ {
				h.Record(time.Duration(g*1000+i) * time.Nanosecond)
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if h.Count() != goroutines*perG {
		t.Errorf("Count = %d, want %d", h.Count(), goroutines*perG)
	}
}

func TestEventRingBasics(t *testing.T) {
	r := NewEventRing(8)
	if r.Cap() != 8 {
		t.Fatalf("Cap = %d", r.Cap())
	}
	if got := r.Tail(0); got != nil {
		t.Fatalf("empty Tail = %v", got)
	}
	r.Append(EventAdopt, "gpu0", "synth", "add")
	r.Append(EventStart, "gpu0", "synth", "")
	r.Append(EventRetire, "gpu0", "synth", "remove")
	evs := r.Tail(0)
	if len(evs) != 3 || r.Total() != 3 || r.Dropped() != 0 {
		t.Fatalf("tail %d total %d dropped %d", len(evs), r.Total(), r.Dropped())
	}
	for i, want := range []string{EventAdopt, EventStart, EventRetire} {
		ev := evs[i]
		if ev.Type != want || ev.Station != "gpu0" || ev.Kind != "synth" || ev.Seq != uint64(i+1) {
			t.Errorf("event %d = %+v, want type %s seq %d", i, ev, want, i+1)
		}
		if ev.Time.IsZero() {
			t.Errorf("event %d has no timestamp", i)
		}
	}
	// A capped tail keeps the MOST RECENT events, still oldest-first.
	if got := r.Tail(2); len(got) != 2 || got[0].Seq != 2 || got[1].Seq != 3 {
		t.Errorf("Tail(2) = %+v, want seqs 2,3", got)
	}
}

// TestEventRingOverflow proves the overwrite contract: a full ring drops
// the oldest events, counts every drop, and the surviving tail is the
// newest events in order with contiguous sequence numbers.
func TestEventRingOverflow(t *testing.T) {
	r := NewEventRing(4)
	for i := 0; i < 10; i++ {
		station := string(rune('a' + i))
		r.Append(EventAdopt, station, "synth", "add")
	}
	if r.Total() != 10 || r.Dropped() != 6 {
		t.Fatalf("total %d dropped %d, want 10/6", r.Total(), r.Dropped())
	}
	evs := r.Tail(0)
	if len(evs) != 4 {
		t.Fatalf("tail holds %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Seq != want {
			t.Errorf("tail[%d].Seq = %d, want %d (oldest-first, newest retained)",
				i, ev.Seq, want)
		}
		if want := string(rune('a' + 6 + i)); ev.Station != want {
			t.Errorf("tail[%d].Station = %q, want %q", i, ev.Station, want)
		}
	}
	// First surviving seq == dropped+1: nothing vanished unaccounted.
	if evs[0].Seq != r.Dropped()+1 {
		t.Errorf("first retained seq %d, dropped %d", evs[0].Seq, r.Dropped())
	}
}

func TestEventRingConcurrent(t *testing.T) {
	r := NewEventRing(16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Append(EventAdopt, "s", "k", "")
				r.Tail(8)
			}
		}()
	}
	wg.Wait()
	if r.Total() != 2000 || r.Dropped() != 2000-16 {
		t.Errorf("total %d dropped %d", r.Total(), r.Dropped())
	}
}

func TestEventRingBadCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewEventRing(0) did not panic")
		}
	}()
	NewEventRing(0)
}

// BenchmarkObsRecord is the CI guard on the instrument itself: the cost
// the fold/stage/pacing paths pay per observation.
func BenchmarkObsRecord(b *testing.B) {
	var h Hist
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i) * time.Nanosecond)
	}
}

func BenchmarkObsSnapshot(b *testing.B) {
	var h Hist
	for i := 0; i < 1000; i++ {
		h.Record(time.Duration(i) * time.Nanosecond)
	}
	var s HistSnapshot
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Snapshot(&s)
	}
}
