package adc

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/protocol"
)

func TestConversionTimeMatchesPaper(t *testing.T) {
	// Section III-B: 25 cycles at 24 MHz ≈ 1.04 µs.
	want := 1042 * time.Nanosecond
	if d := ConversionTime - want; d < -2*time.Nanosecond || d > 2*time.Nanosecond {
		t.Fatalf("conversion time = %v, want ~%v", ConversionTime, want)
	}
}

func TestConvertEndpoints(t *testing.T) {
	c := New()
	if got := c.Convert(-1); got != 0 {
		t.Errorf("negative input → %d", got)
	}
	if got := c.Convert(0); got != 0 {
		t.Errorf("0 V → %d", got)
	}
	if got := c.Convert(protocol.VRef); got != protocol.Levels-1 {
		t.Errorf("VRef → %d", got)
	}
	if got := c.Convert(100); got != protocol.Levels-1 {
		t.Errorf("overvoltage → %d", got)
	}
}

func TestConvertMonotonic(t *testing.T) {
	c := New()
	prev := -1
	for v := 0.0; v <= protocol.VRef; v += 0.001 {
		code := c.Convert(v)
		if code < prev {
			t.Fatalf("non-monotonic at %v: %d < %d", v, code, prev)
		}
		prev = code
	}
}

func TestQuantizationErrorBounded(t *testing.T) {
	c := New()
	lsb := c.LSB()
	for v := 0.001; v < protocol.VRef; v += 0.0137 {
		code := c.Convert(v)
		back := c.Midpoint(code)
		if math.Abs(back-v) > lsb/2+1e-12 {
			t.Fatalf("quantization error at %v: %v", v, back-v)
		}
	}
}

func TestQuickQuantizationError(t *testing.T) {
	c := New()
	lsb := c.LSB()
	f := func(raw uint16) bool {
		v := float64(raw) / math.MaxUint16 * protocol.VRef * 0.999
		back := c.Midpoint(c.Convert(v))
		return math.Abs(back-v) <= lsb/2+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMidpointPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New().Midpoint(protocol.Levels)
}

func TestScan(t *testing.T) {
	c := New()
	codes := c.Scan([]float64{0, 1.65, 3.3})
	if len(codes) != 3 {
		t.Fatalf("len = %d", len(codes))
	}
	if codes[0] != 0 {
		t.Errorf("ch0 = %d", codes[0])
	}
	if codes[1] != protocol.Levels/2 {
		t.Errorf("ch1 = %d, want %d", codes[1], protocol.Levels/2)
	}
	if codes[2] != protocol.Levels-1 {
		t.Errorf("ch2 = %d", codes[2])
	}
}

func TestScanTooManyChannels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New().Scan(make([]float64, Channels+1))
}

func TestScanTimeSupports20kHz(t *testing.T) {
	// 8 channels × 6 averaged samples must fit in the 50 µs budget.
	total := time.Duration(protocol.SamplesPerAverage) * ScanTime(protocol.MaxSensors)
	if total > 50*time.Microsecond {
		t.Fatalf("full averaged scan takes %v, exceeding the 50 µs sample interval", total)
	}
}

func BenchmarkScan8(b *testing.B) {
	c := New()
	pins := []float64{0.1, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.2}
	for i := 0; i < b.N; i++ {
		_ = c.Scan(pins)
	}
}
