// Package adc models the STM32F411 analog-to-digital converter as configured
// by the PowerSensor3 firmware (Section III-B): 10-bit resolution, a 15-cycle
// sampling window plus one cycle per bit at a 24 MHz ADC clock — 25 cycles or
// 1.04 µs per conversion — scanning up to sixteen inputs of which eight are
// used (four modules × current/voltage pairs on consecutive channels).
package adc

import (
	"fmt"
	"time"

	"repro/internal/protocol"
)

// Hardware constants of the converter as configured by the firmware.
const (
	// ClockHz is the ADC clock frequency.
	ClockHz = 24_000_000

	// SamplingCycles is the configured sample-and-hold window.
	SamplingCycles = 15

	// ConversionCycles is the total cycles per conversion: the sampling
	// window plus one cycle per output bit.
	ConversionCycles = SamplingCycles + protocol.ADCBits

	// Channels is the number of analog inputs the STM32F411 can sample.
	Channels = 16
)

// ConversionTime is the duration of one conversion: 25 cycles at 24 MHz,
// which the paper rounds to 1.04 µs.
const ConversionTime = time.Second * ConversionCycles / ClockHz

// Converter quantizes pin voltages into 10-bit codes. The integral
// nonlinearity of the real converter is far below the sensor noise floor, so
// the model is an ideal mid-tread quantizer over [0, VRef].
type Converter struct {
	// VRef is the reference voltage; codes map [0, VRef] onto [0, 1023].
	VRef float64
}

// New returns a Converter referenced to the PowerSensor3 supply rail.
func New() *Converter { return &Converter{VRef: protocol.VRef} }

// Convert quantizes volts into a 10-bit code, clamping at the rails.
func (c *Converter) Convert(volts float64) int {
	if volts <= 0 {
		return 0
	}
	code := int(volts / c.VRef * protocol.Levels)
	if code >= protocol.Levels {
		code = protocol.Levels - 1
	}
	return code
}

// Midpoint returns the voltage at the centre of the given code's bin — the
// value the host reconstructs from a code.
func (c *Converter) Midpoint(code int) float64 {
	if code < 0 || code >= protocol.Levels {
		panic(fmt.Sprintf("adc: code %d out of range", code))
	}
	return (float64(code) + 0.5) / protocol.Levels * c.VRef
}

// LSB returns the width of one quantization step in volts.
func (c *Converter) LSB() float64 { return c.VRef / protocol.Levels }

// ScanTime returns how long a full scan of n channels takes.
func ScanTime(n int) time.Duration {
	return time.Duration(n) * ConversionTime
}

// Scan converts a set of pin voltages in channel order, modelling the
// sequential scan the DMA controller drains to RAM. The small inter-channel
// skew (one ConversionTime per channel) is why the firmware wires each
// module's current and voltage sensors to consecutive channels — it keeps
// the V/I pair nearly simultaneous (Section III-B).
func (c *Converter) Scan(pins []float64) []int {
	if len(pins) > Channels {
		panic(fmt.Sprintf("adc: %d channels requested, hardware has %d", len(pins), Channels))
	}
	codes := make([]int, len(pins))
	for i, v := range pins {
		codes[i] = c.Convert(v)
	}
	return codes
}
