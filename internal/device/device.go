// Package device assembles a complete PowerSensor3: baseboard with up to
// four sensor modules, the STM32 firmware, the USB pipe and the display. It
// is the "hardware" object the host library opens.
//
// Each populated module slot is wired to a RailSource — a bench supply and
// electronic load for the evaluation experiments, or one rail of a simulated
// GPU/SSD for the application case studies. The device runs in virtual time;
// Run advances it.
package device

import (
	"fmt"
	"time"

	"repro/internal/analog"
	"repro/internal/bench"
	"repro/internal/display"
	"repro/internal/eeprom"
	"repro/internal/firmware"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/usb"
)

// RailSource provides the instantaneous voltage and current on one monitored
// power rail at virtual time t.
type RailSource interface {
	VI(t time.Duration) (volts, amps float64)
}

// BenchSource is the laboratory configuration: a supply driving an
// electronic load (Fig. 3 in the paper).
type BenchSource struct {
	Supply *bench.Supply
	Load   bench.Load
}

// VI implements RailSource.
func (b BenchSource) VI(t time.Duration) (float64, float64) {
	i := b.Load.Current(t)
	return b.Supply.Voltage(t, i), i
}

// SourceFunc adapts a function to RailSource.
type SourceFunc func(t time.Duration) (volts, amps float64)

// VI implements RailSource.
func (f SourceFunc) VI(t time.Duration) (float64, float64) { return f(t) }

// Slot pairs a sensor module with the rail it monitors.
type Slot struct {
	Module analog.Module
	Source RailSource
}

// Device is an assembled PowerSensor3.
type Device struct {
	fw    *firmware.Firmware
	pipe  *usb.Pipe
	rom   *eeprom.Store
	panel *display.Panel
	slots []Slot
	noise *rng.Source

	pending time.Duration // un-stepped remainder of Run requests
}

// New assembles a device with the given module slots (at most
// protocol.MaxModules) and factory-programs the sensor configuration into
// EEPROM, as production does before calibration. seed fixes the noise
// streams.
func New(seed uint64, slots ...Slot) *Device {
	if len(slots) > protocol.MaxModules {
		panic(fmt.Sprintf("device: %d modules, baseboard has %d slots", len(slots), protocol.MaxModules))
	}
	d := &Device{
		pipe:  usb.NewPipe(),
		rom:   eeprom.New(),
		panel: display.NewPanel(),
		slots: slots,
		noise: rng.New(seed),
	}
	d.fw = firmware.New(firmware.Config{
		Pipe:  d.pipe,
		ROM:   d.rom,
		Panel: d.panel,
		Read:  d.readPins,
	})
	for i := range d.slots {
		cur, vol := d.slots[i].Module.Config()
		mustStore(d.fw.StoreConfig(2*i, cur))
		mustStore(d.fw.StoreConfig(2*i+1, vol))
	}
	return d
}

func mustStore(err error) {
	if err != nil {
		panic("device: factory programming failed: " + err.Error())
	}
}

// readPins evaluates every slot's sensor chain at time t, producing the
// analog pin voltages for one raw conversion round.
func (d *Device) readPins(t time.Duration) []float64 {
	pins := make([]float64, protocol.MaxSensors)
	const rawDt = firmware.SampleInterval / protocol.SamplesPerAverage
	for i := range d.slots {
		v, a := d.slots[i].Source.VI(t)
		pins[2*i] = d.slots[i].Module.Current.Sense(a, rawDt, d.noise)
		pins[2*i+1] = d.slots[i].Module.Voltage.Sense(v, rawDt, d.noise)
	}
	// Unpopulated channels float at mid-scale (current) / ground (voltage).
	for i := len(d.slots); i < protocol.MaxModules; i++ {
		pins[2*i] = protocol.VRef / 2
		pins[2*i+1] = 0
	}
	return pins
}

// Run advances the device by dt of virtual time, stepping the firmware in
// 50 µs sample intervals. Fractions below one interval accumulate.
func (d *Device) Run(dt time.Duration) {
	d.pending += dt
	for d.pending >= firmware.SampleInterval {
		d.fw.Step()
		d.pending -= firmware.SampleInterval
	}
}

// Now returns the device's virtual time.
func (d *Device) Now() time.Duration { return d.fw.Now() }

// Skip fast-forwards the device clock without sampling.
func (d *Device) Skip(dt time.Duration) { d.fw.Skip(dt) }

// Write queues host command bytes to the device (Transport interface).
func (d *Device) Write(cmd []byte) { d.pipe.HostWrite(cmd) }

// Read drains all pending device-to-host bytes (Transport interface).
func (d *Device) Read() []byte { return d.pipe.HostReadAll() }

// Firmware exposes the firmware for tests and tools.
func (d *Device) Firmware() *firmware.Firmware { return d.fw }

// Panel exposes the display.
func (d *Device) Panel() *display.Panel { return d.panel }

// Pipe exposes the USB pipe for diagnostics.
func (d *Device) Pipe() *usb.Pipe { return d.pipe }

// Slots returns the populated module slots.
func (d *Device) Slots() []Slot { return d.slots }

// SetSource rewires the rail source of a slot (e.g. attaching a different
// load between experiments without re-assembling the device).
func (d *Device) SetSource(slot int, src RailSource) {
	d.slots[slot].Source = src
}

// PowerCycle models unplugging and replugging the device: the firmware
// reboots and reloads its EEPROM configuration; flash content survives.
func (d *Device) PowerCycle() {
	snap := d.rom.Snapshot()
	d.rom = eeprom.New()
	if err := d.rom.Restore(snap); err != nil {
		panic("device: flash restore failed: " + err.Error())
	}
	d.pipe = usb.NewPipe()
	d.fw = firmware.New(firmware.Config{
		Pipe:  d.pipe,
		ROM:   d.rom,
		Panel: d.panel,
		Read:  d.readPins,
	})
}
