package device

import (
	"testing"
	"time"

	"repro/internal/analog"
	"repro/internal/bench"
	"repro/internal/protocol"
)

func benchSlot(railV, amps float64) Slot {
	kind := analog.Slot10A
	return Slot{
		Module: analog.NewModule(kind, railV),
		Source: BenchSource{Supply: &bench.Supply{Nominal: railV}, Load: bench.ConstantLoad(amps)},
	}
}

func TestNewProgramsEEPROM(t *testing.T) {
	dev := New(1, benchSlot(12, 0))
	cfg := dev.Firmware().SensorConfig(0)
	if !cfg.Enabled || cfg.Sensitivity != 0.120 {
		t.Fatalf("sensor 0 config = %+v", cfg)
	}
	vcfg := dev.Firmware().SensorConfig(1)
	if !vcfg.Enabled || vcfg.Sensitivity != 0.2 {
		t.Fatalf("sensor 1 config = %+v", vcfg)
	}
	// Unpopulated slots stay disabled.
	if dev.Firmware().SensorConfig(2).Enabled {
		t.Fatal("empty slot enabled")
	}
}

func TestTooManyModulesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(1, benchSlot(12, 0), benchSlot(12, 0), benchSlot(12, 0),
		benchSlot(12, 0), benchSlot(12, 0))
}

func TestRunAdvancesTime(t *testing.T) {
	dev := New(2, benchSlot(12, 1))
	dev.Run(10 * time.Millisecond)
	if dev.Now() < 10*time.Millisecond {
		t.Fatalf("now = %v", dev.Now())
	}
}

func TestRunAccumulatesFractions(t *testing.T) {
	dev := New(3, benchSlot(12, 1))
	// 25 µs twice = one 50 µs sample interval.
	dev.Run(25 * time.Microsecond)
	if dev.Now() != 0 {
		t.Fatalf("half interval should not step: now=%v", dev.Now())
	}
	dev.Run(25 * time.Microsecond)
	if dev.Now() != 50*time.Microsecond {
		t.Fatalf("now = %v", dev.Now())
	}
}

func TestSkipFastForwards(t *testing.T) {
	dev := New(4, benchSlot(12, 1))
	dev.Skip(time.Hour)
	if dev.Now() < time.Hour {
		t.Fatalf("now = %v", dev.Now())
	}
}

func TestTransportRoundTrip(t *testing.T) {
	dev := New(5, benchSlot(12, 2))
	dev.Write([]byte{protocol.CmdStartStream})
	dev.Run(time.Millisecond)
	buf := dev.Read()
	if len(buf) == 0 {
		t.Fatal("no stream bytes")
	}
	var dec protocol.StreamDecoder
	samples := dec.Feed(nil, buf)
	if len(samples) == 0 {
		t.Fatal("no samples decoded")
	}
}

func TestSetSourceSwitchesLoad(t *testing.T) {
	dev := New(6, benchSlot(12, 0))
	dev.Write([]byte{protocol.CmdStartStream})
	dev.Run(5 * time.Millisecond)
	dev.Read()

	dev.SetSource(0, BenchSource{Supply: &bench.Supply{Nominal: 12}, Load: bench.ConstantLoad(8)})
	dev.Run(5 * time.Millisecond)
	var dec protocol.StreamDecoder
	samples := dec.Feed(nil, dev.Read())
	// Current channel (sensor 0) should now read well above mid-scale.
	var last int
	for _, s := range samples {
		if !s.IsTimestamp() && s.Sensor == 0 {
			last = s.Level
		}
	}
	mid := protocol.Levels / 2
	if last <= mid+100 {
		t.Fatalf("level %d after 8 A load, want well above %d", last, mid)
	}
}

func TestPowerCyclePreservesConfig(t *testing.T) {
	dev := New(7, benchSlot(3.3, 1))
	before := dev.Firmware().SensorConfig(0)
	dev.Write([]byte{protocol.CmdStartStream})
	dev.Run(time.Millisecond)
	dev.PowerCycle()
	if dev.Firmware().Streaming() {
		t.Fatal("streaming after power cycle")
	}
	if got := dev.Firmware().SensorConfig(0); got != before {
		t.Fatalf("config lost: %+v", got)
	}
	if dev.Firmware().Boots() != 1 {
		t.Fatalf("fresh firmware boots = %d", dev.Firmware().Boots())
	}
}

func TestDisplayShowsWhileIdle(t *testing.T) {
	dev := New(8, benchSlot(12, 5))
	dev.Run(time.Second)
	if dev.Panel().Frames() == 0 {
		t.Fatal("display never refreshed while idle")
	}
}

func TestDisplayPausedWhileStreaming(t *testing.T) {
	dev := New(9, benchSlot(12, 5))
	dev.Write([]byte{protocol.CmdStartStream})
	dev.Run(100 * time.Millisecond)
	dev.Read()
	frames := dev.Panel().Frames()
	dev.Run(time.Second)
	dev.Read()
	if dev.Panel().Frames() != frames {
		t.Fatal("display refreshed during streaming; the paper says the panel shows values when the sensor is not in use by the host")
	}
}

func TestFullyPopulatedBaseboard(t *testing.T) {
	// All four slots in the Fig. 1 configuration: two slot rails, the
	// external 8-pin, and a USB-C module on a separate 20 V source.
	dev := New(10,
		Slot{Module: analog.NewModule(analog.Slot10A, 3.3),
			Source: BenchSource{Supply: &bench.Supply{Nominal: 3.3}, Load: bench.ConstantLoad(2)}},
		Slot{Module: analog.NewModule(analog.Slot10A, 12),
			Source: BenchSource{Supply: &bench.Supply{Nominal: 12}, Load: bench.ConstantLoad(4)}},
		Slot{Module: analog.NewModule(analog.PCIe8Pin20A, 12),
			Source: BenchSource{Supply: &bench.Supply{Nominal: 12}, Load: bench.ConstantLoad(10)}},
		Slot{Module: analog.NewModule(analog.USBC, 20),
			Source: BenchSource{Supply: &bench.Supply{Nominal: 20}, Load: bench.ConstantLoad(1)}},
	)
	for i := 0; i < 2*protocol.MaxModules; i++ {
		if !dev.Firmware().SensorConfig(i).Enabled {
			t.Fatalf("sensor %d not enabled on full baseboard", i)
		}
	}
	dev.Write([]byte{protocol.CmdStartStream})
	dev.Run(10 * time.Millisecond)
	var dec protocol.StreamDecoder
	samples := dec.Feed(nil, dev.Read())
	perSensor := map[int]int{}
	for _, s := range samples {
		if !s.IsTimestamp() {
			perSensor[s.Sensor]++
		}
	}
	if len(perSensor) != 8 {
		t.Fatalf("stream carries %d sensors, want 8", len(perSensor))
	}
	// All sensors must deliver the same sample count (one per set).
	for sensor, n := range perSensor {
		if n != perSensor[0] {
			t.Fatalf("sensor %d has %d samples, sensor 0 has %d", sensor, n, perSensor[0])
		}
	}
}

// A 4-module stream must still fit the USB budget — the design constraint.
func TestFullBaseboardNoOverruns(t *testing.T) {
	dev := New(11,
		Slot{Module: analog.NewModule(analog.Slot10A, 3.3),
			Source: BenchSource{Supply: &bench.Supply{Nominal: 3.3}, Load: bench.ConstantLoad(1)}},
		Slot{Module: analog.NewModule(analog.Slot10A, 12),
			Source: BenchSource{Supply: &bench.Supply{Nominal: 12}, Load: bench.ConstantLoad(1)}},
		Slot{Module: analog.NewModule(analog.Terminal20A, 12),
			Source: BenchSource{Supply: &bench.Supply{Nominal: 12}, Load: bench.ConstantLoad(1)}},
		Slot{Module: analog.NewModule(analog.HighCurrent50A, 12),
			Source: BenchSource{Supply: &bench.Supply{Nominal: 12}, Load: bench.ConstantLoad(1)}},
	)
	dev.Write([]byte{protocol.CmdStartStream})
	for i := 0; i < 100; i++ {
		dev.Run(10 * time.Millisecond)
		dev.Read()
	}
	if dev.Pipe().Overruns() != 0 {
		t.Fatalf("%d overruns on a drained 4-module stream", dev.Pipe().Overruns())
	}
}
