// Package firmware implements the PowerSensor3 microcontroller program
// (Section III-B) over the simulated STM32F411 peripherals: the ADC scan
// loop with DMA-style buffering, 6-sample CPU averaging to 20 kHz, 2-byte
// packet streaming over USB with a device timestamp per sample set, the host
// command set, virtual-EEPROM configuration, and the status display.
//
// The firmware runs in virtual time: each call to Step advances one 50 µs
// sample interval. This keeps the whole simulation deterministic while
// preserving every rate relationship of the real device.
package firmware

import (
	"fmt"
	"time"

	"repro/internal/adc"
	"repro/internal/display"
	"repro/internal/eeprom"
	"repro/internal/protocol"
	"repro/internal/usb"
)

// Version is the firmware version string reported by CmdVersion.
const Version = "PowerSensor3-sim 1.0.0"

// SampleInterval is the interval between transmitted sample sets.
const SampleInterval = protocol.SampleIntervalMicros * time.Microsecond

// subInterval is the spacing between the raw conversions that get averaged:
// 6 sub-samples per 50 µs interval.
const subInterval = SampleInterval / protocol.SamplesPerAverage

// displayPeriod is the panel refresh period while not streaming.
const displayPeriod = 100 * time.Millisecond

// PinReader supplies the analog pin voltages for one raw conversion round.
// t is the virtual time of the round; the implementation must evaluate the
// sensor chain (and its noise) at that instant. The returned slice has one
// entry per ADC channel in use (protocol.MaxSensors).
type PinReader func(t time.Duration) []float64

// Firmware is the microcontroller program state.
type Firmware struct {
	conv  *adc.Converter
	pipe  *usb.Pipe
	rom   *eeprom.Store
	panel *display.Panel
	read  PinReader

	now       time.Duration
	streaming bool
	dfu       bool
	boots     int

	markerQueued int // user markers requested but not yet transmitted

	configs [protocol.MaxSensors]protocol.SensorConfig

	// lastLevels caches the latest averaged codes for the display.
	lastLevels  [protocol.MaxSensors]int
	nextDisplay time.Duration

	// partial host command accumulator (for multi-byte commands).
	cmdBuf []byte

	setsSent uint64
}

// Config bundles the firmware's peripherals.
type Config struct {
	Pipe  *usb.Pipe
	ROM   *eeprom.Store
	Panel *display.Panel // optional
	Read  PinReader
}

// New boots the firmware: peripherals are initialised and the sensor
// configuration is loaded from EEPROM (missing entries become disabled
// sensors, as on a factory-fresh device).
func New(cfg Config) *Firmware {
	f := &Firmware{
		conv:  adc.New(),
		pipe:  cfg.Pipe,
		rom:   cfg.ROM,
		panel: cfg.Panel,
		read:  cfg.Read,
	}
	f.loadConfig()
	f.boots = 1
	return f
}

// loadConfig populates the sensor table from EEPROM.
func (f *Firmware) loadConfig() {
	for i := range f.configs {
		blob, err := f.rom.Read(byte(i))
		if err != nil {
			f.configs[i] = protocol.SensorConfig{Polarity: 1}
			continue
		}
		cfg, err := protocol.UnmarshalConfig(blob)
		if err != nil {
			f.configs[i] = protocol.SensorConfig{Polarity: 1}
			continue
		}
		f.configs[i] = cfg
	}
}

// StoreConfig persists a sensor configuration to EEPROM and the live table.
// It is used by device assembly (factory programming) and by CmdWriteConfig.
func (f *Firmware) StoreConfig(sensor int, cfg protocol.SensorConfig) error {
	if sensor < 0 || sensor >= protocol.MaxSensors {
		return fmt.Errorf("firmware: sensor index %d out of range", sensor)
	}
	if err := f.rom.Write(byte(sensor), protocol.MarshalConfig(cfg)); err != nil {
		return err
	}
	f.configs[sensor] = cfg
	return nil
}

// SensorConfig returns the live configuration of one sensor.
func (f *Firmware) SensorConfig(sensor int) protocol.SensorConfig {
	return f.configs[sensor]
}

// Now returns the device's virtual time since boot.
func (f *Firmware) Now() time.Duration { return f.now }

// Streaming reports whether sensor data is being transmitted.
func (f *Firmware) Streaming() bool { return f.streaming }

// InDFU reports whether the device rebooted into the bootloader.
func (f *Firmware) InDFU() bool { return f.dfu }

// Boots returns how many times the device has (re)booted.
func (f *Firmware) Boots() int { return f.boots }

// SetsSent returns how many sample sets have been transmitted.
func (f *Firmware) SetsSent() uint64 { return f.setsSent }

// Step advances one 50 µs sample interval: process host commands, run the
// ADC scan with averaging, transmit the sample set if streaming, and refresh
// the display when idle.
func (f *Firmware) Step() {
	f.handleCommands()
	if f.dfu {
		// The bootloader does not sample; time still passes.
		f.now += SampleInterval
		f.pipe.Advance(SampleInterval)
		return
	}

	// ADC scan: 6 rounds of 8 conversions, DMA collecting into RAM. The
	// device timestamp is latched after the 3rd round (Section III-B).
	var acc [protocol.MaxSensors]int
	var tsMicros uint64
	for round := 0; round < protocol.SamplesPerAverage; round++ {
		t := f.now + time.Duration(round)*subInterval
		pins := f.read(t)
		for ch := 0; ch < protocol.MaxSensors && ch < len(pins); ch++ {
			acc[ch] += f.conv.Convert(pins[ch])
		}
		if round == protocol.SamplesPerAverage/2 {
			tsMicros = uint64(t / time.Microsecond)
		}
	}
	for ch := range acc {
		f.lastLevels[ch] = acc[ch] / protocol.SamplesPerAverage
	}

	f.pipe.Advance(SampleInterval)

	if f.streaming {
		f.transmitSet(tsMicros)
	} else if f.panel != nil && f.now >= f.nextDisplay {
		f.refreshDisplay()
		f.nextDisplay = f.now + displayPeriod
	}

	f.now += SampleInterval
}

// transmitSet encodes the timestamp packet plus one packet per enabled
// sensor and queues them on the USB pipe.
func (f *Firmware) transmitSet(tsMicros uint64) {
	buf := make([]byte, 0, 2*(protocol.MaxSensors+1))
	ts := protocol.Encode(protocol.TimestampSample(tsMicros))
	buf = append(buf, ts[0], ts[1])

	marker := false
	if f.markerQueued > 0 {
		f.markerQueued--
		marker = true
	}
	for ch := 0; ch < protocol.MaxSensors; ch++ {
		if !f.configs[ch].Enabled {
			continue
		}
		s := protocol.Sample{Sensor: ch, Level: f.lastLevels[ch]}
		// A real marker can only be carried by sensor 0.
		if marker && ch == 0 {
			s.Marker = true
		}
		p := protocol.Encode(s)
		buf = append(buf, p[0], p[1])
	}
	// Overruns drop the set, exactly as the real firmware drops data when
	// the host stops draining; the error is intentionally not fatal.
	if err := f.pipe.DeviceWrite(buf); err == nil {
		f.setsSent++
	}
}

// refreshDisplay renders the idle screen: total power plus per-pair values.
func (f *Firmware) refreshDisplay() {
	var pairs []display.Readout
	var total float64
	for m := 0; m < protocol.MaxModules; m++ {
		ci, vi := 2*m, 2*m+1
		if !f.configs[ci].Enabled || !f.configs[vi].Enabled {
			continue
		}
		amps := f.levelToAmps(ci)
		volts := f.levelToVolts(vi)
		p := amps * volts
		total += p
		pairs = append(pairs, display.Readout{
			Name: f.configs[ci].Name, Volts: volts, Amps: amps, PowerW: p,
		})
	}
	f.panel.Show(total, pairs)
}

// levelToAmps applies the stored conversion for a current channel.
func (f *Firmware) levelToAmps(ch int) float64 {
	cfg := f.configs[ch]
	pin := f.conv.Midpoint(f.lastLevels[ch])
	amps := (pin - protocol.VRef/2) / cfg.Sensitivity
	return float64(cfg.Polarity)*amps - cfg.Offset
}

// levelToVolts applies the stored conversion for a voltage channel.
func (f *Firmware) levelToVolts(ch int) float64 {
	cfg := f.configs[ch]
	pin := f.conv.Midpoint(f.lastLevels[ch])
	return pin/cfg.Sensitivity - cfg.Offset
}

// handleCommands drains and executes host commands.
func (f *Firmware) handleCommands() {
	f.cmdBuf = append(f.cmdBuf, f.pipe.DeviceRead()...)
	for len(f.cmdBuf) > 0 {
		switch f.cmdBuf[0] {
		case protocol.CmdStartStream:
			f.streaming = true
			f.cmdBuf = f.cmdBuf[1:]
		case protocol.CmdStopStream:
			f.streaming = false
			f.cmdBuf = f.cmdBuf[1:]
		case protocol.CmdMarker:
			f.markerQueued++
			f.cmdBuf = f.cmdBuf[1:]
		case protocol.CmdVersion:
			f.pipe.DeviceWrite(append([]byte(Version), protocol.VersionTerminator))
			f.cmdBuf = f.cmdBuf[1:]
		case protocol.CmdReadConfig:
			f.sendConfig()
			f.cmdBuf = f.cmdBuf[1:]
		case protocol.CmdWriteConfig:
			// 'W' + sensor index + config block.
			need := 2 + protocol.ConfigBlockLen
			if len(f.cmdBuf) < need {
				return // wait for the rest of the command
			}
			sensor := int(f.cmdBuf[1])
			cfg, err := protocol.UnmarshalConfig(f.cmdBuf[2:need])
			if err == nil {
				// Best effort, like the real firmware: bad writes are
				// silently ignored rather than crashing the device.
				_ = f.StoreConfig(sensor, cfg)
			}
			f.cmdBuf = f.cmdBuf[need:]
		case protocol.CmdReboot:
			f.reboot(false)
			f.cmdBuf = f.cmdBuf[1:]
		case protocol.CmdRebootDFU:
			f.reboot(true)
			f.cmdBuf = f.cmdBuf[1:]
		default:
			// Unknown byte: skip it to stay in sync.
			f.cmdBuf = f.cmdBuf[1:]
		}
	}
}

// sendConfig transmits all sensor configuration blocks followed by the
// terminator. Config exchange happens while not streaming, so the blocks are
// not confused with sample packets.
func (f *Firmware) sendConfig() {
	var buf []byte
	for i := 0; i < protocol.MaxSensors; i++ {
		buf = append(buf, protocol.MarshalConfig(f.configs[i])...)
	}
	buf = append(buf, protocol.CmdConfigDone)
	f.pipe.DeviceWrite(buf)
}

// reboot restarts the firmware, reloading configuration from EEPROM.
func (f *Firmware) reboot(dfu bool) {
	f.streaming = false
	f.markerQueued = 0
	f.dfu = dfu
	f.boots++
	f.loadConfig()
}

// LeaveDFU returns from the bootloader (models a firmware upload finishing).
func (f *Firmware) LeaveDFU() {
	f.dfu = false
}

// Skip advances the device clock by dt without sampling — used by long
// experiments to fast-forward through idle stretches (e.g. the 15-minute
// gaps of the 50-hour stability run). Samples that would have streamed
// during the gap are simply not generated, as if streaming were paused.
func (f *Firmware) Skip(dt time.Duration) {
	f.now += dt
	f.pipe.Advance(dt)
}
