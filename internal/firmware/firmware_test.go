package firmware

import (
	"testing"
	"time"

	"repro/internal/eeprom"
	"repro/internal/protocol"
	"repro/internal/usb"
)

// fixedPins returns a PinReader producing constant pin voltages.
func fixedPins(v []float64) PinReader {
	return func(time.Duration) []float64 { return v }
}

func newTestFW(t *testing.T, pins []float64) (*Firmware, *usb.Pipe) {
	t.Helper()
	pipe := usb.NewPipe()
	fw := New(Config{Pipe: pipe, ROM: eeprom.New(), Read: fixedPins(pins)})
	// Enable sensors 0 and 1 with identity-ish config.
	if err := fw.StoreConfig(0, protocol.SensorConfig{Name: "I", Volt: 12, Sensitivity: 0.12, Polarity: 1, Enabled: true}); err != nil {
		t.Fatal(err)
	}
	if err := fw.StoreConfig(1, protocol.SensorConfig{Name: "U", Volt: 12, Sensitivity: 0.2, Polarity: 1, Enabled: true}); err != nil {
		t.Fatal(err)
	}
	return fw, pipe
}

func drainSamples(pipe *usb.Pipe) []protocol.Sample {
	var dec protocol.StreamDecoder
	return dec.Feed(nil, pipe.HostReadAll())
}

func TestNoStreamWithoutStart(t *testing.T) {
	fw, pipe := newTestFW(t, []float64{1.65, 2.4})
	for i := 0; i < 100; i++ {
		fw.Step()
	}
	if n := len(drainSamples(pipe)); n != 0 {
		t.Fatalf("%d samples without start command", n)
	}
}

func TestStreamingProducesTimestampPlusEnabledSensors(t *testing.T) {
	fw, pipe := newTestFW(t, []float64{1.65, 2.4})
	pipe.HostWrite([]byte{protocol.CmdStartStream})
	fw.Step()
	samples := drainSamples(pipe)
	// One set: timestamp + sensors 0 and 1 (only enabled ones).
	if len(samples) != 3 {
		t.Fatalf("got %d packets, want 3: %+v", len(samples), samples)
	}
	if !samples[0].IsTimestamp() {
		t.Fatalf("first packet not a timestamp: %+v", samples[0])
	}
	if samples[1].Sensor != 0 || samples[2].Sensor != 1 {
		t.Fatalf("sensor order wrong: %+v", samples)
	}
}

func TestSampleRate(t *testing.T) {
	fw, pipe := newTestFW(t, []float64{1.65, 2.4})
	pipe.HostWrite([]byte{protocol.CmdStartStream})
	start := fw.Now()
	for fw.Now()-start < 100*time.Millisecond {
		fw.Step()
	}
	samples := drainSamples(pipe)
	sets := 0
	for _, s := range samples {
		if s.IsTimestamp() {
			sets++
		}
	}
	// 100 ms at 20 kHz = 2000 sets (±1 for boundary).
	if sets < 1999 || sets > 2001 {
		t.Fatalf("%d sets in 100 ms, want ~2000", sets)
	}
}

func TestStopStream(t *testing.T) {
	fw, pipe := newTestFW(t, []float64{1.65, 2.4})
	pipe.HostWrite([]byte{protocol.CmdStartStream})
	fw.Step()
	drainSamples(pipe)
	pipe.HostWrite([]byte{protocol.CmdStopStream})
	fw.Step()
	fw.Step()
	if n := len(drainSamples(pipe)); n != 0 {
		t.Fatalf("%d packets after stop", n)
	}
}

func TestLevelEncodesPinVoltage(t *testing.T) {
	// Pin at mid-scale plus exactly 0.6 V (0.12 V/A × 5 A).
	fw, pipe := newTestFW(t, []float64{1.65 + 0.6, 2.4})
	pipe.HostWrite([]byte{protocol.CmdStartStream})
	fw.Step()
	samples := drainSamples(pipe)
	level := samples[1].Level
	wantPin := 1.65 + 0.6
	gotPin := (float64(level) + 0.5) / protocol.Levels * protocol.VRef
	if diff := gotPin - wantPin; diff < -0.004 || diff > 0.004 {
		t.Fatalf("level %d decodes to %v V, want ~%v", level, gotPin, wantPin)
	}
}

func TestMarkerAppearsOnSensorZeroOnce(t *testing.T) {
	fw, pipe := newTestFW(t, []float64{1.65, 2.4})
	pipe.HostWrite([]byte{protocol.CmdStartStream, protocol.CmdMarker})
	fw.Step()
	fw.Step()
	samples := drainSamples(pipe)
	markers := 0
	for _, s := range samples {
		if s.IsUserMarker() {
			markers++
		}
	}
	if markers != 1 {
		t.Fatalf("%d user markers, want 1", markers)
	}
}

func TestVersionCommand(t *testing.T) {
	fw, pipe := newTestFW(t, []float64{1.65, 2.4})
	pipe.HostWrite([]byte{protocol.CmdVersion})
	fw.Step()
	got := string(pipe.HostReadAll())
	want := Version + string(rune(protocol.VersionTerminator))
	if got != want {
		t.Fatalf("version = %q, want %q", got, want)
	}
}

func TestReadConfigCommand(t *testing.T) {
	fw, pipe := newTestFW(t, []float64{1.65, 2.4})
	pipe.HostWrite([]byte{protocol.CmdReadConfig})
	// The 337-byte response needs several 50 µs link credits to drain.
	var buf []byte
	for i := 0; i < 20; i++ {
		fw.Step()
		buf = append(buf, pipe.HostReadAll()...)
	}
	wantLen := protocol.MaxSensors*protocol.ConfigBlockLen + 1
	if len(buf) != wantLen {
		t.Fatalf("config response %d bytes, want %d", len(buf), wantLen)
	}
	if buf[len(buf)-1] != protocol.CmdConfigDone {
		t.Fatal("missing terminator")
	}
	cfg0, err := protocol.UnmarshalConfig(buf)
	if err != nil {
		t.Fatal(err)
	}
	if cfg0.Name != "I" || !cfg0.Enabled || cfg0.Sensitivity != 0.12 {
		t.Fatalf("sensor 0 config = %+v", cfg0)
	}
}

func TestWriteConfigCommand(t *testing.T) {
	fw, pipe := newTestFW(t, []float64{1.65, 2.4})
	newCfg := protocol.SensorConfig{Name: "cal", Volt: 12, Sensitivity: 0.119, Offset: 0.02, Polarity: 1, Enabled: true}
	cmd := append([]byte{protocol.CmdWriteConfig, 0}, protocol.MarshalConfig(newCfg)...)
	pipe.HostWrite(cmd)
	fw.Step()
	if got := fw.SensorConfig(0); got != newCfg {
		t.Fatalf("config after write = %+v", got)
	}
}

func TestWriteConfigPartialArrival(t *testing.T) {
	fw, pipe := newTestFW(t, []float64{1.65, 2.4})
	newCfg := protocol.SensorConfig{Name: "p", Volt: 3.3, Sensitivity: 0.8, Polarity: 1, Enabled: true}
	cmd := append([]byte{protocol.CmdWriteConfig, 1}, protocol.MarshalConfig(newCfg)...)
	// Deliver in two fragments across steps.
	pipe.HostWrite(cmd[:5])
	fw.Step()
	pipe.HostWrite(cmd[5:])
	fw.Step()
	if got := fw.SensorConfig(1); got != newCfg {
		t.Fatalf("config after fragmented write = %+v", got)
	}
}

func TestConfigSurvivesReboot(t *testing.T) {
	fw, pipe := newTestFW(t, []float64{1.65, 2.4})
	pipe.HostWrite([]byte{protocol.CmdReboot})
	fw.Step()
	if fw.Boots() != 2 {
		t.Fatalf("boots = %d", fw.Boots())
	}
	if cfg := fw.SensorConfig(0); cfg.Name != "I" || !cfg.Enabled {
		t.Fatalf("config lost on reboot: %+v", cfg)
	}
	if fw.Streaming() {
		t.Fatal("streaming must stop on reboot")
	}
}

func TestDFUModeStopsSampling(t *testing.T) {
	fw, pipe := newTestFW(t, []float64{1.65, 2.4})
	pipe.HostWrite([]byte{protocol.CmdRebootDFU, protocol.CmdStartStream})
	fw.Step()
	if !fw.InDFU() {
		t.Fatal("not in DFU")
	}
	before := fw.SetsSent()
	for i := 0; i < 10; i++ {
		fw.Step()
	}
	if fw.SetsSent() != before {
		t.Fatal("bootloader transmitted samples")
	}
	fw.LeaveDFU()
	pipe.HostWrite([]byte{protocol.CmdStartStream})
	fw.Step()
	fw.Step()
	if fw.SetsSent() == before {
		t.Fatal("no samples after leaving DFU")
	}
}

func TestUnknownCommandSkipped(t *testing.T) {
	fw, pipe := newTestFW(t, []float64{1.65, 2.4})
	pipe.HostWrite([]byte{0x00, 0xEE, protocol.CmdStartStream})
	fw.Step()
	if !fw.Streaming() {
		t.Fatal("start command after junk not executed")
	}
}

func TestTimestampMonotonicModuloWrap(t *testing.T) {
	fw, pipe := newTestFW(t, []float64{1.65, 2.4})
	pipe.HostWrite([]byte{protocol.CmdStartStream})
	for i := 0; i < 200; i++ {
		fw.Step()
	}
	samples := drainSamples(pipe)
	prev := -1
	for _, s := range samples {
		if !s.IsTimestamp() {
			continue
		}
		if prev >= 0 {
			delta := (s.Level - prev + protocol.TimestampWrapMicros) % protocol.TimestampWrapMicros
			if delta != protocol.SampleIntervalMicros {
				t.Fatalf("timestamp delta %d µs, want %d", delta, protocol.SampleIntervalMicros)
			}
		}
		prev = s.Level
	}
}

func TestSustainedStreamNoOverrunsWhenDrained(t *testing.T) {
	fw, pipe := newTestFW(t, []float64{1.65, 2.4})
	pipe.HostWrite([]byte{protocol.CmdStartStream})
	for i := 0; i < 20000; i++ { // 1 virtual second
		fw.Step()
		if i%200 == 0 {
			pipe.HostReadAll()
		}
	}
	if pipe.Overruns() != 0 {
		t.Fatalf("%d overruns on a drained 20 kHz stream", pipe.Overruns())
	}
}

func TestStreamOverrunsWhenHostAbsent(t *testing.T) {
	fw, pipe := newTestFW(t, []float64{1.65, 2.4})
	pipe.HostWrite([]byte{protocol.CmdStartStream})
	for i := 0; i < 20000*30; i++ { // 30 s with nobody reading
		fw.Step()
	}
	if pipe.Overruns() == 0 {
		t.Fatal("expected overruns when host never drains")
	}
}

func BenchmarkStep(b *testing.B) {
	pipe := usb.NewPipe()
	fw := New(Config{Pipe: pipe, ROM: eeprom.New(), Read: fixedPins([]float64{1.65, 2.4})})
	fw.StoreConfig(0, protocol.SensorConfig{Name: "I", Sensitivity: 0.12, Polarity: 1, Enabled: true})
	fw.StoreConfig(1, protocol.SensorConfig{Name: "U", Sensitivity: 0.2, Polarity: 1, Enabled: true})
	pipe.HostWrite([]byte{protocol.CmdStartStream})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fw.Step()
		if i%1000 == 0 {
			pipe.HostReadAll()
		}
	}
}
