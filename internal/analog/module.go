package analog

import (
	"fmt"
	"math"

	"repro/internal/protocol"
)

// ModuleKind enumerates the five sensor-module designs that ship with
// PowerSensor3 (Section III-A).
type ModuleKind int

const (
	// PCIe8Pin20A has a PCIe 8-pin connector for external GPU power.
	PCIe8Pin20A ModuleKind = iota
	// Slot10A measures power between the PCIe slot and the card (one module
	// per slot rail: 3.3 V or 12 V).
	Slot10A
	// USBC measures USB-powered systems (up to 20 V / 5 A).
	USBC
	// Terminal20A is the general-purpose medium-power module with terminal
	// blocks.
	Terminal20A
	// HighCurrent50A is the high-power module.
	HighCurrent50A
)

// String returns the catalogue name of the module kind.
func (k ModuleKind) String() string {
	switch k {
	case PCIe8Pin20A:
		return "PCIe-8pin-20A"
	case Slot10A:
		return "Slot-10A"
	case USBC:
		return "USB-C"
	case Terminal20A:
		return "Terminal-20A"
	case HighCurrent50A:
		return "HighCurrent-50A"
	default:
		return fmt.Sprintf("ModuleKind(%d)", int(k))
	}
}

// Module is a populated sensor module: a current/voltage sensor pair plus
// the nominal rail it is installed on. One Module occupies one baseboard
// slot and two consecutive ADC channels.
type Module struct {
	Kind    ModuleKind
	Name    string  // e.g. "12V/10A"
	RailV   float64 // nominal rail voltage, used for labelling and Table I
	Current HallSensor
	Voltage VoltageSensor
}

// rawNoiseA is the input-referred current noise per raw ADC conversion for
// the 10 A Hall sensor. The paper quotes 115 mA RMS at the sensor bandwidth;
// per-conversion noise at the 120 kHz raw channel rate is somewhat higher so
// that the 6-sample averaged 20 kHz output reproduces the measured ~0.72 W
// standard deviation of Table II (12 V module).
const rawNoiseA10 = 0.145

// differentialCoupling is the residual external-field sensitivity of the
// differential MLX91221: two sensing elements subtract a uniform ambient
// field, leaving only the gradient term.
const differentialCoupling = 0.02

// NewModule builds a sensor module of the given kind installed on a rail
// with the given nominal voltage. Sensor parameters follow the datasheet
// values cited in the paper; residual offset/gain errors default to zero
// (the state after the one-time calibration of Section III-D) and can be
// perturbed afterwards to model an uncalibrated device.
func NewModule(kind ModuleKind, railV float64) Module {
	m := Module{Kind: kind, RailV: railV}
	switch kind {
	case Slot10A:
		m.Current = HallSensor{
			Sensitivity: 0.120, RangeA: 10, NoiseRMS: rawNoiseA10,
			NonlinFrac: 0.004, BandwidthHz: 300e3, FieldCoupling: differentialCoupling,
		}
	case PCIe8Pin20A, Terminal20A:
		m.Current = HallSensor{
			Sensitivity: 0.060, RangeA: 20, NoiseRMS: rawNoiseA10 * 1.17,
			NonlinFrac: 0.004, BandwidthHz: 300e3, FieldCoupling: differentialCoupling,
		}
	case USBC:
		m.Current = HallSensor{
			Sensitivity: 0.240, RangeA: 5, NoiseRMS: rawNoiseA10,
			NonlinFrac: 0.004, BandwidthHz: 300e3, FieldCoupling: differentialCoupling,
		}
	case HighCurrent50A:
		m.Current = HallSensor{
			Sensitivity: 0.024, RangeA: 50, NoiseRMS: rawNoiseA10 * 1.6,
			NonlinFrac: 0.004, BandwidthHz: 300e3, FieldCoupling: differentialCoupling,
		}
	default:
		panic(fmt.Sprintf("analog: unknown module kind %d", int(kind)))
	}
	m.Voltage = VoltageSensor{
		Gain:        dividerGain(kind, railV),
		NoiseRMS:    0.006, // ~6 mV RMS rail-referred amplifier noise
		BandwidthHz: 100e3,
	}
	m.Name = fmt.Sprintf("%gV/%gA", railV, m.Current.RangeA)
	return m
}

// dividerGain chooses the voltage divider so the rail's worst-case voltage
// maps comfortably inside the ADC range.
func dividerGain(kind ModuleKind, railV float64) float64 {
	switch {
	case kind == USBC:
		return protocol.VRef / 23.0 // USB-PD up to 20 V + headroom
	case railV <= 3.3:
		return 0.8 // 3.3 V slot rail: ~4.1 V full scale
	default:
		return 0.2 // 12 V rails: 16.5 V full scale
	}
}

// Config returns the EEPROM configuration block the firmware stores for this
// module's current sensor (even channel) and voltage sensor (odd channel).
func (m *Module) Config() (current, voltage protocol.SensorConfig) {
	current = protocol.SensorConfig{
		Name:        m.Name + "-I",
		Volt:        m.RailV,
		Sensitivity: m.Current.Sensitivity,
		Polarity:    1,
		Enabled:     true,
	}
	voltage = protocol.SensorConfig{
		Name:        m.Name + "-U",
		Volt:        m.RailV,
		Sensitivity: m.Voltage.Gain,
		Polarity:    1,
		Enabled:     true,
	}
	return current, voltage
}

// WorstCase holds the closed-form worst-case accuracy of a module as derived
// in Section III-A and tabulated in Table I.
type WorstCase struct {
	Module   string
	VoltErr  float64 // Eu, volts
	CurrErr  float64 // Ei, amperes
	PowerErr float64 // Ep, watts, at full scale
}

// WorstCaseAccuracy computes the theoretical worst-case voltage, current and
// power error of the module at its full-scale operating point:
//
//	Ei = 3σ_hall + ½ LSB (amperes)
//	Eu = 3σ_amp  + ½ LSB (volts, rail-referred; divider amplifies both terms)
//	Ep = sqrt((U·Ei)² + (I·Eu)² + (Ei·Eu)²)
//
// using the paper's error-propagation formula. σ values are the datasheet
// sensor noise figures (115 mA RMS for the 10 A Hall variant).
func (m *Module) WorstCaseAccuracy() WorstCase {
	lsb := protocol.VRef / protocol.Levels

	// Current: datasheet noise (at sensor bandwidth) plus quantization.
	sigmaI := datasheetNoiseA(m.Kind)
	ei := 3*sigmaI + 0.5*lsb/m.Current.Sensitivity

	// Voltage: amplifier noise and quantization, both rail-referred.
	eu := 3*m.Voltage.NoiseRMS + 0.5*lsb/m.Voltage.Gain

	u, i := m.RailV, m.Current.RangeA
	ep := math.Sqrt(u*u*ei*ei + i*i*eu*eu + ei*ei*eu*eu)
	return WorstCase{Module: m.Name, VoltErr: eu, CurrErr: ei, PowerErr: ep}
}

// datasheetNoiseA is the RMS current noise quoted on the Hall sensor
// datasheet at the sensor's own bandwidth, per variant.
func datasheetNoiseA(kind ModuleKind) float64 {
	switch kind {
	case Slot10A, USBC:
		return 0.115
	case PCIe8Pin20A, Terminal20A:
		return 0.128
	case HighCurrent50A:
		return 0.150
	default:
		return 0.115
	}
}
