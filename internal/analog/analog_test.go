package analog

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/stats"
)

const rawDt = 8333 * time.Nanosecond // ~120 kHz per-channel raw rate

func noiselessHall(sens, rangeA float64) HallSensor {
	return HallSensor{Sensitivity: sens, RangeA: rangeA, BandwidthHz: 300e3}
}

func TestHallZeroCurrentReadsMidScale(t *testing.T) {
	h := noiselessHall(0.120, 10)
	r := rng.New(1)
	v := h.Sense(0, rawDt, r)
	if math.Abs(v-protocol.VRef/2) > 1e-9 {
		t.Fatalf("zero current reads %v, want %v", v, protocol.VRef/2)
	}
}

func TestHallLinearTransfer(t *testing.T) {
	h := noiselessHall(0.120, 10)
	r := rng.New(1)
	for _, i := range []float64{-10, -5, 0, 5, 10} {
		h.filt, h.primed = 0, false // reset filter so steady state is instant
		v := h.Sense(i, rawDt, r)
		want := protocol.VRef/2 + 0.120*i
		if math.Abs(v-want) > 1e-9 {
			t.Fatalf("I=%v: v=%v, want %v", i, v, want)
		}
	}
}

func TestHallNonlinearityVanishesAtEndpoints(t *testing.T) {
	h := noiselessHall(0.120, 10)
	h.NonlinFrac = 0.01
	r := rng.New(1)
	for _, i := range []float64{-10, 0, 10} {
		h.filt, h.primed = 0, false
		v := h.Sense(i, rawDt, r)
		want := protocol.VRef/2 + 0.120*i
		if math.Abs(v-want) > 1e-9 {
			t.Fatalf("endpoint I=%v has nonlinearity error: %v vs %v", i, v, want)
		}
	}
	// But it must bow in between.
	h.filt, h.primed = 0, false
	v := h.Sense(5, rawDt, r)
	ideal := protocol.VRef/2 + 0.120*5
	if math.Abs(v-ideal) < 1e-6 {
		t.Fatal("mid-scale nonlinearity absent")
	}
}

func TestHallNoiseMagnitude(t *testing.T) {
	h := noiselessHall(0.120, 10)
	h.NoiseRMS = 0.115
	r := rng.New(7)
	const n = 50000
	amps := make([]float64, n)
	for k := 0; k < n; k++ {
		v := h.Sense(2, rawDt, r)
		amps[k] = CurrentFromADC(v, 0.120)
	}
	s := stats.Summarize(amps)
	if math.Abs(s.Mean-2) > 0.05 {
		t.Errorf("mean current = %v, want ~2", s.Mean)
	}
	if math.Abs(s.Std-0.115)/0.115 > 0.1 {
		t.Errorf("current noise std = %v, want ~0.115", s.Std)
	}
}

func TestHallOffsetShiftsReading(t *testing.T) {
	h := noiselessHall(0.120, 10)
	h.OffsetA = 0.25
	r := rng.New(1)
	v := h.Sense(0, rawDt, r)
	got := CurrentFromADC(v, 0.120)
	if math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("offset reading = %v, want 0.25", got)
	}
}

func TestHallOutputClamped(t *testing.T) {
	h := noiselessHall(0.120, 10)
	r := rng.New(1)
	v := h.Sense(1000, rawDt, r) // absurd overcurrent
	if v > protocol.VRef || v < 0 {
		t.Fatalf("output %v escaped the ADC range", v)
	}
}

func TestHallBandwidthStepSettling(t *testing.T) {
	h := noiselessHall(0.120, 10)
	r := rng.New(1)
	h.Sense(0, rawDt, r) // prime at 0 A
	// After a step, a 300 kHz single-pole filter settles to >99% within
	// 2 raw samples (8.3 µs each).
	var v float64
	for k := 0; k < 2; k++ {
		v = h.Sense(8, rawDt, r)
	}
	got := CurrentFromADC(v, 0.120)
	if got < 8*0.99 {
		t.Fatalf("after 2 raw samples, current = %v, want >7.92", got)
	}
}

func TestVoltageSensorTransfer(t *testing.T) {
	s := VoltageSensor{Gain: 0.2, BandwidthHz: 100e3}
	r := rng.New(1)
	v := s.Sense(12, rawDt, r)
	if math.Abs(v-2.4) > 1e-9 {
		t.Fatalf("12 V reads %v at ADC, want 2.4", v)
	}
	if got := VoltageFromADC(v, 0.2); math.Abs(got-12) > 1e-9 {
		t.Fatalf("inverse transfer = %v", got)
	}
}

func TestVoltageSensorGainError(t *testing.T) {
	s := VoltageSensor{Gain: 0.2, GainErr: 0.01, BandwidthHz: 100e3}
	r := rng.New(1)
	v := s.Sense(12, rawDt, r)
	got := VoltageFromADC(v, 0.2)
	if math.Abs(got-12.12) > 1e-9 {
		t.Fatalf("1%% gain error gives %v, want 12.12", got)
	}
}

func TestVoltageNoiseRailReferred(t *testing.T) {
	s := VoltageSensor{Gain: 0.2, NoiseRMS: 0.006, BandwidthHz: 100e3}
	r := rng.New(9)
	const n = 50000
	vs := make([]float64, n)
	for k := 0; k < n; k++ {
		vs[k] = VoltageFromADC(s.Sense(12, rawDt, r), 0.2)
	}
	st := stats.Summarize(vs)
	if math.Abs(st.Std-0.006)/0.006 > 0.1 {
		t.Errorf("rail-referred noise = %v, want ~0.006", st.Std)
	}
}

func TestQuickADCInverseTransfers(t *testing.T) {
	f := func(raw uint16) bool {
		i := (float64(raw%2000) - 1000) / 100 // −10..10 A
		pin := protocol.VRef/2 + 0.120*i
		back := CurrentFromADC(pin, 0.120)
		return math.Abs(back-i) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewModuleCatalogue(t *testing.T) {
	cases := []struct {
		kind  ModuleKind
		railV float64
		rangeA,
		sens float64
	}{
		{Slot10A, 12, 10, 0.120},
		{Slot10A, 3.3, 10, 0.120},
		{PCIe8Pin20A, 12, 20, 0.060},
		{USBC, 20, 5, 0.240},
		{Terminal20A, 12, 20, 0.060},
		{HighCurrent50A, 12, 50, 0.024},
	}
	for _, c := range cases {
		m := NewModule(c.kind, c.railV)
		if m.Current.RangeA != c.rangeA {
			t.Errorf("%v: range %v, want %v", c.kind, m.Current.RangeA, c.rangeA)
		}
		if m.Current.Sensitivity != c.sens {
			t.Errorf("%v: sensitivity %v, want %v", c.kind, m.Current.Sensitivity, c.sens)
		}
		// Full-scale current and voltage must stay inside the ADC range.
		maxPin := protocol.VRef/2 + m.Current.Sensitivity*m.Current.RangeA
		if maxPin > protocol.VRef+1e-9 {
			t.Errorf("%v: full-scale current output %v exceeds VRef", c.kind, maxPin)
		}
		vPin := m.Voltage.Gain * c.railV * 1.1
		if vPin > protocol.VRef {
			t.Errorf("%v: 110%% rail voltage output %v exceeds VRef", c.kind, vPin)
		}
	}
}

func TestModuleConfigBlocks(t *testing.T) {
	m := NewModule(Slot10A, 12)
	cur, vol := m.Config()
	if !cur.Enabled || !vol.Enabled {
		t.Fatal("new module sensors must be enabled")
	}
	if cur.Sensitivity != 0.120 {
		t.Errorf("current sensitivity %v", cur.Sensitivity)
	}
	if vol.Sensitivity != 0.2 {
		t.Errorf("voltage gain %v", vol.Sensitivity)
	}
	if cur.Volt != 12 || vol.Volt != 12 {
		t.Error("rail voltage not recorded")
	}
}

// Table I reproduction: the closed-form worst case must match the paper's
// values within rounding (±0.1 W on power, ±1 mV, ±0.02 A).
func TestWorstCaseAccuracyMatchesTableI(t *testing.T) {
	cases := []struct {
		kind               ModuleKind
		railV              float64
		wantEu             float64 // volts
		wantEi             float64 // amperes
		wantEp             float64 // watts
		tolEu, tolEi, tolP float64
	}{
		{Slot10A, 12, 0.0286, 0.35, 4.2, 0.004, 0.02, 0.15},
		{Slot10A, 3.3, 0.0199, 0.35, 1.2, 0.004, 0.02, 0.15},
		{USBC, 20, 0.0286, 0.35, 7.0, 0.006, 0.02, 0.25},
		{PCIe8Pin20A, 12, 0.0286, 0.41, 5.0, 0.004, 0.03, 0.2},
	}
	for _, c := range cases {
		m := NewModule(c.kind, c.railV)
		wc := m.WorstCaseAccuracy()
		if math.Abs(wc.VoltErr-c.wantEu) > c.tolEu {
			t.Errorf("%s Eu = %.4f V, paper %.4f", wc.Module, wc.VoltErr, c.wantEu)
		}
		if math.Abs(wc.CurrErr-c.wantEi) > c.tolEi {
			t.Errorf("%s Ei = %.3f A, paper %.3f", wc.Module, wc.CurrErr, c.wantEi)
		}
		if math.Abs(wc.PowerErr-c.wantEp) > c.tolP {
			t.Errorf("%s Ep = %.2f W, paper %.2f", wc.Module, wc.PowerErr, c.wantEp)
		}
	}
}

// The 3.3 V module must be more accurate in power than the 12 V module —
// the observation the paper makes about Fig. 4.
func TestLowVoltageModuleMoreAccurate(t *testing.T) {
	m12 := NewModule(Slot10A, 12)
	m33 := NewModule(Slot10A, 3.3)
	if m33.WorstCaseAccuracy().PowerErr >= m12.WorstCaseAccuracy().PowerErr {
		t.Fatal("3.3 V module should have lower worst-case power error")
	}
}

func TestModuleKindString(t *testing.T) {
	for _, k := range []ModuleKind{PCIe8Pin20A, Slot10A, USBC, Terminal20A, HighCurrent50A} {
		if k.String() == "" || k.String()[0] == 'M' {
			t.Errorf("kind %d has bad name %q", int(k), k.String())
		}
	}
	if ModuleKind(99).String() != "ModuleKind(99)" {
		t.Error("unknown kind formatting")
	}
}

func BenchmarkHallSense(b *testing.B) {
	h := HallSensor{Sensitivity: 0.120, RangeA: 10, NoiseRMS: 0.115, NonlinFrac: 0.004, BandwidthHz: 300e3}
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		_ = h.Sense(5, rawDt, r)
	}
}
