// Package analog models the analog front-end of a PowerSensor3 sensor
// module: the Melexis MLX91221 differential Hall current sensor and the
// Broadcom ACPL-C87B optically isolated voltage sensor behind its divider
// (Section III-A of the paper).
//
// Both sensors are modelled as a first-order low-pass response (the
// datasheet bandwidth: 300 kHz for the Hall sensor, 100 kHz for the voltage
// sensor) followed by additive Gaussian noise and a small residual
// nonlinearity. The outputs are voltages at the ADC pin, in [0, VRef].
package analog

import (
	"math"
	"time"

	"repro/internal/protocol"
	"repro/internal/rng"
)

// HallSensor models an MLX91221-family isolated current sensor. The output
// is ratiometric around VRef/2: zero current reads mid-scale, positive
// current raises the output by Sensitivity volts per ampere.
type HallSensor struct {
	// Sensitivity is the transfer gain in volts per ampere at the ADC pin.
	Sensitivity float64
	// RangeA is the nominal measurement range in amperes (±RangeA).
	RangeA float64
	// NoiseRMS is the input-referred white noise per raw conversion, in
	// amperes RMS (115 mA for the 10 A variant per the paper).
	NoiseRMS float64
	// OffsetA is the residual input-referred offset after calibration.
	OffsetA float64
	// NonlinFrac is the full-scale fraction of the cubic nonlinearity term;
	// Hall sensors exhibit a smooth odd-order error across the range.
	NonlinFrac float64
	// BandwidthHz is the −3 dB bandwidth of the sensor.
	BandwidthHz float64

	// ExternalFieldA is the ambient magnetic field at the sensing element,
	// expressed as the equivalent current (amperes) a non-differential
	// sensor would report. Server enclosures are magnetically noisy; the
	// paper selected the differential MLX91221 exactly because it rejects
	// this (Section I: "current sensors that are hardly sensitive to
	// changes of the external magnetic field").
	ExternalFieldA float64
	// FieldCoupling is the fraction of the external field that leaks into
	// the reading: ~0.02 for the differential MLX91221, ~1.0 for the
	// single-ended sensor of PowerSensor2.
	FieldCoupling float64

	filt   float64 // low-pass state, amperes
	primed bool
}

// Sense advances the sensor by dt with input current i (amperes) and returns
// the output voltage at the ADC pin. rnd supplies the noise draw.
func (h *HallSensor) Sense(i float64, dt time.Duration, rnd *rng.Source) float64 {
	h.filt = lowpass(h.filt, i, h.BandwidthHz, dt, &h.primed)
	x := h.filt
	// Odd-order nonlinearity: exact at zero and full scale, bowed between.
	if h.NonlinFrac != 0 && h.RangeA > 0 {
		n := x / h.RangeA
		x += h.NonlinFrac * h.RangeA * (n - n*n*n)
	}
	x += h.OffsetA + rnd.NormSigma(h.NoiseRMS)
	x += h.ExternalFieldA * h.FieldCoupling
	return clamp(protocol.VRef/2+h.Sensitivity*x, 0, protocol.VRef)
}

// VoltageSensor models the divider + ACPL-C87B isolation amplifier chain.
// The output at the ADC pin is Gain × rail voltage.
type VoltageSensor struct {
	// Gain is the divider × amplifier transfer from rail volts to ADC volts.
	Gain float64
	// GainErr is the residual multiplicative gain error after calibration.
	GainErr float64
	// NoiseRMS is the rail-referred amplifier noise per raw conversion, in
	// volts RMS. The divider amplifies the amplifier's input noise when
	// referred back to the rail, which is why high-voltage modules are
	// noisier (Section III-A).
	NoiseRMS float64
	// BandwidthHz is the −3 dB bandwidth of the isolation amplifier.
	BandwidthHz float64

	filt   float64
	primed bool
}

// Sense advances the sensor by dt with rail voltage v and returns the output
// voltage at the ADC pin.
func (s *VoltageSensor) Sense(v float64, dt time.Duration, rnd *rng.Source) float64 {
	s.filt = lowpass(s.filt, v, s.BandwidthHz, dt, &s.primed)
	x := s.filt + rnd.NormSigma(s.NoiseRMS)
	return clamp(s.Gain*(1+s.GainErr)*x, 0, protocol.VRef)
}

// lowpass advances a first-order low-pass filter state toward target over dt.
// The first call primes the state so the filter does not ramp from zero.
func lowpass(state, target, bwHz float64, dt time.Duration, primed *bool) float64 {
	if !*primed {
		*primed = true
		return target
	}
	if bwHz <= 0 {
		return target
	}
	alpha := 1 - math.Exp(-2*math.Pi*bwHz*dt.Seconds())
	return state + alpha*(target-state)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// CurrentFromADC converts an ADC pin voltage back to amperes given the
// sensitivity — the inverse transfer the host library applies using the
// configuration values stored on the device.
func CurrentFromADC(pinVolts, sensitivity float64) float64 {
	return (pinVolts - protocol.VRef/2) / sensitivity
}

// VoltageFromADC converts an ADC pin voltage back to rail volts given the
// divider gain.
func VoltageFromADC(pinVolts, gain float64) float64 {
	return pinVolts / gain
}
