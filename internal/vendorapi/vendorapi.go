// Package vendorapi emulates the on-board power sensors and vendor APIs the
// paper compares PowerSensor3 against (Sections II-A and V):
//
//   - NVML on NVIDIA GPUs: an "instantaneous" reading that refreshes at
//     about 10 Hz, and the "legacy" average reading — a sliding-window
//     average, also refreshed at ~10 Hz, that smears out all fine-grained
//     behaviour (Fig. 7a).
//   - ROCm SMI / AMD SMI on AMD GPUs: a fast, accurate on-board sensor that
//     tracks true power closely (Fig. 7b) — the two APIs return identical
//     values despite different interfaces.
//   - The Jetson INA3221 rail monitor: ~10 Hz and module-only, blind to the
//     carrier board (Section V-B).
//   - RAPL for CPUs: an energy counter updated at ~1 kHz.
//
// Every meter polls a shared gpu.GPU (or a CPU model) in virtual time; a
// reading only changes when the underlying sensor's refresh interval has
// elapsed, which is precisely the artifact the paper demonstrates.
package vendorapi

import (
	"time"

	"repro/internal/gpu"
)

// Reading is one vendor-API sample.
type Reading struct {
	Time  time.Duration
	Watts float64
}

// NVML emulates the NVIDIA management library's power queries.
type NVML struct {
	gpu *gpu.GPU

	// UpdatePeriod is the on-board controller's refresh interval (~100 ms).
	UpdatePeriod time.Duration
	// AvgWindow is the averaging window of the legacy reading.
	AvgWindow time.Duration

	lastUpdate time.Duration
	instant    float64
	history    []Reading // instantaneous history for the window average
	avg        float64
	energyJ    float64
	haveFirst  bool
}

// NewNVML attaches an NVML emulation to g.
func NewNVML(g *gpu.GPU) *NVML {
	return &NVML{gpu: g, UpdatePeriod: 100 * time.Millisecond, AvgWindow: time.Second}
}

// poll refreshes the cached readings if the update period has elapsed.
func (n *NVML) poll(t time.Duration) {
	if n.haveFirst && t < n.lastUpdate+n.UpdatePeriod {
		return
	}
	// Catch up in whole update periods so energy integrates at 10 Hz.
	if !n.haveFirst {
		n.lastUpdate = t
		n.instant = n.gpu.PowerAt(t)
		n.history = append(n.history, Reading{t, n.instant})
		n.haveFirst = true
		return
	}
	for t >= n.lastUpdate+n.UpdatePeriod {
		n.lastUpdate += n.UpdatePeriod
		p := n.gpu.PowerAt(n.lastUpdate)
		n.energyJ += p * n.UpdatePeriod.Seconds()
		n.instant = p
		n.history = append(n.history, Reading{n.lastUpdate, p})
	}
	// Trim history beyond the averaging window.
	cut := 0
	for cut < len(n.history) && n.history[cut].Time < n.lastUpdate-n.AvgWindow {
		cut++
	}
	n.history = n.history[cut:]
	var sum float64
	for _, r := range n.history {
		sum += r.Watts
	}
	n.avg = sum / float64(len(n.history))
}

// PowerInstant returns the "instantaneous" field: true power as of the last
// 10 Hz refresh (driver 530+ behaviour).
func (n *NVML) PowerInstant(t time.Duration) float64 {
	n.poll(t)
	return n.instant
}

// PowerAverage returns the legacy averaged reading.
func (n *NVML) PowerAverage(t time.Duration) float64 {
	n.poll(t)
	return n.avg
}

// EnergyJoules returns the energy counter integrated at the sensor's own
// refresh rate — the source of the under/overestimates reported by Yang et
// al. for short kernels.
func (n *NVML) EnergyJoules(t time.Duration) float64 {
	n.poll(t)
	return n.energyJ
}

// AMDSMI emulates ROCm SMI / AMD SMI on the W7700: the built-in sensor
// closely matches external measurement (Fig. 7b).
type AMDSMI struct {
	gpu *gpu.GPU

	// UpdatePeriod is ~1 ms: effectively continuous at Fig. 7 time scales.
	UpdatePeriod time.Duration

	lastUpdate time.Duration
	value      float64
	energyJ    float64
	haveFirst  bool
}

// NewAMDSMI attaches an AMD SMI emulation to g.
func NewAMDSMI(g *gpu.GPU) *AMDSMI {
	return &AMDSMI{gpu: g, UpdatePeriod: time.Millisecond}
}

func (a *AMDSMI) poll(t time.Duration) {
	if !a.haveFirst {
		a.lastUpdate = t
		a.value = a.gpu.PowerAt(t)
		a.haveFirst = true
		return
	}
	for t >= a.lastUpdate+a.UpdatePeriod {
		a.lastUpdate += a.UpdatePeriod
		p := a.gpu.PowerAt(a.lastUpdate)
		a.energyJ += p * a.UpdatePeriod.Seconds()
		a.value = p
	}
}

// Power returns the current sensor value via the rocm-smi interface.
func (a *AMDSMI) Power(t time.Duration) float64 {
	a.poll(t)
	return a.value
}

// PowerViaAMDSMI returns the same value through the successor amd-smi
// interface — the paper notes both interfaces yield identical results.
func (a *AMDSMI) PowerViaAMDSMI(t time.Duration) float64 {
	return a.Power(t)
}

// EnergyJoules returns the integrated energy counter.
func (a *AMDSMI) EnergyJoules(t time.Duration) float64 {
	a.poll(t)
	return a.energyJ
}

// JetsonINA emulates the Jetson's INA3221 rail monitor: ~10 Hz and blind to
// the carrier board.
type JetsonINA struct {
	gpu *gpu.GPU

	UpdatePeriod time.Duration

	lastUpdate time.Duration
	value      float64
	energyJ    float64
	haveFirst  bool
}

// NewJetsonINA attaches the on-module sensor emulation to g.
func NewJetsonINA(g *gpu.GPU) *JetsonINA {
	return &JetsonINA{gpu: g, UpdatePeriod: 100 * time.Millisecond}
}

func (j *JetsonINA) poll(t time.Duration) {
	if !j.haveFirst {
		j.lastUpdate = t
		j.value = j.gpu.ModulePower(t)
		j.haveFirst = true
		return
	}
	for t >= j.lastUpdate+j.UpdatePeriod {
		j.lastUpdate += j.UpdatePeriod
		p := j.gpu.ModulePower(j.lastUpdate)
		j.energyJ += p * j.UpdatePeriod.Seconds()
		j.value = p
	}
}

// Power returns the module power as of the last refresh.
func (j *JetsonINA) Power(t time.Duration) float64 {
	j.poll(t)
	return j.value
}

// EnergyJoules returns the integrated module energy.
func (j *JetsonINA) EnergyJoules(t time.Duration) float64 {
	j.poll(t)
	return j.energyJ
}

// CPU is a minimal host-CPU power model for the RAPL emulation: idle power
// plus a utilisation-driven dynamic share.
type CPU struct {
	IdleW float64
	TDPW  float64
	Util  float64 // 0..1, set by the workload
}

// Power returns the package power at the current utilisation.
func (c *CPU) Power() float64 {
	u := c.Util
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return c.IdleW + u*(c.TDPW-c.IdleW)
}

// RAPL emulates Intel's Running Average Power Limit counters: a package
// energy counter refreshed at ~1 kHz.
type RAPL struct {
	cpu *CPU

	UpdatePeriod time.Duration

	lastUpdate time.Duration
	energyJ    float64
	haveFirst  bool
}

// NewRAPL attaches a RAPL emulation to cpu.
func NewRAPL(cpu *CPU) *RAPL {
	return &RAPL{cpu: cpu, UpdatePeriod: time.Millisecond}
}

// EnergyJoules returns the package energy counter at time t.
func (r *RAPL) EnergyJoules(t time.Duration) float64 {
	if !r.haveFirst {
		r.lastUpdate = t
		r.haveFirst = true
		return r.energyJ
	}
	for t >= r.lastUpdate+r.UpdatePeriod {
		r.lastUpdate += r.UpdatePeriod
		r.energyJ += r.cpu.Power() * r.UpdatePeriod.Seconds()
	}
	return r.energyJ
}
