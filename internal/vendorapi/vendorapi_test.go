package vendorapi

import (
	"math"
	"testing"
	"time"

	"repro/internal/gpu"
)

func TestNVMLRefreshesAt10Hz(t *testing.T) {
	g := gpu.New(gpu.RTX4000Ada(), 1)
	nv := NewNVML(g)
	k := gpu.Kernel{FLOPs: 200e12, Waves: 1, Intensity: 1, Efficiency: 1}
	run := g.LaunchKernel(k, 50*time.Millisecond)

	// Two reads 10 ms apart inside one update period must be identical,
	// even though true power is changing.
	t0 := run.Start + 200*time.Millisecond
	a := nv.PowerInstant(t0)
	b := nv.PowerInstant(t0 + 10*time.Millisecond)
	if a != b {
		t.Fatalf("NVML changed within an update period: %v vs %v", a, b)
	}
	// A read after the period elapses must differ (power is ramping).
	c := nv.PowerInstant(t0 + 400*time.Millisecond)
	if c == a {
		t.Fatalf("NVML did not refresh after update period")
	}
}

func TestNVMLMissesInterWaveDips(t *testing.T) {
	// PS3's claim in Fig. 7a: the dips between block waves are invisible at
	// 10 Hz. Sample NVML at 1 kHz over the kernel and check the spread of
	// readings is far below the true dip amplitude.
	g := gpu.New(gpu.RTX4000Ada(), 2)
	g.SetAppClock(1800)
	nv := NewNVML(g)
	k := gpu.Kernel{FLOPs: 600e12, Waves: 6, Intensity: 1, Efficiency: 1}
	run := g.LaunchKernel(k, 50*time.Millisecond)

	// Mid-kernel window well after the start transient. Count dip sightings:
	// samples more than 25 W below the window's running maximum.
	lo, hi := run.Start+run.Duration()/3, run.Start+run.Duration()*2/3

	// True power sampled at PS3-like resolution sees every inter-wave dip.
	truthDips := 0
	peak := math.Inf(-1)
	inDip := false
	for ts := lo; ts < hi; ts += 200 * time.Microsecond {
		v := g.PowerAt(ts)
		peak = math.Max(peak, v)
		below := v < peak-25
		if below && !inDip {
			truthDips++
		}
		inDip = below
	}

	// NVML refreshes ~10 times per second; collect its distinct updates.
	nvmlDips := 0
	peak = math.Inf(-1)
	for ts := lo; ts < hi; ts += nv.UpdatePeriod {
		v := nv.PowerInstant(ts)
		peak = math.Max(peak, v)
		if v < peak-25 {
			nvmlDips++
		}
	}

	if truthDips < 2 {
		t.Fatalf("true trace shows only %d dips; workload misconfigured", truthDips)
	}
	if nvmlDips >= truthDips {
		t.Fatalf("NVML saw %d dips, truth saw %d: dips should be mostly invisible at 10 Hz",
			nvmlDips, truthDips)
	}
}

func TestNVMLAverageSmoothsMoreThanInstant(t *testing.T) {
	g := gpu.New(gpu.RTX4000Ada(), 3)
	nv := NewNVML(g)
	k := gpu.Kernel{FLOPs: 300e12, Waves: 1, Intensity: 1, Efficiency: 1}
	run := g.LaunchKernel(k, 100*time.Millisecond)
	// Shortly after kernel start, instant has jumped but the 1 s window
	// average still contains idle samples.
	ts := run.Start + 300*time.Millisecond
	inst := nv.PowerInstant(ts)
	avg := nv.PowerAverage(ts)
	if avg >= inst {
		t.Fatalf("average %v not lagging instant %v on a rising edge", avg, inst)
	}
}

func TestAMDSMITracksTrueClosely(t *testing.T) {
	g := gpu.New(gpu.W7700(), 4)
	smi := NewAMDSMI(g)
	k := gpu.Kernel{FLOPs: 300e12, Waves: 1, Intensity: 1, Efficiency: 1}
	run := g.LaunchKernel(k, 50*time.Millisecond)
	var worst float64
	for ts := run.Start + 10*time.Millisecond; ts < run.End; ts += 5 * time.Millisecond {
		v := smi.Power(ts)
		truth := g.PowerAt(ts)
		if d := math.Abs(v - truth); d > worst {
			worst = d
		}
	}
	// 1 ms lag on a trace whose fastest feature is ~20 ms: small error.
	if worst > 0.15*g.Spec().LimitW {
		t.Fatalf("AMD SMI deviates %v W from truth", worst)
	}
}

func TestAMDSMIBothInterfacesIdentical(t *testing.T) {
	g := gpu.New(gpu.W7700(), 5)
	smi := NewAMDSMI(g)
	g.LaunchKernel(gpu.Kernel{FLOPs: 50e12, Waves: 1}, 10*time.Millisecond)
	ts := 100 * time.Millisecond
	if smi.Power(ts) != smi.PowerViaAMDSMI(ts) {
		t.Fatal("rocm-smi and amd-smi interfaces disagree")
	}
}

func TestJetsonINAMissesCarrierBoard(t *testing.T) {
	g := gpu.New(gpu.JetsonAGXOrin(), 6)
	ina := NewJetsonINA(g)
	ts := 500 * time.Millisecond
	module := ina.Power(ts)
	total := g.PowerAt(ts)
	if module >= total {
		t.Fatalf("INA reads %v, total %v: carrier board should be missing", module, total)
	}
	if d := total - module; math.Abs(d-g.Spec().CarrierBoardW) > 2 {
		t.Fatalf("missing share %v, want ~%v", d, g.Spec().CarrierBoardW)
	}
}

func TestNVMLEnergyCounterUndercountsShortKernel(t *testing.T) {
	// A kernel much shorter than the update period is sampled at most once:
	// the energy counter misses most of it (the Yang et al. failure mode).
	g := gpu.New(gpu.RTX4000Ada(), 7)
	g.SetAppClock(1800)
	nv := NewNVML(g)
	nv.EnergyJoules(0) // initialise

	k := gpu.Kernel{FLOPs: 2e12, Waves: 1, Intensity: 1, Efficiency: 1} // ~20 ms
	run := g.LaunchKernel(k, 30*time.Millisecond)
	if run.Duration() > 50*time.Millisecond {
		t.Fatalf("kernel unexpectedly long: %v", run.Duration())
	}
	end := run.End + 10*time.Millisecond
	e0 := g.TrueEnergy()
	_ = e0
	nvE := nv.EnergyJoules(end)
	trueE := g.TrueEnergy()
	// NVML's 10 Hz integration cannot resolve a 20 ms kernel: its estimate
	// must differ from truth substantially in relative terms.
	if relErr := math.Abs(nvE-trueE) / trueE; relErr < 0.05 {
		t.Fatalf("NVML energy error only %.1f%% on a sub-period kernel", relErr*100)
	}
}

func TestRAPLIntegrates(t *testing.T) {
	cpu := &CPU{IdleW: 20, TDPW: 120, Util: 0}
	r := NewRAPL(cpu)
	r.EnergyJoules(0)
	e1 := r.EnergyJoules(time.Second)
	if math.Abs(e1-20) > 0.5 {
		t.Fatalf("idle second = %v J, want ~20", e1)
	}
	cpu.Util = 1
	e2 := r.EnergyJoules(2 * time.Second)
	if math.Abs((e2-e1)-120) > 0.5 {
		t.Fatalf("busy second = %v J, want ~120", e2-e1)
	}
}

func TestCPUPowerClamps(t *testing.T) {
	cpu := &CPU{IdleW: 20, TDPW: 120, Util: 2}
	if cpu.Power() != 120 {
		t.Fatal("util > 1 must clamp to TDP")
	}
	cpu.Util = -1
	if cpu.Power() != 20 {
		t.Fatal("util < 0 must clamp to idle")
	}
}
