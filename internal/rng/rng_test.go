package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestReseedRestoresStream(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if v := r.Uint64(); v != first[i] {
			t.Fatalf("after reseed, draw %d = %d, want %d", i, v, first[i])
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(9)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestNormSigmaScales(t *testing.T) {
	r := New(13)
	const n = 100000
	var sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormSigma(2.5)
		sumSq += v * v
	}
	std := math.Sqrt(sumSq / n)
	if math.Abs(std-2.5) > 0.1 {
		t.Fatalf("NormSigma(2.5) std = %v", std)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(21)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(1)
	child := parent.Fork()
	// The child stream must differ from a continuation of the parent.
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("fork stream overlaps parent in %d of 64 draws", same)
	}
}

func TestQuickIntnBounds(t *testing.T) {
	r := New(99)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFloat64Bounds(t *testing.T) {
	r := New(100)
	f := func(uint8) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm()
	}
}
