// Package rng provides a small, deterministic random source used by every
// noise model in the simulator.
//
// The simulator must be reproducible: the same seed must yield the same
// sample stream regardless of Go version or platform. math/rand's global
// source is both global and historically unstable across versions, so we
// implement xoshiro256** seeded via splitmix64, the combination recommended
// by the xoshiro authors. Gaussian variates use the polar Box–Muller method.
package rng

import "math"

// Source is a deterministic pseudo-random number generator. It is not safe
// for concurrent use; create one Source per simulated component instead.
type Source struct {
	s [4]uint64

	// Box–Muller produces variates in pairs; cache the spare.
	gaussValid bool
	gauss      float64
}

// New returns a Source seeded from seed via splitmix64, which guarantees the
// internal state is never all-zero.
func New(seed uint64) *Source {
	var src Source
	src.Seed(seed)
	return &src
}

// Seed resets the generator to the deterministic state derived from seed.
func (r *Source) Seed(seed uint64) {
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	r.gaussValid = false
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform variate in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method (unbiased).
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + t>>32 + (t&mask+aLo*bHi)>>32
	return hi, lo
}

// Norm returns a standard-normal variate (mean 0, standard deviation 1).
func (r *Source) Norm() float64 {
	if r.gaussValid {
		r.gaussValid = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.gaussValid = true
		return u * f
	}
}

// NormSigma returns a normal variate with mean 0 and the given standard
// deviation.
func (r *Source) NormSigma(sigma float64) float64 {
	return sigma * r.Norm()
}

// Perm returns a random permutation of [0, n) using Fisher–Yates.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly swaps elements using the provided swap function.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Fork derives an independent child source. Deriving rather than sharing keeps
// per-component streams stable when unrelated components add or remove draws.
func (r *Source) Fork() *Source {
	return New(r.Uint64() ^ 0xa0761d6478bd642f)
}
