// Package legacy models PowerSensor2 (Romein & Veenboer, ISPASS 2018) — the
// predecessor the paper improves upon and the natural baseline for every
// "improvements over PowerSensor2" claim in the introduction:
//
//   - a 2.8 kHz sample rate instead of 20 kHz,
//   - single-ended current sensors that couple the ambient magnetic field
//     of a server enclosure straight into the reading,
//   - a fiddly multi-point calibration that drifts, so devices need
//     periodic recalibration (PowerSensor3's calibration is once, ever),
//   - a fixed board instead of swappable sensor modules.
//
// The model reuses the analog/ADC substrate with PowerSensor2's parameters,
// so head-to-head comparisons (step response, interference, noise) measure
// design differences rather than modelling differences.
package legacy

import (
	"time"

	"repro/internal/adc"
	"repro/internal/analog"
	"repro/internal/bench"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// SampleRateHz is PowerSensor2's output rate.
const SampleRateHz = 2800

// SampleInterval is the spacing between PowerSensor2 samples.
const SampleInterval = time.Second / SampleRateHz

// fieldCoupling is the external-field sensitivity of the single-ended
// ACS712-class sensor PowerSensor2 used.
const fieldCoupling = 1.0

// PowerSensor2 is one measurement channel of the legacy device.
type PowerSensor2 struct {
	current analog.HallSensor
	voltage analog.VoltageSensor
	conv    *adc.Converter
	rnd     *rng.Source

	// DriftPerHour models the calibration drift that forced periodic
	// recalibration of PowerSensor2 (amperes of offset per hour).
	DriftPerHour float64

	now time.Duration
}

// New returns a PowerSensor2 channel for a 12 V rail.
func New(seed uint64) *PowerSensor2 {
	return &PowerSensor2{
		current: analog.HallSensor{
			Sensitivity: 0.120, RangeA: 10,
			// The older sensor was noisier per sample and had no headroom
			// to average: 2.8 kHz output is near the raw conversion rate.
			NoiseRMS:      0.160,
			NonlinFrac:    0.008,
			BandwidthHz:   80e3, // ACS712-class bandwidth
			FieldCoupling: fieldCoupling,
		},
		voltage: analog.VoltageSensor{
			Gain: 0.2, NoiseRMS: 0.008, BandwidthHz: 50e3,
		},
		conv:         adc.New(),
		rnd:          rng.New(seed),
		DriftPerHour: 0.02,
		now:          0,
	}
}

// SetExternalField exposes the channel to an ambient magnetic field, given
// as the equivalent amperes a fully coupled sensor would report.
func (p *PowerSensor2) SetExternalField(equivalentA float64) {
	p.current.ExternalFieldA = equivalentA
}

// Now returns the device's virtual time.
func (p *PowerSensor2) Now() time.Duration { return p.now }

// Sample advances one 357 µs interval against the supply/load pair and
// returns the measured power. Calibration drift accumulates with time.
type Sample struct {
	Time  time.Duration
	Volts float64
	Amps  float64
	Watts float64
}

// Step measures one sample of the given source.
func (p *PowerSensor2) Step(supply *bench.Supply, load bench.Load) Sample {
	p.now += SampleInterval
	i := load.Current(p.now)
	v := supply.Voltage(p.now, i)

	// Calibration drift as an offset that grows with uptime.
	p.current.OffsetA = p.DriftPerHour * p.now.Hours()

	ipin := p.current.Sense(i, SampleInterval, p.rnd)
	vpin := p.voltage.Sense(v, SampleInterval, p.rnd)

	iCode := p.conv.Convert(ipin)
	vCode := p.conv.Convert(vpin)

	amps := (p.conv.Midpoint(iCode) - protocol.VRef/2) / p.current.Sensitivity
	volts := p.conv.Midpoint(vCode) / p.voltage.Gain
	return Sample{Time: p.now, Volts: volts, Amps: amps, Watts: amps * volts}
}

// Capture records a window of samples.
func (p *PowerSensor2) Capture(supply *bench.Supply, load bench.Load, d time.Duration) []Sample {
	n := int(d / SampleInterval)
	out := make([]Sample, 0, n)
	for k := 0; k < n; k++ {
		out = append(out, p.Step(supply, load))
	}
	return out
}
