package legacy

import (
	"math"
	"testing"
	"time"

	"repro/internal/analog"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/stats"
)

func TestBasicMeasurement(t *testing.T) {
	ps2 := New(1)
	supply := &bench.Supply{Nominal: 12}
	samples := ps2.Capture(supply, bench.ConstantLoad(5), 100*time.Millisecond)
	var watts []float64
	for _, s := range samples {
		watts = append(watts, s.Watts)
	}
	m := stats.Mean(watts)
	if math.Abs(m-60) > 3 {
		t.Fatalf("mean power %v, want ~60", m)
	}
}

func TestSampleRateIs2800(t *testing.T) {
	ps2 := New(2)
	supply := &bench.Supply{Nominal: 12}
	samples := ps2.Capture(supply, bench.ConstantLoad(1), time.Second)
	if n := len(samples); n < 2790 || n > 2810 {
		t.Fatalf("%d samples per second, want ~2800", n)
	}
}

// The headline comparison: PowerSensor2 cannot resolve the 100 Hz square
// modulation the way PowerSensor3 does — only ~14 samples per half-period
// versus 100, and the slower front-end smears the edges.
func TestStepResolutionWorseThanPS3(t *testing.T) {
	load := bench.SquareLoad{High: 8, Low: 3.3, FreqHz: 100}
	supply := &bench.Supply{Nominal: 12}

	ps2 := New(3)
	samples := ps2.Capture(supply, load, 50*time.Millisecond)
	perPeriod := float64(len(samples)) / 5
	if perPeriod > 30 {
		t.Fatalf("PS2 resolves %v samples/period; should be ~28", perPeriod)
	}
	// PowerSensor3 on the identical load: 200 samples per period.
	dev := device.New(3, device.Slot{
		Module: analog.NewModule(analog.Slot10A, 12),
		Source: device.BenchSource{Supply: supply, Load: load},
	})
	ps3, err := core.Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer ps3.Close()
	count := 0
	ps3.AttachSample(func(core.Sample) { count++ })
	ps3.Advance(50 * time.Millisecond)
	if float64(count)/5 < 6*perPeriod {
		t.Fatalf("PS3 %v samples/period vs PS2 %v; expected ~7x", float64(count)/5, perPeriod)
	}
}

// PowerSensor2's single-ended sensor couples the ambient field; the
// differential MLX91221 of PowerSensor3 rejects it. This is the paper's
// "hardly sensitive to changes of the external magnetic field" claim.
func TestFieldInterferenceRejection(t *testing.T) {
	const fieldA = 0.5 // equivalent amperes of ambient field
	supply := &bench.Supply{Nominal: 12}

	// PS2: the field shifts the reading by ~0.5 A × 12 V = 6 W.
	measure2 := func(field float64) float64 {
		ps2 := New(4)
		ps2.DriftPerHour = 0
		ps2.SetExternalField(field)
		samples := ps2.Capture(supply, bench.ConstantLoad(5), 50*time.Millisecond)
		var sum float64
		for _, s := range samples {
			sum += s.Watts
		}
		return sum / float64(len(samples))
	}
	shift2 := measure2(fieldA) - measure2(0)
	if shift2 < 3 {
		t.Fatalf("PS2 field shift %v W; single-ended sensor should couple ~6 W", shift2)
	}

	// PS3: the differential sensor rejects all but ~2%.
	measure3 := func(field float64) float64 {
		m := analog.NewModule(analog.Slot10A, 12)
		m.Current.ExternalFieldA = field
		r := rng.New(4)
		var sum float64
		const n = 2000
		for k := 0; k < n; k++ {
			pin := m.Current.Sense(5, 8333*time.Nanosecond, r)
			sum += analog.CurrentFromADC(pin, m.Current.Sensitivity) * 12
		}
		return sum / n
	}
	shift3 := measure3(fieldA) - measure3(0)
	if math.Abs(shift3) > shift2/10 {
		t.Fatalf("PS3 field shift %v W vs PS2 %v W; differential sensor should reject ≥10x better",
			shift3, shift2)
	}
}

// PowerSensor2 drifts out of calibration with uptime; PowerSensor3's
// stability run (Section IV-B) shows it does not. Verify the baseline
// actually exhibits the flaw the paper fixed.
func TestCalibrationDrift(t *testing.T) {
	ps2 := New(5)
	supply := &bench.Supply{Nominal: 12}
	early := ps2.Capture(supply, bench.ConstantLoad(5), 20*time.Millisecond)
	// Fast-forward 24 h of uptime.
	ps2.now += 24 * time.Hour
	late := ps2.Capture(supply, bench.ConstantLoad(5), 20*time.Millisecond)

	meanOf := func(ss []Sample) float64 {
		var sum float64
		for _, s := range ss {
			sum += s.Watts
		}
		return sum / float64(len(ss))
	}
	driftW := meanOf(late) - meanOf(early)
	// 0.02 A/h × 24 h × 12 V ≈ 5.8 W of drift.
	if driftW < 3 {
		t.Fatalf("PS2 drift after 24 h = %v W; the baseline must drift", driftW)
	}
}

func TestNoiseWorseThanPS3(t *testing.T) {
	ps2 := New(6)
	ps2.DriftPerHour = 0
	supply := &bench.Supply{Nominal: 12}
	samples := ps2.Capture(supply, bench.ConstantLoad(8), 200*time.Millisecond)
	var watts []float64
	for _, s := range samples {
		watts = append(watts, s.Watts)
	}
	std2 := stats.Std(watts)
	// PS3's 20 kHz std on the same load is ~0.72 W (Table II); PS2 with no
	// averaging headroom and a noisier sensor must be worse.
	if std2 < 0.9 {
		t.Fatalf("PS2 noise std %v W; expected worse than PS3's ~0.72 W", std2)
	}
}

func BenchmarkPS2Capture(b *testing.B) {
	ps2 := New(1)
	supply := &bench.Supply{Nominal: 12}
	load := bench.ConstantLoad(5)
	for i := 0; i < b.N; i++ {
		ps2.Step(supply, load)
	}
}
