package display

import (
	"strings"
	"testing"
	"time"
)

func TestFontAtlasPrecomputesAllCombinations(t *testing.T) {
	a := NewFontAtlas("01", []int{1, 2}, []uint16{ColorWhite})
	if a.Size() != 4 {
		t.Fatalf("atlas size %d, want 4", a.Size())
	}
	if a.Lookup('0', 1, ColorWhite) == nil {
		t.Fatal("missing glyph")
	}
	if a.Lookup('0', 3, ColorWhite) != nil {
		t.Fatal("unexpected glyph for scale 3")
	}
}

func TestGlyphScaling(t *testing.T) {
	g1 := renderGlyph('8', 1, ColorWhite)
	g2 := renderGlyph('8', 2, ColorWhite)
	ones := func(g *Glyph) int {
		n := 0
		for _, b := range g.Bitmap {
			for b != 0 {
				n += int(b & 1)
				b >>= 1
			}
		}
		return n
	}
	if got, want := ones(g2), 4*ones(g1); got != want {
		t.Fatalf("2x glyph has %d pixels, want %d", got, want)
	}
}

func TestShowRendersInk(t *testing.T) {
	p := NewPanel()
	p.Show(123.4, []Readout{{Name: "12V", Volts: 12.01, Amps: 8.2, PowerW: 98.5}})
	lit := 0
	for y := 0; y < Height; y++ {
		for x := 0; x < Width; x++ {
			if p.PixelLit(x, y) {
				lit++
			}
		}
	}
	if lit == 0 {
		t.Fatal("no pixels lit after Show")
	}
	if p.Frames() != 1 {
		t.Fatalf("frames = %d", p.Frames())
	}
	if !strings.Contains(p.LastText(), "123.4W") {
		t.Fatalf("last text %q", p.LastText())
	}
}

func TestDMACutsCPUTime(t *testing.T) {
	dma := NewPanel()
	cpu := NewPanel()
	cpu.UseDMA = false
	for i := 0; i < 10; i++ {
		dma.Show(50, nil)
		cpu.Show(50, nil)
	}
	if dma.BusTime() != cpu.BusTime() {
		t.Fatal("DMA must not change wire time")
	}
	if dma.CPUTime()*100 > cpu.CPUTime() {
		t.Fatalf("DMA CPU time %v not ≪ CPU-driven %v", dma.CPUTime(), cpu.CPUTime())
	}
}

func TestRefreshFitsFrameBudget(t *testing.T) {
	// A full frame at 24 MHz SPI must transfer well within a 10 Hz refresh
	// period, or the display would starve the sample loop.
	if TransferTime(FrameBytes) > 100*time.Millisecond/2 {
		t.Fatalf("frame transfer %v too slow", TransferTime(FrameBytes))
	}
}

func TestTransferTimeLinear(t *testing.T) {
	if TransferTime(2000) != 2*TransferTime(1000) {
		t.Fatal("transfer time not linear")
	}
}

func BenchmarkShow(b *testing.B) {
	p := NewPanel()
	pairs := []Readout{
		{Volts: 12, Amps: 8, PowerW: 96},
		{Volts: 3.3, Amps: 2, PowerW: 6.6},
		{Volts: 12, Amps: 15, PowerW: 180},
	}
	for i := 0; i < b.N; i++ {
		p.Show(282.6, pairs)
	}
}
