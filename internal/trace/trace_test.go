package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/analog"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/device"
)

func openBench(t *testing.T, amps float64) (*core.PowerSensor, *device.Device) {
	t.Helper()
	dev := device.New(77, device.Slot{
		Module: analog.NewModule(analog.Slot10A, 12),
		Source: device.BenchSource{Supply: &bench.Supply{Nominal: 12}, Load: bench.ConstantLoad(amps)},
	})
	ps, err := core.Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	return ps, dev
}

func captureSmall(t *testing.T) *Trace {
	t.Helper()
	ps, _ := openBench(t, 6)
	defer ps.Close()
	tr := Capture(ps, 20*time.Millisecond)
	if len(tr.Points) < 350 {
		t.Fatalf("captured %d points", len(tr.Points))
	}
	return tr
}

func TestCaptureBasics(t *testing.T) {
	tr := captureSmall(t)
	if tr.Pairs != 1 {
		t.Fatalf("pairs = %d", tr.Pairs)
	}
	if tr.Duration() <= 0 {
		t.Fatal("no duration")
	}
	// 6 A × 12 V = 72 W over ~20 ms ≈ 1.44 J.
	j := tr.Energy()
	if math.Abs(j-1.44) > 0.15 {
		t.Fatalf("energy %v J, want ~1.44", j)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := captureSmall(t)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Pairs != tr.Pairs || len(back.Points) != len(tr.Points) {
		t.Fatalf("shape: %d/%d vs %d/%d", back.Pairs, len(back.Points), tr.Pairs, len(tr.Points))
	}
	for i := range tr.Points {
		a, b := tr.Points[i], back.Points[i]
		if math.Abs(a.TotalW-b.TotalW) > 0.001 {
			t.Fatalf("point %d: total %v vs %v", i, a.TotalW, b.TotalW)
		}
		if d := a.Time - b.Time; d < -time.Microsecond || d > time.Microsecond {
			t.Fatalf("point %d: time %v vs %v", i, a.Time, b.Time)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := captureSmall(t)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(tr.Points) {
		t.Fatal("length mismatch")
	}
	if math.Abs(back.Energy()-tr.Energy()) > 1e-9 {
		t.Fatal("energy mismatch")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, err := ReadCSV(strings.NewReader("bogus,header\n")); err == nil {
		t.Error("bad header accepted")
	}
	if _, err := ReadCSV(strings.NewReader("time_s,w0,total,marker\n1,2\n")); err == nil {
		t.Error("ragged row accepted")
	}
	if _, err := ReadCSV(strings.NewReader("time_s,w0,total,marker\nx,1,1,\n")); err == nil {
		t.Error("non-numeric time accepted")
	}
}

func TestParseDumpMatchesLibraryFormat(t *testing.T) {
	// Generate a real continuous-mode dump and parse it back.
	ps, _ := openBench(t, 4)
	defer ps.Close()
	var dump bytes.Buffer
	ps.StartDump(&dump)
	ps.Advance(5 * time.Millisecond)
	ps.Mark('A')
	ps.Advance(5 * time.Millisecond)
	if err := ps.StopDump(); err != nil {
		t.Fatal(err)
	}

	tr, err := ParseDump(&dump)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Pairs != 1 {
		t.Fatalf("pairs = %d", tr.Pairs)
	}
	if len(tr.Points) < 150 {
		t.Fatalf("%d points", len(tr.Points))
	}
	markers := 0
	for _, p := range tr.Points {
		if p.Marker == 'A' {
			markers++
		}
		if math.Abs(p.TotalW-48) > 6 {
			t.Fatalf("power %v far from 48 W", p.TotalW)
		}
	}
	if markers != 1 {
		t.Fatalf("%d markers", markers)
	}
}

func TestBetweenMarkers(t *testing.T) {
	tr := &Trace{Pairs: 1}
	for i := 0; i < 10; i++ {
		p := Point{Time: time.Duration(i) * time.Millisecond, TotalW: 10}
		if i == 2 || i == 7 {
			p.Marker = 'M'
		}
		tr.Points = append(tr.Points, p)
	}
	sub, err := tr.Between(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Points) != 4 { // indices 3..6
		t.Fatalf("%d points between markers", len(sub.Points))
	}
	if _, err := tr.Between(1, 1); err == nil {
		t.Error("equal markers accepted")
	}
	if _, err := tr.Between(0, 5); err == nil {
		t.Error("missing marker accepted")
	}
}

func TestEnergyEmptyTrace(t *testing.T) {
	tr := &Trace{}
	if tr.Energy() != 0 || tr.Duration() != 0 {
		t.Fatal("empty trace must have zero energy and duration")
	}
}

func BenchmarkWriteCSV(b *testing.B) {
	tr := &Trace{Pairs: 3}
	for i := 0; i < 20000; i++ {
		tr.Points = append(tr.Points, Point{
			Time:  time.Duration(i) * 50 * time.Microsecond,
			Watts: []float64{10, 20, 30}, TotalW: 60,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
