// Package trace records and parses PowerSensor3 measurement traces.
//
// Continuous mode (Section III-C) streams every 20 kHz sample set to a
// file; this package provides the structured form of those recordings —
// capture from a live sensor, round-trippable CSV and JSON encodings, the
// dump-format parser, and the marker-based interval extraction used to
// attribute energy to application phases.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
)

// Point is one recorded sample set.
type Point struct {
	Time   time.Duration `json:"t"`
	Watts  []float64     `json:"w"`
	TotalW float64       `json:"total"`
	Marker byte          `json:"marker,omitempty"`
}

// Trace is a recorded measurement.
type Trace struct {
	Pairs  int     `json:"pairs"`
	Points []Point `json:"points"`
}

// Capture records dur of samples from an open sensor, attributing any
// pending markers.
func Capture(ps *core.PowerSensor, dur time.Duration) *Trace {
	tr := &Trace{Pairs: ps.Pairs()}
	hook := ps.AttachSample(func(s core.Sample) {
		p := Point{Time: s.DeviceTime}
		for m := 0; m < tr.Pairs; m++ {
			p.Watts = append(p.Watts, s.Watts[m])
			p.TotalW += s.Watts[m]
		}
		if s.Marker {
			p.Marker = 'M'
		}
		tr.Points = append(tr.Points, p)
	})
	defer ps.DetachSample(hook)
	ps.Advance(dur)
	return tr
}

// Duration returns the time span of the trace.
func (t *Trace) Duration() time.Duration {
	if len(t.Points) < 2 {
		return 0
	}
	return t.Points[len(t.Points)-1].Time - t.Points[0].Time
}

// Energy integrates total power over the trace (trapezoidal).
func (t *Trace) Energy() float64 {
	var joules float64
	for i := 1; i < len(t.Points); i++ {
		dt := (t.Points[i].Time - t.Points[i-1].Time).Seconds()
		joules += dt * (t.Points[i].TotalW + t.Points[i-1].TotalW) / 2
	}
	return joules
}

// Between returns the sub-trace between the i-th and j-th markers
// (0-indexed), exclusive of the marked samples themselves.
func (t *Trace) Between(i, j int) (*Trace, error) {
	var idx []int
	for k, p := range t.Points {
		if p.Marker != 0 {
			idx = append(idx, k)
		}
	}
	if i < 0 || j >= len(idx) || i >= j {
		return nil, fmt.Errorf("trace: markers %d..%d not present (%d markers)", i, j, len(idx))
	}
	return &Trace{Pairs: t.Pairs, Points: t.Points[idx[i]+1 : idx[j]]}, nil
}

// WriteCSV emits the trace as CSV: time_s, w0..wN, total, marker.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "time_s")
	for m := 0; m < t.Pairs; m++ {
		fmt.Fprintf(bw, ",w%d", m)
	}
	fmt.Fprintf(bw, ",total,marker\n")
	for _, p := range t.Points {
		fmt.Fprintf(bw, "%.6f", p.Time.Seconds())
		for _, w := range p.Watts {
			fmt.Fprintf(bw, ",%.4f", w)
		}
		marker := ""
		if p.Marker != 0 {
			marker = string(p.Marker)
		}
		fmt.Fprintf(bw, ",%.4f,%s\n", p.TotalW, marker)
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	header := strings.Split(sc.Text(), ",")
	if len(header) < 3 || header[0] != "time_s" {
		return nil, fmt.Errorf("trace: bad CSV header %q", sc.Text())
	}
	pairs := len(header) - 3
	tr := &Trace{Pairs: pairs}
	lineNo := 1
	for sc.Scan() {
		lineNo++
		fields := strings.Split(sc.Text(), ",")
		if len(fields) != len(header) {
			return nil, fmt.Errorf("trace: line %d has %d fields, want %d", lineNo, len(fields), len(header))
		}
		secs, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d time: %w", lineNo, err)
		}
		p := Point{Time: time.Duration(secs * float64(time.Second))}
		for m := 0; m < pairs; m++ {
			w, err := strconv.ParseFloat(fields[1+m], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d pair %d: %w", lineNo, m, err)
			}
			p.Watts = append(p.Watts, w)
		}
		p.TotalW, err = strconv.ParseFloat(fields[1+pairs], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d total: %w", lineNo, err)
		}
		if mk := fields[2+pairs]; mk != "" {
			p.Marker = mk[0]
		}
		tr.Points = append(tr.Points, p)
	}
	return tr, sc.Err()
}

// WriteJSON emits the trace as JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// ReadJSON parses a JSON trace.
func ReadJSON(r io.Reader) (*Trace, error) {
	var tr Trace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return &tr, nil
}

// ParseDump parses the host library's continuous-mode dump format
// ("S <t> <w0>.. <total> [Mx]").
func ParseDump(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var tr Trace
	lineNo := 0
	for sc.Scan() {
		lineNo++
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || fields[0] != "S" {
			return nil, fmt.Errorf("trace: dump line %d malformed: %q", lineNo, sc.Text())
		}
		secs, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: dump line %d: %w", lineNo, err)
		}
		p := Point{Time: time.Duration(secs * float64(time.Second))}
		rest := fields[2:]
		if mk := rest[len(rest)-1]; strings.HasPrefix(mk, "M") && len(mk) == 2 {
			p.Marker = mk[1]
			rest = rest[:len(rest)-1]
		}
		// Last numeric column is the total; the preceding are per-pair.
		for i, f := range rest {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: dump line %d col %d: %w", lineNo, i, err)
			}
			if i == len(rest)-1 {
				p.TotalW = v
			} else {
				p.Watts = append(p.Watts, v)
			}
		}
		if tr.Pairs == 0 {
			tr.Pairs = len(p.Watts)
		}
		tr.Points = append(tr.Points, p)
	}
	return &tr, sc.Err()
}
