package trace_test

import (
	"fmt"
	"time"

	"repro/internal/trace"
)

// Markers attribute energy to application phases: everything between the
// first and second markers is the kernel.
func ExampleTrace_Between() {
	tr := &trace.Trace{Pairs: 1}
	for i := 0; i < 8; i++ {
		p := trace.Point{
			Time:   time.Duration(i) * 50 * time.Microsecond,
			TotalW: 100,
		}
		if i == 1 || i == 6 {
			p.Marker = 'K'
		}
		tr.Points = append(tr.Points, p)
	}
	kernel, err := tr.Between(0, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d samples, %.1f mJ\n", len(kernel.Points), kernel.Energy()*1000)
	// Output: 4 samples, 15.0 mJ
}
