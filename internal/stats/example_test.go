package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// Block averaging is the trade behind Table II of the paper: fewer, quieter
// samples.
func ExampleBlockAverage() {
	samples := []float64{10, 12, 11, 13, 9, 11, 10, 12}
	avg := stats.BlockAverage(samples, 4)
	fmt.Println(avg)
	// Output: [11.5 10.5]
}

func ExampleSummarize() {
	s := stats.Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	fmt.Printf("mean=%.0f std=%.0f p2p=%.0f\n", s.Mean, s.Std, s.P2P())
	// Output: mean=5 std=2 p2p=7
}

// ParetoFront extracts the undominated configurations of a tuning run.
func ExampleParetoFront() {
	points := []stats.Point{
		{X: 0.83, Y: 80.4, Tag: 0}, // fastest
		{X: 0.94, Y: 63.1, Tag: 1}, // most efficient
		{X: 0.70, Y: 60.0, Tag: 2}, // dominated by both
	}
	for _, p := range stats.ParetoFront(points) {
		fmt.Printf("%.2f TFLOP/J %.1f TFLOP/s\n", p.X, p.Y)
	}
	// Output:
	// 0.83 TFLOP/J 80.4 TFLOP/s
	// 0.94 TFLOP/J 63.1 TFLOP/s
}

func ExamplePearson() {
	perf := []float64{40, 55, 63, 80}
	eff := []float64{0.6, 0.7, 0.9, 0.8}
	fmt.Printf("r=%.2f\n", stats.Pearson(perf, eff))
	// Output: r=0.73
}
