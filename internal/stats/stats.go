// Package stats implements the descriptive statistics and time-series helpers
// used throughout the evaluation harness: summary statistics, block
// averaging (the sample-rate reduction of Table II), trapezoidal energy
// integration, percentiles, and Pareto-front extraction (Figs. 8 and 10).
package stats

import (
	"math"
	"sort"
)

// Summary holds the descriptive statistics the paper reports for a sample
// block: minimum, maximum, peak-to-peak range, mean, and standard deviation.
type Summary struct {
	N    int
	Min  float64
	Max  float64
	Mean float64
	Std  float64
}

// P2P returns the peak-to-peak range (max − min).
func (s Summary) P2P() float64 { return s.Max - s.Min }

// Summarize computes a Summary over xs. It returns a zero Summary for an
// empty slice. The standard deviation is the population deviation, matching
// the paper's treatment of full 128 k-sample blocks.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	s.Std = math.Sqrt(sq / float64(len(xs)))
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 { return Summarize(xs).Std }

// MinMax returns the minimum and maximum of xs. It panics on empty input.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// RMS returns the root-mean-square of xs.
func RMS(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sq float64
	for _, x := range xs {
		sq += x * x
	}
	return math.Sqrt(sq / float64(len(xs)))
}

// BlockAverage reduces xs by averaging consecutive non-overlapping blocks of
// size block, discarding any incomplete trailing block. This is the
// sample-rate reduction studied in Table II: averaging k samples divides the
// effective rate by k and shrinks uncorrelated noise by roughly √k.
// It panics if block <= 0.
func BlockAverage(xs []float64, block int) []float64 {
	if block <= 0 {
		panic("stats: BlockAverage with non-positive block size")
	}
	n := len(xs) / block
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var sum float64
		for _, x := range xs[i*block : (i+1)*block] {
			sum += x
		}
		out[i] = sum / float64(block)
	}
	return out
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between order statistics. It panics on empty input or p
// outside [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic("stats: percentile out of range")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Trapz integrates y over x using the trapezoidal rule. The host library uses
// this to turn a power time series into cumulative energy. It panics if the
// slices differ in length; it returns 0 for fewer than two points.
func Trapz(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Trapz length mismatch")
	}
	var area float64
	for i := 1; i < len(x); i++ {
		area += (x[i] - x[i-1]) * (y[i] + y[i-1]) / 2
	}
	return area
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
// It panics if n < 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("stats: Linspace needs at least 2 points")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// Point is a 2-D sample used for Pareto-front extraction, with X the quantity
// to maximise jointly with Y (e.g. X = energy efficiency in TFLOP/J and
// Y = compute performance in TFLOP/s).
type Point struct {
	X, Y float64
	Tag  int // caller-defined identifier (e.g. configuration index)
}

// ParetoFront returns the maximal points of pts: those not dominated by any
// other point (another point with X ≥ and Y ≥, one strictly greater). The
// result is sorted by ascending X. Input order is not modified.
func ParetoFront(pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	sorted := append([]Point(nil), pts...)
	// Sort by descending X, then descending Y; sweep keeping the running
	// maximum of Y. A point is on the front iff its Y exceeds every Y seen
	// at strictly larger X.
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X > sorted[j].X
		}
		return sorted[i].Y > sorted[j].Y
	})
	var front []Point
	bestY := math.Inf(-1)
	prevX := math.Inf(1)
	for _, p := range sorted {
		if p.Y > bestY || (p.X == prevX && p.Y == bestY) {
			// Equal points: keep only the first occurrence.
			if p.Y > bestY {
				front = append(front, p)
				bestY = p.Y
				prevX = p.X
			}
		}
	}
	sort.Slice(front, func(i, j int) bool { return front[i].X < front[j].X })
	return front
}

// Dominates reports whether a dominates b: a is at least as good in both
// dimensions and strictly better in one.
func Dominates(a, b Point) bool {
	return a.X >= b.X && a.Y >= b.Y && (a.X > b.X || a.Y > b.Y)
}

// Histogram counts xs into n equal-width bins spanning [lo, hi]. Values
// outside the range are clamped into the first/last bin. It panics if
// n <= 0 or hi <= lo.
func Histogram(xs []float64, lo, hi float64, n int) []int {
	if n <= 0 {
		panic("stats: Histogram with non-positive bin count")
	}
	if hi <= lo {
		panic("stats: Histogram with empty range")
	}
	bins := make([]int, n)
	width := (hi - lo) / float64(n)
	for _, x := range xs {
		i := int((x - lo) / width)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		bins[i]++
	}
	return bins
}

// MovingAverage returns the centered moving average of xs with the given
// window (rounded down to odd). Edges use the available partial window.
func MovingAverage(xs []float64, window int) []float64 {
	if window < 1 {
		panic("stats: MovingAverage with non-positive window")
	}
	half := window / 2
	out := make([]float64, len(xs))
	for i := range xs {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half + 1
		if hi > len(xs) {
			hi = len(xs)
		}
		out[i] = Mean(xs[lo:hi])
	}
	return out
}

// Pearson returns the Pearson correlation coefficient of x and y. It panics
// if the lengths differ; it returns 0 when either series is constant.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Pearson length mismatch")
	}
	if len(x) == 0 {
		return 0
	}
	n := float64(len(x))
	var sx, sy, sxx, syy, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
		sxy += x[i] * y[i]
	}
	den := math.Sqrt((n*sxx - sx*sx) * (n*syy - sy*sy))
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
