package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if !almost(s.Mean, 2.5, 1e-12) {
		t.Errorf("mean = %v", s.Mean)
	}
	want := math.Sqrt(1.25)
	if !almost(s.Std, want, 1e-12) {
		t.Errorf("std = %v, want %v", s.Std, want)
	}
	if !almost(s.P2P(), 3, 1e-12) {
		t.Errorf("p2p = %v", s.P2P())
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Mean != 7 || s.Std != 0 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 4, 1, 5})
	if lo != -1 || hi != 5 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
}

func TestMinMaxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MinMax(nil)
}

func TestRMS(t *testing.T) {
	if got := RMS([]float64{3, 4}); !almost(got, math.Sqrt(12.5), 1e-12) {
		t.Fatalf("RMS = %v", got)
	}
	if RMS(nil) != 0 {
		t.Fatal("RMS(nil) != 0")
	}
}

func TestBlockAverage(t *testing.T) {
	xs := []float64{1, 3, 5, 7, 9, 11, 100}
	got := BlockAverage(xs, 2)
	want := []float64{2, 6, 10}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if !almost(got[i], want[i], 1e-12) {
			t.Fatalf("block %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBlockAverageIdentity(t *testing.T) {
	xs := []float64{4, 5, 6}
	got := BlockAverage(xs, 1)
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatal("block size 1 must be identity")
		}
	}
}

// Block averaging must preserve the overall mean of complete blocks.
func TestBlockAveragePreservesMean(t *testing.T) {
	r := rng.New(17)
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = r.Float64()
	}
	for _, block := range []int{2, 4, 8, 16} {
		avg := BlockAverage(xs, block)
		if !almost(Mean(avg), Mean(xs), 1e-9) {
			t.Fatalf("block %d changed mean: %v vs %v", block, Mean(avg), Mean(xs))
		}
	}
}

// White-noise std must shrink like 1/sqrt(block) under block averaging.
// This is the mechanism behind Table II in the paper.
func TestBlockAverageNoiseScaling(t *testing.T) {
	r := rng.New(23)
	xs := make([]float64, 1<<17)
	for i := range xs {
		xs[i] = r.Norm()
	}
	base := Std(xs)
	for _, block := range []int{4, 16, 64} {
		got := Std(BlockAverage(xs, block))
		want := base / math.Sqrt(float64(block))
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("block %d: std = %v, want ~%v", block, got, want)
		}
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-12) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileSingle(t *testing.T) {
	if Percentile([]float64{42}, 99) != 42 {
		t.Fatal("single-element percentile")
	}
}

func TestTrapzConstant(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{5, 5, 5, 5}
	if got := Trapz(x, y); !almost(got, 15, 1e-12) {
		t.Fatalf("Trapz = %v", got)
	}
}

func TestTrapzLinear(t *testing.T) {
	x := Linspace(0, 2, 101)
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 3 * x[i]
	}
	if got := Trapz(x, y); !almost(got, 6, 1e-9) {
		t.Fatalf("Trapz = %v, want 6", got)
	}
}

func TestTrapzShort(t *testing.T) {
	if Trapz([]float64{1}, []float64{1}) != 0 {
		t.Fatal("single-point integral must be 0")
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(-1, 1, 5)
	want := []float64{-1, -0.5, 0, 0.5, 1}
	for i := range want {
		if !almost(xs[i], want[i], 1e-12) {
			t.Fatalf("Linspace = %v", xs)
		}
	}
}

func TestParetoFrontSimple(t *testing.T) {
	pts := []Point{
		{X: 1, Y: 5, Tag: 0}, // front
		{X: 2, Y: 4, Tag: 1}, // front
		{X: 1.5, Y: 3, Tag: 2},
		{X: 3, Y: 1, Tag: 3}, // front
		{X: 0.5, Y: 2, Tag: 4},
	}
	front := ParetoFront(pts)
	if len(front) != 3 {
		t.Fatalf("front = %+v", front)
	}
	tags := map[int]bool{}
	for _, p := range front {
		tags[p.Tag] = true
	}
	for _, want := range []int{0, 1, 3} {
		if !tags[want] {
			t.Errorf("tag %d missing from front %+v", want, front)
		}
	}
	for i := 1; i < len(front); i++ {
		if front[i].X < front[i-1].X {
			t.Error("front not sorted by X")
		}
	}
}

func TestParetoFrontEmpty(t *testing.T) {
	if ParetoFront(nil) != nil {
		t.Fatal("empty input must yield nil front")
	}
}

func TestParetoFrontNoMemberDominated(t *testing.T) {
	r := rng.New(31)
	pts := make([]Point, 200)
	for i := range pts {
		pts[i] = Point{X: r.Float64(), Y: r.Float64(), Tag: i}
	}
	front := ParetoFront(pts)
	for _, f := range front {
		for _, p := range pts {
			if p.Tag != f.Tag && Dominates(p, f) {
				t.Fatalf("front member %+v dominated by %+v", f, p)
			}
		}
	}
	// Every non-front point must be dominated by some front point.
	inFront := map[int]bool{}
	for _, f := range front {
		inFront[f.Tag] = true
	}
	for _, p := range pts {
		if inFront[p.Tag] {
			continue
		}
		dominated := false
		for _, f := range front {
			if Dominates(f, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Fatalf("non-front point %+v not dominated", p)
		}
	}
}

func TestQuickParetoFrontInvariant(t *testing.T) {
	r := rng.New(37)
	f := func(n uint8) bool {
		m := int(n)%32 + 1
		pts := make([]Point, m)
		for i := range pts {
			pts[i] = Point{X: r.Float64(), Y: r.Float64(), Tag: i}
		}
		front := ParetoFront(pts)
		if len(front) == 0 {
			return false
		}
		for i := range front {
			for j := range front {
				if i != j && Dominates(front[i], front[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	bins := Histogram([]float64{0.1, 0.2, 0.9, -5, 10}, 0, 1, 2)
	if bins[0] != 3 || bins[1] != 2 {
		t.Fatalf("bins = %v", bins)
	}
}

func TestMovingAverageConstant(t *testing.T) {
	xs := []float64{2, 2, 2, 2, 2}
	out := MovingAverage(xs, 3)
	for _, v := range out {
		if !almost(v, 2, 1e-12) {
			t.Fatalf("out = %v", out)
		}
	}
}

func TestMovingAverageSmooths(t *testing.T) {
	r := rng.New(41)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.Norm()
	}
	smoothed := MovingAverage(xs, 21)
	if Std(smoothed) >= Std(xs) {
		t.Fatal("moving average did not reduce variance")
	}
}

func BenchmarkSummarize128k(b *testing.B) {
	r := rng.New(1)
	xs := make([]float64, 128*1024)
	for i := range xs {
		xs[i] = r.Norm()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Summarize(xs)
	}
}

func BenchmarkParetoFront(b *testing.B) {
	r := rng.New(2)
	pts := make([]Point, 5120)
	for i := range pts {
		pts[i] = Point{X: r.Float64(), Y: r.Float64(), Tag: i}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ParetoFront(pts)
	}
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	if r := Pearson(x, y); !almost(r, 1, 1e-12) {
		t.Fatalf("r = %v", r)
	}
	neg := []float64{8, 6, 4, 2}
	if r := Pearson(x, neg); !almost(r, -1, 1e-12) {
		t.Fatalf("r = %v", r)
	}
}

func TestPearsonUncorrelated(t *testing.T) {
	r := rng.New(71)
	x := make([]float64, 10000)
	y := make([]float64, 10000)
	for i := range x {
		x[i], y[i] = r.Norm(), r.Norm()
	}
	if got := Pearson(x, y); math.Abs(got) > 0.05 {
		t.Fatalf("independent series correlate: %v", got)
	}
}

func TestPearsonConstantSeries(t *testing.T) {
	if Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}) != 0 {
		t.Fatal("constant series must yield 0")
	}
}

func TestPearsonMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Pearson([]float64{1}, []float64{1, 2})
}
