package simsetup

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fio"
)

func TestModuleNamesSorted(t *testing.T) {
	names := ModuleNames()
	if len(names) != 5 {
		t.Fatalf("%d module names", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatal("names not sorted")
		}
	}
}

func TestBenchDeviceSpecs(t *testing.T) {
	for _, spec := range []string{"slot10a:12", "slot10a:3.3", "pcie8pin:12", "usbc:20", "hc50a:12", "tb20a"} {
		dev, err := BenchDevice(spec, 1, 1)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if !dev.Firmware().SensorConfig(0).Enabled {
			t.Fatalf("%s: sensor disabled", spec)
		}
	}
}

func TestBenchDeviceErrors(t *testing.T) {
	if _, err := BenchDevice("nope:12", 1, 1); err == nil || !strings.Contains(err.Error(), "unknown module") {
		t.Fatalf("err = %v", err)
	}
	if _, err := BenchDevice("slot10a:abc", 1, 1); err == nil {
		t.Fatal("bad voltage accepted")
	}
}

func TestBenchDeviceMeasures(t *testing.T) {
	dev, err := BenchDevice("slot10a:12", 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := core.Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	a := ps.Read()
	ps.Advance(100 * time.Millisecond)
	b := ps.Read()
	if w := core.Watts(a, b, 0); w < 55 || w > 65 {
		t.Fatalf("watts = %v, want ~60", w)
	}
}

func TestGPURigNames(t *testing.T) {
	for _, name := range GPUNames() {
		r, err := GPURig(name, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r.Idle(time.Millisecond)
		r.Close()
	}
	if _, err := GPURig("voodoo2", 3); err == nil {
		t.Fatal("unknown GPU accepted")
	}
}

func TestDiskRigMeasures(t *testing.T) {
	r, err := NewDiskRig(4, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.PS.Close()
	before := r.PS.Read()
	res := fio.Run(r.Disk, fio.Job{
		Pattern: fio.RandRead, BlockKiB: 64, IODepth: 4,
		Runtime: time.Second, Seed: 4,
	}, r.Sync)
	after := r.PS.Read()
	if res.MeanMiBps <= 0 {
		t.Fatal("no bandwidth")
	}
	w := core.Watts(before, after, -1)
	if w < 1 || w > 8 {
		t.Fatalf("SSD power %v W implausible", w)
	}
}
