// Synthetic stations: pure-software waveform sources with no simulated
// hardware behind them. A fleet of hundreds costs microseconds to build
// and almost nothing per sample to run, which is what the fleet-scale
// ingest and scrape benchmarks (and soak tests) need — the measured cost
// is the fleet layer itself, not the device models.

package simsetup

import (
	"time"

	"repro/internal/source"
)

const (
	synthRateHz = 20000
	synthPeriod = time.Second / synthRateHz
)

// synthStation emits a deterministic 20 kHz three-rail ramp waveform. It
// implements source.Source natively — ReadInto fills the caller's batch
// columns directly, allocation-free — rather than going through the
// Sensor or Polled adapters.
type synthStation struct {
	meta  source.Meta
	now   time.Duration
	last  time.Duration // timestamp of the last emitted sample
	phase uint64
	joule float64
}

func newSynthStation(seed uint64) *synthStation {
	return &synthStation{
		meta: source.Meta{
			Backend:  "synthetic",
			RateHz:   synthRateHz,
			Channels: []string{"slot3v3", "slot12", "pcie8pin"},
		},
		// Seed offsets the ramp phase so fleet stations decorrelate.
		phase: seed,
	}
}

// Meta implements source.Source.
func (s *synthStation) Meta() source.Meta { return s.meta }

// Now implements source.Source.
func (s *synthStation) Now() time.Duration { return s.now }

// ReadInto implements source.Source: a 40–80 W board-power ramp split
// 20/50/30 across the three rails, like a PCIe GPU's 3.3 V, 12 V and
// 8-pin feeds. The sample count of a slice is known up front, so the
// columns are filled with direct indexed writes (Batch.Extend) rather
// than per-sample appends.
func (s *synthStation) ReadInto(d time.Duration, b *source.Batch) error {
	b.Reset(3)
	target := s.now + d
	s.now = target
	if target <= s.last {
		return nil
	}
	k := int((target - s.last) / synthPeriod)
	b.Extend(k)
	t := s.last
	chans := b.Chans
	var joule float64
	for i := 0; i < k; i++ {
		t += synthPeriod
		s.phase++
		w := 40 + float64(s.phase&1023)*(40.0/1024)
		b.Time[i] = t
		b.Total[i] = w
		c := chans[i*3 : i*3+3]
		c[0] = w * 0.2
		c[1] = w * 0.5
		c[2] = w * 0.3
		joule += w
	}
	s.joule += joule * (1.0 / synthRateHz)
	s.last = t
	return nil
}

// Joules implements source.Source with an exact integral of the ramp.
func (s *synthStation) Joules() float64 { return s.joule }

// Resyncs implements source.Source; there is no wire protocol.
func (s *synthStation) Resyncs() int { return 0 }

// Close implements source.Source.
func (s *synthStation) Close() {}
