package simsetup

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/source"
)

// integrate advances src over total in slices, returning the energy
// integral of the delivered stream (sample power × sample period at the
// delivered rate) and the delivered sample count.
func integrate(src source.Source, total, slice time.Duration) (joules float64, samples int) {
	period := 1 / src.Meta().RateHz
	var b source.Batch
	for done := time.Duration(0); done < total; done += slice {
		src.ReadInto(slice, &b)
		for i := 0; i < b.Len(); i++ {
			joules += b.Total[i] * period
		}
		samples += b.Len()
	}
	return joules, samples
}

// TestResampleConservesEnergyAcrossBackends is the cross-backend
// energy-conservation check: for a PowerSensor3-instrumented rig, a
// polled vendor meter and the synthetic waveform station alike, the
// energy integral of a Resample'd view must match the raw source's
// within tolerance, and the backend's own Joules counter must pass
// through the stage untouched. The raw and derived stations are twin
// simulations (same kind, same seed), the same construction the fleet
// spec's "@index" pinning uses.
func TestResampleConservesEnergyAcrossBackends(t *testing.T) {
	for _, tc := range []struct {
		kind  string
		outHz float64
	}{
		{"synth", 1000},      // 20 kHz synthetic waveform -> 1 kHz
		{"rtx4000ada", 1000}, // 20 kHz PowerSensor3 rig -> 1 kHz
		{"rapl", 250},        // 1 kHz energy-counter meter -> 250 Hz
	} {
		raw, err := NewStation(tc.kind, StationSeed(11, 0))
		if err != nil {
			t.Fatalf("%s: %v", tc.kind, err)
		}
		defer raw.Close()
		res, err := BuildStation(fmt.Sprintf("%s|resample:%g", tc.kind, tc.outHz), 11, 0)
		if err != nil {
			t.Fatalf("%s derived: %v", tc.kind, err)
		}
		defer res.Close()

		const window = 2 * time.Second
		rawJ, rawN := integrate(raw, window, 50*time.Millisecond)
		resJ, resN := integrate(res, window, 50*time.Millisecond)
		if rawN == 0 || resN == 0 {
			t.Fatalf("%s: no samples (raw %d, resampled %d)", tc.kind, rawN, resN)
		}
		if resN >= rawN {
			t.Errorf("%s: resampling did not reduce the stream: %d -> %d samples",
				tc.kind, rawN, resN)
		}
		// The derived view's own integral matches the raw one: bin means
		// spread each bin's energy over the bin width. Tolerance covers
		// the at-most-one-bin edge still in flight plus rig overshoot.
		if diff := math.Abs(resJ-rawJ) / rawJ; diff > 0.02 {
			t.Errorf("%s: resampled energy %v J vs raw %v J: %.2f%% apart",
				tc.kind, resJ, rawJ, 100*diff)
		}
		// Joules delegates the backend counter: twin simulations advanced
		// over the same window read the same accumulator.
		if rawB, resB := raw.Joules(), res.Joules(); math.Abs(resB-rawB) > 1e-6*math.Max(1, rawB) {
			t.Errorf("%s: backend Joules diverged through Resample: %v vs %v",
				tc.kind, resB, rawB)
		}
	}
}

// TestBuildStationTwinRig pins the "@index" seed-pinning contract the
// derived-view spec syntax rests on: two same-kind stations sharing a
// seed index are the same simulated rig — identical streams — while
// different indices decorrelate.
func TestBuildStationTwinRig(t *testing.T) {
	a, err := BuildStation("synth@3", 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := BuildStation("synth", 9, 3) // position 3 = explicit @3
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c, err := BuildStation("synth", 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var ba, bb, bc source.Batch
	a.ReadInto(10*time.Millisecond, &ba)
	b.ReadInto(10*time.Millisecond, &bb)
	c.ReadInto(10*time.Millisecond, &bc)
	if ba.Len() == 0 || ba.Len() != bb.Len() {
		t.Fatalf("twin batches: %d vs %d samples", ba.Len(), bb.Len())
	}
	for i := 0; i < ba.Len(); i++ {
		if ba.Total[i] != bb.Total[i] {
			t.Fatalf("twin rigs diverged at sample %d: %v vs %v", i, ba.Total[i], bb.Total[i])
		}
	}
	same := true
	for i := 0; i < min(ba.Len(), bc.Len()); i++ {
		if ba.Total[i] != bc.Total[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("stations with different seed indices produced identical streams")
	}
}
