package simsetup

import (
	"testing"
	"time"

	"repro/internal/source"
)

func TestParseFleetDefaultSpec(t *testing.T) {
	members, err := ParseFleet(DefaultFleetSpec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 8 {
		t.Fatalf("%d members, want 8", len(members))
	}
	want := map[string]string{
		"gpu0": "rtx4000ada", "gpu1": "w7700", "soc0": "jetson",
		"ssd0": "ssd", "gpu0sw": "nvml", "cpu0": "rapl",
		"gpu0lo":  "rtx4000ada@0|resample:1000|calib:0.98:0.25",
		"cpu0lim": "rapl@5|ratelimit:100",
	}
	wantBackend := map[string]string{
		"gpu0": "powersensor3", "gpu1": "powersensor3", "soc0": "powersensor3",
		"ssd0": "powersensor3", "gpu0sw": "nvml", "cpu0": "rapl",
		"gpu0lo": "powersensor3+resample+calib", "cpu0lim": "rapl+ratelimit",
	}
	wantRate := map[string]float64{"gpu0lo": 1000, "cpu0lim": 100}
	for _, m := range members {
		defer m.Src.Close()
		if want[m.Name] != m.Kind {
			t.Errorf("member %s has kind %s, want %s", m.Name, m.Kind, want[m.Name])
		}
		meta := m.Src.Meta()
		if meta.Backend != wantBackend[m.Name] {
			t.Errorf("member %s has backend %s, want %s", m.Name, meta.Backend, wantBackend[m.Name])
		}
		if len(meta.Channels) == 0 {
			t.Errorf("member %s has no channels", m.Name)
		}
		if meta.RateHz <= 0 {
			t.Errorf("member %s has rate %v", m.Name, meta.RateHz)
		}
		if hz, ok := wantRate[m.Name]; ok && meta.RateHz != hz {
			t.Errorf("member %s has derived rate %v, want %v", m.Name, meta.RateHz, hz)
		}
	}
}

func TestParseFleetErrors(t *testing.T) {
	for _, spec := range []string{
		"",                    // no stations
		" , ,",                // only blanks
		"gpu0",                // missing =kind
		"=ssd",                // empty name
		"a=ssd,a=ssd",         // duplicate name
		"gpu0=warp9",          // unknown kind
		"ok=ssd,bad=notakind", // one good, one bad
		"a=synth@",            // empty seed index
		"a=synth@-1",          // negative seed index
		"a=synth@x",           // non-numeric seed index
		"a=synth|warp:9",      // unknown stage
		"a=synth|resample:0",  // non-positive resample rate
		"a=synth|resample:x",  // non-numeric resample rate
		"a=synth|calib:x",     // non-numeric gain
		"a=synth|calib:1:x",   // non-numeric offset
		"a=synth|ratelimit:0", // non-positive limit
		"a=synth|smooth:0s",   // non-positive time constant
		"a=synth|smooth:5",    // not a duration
	} {
		if _, err := ParseFleet(spec, 1); err == nil {
			t.Errorf("ParseFleet(%q) succeeded, want error", spec)
		}
	}
}

// TestStationsProducePower advances each station kind in isolation and
// checks its workload actually moves energy — GPU kernels, SoC load, SSD
// I/O and CPU duty cycles all show up on the station's source, whether it
// is a PowerSensor3 or a polled software meter.
func TestStationsProducePower(t *testing.T) {
	// Native rates: 20 kHz for PowerSensor3 rigs, the vendor refresh
	// rates for the software meters.
	wantRate := map[string]float64{
		"rtx4000ada": 20000, "w7700": 20000, "jetson": 20000, "ssd": 20000,
		"nvml": 10, "amdsmi": 1000, "jetson-ina": 10, "rapl": 1000,
		"synth": 20000,
	}
	var b source.Batch
	for _, kind := range FleetKinds() {
		src, err := NewStation(kind, 7)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if got := src.Meta().RateHz; got != wantRate[kind] {
			t.Errorf("%s: rate = %v Hz, want %v", kind, got, wantRate[kind])
		}
		before := src.Now()
		samples := 0
		for _, window := range []time.Duration{500 * time.Millisecond, 300 * time.Millisecond} {
			src.ReadInto(window, &b)
			if b.Stride() != len(src.Meta().Channels) {
				t.Errorf("%s: batch stride %d for %d channels",
					kind, b.Stride(), len(src.Meta().Channels))
			}
			samples += b.Len()
		}
		if src.Now() < before+800*time.Millisecond {
			t.Errorf("%s: Read moved clock %v -> %v", kind, before, src.Now())
		}
		if samples == 0 {
			t.Errorf("%s: no samples streamed over 800ms", kind)
		}
		if minimum := int(wantRate[kind] * 0.7); samples < minimum {
			t.Errorf("%s: %d samples over 800ms, want >= %d", kind, samples, minimum)
		}
		if src.Joules() <= 0 {
			t.Errorf("%s: no energy measured after 800ms", kind)
		}
		src.Close()
	}
}
