package simsetup

import (
	"testing"
	"time"
)

func TestParseFleetDefaultSpec(t *testing.T) {
	members, err := ParseFleet(DefaultFleetSpec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 4 {
		t.Fatalf("%d members, want 4", len(members))
	}
	want := map[string]string{"gpu0": "rtx4000ada", "gpu1": "w7700", "soc0": "jetson", "ssd0": "ssd"}
	for _, m := range members {
		defer m.Inst.Close()
		if want[m.Name] != m.Kind {
			t.Errorf("member %s has kind %s, want %s", m.Name, m.Kind, want[m.Name])
		}
		if m.Inst.Sensor().Pairs() == 0 {
			t.Errorf("member %s has no sensor pairs", m.Name)
		}
	}
}

func TestParseFleetErrors(t *testing.T) {
	for _, spec := range []string{
		"",                    // no stations
		" , ,",                // only blanks
		"gpu0",                // missing =kind
		"=ssd",                // empty name
		"a=ssd,a=ssd",         // duplicate name
		"gpu0=warp9",          // unknown kind
		"ok=ssd,bad=notakind", // one good, one bad
	} {
		if _, err := ParseFleet(spec, 1); err == nil {
			t.Errorf("ParseFleet(%q) succeeded, want error", spec)
		}
	}
}

// TestStationsProducePower advances each station kind in isolation and
// checks its workload actually moves energy — GPU kernels, SoC load and
// SSD I/O all show up on the attached sensor.
func TestStationsProducePower(t *testing.T) {
	for _, kind := range FleetKinds() {
		inst, err := NewStation(kind, 7)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		before := inst.Now()
		inst.Advance(800 * time.Millisecond)
		if inst.Now() < before+800*time.Millisecond {
			t.Errorf("%s: Advance moved clock %v -> %v", kind, before, inst.Now())
		}
		st := inst.Sensor().Read()
		var joules float64
		for _, j := range st.ConsumedJoules {
			joules += j
		}
		if joules <= 0 {
			t.Errorf("%s: no energy measured after 800ms", kind)
		}
		if st.Samples == 0 {
			t.Errorf("%s: no samples streamed", kind)
		}
		inst.Close()
	}
}
