// This file is the fleet-construction half of the package: the named,
// self-driving measurement stations the fleet manager (internal/fleet)
// owns. Each station bundles a simulated device-under-test, a measurement
// backend exposed as a streaming source (a PowerSensor3 rig or a polled
// software meter — see internal/source), and a repeating workload so the
// power trace stays interesting without external stimulus — periodic FMA
// kernel launches on GPUs and SoCs, random-read bursts on the SSD, duty
// cycles on the RAPL-metered CPU.

package simsetup

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/pipeline"
	"repro/internal/rig"
	"repro/internal/rng"
	"repro/internal/source"
	"repro/internal/ssd"
)

// The PowerSensor3-instrumented stations below (gpuStation, ssdStation)
// implement source.Driver: a device-under-test with an open sensor,
// advanced in virtual time. Advance moves DUT and sensor together,
// generating (and processing) the 20 kHz sample stream; implementations
// may overshoot d slightly to finish an in-flight operation.

// FleetMember is one named station of a fleet.
type FleetMember struct {
	Name string
	Kind string // the spec kindspec: rtx4000ada, nvml, "rapl|ratelimit:100", ...
	Src  source.Source
}

// DefaultFleetSpec is the fleet cmd/psd and the examples serve when no
// -fleet flag is given: two discrete GPUs, one SoC and one SSD measured by
// PowerSensor3, two software meters — the NVML counter shadowing the
// first GPU's model and a RAPL-metered host CPU — plus two derived views:
// a 1 kHz resampled, recalibrated view of the first GPU's rig (@0 pins it
// to gpu0's seed, so it is the same rig) and the RAPL meter rate-limited
// to 100 Hz with sampling-overhead accounting.
const DefaultFleetSpec = "gpu0=rtx4000ada,gpu1=w7700,soc0=jetson,ssd0=ssd," +
	"gpu0sw=nvml,cpu0=rapl," +
	"gpu0lo=rtx4000ada@0|resample:1000|calib:0.98:0.25,cpu0lim=rapl@5|ratelimit:100"

// FleetKinds lists the accepted station kinds: the PowerSensor3-
// instrumented rigs first, then the software-meter emulations ("jetson"
// is the PowerSensor3-on-USB-C SoC rig; "jetson-ina" the board's own
// INA3221 rail monitor), then the synthetic waveform station used for
// fleet-scale benchmarking.
func FleetKinds() []string {
	return []string{
		"rtx4000ada", "w7700", "jetson", "ssd",
		"nvml", "amdsmi", "jetson-ina", "rapl",
		"synth",
	}
}

// ParseFleet builds the stations described by spec. It is THE reference
// for the fleet-spec grammar — cmd/psd's -fleet flag, its
// POST /api/fleet/add endpoint and examples/fleet all speak exactly this
// syntax:
//
//	spec     := entry ("," entry)*
//	entry    := name "=" kindspec
//	kindspec := kind ["@" index] ("|" stage)*
//	stage    := "resample:" HZ          derived view at HZ (energy-
//	                                    conserving bin averaging,
//	                                    markers remapped)
//	          | "calib:" GAIN [":" OFFSET]  per-channel w' = GAIN*w + OFFSET
//	          | "ratelimit:" HZ         cap the delivered rate at HZ and
//	                                    account sampling overhead
//	          | "smooth:" DUR           EWMA with time constant DUR
//	                                    (a Go duration, e.g. 10ms)
//	          | "dropout:" P ":" DUR    fault: each DUR-wide window goes
//	                                    dark with probability P
//	          | "stuck:" P ":" DUR      fault: flatlined last-value repeats
//	                                    through faulted windows
//	          | "spike:" P ":" MAG      fault: each sample glitches ×MAG
//	                                    with probability P (MAG > 0, != 1)
//	          | "skew:" PPM             fault: clock drift, PPM parts per
//	                                    million fast (+) or slow (-)
//	          | "jitter:" SD            fault: Gaussian timestamp noise of
//	                                    deviation SD (a Go duration)
//
// The fault stages inject the reproducible failure modes the fleet's
// health watchdog detects (see internal/pipeline's fault stages and
// internal/fleet's health states). Their randomness is pinned to the
// station's simulation seed and the stage's position in the kindspec, so
// a faulted fleet spec replays the exact same failure scenario every run.
//
// kind is one of FleetKinds: the PowerSensor3-instrumented rigs
// rtx4000ada, w7700, jetson, ssd (20 kHz); the software meters nvml
// (~10 Hz), amdsmi (~1 kHz), jetson-ina (~10 Hz), rapl (~1 kHz); and
// synth, the pure-software 20 kHz waveform station for fleet-scale load
// tests.
//
// Station names must be unique and non-empty. Each station's simulation
// seed derives from the base seed and its position in the spec, so fleets
// are reproducible but rigs decorrelated. "@index" overrides the position
// with an explicit seed index: two same-kind stations sharing an index
// are the same simulated rig, which is how a raw station and its derived
// view serve side by side —
//
//	gpu0=rtx4000ada,gpu0lo=rtx4000ada@0|resample:1000|calib:0.98
//
// serves gpu0's native 20 kHz stream and, concurrently, the same rig
// resampled to 1 kHz with a 0.98 gain trim. (With real hardware the
// derived view would tee the one sensor stream; in the simulator,
// seed-pinning reproduces the rig exactly.) Stages apply left to right,
// innermost first: "rapl|ratelimit:100|smooth:50ms" throttles the RAPL
// meter to 100 Hz, then smooths the kept samples.
func ParseFleet(spec string, seed uint64) ([]FleetMember, error) {
	var members []FleetMember
	// A later entry failing must not leak the stations already built.
	fail := func(err error) ([]FleetMember, error) {
		for _, m := range members {
			m.Src.Close()
		}
		return nil, err
	}
	seen := make(map[string]bool)
	for i, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		name, kind, ok := strings.Cut(field, "=")
		if !ok || name == "" {
			return fail(fmt.Errorf("fleet spec entry %q: want name=kindspec", field))
		}
		if seen[name] {
			return fail(fmt.Errorf("fleet spec: duplicate station %q", name))
		}
		seen[name] = true
		src, err := BuildStation(kind, seed, i)
		if err != nil {
			return fail(fmt.Errorf("station %q: %w", name, err))
		}
		members = append(members, FleetMember{Name: name, Kind: kind, Src: src})
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("fleet spec %q describes no stations", spec)
	}
	return members, nil
}

// StationSeed derives station index's simulation seed from the fleet
// base seed — the derivation ParseFleet applies per spec position and
// cmd/psd's hot-add endpoint applies per adoption, so rigs decorrelate
// the same way however they join the fleet.
func StationSeed(base uint64, index int) uint64 {
	return base + uint64(index)*1000003
}

// BuildStation builds one station from a kindspec — the full
// kind["@"index]("|"stage)* form of a ParseFleet entry's right-hand side
// (see ParseFleet for the grammar). base and index feed StationSeed
// unless the kindspec pins "@index" explicitly. Stage arguments are
// validated here, so malformed specs return errors instead of reaching
// the pipeline constructors' panics.
func BuildStation(kindspec string, base uint64, index int) (source.Source, error) {
	parts := strings.Split(kindspec, "|")
	kind := parts[0]
	if at := strings.IndexByte(kind, '@'); at >= 0 {
		idx, err := strconv.Atoi(kind[at+1:])
		if err != nil || idx < 0 {
			return nil, fmt.Errorf("kindspec %q: want a non-negative seed index after @", kindspec)
		}
		kind, index = kind[:at], idx
	}
	seed := StationSeed(base, index)
	stages, err := parseStages(parts[1:], seed)
	if err != nil {
		return nil, fmt.Errorf("kindspec %q: %w", kindspec, err)
	}
	src, err := NewStation(kind, seed)
	if err != nil {
		return nil, err
	}
	return pipeline.Chain(src, stages...), nil
}

// stageSeed derives a fault stage's rng seed from the station seed and
// the stage's 1-based position in the kindspec, so two fault stages on
// one station draw decorrelated streams while the whole scenario stays a
// pure function of the fleet seed. The multiplier is the splitmix64
// increment — consecutive positions land far apart.
func stageSeed(station uint64, pos int) uint64 {
	return station ^ (uint64(pos) * 0x9e3779b97f4a7c15)
}

// parseStages translates the "|"-separated stage specs of a kindspec into
// pipeline stages, validating every argument. Errors name the offending
// token and its 1-based position in the stage list, so a long chain's bad
// stage is findable without counting pipes. seed (the station's) pins the
// fault stages' randomness via stageSeed.
func parseStages(specs []string, seed uint64) ([]pipeline.Stage, error) {
	var stages []pipeline.Stage
	for i, s := range specs {
		pos := i + 1
		bad := func(want string) error {
			return fmt.Errorf("stage %d %q: want %s", pos, s, want)
		}
		name, arg, _ := strings.Cut(s, ":")
		switch name {
		case "resample":
			hz, err := strconv.ParseFloat(arg, 64)
			if err != nil || hz <= 0 {
				return nil, bad("resample:HZ with HZ > 0")
			}
			stages = append(stages, pipeline.Resample(hz))
		case "calib":
			gainStr, offStr, hasOff := strings.Cut(arg, ":")
			gain, err := strconv.ParseFloat(gainStr, 64)
			if err != nil {
				return nil, bad("calib:GAIN[:OFFSET]")
			}
			offset := 0.0
			if hasOff {
				if offset, err = strconv.ParseFloat(offStr, 64); err != nil {
					return nil, bad("calib:GAIN[:OFFSET]")
				}
			}
			stages = append(stages, pipeline.Calibrate(gain, offset))
		case "ratelimit":
			hz, err := strconv.ParseFloat(arg, 64)
			if err != nil || hz <= 0 {
				return nil, bad("ratelimit:HZ with HZ > 0")
			}
			stages = append(stages, pipeline.RateLimit(hz))
		case "smooth":
			tau, err := time.ParseDuration(arg)
			if err != nil || tau <= 0 {
				return nil, bad("smooth:DUR with a positive Go duration")
			}
			stages = append(stages, pipeline.Smooth(tau))
		case "dropout":
			p, dur, err := parseProbDur(arg)
			if err != nil {
				return nil, bad("dropout:P:DUR with P in [0,1] and DUR a positive Go duration")
			}
			stages = append(stages, pipeline.Dropout(p, dur, stageSeed(seed, pos)))
		case "stuck":
			p, dur, err := parseProbDur(arg)
			if err != nil {
				return nil, bad("stuck:P:DUR with P in [0,1] and DUR a positive Go duration")
			}
			stages = append(stages, pipeline.Stuck(p, dur, stageSeed(seed, pos)))
		case "spike":
			pStr, magStr, hasMag := strings.Cut(arg, ":")
			p, err := strconv.ParseFloat(pStr, 64)
			if err != nil || p < 0 || p > 1 || !hasMag {
				return nil, bad("spike:P:MAG with P in [0,1]")
			}
			mag, err := strconv.ParseFloat(magStr, 64)
			if err != nil || mag <= 0 || mag == 1 {
				return nil, bad("spike:P:MAG with MAG > 0 and != 1")
			}
			stages = append(stages, pipeline.Spike(p, mag, stageSeed(seed, pos)))
		case "skew":
			ppm, err := strconv.ParseFloat(arg, 64)
			if err != nil || ppm <= -1e6 || ppm >= 1e6 {
				return nil, bad("skew:PPM with |PPM| < 1e6")
			}
			stages = append(stages, pipeline.Skew(ppm))
		case "jitter":
			sd, err := time.ParseDuration(arg)
			if err != nil || sd <= 0 {
				return nil, bad("jitter:SD with SD a positive Go duration")
			}
			stages = append(stages, pipeline.Jitter(sd, stageSeed(seed, pos)))
		default:
			return nil, fmt.Errorf(
				"stage %d %q: unknown stage (have resample, calib, ratelimit, smooth, "+
					"dropout, stuck, spike, skew, jitter)", pos, s)
		}
	}
	return stages, nil
}

// parseProbDur parses the shared "P:DUR" argument form of the windowed
// fault stages.
func parseProbDur(arg string) (float64, time.Duration, error) {
	pStr, durStr, ok := strings.Cut(arg, ":")
	if !ok {
		return 0, 0, fmt.Errorf("missing duration")
	}
	p, err := strconv.ParseFloat(pStr, 64)
	if err != nil || p < 0 || p > 1 {
		return 0, 0, fmt.Errorf("bad probability %q", pStr)
	}
	dur, err := time.ParseDuration(durStr)
	if err != nil || dur <= 0 {
		return 0, 0, fmt.Errorf("bad duration %q", durStr)
	}
	return p, dur, nil
}

// NewStation builds one self-driving station of the given plain kind as a
// streaming source (no pipe stages — BuildStation layers those).
// PowerSensor3-instrumented rigs stream at the native 20 kHz with
// per-rail channel labels; software-meter kinds poll the vendor emulation
// at its own refresh rate.
func NewStation(kind string, seed uint64) (source.Source, error) {
	switch kind {
	case "rtx4000ada", "w7700":
		r, err := GPURig(kind, seed)
		if err != nil {
			return nil, err
		}
		return source.NewSensor(newGPUStation(r, seed),
			[]string{"slot3v3", "slot12", "pcie8pin"}), nil
	case "jetson":
		r, err := GPURig(kind, seed)
		if err != nil {
			return nil, err
		}
		return source.NewSensor(newGPUStation(r, seed), []string{"usbc"}), nil
	case "ssd":
		r, err := NewDiskRig(seed, false)
		if err != nil {
			return nil, err
		}
		return source.NewSensor(newSSDStation(r, seed),
			[]string{"slot3v3", "slot12"}), nil
	case "nvml", "amdsmi", "jetson-ina", "rapl":
		return newSoftwareMeterStation(kind, seed), nil
	case "synth":
		return newSynthStation(seed), nil
	default:
		return nil, fmt.Errorf("unknown station kind %q (have %s)",
			kind, strings.Join(FleetKinds(), ", "))
	}
}

// gpuStation keeps a GPU rig busy with a periodic synthetic-FMA kernel:
// launch, let the governor settle back to idle, relaunch — the paper's
// Fig. 7 duty cycle, repeated forever.
type gpuStation struct {
	rig    *rig.Rig
	kernel func() // launches the next kernel at the rig's current time
	next   time.Duration
}

func newGPUStation(r *rig.Rig, seed uint64) *gpuStation {
	st := &gpuStation{rig: r}
	noise := rng.New(seed ^ 0x5eed)
	st.kernel = func() {
		k := kernels.SyntheticFMA(r.GPU.Spec(), 300*time.Millisecond)
		run := r.GPU.LaunchKernel(k, r.Now())
		// Idle gap before the next launch, jittered so fleet stations
		// do not fire in lockstep.
		gap := 200*time.Millisecond + time.Duration(noise.Intn(200))*time.Millisecond
		st.next = run.End + gap
	}
	return st
}

func (st *gpuStation) Sensor() *core.PowerSensor { return st.rig.Sensor() }
func (st *gpuStation) Now() time.Duration        { return st.rig.Now() }
func (st *gpuStation) Close()                    { st.rig.Close() }

func (st *gpuStation) Advance(d time.Duration) {
	target := st.rig.Now() + d
	for {
		now := st.rig.Now()
		if now >= target {
			return
		}
		if now >= st.next {
			st.kernel()
		}
		step := target - now
		if until := st.next - now; until > 0 && until < step {
			step = until
		}
		st.rig.Idle(step)
	}
}

// ssdStation drives the disk rig with short random-read bursts separated by
// idle gaps — enough I/O that die activity shows in the power trace without
// saturating the drive.
type ssdStation struct {
	rig   *DiskRig
	noise *rng.Source
}

func newSSDStation(r *DiskRig, seed uint64) *ssdStation {
	return &ssdStation{rig: r, noise: rng.New(seed ^ 0xd15c)}
}

func (st *ssdStation) Sensor() *core.PowerSensor { return st.rig.PS }
func (st *ssdStation) Now() time.Duration        { return st.rig.Disk.Now() }
func (st *ssdStation) Close()                    { st.rig.PS.Close() }

func (st *ssdStation) Advance(d time.Duration) {
	disk := st.rig.Disk
	target := disk.Now() + d
	const pages = 32 // 128 KiB request
	for disk.Now() < target {
		maxPage := disk.Config().LogicalPages - pages
		c := disk.Submit(ssd.Request{
			Page:   st.noise.Intn(maxPage),
			Pages:  pages,
			Submit: disk.Now(),
		})
		st.rig.Sync(c.Done)
		// Idle gap between bursts, jittered per station.
		idleTo := c.Done + time.Duration(1+st.noise.Intn(3))*time.Millisecond
		if idleTo > target {
			idleTo = target
		}
		disk.Advance(idleTo)
		st.rig.Sync(idleTo)
	}
}
