// Software-meter stations: the vendor-API emulations of internal/vendorapi
// wrapped as streaming sources, each with a self-driving workload. These
// are the fleet counterparts of the paper's comparison baselines — NVML,
// AMD SMI, the Jetson INA3221 and RAPL — polled at their native refresh
// rates rather than PowerSensor3's 20 kHz.

package simsetup

import (
	"time"

	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/rng"
	"repro/internal/source"
	"repro/internal/vendorapi"
)

// newSoftwareMeterStation builds one polled-meter station. kind must be
// one of nvml, amdsmi, jetson-ina, rapl (pre-validated by NewStation).
func newSoftwareMeterStation(kind string, seed uint64) source.Source {
	switch kind {
	case "nvml":
		g := gpu.New(gpu.RTX4000Ada(), seed)
		m := vendorapi.NewNVML(g)
		return source.NewPolled(source.PolledConfig{
			Meta: source.Meta{
				Backend:  "nvml",
				RateHz:   rateOf(m.UpdatePeriod),
				Channels: []string{"board"},
			},
			Tick:   newGPUWorkload(g, seed).tick,
			Watts:  m.PowerInstant,
			Joules: m.EnergyJoules,
		})
	case "amdsmi":
		g := gpu.New(gpu.W7700(), seed)
		m := vendorapi.NewAMDSMI(g)
		return source.NewPolled(source.PolledConfig{
			Meta: source.Meta{
				Backend:  "amdsmi",
				RateHz:   rateOf(m.UpdatePeriod),
				Channels: []string{"board"},
			},
			Tick:   newGPUWorkload(g, seed).tick,
			Watts:  m.Power,
			Joules: m.EnergyJoules,
		})
	case "jetson-ina":
		g := gpu.New(gpu.JetsonAGXOrin(), seed)
		m := vendorapi.NewJetsonINA(g)
		return source.NewPolled(source.PolledConfig{
			Meta: source.Meta{
				Backend:  "ina3221",
				RateHz:   rateOf(m.UpdatePeriod),
				Channels: []string{"module"},
			},
			Tick:   newGPUWorkload(g, seed).tick,
			Watts:  m.Power,
			Joules: m.EnergyJoules,
		})
	case "rapl":
		cpu := &vendorapi.CPU{IdleW: 28, TDPW: 125}
		m := vendorapi.NewRAPL(cpu)
		return source.NewPolled(source.PolledConfig{
			Meta: source.Meta{
				Backend:  "rapl",
				RateHz:   rateOf(m.UpdatePeriod),
				Channels: []string{"package"},
			},
			Tick: newCPUWorkload(cpu, seed).tick,
			// RAPL exposes only the energy counter; power falls out of
			// counter deltas, as real RAPL consumers derive it.
			Joules: m.EnergyJoules,
		})
	}
	panic("simsetup: not a software meter kind: " + kind)
}

// rateOf converts a meter's refresh interval to its polling rate.
func rateOf(period time.Duration) float64 {
	return float64(time.Second) / float64(period)
}

// gpuWorkload launches the same periodic synthetic-FMA duty cycle as the
// PowerSensor3 GPU stations, but directly against the time-functional GPU
// model — no rig, since the meter itself advances the model when polled.
type gpuWorkload struct {
	g     *gpu.GPU
	next  time.Duration
	noise *rng.Source
}

func newGPUWorkload(g *gpu.GPU, seed uint64) *gpuWorkload {
	return &gpuWorkload{g: g, noise: rng.New(seed ^ 0x5eed)}
}

// tick launches every kernel due at or before t, scheduling each at its
// due time so the duty cycle is independent of the polling cadence.
func (w *gpuWorkload) tick(t time.Duration) {
	for w.next <= t {
		k := kernels.SyntheticFMA(w.g.Spec(), 300*time.Millisecond)
		run := w.g.LaunchKernel(k, w.next)
		gap := 200*time.Millisecond + time.Duration(w.noise.Intn(200))*time.Millisecond
		w.next = run.End + gap
	}
}

// cpuWorkload toggles the CPU model between an idle floor and a busy
// plateau with jittered dwell times — a bursty host-side duty cycle for
// the RAPL counter to integrate.
type cpuWorkload struct {
	cpu   *vendorapi.CPU
	next  time.Duration
	noise *rng.Source
}

func newCPUWorkload(cpu *vendorapi.CPU, seed uint64) *cpuWorkload {
	return &cpuWorkload{cpu: cpu, noise: rng.New(seed ^ 0xc9a1)}
}

func (w *cpuWorkload) tick(t time.Duration) {
	for w.next <= t {
		if w.cpu.Util > 0.5 {
			w.cpu.Util = 0.05 + float64(w.noise.Intn(10))/100
			w.next += time.Duration(50+w.noise.Intn(150)) * time.Millisecond
		} else {
			w.cpu.Util = 0.70 + float64(w.noise.Intn(25))/100
			w.next += time.Duration(100+w.noise.Intn(200)) * time.Millisecond
		}
	}
}
