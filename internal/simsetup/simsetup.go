// Package simsetup assembles the simulated measurement setups the command
// line tools operate on. A real deployment would open /dev/ttyACM*; this
// reproduction builds the equivalent virtual hardware from a textual
// description instead.
package simsetup

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/analog"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/fio"
	"repro/internal/gpu"
	"repro/internal/rig"
	"repro/internal/ssd"
)

// moduleKinds maps CLI names to module kinds.
var moduleKinds = map[string]analog.ModuleKind{
	"pcie8pin": analog.PCIe8Pin20A,
	"slot10a":  analog.Slot10A,
	"usbc":     analog.USBC,
	"tb20a":    analog.Terminal20A,
	"hc50a":    analog.HighCurrent50A,
}

// ModuleNames lists the accepted module names.
func ModuleNames() []string {
	var names []string
	for k := range moduleKinds {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// BenchDevice builds a device with one sensor module wired to a constant
// bench load. spec is "kind:volts" (e.g. "slot10a:12").
func BenchDevice(spec string, amps float64, seed uint64) (*device.Device, error) {
	parts := strings.SplitN(spec, ":", 2)
	kind, ok := moduleKinds[parts[0]]
	if !ok {
		return nil, fmt.Errorf("unknown module %q (have %s)", parts[0],
			strings.Join(ModuleNames(), ", "))
	}
	volts := 12.0
	if len(parts) == 2 {
		if _, err := fmt.Sscanf(parts[1], "%f", &volts); err != nil {
			return nil, fmt.Errorf("bad voltage in %q: %w", spec, err)
		}
	}
	return device.New(seed, device.Slot{
		Module: analog.NewModule(kind, volts),
		Source: device.BenchSource{
			Supply: &bench.Supply{Nominal: volts},
			Load:   bench.ConstantLoad(amps),
		},
	}), nil
}

// GPUNames lists the accepted GPU model names.
func GPUNames() []string { return []string{"rtx4000ada", "w7700", "jetson"} }

// GPURig builds a GPU plus an attached PowerSensor3 in the paper's wiring.
func GPURig(name string, seed uint64) (*rig.Rig, error) {
	switch name {
	case "rtx4000ada":
		return rig.NewPCIe(gpu.New(gpu.RTX4000Ada(), seed), seed)
	case "w7700":
		return rig.NewPCIe(gpu.New(gpu.W7700(), seed), seed)
	case "jetson":
		return rig.NewUSBC(gpu.New(gpu.JetsonAGXOrin(), seed), seed)
	default:
		return nil, fmt.Errorf("unknown GPU %q (have %s)", name,
			strings.Join(GPUNames(), ", "))
	}
}

// DiskRig is an SSD with an attached PowerSensor3 on the riser rails.
type DiskRig struct {
	Disk *ssd.Disk
	Dev  *device.Device
	PS   *core.PowerSensor
}

// NewDiskRig builds the Fig. 11 setup: a scaled Samsung 980 PRO behind
// 3.3 V and 12 V slot modules.
func NewDiskRig(seed uint64, precondition bool) (*DiskRig, error) {
	disk := ssd.New(ssd.Samsung980Pro(), seed)
	if precondition {
		fio.PreconditionSequential(disk)
	}
	const share3v3, share12 = 0.92, 0.08
	rail := func(share, nominal float64) device.RailSource {
		return device.SourceFunc(func(t time.Duration) (float64, float64) {
			p := disk.PowerAt(t) * share
			v := nominal - p/nominal*0.01
			return v, p / v
		})
	}
	dev := device.New(seed,
		device.Slot{Module: analog.NewModule(analog.Slot10A, 3.3), Source: rail(share3v3, 3.3)},
		device.Slot{Module: analog.NewModule(analog.Slot10A, 12), Source: rail(share12, 12)},
	)
	ps, err := core.Open(dev)
	if err != nil {
		return nil, err
	}
	dev.Skip(disk.Now())
	return &DiskRig{Disk: disk, Dev: dev, PS: ps}, nil
}

// Sync advances the PowerSensor3 to the disk's timeline.
func (r *DiskRig) Sync(now time.Duration) {
	if d := now - r.Dev.Now(); d > 0 {
		r.PS.Advance(d)
	}
}
