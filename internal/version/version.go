// Package version carries the build's identity, so a daemon can say what
// it is — on `psd -version`, in structured log preambles, and as the
// powersensor_build_info exposition gauge federated heads use to tell
// leaf versions apart.
package version

import "runtime"

// Version identifies the build. It defaults to "dev" and is meant to be
// stamped at link time:
//
//	go build -ldflags "-X repro/internal/version.Version=v1.2.3" ./cmd/psd
var Version = "dev"

// GoVersion returns the Go toolchain version the binary was built with.
func GoVersion() string { return runtime.Version() }
