package pmt

import (
	"math"
	"testing"
	"time"

	"repro/internal/analog"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/gpu"
	"repro/internal/vendorapi"
)

func TestJoulesWattsSeconds(t *testing.T) {
	a := State{Time: 0, Joules: 10}
	b := State{Time: 2 * time.Second, Joules: 110}
	if Joules(a, b) != 100 {
		t.Fatal("joules")
	}
	if Seconds(a, b) != 2 {
		t.Fatal("seconds")
	}
	if Watts(a, b) != 50 {
		t.Fatal("watts")
	}
	if Watts(a, a) != 0 {
		t.Fatal("zero interval")
	}
}

func TestNVMLMeter(t *testing.T) {
	g := gpu.New(gpu.RTX4000Ada(), 1)
	m := NewNVMLMeter(vendorapi.NewNVML(g))
	if m.Name() != "nvml" {
		t.Fatal("name")
	}
	first := m.Read(0)
	g.LaunchKernel(gpu.Kernel{FLOPs: 100e12, Waves: 1, Intensity: 1, Efficiency: 1}, 100*time.Millisecond)
	second := m.Read(2 * time.Second)
	if Joules(first, second) <= 0 {
		t.Fatal("no energy accumulated")
	}
	if second.WattsNow <= g.Spec().IdleW {
		t.Fatal("no load power")
	}
}

func TestAMDSMIMeterTracksTruth(t *testing.T) {
	g := gpu.New(gpu.W7700(), 2)
	m := NewAMDSMIMeter(vendorapi.NewAMDSMI(g))
	m.Read(0)
	run := g.LaunchKernel(gpu.Kernel{FLOPs: 150e12, Waves: 1, Intensity: 1, Efficiency: 1}, 50*time.Millisecond)
	e0 := g.TrueEnergy()
	_ = e0
	st := m.Read(run.End + 100*time.Millisecond)
	trueJ := g.TrueEnergy()
	if rel := math.Abs(st.Joules-trueJ) / trueJ; rel > 0.05 {
		t.Fatalf("AMD SMI energy off by %.1f%%", rel*100)
	}
}

func TestJetsonMeterModuleOnly(t *testing.T) {
	g := gpu.New(gpu.JetsonAGXOrin(), 3)
	m := NewJetsonMeter(vendorapi.NewJetsonINA(g))
	st := m.Read(time.Second)
	if st.WattsNow >= g.PowerAt(time.Second) {
		t.Fatal("Jetson meter must not see the carrier board")
	}
}

func TestRAPLMeter(t *testing.T) {
	cpu := &vendorapi.CPU{IdleW: 20, TDPW: 120, Util: 0.5}
	m := NewRAPLMeter(vendorapi.NewRAPL(cpu))
	a := m.Read(0)
	b := m.Read(time.Second)
	want := 20 + 0.5*100
	if math.Abs(Joules(a, b)-want) > 1 {
		t.Fatalf("RAPL joules = %v, want ~%v", Joules(a, b), want)
	}
}

func TestPowerSensorMeter(t *testing.T) {
	dev := device.New(4, device.Slot{
		Module: analog.NewModule(analog.Slot10A, 12),
		Source: device.BenchSource{Supply: &bench.Supply{Nominal: 12}, Load: bench.ConstantLoad(4)},
	})
	ps, err := core.Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	m := PowerSensorMeter{PS: ps, Pair: -1}
	if m.Name() != "powersensor3" {
		t.Fatal("name")
	}
	first := m.Read(0)
	ps.Advance(500 * time.Millisecond)
	second := m.Read(0)
	w := Watts(first, second)
	if math.Abs(w-48) > 2 {
		t.Fatalf("PS meter watts = %v, want ~48", w)
	}
}

// The PMT promise: one interface across all backends.
func TestUnifiedInterface(t *testing.T) {
	g := gpu.New(gpu.RTX4000Ada(), 5)
	meters := []Meter{
		NewNVMLMeter(vendorapi.NewNVML(g)),
		NewAMDSMIMeter(vendorapi.NewAMDSMI(g)),
		NewJetsonMeter(vendorapi.NewJetsonINA(g)),
		NewRAPLMeter(vendorapi.NewRAPL(&vendorapi.CPU{IdleW: 10, TDPW: 65})),
	}
	seen := map[string]bool{}
	for _, m := range meters {
		if seen[m.Name()] {
			t.Fatalf("duplicate meter name %q", m.Name())
		}
		seen[m.Name()] = true
		_ = m.Read(time.Millisecond)
	}
}

// TestSourceMeterZeroIntervalContract pins the monotonic-read contract:
// a repeated or rewound Read advances nothing and reports the state at
// the source's current time, so differencing such a pair is a zero
// interval and Watts resolves it to exactly 0 — never NaN or Inf.
func TestSourceMeterZeroIntervalContract(t *testing.T) {
	m := NewRAPLMeter(vendorapi.NewRAPL(&vendorapi.CPU{IdleW: 20, TDPW: 120, Util: 0.5}))
	a := m.Read(time.Second)
	b := m.Read(time.Second)            // repeated instant
	c := m.Read(500 * time.Millisecond) // rewound
	if b.Time != a.Time || c.Time != a.Time {
		t.Fatalf("degenerate reads moved time: %v, %v, %v", a.Time, b.Time, c.Time)
	}
	if b.Joules != a.Joules || c.Joules != a.Joules {
		t.Fatalf("degenerate reads moved energy: %v, %v, %v", a.Joules, b.Joules, c.Joules)
	}
	for _, pair := range [][2]State{{a, b}, {a, c}, {a, a}} {
		w := Watts(pair[0], pair[1])
		if w != 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			t.Fatalf("zero-interval Watts = %v, want exactly 0", w)
		}
	}
}

// TestSourceMeterSharesSourceIntegral pins the re-base invariant: a
// SourceMeter's Joules is the underlying source's own integral, so any
// streaming consumer of an identical source sees the same energy
// between the same two instants.
func TestSourceMeterSharesSourceIntegral(t *testing.T) {
	m := NewAMDSMIMeter(vendorapi.NewAMDSMI(gpu.New(gpu.W7700(), 9)))
	a := m.Read(100 * time.Millisecond)
	b := m.Read(1100 * time.Millisecond)
	if got, want := b.Joules, m.Source().Joules(); got != want {
		t.Fatalf("meter joules %v != source joules %v", got, want)
	}
	if Joules(a, b) <= 0 {
		t.Fatal("no energy integrated over 1 s")
	}
}
