// Package pmt reproduces the Power Measurement Toolkit (PMT) of Corda et
// al., the high-level library the paper uses in its case studies
// (Section V-A1): a single Meter interface over vendor-specific sensors
// (NVML, AMD SMI, Jetson, RAPL) and over PowerSensor3 itself.
//
// As in the real PMT, a measurement is a pair of States; Joules, Seconds and
// Watts difference them.
package pmt

import (
	"time"

	"repro/internal/core"
	"repro/internal/vendorapi"
)

// State is one PMT reading: a timestamp plus cumulative energy.
type State struct {
	Time   time.Duration
	Joules float64
	// WattsNow is the meter's current instantaneous power estimate.
	WattsNow float64
}

// Meter is the unified measurement interface.
type Meter interface {
	// Name identifies the backing sensor.
	Name() string
	// Read returns the cumulative state at virtual time t.
	Read(t time.Duration) State
}

// Joules returns the energy consumed between two states.
func Joules(first, second State) float64 { return second.Joules - first.Joules }

// Seconds returns the elapsed time between two states.
func Seconds(first, second State) float64 { return (second.Time - first.Time).Seconds() }

// Watts returns the average power between two states.
func Watts(first, second State) float64 {
	s := Seconds(first, second)
	if s <= 0 {
		return 0
	}
	return Joules(first, second) / s
}

// NVMLMeter adapts the NVML emulation.
type NVMLMeter struct{ NVML *vendorapi.NVML }

// Name implements Meter.
func (m NVMLMeter) Name() string { return "nvml" }

// Read implements Meter.
func (m NVMLMeter) Read(t time.Duration) State {
	return State{Time: t, Joules: m.NVML.EnergyJoules(t), WattsNow: m.NVML.PowerInstant(t)}
}

// AMDSMIMeter adapts the ROCm/AMD SMI emulation.
type AMDSMIMeter struct{ SMI *vendorapi.AMDSMI }

// Name implements Meter.
func (m AMDSMIMeter) Name() string { return "amdsmi" }

// Read implements Meter.
func (m AMDSMIMeter) Read(t time.Duration) State {
	return State{Time: t, Joules: m.SMI.EnergyJoules(t), WattsNow: m.SMI.Power(t)}
}

// JetsonMeter adapts the Jetson on-module sensor.
type JetsonMeter struct{ INA *vendorapi.JetsonINA }

// Name implements Meter.
func (m JetsonMeter) Name() string { return "jetson" }

// Read implements Meter.
func (m JetsonMeter) Read(t time.Duration) State {
	return State{Time: t, Joules: m.INA.EnergyJoules(t), WattsNow: m.INA.Power(t)}
}

// RAPLMeter adapts the CPU RAPL emulation.
type RAPLMeter struct{ RAPL *vendorapi.RAPL }

// Name implements Meter.
func (m RAPLMeter) Name() string { return "rapl" }

// Read implements Meter.
func (m RAPLMeter) Read(t time.Duration) State {
	return State{Time: t, Joules: m.RAPL.EnergyJoules(t)}
}

// PowerSensorMeter adapts an open PowerSensor3. Pair -1 sums all pairs.
type PowerSensorMeter struct {
	PS   *core.PowerSensor
	Pair int
}

// Name implements Meter.
func (m PowerSensorMeter) Name() string { return "powersensor3" }

// Read implements Meter. Unlike the vendor meters, the PowerSensor3 state
// advances only when the host library processes the stream; callers advance
// the simulation through the PowerSensor itself.
func (m PowerSensorMeter) Read(t time.Duration) State {
	st := m.PS.Read()
	var joules, watts float64
	if m.Pair >= 0 {
		joules = st.ConsumedJoules[m.Pair]
		watts = st.Watts[m.Pair]
	} else {
		for i := range st.ConsumedJoules {
			joules += st.ConsumedJoules[i]
			watts += st.Watts[i]
		}
	}
	return State{Time: st.TimeAtRead, Joules: joules, WattsNow: watts}
}
