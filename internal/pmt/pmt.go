// Package pmt reproduces the Power Measurement Toolkit (PMT) of Corda et
// al., the high-level library the paper uses in its case studies
// (Section V-A1): a single Meter interface over vendor-specific sensors
// (NVML, AMD SMI, Jetson, RAPL) and over PowerSensor3 itself.
//
// As in the real PMT, a measurement is a pair of States; Joules, Seconds
// and Watts difference them. The vendor meters are not bespoke adapters:
// each is a SourceMeter over the same internal/source adapter the fleet
// streams from, so the interval-read model here and the streaming model
// of internal/fleet consume one stream — two Read calls bracketing a
// workload measure exactly the energy a fleet EnergyWindow over the same
// span integrates.
//
// Zero-interval contract: differencing a state against itself (or any
// pair with a non-positive elapsed time) yields Watts == 0 — never NaN
// or Inf. Every rate in this package and the layers above it (history
// trapezoids, fleet energy windows) holds the same contract.
package pmt

import (
	"time"

	"repro/internal/core"
	"repro/internal/source"
	"repro/internal/vendorapi"
)

// State is one PMT reading: a timestamp plus cumulative energy.
type State struct {
	Time   time.Duration
	Joules float64
	// WattsNow is the meter's current instantaneous power estimate.
	WattsNow float64
}

// Meter is the unified measurement interface.
type Meter interface {
	// Name identifies the backing sensor.
	Name() string
	// Read returns the cumulative state at virtual time t.
	Read(t time.Duration) State
}

// Joules returns the energy consumed between two states.
func Joules(first, second State) float64 { return second.Joules - first.Joules }

// Seconds returns the elapsed time between two states.
func Seconds(first, second State) float64 { return (second.Time - first.Time).Seconds() }

// Watts returns the average power between two states. A non-positive
// elapsed time — the same state twice, or states out of order — is 0 W
// by contract: a zero-width measurement holds no information about
// power, and dividing by it would poison every figure derived downstream
// with NaN/Inf.
func Watts(first, second State) float64 {
	s := Seconds(first, second)
	if s <= 0 {
		return 0
	}
	return Joules(first, second) / s
}

// SourceMeter adapts any streaming source.Source to the PMT
// interval-read model. Read(t) advances the source to virtual time t —
// draining the same sample stream a fleet station or trace recorder
// would consume — and reports the source's own cumulative energy
// integral, so interval reads and streaming consumers of one source can
// never disagree about the energy between two instants.
type SourceMeter struct {
	name  string
	src   source.Source
	batch source.Batch // reused across reads; no per-read allocation
	lastW float64      // most recent summed-power sample seen
}

// NewSourceMeter wraps src as a PMT meter under the given name. The
// meter owns the stream position: callers should either Read through
// the meter or drain the source directly, not both.
func NewSourceMeter(name string, src source.Source) *SourceMeter {
	return &SourceMeter{name: name, src: src}
}

// Name implements Meter.
func (m *SourceMeter) Name() string { return m.name }

// Source returns the underlying streaming source — the same adapter a
// fleet would adopt.
func (m *SourceMeter) Source() source.Source { return m.src }

// Read implements Meter: it advances the source to virtual time t and
// returns the cumulative state there. Reads are monotonic — a rewound
// or repeated t advances nothing and reports the state at the source's
// current time, so differencing such a pair gives a zero interval and
// Watts resolves it to 0 by contract.
func (m *SourceMeter) Read(t time.Duration) State {
	if d := t - m.src.Now(); d > 0 {
		if err := m.src.ReadInto(d, &m.batch); err == nil {
			if n := m.batch.Len(); n > 0 {
				m.lastW = m.batch.Total[n-1]
			}
		}
	}
	return State{Time: m.src.Now(), Joules: m.src.Joules(), WattsNow: m.lastW}
}

// rateOf converts a vendor meter's refresh interval to its polling rate.
func rateOf(period time.Duration) float64 {
	return float64(time.Second) / float64(period)
}

// NewNVMLMeter adapts the NVML emulation: a polled source at the
// counter's ~10 Hz refresh, driven externally (the caller advances the
// workload on the shared GPU model).
func NewNVMLMeter(nv *vendorapi.NVML) *SourceMeter {
	return NewSourceMeter("nvml", source.NewPolled(source.PolledConfig{
		Meta: source.Meta{
			Backend:  "nvml",
			RateHz:   rateOf(nv.UpdatePeriod),
			Channels: []string{"board"},
		},
		Watts:  nv.PowerInstant,
		Joules: nv.EnergyJoules,
	}))
}

// NewAMDSMIMeter adapts the ROCm/AMD SMI emulation.
func NewAMDSMIMeter(smi *vendorapi.AMDSMI) *SourceMeter {
	return NewSourceMeter("amdsmi", source.NewPolled(source.PolledConfig{
		Meta: source.Meta{
			Backend:  "amdsmi",
			RateHz:   rateOf(smi.UpdatePeriod),
			Channels: []string{"board"},
		},
		Watts:  smi.Power,
		Joules: smi.EnergyJoules,
	}))
}

// NewJetsonMeter adapts the Jetson on-module INA3221 sensor.
func NewJetsonMeter(ina *vendorapi.JetsonINA) *SourceMeter {
	return NewSourceMeter("jetson", source.NewPolled(source.PolledConfig{
		Meta: source.Meta{
			Backend:  "ina3221",
			RateHz:   rateOf(ina.UpdatePeriod),
			Channels: []string{"module"},
		},
		Watts:  ina.Power,
		Joules: ina.EnergyJoules,
	}))
}

// NewRAPLMeter adapts the CPU RAPL emulation. RAPL exposes only the
// energy counter; power falls out of counter deltas, as real RAPL
// consumers derive it.
func NewRAPLMeter(rapl *vendorapi.RAPL) *SourceMeter {
	return NewSourceMeter("rapl", source.NewPolled(source.PolledConfig{
		Meta: source.Meta{
			Backend:  "rapl",
			RateHz:   rateOf(rapl.UpdatePeriod),
			Channels: []string{"package"},
		},
		Joules: rapl.EnergyJoules,
	}))
}

// PowerSensorMeter adapts an open PowerSensor3. Pair -1 sums all pairs.
type PowerSensorMeter struct {
	PS   *core.PowerSensor
	Pair int
}

// Name implements Meter.
func (m PowerSensorMeter) Name() string { return "powersensor3" }

// Read implements Meter. Unlike the vendor meters, the PowerSensor3 state
// advances only when the host library processes the stream; callers advance
// the simulation through the PowerSensor itself.
func (m PowerSensorMeter) Read(t time.Duration) State {
	st := m.PS.Read()
	var joules, watts float64
	if m.Pair >= 0 {
		joules = st.ConsumedJoules[m.Pair]
		watts = st.Watts[m.Pair]
	} else {
		for i := range st.ConsumedJoules {
			joules += st.ConsumedJoules[i]
			watts += st.Watts[i]
		}
	}
	return State{Time: st.TimeAtRead, Joules: joules, WattsNow: watts}
}
