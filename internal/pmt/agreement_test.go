package pmt

import (
	"math"
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/rig"
	"repro/internal/vendorapi"
)

// runAgreement drives one synthetic workload — repeated FMA kernels with
// idle gaps, the paper's Fig. 7 duty cycle — on a GPU measured
// simultaneously by a PowerSensor3 rig and a vendor meter, both read
// through the PMT interface, and checks the vendor meter's energy tracks
// the PowerSensor3 measurement within tol (relative).
func runAgreement(t *testing.T, r *rig.Rig, vendor Meter, tol float64) {
	t.Helper()
	defer r.Close()
	ps3 := PowerSensorMeter{PS: r.PS, Pair: -1}

	// Idle lead-in so both meters have settled readings.
	r.Idle(200 * time.Millisecond)
	v0 := vendor.Read(r.Now())
	p0 := ps3.Read(r.Now())

	for i := 0; i < 3; i++ {
		k := kernels.SyntheticFMA(r.GPU.Spec(), 400*time.Millisecond)
		run := r.GPU.LaunchKernel(k, r.Now())
		// Advance through kernel plus an idle tail, polling the vendor
		// meter at 100 Hz as the paper's measurement scripts do.
		for r.Now() < run.End+200*time.Millisecond {
			r.PS.Advance(10 * time.Millisecond)
			vendor.Read(r.Now())
		}
	}

	v1 := vendor.Read(r.Now())
	p1 := ps3.Read(r.Now())
	vendorJ := Joules(v0, v1)
	ps3J := Joules(p0, p1)
	if ps3J <= 0 {
		t.Fatalf("PowerSensor3 measured no energy")
	}
	if rel := math.Abs(vendorJ-ps3J) / ps3J; rel > tol {
		t.Fatalf("%s energy %.1f J vs PowerSensor3 %.1f J: off by %.1f%% (tolerance %.0f%%)",
			vendor.Name(), vendorJ, ps3J, rel*100, tol*100)
	}
}

// TestAgreementAMDSMI: the W7700's on-board sensor is fast and accurate
// (Fig. 7b), so its energy must track the external measurement closely.
func TestAgreementAMDSMI(t *testing.T) {
	g := gpu.New(gpu.W7700(), 21)
	r, err := rig.NewPCIe(g, 21)
	if err != nil {
		t.Fatal(err)
	}
	runAgreement(t, r, NewAMDSMIMeter(vendorapi.NewAMDSMI(g)), 0.05)
}

// TestAgreementNVML: the NVIDIA counter refreshes at only ~10 Hz, so its
// integrated energy drifts further from the 20 kHz external measurement
// over a bursty workload — but total energy over multi-second windows
// still lands within a loose tolerance (the Section V-A1 case-study
// setting, where PMT meters and PowerSensor3 run side by side).
func TestAgreementNVML(t *testing.T) {
	g := gpu.New(gpu.RTX4000Ada(), 22)
	r, err := rig.NewPCIe(g, 22)
	if err != nil {
		t.Fatal(err)
	}
	runAgreement(t, r, NewNVMLMeter(vendorapi.NewNVML(g)), 0.15)
}
