// Package report renders experiment results into a Markdown document — the
// machine-written counterpart of EXPERIMENTS.md, so a full reproduction run
// can publish its numbers directly.
package report

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/experiments"
)

// Builder accumulates sections of a reproduction report.
type Builder struct {
	title    string
	sections []section
}

type section struct {
	heading string
	body    string
}

// New starts a report with the given title.
func New(title string) *Builder {
	return &Builder{title: title}
}

// Sections returns how many sections have been added.
func (b *Builder) Sections() int { return len(b.sections) }

// AddTable appends a section rendering an experiments.Table as Markdown.
func (b *Builder) AddTable(heading string, t experiments.Table) {
	var sb strings.Builder
	sb.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	sb.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		cells := make([]string, len(t.Header))
		for i := range cells {
			if i < len(row) {
				cells[i] = strings.TrimSpace(row[i])
			}
		}
		sb.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	b.sections = append(b.sections, section{heading: heading, body: sb.String()})
}

// AddText appends a free-text section.
func (b *Builder) AddText(heading, text string) {
	b.sections = append(b.sections, section{heading: heading, body: text + "\n"})
}

// AddSeries appends a section summarising a data series (count, range) with
// an optional preformatted plot.
func (b *Builder) AddSeries(heading string, s experiments.Series, plot string) {
	var sb strings.Builder
	if len(s.Y) > 0 {
		lo, hi := s.Y[0], s.Y[0]
		for _, v := range s.Y {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		fmt.Fprintf(&sb, "%d points, range %.3g – %.3g.\n\n", len(s.Y), lo, hi)
	}
	if plot != "" {
		sb.WriteString("```\n" + strings.TrimRight(plot, "\n") + "\n```\n")
	}
	b.sections = append(b.sections, section{heading: heading, body: sb.String()})
}

// Write emits the assembled document.
func (b *Builder) Write(w io.Writer, generatedAt time.Time) error {
	var sb strings.Builder
	sb.WriteString("# " + b.title + "\n\n")
	fmt.Fprintf(&sb, "_Generated %s by cmd/experiments._\n\n", generatedAt.Format("2006-01-02 15:04:05"))
	for _, s := range b.sections {
		sb.WriteString("## " + s.heading + "\n\n")
		sb.WriteString(s.body + "\n")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
