package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
)

func TestReportRendersMarkdown(t *testing.T) {
	b := New("Reproduction report")
	b.AddTable("Table I", experiments.Table{
		Title:  "ignored here",
		Header: []string{"Module", "Power"},
		Rows:   [][]string{{"12V/10A", "±4.3 W"}, {"3.3V/10A", "±1.2 W"}},
	})
	b.AddText("Notes", "Shapes hold.")
	b.AddSeries("Fig. 5", experiments.Series{
		Name: "step", X: []float64{0, 1, 2}, Y: []float64{40, 96, 40},
	}, "plot-goes-here")

	if b.Sections() != 3 {
		t.Fatalf("%d sections", b.Sections())
	}

	var out bytes.Buffer
	if err := b.Write(&out, time.Date(2026, 6, 12, 10, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"# Reproduction report",
		"## Table I",
		"| Module | Power |",
		"| --- | --- |",
		"| 12V/10A | ±4.3 W |",
		"## Notes",
		"Shapes hold.",
		"3 points, range 40 – 96.",
		"```\nplot-goes-here\n```",
		"2026-06-12",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in output:\n%s", want, s)
		}
	}
}

func TestReportHandlesRaggedRows(t *testing.T) {
	b := New("r")
	b.AddTable("T", experiments.Table{
		Header: []string{"a", "b", "c"},
		Rows:   [][]string{{"1"}}, // short row must not panic
	})
	var out bytes.Buffer
	if err := b.Write(&out, time.Now()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "| 1 |  |  |") {
		t.Fatalf("ragged row rendering:\n%s", out.String())
	}
}

func TestEmptySeries(t *testing.T) {
	b := New("r")
	b.AddSeries("empty", experiments.Series{}, "")
	var out bytes.Buffer
	if err := b.Write(&out, time.Now()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "## empty") {
		t.Fatal("empty series section missing")
	}
}
