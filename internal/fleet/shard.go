package fleet

import (
	"sync"
	"sync/atomic"
	"time"
)

// MaxShards caps Config.Shards. The fixed bound lets sorted fleet-wide
// iteration (Names, Snapshot) merge shard lists through stack-resident
// cursor arrays instead of heap-allocated state, keeping those paths
// allocation-free however the fleet is sharded.
const MaxShards = 64

// shardOf maps a station name to its home shard: FNV-1a over the name,
// folded modulo the shard count. The hash is a pure function of the name,
// so a station retired and re-added always lands in the same shard —
// which is what lets the exporter gate per-shard label-cache eviction on
// per-shard retirement counters alone.
func shardOf(name string, nshards int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return int(h % uint64(nshards))
}

// shard is one fixed partition of the fleet. Each shard owns its own
// copy-on-write sorted device list, its own churn counters (feeding the
// shard's render generation, so one shard's churn never invalidates
// another's cached exposition segment), its own memory pool (so stations
// stepped together sit adjacent in memory) and, once parallel stepping
// starts, its own persistent step-worker goroutine.
type shard struct {
	devices atomic.Pointer[[]*Device] // sorted by name, copy-on-write
	adopted atomic.Uint64
	retired atomic.Uint64
	pool    memPool
	stepCh  chan time.Duration // nil until the step workers launch
}

// list returns the shard's current published device slice.
func (sh *shard) list() []*Device {
	return *sh.devices.Load()
}

// devIter merges the per-shard sorted device lists into one
// name-ordered stream without allocating: the lists and cursors live in
// fixed arrays sized by MaxShards, so the iterator can sit on a caller's
// stack. The lists are the atomically published snapshots loaded at
// init time — iteration sees the fleet as of that instant, like every
// other copy-on-write reader.
type devIter struct {
	lists [MaxShards][]*Device
	cur   [MaxShards]int
	n     int
}

func (it *devIter) init(shards []shard) {
	it.n = len(shards)
	for i := range shards {
		it.lists[i] = shards[i].list()
		it.cur[i] = 0
	}
}

// next returns the next device in global name order, or nil when done.
// A linear scan over at most MaxShards cursors per step is cheaper than
// heap machinery at this width, and allocates nothing.
func (it *devIter) next() *Device {
	best := -1
	for i := 0; i < it.n; i++ {
		if it.cur[i] >= len(it.lists[i]) {
			continue
		}
		if best < 0 || it.lists[i][it.cur[i]].name < it.lists[best][it.cur[best]].name {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	d := it.lists[best][it.cur[best]]
	it.cur[best]++
	return d
}

// memPool is a shard's adoption-time memory allocator: ring arenas, ring
// point buffers and batch columns are carved out of large per-shard
// slabs instead of individually heap-allocated, so the working sets of
// stations adopted (and later stepped) together are adjacent in memory —
// the locality lever against the L2/L3 thrashing that flattened ingest
// scaling at 256 stations. Retired stations' chunks go onto per-size
// free lists and are handed to the next same-shape adoption, so a churny
// fleet recycles a bounded pool instead of growing the heap without
// bound. All methods are called on the (rare) adopt/retire paths only —
// never from ingest or scrape — so one mutex is plenty.
type memPool struct {
	mu   sync.Mutex
	f64  slab[float64]
	dur  slab[time.Duration]
	pts  slab[Point]
	ints slab[int]
}

// slabChunkMin is the minimum slab size in elements: big enough that a
// default station's ring arena and batch columns carve from one slab
// run, small enough that a near-empty shard wastes little.
const slabChunkMin = 16384

// slab carves fixed-size chunks of T from large contiguous backing
// arrays. Chunks come back via put and are reused exact-size; the free
// map is keyed by capacity, which in practice has a handful of distinct
// values per fleet (one per station shape).
type slab[T any] struct {
	cur  []T
	free map[int][][]T
}

// get returns a chunk of exactly n elements (len n, cap n). Contents are
// unspecified — callers treat chunks as uninitialised memory, which every
// current use (ring arenas, re-sliced batch columns) already does.
func (s *slab[T]) get(n int) []T {
	if n == 0 {
		return nil
	}
	if lst := s.free[n]; len(lst) > 0 {
		out := lst[len(lst)-1]
		s.free[n] = lst[:len(lst)-1]
		return out[:n]
	}
	if len(s.cur) < n {
		size := slabChunkMin
		if n > size {
			size = n
		}
		s.cur = make([]T, size)
	}
	out := s.cur[:n:n]
	s.cur = s.cur[n:]
	return out
}

// put returns a chunk for reuse. Only chunks whose capacity matches a
// future get are ever handed out again; odd-sized strays just sit on
// their own free list.
func (s *slab[T]) put(x []T) {
	if cap(x) == 0 {
		return
	}
	if s.free == nil {
		s.free = make(map[int][][]T)
	}
	x = x[:cap(x)]
	s.free[cap(x)] = append(s.free[cap(x)], x)
}

// devMem is the pooled memory of one device, allocated in one pool
// critical section at adoption and returned in one at retirement.
type devMem struct {
	ringBuf    []Point
	ringArena  []float64
	batchTime  []time.Duration
	batchChans []float64
	batchTotal []float64
	batchMarks []int
}

// grab carves a device's ring and batch memory from the shard pool.
// ringCap and chans shape the ring; batchSamples pre-sizes the columnar
// batch for the expected samples per step (native rate × manager slice),
// so steady-state ReadInto fills slab-backed columns without growing
// them. A step larger than the pre-size (a warmup burst) just grows the
// columns off-slab — correct, merely less local.
func (p *memPool) grab(ringCap, chans, batchSamples int) devMem {
	p.mu.Lock()
	defer p.mu.Unlock()
	cc := chans
	if cc < 1 {
		cc = 1
	}
	return devMem{
		ringBuf:    p.pts.get(ringCap),
		ringArena:  p.f64.get(ringCap * chans),
		batchTime:  p.dur.get(batchSamples),
		batchChans: p.f64.get(batchSamples * cc),
		batchTotal: p.f64.get(batchSamples),
		batchMarks: p.ints.get(16),
	}
}

// release returns a retired device's pooled memory for the next
// adoption. Chunks that grew past their pooled capacity mid-life (batch
// columns after an oversized step) were reallocated off-slab by append;
// whatever slice the device holds now is still a valid chunk to recycle.
func (p *memPool) release(m devMem) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pts.put(m.ringBuf)
	p.f64.put(m.ringArena)
	p.dur.put(m.batchTime)
	p.f64.put(m.batchChans)
	p.f64.put(m.batchTotal)
	p.ints.put(m.batchMarks)
}
