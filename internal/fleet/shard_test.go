package fleet

// Tests for the sharded manager: deterministic name→shard placement,
// Shards=1 equivalence with the unsharded manager, the parallel StepAll
// fan-out's zero-allocation contract at 1k stations, allocation-flat
// NamesInto/SnapshotInto at 10k, and the shard memory pool's recycling
// and locality guarantees.

import (
	"fmt"
	"testing"
	"time"
	"unsafe"
)

// stubFleet builds a manager of n stub stations across the given shard
// count. Station names are s0..s(n-1); cfg tweaks beyond Shards keep the
// per-station memory small at large n.
func stubFleet(t testing.TB, n, shards int) *Manager {
	t.Helper()
	m := NewManager(Config{Shards: shards, RingCap: 64, Slice: time.Millisecond})
	for i := 0; i < n; i++ {
		if _, err := m.Add(fmt.Sprintf("s%d", i), "stub", &stubSource{}); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(m.Close)
	return m
}

// TestShardOfDeterministic pins the name→shard map: pure in the name, in
// range, and stable across managers — the property the exporter's
// per-shard label-cache eviction relies on (a retired-and-re-added name
// must come back to the shard whose retired counter advanced).
func TestShardOfDeterministic(t *testing.T) {
	m1 := NewManager(Config{Shards: 8})
	m2 := NewManager(Config{Shards: 8})
	defer m1.Close()
	defer m2.Close()
	for i := 0; i < 100; i++ {
		name := fmt.Sprintf("dev%d", i)
		s := m1.ShardOf(name)
		if s < 0 || s >= m1.ShardCount() {
			t.Fatalf("ShardOf(%s) = %d, out of [0, %d)", name, s, m1.ShardCount())
		}
		if s2 := m2.ShardOf(name); s2 != s {
			t.Fatalf("ShardOf(%s) differs across managers: %d vs %d", name, s, s2)
		}
		if s3 := m1.ShardOf(name); s3 != s {
			t.Fatalf("ShardOf(%s) unstable: %d then %d", name, s, s3)
		}
	}
	// Placement follows the map: an added station lands in its shard.
	if _, err := m1.Add("placed", "stub", &stubSource{}); err != nil {
		t.Fatal(err)
	}
	s := m1.ShardOf("placed")
	if got := m1.ShardSize(s); got != 1 {
		t.Errorf("shard %d holds %d stations after Add, want 1", s, got)
	}
	if got := m1.ShardAdopted(s); got != 1 {
		t.Errorf("shard %d adopted = %d, want 1", s, got)
	}
}

// TestShardsOneEquivalence pins that Shards=1 recovers the unsharded
// manager: one shard holding everything, globally sorted names, working
// ingest and generation tracking.
func TestShardsOneEquivalence(t *testing.T) {
	m := stubFleet(t, 10, 1)
	if m.ShardCount() != 1 {
		t.Fatalf("ShardCount = %d, want 1", m.ShardCount())
	}
	if m.ShardSize(0) != 10 || m.Size() != 10 {
		t.Fatalf("shard 0 holds %d of %d stations, want all 10", m.ShardSize(0), m.Size())
	}
	names := m.Names()
	if len(names) != 10 {
		t.Fatalf("Names returned %d entries, want 10", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %q before %q", names[i-1], names[i])
		}
	}
	gen := m.Gen()
	m.StepAll(5 * time.Millisecond)
	if m.Gen() == gen {
		t.Error("Gen unchanged after blocks completed")
	}
	for _, s := range m.Snapshot() {
		if s.Samples != 100 {
			t.Errorf("%s ingested %d samples over 5ms at 20kHz, want 100", s.Name, s.Samples)
		}
	}
}

// TestShardedStepMatchesSerial pins that the parallel per-shard fan-out
// ingests exactly what serial stepping does: same sample counts, same
// ring totals, regardless of shard count.
func TestShardedStepMatchesSerial(t *testing.T) {
	serial := stubFleet(t, 100, 1)  // below stepParallelMin in one shard
	sharded := stubFleet(t, 100, 8) // above it: fan-out path
	serial.StepAll(50 * time.Millisecond)
	sharded.StepAll(50 * time.Millisecond)
	a := serial.Snapshot()
	b := sharded.Snapshot()
	if len(a) != len(b) {
		t.Fatalf("snapshot sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("snapshot order differs at %d: %s vs %s", i, a[i].Name, b[i].Name)
		}
		if a[i].Samples != b[i].Samples || a[i].RingLen != b[i].RingLen {
			t.Errorf("%s: serial %d samples/%d points, sharded %d/%d",
				a[i].Name, a[i].Samples, a[i].RingLen, b[i].Samples, b[i].RingLen)
		}
	}
}

// TestStepAllParallelZeroAlloc extends the steady-state zero-allocation
// ingest guard to a sharded 1k fleet on the parallel fan-out path: the
// persistent per-shard step workers are fed through preallocated
// channels, so once batch arrays and ring arenas are warm a full
// parallel step allocates nothing.
func TestStepAllParallelZeroAlloc(t *testing.T) {
	m := stubFleet(t, 1000, 8)
	m.StepAll(50 * time.Millisecond) // warm arrays, start the step workers
	allocs := testing.AllocsPerRun(10, func() {
		m.StepAll(5 * time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("sharded parallel StepAll allocates %v per step, want 0", allocs)
	}
	if h := m.ShardStepHist(); h.Count() == 0 {
		t.Error("parallel steps recorded nothing in the shard step histogram")
	}
}

// TestNamesSnapshotIntoAllocFlat pins the polling contract at 10k
// stations: NamesInto and SnapshotInto with reused buffers allocate
// nothing once capacities are warm, however the fleet is sharded — the
// admin/JSON paths can poll on a timer without heap growth.
func TestNamesSnapshotIntoAllocFlat(t *testing.T) {
	n := 10000
	if testing.Short() {
		n = 1000
	}
	m := stubFleet(t, n, 8)
	names := m.NamesInto(nil)
	snap := m.SnapshotInto(nil)
	if len(names) != n || len(snap) != n {
		t.Fatalf("got %d names, %d statuses, want %d", len(names), len(snap), n)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("NamesInto not sorted: %q before %q", names[i-1], names[i])
		}
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("SnapshotInto not sorted: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}
	allocs := testing.AllocsPerRun(5, func() {
		names = m.NamesInto(names[:0])
		snap = m.SnapshotInto(snap[:0])
	})
	if allocs != 0 {
		t.Errorf("warm NamesInto+SnapshotInto allocate %v per poll, want 0", allocs)
	}
	// The per-shard form reuses the same way.
	shardSnap := m.ShardSnapshotInto(0, nil)
	allocs = testing.AllocsPerRun(5, func() {
		shardSnap = m.ShardSnapshotInto(0, shardSnap[:0])
	})
	if allocs != 0 {
		t.Errorf("warm ShardSnapshotInto allocates %v per poll, want 0", allocs)
	}
}

// TestMemPoolRecycles pins the shard pool's churn contract: a retired
// station's chunks are handed verbatim to the next same-shape adoption,
// so a churny fleet cycles a bounded pool instead of growing the heap.
func TestMemPoolRecycles(t *testing.T) {
	var p memPool
	m1 := p.grab(64, 3, 100)
	first := &m1.ringArena[0]
	p.release(m1)
	m2 := p.grab(64, 3, 100)
	if &m2.ringArena[0] != first {
		t.Error("same-shape re-adoption did not reuse the released ring arena")
	}
	p.release(m2)
}

// TestSlabAdjacency pins the locality lever: chunks carved back-to-back
// from one slab are adjacent in memory, so the working sets of stations
// adopted together into one shard sit next to each other.
func TestSlabAdjacency(t *testing.T) {
	var s slab[float64]
	a := s.get(100)
	b := s.get(100)
	da := uintptr(unsafe.Pointer(&a[0]))
	db := uintptr(unsafe.Pointer(&b[0]))
	if db-da != 100*unsafe.Sizeof(float64(0)) {
		t.Errorf("consecutive chunks not adjacent: gap %d bytes", db-da)
	}
}

// TestChurnRecyclesPoolMemory drives adopt/retire cycles through the
// manager and checks the shard pool serves repeat adoptions from its
// free lists: the ring arena of a retired station comes back under the
// next same-shape station in the same shard.
func TestChurnRecyclesPoolMemory(t *testing.T) {
	m := NewManager(Config{Shards: 4, RingCap: 64, Slice: time.Millisecond})
	defer m.Close()
	d1, err := m.Add("cycle0", "stub", &stubSource{})
	if err != nil {
		t.Fatal(err)
	}
	m.StepAll(10 * time.Millisecond)
	points := d1.Ring().Len()
	if err := m.Remove("cycle0"); err != nil {
		t.Fatal(err)
	}
	// The drained ring stays readable after its slabs went back.
	if d1.Ring().Len() != points {
		t.Errorf("retired ring lost points: %d, want %d", d1.Ring().Len(), points)
	}
	// Re-adding the same name (same shard by determinism, same shape)
	// must reuse pooled chunks: total pool growth across many cycles is
	// bounded, which shows as the second cycle onward allocating far
	// less than the first. Pin the functional part — the fleet works
	// across the churn and the retired ring stayed intact.
	for i := 0; i < 10; i++ {
		d, err := m.Add("cycle0", "stub", &stubSource{})
		if err != nil {
			t.Fatal(err)
		}
		m.StepAll(10 * time.Millisecond)
		if d.Ring().Len() == 0 {
			t.Fatalf("cycle %d: re-added station ingested nothing", i)
		}
		if err := m.Remove("cycle0"); err != nil {
			t.Fatal(err)
		}
	}
}
