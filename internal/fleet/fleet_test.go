package fleet

import (
	"sync"
	"testing"
	"time"
)

// testFleet builds the canonical 3-station fleet: a PCIe GPU, a USB-C SoC
// and an SSD.
func testFleet(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := FromSpec("gpu0=rtx4000ada,soc0=jetson,ssd0=ssd", 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func TestManagerThreeStations(t *testing.T) {
	m := testFleet(t, Config{})
	if m.Size() != 3 {
		t.Fatalf("Size = %d, want 3", m.Size())
	}
	if got := m.Names(); len(got) != 3 || got[0] != "gpu0" || got[1] != "soc0" || got[2] != "ssd0" {
		t.Fatalf("Names = %v", got)
	}
	m.StepAll(time.Second)

	wantPairs := map[string]int{"gpu0": 3, "soc0": 1, "ssd0": 2}
	for _, st := range m.Snapshot() {
		if st.Pairs != wantPairs[st.Name] {
			t.Errorf("%s: pairs = %d, want %d", st.Name, st.Pairs, wantPairs[st.Name])
		}
		if st.Watts <= 0 {
			t.Errorf("%s: watts = %v, want > 0", st.Name, st.Watts)
		}
		if st.Joules <= 0 {
			t.Errorf("%s: joules = %v, want > 0", st.Name, st.Joules)
		}
		// One virtual second at 20 kHz, minus stream-start alignment.
		if st.Samples < 15000 {
			t.Errorf("%s: samples = %d, want >= 15000", st.Name, st.Samples)
		}
		if st.Resyncs != 0 {
			t.Errorf("%s: resyncs = %d on a clean link", st.Name, st.Resyncs)
		}
		// Block 20 → about 1000 ring points per virtual second.
		if st.RingTotal < 700 {
			t.Errorf("%s: ring total = %d, want >= 700", st.Name, st.RingTotal)
		}
	}
}

// TestManagerMixedBackends runs a heterogeneous fleet — PowerSensor3 rigs
// next to polled software meters — and checks each station ingests at its
// own native rate with rate-derived ring pacing.
func TestManagerMixedBackends(t *testing.T) {
	m, err := FromSpec("gpu0=rtx4000ada,gpu0sw=nvml,cpu0=rapl,gpu1sw=amdsmi", 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	m.StepAll(2 * time.Second)

	want := map[string]struct {
		backend    string
		rateHz     float64
		minSamples uint64
	}{
		"gpu0":   {"powersensor3", 20000, 30000},
		"gpu0sw": {"nvml", 10, 15},
		"cpu0":   {"rapl", 1000, 1500},
		"gpu1sw": {"amdsmi", 1000, 1500},
	}
	for _, st := range m.Snapshot() {
		w := want[st.Name]
		if st.Backend != w.backend {
			t.Errorf("%s: backend = %q, want %q", st.Name, st.Backend, w.backend)
		}
		if st.RateHz != w.rateHz {
			t.Errorf("%s: rate = %v Hz, want %v", st.Name, st.RateHz, w.rateHz)
		}
		if st.Samples < w.minSamples {
			t.Errorf("%s: %d samples over 2s at %v Hz, want >= %d",
				st.Name, st.Samples, w.rateHz, w.minSamples)
		}
		if st.Joules <= 0 {
			t.Errorf("%s: joules = %v, want > 0", st.Name, st.Joules)
		}
		if st.Watts <= 0 {
			t.Errorf("%s: watts = %v, want > 0", st.Name, st.Watts)
		}
		if st.Resyncs != 0 {
			t.Errorf("%s: resyncs = %d", st.Name, st.Resyncs)
		}
		if len(st.Channels) != st.Pairs {
			t.Errorf("%s: %d channel labels for %d channels", st.Name, len(st.Channels), st.Pairs)
		}
		// Ring pacing derives from the native rate: every source lands
		// near one point per PointPeriod (1 ms default) — except sources
		// slower than the period, which emit one point per sample.
		perSecond := st.RateHz
		if st.RateHz >= 1000 {
			perSecond = 1000
		}
		if lo := uint64(2 * perSecond * 0.7); st.RingTotal < lo {
			t.Errorf("%s: ring total = %d over 2s, want >= %d", st.Name, st.RingTotal, lo)
		}
	}
}

// TestManagerMixedConcurrent is the -race workout for a heterogeneous
// fleet: PowerSensor and polled-meter stations advance on their own
// goroutines while snapshots, subscriptions and traces run against them.
func TestManagerMixedConcurrent(t *testing.T) {
	m, err := FromSpec("gpu0=rtx4000ada,gpu0sw=nvml,cpu0=rapl", 1,
		Config{Slice: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	ch, cancel := m.Device("cpu0").Subscribe(256)
	defer cancel()

	m.Start()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, st := range m.Snapshot() {
					_ = st.Watts
				}
				_ = m.Device("gpu0sw").Trace(50)
			}
		}()
	}
	deadline := time.After(300 * time.Millisecond)
	var received int
	for running := true; running; {
		select {
		case <-ch:
			received++
		case <-deadline:
			running = false
		}
	}
	close(stop)
	wg.Wait()
	m.Stop()

	if received == 0 {
		t.Fatal("software-meter subscriber received no points while fleet ran")
	}
	for _, st := range m.Snapshot() {
		if st.Samples == 0 {
			t.Errorf("%s ingested no samples", st.Name)
		}
	}
}

func TestManagerUnknownDevice(t *testing.T) {
	m := testFleet(t, Config{})
	if m.Device("nope") != nil {
		t.Fatal("Device(nope) != nil")
	}
	if m.Device("gpu0") == nil {
		t.Fatal("Device(gpu0) == nil")
	}
}

func TestManagerAddErrors(t *testing.T) {
	m := testFleet(t, Config{})
	if _, err := m.Add("gpu0", "ssd", nil); err == nil {
		t.Fatal("duplicate Add succeeded")
	}
	m.Start()
	defer m.Stop()
	// Duplicate names are rejected on a running manager too — before the
	// source is touched, so nil is safe here.
	if _, err := m.Add("gpu0", "ssd", nil); err == nil {
		t.Fatal("duplicate Add after Start succeeded")
	}
	if err := m.Remove("nope"); err == nil {
		t.Fatal("Remove of unknown station succeeded")
	}
}

// TestManagerConcurrent drives the fleet from its goroutines while other
// goroutines snapshot, subscribe and export traces — the -race workout for
// the whole ingest path.
func TestManagerConcurrent(t *testing.T) {
	m := testFleet(t, Config{Slice: 2 * time.Millisecond})
	ch, cancel := m.Device("gpu0").Subscribe(256)
	defer cancel()

	m.Start()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, st := range m.Snapshot() {
					_ = st.Watts
				}
				_ = m.Device("ssd0").Trace(50)
			}
		}()
	}
	// Let the fleet make progress in wall time.
	deadline := time.After(300 * time.Millisecond)
	var received int
	for running := true; running; {
		select {
		case <-ch:
			received++
		case <-deadline:
			running = false
		}
	}
	close(stop)
	wg.Wait()
	m.Stop()

	if received == 0 {
		t.Fatal("subscriber received no points while fleet ran")
	}
	for _, st := range m.Snapshot() {
		if st.Samples == 0 {
			t.Errorf("%s ingested no samples", st.Name)
		}
	}

	// Stop is a barrier: no further progress afterwards.
	before := m.Snapshot()
	time.Sleep(20 * time.Millisecond)
	after := m.Snapshot()
	for i := range before {
		if before[i].Samples != after[i].Samples {
			t.Errorf("%s advanced after Stop: %d -> %d",
				before[i].Name, before[i].Samples, after[i].Samples)
		}
	}
}

func TestSubscribeDropsWhenFull(t *testing.T) {
	m := testFleet(t, Config{})
	dev := m.Device("gpu0")
	ch, cancel := dev.Subscribe(4)
	// 100 ms → ~100 points against a 4-deep channel nobody drains.
	m.StepAll(100 * time.Millisecond)
	st := dev.Status()
	if st.Dropped == 0 {
		t.Fatalf("dropped = 0 with a full subscriber (ring total %d)", st.RingTotal)
	}
	if got := uint64(len(ch)) + st.Dropped; got != st.RingTotal {
		t.Errorf("delivered+dropped = %d, want ring total %d", got, st.RingTotal)
	}
	cancel()
	if _, open := <-ch; open {
		// Buffered points drain first; the channel must eventually close.
		for range ch {
		}
	}
	// A cancelled subscriber no longer accumulates drops.
	before := dev.Status().Dropped
	m.StepAll(50 * time.Millisecond)
	if after := dev.Status().Dropped; after != before {
		t.Errorf("dropped kept growing after cancel: %d -> %d", before, after)
	}
}

func TestDeviceTrace(t *testing.T) {
	m := testFleet(t, Config{Block: 20})
	m.StepAll(500 * time.Millisecond)
	dev := m.Device("gpu0")

	tr := dev.Trace(0)
	if tr.Pairs != 3 {
		t.Fatalf("trace pairs = %d, want 3", tr.Pairs)
	}
	if len(tr.Points) < 400 {
		t.Fatalf("trace has %d points, want >= 400", len(tr.Points))
	}
	for i, p := range tr.Points {
		if len(p.Watts) != 3 {
			t.Fatalf("point %d has %d pair columns", i, len(p.Watts))
		}
		if i > 0 && p.Time <= tr.Points[i-1].Time {
			t.Fatalf("trace time not increasing at %d: %v <= %v", i, p.Time, tr.Points[i-1].Time)
		}
	}
	// Downsampled spacing: block 20 at 20 kHz → 1 ms between points.
	if dt := tr.Points[1].Time - tr.Points[0].Time; dt != time.Millisecond {
		t.Errorf("point spacing = %v, want 1ms", dt)
	}
	if tr.Energy() <= 0 {
		t.Errorf("trace energy = %v, want > 0", tr.Energy())
	}

	if got := len(dev.Trace(25).Points); got != 25 {
		t.Errorf("capped trace has %d points, want 25", got)
	}
}

// TestDownsampleAgainstSensor cross-checks the ring's block averages
// against the sensor's own cumulative energy: integrating ring points over
// a window must come out close to the Joules counter.
func TestDownsampleAgainstSensor(t *testing.T) {
	m := testFleet(t, Config{Block: 20, RingCap: 1 << 16})
	m.StepAll(time.Second)
	dev := m.Device("soc0")
	st := dev.Status()

	var joules float64
	for _, p := range dev.Ring().Snapshot(0) {
		joules += p.Total * 0.001 // 1 ms per block-20 point
		if p.Min > p.Total || p.Total > p.Max {
			t.Fatalf("block stats inconsistent: min=%v mean=%v max=%v", p.Min, p.Total, p.Max)
		}
	}
	if diff := joules - st.Joules; diff < -0.05*st.Joules || diff > 0.05*st.Joules {
		t.Errorf("ring-integrated energy %v J vs sensor %v J", joules, st.Joules)
	}
}
