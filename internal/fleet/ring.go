// The per-station downsample ring: fixed-capacity, arena-backed storage
// for the block statistics the fleet publishes. See doc.go for the
// package overview.

package fleet

import (
	"sync"
	"time"
)

// Point is one downsampled ring entry: the block statistics of one
// block's worth of consecutive native-rate samples.
type Point struct {
	// Time is the device time of the last sample in the block.
	Time time.Duration `json:"t"`
	// Watts is the per-pair block-average power.
	Watts []float64 `json:"w"`
	// Total is the block-average of the summed (board) power.
	Total float64 `json:"total"`
	// Min and Max bound the summed power within the block, preserving the
	// peaks that averaging alone would erase.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Marks counts the time-synced user markers (source.Batch.Marks)
	// carried by the block's samples, so a 20 kHz marker survives
	// downsampling into its block's point instead of being averaged away.
	Marks int `json:"marks,omitempty"`
}

// Ring is a fixed-capacity overwrite-oldest buffer of Points with one
// writer and any number of readers. Every point's Watts row lives in one
// flat float64 arena preallocated at construction, so pushing a point
// copies a few floats into a recycled slot and never allocates — the
// 20 kHz ingest path touches the ring once per downsample block, holding
// the lock only to copy a single point in or a bounded batch out.
//
// Because slots are recycled on wraparound, readers never receive views
// into the arena: Snapshot deep-copies the points it returns.
type Ring struct {
	mu    sync.Mutex
	buf   []Point   // len == capacity; Watts pre-bound to arena slots
	arena []float64 // capacity × chans flat backing for every Watts row
	chans int
	n     int    // points currently held
	next  int    // buf index the next push writes
	total uint64 // points ever pushed
}

// NewRing returns a ring holding the last capacity points of chans
// channels each. It panics if capacity is not positive or chans is
// negative.
func NewRing(capacity, chans int) *Ring {
	if capacity <= 0 {
		panic("fleet: NewRing with non-positive capacity")
	}
	if chans < 0 {
		panic("fleet: NewRing with negative channel count")
	}
	return newRingWith(capacity, chans,
		make([]Point, capacity), make([]float64, capacity*chans))
}

// newRingWith builds a ring over caller-supplied backing memory — the
// shard memory pools hand in recycled slabs here. buf must hold capacity
// points and arena capacity×chans floats; contents may be stale garbage
// from a previous life, since every cell is (re)bound or overwritten
// before a reader can see it: Watts rows are rebound below, and scalar
// fields are only read up to the push cursor.
func newRingWith(capacity, chans int, buf []Point, arena []float64) *Ring {
	r := &Ring{buf: buf, arena: arena, chans: chans}
	for i := range r.buf {
		r.buf[i].Watts = r.arena[i*chans : (i+1)*chans : (i+1)*chans]
	}
	return r
}

// detach compacts the ring onto fresh exact-size backing and returns the
// original buffer and arena for recycling. Called at device retirement,
// after the final drain flush: the held points are deep-copied
// oldest-first into self-owned memory, so the retired ring's Len, Total
// and Snapshot keep working for callers holding the device — the drain
// contract — while the (much larger) pooled slabs go back to the shard
// for the next adoption. After detach the ring's capacity equals its
// held count and no further pushes may occur; the device's closed flag
// already guarantees that.
func (r *Ring) detach() (buf []Point, arena []float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	buf, arena = r.buf, r.arena
	n := r.n
	nb := make([]Point, n)
	na := make([]float64, n*r.chans)
	start := 0
	if n == len(r.buf) {
		start = r.next
	}
	for i := 0; i < n; i++ {
		src := &r.buf[(start+i)%len(r.buf)]
		nb[i] = *src
		nb[i].Watts = na[i*r.chans : (i+1)*r.chans : (i+1)*r.chans]
		copy(nb[i].Watts, src.Watts)
	}
	r.buf, r.arena, r.next = nb, na, 0
	return buf, arena
}

// Cap returns the ring's capacity: the construction capacity while the
// station lives, the held point count once retirement detached the ring
// onto exact-size backing. The lock orders it against that swap.
func (r *Ring) Cap() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Chans returns the per-point channel count.
func (r *Ring) Chans() int { return r.chans }

// Push records one downsampled point, evicting the oldest once the ring
// is full. watts must hold the per-channel block averages (exactly the
// ring's channel count); it is copied into the point's arena slot, so the
// caller may reuse its buffer. marks is the block's user-marker count.
// Push never allocates.
func (r *Ring) Push(t time.Duration, watts []float64, total, min, max float64, marks int) {
	r.mu.Lock()
	p := &r.buf[r.next]
	p.Time, p.Total, p.Min, p.Max, p.Marks = t, total, min, max, marks
	copy(p.Watts, watts)
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	if r.n < len(r.buf) {
		r.n++
	}
	r.total++
	r.mu.Unlock()
}

// PushN records k consecutive downsampled points under one lock
// acquisition — the ingest path collects the blocks completed within one
// step and pushes them together, instead of paying a lock round-trip per
// block. watts is sample-major with the ring's channel stride (point i's
// row is watts[i*chans:(i+1)*chans]); times, totals, mins, maxs and marks
// hold one entry per point. Like Push, PushN copies everything and never
// allocates.
func (r *Ring) PushN(times []time.Duration, watts []float64, totals, mins, maxs []float64, marks []int) {
	r.mu.Lock()
	for i, t := range times {
		p := &r.buf[r.next]
		p.Time, p.Total, p.Min, p.Max, p.Marks = t, totals[i], mins[i], maxs[i], marks[i]
		copy(p.Watts, watts[i*r.chans:(i+1)*r.chans])
		r.next++
		if r.next == len(r.buf) {
			r.next = 0
		}
		if r.n < len(r.buf) {
			r.n++
		}
	}
	r.total += uint64(len(times))
	r.mu.Unlock()
}

// Len returns the number of points currently held.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Total returns the number of points ever pushed; Total − Len is how many
// were evicted by wraparound.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// DrainInto copies the Time and Total columns of the points with push
// ordinals >= from into times and totals, oldest first, up to len(times)
// points. Ordinals are absolute push counts (Total-based), so a cursor
// held by the history tier survives any number of wraparounds: points
// the ring already overwrote are reported in missed rather than
// silently skipped. It returns the number of points copied, the count
// missed to wraparound, and the cursor to resume from. DrainInto copies
// scalars into caller-owned storage and never allocates — it is the
// pull side of the long-horizon history tier, called from sync paths,
// never from ingest.
func (r *Ring) DrainInto(from uint64, times []time.Duration, totals []float64) (n int, missed uint64, next uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	oldest := r.total - uint64(r.n)
	if from < oldest {
		missed = oldest - from
		from = oldest
	}
	if from >= r.total {
		return 0, missed, from
	}
	avail := int(r.total - from)
	if avail > len(times) {
		avail = len(times)
	}
	// Index of the oldest held point in buf.
	start := 0
	if r.n == len(r.buf) {
		start = r.next
	}
	// Skip points the cursor has already consumed.
	start = (start + int(from-oldest)) % len(r.buf)
	for i := 0; i < avail; i++ {
		src := &r.buf[(start+i)%len(r.buf)]
		times[i], totals[i] = src.Time, src.Total
	}
	return avail, missed, from + uint64(avail)
}

// Snapshot returns up to max of the most recent points, oldest first. A
// non-positive max returns everything held. The returned points are deep
// copies — their Watts rows are freshly backed, never views into the
// ring's recycled arena — so the caller owns them outright across any
// number of further pushes.
func (r *Ring) Snapshot(max int) []Point {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.n
	if max > 0 && max < n {
		n = max
	}
	if n == 0 {
		return nil
	}
	out := make([]Point, n)
	watts := make([]float64, n*r.chans)
	// Oldest-first order starts at r.next when full, at 0 while filling.
	start := 0
	if r.n == len(r.buf) {
		start = r.next
	}
	// Skip (held-n) oldest entries when a cap was requested.
	start = (start + r.n - n) % len(r.buf)
	for i := 0; i < n; i++ {
		src := &r.buf[(start+i)%len(r.buf)]
		out[i] = *src
		out[i].Watts = watts[i*r.chans : (i+1)*r.chans : (i+1)*r.chans]
		copy(out[i].Watts, src.Watts)
	}
	return out
}
