// Package fleet runs many measurement stations concurrently — the
// multi-rig counterpart of internal/core's single-sensor host library.
//
// A Manager owns N named stations (assembled by internal/simsetup),
// advances each in its own goroutine on its virtual-time clock, and
// ingests every station's sample stream in batches through the
// internal/source layer — so heterogeneous backends coexist in one fleet:
// 20 kHz PowerSensor3 rigs next to 10 Hz NVML counters and 1 kHz RAPL
// meters. Samples are downsampled on the fly into fixed-capacity ring
// buffers (one per station), with block sizes derived from each source's
// native rate so ring points cover comparable time windows, and fanned
// out to subscribers; per-station health counters (stream resyncs,
// dropped fan-out points) make a running fleet observable.
// internal/export serves the manager over HTTP.
package fleet

import (
	"sync"
	"time"
)

// Point is one downsampled ring entry: the block statistics of one
// block's worth of consecutive native-rate samples.
type Point struct {
	// Time is the device time of the last sample in the block.
	Time time.Duration `json:"t"`
	// Watts is the per-pair block-average power.
	Watts []float64 `json:"w"`
	// Total is the block-average of the summed (board) power.
	Total float64 `json:"total"`
	// Min and Max bound the summed power within the block, preserving the
	// peaks that averaging alone would erase.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// Ring is a fixed-capacity overwrite-oldest buffer of Points with one
// writer and any number of readers. The lock is held only to copy a single
// Point in or a bounded batch out, so ingest stays cheap: the 20 kHz path
// touches the ring once per downsample block, not once per sample.
type Ring struct {
	mu    sync.Mutex
	buf   []Point
	next  int    // buf index the next push writes
	total uint64 // points ever pushed
}

// NewRing returns a ring holding the last capacity points. It panics if
// capacity is not positive.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic("fleet: NewRing with non-positive capacity")
	}
	return &Ring{buf: make([]Point, 0, capacity)}
}

// Cap returns the ring's fixed capacity.
func (r *Ring) Cap() int { return cap(r.buf) }

// Push appends p, evicting the oldest point once the ring is full.
func (r *Ring) Push(p Point) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, p)
	} else {
		r.buf[r.next] = p
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
	r.mu.Unlock()
}

// Len returns the number of points currently held.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Total returns the number of points ever pushed; Total − Len is how many
// were evicted by wraparound.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns up to max of the most recent points, oldest first. A
// non-positive max returns everything held. The returned slice is the
// caller's to keep across further pushes, but each Point's Watts slice is
// shared with every other reader of the same point — ring snapshots and
// subscriber fan-out — and must be treated as read-only (Device.Trace
// deep-copies it before handing points outside the package).
func (r *Ring) Snapshot(max int) []Point {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.buf)
	if max > 0 && max < n {
		n = max
	}
	if n == 0 {
		return nil
	}
	out := make([]Point, n)
	// Oldest-first order starts at r.next when full, at 0 while filling.
	start := 0
	if len(r.buf) == cap(r.buf) {
		start = r.next
	}
	// Skip (len-n) oldest entries when a cap was requested.
	start = (start + len(r.buf) - n) % len(r.buf)
	for i := 0; i < n; i++ {
		out[i] = r.buf[(start+i)%len(r.buf)]
	}
	return out
}
