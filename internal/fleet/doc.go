// Package fleet runs many measurement stations concurrently — the
// multi-rig counterpart of internal/core's single-sensor host library.
//
// A Manager owns N named stations (assembled by internal/simsetup),
// advances each in its own goroutine on its virtual-time clock, and
// ingests every station's sample stream in columnar batches through the
// internal/source layer — so heterogeneous backends coexist in one fleet:
// 20 kHz PowerSensor3 rigs next to 10 Hz NVML counters and 1 kHz RAPL
// meters. Samples are downsampled on the fly into fixed-capacity ring
// buffers (one per station), with block sizes derived from each source's
// native rate so ring points cover comparable time windows, and fanned
// out to subscribers; per-station health counters (stream resyncs,
// dropped fan-out points) make a running fleet observable. Fleets are
// dynamic: stations hot-add against a running manager and retire from it
// (Manager.Remove) without perturbing concurrent snapshots, scrapes or
// surviving stations — each station walks an explicit lifecycle
// (adopted → started → stopping → closed) whose retirement path drains
// the in-flight downsample block before subscriptions close. The ingest
// path is allocation-free in steady state: batches reuse caller-owned
// columns, block accumulators are fixed-size, and ring points write into
// a preallocated flat arena. internal/export serves the manager over
// HTTP.
//
// # Fault injection & station health
//
// Real fleets fail one station at a time: a USB link drops samples, a
// stuck sensor register serves the same reading at full rate, a flaky
// supply glitches single samples, a meter's clock drifts. The
// internal/pipeline fault stages (dropout, stuck, spike, skew, jitter —
// see simsetup.ParseFleet for the kindspec grammar) reproduce those
// failure modes deterministically from the station seed, and the fleet's
// per-station health watchdog detects them from the ingest side, so
// failure-handling behaviour is testable end to end without hardware.
//
// The watchdog runs three detectors on the ingest hot path, all
// allocation-free: gap detection on per-step delivery accounting against
// the backend's declared rate, flatline detection on runs of
// bit-identical downsample blocks, and spike quarantine — an isolated
// sample deviating from both (agreeing) neighbours by many times the
// learned noise scale is replaced by their midpoint before it can reach
// the ring, the published watts or the energy accounting. The detectors
// drive Status.Health through four states, ordered by severity;
// downgrades apply immediately, upgrades hold for a recovery window so a
// flapping fault pins the station at its worst recent state:
//
//	          gap episode opens, or
//	          spike quarantined recently
//	healthy ──────────────────────────▶ degraded
//	    ▲  ◀──────────────────────────     │
//	    │     clean for recover window     │
//	    │                                  │ flatRunFor identical
//	    │ flat run broken,                 ▼ blocks
//	    ├───────────────────────────── flatlined
//	    │     held for recovery
//	    │                                  │ silence ≥ StaleAfter, or
//	    │ samples flowing again,           ▼ read error / backoff / parked
//	    └─────────────────────────────── stale
//	          held for recovery
//
// A source whose ReadInto errors or goes silent (and advertises
// source.Restarter) enters a bounded restart-with-backoff cycle: the
// watchdog stops reading it for a doubling backoff window, attempts a
// Restart, and — after a fixed budget of failed cycles — parks it
// permanently, so a dead backend costs its own station and nothing else.
// Every transition appends a typed event to the fleet's lifecycle ring
// (Manager.Events), and internal/export serves the health rank and the
// episode counters as the powersensor_station_* metric families.
package fleet
