package fleet

// Integration of the derived-source pipeline layer with fleet ingest:
// the acceptance zero-allocation guard for stage chains, marker survival
// through Resample plus fleet downsampling (extending the PR 4
// regression), and derived-rate block sizing.

import (
	"testing"
	"time"

	"repro/internal/pipeline"
)

// TestPipelineIngestSteadyStateZeroAlloc is the acceptance contract for
// derived stations: steady-state ingest through a three-stage chain
// (Resample → Calibrate → Smooth over a 20 kHz source) allocates nothing
// once batch arrays and the ring arena are warm.
func TestPipelineIngestSteadyStateZeroAlloc(t *testing.T) {
	src := pipeline.Chain(&stubSource{},
		pipeline.Resample(1000),
		pipeline.Calibrate(0.98, 0.25),
		pipeline.Smooth(5*time.Millisecond))
	m := NewManager(Config{})
	if _, err := m.Add("dev0", "stub|chain3", src); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	m.StepAll(200 * time.Millisecond) // warm every stage and the ring
	allocs := testing.AllocsPerRun(100, func() {
		m.StepAll(5 * time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("steady-state chained ingest allocates %v per step, want 0", allocs)
	}
}

// TestPipelineDerivedBlockSizing pins the no-fleet-changes pacing
// contract: a derived station's downsample block size follows the
// stage-rewritten Meta.RateHz, so a 1 kHz view of a 20 kHz source gets
// 1-sample blocks at the default 1 ms point period and its ring fills at
// the derived rate.
func TestPipelineDerivedBlockSizing(t *testing.T) {
	src := pipeline.Chain(&stubSource{}, pipeline.Resample(1000))
	m := NewManager(Config{})
	d, err := m.Add("dev0", "stub|resample", src)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	if d.Meta().RateHz != 1000 || d.Meta().Backend != "stub+resample" {
		t.Fatalf("derived meta not adopted: %+v", d.Meta())
	}
	m.StepAll(time.Second)
	st := d.Status()
	// 1000 resampled samples over one virtual second, one per ring point.
	if st.Samples != 1000 {
		t.Errorf("samples = %d, want 1000 at the derived rate", st.Samples)
	}
	if st.RingTotal != 1000 {
		t.Errorf("ring total = %d, want 1000 (block size 1 at 1 kHz)", st.RingTotal)
	}
	// The resampled constant-60 W stream keeps the stub's power level.
	if st.Watts != 60 {
		t.Errorf("watts = %v, want 60", st.Watts)
	}
}

// TestMarkerSurvivesResampleAndDownsampling extends the PR 4 marker
// regression through the pipeline layer: one marked 20 kHz sample must
// survive Resample's 20-to-1 bin averaging AND the fleet's block
// downsampling — surfacing in the right ring point, the device trace and
// the station's marker counter.
func TestMarkerSurvivesResampleAndDownsampling(t *testing.T) {
	// Mark raw sample 27: resample bins raw 21..40 into derived sample 2
	// (t = 2 ms); block-2 downsampling folds derived samples 1..2 into
	// ring point 0.
	src := pipeline.Chain(&stubSource{markAt: 27}, pipeline.Resample(1000))
	m := NewManager(Config{PointPeriod: 2 * time.Millisecond})
	d, err := m.Add("dev0", "stub|resample", src)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	m.StepAll(10 * time.Millisecond) // 200 raw samples, 10 derived, 5 points

	pts := d.Ring().Snapshot(0)
	if len(pts) != 5 {
		t.Fatalf("ring holds %d points, want 5", len(pts))
	}
	for i, p := range pts {
		want := 0
		if i == 0 {
			want = 1
		}
		if p.Marks != want {
			t.Errorf("ring point %d: marks = %d, want %d", i, p.Marks, want)
		}
	}
	tr := d.Trace(0)
	if len(tr.Points) != 5 || tr.Points[0].Marker != 'M' || tr.Points[1].Marker != 0 {
		t.Errorf("trace markers wrong: %+v", tr.Points)
	}
	if st := d.Status(); st.Marks != 1 {
		t.Errorf("status marks = %d, want 1", st.Marks)
	}
}

// TestOverheadPublished: a rate-limited source's sampling-overhead
// accounting reaches Status through the lock-free publication path.
func TestOverheadPublished(t *testing.T) {
	src := pipeline.Chain(&stubSource{}, pipeline.RateLimit(1000))
	m := NewManager(Config{})
	d, err := m.Add("dev0", "stub|ratelimit", src)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	m.StepAll(100 * time.Millisecond)
	if st := d.Status(); st.OverheadSeconds <= 0 {
		t.Errorf("overhead = %v, want > 0 after 100ms of rate-limited ingest", st.OverheadSeconds)
	}
	// A station without overhead accounting publishes zero.
	d2, err := m.Add("dev1", "stub", &stubSource{})
	if err != nil {
		t.Fatal(err)
	}
	m.StepAll(10 * time.Millisecond)
	if st := d2.Status(); st.OverheadSeconds != 0 {
		t.Errorf("plain source overhead = %v, want 0", st.OverheadSeconds)
	}
}

// TestGenTracksBlocksAndChurn pins Manager.Gen's invalidation contract:
// the fingerprint is stable while no station completes a block, and
// changes on new blocks, adoption and retirement.
func TestGenTracksBlocksAndChurn(t *testing.T) {
	m := NewManager(Config{})
	if _, err := m.Add("dev0", "stub", &stubSource{}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	m.StepAll(50 * time.Millisecond)

	g1 := m.Gen()
	if g2 := m.Gen(); g2 != g1 {
		t.Errorf("Gen unstable with no new blocks: %d vs %d", g1, g2)
	}
	m.StepAll(5 * time.Millisecond) // completes blocks
	g3 := m.Gen()
	if g3 == g1 {
		t.Error("Gen did not change after new blocks")
	}
	if _, err := m.Add("dev1", "stub", &stubSource{}); err != nil {
		t.Fatal(err)
	}
	g4 := m.Gen()
	if g4 == g3 {
		t.Error("Gen did not change on adoption")
	}
	if err := m.Remove("dev1"); err != nil {
		t.Fatal(err)
	}
	if g5 := m.Gen(); g5 == g4 {
		t.Error("Gen did not change on retirement")
	}
}
