package fleet

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/simsetup"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Status is a point-in-time health and measurement snapshot of one station.
type Status struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Pairs is the number of active sensor pairs on the station's sensor.
	Pairs int `json:"pairs"`
	// Now is the station's virtual time.
	Now time.Duration `json:"now"`
	// Watts is the summed board power of the latest downsampled ring
	// point — a block average rather than one raw 20 kHz sample, since a
	// single sample is dominated by quantisation noise on lightly loaded
	// rails (the Table II effect). PairWatts splits it per sensor pair.
	Watts     float64   `json:"watts"`
	PairWatts []float64 `json:"pair_watts"`
	// Joules is the cumulative energy over all pairs since the fleet
	// adopted the station.
	Joules float64 `json:"joules"`
	// Samples counts 20 kHz sample sets ingested.
	Samples uint64 `json:"samples"`
	// Resyncs counts stream bytes skipped to regain protocol alignment —
	// nonzero values indicate a corrupted or lossy link.
	Resyncs int `json:"resyncs"`
	// Dropped counts subscriber deliveries discarded because the target
	// channel was full — one increment per slow subscriber per point, so
	// with several lagging subscribers it exceeds the number of distinct
	// points lost.
	Dropped uint64 `json:"dropped"`
	// RingLen and RingTotal describe the station's ring buffer: points
	// currently held and points ever produced.
	RingLen   int    `json:"ring_len"`
	RingTotal uint64 `json:"ring_total"`
}

// Device is one managed station: an instrument plus the fleet's ingest
// state. All instrument access is serialised by mu; the manager's per-device
// goroutine holds it while advancing virtual time, and snapshot/subscribe
// calls hold it briefly from other goroutines.
type Device struct {
	name string
	kind string
	ring *Ring

	mu      sync.Mutex
	inst    simsetup.Instrument
	hook    core.HookID
	block   int // sample sets per ring point
	pairs   int
	baseJ   float64 // cumulative joules at adoption, subtracted from Status
	samples uint64
	dropped uint64
	closed  bool

	// in-flight downsample block, maintained by the ingest hook: the
	// summed power is buffered (Summarize needs the block for min/max),
	// per-pair power only needs running sums for the block mean.
	accTotal []float64 // summed power per sample set
	pairSums []float64 // running per-pair power sums
	accTime  time.Duration

	subs   map[int]chan Point
	nextID int
}

func newDevice(name, kind string, inst simsetup.Instrument, block, ringCap int) *Device {
	d := &Device{
		name:  name,
		kind:  kind,
		inst:  inst,
		block: block,
		pairs: inst.Sensor().Pairs(),
		ring:  NewRing(ringCap),
		subs:  make(map[int]chan Point),
	}
	d.pairSums = make([]float64, d.pairs)
	st := inst.Sensor().Read()
	for m := 0; m < core.MaxPairs; m++ {
		d.baseJ += st.ConsumedJoules[m]
	}
	// The hook runs on the goroutine calling Advance, which already holds
	// d.mu — it must not lock.
	d.hook = inst.Sensor().AttachSample(d.ingest)
	return d
}

// Name returns the station's fleet name.
func (d *Device) Name() string { return d.name }

// Kind returns the station's spec kind (e.g. "rtx4000ada").
func (d *Device) Kind() string { return d.kind }

// Ring returns the station's downsampled ring buffer.
func (d *Device) Ring() *Ring { return d.ring }

// ingest folds one 20 kHz sample set into the in-flight downsample block
// and emits a ring point every block samples. Called with d.mu held (via
// Advance inside step).
func (d *Device) ingest(s core.Sample) {
	d.samples++
	var total float64
	for m := 0; m < d.pairs; m++ {
		total += s.Watts[m]
		d.pairSums[m] += s.Watts[m]
	}
	d.accTotal = append(d.accTotal, total)
	d.accTime = s.DeviceTime
	if len(d.accTotal) < d.block {
		return
	}
	sum := stats.Summarize(d.accTotal)
	p := Point{
		Time:  d.accTime,
		Watts: make([]float64, d.pairs),
		Total: sum.Mean,
		Min:   sum.Min,
		Max:   sum.Max,
	}
	for m := 0; m < d.pairs; m++ {
		p.Watts[m] = d.pairSums[m] / float64(len(d.accTotal))
		d.pairSums[m] = 0
	}
	d.accTotal = d.accTotal[:0]
	d.ring.Push(p)
	for _, ch := range d.subs {
		select {
		case ch <- p:
		default:
			d.dropped++
		}
	}
}

// step advances the station by dt of virtual time, ingesting whatever the
// sensor streamed.
func (d *Device) step(dt time.Duration) {
	d.mu.Lock()
	if !d.closed {
		d.inst.Advance(dt)
	}
	d.mu.Unlock()
}

// Status returns a consistent snapshot of the station.
func (d *Device) Status() Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	sensor := d.inst.Sensor()
	st := sensor.Read()
	out := Status{
		Name:      d.name,
		Kind:      d.kind,
		Pairs:     d.pairs,
		Now:       d.inst.Now(),
		PairWatts: make([]float64, d.pairs),
		Samples:   d.samples,
		Resyncs:   sensor.Resyncs(),
		Dropped:   d.dropped,
		RingLen:   d.ring.Len(),
		RingTotal: d.ring.Total(),
	}
	if last := d.ring.Snapshot(1); len(last) == 1 {
		copy(out.PairWatts, last[0].Watts)
		out.Watts = last[0].Total
	} else {
		// Ring still empty: fall back to the raw instantaneous sample.
		for m := 0; m < d.pairs; m++ {
			out.PairWatts[m] = st.Watts[m]
			out.Watts += st.Watts[m]
		}
	}
	for m := 0; m < core.MaxPairs; m++ {
		out.Joules += st.ConsumedJoules[m]
	}
	out.Joules -= d.baseJ
	return out
}

// Subscribe registers a fan-out channel carrying every future ring point.
// buffer is the channel depth; when the subscriber falls behind, points are
// dropped (counted in Status.Dropped) rather than stalling ingest. The
// returned cancel function unregisters and closes the channel. Subscribing
// to a closed device returns an already-closed channel. Received Points
// share their Watts slice with the ring and other subscribers — treat it
// as read-only.
func (d *Device) Subscribe(buffer int) (<-chan Point, func()) {
	if buffer < 1 {
		buffer = 1
	}
	ch := make(chan Point, buffer)
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	id := d.nextID
	d.nextID++
	d.subs[id] = ch
	d.mu.Unlock()
	return ch, func() {
		d.mu.Lock()
		if _, ok := d.subs[id]; ok {
			delete(d.subs, id)
			close(ch)
		}
		d.mu.Unlock()
	}
}

// Trace renders up to max of the most recent ring points as a trace.Trace,
// ready for the CSV/JSON writers. A non-positive max exports the whole
// ring. The trace's samples are the downsampled block averages, so its
// effective rate is 20 kHz / block.
func (d *Device) Trace(max int) *trace.Trace {
	pts := d.ring.Snapshot(max)
	tr := &trace.Trace{Pairs: d.pairs}
	for _, p := range pts {
		tr.Points = append(tr.Points, trace.Point{
			Time:   p.Time,
			Watts:  append([]float64(nil), p.Watts...),
			TotalW: p.Total,
		})
	}
	return tr
}

// close detaches the ingest hook, closes subscriber channels and releases
// the sensor.
func (d *Device) close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	d.closed = true
	d.inst.Sensor().DetachSample(d.hook)
	for id, ch := range d.subs {
		delete(d.subs, id)
		close(ch)
	}
	d.inst.Close()
}
