package fleet

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/source"
	"repro/internal/trace"
)

// devState is a station's lifecycle state. A device moves strictly
// forward through retirement (stopping, closed are terminal); adopted and
// started alternate with the manager's Start/Stop cycles.
type devState int32

const (
	// devAdopted: owned by a manager, no driver goroutine attached.
	devAdopted devState = iota
	// devStarted: a manager driver goroutine is advancing it.
	devStarted
	// devStopping: retirement begun — the driver is gone (or going) and
	// the in-flight downsample block is draining into the ring.
	devStopping
	// devClosed: drained; subscriptions closed, source released.
	devClosed
)

func (s devState) String() string {
	switch s {
	case devAdopted:
		return "adopted"
	case devStarted:
		return "started"
	case devStopping:
		return "stopping"
	case devClosed:
		return "closed"
	}
	return "unknown"
}

// Status is a point-in-time health and measurement snapshot of one station.
type Status struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Backend names the measurement backend serving the station —
	// "powersensor3" for instrumented rigs, "nvml"/"amdsmi"/"ina3221"/
	// "rapl" for the software meters.
	Backend string `json:"backend"`
	// RateHz is the backend's native sample rate.
	RateHz float64 `json:"rate_hz"`
	// Channels labels the station's measurement channels (sensor pairs
	// on a PowerSensor3 rig, the single counter of a software meter).
	// The slice is the caller's own copy — mutating it cannot affect the
	// device or other snapshots.
	Channels []string `json:"channels"`
	// Pairs is the number of measurement channels.
	Pairs int `json:"pairs"`
	// Now is the station's virtual time.
	Now time.Duration `json:"now"`
	// Watts is the summed board power of the latest downsampled ring
	// point — a block average rather than one raw sample, since a
	// single sample is dominated by quantisation noise on lightly loaded
	// rails (the Table II effect). PairWatts splits it per channel.
	Watts     float64   `json:"watts"`
	PairWatts []float64 `json:"pair_watts"`
	// Joules is the cumulative energy over all channels since the fleet
	// adopted the station, as integrated by the backend itself.
	Joules float64 `json:"joules"`
	// State is the station's lifecycle state: "adopted" (owned, not
	// driven), "started" (a driver goroutine is advancing it), "stopping"
	// (retirement drain in progress) or "closed" (retired, source
	// released).
	State string `json:"state"`
	// Samples counts native-rate sample sets ingested.
	Samples uint64 `json:"samples"`
	// Marks counts the time-synced user markers ingested — samples the
	// PowerSensor3 firmware flagged in response to a host marker command.
	Marks uint64 `json:"marks"`
	// Resyncs counts stream bytes skipped to regain protocol alignment —
	// nonzero values indicate a corrupted or lossy link. Always zero for
	// software meters.
	Resyncs int `json:"resyncs"`
	// OverheadSeconds is the cumulative wall time the station's source
	// spent sampling inside ReadInto — the measurement's own footprint on
	// the measured system. Zero for sources without overhead accounting
	// (see source.Overheader); pipeline.RateLimit stages account it.
	OverheadSeconds float64 `json:"overhead_seconds"`
	// Dropped counts subscriber deliveries discarded because the target
	// channel was full — one increment per slow subscriber per point, so
	// with several lagging subscribers it exceeds the number of distinct
	// points lost.
	Dropped uint64 `json:"dropped"`
	// RingLen and RingTotal describe the station's ring buffer: points
	// currently held and points ever produced.
	RingLen   int    `json:"ring_len"`
	RingTotal uint64 `json:"ring_total"`
	// Health is the watchdog's verdict on the station's series:
	// "healthy", "degraded" (open gap episode or recent spike
	// quarantine), "flatlined" (a run of bit-identical totals far beyond
	// the backend's noise floor) or "stale" (no samples for
	// Config.StaleAfter, erroring reads, or a parked source). See
	// internal/fleet/health.go for the state machine and hysteresis.
	Health string `json:"health"`
	// Gaps and Flatlines count detected fault episodes (not samples):
	// each opens once and must recover before it can count again.
	Gaps      uint64 `json:"gaps"`
	Flatlines uint64 `json:"flatlines"`
	// SpikesQuarantined counts samples the robust outlier gate replaced
	// by their neighbour midpoint before they reached the ring.
	SpikesQuarantined uint64 `json:"spikes_quarantined"`
	// Restarts counts watchdog recovery attempts on the source after read
	// errors or sustained silence.
	Restarts uint64 `json:"restarts"`
}

// pub is the device's published telemetry: one atomic cell per Status
// field that changes while the fleet runs. The ingest goroutine refreshes
// the cells at block boundaries and at the end of every step, and readers
// assemble a Status from plain atomic loads — so Status()/Snapshot()
// never touch the ingest mutex, and a stalled scraper can never stall a
// 20 kHz station.
//
// Per-field atomics (rather than an atomically swapped snapshot struct)
// keep the refresh allocation-free: republishing a fresh snapshot object
// per block would put one heap allocation on the steady-state ingest
// path. The price is that a reader may observe fields from two adjacent
// blocks; each field is itself always a complete, valid value, which is
// all a telemetry scrape needs.
type pub struct {
	state     atomic.Int32 // devState
	samples   atomic.Uint64
	marks     atomic.Uint64
	dropped   atomic.Uint64
	nowNanos  atomic.Int64
	joules    atomic.Uint64 // math.Float64bits
	overhead  atomic.Int64  // cumulative sampling overhead, nanoseconds
	resyncs   atomic.Int64
	watts     atomic.Uint64 // math.Float64bits
	pair      [source.MaxChannels]atomic.Uint64
	ringLen   atomic.Int64
	ringTotal atomic.Uint64
	health    atomic.Int32 // healthHealthy..healthStale rank
	gaps      atomic.Uint64
	flatlines atomic.Uint64
	spikesQ   atomic.Uint64
	restarts  atomic.Uint64
	// wdGen counts watchdog publications: bumped whenever health or any
	// episode counter changes. ShardGen folds it next to ringTotal so a
	// health transition invalidates the station's cached exposition
	// segment even when the station has stopped producing blocks — the
	// stale and parked states are exactly the frozen-ringTotal case.
	wdGen atomic.Uint64
}

// Device is one managed station: a streaming measurement source plus the
// fleet's ingest state. All source access is serialised by mu; the
// manager's per-device goroutine holds it while advancing virtual time.
// Snapshots never take mu — they read the atomically published telemetry
// cells instead — so scraping a fleet of hundreds of stations cannot
// block any station's ingest.
type Device struct {
	name string
	kind string
	meta source.Meta // Channels is the device's own immutable copy
	ring *Ring

	// retire is closed — exactly once, by Manager.Remove, which first
	// claims the device by deleting it from the name index — to stop this
	// device's driver goroutine independently of the run-wide stop channel.
	retire chan struct{}
	// driveDone is the current run's driver-exit signal: assigned when a
	// driver goroutine launches, closed when it returns. Read and written
	// only under the manager's mu; nil until the device is first driven.
	driveDone chan struct{}

	// pool is the home shard's memory pool, nil when the device was built
	// without one (direct construction in tests). Pooled devices carve
	// their ring backing and batch columns from the shard's slabs at
	// adoption and return them at close, so stations stepped together sit
	// adjacent in memory and a churny fleet recycles instead of growing.
	pool *memPool

	mu      sync.Mutex
	src     source.Source
	ov      source.Overheader // src's overhead accounting, nil without one
	batch   source.Batch      // reused columnar buffer ReadInto fills each step
	block   int               // samples per ring point, derived from the native rate
	chans   int
	baseJ   float64 // cumulative joules at adoption, subtracted from Status
	samples uint64
	marks   uint64
	dropped uint64
	closed  bool

	// In-flight downsample block: running sum/min/max of the summed power
	// plus per-channel running sums — fixed-size accumulators, so folding
	// a block performs no appends and no allocations.
	accN                   int
	accMarks               int
	accSum, accMin, accMax float64
	pairSums               [source.MaxChannels]float64
	scratch                [source.MaxChannels]float64 // latest block's per-channel means
	accMean                float64                     // latest block's summed-power mean
	emitted                bool                        // block completed since last publish
	ringTotal              uint64

	// Completed-point staging: blocks finished within one step collect
	// here and reach the ring in a single PushN, one lock round-trip per
	// step instead of one per block.
	pendN     int
	pendTime  [pendCap]time.Duration
	pendTotal [pendCap]float64
	pendMin   [pendCap]float64
	pendMax   [pendCap]float64
	pendMarks [pendCap]int
	pendWatts [pendCap * source.MaxChannels]float64

	subs   map[int]chan Point
	nextID int

	// Fold-latency instrumentation: the manager's shared histogram plus
	// this device's step counter selecting which steps get timed (see
	// foldSampleEvery). Contention on the shared histogram is negligible —
	// one atomic add per sampled step, not per sample.
	foldHist *obs.Hist
	stepN    uint64

	// Health watchdog state (see health.go) and the fleet event ring its
	// transitions append to — nil for directly constructed test devices.
	wd     watchdog
	events *obs.EventRing

	// Long-horizon history tier (see history.go in this package): the
	// compressed series the ring drains into on sync passes, nil when
	// Config.HistoryBytes disables it. The latency histograms are the
	// manager's shared ones, nil on directly constructed test devices.
	hist                  *deviceHistory
	histAppend, histQuery *obs.Hist

	pub pub
}

// newDevice adopts src. cfg.PointPeriod is the target time width of one
// ring point; the per-source block size is derived from it and the
// source's native rate, so a 20 kHz sensor averages hundreds of samples
// per point while a 10 Hz software meter contributes every sample it has.
// When pool is non-nil the ring backing and batch columns are carved from
// it — the shard-local slabs that keep co-stepped stations adjacent in
// memory — with the batch pre-sized for the samples one slice of virtual
// time produces at the source's native rate. events receives the health
// watchdog's transition events; nil (direct test construction) drops
// them.
func newDevice(name, kind string, src source.Source, cfg Config, foldHist *obs.Hist, pool *memPool, events *obs.EventRing) *Device {
	meta := src.Meta()
	// The device keeps its own copy of the channel labels: neither the
	// source nor any Status consumer can mutate it from under the fleet.
	meta.Channels = append([]string(nil), meta.Channels...)
	block := int(math.Round(meta.RateHz * cfg.PointPeriod.Seconds()))
	if block < 1 {
		block = 1
	}
	d := &Device{
		name:     name,
		kind:     kind,
		meta:     meta,
		retire:   make(chan struct{}),
		pool:     pool,
		src:      src,
		block:    block,
		chans:    len(meta.Channels),
		baseJ:    src.Joules(),
		subs:     make(map[int]chan Point),
		foldHist: foldHist,
		events:   events,
	}
	d.ov, _ = src.(source.Overheader)
	d.hist = newHistoryFor(cfg)
	d.initWatchdog(cfg)
	if pool != nil {
		// Expected samples per step, padded: sources may round a slice up
		// to whole sample periods, and a small margin keeps one extra
		// sample from pushing the columns off-slab.
		batchSamples := int(math.Ceil(meta.RateHz*cfg.Slice.Seconds())) + 8
		mem := pool.grab(cfg.RingCap, d.chans, batchSamples)
		d.ring = newRingWith(cfg.RingCap, d.chans, mem.ringBuf, mem.ringArena)
		d.batch.Time = mem.batchTime[:0]
		d.batch.Chans = mem.batchChans[:0]
		d.batch.Total = mem.batchTotal[:0]
		d.batch.Marks = mem.batchMarks[:0]
	} else {
		d.ring = NewRing(cfg.RingCap, d.chans)
	}
	d.pub.nowNanos.Store(int64(src.Now()))
	d.pub.resyncs.Store(int64(src.Resyncs()))
	return d
}

// Name returns the station's fleet name.
func (d *Device) Name() string { return d.name }

// Kind returns the station's spec kind (e.g. "rtx4000ada", "nvml").
func (d *Device) Kind() string { return d.kind }

// Meta returns the station's measurement source metadata.
func (d *Device) Meta() source.Meta { return d.meta }

// Ring returns the station's downsampled ring buffer.
func (d *Device) Ring() *Ring { return d.ring }

// ingestBatch folds a columnar batch into the in-flight downsample block,
// emitting a ring point at every block boundary. It walks each column in
// boundary-bounded runs — no per-sample dispatch, no appends, no
// allocations — with the reduction loops two-way unrolled into
// independent accumulators so they are not serialised on a single
// floating-point add chain. Called with d.mu held (via step).
func (d *Device) ingestBatch(b *source.Batch) {
	n := b.Len()
	if n == 0 {
		return
	}
	d.samples += uint64(n)
	totals := b.Total
	times := b.Time
	chans := b.Chans
	stride := d.chans
	marks := b.Marks
	mk := 0 // cursor into marks (ascending sample indices)
	for i := 0; i < n; {
		run := d.block - d.accN
		if rem := n - i; rem < run {
			run = rem
		}
		// Summed-power column: running sum and block min/max.
		seg := totals[i : i+run]
		lo, hi := d.accMin, d.accMax
		if d.accN == 0 {
			lo, hi = seg[0], seg[0]
		}
		var sumA, sumB float64
		j := 0
		for ; j+1 < len(seg); j += 2 {
			a, b2 := seg[j], seg[j+1]
			sumA += a
			sumB += b2
			if a < lo {
				lo = a
			}
			if a > hi {
				hi = a
			}
			if b2 < lo {
				lo = b2
			}
			if b2 > hi {
				hi = b2
			}
		}
		if j < len(seg) {
			a := seg[j]
			sumA += a
			if a < lo {
				lo = a
			}
			if a > hi {
				hi = a
			}
		}
		d.accSum += sumA + sumB
		d.accMin, d.accMax = lo, hi
		// Per-channel columns: running sums, with the common strides
		// specialised so the inner loop carries no bounds rechecks.
		switch stride {
		case 1:
			row := chans[i : i+run]
			var s0, s1 float64
			j := 0
			for ; j+1 < len(row); j += 2 {
				s0 += row[j]
				s1 += row[j+1]
			}
			if j < len(row) {
				s0 += row[j]
			}
			d.pairSums[0] += s0 + s1
		case 3:
			row := chans[i*3 : (i+run)*3]
			var s0, s1, s2, t0, t1, t2 float64
			j := 0
			for ; j+5 < len(row); j += 6 {
				s0 += row[j]
				s1 += row[j+1]
				s2 += row[j+2]
				t0 += row[j+3]
				t1 += row[j+4]
				t2 += row[j+5]
			}
			if j < len(row) {
				s0 += row[j]
				s1 += row[j+1]
				s2 += row[j+2]
			}
			d.pairSums[0] += s0 + t0
			d.pairSums[1] += s1 + t1
			d.pairSums[2] += s2 + t2
		default:
			for j := i; j < i+run; j++ {
				row := chans[j*stride : j*stride+stride]
				for m, w := range row {
					d.pairSums[m] += w
				}
			}
		}
		// Marker column: count the time-synced markers landing in this
		// run, so they survive downsampling into the block's ring point
		// instead of being averaged away. Marks is empty in steady state,
		// so this is a no-op comparison per run.
		for mk < len(marks) && marks[mk] < i+run {
			d.accMarks++
			d.marks++
			mk++
		}
		d.accN += run
		i += run
		if d.accN == d.block {
			d.emit(times[i-1])
		}
	}
}

// pendCap bounds the completed points staged between ring flushes: the
// default config completes five blocks per step, so one flush per step
// is the steady state and long catch-up steps flush every pendCap blocks.
const pendCap = 8

// emit closes the in-flight block: its means go to the staging area (and
// to scratch, for publication at the end of the step), reaching the ring
// in batched PushN flushes. Nothing here allocates or locks; fan-out to
// subscribers happens at flush. Publication of the block averages is
// likewise deferred to the end of the step — atomic stores are
// sequentially-consistent exchanges on most architectures, too expensive
// to pay per block when one refresh per step gives readers the same
// freshness.
func (d *Device) emit(t time.Duration) {
	inv := 1 / float64(d.accN)
	mean := d.accSum * inv
	w := d.pendWatts[d.pendN*d.chans : (d.pendN+1)*d.chans]
	for m := 0; m < d.chans; m++ {
		mw := d.pairSums[m] * inv
		w[m] = mw
		d.scratch[m] = mw
		d.pairSums[m] = 0
	}
	d.pendTime[d.pendN] = t
	d.pendTotal[d.pendN] = mean
	d.pendMin[d.pendN] = d.accMin
	d.pendMax[d.pendN] = d.accMax
	d.pendMarks[d.pendN] = d.accMarks
	d.pendN++
	d.observeFlat()
	d.accMean = mean
	d.emitted = true
	if d.pendN == pendCap {
		d.flush()
	}
	d.accN = 0
	d.accMarks = 0
	d.accSum = 0
}

// flush moves the staged points into the ring under one lock acquisition
// and fans them out to subscribers. Fan-out is the only allocating path
// left in ingest, and only when subscribers are attached: each delivered
// point needs its own Watts copy, since ring slots and the staging area
// are both recycled. Called with d.mu held, at staging capacity and at
// the end of every step.
func (d *Device) flush() {
	if d.pendN == 0 {
		return
	}
	n := d.pendN
	d.ring.PushN(d.pendTime[:n], d.pendWatts[:n*d.chans],
		d.pendTotal[:n], d.pendMin[:n], d.pendMax[:n], d.pendMarks[:n])
	d.ringTotal += uint64(n)
	if len(d.subs) > 0 {
		for i := 0; i < n; i++ {
			watts := make([]float64, d.chans)
			copy(watts, d.pendWatts[i*d.chans:(i+1)*d.chans])
			p := Point{Time: d.pendTime[i], Watts: watts,
				Total: d.pendTotal[i], Min: d.pendMin[i], Max: d.pendMax[i],
				Marks: d.pendMarks[i]}
			for _, ch := range d.subs {
				select {
				case ch <- p:
				default:
					d.dropped++
				}
			}
		}
	}
	d.pendN = 0
}

// publish refreshes the atomically published telemetry from the ingest
// state: once per step, plus per-block values only when a block completed
// since the last refresh. Rarely-changing cells are compared before being
// stored, trading a cheap atomic load for the full exchange. Called with
// d.mu held.
func (d *Device) publish() {
	d.pub.samples.Store(d.samples)
	d.pub.nowNanos.Store(int64(d.src.Now()))
	d.pub.joules.Store(math.Float64bits(d.src.Joules() - d.baseJ))
	if r := int64(d.src.Resyncs()); d.pub.resyncs.Load() != r {
		d.pub.resyncs.Store(r)
	}
	if d.ov != nil {
		d.pub.overhead.Store(int64(d.ov.Overhead()))
	}
	if d.pub.dropped.Load() != d.dropped {
		d.pub.dropped.Store(d.dropped)
	}
	if d.pub.marks.Load() != d.marks {
		d.pub.marks.Store(d.marks)
	}
	wdChanged := false
	if d.pub.gaps.Load() != d.wd.gaps {
		d.pub.gaps.Store(d.wd.gaps)
		wdChanged = true
	}
	if d.pub.flatlines.Load() != d.wd.flatlines {
		d.pub.flatlines.Store(d.wd.flatlines)
		wdChanged = true
	}
	if d.pub.spikesQ.Load() != d.wd.spikesQ {
		d.pub.spikesQ.Store(d.wd.spikesQ)
		wdChanged = true
	}
	if d.pub.restarts.Load() != d.wd.restarts {
		d.pub.restarts.Store(d.wd.restarts)
		wdChanged = true
	}
	if wdChanged {
		d.pub.wdGen.Add(1)
	}
	if !d.emitted {
		return
	}
	d.emitted = false
	d.pub.watts.Store(math.Float64bits(d.accMean))
	for m := 0; m < d.chans; m++ {
		d.pub.pair[m].Store(math.Float64bits(d.scratch[m]))
	}
	d.pub.ringTotal.Store(d.ringTotal)
	held := d.ringTotal
	if c := uint64(d.ring.Cap()); held > c {
		held = c
	}
	d.pub.ringLen.Store(int64(held))
}

// foldSampleEvery selects which steps contribute a fold-latency
// observation: every step whose ordinal is a multiple of it. At the
// uninstrumented baseline one timed step costs two clock reads plus a
// histogram Record (~70 ns) against ~680 ns of fold work per default
// 100-sample step — around 10%, over the ingest path's 5% overhead
// budget if paid every step. Sampling 1-in-32 amortises it well under
// 1% while a 200-step/s production station still records ~6
// observations per second, ample for a latency distribution. Must be a
// power of two; the selection is a mask test.
const foldSampleEvery = 32

// step advances the station by dt of virtual time, ingesting the batch
// the source produced over it and refreshing the published telemetry.
// On sampled steps the fold (despike + ingest + flush + publish, source
// read excluded) is timed into the manager's shared fold histogram; the
// timed path is identical to the untimed one apart from the clock reads,
// so the sample is unbiased.
//
// The health watchdog brackets the read: a source in a restart backoff
// window (or parked for good) is not read at all — its virtual time
// freezes and the silence drives it stale — and a ReadInto error starts
// or deepens a backoff cycle while whatever samples arrived before the
// failure are still ingested.
func (d *Device) step(dt time.Duration) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	w := &d.wd
	if w.parked {
		w.emptyFor += dt
		d.refreshHealth()
		d.publish()
		d.mu.Unlock()
		return
	}
	if w.backoffSteps > 0 {
		w.backoffSteps--
		w.emptyFor += dt
		if w.backoffSteps == 0 {
			// Backoff expired: one recovery attempt, then the next step
			// reads again. A failing Restart deepens the cycle directly.
			w.restarts++
			d.healthEvent(obs.EventRestart, "restart")
			if w.rst != nil {
				if err := w.rst.Restart(); err != nil {
					d.sourceFault()
				}
			}
		}
		d.refreshHealth()
		d.publish()
		d.mu.Unlock()
		return
	}
	err := d.src.ReadInto(dt, &d.batch)
	got := d.batch.Len()
	if err != nil {
		d.sourceFault()
	} else if w.wasFaulted && got > 0 {
		// First delivering read after a fault cycle: the source is back.
		// Success means samples, not just a nil error — a restarted
		// source staying silent must keep burning its bounded budget
		// rather than resetting it.
		w.wasFaulted = false
		w.nextBackoff = backoffInitSteps
		w.restartsLeft = restartBudget
		d.healthEvent(obs.EventRestart, "recovered")
	}
	if d.stepN&(foldSampleEvery-1) == 0 {
		began := time.Now()
		d.despike(&d.batch)
		d.ingestBatch(&d.batch)
		d.flush()
		d.publish()
		d.foldHist.Record(time.Since(began))
	} else {
		d.despike(&d.batch)
		d.ingestBatch(&d.batch)
		d.flush()
		d.publish()
	}
	d.stepN++
	d.observeStep(dt, got)
	// Sustained silence from a restartable source is treated like a read
	// error: kick a restart cycle. Sources that cannot restart just go
	// stale; there is nothing to retry.
	if w.emptyFor >= 2*w.staleAfter && w.backoffSteps == 0 && !w.parked && w.rst != nil {
		d.sourceFault()
	}
	d.refreshHealth()
	d.mu.Unlock()
}

// Status returns a snapshot of the station assembled from the published
// telemetry cells. It never takes the ingest mutex, so it cannot stall —
// or be stalled by — a station advancing at 20 kHz; values are at most
// one manager slice (and one downsample block) behind the ingest
// goroutine. After the fleet closes a station, the last published values
// remain readable.
func (d *Device) Status() Status {
	var out Status
	d.StatusInto(&out)
	return out
}

// StatusInto fills st like Status, reusing the capacity of st's
// PairWatts and Channels slices — the allocation-free form for scrapers
// that snapshot whole fleets at a fixed cadence. The filled slices remain
// the caller's own copies.
func (d *Device) StatusInto(st *Status) {
	pairWatts := st.PairWatts[:0]
	channels := st.Channels[:0]
	*st = Status{
		Name:              d.name,
		Kind:              d.kind,
		Backend:           d.meta.Backend,
		RateHz:            d.meta.RateHz,
		Pairs:             d.chans,
		State:             devState(d.pub.state.Load()).String(),
		Now:               time.Duration(d.pub.nowNanos.Load()),
		Watts:             math.Float64frombits(d.pub.watts.Load()),
		Joules:            math.Float64frombits(d.pub.joules.Load()),
		Samples:           d.pub.samples.Load(),
		Marks:             d.pub.marks.Load(),
		Resyncs:           int(d.pub.resyncs.Load()),
		OverheadSeconds:   time.Duration(d.pub.overhead.Load()).Seconds(),
		Dropped:           d.pub.dropped.Load(),
		RingLen:           int(d.pub.ringLen.Load()),
		RingTotal:         d.pub.ringTotal.Load(),
		Health:            healthName(d.pub.health.Load()),
		Gaps:              d.pub.gaps.Load(),
		Flatlines:         d.pub.flatlines.Load(),
		SpikesQuarantined: d.pub.spikesQ.Load(),
		Restarts:          d.pub.restarts.Load(),
	}
	for m := 0; m < d.chans; m++ {
		pairWatts = append(pairWatts, math.Float64frombits(d.pub.pair[m].Load()))
	}
	st.PairWatts = pairWatts
	st.Channels = append(channels, d.meta.Channels...)
}

// Subscribe registers a fan-out channel carrying every future ring point.
// buffer is the channel depth; when the subscriber falls behind, points are
// dropped (counted in Status.Dropped) rather than stalling ingest. The
// returned cancel function unregisters and closes the channel; it is
// idempotent and safe to call at any time, including after the device was
// retired — retirement (Manager.Remove, Manager.Close) fans out the final
// drain point and then closes every subscriber channel itself, and the
// subs map is the single ownership record deciding which side closes, so
// a cancel racing retirement never panics and never leaks a registration.
// Subscribing to a closed device returns an already-closed channel. Points
// are the subscribers' own: every fan-out point carries a fresh Watts
// copy (ring slots are recycled in place and cannot be shared out), shared
// only among the subscribers of that same point — treat it as read-only.
func (d *Device) Subscribe(buffer int) (<-chan Point, func()) {
	if buffer < 1 {
		buffer = 1
	}
	ch := make(chan Point, buffer)
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	id := d.nextID
	d.nextID++
	d.subs[id] = ch
	d.mu.Unlock()
	return ch, func() {
		d.mu.Lock()
		if _, ok := d.subs[id]; ok {
			delete(d.subs, id)
			close(ch)
		}
		d.mu.Unlock()
	}
}

// Trace renders up to max of the most recent ring points as a trace.Trace,
// ready for the CSV/JSON writers. A non-positive max exports the whole
// ring. The trace's samples are the downsampled block averages, so its
// effective rate is the source's native rate divided by the block size.
func (d *Device) Trace(max int) *trace.Trace {
	pts := d.ring.Snapshot(max)
	tr := &trace.Trace{Pairs: d.chans}
	tr.Points = make([]trace.Point, 0, len(pts))
	for _, p := range pts {
		// Snapshot points are deep copies, so the trace may keep their
		// Watts rows without re-copying.
		tp := trace.Point{
			Time:   p.Time,
			Watts:  p.Watts,
			TotalW: p.Total,
		}
		if p.Marks > 0 {
			tp.Marker = 'M'
		}
		tr.Points = append(tr.Points, tp)
	}
	return tr
}

// close retires the device: the in-flight partial downsample block is
// drained into the ring as one final short point (its mean covers however
// many samples had accumulated), that point is flushed and fanned out to
// subscribers, the final telemetry is published — then, and only then,
// subscriber channels close and the source is released. The ordering is
// the drain contract: a subscriber always receives every point the device
// produced, including the drain point, before its channel closes; a
// cancel racing close never double-closes a channel because the subs map
// is the single ownership record for both. It reports whether this call
// performed the close, so the manager logs exactly one close event per
// station however many paths (Remove, Close, repeated Close) race here.
func (d *Device) close() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false
	}
	d.pub.state.Store(int32(devStopping))
	if d.accN > 0 {
		d.emit(d.src.Now())
	}
	d.flush()
	d.publish()
	// Final history sync: the drain point just flushed reaches the
	// compressed series before the ring detaches onto its compact copy,
	// so retired-station energy windows cover the full measured span.
	// SyncHistory takes only the ring's and the tier's own locks, never
	// d.mu, so calling it here (d.mu held) cannot deadlock.
	d.SyncHistory()
	d.closed = true
	for id, ch := range d.subs {
		delete(d.subs, id)
		close(ch)
	}
	d.src.Close()
	if d.pool != nil {
		// Return the pooled memory for the next adoption. The ring
		// detaches onto a compact self-owned copy first, so callers still
		// holding the device keep reading the drained points; the batch
		// columns are dead the moment closed is set (step checks it under
		// d.mu, which we hold).
		buf, arena := d.ring.detach()
		d.pool.release(devMem{
			ringBuf:    buf,
			ringArena:  arena,
			batchTime:  d.batch.Time,
			batchChans: d.batch.Chans,
			batchTotal: d.batch.Total,
			batchMarks: d.batch.Marks,
		})
		d.batch = source.Batch{}
	}
	d.pub.state.Store(int32(devClosed))
	return true
}
