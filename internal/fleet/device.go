package fleet

import (
	"math"
	"sync"
	"time"

	"repro/internal/source"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Status is a point-in-time health and measurement snapshot of one station.
type Status struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Backend names the measurement backend serving the station —
	// "powersensor3" for instrumented rigs, "nvml"/"amdsmi"/"ina3221"/
	// "rapl" for the software meters.
	Backend string `json:"backend"`
	// RateHz is the backend's native sample rate.
	RateHz float64 `json:"rate_hz"`
	// Channels labels the station's measurement channels (sensor pairs
	// on a PowerSensor3 rig, the single counter of a software meter).
	Channels []string `json:"channels"`
	// Pairs is the number of measurement channels.
	Pairs int `json:"pairs"`
	// Now is the station's virtual time.
	Now time.Duration `json:"now"`
	// Watts is the summed board power of the latest downsampled ring
	// point — a block average rather than one raw sample, since a
	// single sample is dominated by quantisation noise on lightly loaded
	// rails (the Table II effect). PairWatts splits it per channel.
	Watts     float64   `json:"watts"`
	PairWatts []float64 `json:"pair_watts"`
	// Joules is the cumulative energy over all channels since the fleet
	// adopted the station, as integrated by the backend itself.
	Joules float64 `json:"joules"`
	// Samples counts native-rate sample sets ingested.
	Samples uint64 `json:"samples"`
	// Resyncs counts stream bytes skipped to regain protocol alignment —
	// nonzero values indicate a corrupted or lossy link. Always zero for
	// software meters.
	Resyncs int `json:"resyncs"`
	// Dropped counts subscriber deliveries discarded because the target
	// channel was full — one increment per slow subscriber per point, so
	// with several lagging subscribers it exceeds the number of distinct
	// points lost.
	Dropped uint64 `json:"dropped"`
	// RingLen and RingTotal describe the station's ring buffer: points
	// currently held and points ever produced.
	RingLen   int    `json:"ring_len"`
	RingTotal uint64 `json:"ring_total"`
}

// Device is one managed station: a streaming measurement source plus the
// fleet's ingest state. All source access is serialised by mu; the
// manager's per-device goroutine holds it while advancing virtual time,
// and snapshot/subscribe calls hold it briefly from other goroutines.
type Device struct {
	name string
	kind string
	meta source.Meta
	ring *Ring

	mu      sync.Mutex
	src     source.Source
	block   int // samples per ring point, derived from the native rate
	chans   int
	baseJ   float64 // cumulative joules at adoption, subtracted from Status
	samples uint64
	dropped uint64
	closed  bool

	// in-flight downsample block, maintained by ingest: the summed power
	// is buffered (Summarize needs the block for min/max), per-channel
	// power only needs running sums for the block mean.
	accTotal []float64 // summed power per sample
	pairSums []float64 // running per-channel power sums
	accTime  time.Duration

	subs   map[int]chan Point
	nextID int
}

// newDevice adopts src. pointPeriod is the target time width of one ring
// point; the per-source block size is derived from it and the source's
// native rate, so a 20 kHz sensor averages hundreds of samples per point
// while a 10 Hz software meter contributes every sample it has.
func newDevice(name, kind string, src source.Source, pointPeriod time.Duration, ringCap int) *Device {
	meta := src.Meta()
	block := int(math.Round(meta.RateHz * pointPeriod.Seconds()))
	if block < 1 {
		block = 1
	}
	d := &Device{
		name:  name,
		kind:  kind,
		meta:  meta,
		src:   src,
		block: block,
		chans: len(meta.Channels),
		baseJ: src.Joules(),
		ring:  NewRing(ringCap),
		subs:  make(map[int]chan Point),
	}
	d.pairSums = make([]float64, d.chans)
	return d
}

// Name returns the station's fleet name.
func (d *Device) Name() string { return d.name }

// Kind returns the station's spec kind (e.g. "rtx4000ada", "nvml").
func (d *Device) Kind() string { return d.kind }

// Meta returns the station's measurement source metadata.
func (d *Device) Meta() source.Meta { return d.meta }

// Ring returns the station's downsampled ring buffer.
func (d *Device) Ring() *Ring { return d.ring }

// ingest folds one native-rate sample into the in-flight downsample block
// and emits a ring point every block samples. Called with d.mu held (via
// step).
func (d *Device) ingest(s source.Sample) {
	d.samples++
	for m := 0; m < d.chans; m++ {
		d.pairSums[m] += s.Chans[m]
	}
	d.accTotal = append(d.accTotal, s.Total)
	d.accTime = s.Time
	if len(d.accTotal) < d.block {
		return
	}
	sum := stats.Summarize(d.accTotal)
	p := Point{
		Time:  d.accTime,
		Watts: make([]float64, d.chans),
		Total: sum.Mean,
		Min:   sum.Min,
		Max:   sum.Max,
	}
	for m := 0; m < d.chans; m++ {
		p.Watts[m] = d.pairSums[m] / float64(len(d.accTotal))
		d.pairSums[m] = 0
	}
	d.accTotal = d.accTotal[:0]
	d.ring.Push(p)
	for _, ch := range d.subs {
		select {
		case ch <- p:
		default:
			d.dropped++
		}
	}
}

// step advances the station by dt of virtual time, ingesting the batch
// the source produced over it.
func (d *Device) step(dt time.Duration) {
	d.mu.Lock()
	if !d.closed {
		for _, s := range d.src.Read(dt) {
			d.ingest(s)
		}
	}
	d.mu.Unlock()
}

// Status returns a consistent snapshot of the station.
func (d *Device) Status() Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := Status{
		Name:      d.name,
		Kind:      d.kind,
		Backend:   d.meta.Backend,
		RateHz:    d.meta.RateHz,
		Channels:  d.meta.Channels,
		Pairs:     d.chans,
		PairWatts: make([]float64, d.chans),
		Samples:   d.samples,
		Dropped:   d.dropped,
		RingLen:   d.ring.Len(),
		RingTotal: d.ring.Total(),
	}
	if !d.closed {
		out.Now = d.src.Now()
		out.Joules = d.src.Joules() - d.baseJ
		out.Resyncs = d.src.Resyncs()
	}
	if last := d.ring.Snapshot(1); len(last) == 1 {
		copy(out.PairWatts, last[0].Watts)
		out.Watts = last[0].Total
	}
	return out
}

// Subscribe registers a fan-out channel carrying every future ring point.
// buffer is the channel depth; when the subscriber falls behind, points are
// dropped (counted in Status.Dropped) rather than stalling ingest. The
// returned cancel function unregisters and closes the channel. Subscribing
// to a closed device returns an already-closed channel. Received Points
// share their Watts slice with the ring and other subscribers — treat it
// as read-only.
func (d *Device) Subscribe(buffer int) (<-chan Point, func()) {
	if buffer < 1 {
		buffer = 1
	}
	ch := make(chan Point, buffer)
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	id := d.nextID
	d.nextID++
	d.subs[id] = ch
	d.mu.Unlock()
	return ch, func() {
		d.mu.Lock()
		if _, ok := d.subs[id]; ok {
			delete(d.subs, id)
			close(ch)
		}
		d.mu.Unlock()
	}
}

// Trace renders up to max of the most recent ring points as a trace.Trace,
// ready for the CSV/JSON writers. A non-positive max exports the whole
// ring. The trace's samples are the downsampled block averages, so its
// effective rate is the source's native rate divided by the block size.
func (d *Device) Trace(max int) *trace.Trace {
	pts := d.ring.Snapshot(max)
	tr := &trace.Trace{Pairs: d.chans}
	for _, p := range pts {
		tr.Points = append(tr.Points, trace.Point{
			Time:   p.Time,
			Watts:  append([]float64(nil), p.Watts...),
			TotalW: p.Total,
		})
	}
	return tr
}

// close closes subscriber channels and releases the source.
func (d *Device) close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	d.closed = true
	for id, ch := range d.subs {
		delete(d.subs, id)
		close(ch)
	}
	d.src.Close()
}
