package fleet

// Tests for the dynamic fleet lifecycle: hot add and remove against a
// running manager, the retirement drain contract, subscription ordering
// across retirement, marker survival through downsampling, and the churn
// race net that hammers every lifecycle entry point at once under -race.

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// waitFor polls cond every millisecond until it holds or the deadline
// passes — wall-clock coordination with unpaced driver goroutines.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHotAddWhileRunning: a station Added against a running manager gets
// its own driver immediately and starts ingesting without a Start call.
func TestHotAddWhileRunning(t *testing.T) {
	m := NewManager(Config{})
	if _, err := m.Add("base0", "stub", &stubSource{}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	m.Start()
	defer m.Stop()

	d, err := m.Add("hot0", "stub", &stubSource{})
	if err != nil {
		t.Fatalf("hot Add: %v", err)
	}
	if got := m.Names(); len(got) != 2 || got[0] != "base0" || got[1] != "hot0" {
		t.Fatalf("Names after hot add = %v", got)
	}
	waitFor(t, 5*time.Second, "hot-added station to ingest", func() bool {
		return d.Status().Samples > 0
	})
	if st := d.Status(); st.State != "started" {
		t.Errorf("hot-added station state = %q, want started", st.State)
	}
	if m.Adopted() != 2 || m.Retired() != 0 {
		t.Errorf("adopted/retired = %d/%d, want 2/0", m.Adopted(), m.Retired())
	}
}

// TestRemoveWhileRunning: Remove stops the driver, retires the station
// from every public view, and leaves the survivors untouched.
func TestRemoveWhileRunning(t *testing.T) {
	m := NewManager(Config{})
	if _, err := m.Add("keep0", "stub", &stubSource{}); err != nil {
		t.Fatal(err)
	}
	gone, err := m.Add("gone0", "stub", &stubSource{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	m.Start()
	defer m.Stop()
	waitFor(t, 5*time.Second, "both stations to ingest", func() bool {
		snap := m.Snapshot()
		return len(snap) == 2 && snap[0].Samples > 0 && snap[1].Samples > 0
	})

	if err := m.Remove("gone0"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if m.Device("gone0") != nil {
		t.Error("removed station still resolvable by name")
	}
	if got := m.Names(); len(got) != 1 || got[0] != "keep0" {
		t.Errorf("Names after remove = %v", got)
	}
	if st := gone.Status(); st.State != "closed" {
		t.Errorf("retired station state = %q, want closed", st.State)
	}
	// The retired station's driver is gone: its telemetry freezes.
	before := gone.Status().Samples
	time.Sleep(20 * time.Millisecond)
	if after := gone.Status().Samples; after != before {
		t.Errorf("retired station advanced: %d -> %d samples", before, after)
	}
	// The survivor keeps running.
	keep := m.Device("keep0").Status().Samples
	waitFor(t, 5*time.Second, "survivor to keep ingesting", func() bool {
		return m.Device("keep0").Status().Samples > keep
	})
	if m.Adopted() != 2 || m.Retired() != 1 {
		t.Errorf("adopted/retired = %d/%d, want 2/1", m.Adopted(), m.Retired())
	}
}

// TestRemoveDrainsFinalBlock pins the drain contract: samples accumulated
// in the in-flight downsample block when retirement begins reach the ring
// as one final short point — and a subscriber receives every point,
// including the drain point, before its channel closes.
func TestRemoveDrainsFinalBlock(t *testing.T) {
	m := NewManager(Config{})
	d, err := m.Add("dev0", "stub", &stubSource{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	ch, cancel := d.Subscribe(64)
	defer cancel()

	// 25 samples at 20 kHz: one complete block-20 point plus 5 samples
	// left in the in-flight accumulator.
	m.StepAll(25 * stubPeriod)
	if got := d.Ring().Total(); got != 1 {
		t.Fatalf("ring holds %d points before remove, want 1", got)
	}
	if err := m.Remove("dev0"); err != nil {
		t.Fatal(err)
	}
	if got := d.Ring().Total(); got != 2 {
		t.Fatalf("ring holds %d points after remove, want 2 (drain point)", got)
	}
	snap := d.Ring().Snapshot(0)
	final := snap[len(snap)-1]
	// The stub emits a constant 60 W, so the short block's mean is exact.
	if final.Total != 60 {
		t.Errorf("drain point total = %v W, want 60", final.Total)
	}
	// Published telemetry reflects the drain before the state flips.
	st := d.Status()
	if st.State != "closed" || st.RingTotal != 2 || st.Samples != 25 {
		t.Errorf("post-drain status: state=%q ringTotal=%d samples=%d, want closed/2/25",
			st.State, st.RingTotal, st.Samples)
	}
	// The subscriber sees both points, then the close.
	var got []Point
	for p := range ch {
		got = append(got, p)
	}
	if len(got) != 2 {
		t.Fatalf("subscriber received %d points, want 2 (incl. drain)", len(got))
	}
	if got[1].Total != 60 || got[1].Time != 25*stubPeriod {
		t.Errorf("drain point = %+v, want total 60 at t=%v", got[1], 25*stubPeriod)
	}
}

// TestSubscribeCancelAfterRetire pins the cancel-vs-close ordering:
// cancelling after the device retired (which already closed the channel)
// must be a silent no-op, never a double-close panic, and cancelling
// twice is equally safe. Subscribing to a retired device yields an
// already-closed channel.
func TestSubscribeCancelAfterRetire(t *testing.T) {
	m := NewManager(Config{})
	d, err := m.Add("dev0", "stub", &stubSource{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	ch, cancel := d.Subscribe(4)
	m.StepAll(5 * time.Millisecond)
	if err := m.Remove("dev0"); err != nil {
		t.Fatal(err)
	}
	// Retirement closed the channel; draining must terminate.
	for range ch {
	}
	cancel() // after retirement: no panic, no double close
	cancel() // idempotent

	late, lateCancel := d.Subscribe(1)
	if _, open := <-late; open {
		t.Error("Subscribe after retirement delivered a point")
	}
	lateCancel()
}

// TestMarkerSurvivesDownsampling is the marker regression test: a single
// marked sample in a 20 kHz stream must surface in its block's ring
// point, in the fan-out copy of that point, in the device trace, and in
// the station's marker counter — not be averaged away with the other 19
// samples of the block.
func TestMarkerSurvivesDownsampling(t *testing.T) {
	m := NewManager(Config{})
	// Mark sample 27: the 2nd block-20 point (samples 21..40) carries it.
	d, err := m.Add("dev0", "stub", &stubSource{markAt: 27})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	ch, cancel := d.Subscribe(16)
	defer cancel()
	m.StepAll(5 * time.Millisecond) // 100 samples, 5 points

	pts := d.Ring().Snapshot(0)
	if len(pts) != 5 {
		t.Fatalf("ring holds %d points, want 5", len(pts))
	}
	for i, p := range pts {
		want := 0
		if i == 1 {
			want = 1
		}
		if p.Marks != want {
			t.Errorf("ring point %d: marks = %d, want %d", i, p.Marks, want)
		}
	}
	for i := 0; i < 5; i++ {
		p := <-ch
		if want := pts[i].Marks; p.Marks != want {
			t.Errorf("fan-out point %d: marks = %d, want %d", i, p.Marks, want)
		}
	}
	tr := d.Trace(0)
	for i, p := range tr.Points {
		want := byte(0)
		if i == 1 {
			want = 'M'
		}
		if p.Marker != want {
			t.Errorf("trace point %d: marker = %q, want %q", i, p.Marker, want)
		}
	}
	if st := d.Status(); st.Marks != 1 {
		t.Errorf("status marks = %d, want 1", st.Marks)
	}
}

// TestChurn is the lifecycle race net: goroutines hammer Add, Remove,
// Snapshot, Subscribe and StepAll against a running manager. Run under
// -race this is the memory-safety check; the final assertions verify no
// station leaked or vanished and the churn counters balance.
func TestChurn(t *testing.T) {
	const base = 4
	// EventCap large enough that no lifecycle event is dropped across the
	// whole churn run, so the post-run event accounting below is exact.
	m := NewManager(Config{Slice: time.Millisecond, EventCap: 1 << 16})
	for i := 0; i < base; i++ {
		if _, err := m.Add(fmt.Sprintf("base%d", i), "stub", &stubSource{}); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(m.Close)
	m.Start()
	defer m.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var churns atomic.Uint64

	// Churners: each cycles its own private name through hot add,
	// subscribe, remove, drain — the full lifecycle per iteration.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("churn%d", g)
				d, err := m.Add(name, "stub", &stubSource{})
				if err != nil {
					t.Errorf("churn Add(%s): %v", name, err)
					return
				}
				ch, cancel := d.Subscribe(8)
				runtime.Gosched()
				if err := m.Remove(name); err != nil {
					t.Errorf("churn Remove(%s): %v", name, err)
					return
				}
				for range ch { // closed by retirement after the drain point
				}
				cancel() // cancel-after-retire must stay a no-op
				churns.Add(1)
			}
		}(g)
	}
	// Snapshotters and name resolvers.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var snap []Status
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap = m.SnapshotInto(snap[:0])
				for i := range snap {
					if snap[i].Pairs != 3 {
						t.Errorf("snapshot %s: pairs = %d", snap[i].Name, snap[i].Pairs)
						return
					}
				}
				if d := m.Device("base0"); d != nil {
					_ = d.Trace(10)
				}
			}
		}()
	}
	// A stepper interleaving synchronous advances with the drivers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.StepAll(100 * time.Microsecond)
			}
		}
	}()

	time.Sleep(250 * time.Millisecond)
	close(stop)
	wg.Wait()

	if churns.Load() == 0 {
		t.Fatal("no churn cycles completed")
	}
	if got := m.Size(); got != base {
		t.Errorf("fleet size after churn = %d, want %d", got, base)
	}
	if a, r := m.Adopted(), m.Retired(); a-r != base {
		t.Errorf("adopted %d - retired %d = %d, want %d", a, r, a-r, base)
	}
	for _, st := range m.Snapshot() {
		if st.Samples == 0 {
			t.Errorf("%s ingested nothing through the churn", st.Name)
		}
		if st.State != "started" {
			t.Errorf("%s state = %q after churn, want started", st.Name, st.State)
		}
	}

	// Event-log accounting: every churn Add produced exactly one adopt
	// event and every churn Remove exactly one retire and one close — no
	// event lost, duplicated, or dropped by the ring.
	if got := m.Events().Dropped(); got != 0 {
		t.Fatalf("event ring dropped %d events; raise EventCap, accounting is void", got)
	}
	var adopts, retires, closes uint64
	for _, ev := range m.Events().Tail(0) {
		if !strings.HasPrefix(ev.Station, "churn") {
			continue
		}
		switch ev.Type {
		case obs.EventAdopt:
			adopts++
		case obs.EventRetire:
			retires++
		case obs.EventClose:
			closes++
		}
	}
	if want := churns.Load(); adopts != want || retires != want || closes != want {
		t.Errorf("churn events adopt/retire/close = %d/%d/%d, want %d each",
			adopts, retires, closes, want)
	}
}

// TestLifecycleEvents pins the event sequence one station emits across
// its whole life, and the reason tags that separate a hot Remove from a
// fleet shutdown.
func TestLifecycleEvents(t *testing.T) {
	m := NewManager(Config{})
	if _, err := m.Add("dev0", "stub", &stubSource{}); err != nil {
		t.Fatal(err)
	}
	m.Start()
	if err := m.Remove("dev0"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Add("dev1", "stub", &stubSource{}); err != nil {
		t.Fatal(err)
	}
	m.Stop()
	m.Close()

	want := []struct{ typ, station, reason string }{
		{obs.EventAdopt, "dev0", "add"},
		{obs.EventStart, "dev0", ""},
		{obs.EventRetire, "dev0", "remove"},
		{obs.EventClose, "dev0", "remove"},
		{obs.EventAdopt, "dev1", "add"},
		{obs.EventStart, "dev1", ""},
		{obs.EventClose, "dev1", "shutdown"},
	}
	evs := m.Events().Tail(0)
	if len(evs) != len(want) {
		t.Fatalf("got %d events %+v, want %d", len(evs), evs, len(want))
	}
	for i, w := range want {
		ev := evs[i]
		if ev.Type != w.typ || ev.Station != w.station || ev.Reason != w.reason {
			t.Errorf("event %d = {%s %s %q}, want {%s %s %q}",
				i, ev.Type, ev.Station, ev.Reason, w.typ, w.station, w.reason)
		}
		if ev.Kind != "stub" {
			t.Errorf("event %d kind = %q, want stub", i, ev.Kind)
		}
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, i+1)
		}
	}
}

// TestStopThenRemoveThenStart covers lifecycle transitions off the happy
// path: removing from a stopped manager must drain without a driver to
// wait for, and a later Start must only drive the survivors.
func TestStopThenRemoveThenStart(t *testing.T) {
	m := NewManager(Config{})
	if _, err := m.Add("a", "stub", &stubSource{}); err != nil {
		t.Fatal(err)
	}
	b, err := m.Add("b", "stub", &stubSource{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	m.Start()
	waitFor(t, 5*time.Second, "ingest before stop", func() bool {
		return b.Status().Samples > 0
	})
	m.Stop()
	if st := b.Status(); st.State != "adopted" {
		t.Errorf("state after Stop = %q, want adopted", st.State)
	}
	if err := m.Remove("b"); err != nil {
		t.Fatalf("Remove on stopped manager: %v", err)
	}
	if st := b.Status(); st.State != "closed" {
		t.Errorf("state after Remove = %q, want closed", st.State)
	}
	m.Start()
	defer m.Stop()
	a := m.Device("a")
	base := a.Status().Samples
	waitFor(t, 5*time.Second, "survivor to run after restart", func() bool {
		return a.Status().Samples > base
	})
	if got := m.Size(); got != 1 {
		t.Errorf("size after restart = %d, want 1", got)
	}
}
