package fleet

// Tests and benchmarks for the zero-allocation batch ingest path and the
// lock-decoupled status publication. The stub source stands in for a
// 20 kHz backend with no simulated hardware behind it, so allocation
// counts and cycle counts measure the fleet layer itself.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/source"
)

// stubSource emits a fixed three-channel waveform at 20 kHz, filling
// batches with direct indexed writes like the cheapest real source would.
// When markAt is set, the markAt-th sample of the stream (1-based) is
// flagged as a time-synced user marker.
type stubSource struct {
	now    time.Duration
	last   time.Duration
	joule  float64
	count  int // samples emitted so far
	markAt int // 1-based ordinal of the sample to mark; 0 = never
}

const stubPeriod = time.Second / 20000

func (s *stubSource) Meta() source.Meta {
	return source.Meta{Backend: "stub", RateHz: 20000,
		Channels: []string{"a", "b", "c"}}
}
func (s *stubSource) Now() time.Duration { return s.now }

func (s *stubSource) ReadInto(d time.Duration, b *source.Batch) error {
	b.Reset(3)
	target := s.now + d
	s.now = target
	if target <= s.last {
		return nil
	}
	k := int((target - s.last) / stubPeriod)
	b.Extend(k)
	t := s.last
	for i := 0; i < k; i++ {
		t += stubPeriod
		b.Time[i] = t
		b.Total[i] = 60
		c := b.Chans[i*3 : i*3+3]
		c[0], c[1], c[2] = 10, 20, 30
	}
	if s.markAt > s.count && s.markAt <= s.count+k {
		b.Marks = append(b.Marks, s.markAt-s.count-1)
	}
	s.count += k
	s.joule += 60 * float64(k) * stubPeriod.Seconds()
	s.last = t
	return nil
}

func (s *stubSource) Joules() float64 { return s.joule }
func (s *stubSource) Resyncs() int    { return 0 }
func (s *stubSource) Close()          {}

func stubDevice(t testing.TB) (*Manager, *Device) {
	m := NewManager(Config{})
	d, err := m.Add("dev0", "stub", &stubSource{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m, d
}

// TestIngestSteadyStateZeroAlloc pins the tentpole contract: once the
// batch arrays and ring arena are warm, advancing a subscriber-free
// station allocates nothing — not per sample, not per block, not per
// telemetry refresh. The fold histogram must demonstrably advance during
// the guard, so the zero-alloc claim covers the instrumented path, not a
// path with telemetry compiled out.
func TestIngestSteadyStateZeroAlloc(t *testing.T) {
	m, _ := stubDevice(t)
	m.StepAll(200 * time.Millisecond) // warm batch arrays, cross many blocks
	before := m.IngestFoldHist().Count()
	allocs := testing.AllocsPerRun(100, func() {
		m.StepAll(5 * time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("steady-state ingest allocates %v per step, want 0", allocs)
	}
	if after := m.IngestFoldHist().Count(); after <= before {
		t.Errorf("fold histogram did not advance during the guard (%d -> %d): "+
			"the zero-alloc result proves nothing about instrumented ingest",
			before, after)
	}
}

// TestStatusWithoutIngestMutex pins the scrape-decoupling contract:
// Status and Manager.Snapshot must complete while a station's ingest
// mutex is held (as it is for the whole of every ingest step).
func TestStatusWithoutIngestMutex(t *testing.T) {
	m, d := stubDevice(t)
	m.StepAll(50 * time.Millisecond)
	want := d.Status()

	d.mu.Lock()
	defer d.mu.Unlock()
	done := make(chan []Status, 1)
	go func() {
		_ = d.Status()
		done <- m.Snapshot()
	}()
	select {
	case snap := <-done:
		if len(snap) != 1 || snap[0].Samples != want.Samples {
			t.Errorf("snapshot under held ingest mutex = %+v, want samples %d",
				snap, want.Samples)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Status/Snapshot blocked on the ingest mutex")
	}
}

// TestStatusValuesFromStub cross-checks the atomically published fields
// against the stub's exact arithmetic.
func TestStatusValuesFromStub(t *testing.T) {
	m, d := stubDevice(t)
	m.StepAll(time.Second)
	st := d.Status()
	if st.Samples != 20000 {
		t.Errorf("samples = %d, want 20000", st.Samples)
	}
	if st.Watts != 60 {
		t.Errorf("watts = %v, want 60", st.Watts)
	}
	if len(st.PairWatts) != 3 || st.PairWatts[0] != 10 || st.PairWatts[1] != 20 || st.PairWatts[2] != 30 {
		t.Errorf("pair watts = %v, want [10 20 30]", st.PairWatts)
	}
	if st.Joules < 59.9 || st.Joules > 60.1 {
		t.Errorf("joules = %v, want ~60", st.Joules)
	}
	if st.Now != time.Second {
		t.Errorf("now = %v, want 1s", st.Now)
	}
	// Block 20 at 20 kHz → 1000 points over one virtual second.
	if st.RingTotal != 1000 || st.RingLen != 1000 {
		t.Errorf("ring total=%d len=%d, want 1000, 1000", st.RingTotal, st.RingLen)
	}
}

// TestStatusChannelsDetached pins the aliasing fix: the Channels slice a
// Status carries is the caller's own — writing into it must not leak into
// the device, later snapshots, or the source's original slice.
func TestStatusChannelsDetached(t *testing.T) {
	_, d := stubDevice(t)
	st := d.Status()
	if len(st.Channels) != 3 || st.Channels[0] != "a" {
		t.Fatalf("channels = %v", st.Channels)
	}
	st.Channels[0] = "mutated"
	if got := d.Status().Channels[0]; got != "a" {
		t.Errorf("consumer write reached the device: channels[0] = %q", got)
	}
	if got := d.Meta().Channels[0]; got != "a" {
		t.Errorf("consumer write reached device meta: %q", got)
	}
}

// TestDeviceChannelsCopiedFromSource covers the other aliasing direction:
// the device snapshots the source's channel labels at adoption, so a
// source mutating its own slice afterwards cannot skew fleet metadata.
func TestDeviceChannelsCopiedFromSource(t *testing.T) {
	labels := []string{"x", "y"}
	src := source.NewPolled(source.PolledConfig{
		Meta:   source.Meta{Backend: "fake", RateHz: 10, Channels: labels},
		Watts:  func(time.Duration) float64 { return 1 },
		Joules: func(t time.Duration) float64 { return t.Seconds() },
	})
	m := NewManager(Config{})
	d, err := m.Add("dev0", "fake", src)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	labels[0] = "mutated"
	if got := d.Status().Channels[0]; got != "x" {
		t.Errorf("source-side write reached the device: channels[0] = %q", got)
	}
}

// TestSubscriberPointsDetached: fan-out points carry their own Watts
// rows, so holding one across arbitrary ring wraparound is safe.
func TestSubscriberPointsDetached(t *testing.T) {
	m := NewManager(Config{RingCap: 8}) // tiny ring: wraps fast
	d, err := m.Add("dev0", "stub", &stubSource{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	ch, cancel := d.Subscribe(1)
	defer cancel()
	m.StepAll(5 * time.Millisecond)
	p := <-ch
	m.StepAll(100 * time.Millisecond) // wrap the 8-point ring many times
	if p.Watts[0] != 10 || p.Watts[1] != 20 || p.Watts[2] != 30 {
		t.Errorf("held fan-out point mutated by wraparound: %v", p.Watts)
	}
}

// BenchmarkFleetIngestFold is the per-station ingest hot path in
// isolation: folding prefilled columnar batches into a device — the
// per-sample accumulate, block emit, ring push and telemetry publish,
// with no source behind it. The per-sample cost is the headline number
// BENCH_fleet.json tracks.
func BenchmarkFleetIngestFold(b *testing.B) {
	_, d := stubDevice(b)
	var batch source.Batch
	batch.Reset(3)
	row := []float64{10, 20, 30}
	const n = 100 // five block-20 points per op
	for i := 0; i < n; i++ {
		batch.Append(time.Duration(i+1)*stubPeriod, row, 60)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ingestBatch(&batch)
		d.flush()
		d.publish()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/n, "ns/sample")
}

// BenchmarkFleetStatus is the scrape-side cost of one station's
// lock-free status assembly.
func BenchmarkFleetStatus(b *testing.B) {
	m, d := stubDevice(b)
	m.StepAll(50 * time.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Status()
	}
}

// BenchmarkFleetIngestScale spreads the fold across fleet sizes through
// the public StepAll path, stub-sourced so the fleet layer dominates.
func BenchmarkFleetIngestScale(b *testing.B) {
	for _, size := range []int{1, 16, 64, 256} {
		b.Run(fmt.Sprintf("size-%d", size), func(b *testing.B) {
			m := NewManager(Config{})
			for i := 0; i < size; i++ {
				if _, err := m.Add(fmt.Sprintf("dev%03d", i), "stub", &stubSource{}); err != nil {
					b.Fatal(err)
				}
			}
			b.Cleanup(m.Close)
			m.StepAll(100 * time.Millisecond)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// One default manager slice per op — the production
				// cadence: 100 samples per station at 20 kHz.
				m.StepAll(5 * time.Millisecond)
			}
			b.StopTimer()
			perSample := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(size*100)
			b.ReportMetric(perSample, "ns/sample-station")
		})
	}
}
