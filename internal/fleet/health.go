// Per-station health watchdog: the ingest-side fault detection that lets
// one faulted station degrade its own series while the rest of the fleet
// stays well-formed. Three detectors run on the hot path — gap detection
// on per-step delivery accounting, flatline detection on runs of
// bit-identical downsample blocks, spike quarantine on a robust
// successive-difference outlier gate — and drive a published
// Status.Health with hysteresis, plus a bounded restart-with-backoff path
// for sources whose ReadInto errors or goes silent. Everything here is
// plain arithmetic on fixed-size state owned by the ingest goroutine
// (under Device.mu): no allocations, no locks beyond the one the step
// already holds.
//
// Health states and transitions (worse is higher; upgrades toward healthy
// hold for healthRecoverSteps consecutive steps before applying, so a
// flapping fault cannot flap the published state):
//
//	          gap episode opens, or
//	          spike quarantined recently
//	healthy ──────────────────────────▶ degraded
//	    ▲  ◀──────────────────────────     │
//	    │     clean for recover window     │
//	    │                                  │ flatRunFor identical
//	    │ flat run broken,                 ▼ blocks
//	    ├───────────────────────────── flatlined
//	    │     held for recovery
//	    │                                  │ silence ≥ StaleAfter, or
//	    │ samples flowing again,           ▼ read error / backoff / parked
//	    └─────────────────────────────── stale
//	          held for recovery

package fleet

import (
	"time"

	"repro/internal/obs"
	"repro/internal/source"
)

// Health states, as published on Status.Health and counted by
// Manager.HealthCounts. The internal rank (see HealthLevel) orders them
// by severity: healthy < degraded < flatlined < stale.
const (
	// HealthHealthy: delivery, timing and values all look like the
	// backend's declared behaviour.
	HealthHealthy = "healthy"
	// HealthDegraded: the station is serving, but a gap episode is open
	// or spikes were quarantined recently — treat its series with care.
	HealthDegraded = "degraded"
	// HealthFlatlined: samples arrive at rate but carry a run of
	// bit-identical totals far longer than the backend's noise floor
	// allows — a stuck register serving fake liveness.
	HealthFlatlined = "flatlined"
	// HealthStale: no samples at all for Config.StaleAfter, the source's
	// reads are erroring, or the watchdog parked it — the series' newest
	// point is history, not telemetry.
	HealthStale = "stale"
)

// Internal health ranks: comparison decides transition direction
// (downgrades apply immediately, upgrades hold), so the order IS the
// severity order.
const (
	healthHealthy int32 = iota
	healthDegraded
	healthFlatlined
	healthStale
)

// healthName maps a rank to its Status.Health string.
func healthName(h int32) string {
	switch h {
	case healthHealthy:
		return HealthHealthy
	case healthDegraded:
		return HealthDegraded
	case healthFlatlined:
		return HealthFlatlined
	case healthStale:
		return HealthStale
	}
	return "unknown"
}

// HealthLevel maps a Status.Health string to its numeric severity rank —
// 0 healthy, 1 degraded, 2 flatlined, 3 stale — the value the exporter
// serves as powersensor_station_health. Unknown strings rank as stale:
// a consumer that cannot parse a station's health should not assume the
// station is fine.
func HealthLevel(health string) int {
	switch health {
	case HealthHealthy:
		return int(healthHealthy)
	case HealthDegraded:
		return int(healthDegraded)
	case HealthFlatlined:
		return int(healthFlatlined)
	}
	return int(healthStale)
}

// AggregateHealth tallies published health states over a status
// snapshot — the read-only aggregated-station view a consumer holding a
// fleet only as []Status (a federation head holding leaf views, a
// dashboard holding a decoded /api/fleet body) applies without owning a
// Manager. Semantics match Manager.HealthCounts exactly: stations is the
// snapshot size, degraded counts every station not currently healthy,
// and down counts the subset that is stale or flatlined — serving
// nothing, or serving fake liveness.
func AggregateHealth(devs []Status) (stations, degraded, down int) {
	for i := range devs {
		stations++
		lvl := HealthLevel(devs[i].Health)
		if lvl != int(healthHealthy) {
			degraded++
		}
		if lvl >= int(healthFlatlined) {
			down++
		}
	}
	return stations, degraded, down
}

// Watchdog tuning. Steps and windows are virtual time, so detection
// latency scales with the fleet's configured pacing, not the host's.
const (
	// gapCleanWins is how many consecutive clean delivery windows close a
	// gap episode — the gap detector's recovery hysteresis.
	gapCleanWins = 2
	// spikeRecoverSteps is how many steps after the last quarantined
	// sample the station stays degraded — the spike gate's hysteresis.
	spikeRecoverSteps = 16
	// spikeArm is how many samples prime the noise-scale EWMA before the
	// spike gate starts quarantining; until the scale is learned, an
	// honest step change would look like a glitch.
	spikeArm = 256
	// spikeAlpha is the EWMA weight of the successive-difference noise
	// scale: 1/64 tracks a drifting noise floor in a few ms at 20 kHz
	// while one glitch barely moves it.
	spikeAlpha = 1.0 / 64
	// spikeGateK is the quarantine threshold in noise-scale multiples.
	spikeGateK = 8.0
	// healthRecoverSteps is how many consecutive steps an improvement
	// must hold before the published health upgrades.
	healthRecoverSteps = 8
	// flatMinSamples is the fewest bit-identical consecutive samples a
	// flatline episode needs, whatever FlatlineWindow says. A coarse
	// quantised meter (RAPL at 100 Hz reads in 0.01 W steps) legitimately
	// plateaus for tens of samples during steady workload phases; only a
	// run long enough to be statistically impossible for live quantised
	// readings is a stuck register. At 20 kHz this floor (13 block-20
	// points) is far below the FlatlineWindow, so fast rigs keep their
	// time-based detection latency.
	flatMinSamples = 256
	// restartBudget bounds the restart-with-backoff path: after this many
	// fault cycles without a clean delivering read, the source is parked.
	restartBudget = 6
	// backoffInitSteps / backoffMaxSteps bound the skip-the-source windows
	// between restart attempts, in steps (slices): 4 doubling to 256.
	backoffInitSteps = 4
	backoffMaxSteps  = 256
)

// watchdog is one station's health-detection state, owned by the ingest
// goroutine under Device.mu. All fixed-size, so the hot path stays
// allocation-free.
type watchdog struct {
	rateHz     float64
	staleAfter time.Duration
	gapAfter   float64       // gap-episode debt threshold, in samples
	winDur     time.Duration // delivery-accounting window width
	flatRunFor int           // identical blocks before a flatline episode

	// Gap detection: running expected-minus-delivered debt plus windowed
	// delivery accounting for recovery. primed gates both until the first
	// delivered sample: a backend filling its transfer pipe at adoption
	// (USB buffering, poll phase) has not gapped, it has not started.
	primed    bool
	gapDebt   float64
	gapOpen   bool
	winExpect float64
	winGot    float64
	winLeft   time.Duration
	cleanWins int
	emptyFor  time.Duration // virtual time since the last delivered sample

	// Flatline detection: run of bit-identical min==max==value blocks.
	flatVal  float64
	flatRun  int
	flatOpen bool

	// Spike quarantine: successive-difference noise scale and the despike
	// neighbour state carried across batch boundaries.
	spikePrev float64
	spikeDev  float64
	spikeN    int
	spikeCool int

	// Published health with upgrade hysteresis.
	health     int32
	healthHold int

	// Restart-with-backoff.
	rst          source.Restarter
	wasFaulted   bool
	backoffSteps int
	nextBackoff  int
	restartsLeft int
	parked       bool

	// Episode counters, mirrored into pub by publish.
	gaps      uint64
	flatlines uint64
	spikesQ   uint64
	restarts  uint64
}

// initWatchdog sizes the detectors from the station's native rate and the
// fleet config. Called from newDevice.
func (d *Device) initWatchdog(cfg Config) {
	w := &d.wd
	w.rateHz = d.meta.RateHz
	w.staleAfter = cfg.StaleAfter
	// One whole missing ring point is noise (resample lag, poll phase);
	// two plus margin is a gap.
	w.gapAfter = float64(2*d.block + 2)
	// The delivery-accounting window must hold a few slices of a fast
	// source and at least ~2.5 sample periods of a slow meter, so one
	// poll landing either side of a boundary cannot dirty a window.
	w.winDur = 4 * cfg.Slice
	if w.rateHz > 0 {
		if min := time.Duration(2.5 * float64(time.Second) / w.rateHz); w.winDur < min {
			w.winDur = min
		}
	}
	w.winLeft = w.winDur
	// Flatline threshold: identical blocks spanning FlatlineWindow of
	// virtual time at the native rate, never fewer than 3 — two equal
	// polls of a coarse meter are coincidence, not a fault — and never
	// fewer than flatMinSamples samples, so a slow quantised meter's
	// legitimate plateaus stay below the bar.
	blockDur := time.Duration(float64(d.block) / w.rateHz * float64(time.Second))
	w.flatRunFor = 3
	if blockDur > 0 {
		if n := int(cfg.FlatlineWindow / blockDur); n > w.flatRunFor {
			w.flatRunFor = n
		}
	}
	if d.block > 0 {
		if n := (flatMinSamples + d.block - 1) / d.block; n > w.flatRunFor {
			w.flatRunFor = n
		}
	}
	w.spikeCool = spikeRecoverSteps
	w.nextBackoff = backoffInitSteps
	w.restartsLeft = restartBudget
	w.rst, _ = d.src.(source.Restarter)
}

// healthEvent appends a watchdog event to the fleet's lifecycle ring.
// Nil-safe for directly constructed test devices.
func (d *Device) healthEvent(typ, reason string) {
	if d.events != nil {
		d.events.Append(typ, d.name, d.kind, reason)
	}
}

// despike is the spike quarantine gate, run over a batch's totals before
// the fold: an isolated sample deviating from both neighbours by more
// than spikeGateK times the learned successive-difference noise scale —
// while the neighbours agree with each other — is a glitch, not a
// workload step. The glitch is replaced in place by the neighbour
// midpoint (rows rescaled to match) so the ring, the published watts and
// the energy-weighted block means never integrate it. Workload steps
// survive: after a real edge the next sample stays at the new level, so
// the isolation test fails. Limitations, by construction: back-to-back
// glitches mask each other, and a batch's last sample has no right
// neighbour yet, so a glitch there passes — the gate is a robust filter,
// not a parser.
func (d *Device) despike(b *source.Batch) {
	n := b.Len()
	if n == 0 {
		return
	}
	w := &d.wd
	totals := b.Total
	stride := d.chans
	prev := w.spikePrev
	if w.spikeN == 0 {
		prev = totals[0]
	}
	quarantined := 0
	for i := 0; i < n; i++ {
		x := totals[i]
		diff := x - prev
		if diff < 0 {
			diff = -diff
		}
		if w.spikeN >= spikeArm {
			if thr := spikeGateK * w.spikeDev; diff > thr && i+1 < n {
				next := totals[i+1]
				dNext := x - next
				if dNext < 0 {
					dNext = -dNext
				}
				dBridge := next - prev
				if dBridge < 0 {
					dBridge = -dBridge
				}
				if dNext > thr && dBridge <= thr {
					fix := (prev + next) / 2
					if x != 0 {
						scale := fix / x
						row := b.Chans[i*stride : (i+1)*stride]
						for m := range row {
							row[m] *= scale
						}
					}
					totals[i] = fix
					quarantined++
					prev = fix
					continue // the glitch must not feed the noise scale
				}
			}
		}
		w.spikeDev += spikeAlpha * (diff - w.spikeDev)
		w.spikeN++
		prev = x
	}
	w.spikePrev = prev
	if quarantined > 0 {
		w.spikesQ += uint64(quarantined)
		w.spikeCool = 0
	}
}

// observeFlat folds one completed downsample block into the flatline
// detector: a block whose min, max and previous blocks' value are all
// bit-identical extends the flat run. Called from emit with the block
// accumulators still live, so detection costs O(1) per block — the
// per-sample min/max the fold already computes does the heavy lifting.
func (d *Device) observeFlat() {
	w := &d.wd
	if d.accMin == d.accMax {
		if w.flatRun > 0 && d.accMin == w.flatVal {
			w.flatRun++
		} else {
			w.flatVal = d.accMin
			w.flatRun = 1
		}
	} else {
		w.flatRun = 0
	}
	if w.flatRun >= w.flatRunFor {
		if !w.flatOpen {
			w.flatOpen = true
			w.flatlines++
		}
	} else {
		w.flatOpen = false
	}
}

// observeStep folds one step's delivery accounting into the gap detector:
// running debt against the rate the backend declares, plus windowed
// delivered-vs-expected comparison for episode recovery — the windowing
// is what lets a 10 Hz meter (most steps legitimately empty) and a 20 kHz
// sensor share one detector. Called from step after ingest.
func (d *Device) observeStep(dt time.Duration, got int) {
	w := &d.wd
	if got > 0 {
		w.emptyFor = 0
		w.primed = true
	} else {
		w.emptyFor += dt
	}
	if !w.primed {
		// Pre-first-sample: staleness (emptyFor) covers a source that
		// never starts; debt accounting would misread pipe-fill as a gap.
		if w.spikeCool < spikeRecoverSteps {
			w.spikeCool++
		}
		return
	}
	expect := w.rateHz * dt.Seconds()
	w.gapDebt += expect - float64(got)
	if w.gapDebt < 0 {
		w.gapDebt = 0
	}
	if !w.gapOpen && w.gapDebt >= w.gapAfter {
		w.gapOpen = true
		w.gaps++
		w.cleanWins = 0
	}
	w.winExpect += expect
	w.winGot += float64(got)
	w.winLeft -= dt
	if w.winLeft <= 0 {
		// Clean = delivered what the rate promised, to within 1.5 samples
		// (resample bin lag, poll phase) and 2% (rounding at scale).
		if w.winGot >= w.winExpect-1.5-0.02*w.winExpect {
			w.cleanWins++
			w.gapDebt = 0
			if w.gapOpen && w.cleanWins >= gapCleanWins {
				w.gapOpen = false
			}
		} else {
			w.cleanWins = 0
		}
		w.winExpect, w.winGot = 0, 0
		w.winLeft = w.winDur
	}
	if w.spikeCool < spikeRecoverSteps {
		w.spikeCool++
	}
}

// refreshHealth recomputes the published health from the open detector
// episodes. Downgrades apply immediately — detection latency is the
// detectors' own windows — while upgrades hold for healthRecoverSteps
// consecutive steps, so a fault flapping at step cadence pins the station
// at its worst recent state instead of strobing the fleet view. Called
// from step with d.mu held; transitions publish atomically and append an
// obs event.
func (d *Device) refreshHealth() {
	w := &d.wd
	var want int32
	switch {
	case w.parked || w.backoffSteps > 0 || w.emptyFor >= w.staleAfter:
		want = healthStale
	case w.flatOpen:
		want = healthFlatlined
	case w.gapOpen || w.spikeCool < spikeRecoverSteps:
		want = healthDegraded
	default:
		want = healthHealthy
	}
	if want == w.health {
		w.healthHold = 0
		return
	}
	if want < w.health { // improvement: hold before upgrading
		w.healthHold++
		if w.healthHold < healthRecoverSteps {
			return
		}
	}
	w.healthHold = 0
	w.health = want
	d.pub.health.Store(want)
	d.pub.wdGen.Add(1)
	d.healthEvent(obs.EventHealth, healthName(want))
}

// sourceFault begins (or deepens) a restart-with-backoff cycle: the
// source is not read for the backoff window, after which step attempts a
// Restart. Each cycle doubles the next window; when the budget runs out
// the source is parked — read never again, permanently stale — so a dead
// backend costs its station, not a retry loop. Called on a ReadInto error
// and on sustained silence (stall) when the source is restartable.
func (d *Device) sourceFault() {
	w := &d.wd
	w.wasFaulted = true
	if w.restartsLeft == 0 {
		w.parked = true
		d.healthEvent(obs.EventRestart, "parked")
		return
	}
	w.restartsLeft--
	w.backoffSteps = w.nextBackoff
	if w.nextBackoff < backoffMaxSteps {
		w.nextBackoff *= 2
	}
	d.healthEvent(obs.EventRestart, "backoff")
}
