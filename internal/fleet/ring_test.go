package fleet

import (
	"sync"
	"testing"
	"time"
)

func pt(i int) Point {
	return Point{Time: time.Duration(i) * time.Millisecond, Total: float64(i)}
}

func TestRingFillAndWraparound(t *testing.T) {
	r := NewRing(4)
	if got := r.Snapshot(0); got != nil {
		t.Fatalf("empty ring snapshot = %v, want nil", got)
	}

	// Partially filled: order is insertion order.
	r.Push(pt(0))
	r.Push(pt(1))
	if r.Len() != 2 || r.Total() != 2 {
		t.Fatalf("Len=%d Total=%d, want 2, 2", r.Len(), r.Total())
	}
	snap := r.Snapshot(0)
	if len(snap) != 2 || snap[0].Total != 0 || snap[1].Total != 1 {
		t.Fatalf("partial snapshot = %v", snap)
	}

	// Overfill: the oldest entries are evicted, order stays oldest-first.
	for i := 2; i < 10; i++ {
		r.Push(pt(i))
	}
	if r.Len() != 4 || r.Total() != 10 {
		t.Fatalf("after wrap Len=%d Total=%d, want 4, 10", r.Len(), r.Total())
	}
	snap = r.Snapshot(0)
	for i, p := range snap {
		if want := float64(6 + i); p.Total != want {
			t.Fatalf("snapshot[%d].Total = %v, want %v (full: %v)", i, p.Total, want, snap)
		}
	}

	// A capped snapshot returns the newest points, still oldest-first.
	snap = r.Snapshot(2)
	if len(snap) != 2 || snap[0].Total != 8 || snap[1].Total != 9 {
		t.Fatalf("capped snapshot = %v, want totals [8 9]", snap)
	}
	// A cap larger than the content returns everything.
	if got := len(r.Snapshot(100)); got != 4 {
		t.Fatalf("oversized cap returned %d points, want 4", got)
	}
}

func TestRingCapacityValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0) did not panic")
		}
	}()
	NewRing(0)
}

// TestRingConcurrentIngestRead hammers one writer against several readers;
// run under -race this is the memory-safety check, and the assertions
// verify readers always observe a consistent oldest-first window.
func TestRingConcurrentIngestRead(t *testing.T) {
	r := NewRing(64)
	const points = 20000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for reader := 0; reader < 4; reader++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot(0)
				for i := 1; i < len(snap); i++ {
					if snap[i].Total != snap[i-1].Total+1 {
						t.Errorf("gap in snapshot: %v after %v", snap[i].Total, snap[i-1].Total)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < points; i++ {
		r.Push(pt(i))
	}
	close(stop)
	wg.Wait()
	if r.Total() != points {
		t.Fatalf("Total = %d, want %d", r.Total(), points)
	}
}
