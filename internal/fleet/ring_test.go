package fleet

import (
	"sync"
	"testing"
	"time"
)

func push(r *Ring, i int) {
	w := float64(i)
	r.Push(time.Duration(i)*time.Millisecond, []float64{w, w + 0.5}, w, w-1, w+1, 0)
}

func TestRingFillAndWraparound(t *testing.T) {
	r := NewRing(4, 2)
	if got := r.Snapshot(0); got != nil {
		t.Fatalf("empty ring snapshot = %v, want nil", got)
	}

	// Partially filled: order is insertion order.
	push(r, 0)
	push(r, 1)
	if r.Len() != 2 || r.Total() != 2 {
		t.Fatalf("Len=%d Total=%d, want 2, 2", r.Len(), r.Total())
	}
	snap := r.Snapshot(0)
	if len(snap) != 2 || snap[0].Total != 0 || snap[1].Total != 1 {
		t.Fatalf("partial snapshot = %v", snap)
	}

	// Overfill: the oldest entries are evicted, order stays oldest-first,
	// and the per-channel rows travel with their points.
	for i := 2; i < 10; i++ {
		push(r, i)
	}
	if r.Len() != 4 || r.Total() != 10 {
		t.Fatalf("after wrap Len=%d Total=%d, want 4, 10", r.Len(), r.Total())
	}
	snap = r.Snapshot(0)
	for i, p := range snap {
		want := float64(6 + i)
		if p.Total != want || p.Min != want-1 || p.Max != want+1 {
			t.Fatalf("snapshot[%d] = %+v, want total %v (full: %v)", i, p, want, snap)
		}
		if len(p.Watts) != 2 || p.Watts[0] != want || p.Watts[1] != want+0.5 {
			t.Fatalf("snapshot[%d].Watts = %v, want [%v %v]", i, p.Watts, want, want+0.5)
		}
	}

	// A capped snapshot returns the newest points, still oldest-first.
	snap = r.Snapshot(2)
	if len(snap) != 2 || snap[0].Total != 8 || snap[1].Total != 9 {
		t.Fatalf("capped snapshot = %v, want totals [8 9]", snap)
	}
	// A cap larger than the content returns everything.
	if got := len(r.Snapshot(100)); got != 4 {
		t.Fatalf("oversized cap returned %d points, want 4", got)
	}
}

// TestRingSnapshotOwnsWatts pins the arena contract: snapshots are deep
// copies, so later pushes recycling the same arena slots must not show
// through points a reader already holds.
func TestRingSnapshotOwnsWatts(t *testing.T) {
	r := NewRing(3, 1)
	for i := 0; i < 3; i++ {
		push(r, i)
	}
	snap := r.Snapshot(0)
	// Wrap every slot several times over.
	for i := 3; i < 30; i++ {
		push(r, i)
	}
	for i, p := range snap {
		if p.Watts[0] != float64(i) || p.Total != float64(i) {
			t.Fatalf("held snapshot mutated by wraparound: point %d = %+v", i, p)
		}
	}
	// And writing into a snapshot must not reach the ring.
	snap2 := r.Snapshot(1)
	snap2[0].Watts[0] = -1
	if got := r.Snapshot(1)[0].Watts[0]; got == -1 {
		t.Fatal("snapshot write reached the ring arena")
	}
}

// TestRingPushZeroAlloc pins the arena contract on the write side: a push
// copies into preallocated slots and never allocates.
func TestRingPushZeroAlloc(t *testing.T) {
	r := NewRing(8, 3)
	watts := []float64{1, 2, 3}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Push(time.Millisecond, watts, 6, 1, 3, 0)
	})
	if allocs != 0 {
		t.Errorf("Push allocates %v per call, want 0", allocs)
	}
}

// TestRingMarksTravel: a point's marker count rides through pushes,
// wraparound recycling and snapshots like any other block statistic.
func TestRingMarksTravel(t *testing.T) {
	r := NewRing(4, 1)
	for i := 0; i < 6; i++ {
		marks := 0
		if i == 4 {
			marks = 2
		}
		r.Push(time.Duration(i)*time.Millisecond, []float64{1}, 1, 1, 1, marks)
	}
	snap := r.Snapshot(0)
	if len(snap) != 4 {
		t.Fatalf("snapshot holds %d points, want 4", len(snap))
	}
	for i, p := range snap {
		want := 0
		if p.Time == 4*time.Millisecond {
			want = 2
		}
		if p.Marks != want {
			t.Errorf("point %d (t=%v): marks = %d, want %d", i, p.Time, p.Marks, want)
		}
	}
	// A recycled slot must not inherit the previous occupant's marks.
	times := []time.Duration{10 * time.Millisecond}
	r.PushN(times, []float64{1}, []float64{1}, []float64{1}, []float64{1}, []int{3})
	snap = r.Snapshot(1)
	if snap[0].Marks != 3 {
		t.Errorf("PushN marks = %d, want 3", snap[0].Marks)
	}
}

func TestRingCapacityValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0, 1) did not panic")
		}
	}()
	NewRing(0, 1)
}

// TestRingConcurrentIngestRead hammers one writer against several readers
// over the flat-arena backing; run under -race this is the memory-safety
// check, and the assertions verify readers always observe a consistent
// oldest-first window — both for full snapshots and for capped ones that
// start mid-arena — whose Watts rows match their points.
func TestRingConcurrentIngestRead(t *testing.T) {
	r := NewRing(64, 2)
	const points = 20000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for reader := 0; reader < 4; reader++ {
		max := reader * 7 // mix full and capped snapshots
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot(max)
				for i, p := range snap {
					if i > 0 && p.Total != snap[i-1].Total+1 {
						t.Errorf("gap in snapshot: %v after %v", p.Total, snap[i-1].Total)
						return
					}
					// Watts rows are copied under the same lock as the
					// scalar fields: they must always agree.
					if p.Watts[0] != p.Total || p.Watts[1] != p.Total+0.5 {
						t.Errorf("point %v carries foreign watts %v", p.Total, p.Watts)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < points; i++ {
		push(r, i)
	}
	close(stop)
	wg.Wait()
	if r.Total() != points {
		t.Fatalf("Total = %d, want %d", r.Total(), points)
	}
}
