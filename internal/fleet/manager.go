package fleet

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/simsetup"
	"repro/internal/source"
)

// Config tunes a Manager. The zero value is usable: 5 ms slices, 1 ms
// ring points (block-20 at 20 kHz), 4096-point rings, 8 shards, unpaced.
type Config struct {
	// Slice is the virtual-time quantum each station goroutine advances
	// per iteration. Smaller slices reduce snapshot latency; larger ones
	// amortise locking. StepAll also advances in Slice quanta, so batch
	// columns pre-sized for one slice stay slab-resident however large a
	// step a caller requests.
	Slice time.Duration
	// PointPeriod is the target time width of one downsampled ring
	// point. Each station derives its own block size from it and its
	// source's native rate, clamped to at least one sample — so slow
	// software meters keep every sample while a 20 kHz sensor averages.
	// Zero derives the period from Block.
	PointPeriod time.Duration
	// Block is the legacy downsample knob: sample sets per ring point,
	// interpreted at the PowerSensor3 base rate (20 → 1 ms points). It
	// is only consulted when PointPeriod is zero.
	Block int
	// RingCap is the per-station ring capacity in points.
	RingCap int
	// Rate paces virtual time against the wall clock in virtual seconds
	// per wall second (1 = real time). Zero runs as fast as the host
	// allows — the mode benchmarks and tests use.
	Rate float64
	// EventCap is the capacity of the fleet's lifecycle event ring (see
	// Events); once full, new events overwrite oldest-first with a drop
	// counter. Zero means 256 — weeks of ordinary churn.
	EventCap int
	// Shards is the number of fixed partitions the fleet is split into.
	// Each station hashes to a shard by name; each shard owns its own
	// copy-on-write device list, churn counters, render generation and
	// memory pool, so churn, stepping, snapshots and scrape rendering
	// contend per shard instead of fleet-wide. Zero means 8; values are
	// clamped to [1, MaxShards]. Shards=1 recovers the unsharded
	// behaviour exactly (one list, one generation, serial stepping).
	Shards int
	// StaleAfter is how long (virtual time) a station may deliver no
	// samples at all before the watchdog declares it stale; twice this
	// silence also triggers the restart-with-backoff path on restartable
	// sources. Zero means 250 ms — generous against the slowest bundled
	// meter (10 Hz NVML) yet fast against a wedged 20 kHz sensor.
	StaleAfter time.Duration
	// FlatlineWindow is how much virtual time of bit-identical totals —
	// at the station's native rate — flags a flatline. Zero means 50 ms:
	// a thousand identical 20 kHz conversions, far beyond any real noise
	// floor, while coarse slow meters get a 3-reading minimum instead.
	FlatlineWindow time.Duration
	// HistoryBytes bounds each station's compressed long-horizon history
	// series (internal/history), drained from the ring on sync passes
	// and queried by EnergyWindow. Zero means the history default
	// (1 MiB per station); negative disables the tier, leaving queries
	// to the ring's held points only.
	HistoryBytes int
	// HistoryQuantum is the history tier's value quantum in watts. Zero
	// means the history default (~1 mW); negative stores lossless.
	HistoryQuantum float64
}

func (c Config) withDefaults() Config {
	if c.Slice <= 0 {
		c.Slice = 5 * time.Millisecond
	}
	if c.Block <= 0 {
		c.Block = 20
	}
	if c.PointPeriod <= 0 {
		c.PointPeriod = time.Duration(float64(c.Block) *
			float64(time.Second) / protocol.SampleRateHz)
	}
	if c.RingCap <= 0 {
		c.RingCap = 4096
	}
	if c.EventCap <= 0 {
		c.EventCap = 256
	}
	if c.Shards == 0 {
		c.Shards = 8
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Shards > MaxShards {
		c.Shards = MaxShards
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 250 * time.Millisecond
	}
	if c.FlatlineWindow <= 0 {
		c.FlatlineWindow = 50 * time.Millisecond
	}
	return c
}

// stepParallelMin is the fleet size below which StepAll stays serial:
// handing a quantum to the shard workers costs a channel round-trip and
// a WaitGroup rendezvous per shard, which swamps the win when each shard
// holds only a handful of stations.
const stepParallelMin = 64

// Manager owns a fleet of named stations and drives each in its own
// goroutine. The fleet is fully dynamic: Add adopts a station at any time
// — before Start, or against a running manager, in which case its driver
// goroutine spawns immediately — and Remove retires one at any time,
// stopping its driver, draining its final downsample block into the ring
// and closing its subscriptions. Snapshots, subscriptions and traces are
// safe at any time from any goroutine, concurrently with churn.
//
// The fleet is partitioned into Config.Shards fixed shards by a hash of
// the station name. Each shard publishes its own copy-on-write device
// list (sorted by name) through an atomic pointer: Add and Remove (rare)
// rebuild only their shard's slice, whose atomic swap is the lifecycle
// commit point, while the hot readers — StepAll, Snapshot, the drive
// goroutines, the exporter's per-shard renderers — load a list with no
// lock and no per-call copy. Fleet-wide sorted iteration (Names,
// Snapshot) merges the shard lists on the fly. A reader holding an old
// slice may briefly step or snapshot a retiring device; both are
// harmless, because a retired device's step is a no-op and its last
// published telemetry stays readable.
//
// Sharding also partitions memory: each shard pools ring arenas and
// batch columns in shard-local slabs, so the stations a shard's step
// worker advances back-to-back sit adjacent in memory instead of
// scattered across the heap.
type Manager struct {
	cfg    Config
	shards []shard

	// Fleet-wide lifetime churn counters, exported as
	// powersensor_fleet_{adopted,retired}_total. Each shard additionally
	// keeps its own pair, which feed the per-shard render generations.
	adopted atomic.Uint64
	retired atomic.Uint64

	// Self-telemetry. foldHist is the fleet-wide distribution of per-step
	// ingest-fold latency (ReadInto excluded — that is the source's
	// sampling cost, accounted separately via source.Overheader), sampled
	// one step in foldSampleEvery to stay inside the ingest path's
	// overhead budget; it is striped per shard so concurrently stepping
	// shard workers do not bounce one bucket array between cores.
	// paceHist is driver pacing lateness: how far behind its absolute
	// schedule each paced slice boundary lands. stepHist is the time to
	// advance one shard's stations by one StepAll quantum. events holds
	// the structured lifecycle log.
	foldHist *obs.ShardedHist
	paceHist obs.Hist
	stepHist obs.Hist
	// histAppendHist and histQueryHist time the history tier's two
	// operations fleet-wide: one ring→series sync pass, and one windowed
	// energy query. Both run off the ingest path, so unsharded
	// histograms suffice.
	histAppendHist obs.Hist
	histQueryHist  obs.Hist
	events         *obs.EventRing

	mu      sync.Mutex
	byName  map[string]*Device
	stop    chan struct{}
	wg      *sync.WaitGroup // per-run, so Stop only waits for its own drivers
	started bool

	// Parallel StepAll state: stepMu serialises fan-outs (concurrent
	// StepAll callers queue rather than interleave on one WaitGroup),
	// stepWG tracks the in-flight shard quanta of the current fan-out,
	// and workersOn (guarded by stepMu) says whether the persistent
	// per-shard step workers are running. Workers start lazily on the
	// first parallel StepAll — fleets driven by Start never pay for them
	// — and exit when Close closes their channels.
	stepMu    sync.Mutex
	stepWG    sync.WaitGroup
	workersOn bool
}

// NewManager returns an empty manager.
func NewManager(cfg Config) *Manager {
	m := &Manager{cfg: cfg.withDefaults(), byName: make(map[string]*Device)}
	m.shards = make([]shard, m.cfg.Shards)
	for i := range m.shards {
		m.shards[i].devices.Store(new([]*Device))
	}
	m.foldHist = obs.NewShardedHist(m.cfg.Shards)
	m.events = obs.NewEventRing(m.cfg.EventCap)
	return m
}

// FromSpec builds a manager holding the fleet described by spec (see
// simsetup.ParseFleet for the name=kindspec grammar, including the
// derived-source pipe stages).
func FromSpec(spec string, seed uint64, cfg Config) (*Manager, error) {
	members, err := simsetup.ParseFleet(spec, seed)
	if err != nil {
		return nil, err
	}
	m := NewManager(cfg)
	for i, mem := range members {
		if _, err := m.Add(mem.Name, mem.Kind, mem.Src); err != nil {
			// Release the stations adopted so far and the ones not yet
			// handed over (ParseFleet pre-validates names, so this path
			// is defensive).
			m.Close()
			for _, rest := range members[i:] {
				rest.Src.Close()
			}
			return nil, err
		}
	}
	return m, nil
}

// ShardCount returns the number of fixed shards the fleet is split into.
func (m *Manager) ShardCount() int { return len(m.shards) }

// ShardOf returns the shard the named station lives in (whether or not
// it currently exists): a pure function of the name, so a retired and
// re-added station always comes back to the same shard.
func (m *Manager) ShardOf(name string) int {
	return shardOf(name, len(m.shards))
}

// Add adopts a measurement source as a named station, at any time: on a
// stopped manager the station waits for Start, on a running one its
// driver goroutine spawns before Add returns — the hot-add path a serving
// daemon uses when a rig is cabled up. The atomic swap of the station's
// home-shard list is the commit point at which concurrent
// Snapshot/scrape/StepAll callers begin to see the station.
func (m *Manager) Add(name, kind string, src source.Source) (*Device, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.byName[name]; dup {
		return nil, fmt.Errorf("fleet: duplicate station %q", name)
	}
	s := shardOf(name, len(m.shards))
	sh := &m.shards[s]
	d := newDevice(name, kind, src, m.cfg, m.foldHist.Stripe(s), &sh.pool, m.events)
	d.histAppend, d.histQuery = &m.histAppendHist, &m.histQueryHist
	old := sh.list()
	at := sort.Search(len(old), func(i int) bool { return old[i].name > name })
	next := make([]*Device, 0, len(old)+1)
	next = append(next, old[:at]...)
	next = append(next, d)
	next = append(next, old[at:]...)
	sh.devices.Store(&next)
	m.byName[name] = d
	m.adopted.Add(1)
	sh.adopted.Add(1)
	m.events.Append(obs.EventAdopt, name, kind, "add")
	if m.started {
		m.startDriver(d)
	}
	return d, nil
}

// Remove retires the named station. The copy-on-write swap of its home
// shard's list is the commit point — concurrent Snapshot, scrape and
// StepAll callers stop seeing the station the moment it lands — after
// which Remove stops the station's driver goroutine (waiting for its
// in-flight step to finish), drains the in-flight downsample block into
// the ring as a final short point, fans that point out, closes every
// subscription, releases the source and returns the station's pooled
// memory to its shard. Safe to call from any goroutine, concurrently
// with Add, Stop, snapshots and subscriptions; removing an unknown (or
// already removed) station returns an error.
func (m *Manager) Remove(name string) error {
	m.mu.Lock()
	d := m.byName[name]
	if d == nil {
		m.mu.Unlock()
		return fmt.Errorf("fleet: Remove(%q): unknown station", name)
	}
	delete(m.byName, name) // claims the device: no second Remove can reach it
	sh := &m.shards[shardOf(name, len(m.shards))]
	old := sh.list()
	next := make([]*Device, 0, len(old)-1)
	for _, o := range old {
		if o != d {
			next = append(next, o)
		}
	}
	sh.devices.Store(&next) // commit: new readers no longer see the station
	done := d.driveDone     // this run's driver exit signal, nil if never driven
	m.retired.Add(1)
	sh.retired.Add(1)
	m.events.Append(obs.EventRetire, name, d.kind, "remove")
	m.mu.Unlock()

	// Stop the driver without holding the manager lock: the goroutine may
	// be mid-step, and a slice of virtual time can take real time.
	d.pub.state.Store(int32(devStopping))
	close(d.retire) // single close guaranteed by the byName claim above
	if done != nil {
		<-done
	}
	if d.close() {
		m.events.Append(obs.EventClose, name, d.kind, "remove")
	}
	return nil
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// ShardGen returns shard s's generation fingerprint: a hash folding the
// shard's churn counters and each of its stations' ever-produced
// ring-point counts and watchdog generations, computed from the same
// atomically published cells snapshots read — no manager lock, no device
// ingest mutex, O(shard stations) atomic loads. The fingerprint changes
// whenever a station in this shard completes a downsample block, churns
// in or out, or publishes a health transition or episode counter, which
// is exactly when a rendered exposition segment of this shard goes stale —
// and only then, so one busy station invalidates one shard's cached
// segment while the other shards' segments stay servable. Distinct
// shard states could in principle collide in the 64-bit hash; with
// FNV-style mixing that is vanishingly unlikely and the cost is one
// stale scrape of one shard, not corruption.
func (m *Manager) ShardGen(s int) uint64 {
	sh := &m.shards[s]
	h := uint64(fnvOffset64)
	mix := func(v uint64) {
		h ^= v
		h *= fnvPrime64
	}
	mix(sh.adopted.Load())
	mix(sh.retired.Load())
	for _, d := range sh.list() {
		mix(d.pub.ringTotal.Load())
		// The watchdog generation moves independently of block
		// production: a station going stale or parked freezes its
		// ringTotal while its published health changes — without this
		// fold the cached segment would serve the old health forever.
		mix(d.pub.wdGen.Load())
	}
	return h
}

// Gen returns a generation fingerprint of the whole fleet's
// block-boundary state, folding every shard's generation. It changes
// whenever any station completes a downsample block or the fleet churns
// — the condition under which any fleet-derived rendering goes stale.
// Consumers that can act per shard should prefer ShardGen, which is what
// lets a busy station invalidate one shard instead of the fleet.
func (m *Manager) Gen() uint64 {
	h := uint64(fnvOffset64)
	for s := range m.shards {
		h ^= m.ShardGen(s)
		h *= fnvPrime64
	}
	return h
}

// Adopted returns the number of stations ever adopted by Add.
func (m *Manager) Adopted() uint64 { return m.adopted.Load() }

// Retired returns the number of stations ever retired by Remove.
func (m *Manager) Retired() uint64 { return m.retired.Load() }

// ShardAdopted returns the number of stations ever adopted into shard s.
func (m *Manager) ShardAdopted(s int) uint64 { return m.shards[s].adopted.Load() }

// ShardRetired returns the number of stations ever retired from shard s.
// Names hash to shards deterministically, so any retirement that could
// leave a stale per-shard label-cache entry — including a same-name
// re-adoption — advances this counter for exactly the shard holding that
// cache.
func (m *Manager) ShardRetired(s int) uint64 { return m.shards[s].retired.Load() }

// Events returns the fleet's lifecycle event ring: one structured entry
// per adopt/start/retire/close transition, oldest overwritten first once
// the ring fills (Config.EventCap). The ring is safe for concurrent
// reads while the fleet churns; daemons serve its Tail as /api/events.
func (m *Manager) Events() *obs.EventRing { return m.events }

// IngestFoldHist returns the fleet-wide latency histogram of the ingest
// fold — the per-step cost of folding one source batch into the
// downsample accumulators, staging area and published cells, excluding
// the source's own ReadInto. To keep the hot path inside its overhead
// budget the fold is timed on a 1-in-foldSampleEvery step sample, so the
// histogram holds a uniform sample of steps, not every step. The
// histogram is striped per shard (each station records into its home
// shard's stripe); Snapshot and Count present the fleet-wide sum.
func (m *Manager) IngestFoldHist() *obs.ShardedHist { return m.foldHist }

// PaceLatenessHist returns the distribution of driver pacing lateness on
// paced fleets (Config.Rate > 0): how far past its absolute schedule each
// slice boundary completed — timer overshoot when the host keeps up,
// whole-slice overruns when it does not. Unpaced fleets record nothing.
func (m *Manager) PaceLatenessHist() *obs.Hist { return &m.paceHist }

// HistoryAppendHist returns the latency distribution of history sync
// passes (one ring→series drain, however many points it moved).
func (m *Manager) HistoryAppendHist() *obs.Hist { return &m.histAppendHist }

// HistoryQueryHist returns the latency distribution of windowed energy
// queries (Device.EnergyWindow, including its preceding sync).
func (m *Manager) HistoryQueryHist() *obs.Hist { return &m.histQueryHist }

// ShardStepHist returns the distribution of per-shard StepAll quantum
// latency: the time one shard took to advance all its stations by one
// slice quantum, whether stepped serially or by its shard worker. Fleets
// driven only by Start record nothing here.
func (m *Manager) ShardStepHist() *obs.Hist { return &m.stepHist }

// HealthCounts tallies the fleet's published health states: stations is
// the fleet size, degraded counts every station not currently healthy,
// and down counts the subset that is stale or flatlined — serving
// nothing, or serving fake liveness. Like Snapshot it reads only the
// atomically published health cells — no manager lock, no ingest mutexes
// — so /healthz can poll it on every probe.
func (m *Manager) HealthCounts() (stations, degraded, down int) {
	for s := range m.shards {
		for _, d := range m.shards[s].list() {
			stations++
			h := d.pub.health.Load()
			if h != healthHealthy {
				degraded++
			}
			if h >= healthFlatlined {
				down++
			}
		}
	}
	return stations, degraded, down
}

// RingOccupancy sums ring fill across the fleet: points currently held
// in every station's ring and the total capacity. Like Snapshot it reads
// only atomically published cells — no manager lock, no ingest mutexes —
// so it is safe on every scrape even when the body cache skips the full
// snapshot.
func (m *Manager) RingOccupancy() (held, capacity int) {
	for s := range m.shards {
		for _, d := range m.shards[s].list() {
			held += int(d.pub.ringLen.Load())
			capacity += d.ring.Cap()
		}
	}
	return held, capacity
}

// Device returns the named station, or nil.
func (m *Manager) Device(name string) *Device {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byName[name]
}

// Names returns the station names in sorted order.
func (m *Manager) Names() []string {
	return m.NamesInto(nil)
}

// NamesInto is Names appending into dst — reusing dst's capacity, so
// callers polling a large fleet on a timer pass the previous call's
// slice (re-sliced to length zero) and stay allocation-free in steady
// state. Names arrive in global sorted order, merged across shards
// without allocating.
func (m *Manager) NamesInto(dst []string) []string {
	var it devIter
	it.init(m.shards)
	for d := it.next(); d != nil; d = it.next() {
		dst = append(dst, d.name)
	}
	return dst
}

// Size returns the number of stations.
func (m *Manager) Size() int {
	n := 0
	for s := range m.shards {
		n += len(m.shards[s].list())
	}
	return n
}

// ShardSize returns the number of stations in shard s.
func (m *Manager) ShardSize(s int) int {
	return len(m.shards[s].list())
}

// Start launches one goroutine per station, each repeatedly advancing its
// station by Config.Slice of virtual time (paced against the wall clock
// when Config.Rate is set). Stations Added while running get their own
// driver on the same run. Start is idempotent until Stop.
func (m *Manager) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return
	}
	m.started = true
	m.stop = make(chan struct{})
	m.wg = &sync.WaitGroup{}
	for s := range m.shards {
		for _, d := range m.shards[s].list() {
			m.startDriver(d)
		}
	}
}

// startDriver launches d's drive goroutine on the current run. Called
// with m.mu held and m.started true — from Start, and from Add when the
// manager is already running.
func (m *Manager) startDriver(d *Device) {
	done := make(chan struct{})
	d.driveDone = done
	d.pub.state.Store(int32(devStarted))
	m.events.Append(obs.EventStart, d.name, d.kind, "")
	m.wg.Add(1)
	go m.drive(d, m.stop, m.wg, done)
}

// drive is one station's advance loop. stop, wg and done are captured per
// run so a Stop racing a later Start waits only for (and signals only) its
// own generation of goroutines. The loop exits on the run-wide stop
// channel (Stop) or the device's own retire channel (Remove), whichever
// closes first; done signals the exit to a Remove waiting to drain.
func (m *Manager) drive(d *Device, stop chan struct{}, wg *sync.WaitGroup, done chan struct{}) {
	defer func() {
		// A stopped (not retired) station returns to adopted, ready for
		// the next Start; a retiring one is already marked stopping and
		// the swap leaves that state in place for close to finish. The
		// generation check under m.mu keeps a stale driver — one exiting
		// after a quick Stop/Start already launched its successor — from
		// clobbering the started state the new run just published.
		m.mu.Lock()
		if d.driveDone == done {
			d.pub.state.CompareAndSwap(int32(devStarted), int32(devAdopted))
		}
		m.mu.Unlock()
		close(done)
		wg.Done()
	}()
	wallPerSlice := time.Duration(0)
	if m.cfg.Rate > 0 {
		wallPerSlice = time.Duration(float64(m.cfg.Slice) / m.cfg.Rate)
	}
	// Pace against an absolute schedule, not per-iteration sleeps: timer
	// overshoot and slow steps borrow from later slices, so virtual time
	// tracks wall × rate without accumulating drift. If the host falls
	// more than a second behind, resync instead of bursting to catch up.
	next := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-d.retire:
			return
		default:
		}
		d.step(m.cfg.Slice)
		if wallPerSlice > 0 {
			next = next.Add(wallPerSlice)
			if rest := time.Until(next); rest > 0 {
				select {
				case <-stop:
					return
				case <-d.retire:
					return
				case <-time.After(rest):
					// Timer overshoot: how late past the schedule the
					// sleep actually returned.
					m.paceHist.Record(time.Since(next))
				}
			} else {
				// The step itself overran the slice's wall budget; -rest is
				// how far behind schedule this boundary already is.
				m.paceHist.Record(-rest)
				if rest < -time.Second {
					next = time.Now()
				}
			}
		}
	}
}

// Stop halts the station goroutines and waits for them. The fleet can be
// Started again afterwards.
func (m *Manager) Stop() {
	m.mu.Lock()
	if !m.started {
		m.mu.Unlock()
		return
	}
	close(m.stop)
	m.started = false
	wg := m.wg
	m.mu.Unlock()
	wg.Wait()
}

// StepAll synchronously advances every station by d of virtual time —
// deterministic single-goroutine semantics for tests, benchmarks and
// one-shot tools. The step proceeds in Config.Slice quanta (matching the
// cadence drive goroutines use, and keeping batch columns inside their
// pre-sized slabs on warmup bursts); within each quantum, fleets of at
// least stepParallelMin stations fan the shards out to persistent
// per-shard worker goroutines, with a full rendezvous between quanta so
// no station runs ahead. The fan-out allocates nothing in steady state —
// workers are persistent, the handoff is a channel send of a scalar —
// preserving the zero-alloc StepAll contract at every fleet size. Safe
// to call while Started (steps interleave with the drive goroutines),
// though deterministic only when stopped.
func (m *Manager) StepAll(d time.Duration) {
	for d > 0 {
		q := d
		if q > m.cfg.Slice {
			q = m.cfg.Slice
		}
		m.stepQuantum(q)
		d -= q
	}
}

// stepQuantum advances every station by one quantum, serially for small
// fleets and via the shard workers otherwise.
func (m *Manager) stepQuantum(q time.Duration) {
	if len(m.shards) == 1 || m.Size() < stepParallelMin {
		for s := range m.shards {
			devs := m.shards[s].list()
			if len(devs) == 0 {
				continue
			}
			began := time.Now()
			for _, dev := range devs {
				dev.step(q)
			}
			m.stepHist.Record(time.Since(began))
		}
		return
	}
	m.stepMu.Lock()
	m.ensureStepWorkers()
	for s := range m.shards {
		if len(m.shards[s].list()) == 0 {
			continue
		}
		m.stepWG.Add(1)
		m.shards[s].stepCh <- q
	}
	m.stepWG.Wait()
	m.stepMu.Unlock()
}

// ensureStepWorkers launches the persistent per-shard step workers.
// Called with stepMu held; idempotent until Close shuts them down.
func (m *Manager) ensureStepWorkers() {
	if m.workersOn {
		return
	}
	m.workersOn = true
	for s := range m.shards {
		sh := &m.shards[s]
		sh.stepCh = make(chan time.Duration)
		go m.stepWorker(sh)
	}
}

// stepWorker advances one shard's stations by each quantum handed to it.
// The worker always steps the shard's current published list, so
// stations hot-added or retired between quanta are picked up or dropped
// naturally. Exits when Close closes the channel.
func (m *Manager) stepWorker(sh *shard) {
	for q := range sh.stepCh {
		began := time.Now()
		for _, dev := range sh.list() {
			dev.step(q)
		}
		m.stepHist.Record(time.Since(began))
		m.stepWG.Done()
	}
}

// Snapshot returns the status of every station, sorted by name. It takes
// no manager lock and no device ingest mutex — each status is assembled
// from the device's atomically published telemetry — so snapshotting a
// large fleet cannot stall (or be stalled by) any station's ingest.
func (m *Manager) Snapshot() []Status {
	return m.SnapshotInto(nil)
}

// SnapshotInto is Snapshot appending into dst — reusing dst's capacity
// and, for recycled entries, the capacity of their PairWatts and Channels
// slices. Scrapers that snapshot a large fleet at a fixed cadence pass
// the previous scrape's slice (re-sliced to length zero) to make the
// whole snapshot allocation-free in steady state. Order is global sorted
// by name, merged across shards without allocating.
func (m *Manager) SnapshotInto(dst []Status) []Status {
	var it devIter
	it.init(m.shards)
	for d := it.next(); d != nil; d = it.next() {
		dst = appendStatus(dst, d)
	}
	return dst
}

// ShardSnapshotInto appends the status of every station in shard s into
// dst, sorted by name, with the same reuse semantics as SnapshotInto —
// the per-shard form the exporter's segment renderers use, so rendering
// one stale shard snapshots that shard alone.
func (m *Manager) ShardSnapshotInto(s int, dst []Status) []Status {
	for _, d := range m.shards[s].list() {
		dst = appendStatus(dst, d)
	}
	return dst
}

// appendStatus appends d's status to dst, recycling spare capacity and
// the recycled entry's own slices.
func appendStatus(dst []Status, d *Device) []Status {
	if len(dst) < cap(dst) {
		dst = dst[:len(dst)+1]
	} else {
		dst = append(dst, Status{})
	}
	d.StatusInto(&dst[len(dst)-1])
	return dst
}

// Close stops the fleet, shuts down the shard step workers and releases
// every station's sensor.
func (m *Manager) Close() {
	m.Stop()
	m.stepMu.Lock()
	if m.workersOn {
		m.workersOn = false
		for s := range m.shards {
			close(m.shards[s].stepCh)
			m.shards[s].stepCh = nil
		}
	}
	m.stepMu.Unlock()
	for s := range m.shards {
		for _, d := range m.shards[s].list() {
			if d.close() {
				m.events.Append(obs.EventClose, d.name, d.kind, "shutdown")
			}
		}
	}
}
