package fleet

// Tests for the long-horizon history tier's fleet wiring: windowed
// energy queries against the backends' own energy integrals, the
// ring→history drain across wraparound, and query behaviour through
// station churn.

import (
	"math"
	"testing"
	"time"

	"repro/internal/pmt"
	"repro/internal/simsetup"
)

// TestEnergyWindowMatchesBackendJoules is the cross-backend ground
// truth: over the same virtual-time window, the history tier's
// trapezoidal integral of block-averaged ring points must agree with
// the backend's own cumulative energy integral (Status.Joules deltas)
// within 1% — on an instrumented 20 kHz rig, a slow software meter and
// the synthetic station alike.
func TestEnergyWindowMatchesBackendJoules(t *testing.T) {
	for _, kind := range []string{"synth", "rtx4000ada", "rapl"} {
		t.Run(kind, func(t *testing.T) {
			src, err := simsetup.NewStation(kind, 42)
			if err != nil {
				t.Fatal(err)
			}
			m := NewManager(Config{})
			defer m.Close()
			d, err := m.Add("gt0", kind, src)
			if err != nil {
				t.Fatal(err)
			}
			// Warm past the first ring point so the window interior is
			// fully inside the stored series.
			m.StepAll(200 * time.Millisecond)
			st1 := d.Status()
			m.StepAll(2 * time.Second)
			st2 := d.Status()
			m.StepAll(100 * time.Millisecond)

			got := d.EnergyWindow(st1.Now, st2.Now)
			want := st2.Joules - st1.Joules
			if want <= 0 {
				t.Fatalf("backend integrated no energy over the window (%v J)", want)
			}
			if rel := math.Abs(got-want) / want; rel > 0.01 {
				t.Fatalf("EnergyWindow(%v, %v) = %v J, backend says %v J (%.2f%% off, want <= 1%%)",
					st1.Now, st2.Now, got, want, rel*100)
			}
		})
	}
}

// TestEnergyWindowSpansRingBoundary pins the tier's reason to exist:
// with a 64-point ring (64 ms of points) and periodic syncs, a window
// reaching far behind the ring's retention still answers exactly,
// because the drained points live on in the compressed series.
func TestEnergyWindowSpansRingBoundary(t *testing.T) {
	m := NewManager(Config{RingCap: 64})
	defer m.Close()
	d, err := m.Add("ringed", "stub", &stubSource{})
	if err != nil {
		t.Fatal(err)
	}
	var j1, j2 float64
	var t1, t2 time.Duration
	for now := time.Duration(0); now < 2*time.Second; now += 20 * time.Millisecond {
		m.StepAll(20 * time.Millisecond)
		if _, missed := d.SyncHistory(); missed != 0 {
			t.Fatalf("sync every 20 ms against a 64-point ring missed %d points", missed)
		}
		switch st := d.Status(); st.Now {
		case 100 * time.Millisecond:
			j1, t1 = st.Joules, st.Now
		case 1900 * time.Millisecond:
			j2, t2 = st.Joules, st.Now
		}
	}
	if hs := d.HistoryStats(); hs.Points <= 64 {
		t.Fatalf("history holds %d points — not past the 64-point ring, boundary untested", hs.Points)
	}
	// The window's first 1736 ms lie behind the ring's 64 ms retention:
	// only the history tier can answer it. The stub holds 60 W flat, so
	// the trapezoid is exact and must match the backend's own integral.
	got := d.EnergyWindow(t1, t2)
	want := j2 - j1
	if rel := math.Abs(got-want) / want; rel > 1e-9 {
		t.Fatalf("EnergyWindow(%v, %v) = %v J across the ring boundary, backend says %v J",
			t1, t2, got, want)
	}
}

// TestSyncHistoryCountsWraparoundMisses pins the drain cursor's honesty:
// points the ring overwrote between syncs are reported missed, never
// silently skipped — and the series still accepts everything that
// survived.
func TestSyncHistoryCountsWraparoundMisses(t *testing.T) {
	m := NewManager(Config{RingCap: 64})
	defer m.Close()
	d, err := m.Add("wrapped", "stub", &stubSource{})
	if err != nil {
		t.Fatal(err)
	}
	// 500 ms produces ~500 ring points against 64 slots with no sync in
	// between: most points wrap out before the first drain sees them.
	m.StepAll(500 * time.Millisecond)
	appended, missed := d.SyncHistory()
	if missed == 0 {
		t.Fatal("no misses reported after overrunning the ring unsynced")
	}
	if appended == 0 || appended > 64 {
		t.Fatalf("drain appended %d points from a 64-slot ring", appended)
	}
	if hs := d.HistoryStats(); hs.RingMissed != missed {
		t.Fatalf("stats report %d missed, sync returned %d", hs.RingMissed, missed)
	}
	// The surviving span still answers; a second sync with no new points
	// is a clean no-op.
	if a2, m2 := d.SyncHistory(); a2 != 0 || m2 != 0 {
		t.Fatalf("idle re-sync moved %d points, missed %d — cursor drifted", a2, m2)
	}
}

// TestHistorySurvivesChurn pins retirement semantics: a handle to a
// removed station still answers energy windows over everything it
// measured (the final drain point included), and re-adopting the same
// name starts a fresh, empty series rather than resurrecting the old
// one.
func TestHistorySurvivesChurn(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	d, err := m.Add("churny", "stub", &stubSource{})
	if err != nil {
		t.Fatal(err)
	}
	m.StepAll(300 * time.Millisecond)
	st := d.Status()
	if err := m.Remove("churny"); err != nil {
		t.Fatal(err)
	}
	// The retired handle: close drained the partial block and synced it
	// into the series, so the full measured span is still queryable.
	got := d.EnergyWindow(0, st.Now)
	if rel := math.Abs(got-st.Joules) / st.Joules; rel > 0.01 {
		t.Fatalf("retired station EnergyWindow = %v J, lifetime Joules %v (%.2f%% off)",
			got, st.Joules, rel*100)
	}
	hsOld := d.HistoryStats()
	if hsOld.Points == 0 {
		t.Fatal("retired station lost its history points")
	}

	// Same name re-adopted: a brand-new series, empty until it measures.
	d2, err := m.Add("churny", "stub", &stubSource{})
	if err != nil {
		t.Fatal(err)
	}
	if hs := d2.HistoryStats(); hs.Appended != 0 {
		t.Fatalf("re-adopted station inherited %d appended points", hs.Appended)
	}
	m.StepAll(50 * time.Millisecond)
	if j := d2.EnergyWindow(0, 50*time.Millisecond); j <= 0 {
		t.Fatalf("re-adopted station EnergyWindow = %v J after 50 ms at 60 W", j)
	}
	// The old handle's answer is unchanged by its successor's life.
	if again := d.EnergyWindow(0, st.Now); again != got {
		t.Fatalf("retired handle's answer drifted: %v J then %v J", got, again)
	}
}

// TestFleetEnergyWindowZeroIntervalContract propagates the pmt.Watts
// zero-interval contract up through the fleet layer: empty and inverted
// windows are exactly 0 J on devices and on the manager aggregate, with
// or without the history tier.
func TestFleetEnergyWindowZeroIntervalContract(t *testing.T) {
	for _, cfg := range []Config{{}, {HistoryBytes: -1}} {
		m := NewManager(cfg)
		d, err := m.Add("z", "stub", &stubSource{})
		if err != nil {
			t.Fatal(err)
		}
		m.StepAll(100 * time.Millisecond)
		mid := 50 * time.Millisecond
		if j := d.EnergyWindow(mid, mid); j != 0 {
			t.Fatalf("empty window = %v J, want exactly 0", j)
		}
		if j := d.EnergyWindow(mid, mid-time.Millisecond); j != 0 {
			t.Fatalf("inverted window = %v J, want exactly 0", j)
		}
		if j := m.EnergyWindow(mid, mid); j != 0 {
			t.Fatalf("manager empty window = %v J, want exactly 0", j)
		}
		m.Close()
	}
}

// TestHistoryDisabled pins the fallback: with the tier disabled the
// station reports empty stats and EnergyWindow integrates the ring's
// held points directly — same clipping, same zero-interval contract.
func TestHistoryDisabled(t *testing.T) {
	m := NewManager(Config{HistoryBytes: -1})
	defer m.Close()
	d, err := m.Add("bare", "stub", &stubSource{})
	if err != nil {
		t.Fatal(err)
	}
	m.StepAll(200 * time.Millisecond)
	if hs := d.HistoryStats(); hs.Points != 0 || hs.Bytes != 0 {
		t.Fatalf("disabled tier reports stats %+v", hs)
	}
	if a, miss := d.SyncHistory(); a != 0 || miss != 0 {
		t.Fatalf("disabled tier sync moved %d points, missed %d", a, miss)
	}
	// 60 W flat from the stub: the ring fallback is exact over any
	// window inside the held span.
	got := d.EnergyWindow(50*time.Millisecond, 150*time.Millisecond)
	if want := 6.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("ring-fallback EnergyWindow = %v J, want %v J", got, want)
	}
}

// TestManagerHistoryStatsAggregates checks the fleet-wide aggregate sums
// across stations and that the shared latency histograms advance on
// sync and query.
func TestManagerHistoryStatsAggregates(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	for _, name := range []string{"a0", "a1", "a2"} {
		if _, err := m.Add(name, "stub", &stubSource{}); err != nil {
			t.Fatal(err)
		}
	}
	m.StepAll(100 * time.Millisecond)
	if appended, missed := m.SyncHistory(); appended == 0 || missed != 0 {
		t.Fatalf("fleet sync appended %d, missed %d", appended, missed)
	}
	hs := m.HistoryStats()
	if hs.Points == 0 || hs.Bytes == 0 {
		t.Fatalf("aggregate stats empty after sync: %+v", hs)
	}
	var per uint64
	for _, name := range []string{"a0", "a1", "a2"} {
		per += m.Device(name).HistoryStats().Points
	}
	if hs.Points != per {
		t.Fatalf("aggregate points %d != per-station sum %d", hs.Points, per)
	}
	if m.HistoryAppendHist().Count() == 0 {
		t.Fatal("append histogram never recorded a sync pass")
	}
	m.EnergyWindow(0, 100*time.Millisecond)
	if m.HistoryQueryHist().Count() == 0 {
		t.Fatal("query histogram never recorded a window query")
	}
}

// TestEnergyWindowAgreesWithPMTInterval is the tentpole's shared-stream
// check: a fleet station and a pmt.SourceMeter built over identical
// deterministic sources (same kind, same seed) must agree — the
// interval-read model (two Reads bracketing the window) and the
// streaming model (history EnergyWindow) measure the same energy.
func TestEnergyWindowAgreesWithPMTInterval(t *testing.T) {
	streamSrc, err := simsetup.NewStation("rapl", 77)
	if err != nil {
		t.Fatal(err)
	}
	intervalSrc, err := simsetup.NewStation("rapl", 77)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Config{})
	defer m.Close()
	d, err := m.Add("twin", "rapl", streamSrc)
	if err != nil {
		t.Fatal(err)
	}
	meter := pmt.NewSourceMeter("rapl", intervalSrc)

	m.StepAll(200 * time.Millisecond)
	s1 := meter.Read(200 * time.Millisecond)
	m.StepAll(2 * time.Second)
	s2 := meter.Read(2200 * time.Millisecond)
	m.StepAll(100 * time.Millisecond)

	got := d.EnergyWindow(s1.Time, s2.Time)
	want := pmt.Joules(s1, s2)
	if want <= 0 {
		t.Fatalf("interval meter saw no energy (%v J)", want)
	}
	if rel := math.Abs(got-want) / want; rel > 0.01 {
		t.Fatalf("EnergyWindow = %v J, pmt interval read says %v J (%.2f%% off, want <= 1%%)",
			got, want, rel*100)
	}
}
