// The fleet side of the long-horizon history tier (internal/history):
// each station owns a compressed Series fed by draining its downsample
// ring, and answers windowed energy queries over it.
//
// The tier is pull-based by design. Ingest never touches it — the
// 20 kHz fold stays zero-alloc and history-free — and instead a sync
// pass (every query, the daemon's timer, retirement) drains the ring
// points produced since the last pass into the series, addressed by the
// ring's absolute push ordinals so any number of wraparounds between
// passes are detected (and counted) rather than silently skipped.

package fleet

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/history"
)

// deviceHistory is one station's history-tier state: the compressed
// series plus the drain cursor over the ring's absolute push ordinals.
// Its own mutex serialises sync passes; it never nests with the
// device's ingest mutex, so a history drain can never stall ingest.
type deviceHistory struct {
	mu     sync.Mutex
	series *history.Series
	cursor uint64
	missed atomic.Uint64 // ring points lost to wraparound between syncs
}

// newHistoryFor builds a station's history state from cfg; nil when the
// tier is disabled (negative HistoryBytes).
func newHistoryFor(cfg Config) *deviceHistory {
	if cfg.HistoryBytes < 0 {
		return nil
	}
	return &deviceHistory{series: history.New(history.Config{
		MaxBytes: cfg.HistoryBytes,
		Quantum:  cfg.HistoryQuantum,
	})}
}

// drainChunk is the ring points one DrainInto pass copies; the scratch
// lives in a pool so concurrent sync passes across stations neither
// share a buffer nor allocate one per pass.
const drainChunk = 512

type drainBuf struct {
	t [drainChunk]time.Duration
	w [drainChunk]float64
}

var drainScratch = sync.Pool{New: func() any { return new(drainBuf) }}

// HistoryStats is a station's (or, summed, a fleet's) history-tier
// accounting: the series' own compression and eviction counters plus
// the drain-side loss counter.
type HistoryStats struct {
	history.Stats
	// RingMissed counts ring points that wrapped out between sync
	// passes and so never reached the history tier — nonzero means the
	// sync cadence is too slow for the ring capacity.
	RingMissed uint64 `json:"ring_missed"`
}

// SyncHistory drains the ring points produced since the last sync into
// the station's compressed history series. It returns how many points
// were appended and how many were missed to ring wraparound. Safe from
// any goroutine, concurrently with ingest — the drain reads the ring
// under the ring's own lock in bounded chunks and never takes the
// ingest mutex. A no-op (0, 0) on stations running without the tier.
func (d *Device) SyncHistory() (appended int, missed uint64) {
	h := d.hist
	if h == nil {
		return 0, 0
	}
	began := time.Now()
	h.mu.Lock()
	buf := drainScratch.Get().(*drainBuf)
	for {
		n, miss, next := d.ring.DrainInto(h.cursor, buf.t[:], buf.w[:])
		h.cursor = next
		if miss > 0 {
			missed += miss
			h.missed.Add(miss)
		}
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			h.series.Append(buf.t[i], buf.w[i])
		}
		appended += n
		if n < drainChunk {
			break
		}
	}
	drainScratch.Put(buf)
	h.mu.Unlock()
	if d.histAppend != nil {
		d.histAppend.Record(time.Since(began))
	}
	return appended, missed
}

// EnergyWindow returns the station's summed-power energy over the
// virtual-time window [from, to], in joules: the windowed-query face of
// the interval-read model (two Read calls bracketing a workload). The
// series is synced first, so the answer includes every ring point
// produced so far. Integration is trapezoidal with partial-interval
// clipping at both edges; an empty or inverted window is exactly 0 J,
// never NaN — the same zero-interval contract as pmt.Watts. Stations
// running without the history tier fall back to integrating the ring's
// held points directly.
func (d *Device) EnergyWindow(from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	began := time.Now()
	var j float64
	if d.hist != nil {
		d.SyncHistory()
		j = d.hist.series.EnergyWindow(from, to)
	} else {
		pts := d.ring.Snapshot(0)
		for i := 1; i < len(pts); i++ {
			j += history.SegmentEnergy(pts[i-1].Time, pts[i-1].Total,
				pts[i].Time, pts[i].Total, from, to)
		}
	}
	if d.histQuery != nil {
		d.histQuery.Record(time.Since(began))
	}
	return j
}

// HistoryInto appends the station's stored history points with
// timestamps in [from, to] to dst, oldest first, after syncing the
// series — the decode path long-range trace exports use. Stations
// running without the tier fall back to the ring's held points.
func (d *Device) HistoryInto(dst []history.Point, from, to time.Duration) []history.Point {
	if d.hist == nil {
		for _, p := range d.ring.Snapshot(0) {
			if p.Time >= from && p.Time <= to {
				dst = append(dst, history.Point{Time: p.Time, Watts: p.Total})
			}
		}
		return dst
	}
	d.SyncHistory()
	return d.hist.series.PointsInto(dst, from, to)
}

// HistoryBounds returns the timestamps of the oldest and newest history
// points held after a sync, and whether any are held at all.
func (d *Device) HistoryBounds() (first, last time.Duration, ok bool) {
	if d.hist == nil {
		return 0, 0, false
	}
	d.SyncHistory()
	return d.hist.series.Bounds()
}

// HistoryStats returns the station's history-tier accounting. The
// series counters are atomic and the missed counter likewise, so this
// is safe per station per scrape without locks.
func (d *Device) HistoryStats() HistoryStats {
	var hs HistoryStats
	if d.hist != nil {
		hs.Stats = d.hist.series.Stats()
		hs.RingMissed = d.hist.missed.Load()
	}
	return hs
}

// SyncHistory drains every station's ring into its history series —
// the fleet-wide pass a daemon runs on a timer so ring wraparound
// between queries loses nothing. Returns the totals across stations.
func (m *Manager) SyncHistory() (appended int, missed uint64) {
	for s := range m.shards {
		for _, d := range m.shards[s].list() {
			a, miss := d.SyncHistory()
			appended += a
			missed += miss
		}
	}
	return appended, missed
}

// EnergyWindow sums Device.EnergyWindow over the fleet: the total
// energy every current station spent inside [from, to], in joules.
// An empty or inverted window is exactly 0 J.
func (m *Manager) EnergyWindow(from, to time.Duration) float64 {
	var j float64
	for s := range m.shards {
		for _, d := range m.shards[s].list() {
			j += d.EnergyWindow(from, to)
		}
	}
	return j
}

// HistoryStats sums every current station's history-tier accounting —
// the scrape-path aggregate, assembled from atomic counters only.
func (m *Manager) HistoryStats() HistoryStats {
	var hs HistoryStats
	for s := range m.shards {
		for _, d := range m.shards[s].list() {
			st := d.HistoryStats()
			hs.Points += st.Points
			hs.Appended += st.Appended
			hs.Dropped += st.Dropped
			hs.EvictedPoints += st.EvictedPoints
			hs.Blocks += st.Blocks
			hs.Bytes += st.Bytes
			hs.RingMissed += st.RingMissed
		}
	}
	return hs
}
