package fleet

// Tests for the station health watchdog: each detector (gap, flatline,
// spike quarantine) driving Status.Health through its episode and back,
// the restart-with-backoff path from first fault to park, marker survival
// through a dropout fault plus fleet downsampling, the zero-allocation
// ingest contract with fault stages in the chain, and the faulted churn
// soak the CI job runs under -race.

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/source"
)

// waveSource is the watchdog tests' controllable backend: a 20 kHz
// three-channel source whose total ramps 60..63.9 W (so healthy blocks are
// never flat), with switches for the fault modes the watchdog detects.
// Mutate the switches only between StepAll calls — the tests drive the
// manager synchronously, never via Start.
type waveSource struct {
	now   time.Duration
	last  time.Duration
	joule float64
	count int

	mute      bool // deliver nothing; the muted span's samples are lost
	flat      bool // emit a constant 60 W — a stuck register
	failReads int  // reads left to fail with an error; -1 = fail forever
	glitchAt  int  // 1-based ordinal emitted at 10x power; 0 = never
}

func (s *waveSource) Meta() source.Meta {
	return source.Meta{Backend: "wave", RateHz: 20000,
		Channels: []string{"a", "b", "c"}}
}
func (s *waveSource) Now() time.Duration { return s.now }

func (s *waveSource) ReadInto(d time.Duration, b *source.Batch) error {
	b.Reset(3)
	target := s.now + d
	s.now = target
	if s.failReads != 0 {
		if s.failReads > 0 {
			s.failReads--
		}
		s.last = target // the failed span's samples are gone, not queued
		return errors.New("wave: injected read failure")
	}
	if s.mute {
		s.last = target
		return nil
	}
	if target <= s.last {
		return nil
	}
	k := int((target - s.last) / stubPeriod)
	b.Extend(k)
	t := s.last
	for i := 0; i < k; i++ {
		t += stubPeriod
		s.count++
		w := 60.0
		if !s.flat {
			w += float64(s.count%40) * 0.1
		}
		if s.count == s.glitchAt {
			w *= 10
		}
		b.Time[i] = t
		b.Total[i] = w
		c := b.Chans[i*3 : i*3+3]
		c[0], c[1], c[2] = w/6, w/3, w/2
		s.joule += w * stubPeriod.Seconds()
	}
	s.last = t
	return nil
}

func (s *waveSource) Joules() float64 { return s.joule }
func (s *waveSource) Resyncs() int    { return 0 }
func (s *waveSource) Close()          {}

// restartSource adds the source.Restarter surface: the watchdog's
// backoff/restart/park path only engages for sources advertising it.
type restartSource struct {
	waveSource
	restartErr error
	restarted  int
}

func (s *restartSource) Restart() error {
	s.restarted++
	if s.restartErr != nil {
		return s.restartErr
	}
	s.failReads = 0 // a successful restart heals the backend
	return nil
}

// healthEvents returns the station's watchdog event reasons, in order.
func healthEvents(m *Manager, station string, typ string) []string {
	var out []string
	for _, ev := range m.Events().Tail(0) {
		if ev.Station == station && ev.Type == typ {
			out = append(out, ev.Reason)
		}
	}
	return out
}

// TestHealthFlatlineAndRecovery: a stuck register serving fake liveness —
// samples at rate, bit-identical values — must flatline within the
// FlatlineWindow, and resume healthy once real variation returns.
func TestHealthFlatlineAndRecovery(t *testing.T) {
	src := &waveSource{flat: true}
	m := NewManager(Config{})
	d, err := m.Add("dev0", "wave", src)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)

	// Default FlatlineWindow 50 ms = 50 identical block-20 points.
	m.StepAll(150 * time.Millisecond)
	st := d.Status()
	if st.Health != HealthFlatlined {
		t.Fatalf("health = %q after 150ms of constant values, want %q", st.Health, HealthFlatlined)
	}
	if st.Flatlines != 1 {
		t.Errorf("flatlines = %d, want 1 episode", st.Flatlines)
	}

	src.flat = false
	m.StepAll(100 * time.Millisecond)
	st = d.Status()
	if st.Health != HealthHealthy {
		t.Errorf("health = %q after variation returned, want %q", st.Health, HealthHealthy)
	}
	if st.Flatlines != 1 {
		t.Errorf("flatlines = %d after recovery, want still 1", st.Flatlines)
	}
	if got := healthEvents(m, "dev0", obs.EventHealth); len(got) != 2 ||
		got[0] != HealthFlatlined || got[1] != HealthHealthy {
		t.Errorf("health events = %v, want [flatlined healthy]", got)
	}
}

// TestHealthGapDegradedAndRecovery: a delivery gap longer than the
// two-block threshold opens a gap episode and degrades the station; two
// clean delivery windows plus the recovery hold bring it back.
func TestHealthGapDegradedAndRecovery(t *testing.T) {
	src := &waveSource{}
	m := NewManager(Config{})
	d, err := m.Add("dev0", "wave", src)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)

	m.StepAll(100 * time.Millisecond)
	if st := d.Status(); st.Health != HealthHealthy || st.Gaps != 0 {
		t.Fatalf("baseline health = %q gaps = %d, want healthy, 0", st.Health, st.Gaps)
	}

	// 20 ms of silence: 400 missing samples against a 42-sample threshold,
	// far below the 250 ms stale cutoff — a gap, not an outage.
	src.mute = true
	m.StepAll(20 * time.Millisecond)
	st := d.Status()
	if st.Health != HealthDegraded {
		t.Fatalf("health = %q during a 20ms gap, want %q", st.Health, HealthDegraded)
	}
	if st.Gaps != 1 {
		t.Errorf("gaps = %d, want 1 episode", st.Gaps)
	}

	src.mute = false
	m.StepAll(300 * time.Millisecond)
	st = d.Status()
	if st.Health != HealthHealthy {
		t.Errorf("health = %q after delivery resumed, want %q", st.Health, HealthHealthy)
	}
	if st.Gaps != 1 {
		t.Errorf("gaps = %d after one episode, want 1", st.Gaps)
	}
	if got := healthEvents(m, "dev0", obs.EventHealth); len(got) != 2 ||
		got[0] != HealthDegraded || got[1] != HealthHealthy {
		t.Errorf("health events = %v, want [degraded healthy]", got)
	}
}

// TestHealthStaleOnSilence: silence past Config.StaleAfter marks the
// station stale — its newest point is history, not telemetry — and a
// non-restartable source just waits for samples to resume.
func TestHealthStaleOnSilence(t *testing.T) {
	src := &waveSource{}
	m := NewManager(Config{StaleAfter: 20 * time.Millisecond})
	d, err := m.Add("dev0", "wave", src)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)

	m.StepAll(100 * time.Millisecond)
	src.mute = true
	m.StepAll(50 * time.Millisecond)
	if st := d.Status(); st.Health != HealthStale {
		t.Fatalf("health = %q after 50ms silence with StaleAfter=20ms, want %q",
			st.Health, HealthStale)
	}
	src.mute = false
	m.StepAll(300 * time.Millisecond)
	if st := d.Status(); st.Health != HealthHealthy {
		t.Errorf("health = %q after samples resumed, want %q", st.Health, HealthHealthy)
	}
}

// TestRestartBackoffAndRecovery walks the full fault cycle of a
// restartable source: read error → backoff window (stale, source not
// read) → restart attempt → first delivering read resets the budget and
// logs recovery.
func TestRestartBackoffAndRecovery(t *testing.T) {
	src := &restartSource{}
	m := NewManager(Config{})
	d, err := m.Add("dev0", "wave", src)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)

	m.StepAll(50 * time.Millisecond)
	src.failReads = 1
	m.StepAll(5 * time.Millisecond) // the erroring read: fault, backoff 4 steps
	if st := d.Status(); st.Health != HealthStale {
		t.Fatalf("health = %q in backoff, want %q", st.Health, HealthStale)
	}
	// Four steps drain the backoff window and attempt the restart; the
	// fifth is the first delivering read — the actual recovery.
	m.StepAll(25 * time.Millisecond)
	if src.restarted != 1 {
		t.Fatalf("source restarted %d times, want 1", src.restarted)
	}
	if st := d.Status(); st.Restarts != 1 {
		t.Errorf("status restarts = %d, want 1", st.Restarts)
	}
	if got := healthEvents(m, "dev0", obs.EventRestart); len(got) != 3 ||
		got[0] != "backoff" || got[1] != "restart" || got[2] != "recovered" {
		t.Fatalf("restart events = %v, want [backoff restart recovered]", got)
	}
	m.StepAll(300 * time.Millisecond)
	if st := d.Status(); st.Health != HealthHealthy {
		t.Errorf("health = %q after recovery, want %q", st.Health, HealthHealthy)
	}
}

// TestRestartParkedAfterBudget: a dead backend burns the whole bounded
// restart budget — doubling backoffs, each restart failing — and is then
// parked: permanently stale, never read or retried again.
func TestRestartParkedAfterBudget(t *testing.T) {
	src := &restartSource{
		waveSource: waveSource{failReads: -1},
		restartErr: errors.New("wave: backend is gone"),
	}
	m := NewManager(Config{})
	d, err := m.Add("dev0", "wave", src)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)

	// Budget 6, backoffs 4+8+16+32+64+128 = 252 steps: 300 steps reach
	// the park decision with margin.
	for i := 0; i < 300; i++ {
		m.StepAll(5 * time.Millisecond)
	}
	st := d.Status()
	if st.Health != HealthStale {
		t.Errorf("parked health = %q, want %q", st.Health, HealthStale)
	}
	if st.Restarts != 6 || src.restarted != 6 {
		t.Errorf("restart attempts = %d (source saw %d), want the budget of 6",
			st.Restarts, src.restarted)
	}
	events := healthEvents(m, "dev0", obs.EventRestart)
	if len(events) == 0 || events[len(events)-1] != "parked" {
		t.Fatalf("restart events = %v, want trailing \"parked\"", events)
	}
	// Parked is forever: more time brings no further reads or attempts.
	m.StepAll(time.Second)
	if again := healthEvents(m, "dev0", obs.EventRestart); len(again) != len(events) {
		t.Errorf("parked station kept emitting restart events: %v", again[len(events):])
	}
	if src.restarted != 6 {
		t.Errorf("parked station restarted its source again: %d", src.restarted)
	}
}

// TestSpikeQuarantine: an isolated 10x glitch sample is quarantined
// before the fold — counted, degrading the station, but never reaching
// the ring, the published watts or the block peaks.
func TestSpikeQuarantine(t *testing.T) {
	// Sample 1550 is the 50th of its 100-sample step: mid-batch, so both
	// neighbours exist (a batch-final glitch passes by design).
	src := &waveSource{glitchAt: 1550}
	m := NewManager(Config{})
	d, err := m.Add("dev0", "wave", src)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)

	m.StepAll(80 * time.Millisecond)
	st := d.Status()
	if st.SpikesQuarantined != 1 {
		t.Fatalf("spikes quarantined = %d, want 1", st.SpikesQuarantined)
	}
	if st.Health != HealthDegraded {
		t.Errorf("health = %q right after a quarantined spike, want %q",
			st.Health, HealthDegraded)
	}
	for _, p := range d.Ring().Snapshot(0) {
		if p.Max > 100 {
			t.Fatalf("glitch reached the ring: block max %v W (glitch ~630 W)", p.Max)
		}
	}
	m.StepAll(200 * time.Millisecond)
	st = d.Status()
	if st.Health != HealthHealthy {
		t.Errorf("health = %q after the spike gate cooled, want %q", st.Health, HealthHealthy)
	}
	if st.SpikesQuarantined != 1 {
		t.Errorf("spikes quarantined = %d after recovery, want still 1", st.SpikesQuarantined)
	}
}

// TestMarkerSurvivesDropoutAndDownsampling is the fault-path marker
// regression: a marked sample that survives a dropout stage must land in
// the station's marker counter and the right ring point; one that is
// dropped must vanish without corrupting any other point. The test is
// self-consistent — a direct read of an identically seeded chain decides
// which case this seed produces and where the marker lands.
func TestMarkerSurvivesDropoutAndDownsampling(t *testing.T) {
	const markAt, seed = 37, 3
	mkChain := func() source.Source {
		return pipeline.Chain(&stubSource{markAt: markAt},
			pipeline.Dropout(0.5, time.Millisecond, seed))
	}

	// Direct run: count delivered samples and find the marker's position
	// in the compacted stream.
	direct := mkChain()
	var b source.Batch
	delivered, survived, markIdx := 0, 0, -1
	for i := 0; i < 4; i++ {
		direct.ReadInto(5*time.Millisecond, &b)
		for _, mk := range b.Marks {
			survived++
			markIdx = delivered + mk
		}
		delivered += b.Len()
	}
	if delivered == 0 {
		t.Fatal("dropout p=0.5 delivered nothing over 20ms — seed pathological")
	}

	// Fleet run of the identically seeded chain, same 5 ms slicing.
	m := NewManager(Config{})
	d, err := m.Add("dev0", "wave|dropout", mkChain())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	m.StepAll(20 * time.Millisecond)

	st := d.Status()
	if st.Samples != uint64(delivered) {
		t.Errorf("fleet ingested %d samples, direct run delivered %d", st.Samples, delivered)
	}
	if st.Marks != uint64(survived) {
		t.Errorf("status marks = %d, direct run delivered %d markers", st.Marks, survived)
	}
	pts := d.Ring().Snapshot(0)
	total := 0
	for _, p := range pts {
		total += p.Marks
	}
	if total != survived {
		t.Errorf("ring holds %d marks, want %d", total, survived)
	}
	if survived > 0 {
		// Block-20 downsampling: the compacted index decides the point.
		want := markIdx / 20
		if want >= len(pts) || pts[want].Marks != 1 {
			t.Errorf("marker at compacted index %d not in ring point %d (%d points)",
				markIdx, want, len(pts))
		}
	}
}

// TestFaultedIngestSteadyStateZeroAlloc is the acceptance zero-alloc
// guard with fault stages in the ingest chain: dropout compaction, spike
// glitches and timestamp jitter over the 20 kHz stub still cost no
// allocations per step once warm — health detection included.
func TestFaultedIngestSteadyStateZeroAlloc(t *testing.T) {
	src := pipeline.Chain(&stubSource{},
		pipeline.Dropout(0.1, time.Millisecond, 21),
		pipeline.Spike(0.001, 5, 22),
		pipeline.Jitter(2*time.Microsecond, 23))
	m := NewManager(Config{})
	if _, err := m.Add("dev0", "stub|faulted", src); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	m.StepAll(300 * time.Millisecond) // warm stages, ring, and health state
	allocs := testing.AllocsPerRun(100, func() {
		m.StepAll(5 * time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("steady-state faulted ingest allocates %v per step, want 0", allocs)
	}
}

// TestChurnFaulted is the faulted variant of TestChurn and the CI soak's
// in-repo body: every station carries fault stages, churners cycle
// faulted stations through the full lifecycle while a stepper advances
// the fleet, snapshotters verify the health counters only ever grow, and
// the event ring must account exactly — zero drops — for every lifecycle
// event despite the extra health/restart traffic.
func TestChurnFaulted(t *testing.T) {
	faulted := func(seed uint64) source.Source {
		return pipeline.Chain(&stubSource{},
			pipeline.Dropout(0.2, time.Millisecond, seed),
			pipeline.Spike(0.001, 5, seed+1))
	}
	const base = 4
	m := NewManager(Config{Slice: time.Millisecond, EventCap: 1 << 16})
	for i := 0; i < base; i++ {
		if _, err := m.Add(fmt.Sprintf("base%d", i), "stub|faulted", faulted(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(m.Close)
	m.Start()
	defer m.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var churns atomic.Uint64

	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("churn%d", g)
				d, err := m.Add(name, "stub|faulted", faulted(uint64(100+g)))
				if err != nil {
					t.Errorf("churn Add(%s): %v", name, err)
					return
				}
				ch, cancel := d.Subscribe(8)
				runtime.Gosched()
				if err := m.Remove(name); err != nil {
					t.Errorf("churn Remove(%s): %v", name, err)
					return
				}
				for range ch {
				}
				cancel()
				churns.Add(1)
			}
		}(g)
	}
	// Snapshotters double as the monotonicity check: a base station's
	// episode counters never decrease, and its health string always parses
	// to a known severity rank.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := make(map[string]Status, base)
			var snap []Status
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap = m.SnapshotInto(snap[:0])
				for i := range snap {
					st := &snap[i]
					if !strings.HasPrefix(st.Name, "base") {
						continue
					}
					if HealthLevel(st.Health) == int(healthStale) && st.Health != HealthStale {
						t.Errorf("%s: unknown health %q published", st.Name, st.Health)
						return
					}
					if p, ok := prev[st.Name]; ok {
						if st.Gaps < p.Gaps || st.Flatlines < p.Flatlines ||
							st.SpikesQuarantined < p.SpikesQuarantined || st.Restarts < p.Restarts {
							t.Errorf("%s: health counters went backwards: %+v then %+v", st.Name, p, *st)
							return
						}
					}
					prev[st.Name] = *st
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.StepAll(100 * time.Microsecond)
			}
		}
	}()

	time.Sleep(250 * time.Millisecond)
	close(stop)
	wg.Wait()

	if churns.Load() == 0 {
		t.Fatal("no churn cycles completed")
	}
	if got := m.Size(); got != base {
		t.Errorf("fleet size after churn = %d, want %d", got, base)
	}
	if got := m.Events().Dropped(); got != 0 {
		t.Fatalf("event ring dropped %d events; raise EventCap, accounting is void", got)
	}
	var adopts, retires, closes uint64
	for _, ev := range m.Events().Tail(0) {
		if !strings.HasPrefix(ev.Station, "churn") {
			continue
		}
		switch ev.Type {
		case obs.EventAdopt:
			adopts++
		case obs.EventRetire:
			retires++
		case obs.EventClose:
			closes++
		}
	}
	if want := churns.Load(); adopts != want || retires != want || closes != want {
		t.Errorf("churn events adopt/retire/close = %d/%d/%d, want %d each",
			adopts, retires, closes, want)
	}
	// The faulted fleet must actually have exercised the watchdog: with
	// p=0.2 dropout on every station, gap episodes are a certainty.
	var gaps uint64
	for _, st := range m.Snapshot() {
		gaps += st.Gaps
	}
	if gaps == 0 {
		t.Error("no gap episodes across a faulted churn run — the watchdog slept through it")
	}
}
