// Federation failure-mode tests: httptest leaves running real fleet
// managers behind a kill switch, a head polling them through its real
// client/breaker/render path. Each test drives one failure the subsystem
// exists to absorb — a leaf down at head start, a leaf dying mid-poll
// and recovering, a flapping breaker stepped by an injected clock, a
// slow leaf hitting its per-leaf timeout without delaying the round, and
// duplicate station names across leaves.

package federation_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/export"
	"repro/internal/federation"
	"repro/internal/fleet"
	"repro/internal/obs"
)

// killableLeaf wraps a real leaf handler behind a kill switch. Down, it
// hijacks and closes the connection — the wire-level failure a crashed
// daemon produces, not a polite error page. It can also hold responses
// to play a leaf slower than the head's per-poll timeout.
type killableLeaf struct {
	h     http.Handler
	down  atomic.Bool
	delay atomic.Int64 // nanoseconds to hold each response

	mu       sync.Mutex
	requests int
	conds    int // requests carrying If-None-Match
}

func (k *killableLeaf) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	k.mu.Lock()
	k.requests++
	if r.Header.Get("If-None-Match") != "" {
		k.conds++
	}
	k.mu.Unlock()
	if k.down.Load() {
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		http.Error(w, "leaf down", http.StatusBadGateway)
		return
	}
	if d := time.Duration(k.delay.Load()); d > 0 {
		select {
		case <-time.After(d):
		case <-r.Context().Done():
			return
		}
	}
	k.h.ServeHTTP(w, r)
}

func (k *killableLeaf) conditional() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.conds
}

// fakeClock is an injectable poller clock for stepping breaker cooldowns.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newLeaf builds a real leaf — fleet manager, exporter, HTTP server —
// behind a kill switch. The fleet steps 20 ms of virtual time so the
// first poll already sees data.
func newLeaf(t testing.TB, spec string) (*fleet.Manager, *killableLeaf, *httptest.Server) {
	t.Helper()
	mgr, err := fleet.FromSpec(spec, 1, fleet.Config{RingCap: 128})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	mgr.StepAll(20 * time.Millisecond)
	kl := &killableLeaf{h: export.New(mgr).Handler()}
	srv := httptest.NewServer(kl)
	t.Cleanup(srv.Close)
	return mgr, kl, srv
}

func newHead(t testing.TB, cfg federation.Config) *federation.Head {
	t.Helper()
	h, err := federation.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// get fetches a head endpoint through its real handler.
func get(t testing.TB, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	b, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Code, string(b)
}

func fleetView(t testing.TB, h http.Handler) federation.HeadFleetJSON {
	t.Helper()
	code, body := get(t, h, "/api/fleet")
	if code != http.StatusOK {
		t.Fatalf("GET /api/fleet: status %d", code)
	}
	var v federation.HeadFleetJSON
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatalf("decode head /api/fleet: %v", err)
	}
	return v
}

// metricLine asserts body holds a sample line `name{labels} value`.
func metricLine(t testing.TB, body, line string) {
	t.Helper()
	if !strings.Contains(body, line+"\n") {
		t.Errorf("metrics body missing %q", line)
	}
}

// TestHeadLeafDownAtStart: one leaf never existed. The head still
// serves — the live leaf's stations fresh, the dead leaf at
// powersensor_leaf_up 0 with zero stations — and logs the leaf as down.
func TestHeadLeafDownAtStart(t *testing.T) {
	_, _, good := newLeaf(t, "a0=synth,a1=synth")
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from the first poll

	head := newHead(t, federation.Config{
		Leaves: []federation.Leaf{
			{Name: "good", URL: good.URL},
			{Name: "dead", URL: deadURL},
		},
		Timeout: 200 * time.Millisecond,
		Retries: -1,
	})
	head.PollOnce(context.Background())

	if up := head.UpCount(); up != 1 {
		t.Fatalf("UpCount = %d, want 1", up)
	}
	code, body := get(t, head.Handler(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", code)
	}
	metricLine(t, body, `powersensor_leaf_up{leaf="good"} 1`)
	metricLine(t, body, `powersensor_leaf_up{leaf="dead"} 0`)
	metricLine(t, body, `powersensor_leaf_stations{leaf="dead"} 0`)
	if !strings.Contains(body, `powersensor_board_watts{leaf="good",device="a0"}`) {
		t.Error("live leaf's stations missing from merged exposition")
	}

	v := fleetView(t, head.Handler())
	if len(v.Leaves) != 2 || len(v.Devices) != 2 {
		t.Fatalf("merged view: %d leaves, %d devices; want 2, 2", len(v.Leaves), len(v.Devices))
	}
	for _, li := range v.Leaves {
		if li.Leaf == "dead" && (li.Up || li.LastError == "") {
			t.Errorf("dead leaf info = %+v, want down with an error", li)
		}
	}
	// One live leaf keeps the head healthy.
	if code, _ := get(t, head.Handler(), "/healthz"); code != http.StatusOK {
		t.Errorf("healthz with one live leaf: status %d, want 200", code)
	}

	var sawDown, sawUp bool
	for _, ev := range head.Events().Tail(0) {
		if ev.Type == obs.EventLeaf && ev.Station == "dead" && ev.Reason == "down" {
			sawDown = true
		}
		if ev.Type == obs.EventLeaf && ev.Station == "good" && ev.Reason == "up" {
			sawUp = true
		}
	}
	if !sawDown || !sawUp {
		t.Errorf("event ring missing lifecycle entries: sawDown=%v sawUp=%v", sawDown, sawUp)
	}
}

// TestHeadLeafDiesAndRecovers is the acceptance-criterion test: the head
// keeps answering /metrics and /api/fleet while its only leaf is killed
// and restarted, with powersensor_leaf_up tracking 1 → 0 → 1 and the
// dead episode serving the last-known stations marked stale.
func TestHeadLeafDiesAndRecovers(t *testing.T) {
	mgr, kl, srv := newLeaf(t, "s0=synth,s1=synth,s2=synth")
	head := newHead(t, federation.Config{
		Leaves:        []federation.Leaf{{Name: "l0", URL: srv.URL}},
		Timeout:       200 * time.Millisecond,
		Retries:       -1,
		FailThreshold: 100, // keep the breaker out of this test's way
	})
	ctx := context.Background()
	h := head.Handler()

	// Alive: fresh stations, leaf up.
	head.PollOnce(ctx)
	_, body := get(t, h, "/metrics")
	metricLine(t, body, `powersensor_leaf_up{leaf="l0"} 1`)
	metricLine(t, body, `powersensor_station_health{leaf="l0",device="s0"} 0`)
	v := fleetView(t, h)
	if len(v.Devices) != 3 || v.Devices[0].Stale || v.Devices[0].Health != fleet.HealthHealthy {
		t.Fatalf("live view = %+v, want 3 fresh healthy stations", v.Devices)
	}

	// Killed: the head still answers both endpoints; the stations serve
	// as last-known, marked stale, and leaf_up drops to 0.
	kl.down.Store(true)
	head.PollOnce(ctx)
	code, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics with leaf dead: status %d", code)
	}
	metricLine(t, body, `powersensor_leaf_up{leaf="l0"} 0`)
	metricLine(t, body, `powersensor_station_health{leaf="l0",device="s0"} 3`)
	if !strings.Contains(body, `powersensor_board_watts{leaf="l0",device="s0"}`) {
		t.Error("dead leaf's last-known stations vanished from the exposition")
	}
	v = fleetView(t, h)
	if len(v.Devices) != 3 {
		t.Fatalf("dead-leaf view has %d devices, want last-known 3", len(v.Devices))
	}
	for _, d := range v.Devices {
		if !d.Stale || d.Health != fleet.HealthStale {
			t.Errorf("station %s during outage: stale=%v health=%q, want stale", d.Name, d.Stale, d.Health)
		}
	}
	// Sole leaf down: the whole downstream is dark, healthz degrades.
	if code, _ := get(t, h, "/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("healthz with every leaf down: status %d, want 503", code)
	}

	// Restarted: fresh again. The fleet moved while the head was blind;
	// recovery refetches in full and re-renders.
	mgr.StepAll(20 * time.Millisecond)
	kl.down.Store(false)
	head.PollOnce(ctx)
	_, body = get(t, h, "/metrics")
	metricLine(t, body, `powersensor_leaf_up{leaf="l0"} 1`)
	metricLine(t, body, `powersensor_station_health{leaf="l0",device="s0"} 0`)
	v = fleetView(t, h)
	for _, d := range v.Devices {
		if d.Stale || d.Health == fleet.HealthStale {
			t.Errorf("station %s after recovery still stale", d.Name)
		}
	}

	// The episode logged exactly up, down, up.
	var transitions []string
	for _, ev := range head.Events().Tail(0) {
		if ev.Type == obs.EventLeaf && ev.Station == "l0" {
			transitions = append(transitions, ev.Reason)
		}
	}
	if want := []string{"up", "down", "up"}; !equalStrings(transitions, want) {
		t.Errorf("leaf lifecycle events = %v, want %v", transitions, want)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestHeadBreakerFlapping steps a flapping leaf through the breaker's
// full cycle with an injected clock: failures open it, open rounds cost
// no poll, the cooldown admits a half-open probe, and a successful probe
// closes it — each transition logged to the event ring.
func TestHeadBreakerFlapping(t *testing.T) {
	_, kl, srv := newLeaf(t, "f0=synth")
	clock := &fakeClock{t: time.Unix(5000, 0)}
	head := newHead(t, federation.Config{
		Leaves:        []federation.Leaf{{Name: "flap", URL: srv.URL}},
		Timeout:       200 * time.Millisecond,
		Retries:       -1,
		FailThreshold: 2,
		OpenFor:       10 * time.Second,
		Now:           clock.Now,
	})
	ctx := context.Background()

	head.PollOnce(ctx) // healthy baseline
	kl.down.Store(true)
	head.PollOnce(ctx)
	head.PollOnce(ctx) // second consecutive failure opens the breaker

	v := fleetView(t, head.Handler())
	if v.Leaves[0].Breaker != "open" {
		t.Fatalf("breaker after %d failures = %q, want open", v.Leaves[0].ConsecutiveFailures, v.Leaves[0].Breaker)
	}
	pollsWhenOpened := v.Leaves[0].Polls

	// Open: rounds inside the cooldown never reach the wire.
	head.PollOnce(ctx)
	head.PollOnce(ctx)
	v = fleetView(t, head.Handler())
	if v.Leaves[0].Polls != pollsWhenOpened {
		t.Fatalf("open breaker let polls through: %d -> %d", pollsWhenOpened, v.Leaves[0].Polls)
	}

	// Cooldown over, leaf back: the single half-open probe closes it.
	clock.Advance(10 * time.Second)
	kl.down.Store(false)
	head.PollOnce(ctx)
	v = fleetView(t, head.Handler())
	if v.Leaves[0].Breaker != "closed" || !v.Leaves[0].Up {
		t.Fatalf("after successful probe: breaker=%q up=%v, want closed and up", v.Leaves[0].Breaker, v.Leaves[0].Up)
	}

	var states []string
	for _, ev := range head.Events().Tail(0) {
		if ev.Type == obs.EventBreaker {
			states = append(states, ev.Reason)
		}
	}
	if want := []string{"open", "half-open", "closed"}; !equalStrings(states, want) {
		t.Errorf("breaker events = %v, want %v", states, want)
	}
}

// TestHeadSlowLeafTimeout: a leaf slower than its per-poll timeout fails
// at the deadline instead of delaying the round — the fast leaf stays
// fresh and the whole round finishes far sooner than the slow leaf would
// ever answer.
func TestHeadSlowLeafTimeout(t *testing.T) {
	_, slow, slowSrv := newLeaf(t, "slow0=synth")
	_, _, fastSrv := newLeaf(t, "fast0=synth")
	slow.delay.Store(int64(5 * time.Second))

	head := newHead(t, federation.Config{
		Leaves: []federation.Leaf{
			{Name: "slow", URL: slowSrv.URL},
			{Name: "fast", URL: fastSrv.URL},
		},
		Timeout: 100 * time.Millisecond,
		Retries: -1,
		Workers: 2,
	})
	began := time.Now()
	head.PollOnce(context.Background())
	if took := time.Since(began); took > 2*time.Second {
		t.Fatalf("round with a 5s leaf took %v, want bounded by the 100ms per-leaf timeout", took)
	}
	_, body := get(t, head.Handler(), "/metrics")
	metricLine(t, body, `powersensor_leaf_up{leaf="fast"} 1`)
	metricLine(t, body, `powersensor_leaf_up{leaf="slow"} 0`)
	if !strings.Contains(body, `powersensor_board_watts{leaf="fast",device="fast0"}`) {
		t.Error("fast leaf's stations missing while the slow leaf timed out")
	}
}

// TestHeadDuplicateStationNames: the same station name on two leaves
// stays two distinct series (the leaf label) and two distinct merged
// JSON entries (the leaf field) — no renaming, no last-writer-wins.
func TestHeadDuplicateStationNames(t *testing.T) {
	_, _, a := newLeaf(t, "gpu0=synth")
	_, _, b := newLeaf(t, "gpu0=synth")
	head := newHead(t, federation.Config{
		Leaves: []federation.Leaf{
			{Name: "rack-a", URL: a.URL},
			{Name: "rack-b", URL: b.URL},
		},
		Timeout: 200 * time.Millisecond,
		Retries: -1,
	})
	head.PollOnce(context.Background())

	_, body := get(t, head.Handler(), "/metrics")
	for _, leaf := range []string{"rack-a", "rack-b"} {
		series := `powersensor_board_watts{leaf="` + leaf + `",device="gpu0"}`
		if !strings.Contains(body, series) {
			t.Errorf("merged exposition missing %s", series)
		}
	}

	v := fleetView(t, head.Handler())
	owners := map[string]int{}
	for _, d := range v.Devices {
		if d.Name == "gpu0" {
			owners[d.Leaf]++
		}
	}
	if owners["rack-a"] != 1 || owners["rack-b"] != 1 {
		t.Errorf("merged view owners of gpu0 = %v, want one per leaf", owners)
	}
}

// TestHeadCachedSegments: polls of a quiet leaf ride If-None-Match to a
// 304 and re-render nothing; a fleet that actually moves re-renders
// exactly once per generation change.
func TestHeadCachedSegments(t *testing.T) {
	mgr, kl, srv := newLeaf(t, "q0=synth,q1=synth")
	head := newHead(t, federation.Config{
		Leaves:  []federation.Leaf{{Name: "l0", URL: srv.URL}},
		Timeout: 200 * time.Millisecond,
		Retries: -1,
	})
	ctx := context.Background()

	head.PollOnce(ctx)
	head.PollOnce(ctx)
	head.PollOnce(ctx)
	_, body := get(t, head.Handler(), "/metrics")
	metricLine(t, body, `powersensor_leaf_renders_total{leaf="l0"} 1`)
	metricLine(t, body, `powersensor_leaf_polls_total{leaf="l0"} 3`)
	if conds := kl.conditional(); conds < 2 {
		t.Errorf("conditional polls = %d, want the 2nd and 3rd to carry If-None-Match", conds)
	}

	// The fleet moves: the next poll sees a new generation and re-renders.
	mgr.StepAll(20 * time.Millisecond)
	head.PollOnce(ctx)
	_, body = get(t, head.Handler(), "/metrics")
	metricLine(t, body, `powersensor_leaf_renders_total{leaf="l0"} 2`)
}

// TestHeadProxyDevice: per-device drill-downs route to the owning leaf,
// unknown leaves 404, and a down leaf answers 503 immediately instead of
// timing the client out.
func TestHeadProxyDevice(t *testing.T) {
	_, kl, srv := newLeaf(t, "p0=synth")
	head := newHead(t, federation.Config{
		Leaves:  []federation.Leaf{{Name: "l0", URL: srv.URL}},
		Timeout: 200 * time.Millisecond,
		Retries: -1,
	})
	head.PollOnce(context.Background())
	h := head.Handler()

	code, body := get(t, h, "/api/device/l0/p0/trace?format=json&points=4")
	if code != http.StatusOK {
		t.Fatalf("proxied trace: status %d, body %q", code, body)
	}
	if !strings.Contains(body, `"points"`) {
		t.Errorf("proxied trace body is not the leaf's trace payload: %q", body)
	}

	if code, _ := get(t, h, "/api/device/nosuch/p0/trace"); code != http.StatusNotFound {
		t.Errorf("unknown leaf: status %d, want 404", code)
	}

	kl.down.Store(true)
	head.PollOnce(context.Background())
	if code, _ := get(t, h, "/api/device/l0/p0/trace"); code != http.StatusServiceUnavailable {
		t.Errorf("down leaf: status %d, want 503", code)
	}
}

// TestHeadPollLoop exercises Start/Stop around the real ticker: the loop
// polls on its own, and Stop drains without racing a round in flight.
func TestHeadPollLoop(t *testing.T) {
	_, _, srv := newLeaf(t, "r0=synth")
	head := newHead(t, federation.Config{
		Leaves:   []federation.Leaf{{Name: "l0", URL: srv.URL}},
		Interval: 10 * time.Millisecond,
		Timeout:  200 * time.Millisecond,
		Retries:  -1,
	})
	head.Start()
	deadline := time.Now().Add(5 * time.Second)
	for head.Rounds() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	head.Stop()
	if r := head.Rounds(); r < 3 {
		t.Fatalf("poll loop completed %d rounds in 5s, want >= 3", r)
	}
	if head.UpCount() != 1 {
		t.Fatal("leaf not up after the poll loop ran")
	}
	head.Stop() // idempotent
}

// TestHeadConfigRejects pins New's validation: no leaves, empty names,
// missing URLs and duplicate names all fail loudly.
func TestHeadConfigRejects(t *testing.T) {
	cases := []federation.Config{
		{},
		{Leaves: []federation.Leaf{{Name: "", URL: "x:1"}}},
		{Leaves: []federation.Leaf{{Name: "a", URL: ""}}},
		{Leaves: []federation.Leaf{{Name: "a", URL: "x:1"}, {Name: "a", URL: "y:1"}}},
	}
	for i, cfg := range cases {
		if _, err := federation.New(cfg); err == nil {
			t.Errorf("case %d: New accepted invalid config %+v", i, cfg)
		}
	}
}

// BenchmarkHeadScrape measures the head's merged /metrics with quiet
// leaves: every per-leaf fleet section is served from its cached
// segment, so the scrape is segment memcpys plus the self-telemetry
// tail. The export-side BenchmarkLeafRender is the per-generation render
// this cache avoids.
func BenchmarkHeadScrape(b *testing.B) {
	for _, stations := range []int{64, 256} {
		per := stations / 2
		b.Run(sizeName(stations), func(b *testing.B) {
			specs := [2]string{leafSpec(0, per), leafSpec(1, per)}
			var leaves []federation.Leaf
			for li := 0; li < 2; li++ {
				mgr, err := fleet.FromSpec(specs[li], 1, fleet.Config{RingCap: 128})
				if err != nil {
					b.Fatal(err)
				}
				defer mgr.Close()
				mgr.StepAll(20 * time.Millisecond)
				srv := httptest.NewServer(export.New(mgr).Handler())
				defer srv.Close()
				leaves = append(leaves, federation.Leaf{
					Name: "leaf" + string(rune('0'+li)), URL: srv.URL,
				})
			}
			head, err := federation.New(federation.Config{
				Leaves:  leaves,
				Timeout: time.Second,
			})
			if err != nil {
				b.Fatal(err)
			}
			head.PollOnce(context.Background())
			h := head.Handler()
			req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("status %d", rec.Code)
				}
			}
		})
	}
}

func sizeName(n int) string {
	switch n {
	case 64:
		return "64"
	default:
		return "256"
	}
}

func leafSpec(leaf, stations int) string {
	var sb strings.Builder
	for i := 0; i < stations; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString("l")
		sb.WriteByte(byte('0' + leaf))
		sb.WriteString("s")
		for _, d := range []byte{byte('0' + i/100%10), byte('0' + i/10%10), byte('0' + i%10)} {
			sb.WriteByte(d)
		}
		sb.WriteString("=synth")
	}
	return sb.String()
}
