// Package federation aggregates many leaf psd daemons into one head: the
// multi-daemon tier that lets a fleet platform scale past one host. Leaf
// daemons serve their local fleets unchanged over the existing HTTP APIs;
// a Head polls every leaf's /api/fleet on a bounded worker pool — each
// poll with its own timeout, retry-with-backoff, and a per-leaf circuit
// breaker — and merges the leaf views into one namespaced exposition and
// one merged JSON fleet. A dead or slow leaf degrades the aggregate view
// instead of stalling it: its last-known stations serve marked stale,
// powersensor_leaf_up drops to 0, and its breaker caps what the failure
// can cost the poll loop.
//
// Topology:
//
//	scrapers ──▶ head psd ──┬─▶ leaf psd (fleet A, block-paced)
//	  heavy      (-federate)├─▶ leaf psd (fleet B)
//	  polling               └─▶ leaf psd (fleet C)
//
// The head absorbs scrape fan-in — it answers /metrics from per-leaf
// cached segments keyed by each leaf's fleet generation (carried in the
// /api/fleet body and its ETag), so repeat scrapes of a quiet leaf are
// memcpys and a quiet leaf is never refetched in full (If-None-Match
// answers 304). Per-device drill-downs proxy to the owning leaf:
// /api/device/{leaf}/{name}/energy and friends.
package federation

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/export"
	"repro/internal/fleet"
	"repro/internal/obs"
)

// Leaf names one leaf daemon: a stable name (the leaf label on every
// merged series) and the base URL of its HTTP API.
type Leaf struct {
	Name string
	URL  string
}

// Config tunes a Head. The zero value of every field takes a default.
type Config struct {
	// Leaves are the leaf daemons to aggregate. Required, and names must
	// be unique — the leaf label is what keeps duplicate station names
	// across leaves distinct.
	Leaves []Leaf
	// Interval is the poll cadence (default 1 s). Every Interval the head
	// polls all leaves concurrently on the worker pool.
	Interval time.Duration
	// Timeout bounds one poll attempt against one leaf (default
	// Interval/2, clamped to [50 ms, 2 s]). A slow leaf fails its poll at
	// the deadline instead of delaying the round's other leaves.
	Timeout time.Duration
	// Retries is how many extra in-poll attempts follow a failed one
	// (default 1; negative means none). Retries back off exponentially
	// from RetryBackoff.
	Retries int
	// RetryBackoff is the first retry's delay (default 50 ms), doubling
	// per attempt.
	RetryBackoff time.Duration
	// FailThreshold is the consecutive-failure count that opens a leaf's
	// circuit breaker (default 3).
	FailThreshold int
	// OpenFor is how long an open breaker rejects polls before admitting
	// a half-open probe (default 4×Interval).
	OpenFor time.Duration
	// Workers bounds how many leaves poll concurrently within one round
	// (default min(8, leaf count)).
	Workers int
	// EventCap is the capacity of the head's lifecycle event ring
	// (default 256): leaf up/down transitions and breaker state changes.
	EventCap int
	// Client is the HTTP client polls and proxies ride (default a fresh
	// http.Client; per-attempt contexts carry the timeouts). Tests
	// inject httptest clients here.
	Client *http.Client
	// Now is the poller's clock, driving breaker cooldowns (default
	// time.Now). Tests inject a fake clock to step breaker states
	// deterministically.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = c.Interval / 2
		if c.Timeout < 50*time.Millisecond {
			c.Timeout = 50 * time.Millisecond
		}
		if c.Timeout > 2*time.Second {
			c.Timeout = 2 * time.Second
		}
	}
	if c.Retries == 0 {
		c.Retries = 1
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 4 * c.Interval
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.EventCap <= 0 {
		c.EventCap = 256
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Leaf up/down states, tracked as an int so the initial state is
// "unknown" — the first poll outcome emits an event either way.
const (
	leafUnknown int32 = iota
	leafDown
	leafUp
)

// leafState is the head's view of one leaf.
type leafState struct {
	leaf    Leaf
	client  leafClient
	breaker *Breaker

	// Pre-rendered exposition fragments for the per-leaf self families.
	labelBlock   string // {leaf="X"}
	scrapeSeries *export.HistSeries

	// Poll telemetry: lock-free for the scrape path.
	polls      atomic.Uint64
	failures   atomic.Uint64
	renders    atomic.Uint64
	upState    atomic.Int32 // leafUnknown/leafDown/leafUp
	lastBreak  atomic.Int32 // last breaker state published as an event
	scrapeHist obs.Hist     // wall time of one poll (all attempts)

	// mu guards the view and its render. Polls (one in flight per leaf,
	// enforced by inflight) write; scrapes copy segments out under it.
	mu            sync.Mutex
	inflight      bool
	view          *export.FleetJSON // last-known-good fleet view
	etag          string
	stale         bool // the view is served as stale (leaf down)
	lastErr       string
	renderer      *export.LeafRenderer
	renderedGen   uint64
	renderedStale bool
	hasRender     bool
	staleScratch  []fleet.Status
}

// up reports whether the leaf's last poll succeeded.
func (ls *leafState) up() bool { return ls.upState.Load() == leafUp }

// Head aggregates leaf daemons: poll loop, merged views, HTTP surface.
type Head struct {
	cfg    Config
	leaves []*leafState
	byName map[string]*leafState
	events *obs.EventRing
	rounds atomic.Uint64

	// scratch pools per-scrape working state: the body buffer, staged
	// per-leaf segment copies, and a histogram snapshot.
	scratch sync.Pool

	mu      sync.Mutex
	stop    chan struct{}
	loopWG  sync.WaitGroup
	started bool
}

// headScrapeState is one head scrape's reusable working memory.
type headScrapeState struct {
	buf  []byte
	segs []export.LeafSegment
	hs   obs.HistSnapshot
}

// New returns a head over cfg.Leaves. It neither polls nor serves yet:
// call PollOnce for a synchronous first round (so the first scrape
// already sees data), Start for the poll loop, Handler for the HTTP
// surface.
func New(cfg Config) (*Head, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Leaves) == 0 {
		return nil, fmt.Errorf("federation: no leaves configured")
	}
	h := &Head{
		cfg:    cfg,
		byName: make(map[string]*leafState, len(cfg.Leaves)),
		events: obs.NewEventRing(cfg.EventCap),
	}
	for _, l := range cfg.Leaves {
		if l.Name == "" {
			return nil, fmt.Errorf("federation: leaf with empty name (url %q)", l.URL)
		}
		if l.URL == "" {
			return nil, fmt.Errorf("federation: leaf %s has no URL", l.Name)
		}
		if _, dup := h.byName[l.Name]; dup {
			return nil, fmt.Errorf("federation: duplicate leaf name %q", l.Name)
		}
		l.URL = trimURL(l.URL)
		ls := &leafState{
			leaf:       l,
			client:     leafClient{name: l.Name, url: l.URL, http: cfg.Client},
			breaker:    NewBreaker(cfg.FailThreshold, cfg.OpenFor),
			labelBlock: `{leaf="` + export.Escape(l.Name) + `"}`,
			scrapeSeries: export.NewHistSeries(famLeafScrape,
				`leaf="`+export.Escape(l.Name)+`"`),
			renderer: export.NewLeafRenderer(l.Name),
		}
		ls.lastBreak.Store(int32(BreakerClosed))
		h.leaves = append(h.leaves, ls)
		h.byName[l.Name] = ls
	}
	if h.cfg.Workers > len(h.leaves) {
		h.cfg.Workers = len(h.leaves)
	}
	h.scratch.New = func() any {
		return &headScrapeState{
			buf:  make([]byte, 0, 16<<10),
			segs: make([]export.LeafSegment, len(h.leaves)),
		}
	}
	return h, nil
}

// Leaves returns the configured leaf count.
func (h *Head) Leaves() int { return len(h.leaves) }

// Events returns the head's lifecycle event ring: one entry per leaf
// up/down transition and per breaker state change.
func (h *Head) Events() *obs.EventRing { return h.events }

// Rounds returns how many poll rounds have completed.
func (h *Head) Rounds() uint64 { return h.rounds.Load() }

// UpCount returns how many leaves the last polls found serving.
func (h *Head) UpCount() int {
	n := 0
	for _, ls := range h.leaves {
		if ls.up() {
			n++
		}
	}
	return n
}

// Start launches the poll loop: an immediate first round, then one round
// per Interval. Stop ends it.
func (h *Head) Start() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.started {
		return
	}
	h.started = true
	h.stop = make(chan struct{})
	h.loopWG.Add(1)
	go h.loop(h.stop)
}

func (h *Head) loop(stop chan struct{}) {
	defer h.loopWG.Done()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-stop
		cancel()
	}()
	h.PollOnce(ctx)
	tick := time.NewTicker(h.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			h.PollOnce(ctx)
		}
	}
}

// Stop ends the poll loop and waits for the in-flight round to finish.
// The HTTP surface keeps serving the last-polled views; Stop is the
// drain step of a graceful shutdown, not a teardown of state.
func (h *Head) Stop() {
	h.mu.Lock()
	if !h.started {
		h.mu.Unlock()
		return
	}
	h.started = false
	close(h.stop)
	h.mu.Unlock()
	h.loopWG.Wait()
}

// PollOnce runs one poll round: every leaf, dispatched across at most
// Config.Workers concurrent polls, each bounded by the per-leaf timeout
// and retry budget. It returns when the round completes — a slow or dead
// leaf delays the round by at most Timeout×(Retries+1) plus backoff, and
// an open breaker costs only the decision.
func (h *Head) PollOnce(ctx context.Context) {
	n := h.cfg.Workers
	if n > len(h.leaves) {
		n = len(h.leaves)
	}
	if n <= 1 {
		for _, ls := range h.leaves {
			h.pollLeaf(ctx, ls)
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(h.leaves) {
						return
					}
					h.pollLeaf(ctx, h.leaves[i])
				}
			}()
		}
		wg.Wait()
	}
	h.rounds.Add(1)
}

// pollLeaf runs one leaf's poll: breaker gate, fetch with retries,
// outcome bookkeeping. One poll per leaf is in flight at a time — if a
// previous round's poll is still running (a slow leaf slower than the
// interval), this round skips the leaf rather than stacking requests.
func (h *Head) pollLeaf(ctx context.Context, ls *leafState) {
	ls.mu.Lock()
	if ls.inflight {
		ls.mu.Unlock()
		return
	}
	ls.inflight = true
	etag := ls.etag
	ls.mu.Unlock()
	defer func() {
		ls.mu.Lock()
		ls.inflight = false
		ls.mu.Unlock()
	}()

	if !ls.breaker.Allow(h.cfg.Now()) {
		h.noteBreaker(ls)
		return
	}
	h.noteBreaker(ls) // open → half-open transition happens inside Allow

	ls.polls.Add(1)
	began := time.Now()
	view, newETag, notModified, err := h.fetch(ctx, ls, etag)
	ls.scrapeHist.Record(time.Since(began))
	if err != nil {
		ls.failures.Add(1)
		ls.breaker.Failure(h.cfg.Now())
		h.noteBreaker(ls)
		h.markDown(ls, err)
		return
	}
	ls.breaker.Success()
	h.noteBreaker(ls)
	h.markUp(ls, view, newETag, notModified)
}

// fetch attempts the leaf's /api/fleet up to 1+Retries times, each
// attempt under its own Timeout, backing off exponentially between
// attempts. Cancellation of ctx (head stopping) aborts the retry loop.
func (h *Head) fetch(ctx context.Context, ls *leafState, etag string) (view *export.FleetJSON, newETag string, notModified bool, err error) {
	backoff := h.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		actx, cancel := context.WithTimeout(ctx, h.cfg.Timeout)
		view, newETag, notModified, err = ls.client.fetchFleet(actx, etag)
		cancel()
		if err == nil || attempt >= h.cfg.Retries || ctx.Err() != nil {
			return view, newETag, notModified, err
		}
		select {
		case <-ctx.Done():
			return nil, "", false, ctx.Err()
		case <-time.After(backoff):
		}
		backoff *= 2
	}
}

// noteBreaker publishes the breaker's state as an event when it changed
// since the last note.
func (h *Head) noteBreaker(ls *leafState) {
	st := int32(ls.breaker.State())
	if prev := ls.lastBreak.Swap(st); prev != st {
		h.events.Append(obs.EventBreaker, ls.leaf.Name, "leaf", BreakerState(st).String())
	}
}

// markUp records a successful poll: the view (or, on 304, the retained
// one) serves fresh, and a down→up transition re-renders without the
// stale overlay and logs the recovery.
func (h *Head) markUp(ls *leafState, view *export.FleetJSON, newETag string, notModified bool) {
	ls.mu.Lock()
	ls.lastErr = ""
	if notModified {
		// Quiet leaf: the retained view is still current. Only a stale
		// overlay (down→up with an unchanged generation) forces a
		// re-render.
		ls.stale = false
	} else {
		ls.view = view
		ls.etag = newETag
		ls.stale = false
	}
	if ls.view != nil && (!ls.hasRender || ls.renderedStale || ls.renderedGen != ls.view.Generation) {
		ls.renderer.Render(ls.view.Devices)
		ls.renderedGen = ls.view.Generation
		ls.renderedStale = false
		ls.hasRender = true
		ls.renders.Add(1)
	}
	ls.mu.Unlock()
	if prev := ls.upState.Swap(leafUp); prev != leafUp {
		h.events.Append(obs.EventLeaf, ls.leaf.Name, "leaf", "up")
	}
}

// markDown records a failed poll: the last-known view re-renders with
// every station's health overridden to stale (the head is serving
// history, not telemetry), the ETag drops so recovery refetches in full
// (a restarted leaf resets its generations), and the transition logs
// once per episode.
func (h *Head) markDown(ls *leafState, err error) {
	ls.mu.Lock()
	ls.lastErr = err.Error()
	ls.etag = ""
	ls.stale = true
	if ls.view != nil && !ls.renderedStale {
		ls.staleScratch = append(ls.staleScratch[:0], ls.view.Devices...)
		for i := range ls.staleScratch {
			ls.staleScratch[i].Health = fleet.HealthStale
		}
		ls.renderer.Render(ls.staleScratch)
		ls.renderedGen = ls.view.Generation
		ls.renderedStale = true
		ls.hasRender = true
		ls.renders.Add(1)
	}
	ls.mu.Unlock()
	if prev := ls.upState.Swap(leafDown); prev != leafDown {
		h.events.Append(obs.EventLeaf, ls.leaf.Name, "leaf", "down")
	}
}

// Generation returns a fingerprint of the head's merged state: each
// leaf's last-seen fleet generation folded with its up/stale
// disposition. It changes whenever any leaf's view or health changes —
// the condition under which any head-derived rendering goes stale.
func (h *Head) Generation() uint64 {
	const (
		fnvOffset64 = 14695981039346656037
		fnvPrime64  = 1099511628211
	)
	g := uint64(fnvOffset64)
	mix := func(v uint64) {
		g ^= v
		g *= fnvPrime64
	}
	for _, ls := range h.leaves {
		ls.mu.Lock()
		var gen uint64
		if ls.view != nil {
			gen = ls.view.Generation
		}
		stale := ls.stale
		ls.mu.Unlock()
		mix(gen)
		if stale {
			mix(1)
		}
		mix(uint64(ls.upState.Load()))
	}
	return g
}
