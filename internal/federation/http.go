// The head's HTTP surface: the merged /metrics exposition assembled from
// per-leaf cached segments, the merged JSON fleet view, per-device
// drill-down proxies to the owning leaf, the head-aware health probe and
// the lifecycle event log.

package federation

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/export"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/version"
)

// Head self-telemetry family names and pre-rendered headers.
const famLeafScrape = "powersensor_leaf_scrape_duration_seconds"

var (
	hdrHeadLeaves = export.Header("powersensor_head_leaves",
		"Leaf daemons this head aggregates.", "gauge")
	hdrHeadRounds = export.Header("powersensor_head_poll_rounds_total",
		"Completed poll rounds across all leaves.", "counter")
	hdrLeafUp = export.Header("powersensor_leaf_up",
		"Whether the last poll of each leaf succeeded; stations of a down leaf serve stale.", "gauge")
	hdrLeafStations = export.Header("powersensor_leaf_stations",
		"Stations in each leaf's last-known fleet view.", "gauge")
	hdrLeafGeneration = export.Header("powersensor_leaf_generation",
		"Block-boundary generation fingerprint of each leaf's last-known view.", "gauge")
	hdrLeafBreaker = export.Header("powersensor_leaf_breaker_state",
		"Circuit breaker state per leaf: 0 closed, 1 half-open, 2 open.", "gauge")
	hdrLeafConsecFails = export.Header("powersensor_leaf_consecutive_failures",
		"Current consecutive poll-failure run per leaf; resets on success.", "gauge")
	hdrLeafBreakerOpens = export.Header("powersensor_leaf_breaker_opens_total",
		"Times each leaf's circuit breaker has opened.", "counter")
	hdrLeafPolls = export.Header("powersensor_leaf_polls_total",
		"Poll attempts per leaf (breaker-rejected rounds excluded).", "counter")
	hdrLeafPollFails = export.Header("powersensor_leaf_poll_failures_total",
		"Polls per leaf that failed after all in-poll retries.", "counter")
	hdrLeafRenders = export.Header("powersensor_leaf_renders_total",
		"Exposition segment re-renders per leaf; quiet leaves serve cached segments instead.", "counter")
	hdrLeafScrape = export.Header(famLeafScrape,
		"Wall time of one leaf poll, all in-poll attempts included.", "histogram")
	hdrHeadEvents = export.Header("powersensor_head_events_total",
		"Head lifecycle events ever recorded (leaf up/down, breaker transitions).", "counter")
	hdrHeadEventsDropped = export.Header("powersensor_head_events_dropped_total",
		"Head lifecycle events overwritten after the event ring filled.", "counter")
	hdrHeadBuildInfo = export.Header("powersensor_build_info",
		"Build identity of this daemon; always 1.", "gauge")
	hdrHeadScrapeDuration = export.Header("powersensor_scrape_duration_seconds",
		"Wall time spent rendering this scrape.", "gauge")

	headBuildInfoLine = "powersensor_build_info{version=\"" + export.Escape(version.Version) +
		"\",go=\"" + export.Escape(version.GoVersion()) + "\",role=\"head\"} 1\n"
)

// Handler returns the head's route table.
func (h *Head) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", h.metrics)
	mux.HandleFunc("GET /api/fleet", h.fleetJSON)
	mux.HandleFunc("GET /api/events", h.eventsJSON)
	mux.HandleFunc("GET /api/device/{leaf}/{name}/energy", h.proxyDevice("energy"))
	mux.HandleFunc("GET /api/device/{leaf}/{name}/trace", h.proxyDevice("trace"))
	mux.HandleFunc("GET /api/device/{leaf}/{name}/history", h.proxyDevice("history"))
	mux.HandleFunc("GET /healthz", h.healthz)
	mux.HandleFunc("GET /{$}", h.index)
	return mux
}

// metrics renders the merged exposition: every per-device family
// concatenated across the per-leaf cached segments (each the leaf's
// stations under a leaf label, re-rendered only when that leaf's fleet
// generation moved — a scrape is memcpys for every quiet leaf), followed
// by the head's own self-telemetry tail, rendered fresh per scrape.
func (h *Head) metrics(w http.ResponseWriter, _ *http.Request) {
	began := time.Now()
	st := h.scratch.Get().(*headScrapeState)
	// Stage: copy each leaf's current segment out under its lock. Polls
	// rendering concurrently cannot mutate staged bytes, and assembly
	// below holds no locks.
	for i, ls := range h.leaves {
		ls.mu.Lock()
		ls.renderer.CopySegment(&st.segs[i])
		ls.mu.Unlock()
	}
	buf := st.buf[:0]
	buf = export.AppendLeafSegments(buf, st.segs)
	buf = h.appendSelf(buf, st, began)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(buf)
	st.buf = buf
	h.scratch.Put(st)
}

// appendSelf renders the head's self-telemetry tail: the per-leaf
// poll/breaker families, the event-ring counters, build info and the
// scrape's own duration.
func (h *Head) appendSelf(buf []byte, st *headScrapeState, began time.Time) []byte {
	buf = append(buf, hdrHeadLeaves...)
	buf = export.AppendSample(buf, "powersensor_head_leaves", "", float64(len(h.leaves)))
	buf = append(buf, hdrHeadRounds...)
	buf = export.AppendSample(buf, "powersensor_head_poll_rounds_total", "", float64(h.rounds.Load()))
	buf = append(buf, hdrLeafUp...)
	for _, ls := range h.leaves {
		up := 0.0
		if ls.up() {
			up = 1
		}
		buf = export.AppendSample(buf, "powersensor_leaf_up", ls.labelBlock, up)
	}
	buf = append(buf, hdrLeafStations...)
	for _, ls := range h.leaves {
		ls.mu.Lock()
		n := 0
		if ls.view != nil {
			n = len(ls.view.Devices)
		}
		ls.mu.Unlock()
		buf = export.AppendSample(buf, "powersensor_leaf_stations", ls.labelBlock, float64(n))
	}
	buf = append(buf, hdrLeafGeneration...)
	for _, ls := range h.leaves {
		ls.mu.Lock()
		var gen uint64
		if ls.view != nil {
			gen = ls.view.Generation
		}
		ls.mu.Unlock()
		buf = export.AppendSample(buf, "powersensor_leaf_generation", ls.labelBlock, float64(gen))
	}
	buf = append(buf, hdrLeafBreaker...)
	for _, ls := range h.leaves {
		buf = export.AppendSample(buf, "powersensor_leaf_breaker_state", ls.labelBlock,
			float64(ls.breaker.State()))
	}
	buf = append(buf, hdrLeafConsecFails...)
	for _, ls := range h.leaves {
		buf = export.AppendSample(buf, "powersensor_leaf_consecutive_failures", ls.labelBlock,
			float64(ls.breaker.ConsecutiveFailures()))
	}
	buf = append(buf, hdrLeafBreakerOpens...)
	for _, ls := range h.leaves {
		buf = export.AppendSample(buf, "powersensor_leaf_breaker_opens_total", ls.labelBlock,
			float64(ls.breaker.Opens()))
	}
	buf = append(buf, hdrLeafPolls...)
	for _, ls := range h.leaves {
		buf = export.AppendSample(buf, "powersensor_leaf_polls_total", ls.labelBlock,
			float64(ls.polls.Load()))
	}
	buf = append(buf, hdrLeafPollFails...)
	for _, ls := range h.leaves {
		buf = export.AppendSample(buf, "powersensor_leaf_poll_failures_total", ls.labelBlock,
			float64(ls.failures.Load()))
	}
	buf = append(buf, hdrLeafRenders...)
	for _, ls := range h.leaves {
		buf = export.AppendSample(buf, "powersensor_leaf_renders_total", ls.labelBlock,
			float64(ls.renders.Load()))
	}
	buf = append(buf, hdrLeafScrape...)
	for _, ls := range h.leaves {
		ls.scrapeHist.Snapshot(&st.hs)
		buf = ls.scrapeSeries.Append(buf, &st.hs)
	}
	buf = append(buf, hdrHeadEvents...)
	buf = export.AppendSample(buf, "powersensor_head_events_total", "", float64(h.events.Total()))
	buf = append(buf, hdrHeadEventsDropped...)
	buf = export.AppendSample(buf, "powersensor_head_events_dropped_total", "", float64(h.events.Dropped()))
	buf = append(buf, hdrHeadBuildInfo...)
	buf = append(buf, headBuildInfoLine...)
	buf = append(buf, hdrHeadScrapeDuration...)
	buf = export.AppendSample(buf, "powersensor_scrape_duration_seconds", "", time.Since(began).Seconds())
	return buf
}

// LeafInfo is one leaf's entry in the merged /api/fleet body.
type LeafInfo struct {
	Leaf                string `json:"leaf"`
	URL                 string `json:"url"`
	Up                  bool   `json:"up"`
	Stale               bool   `json:"stale"`
	Breaker             string `json:"breaker"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Polls               uint64 `json:"polls"`
	Failures            uint64 `json:"failures"`
	Generation          uint64 `json:"generation"`
	Stations            int    `json:"stations"`
	LastError           string `json:"last_error,omitempty"`
}

// HeadStation is one station in the merged view: the leaf-side status
// plus the leaf that owns it and whether the head is serving it stale
// (the owning leaf is down, so the numbers are last-known, not live).
// A stale station's Health also reads "stale", mirroring the exposition.
type HeadStation struct {
	Leaf  string `json:"leaf"`
	Stale bool   `json:"stale"`
	fleet.Status
}

// HeadFleetJSON is the head's /api/fleet body: the same schema tag as a
// leaf, a generation folding every leaf's, the per-leaf poll states and
// the merged station list.
type HeadFleetJSON struct {
	Schema     int           `json:"schema"`
	Generation uint64        `json:"generation"`
	Leaves     []LeafInfo    `json:"leaves"`
	Devices    []HeadStation `json:"devices"`
}

// FleetView assembles the merged JSON fleet view.
func (h *Head) FleetView() HeadFleetJSON {
	out := HeadFleetJSON{
		Schema:     export.FleetSchemaVersion,
		Generation: h.Generation(),
		Leaves:     make([]LeafInfo, 0, len(h.leaves)),
	}
	for _, ls := range h.leaves {
		ls.mu.Lock()
		info := LeafInfo{
			Leaf:                ls.leaf.Name,
			URL:                 ls.leaf.URL,
			Up:                  ls.up(),
			Stale:               ls.stale,
			Breaker:             ls.breaker.State().String(),
			ConsecutiveFailures: ls.breaker.ConsecutiveFailures(),
			Polls:               ls.polls.Load(),
			Failures:            ls.failures.Load(),
			LastError:           ls.lastErr,
		}
		if ls.view != nil {
			info.Generation = ls.view.Generation
			info.Stations = len(ls.view.Devices)
			for i := range ls.view.Devices {
				st := HeadStation{Leaf: ls.leaf.Name, Stale: ls.stale, Status: ls.view.Devices[i]}
				if ls.stale {
					st.Health = fleet.HealthStale
				}
				out.Devices = append(out.Devices, st)
			}
		}
		ls.mu.Unlock()
		out.Leaves = append(out.Leaves, info)
	}
	return out
}

func (h *Head) fleetJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(h.FleetView())
}

// healthz is the head-aware liveness probe: 200 with leaf and station
// tallies while any leaf serves, 503 once every leaf is down — an
// orchestrator should restart (or reroute from) a head only when its
// whole downstream went dark, not when one leaf died. Station tallies
// aggregate the merged view, stale stations counting as down.
func (h *Head) healthz(w http.ResponseWriter, _ *http.Request) {
	up := h.UpCount()
	merged := h.FleetView()
	devs := make([]fleet.Status, len(merged.Devices))
	for i := range merged.Devices {
		devs[i] = merged.Devices[i].Status
	}
	stations, degraded, _ := fleet.AggregateHealth(devs)
	w.Header().Set("Content-Type", "application/json")
	if len(h.leaves) > 0 && up == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	fmt.Fprintf(w, "{\"leaves\":%d,\"up\":%d,\"stations\":%d,\"degraded\":%d}\n",
		len(h.leaves), up, stations, degraded)
}

// eventsJSON serves the tail of the head's lifecycle event ring — same
// shape as a leaf's /api/events, carrying leaf up/down and breaker
// transitions instead of station lifecycle.
func (h *Head) eventsJSON(w http.ResponseWriter, r *http.Request) {
	max := 100
	if s := r.URL.Query().Get("n"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			http.Error(w, fmt.Sprintf("bad n=%q (want a positive count)", s),
				http.StatusBadRequest)
			return
		}
		max = n
	}
	events := h.events.Tail(max)
	if events == nil {
		events = []obs.Event{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Total   uint64      `json:"total"`
		Dropped uint64      `json:"dropped"`
		Events  []obs.Event `json:"events"`
	}{h.events.Total(), h.events.Dropped(), events})
}

// proxyDevice returns a handler proxying one per-device drill-down
// endpoint (/api/device/{leaf}/{name}/<suffix>) to the owning leaf. The
// proxy is health-gated: a down leaf answers 503 immediately instead of
// timing the client out against a dead backend. Proxied requests get
// twice the poll timeout — drill-down bodies (history traces) are
// heavier than fleet views.
func (h *Head) proxyDevice(suffix string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		leaf := r.PathValue("leaf")
		ls, ok := h.byName[leaf]
		if !ok {
			names := make([]string, 0, len(h.leaves))
			for _, l := range h.leaves {
				names = append(names, l.leaf.Name)
			}
			http.Error(w, fmt.Sprintf("unknown leaf %q (have %s)",
				leaf, strings.Join(names, ", ")), http.StatusNotFound)
			return
		}
		if !ls.up() {
			http.Error(w, fmt.Sprintf("leaf %q is down", leaf), http.StatusServiceUnavailable)
			return
		}
		target := ls.leaf.URL + "/api/device/" + url.PathEscape(r.PathValue("name")) + "/" + suffix
		if r.URL.RawQuery != "" {
			target += "?" + r.URL.RawQuery
		}
		ctx, cancel := context.WithTimeout(r.Context(), 2*h.cfg.Timeout)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		resp, err := h.cfg.Client.Do(req)
		if err != nil {
			http.Error(w, fmt.Sprintf("leaf %q: %v", leaf, err), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for _, k := range []string{"Content-Type", "Content-Disposition"} {
			if v := resp.Header.Get(k); v != "" {
				w.Header().Set(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
	}
}

// index is a minimal landing page linking the endpoints.
func (h *Head) index(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<html><head><title>PowerSensor3 federation head</title></head><body>
<h1>PowerSensor3 federation head</h1>
<p>%d leaves, %d up</p>
<ul>
<li><a href="/metrics">/metrics</a></li>
<li><a href="/api/fleet">/api/fleet</a></li>
<li><a href="/api/events">/api/events</a></li>
<li>/api/device/{leaf}/{name}/energy?from=S&amp;to=S</li>
<li>/api/device/{leaf}/{name}/trace?format=csv|json&amp;points=N</li>
<li>/api/device/{leaf}/{name}/history?from=S&amp;to=S&amp;points=N</li>
</ul>
</body></html>
`, len(h.leaves), h.UpCount())
}
