package federation_test

import (
	"testing"
	"time"

	"repro/internal/federation"
)

// TestBreakerStateMachine walks the full closed → open → half-open →
// closed cycle with an explicit clock, pinning every transition the
// poller relies on.
func TestBreakerStateMachine(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := federation.NewBreaker(3, time.Second)

	if st := b.State(); st != federation.BreakerClosed {
		t.Fatalf("new breaker state = %v, want closed", st)
	}
	if !b.Allow(t0) {
		t.Fatal("closed breaker rejected a poll")
	}

	// Two failures: still closed, run counted.
	b.Failure(t0)
	b.Failure(t0)
	if st := b.State(); st != federation.BreakerClosed {
		t.Fatalf("state after 2/3 failures = %v, want closed", st)
	}
	if n := b.ConsecutiveFailures(); n != 2 {
		t.Fatalf("consecutive failures = %d, want 2", n)
	}

	// Third failure opens it.
	b.Failure(t0)
	if st := b.State(); st != federation.BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", st)
	}
	if n := b.Opens(); n != 1 {
		t.Fatalf("opens = %d, want 1", n)
	}
	if b.Allow(t0.Add(999 * time.Millisecond)) {
		t.Fatal("open breaker admitted a poll inside the cooldown")
	}

	// Cooldown elapsed: exactly one half-open probe admitted.
	probeAt := t0.Add(time.Second)
	if !b.Allow(probeAt) {
		t.Fatal("open breaker rejected the probe after the cooldown")
	}
	if st := b.State(); st != federation.BreakerHalfOpen {
		t.Fatalf("state after probe admission = %v, want half-open", st)
	}
	if b.Allow(probeAt) {
		t.Fatal("half-open breaker admitted a second poll while the probe was in flight")
	}

	// Probe fails: re-open for another cooldown.
	b.Failure(probeAt)
	if st := b.State(); st != federation.BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", st)
	}
	if n := b.Opens(); n != 2 {
		t.Fatalf("opens after failed probe = %d, want 2", n)
	}

	// Second probe succeeds: closed, run reset.
	again := probeAt.Add(time.Second)
	if !b.Allow(again) {
		t.Fatal("re-opened breaker rejected the second probe after its cooldown")
	}
	b.Success()
	if st := b.State(); st != federation.BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}
	if n := b.ConsecutiveFailures(); n != 0 {
		t.Fatalf("consecutive failures after success = %d, want 0", n)
	}
	if !b.Allow(again) {
		t.Fatal("closed breaker rejected a poll after recovery")
	}
}

// TestBreakerDefaults pins the zero-config behavior: three consecutive
// failures open the breaker.
func TestBreakerDefaults(t *testing.T) {
	t0 := time.Unix(0, 0)
	b := federation.NewBreaker(0, 0)
	b.Failure(t0)
	b.Failure(t0)
	if st := b.State(); st != federation.BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed (default threshold 3)", st)
	}
	b.Failure(t0)
	if st := b.State(); st != federation.BreakerOpen {
		t.Fatalf("state after 3 failures = %v, want open", st)
	}
}

// TestBreakerStateStrings pins the exposition spellings.
func TestBreakerStateStrings(t *testing.T) {
	cases := map[federation.BreakerState]string{
		federation.BreakerClosed:   "closed",
		federation.BreakerHalfOpen: "half-open",
		federation.BreakerOpen:     "open",
	}
	for st, want := range cases {
		if got := st.String(); got != want {
			t.Errorf("BreakerState(%d).String() = %q, want %q", st, got, want)
		}
	}
}
