// The leaf client: one leaf daemon's HTTP face as the head sees it. A
// leaf is any psd serving the standard read-only API — the head consumes
// /api/fleet (versioned JSON with an ETag) and proxies per-device
// drill-downs; leaves need no federation-specific code at all.

package federation

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/export"
)

// maxFleetBody bounds how many bytes of /api/fleet body the head will
// read from one leaf — a corrupted or hostile leaf must not balloon the
// head's memory. 64 MiB is thousands of times a 10k-station body.
const maxFleetBody = 64 << 20

// leafClient fetches one leaf's fleet view over its existing HTTP API.
type leafClient struct {
	name string
	url  string // base URL, no trailing slash
	http *http.Client
}

// fetchFleet GETs the leaf's /api/fleet. etag, when non-empty, rides as
// If-None-Match: a quiet leaf answers 304 with no body and fetchFleet
// returns notModified with a nil view. A decoded body whose schema
// differs from the head's own export.FleetSchemaVersion is an error —
// leaf/head version skew fails loudly at the poll rather than
// misrendering stations.
func (c *leafClient) fetchFleet(ctx context.Context, etag string) (view *export.FleetJSON, newETag string, notModified bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url+"/api/fleet", nil)
	if err != nil {
		return nil, "", false, err
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, "", false, err
	}
	defer func() {
		// Drain so the transport can reuse the connection.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusNotModified:
		return nil, etag, true, nil
	case http.StatusOK:
	default:
		return nil, "", false, fmt.Errorf("leaf %s: /api/fleet: status %d", c.name, resp.StatusCode)
	}
	var v export.FleetJSON
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxFleetBody)).Decode(&v); err != nil {
		return nil, "", false, fmt.Errorf("leaf %s: /api/fleet: %w", c.name, err)
	}
	if v.Schema != export.FleetSchemaVersion {
		return nil, "", false, fmt.Errorf("leaf %s: schema skew: leaf serves %d, head wants %d",
			c.name, v.Schema, export.FleetSchemaVersion)
	}
	return &v, resp.Header.Get("ETag"), false, nil
}

// trimURL normalises a leaf base URL: a bare host:port gains the http
// scheme, trailing slashes drop.
func trimURL(u string) string {
	u = strings.TrimRight(u, "/")
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return u
}
