// Per-leaf circuit breaker: the state machine that lets a dead leaf cost
// the head one cheap decision per poll round instead of a timeout's
// worth of blocked worker. Closed passes every poll through; K
// consecutive failures open it; an open breaker rejects polls until its
// cooldown elapses, then admits exactly one half-open probe — success
// closes it, failure re-opens it for another cooldown.

package federation

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's current disposition.
type BreakerState int32

const (
	// BreakerClosed: polls flow; failures are being counted.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: the cooldown elapsed and one probe poll is (or may
	// be) in flight; every other poll is rejected until it resolves.
	BreakerHalfOpen
	// BreakerOpen: polls are rejected until the cooldown elapses.
	BreakerOpen
)

// String returns the state's exposition spelling.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// Breaker is a per-leaf circuit breaker. Callers ask Allow before each
// poll and report the outcome with Success or Failure; the breaker owns
// nothing but the decision. Time is passed in rather than read, so the
// poller's clock (injectable in tests) drives cooldowns. Safe for
// concurrent use; this is control-plane state, a mutex is fine.
type Breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures that open the breaker
	openFor   time.Duration // cooldown before a half-open probe
	state     BreakerState
	consec    int // consecutive failures since the last success
	openedAt  time.Time
	probing   bool   // a half-open probe is in flight
	opens     uint64 // times the breaker has opened
}

// NewBreaker returns a closed breaker opening after threshold
// consecutive failures and probing again openFor after opening.
// Non-positive arguments take the defaults (3 failures, 5 s).
func NewBreaker(threshold int, openFor time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if openFor <= 0 {
		openFor = 5 * time.Second
	}
	return &Breaker{threshold: threshold, openFor: openFor}
}

// Allow reports whether a poll may proceed at now. On an open breaker
// whose cooldown has elapsed it transitions to half-open and admits the
// caller as the single probe; a half-open breaker admits no one else
// until that probe resolves via Success or Failure.
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.openFor {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success reports a successful poll: the breaker closes and the failure
// run resets, whatever state it was in.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.state = BreakerClosed
	b.consec = 0
	b.probing = false
	b.mu.Unlock()
}

// Failure reports a failed poll at now. A closed breaker opens once the
// consecutive-failure run reaches the threshold; a half-open breaker
// (its probe just failed) re-opens for another cooldown.
func (b *Breaker) Failure(now time.Time) {
	b.mu.Lock()
	b.consec++
	switch b.state {
	case BreakerClosed:
		if b.consec >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = now
			b.opens++
		}
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = now
		b.opens++
	}
	b.probing = false
	b.mu.Unlock()
}

// State returns the breaker's current state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// ConsecutiveFailures returns the current consecutive-failure run.
func (b *Breaker) ConsecutiveFailures() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.consec
}

// Opens returns how many times the breaker has ever opened.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
