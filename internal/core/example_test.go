package core_test

import (
	"fmt"
	"time"

	"repro/internal/analog"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/device"
)

// The paper's interval mode: snapshot, run the workload, snapshot,
// difference. The bench setup here is the Fig. 3 accuracy rig with an 8 A
// load on a 12 V rail.
func Example() {
	dev := device.New(42, device.Slot{
		Module: analog.NewModule(analog.Slot10A, 12),
		Source: device.BenchSource{
			Supply: &bench.Supply{Nominal: 12},
			Load:   bench.ConstantLoad(8),
		},
	})

	ps, err := core.Open(dev)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer ps.Close()

	first := ps.Read()
	ps.Advance(time.Second)
	second := ps.Read()

	fmt.Printf("%.0f W over %.0f s\n",
		core.Watts(first, second, 0), core.Seconds(first, second))
	// Output: 96 W over 1 s
}
