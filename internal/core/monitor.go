package core

import (
	"sync"
	"time"
)

// Monitor runs a PowerSensor from a background goroutine — the Go
// counterpart of the real host library's lightweight receiver thread
// (Section III-C). The goroutine continuously advances the transport in
// small virtual-time slices and folds samples into the totals; callers take
// thread-safe snapshots whenever they like.
//
// All access to the underlying PowerSensor is serialised through the
// monitor; do not use the PowerSensor directly while a Monitor owns it.
type Monitor struct {
	mu sync.Mutex
	ps *PowerSensor

	slice time.Duration

	stop chan struct{}
	done chan struct{}
}

// NewMonitor starts monitoring. slice is the virtual-time quantum advanced
// per iteration (default 1 ms); smaller slices reduce snapshot latency.
func NewMonitor(ps *PowerSensor, slice time.Duration) *Monitor {
	if slice <= 0 {
		slice = time.Millisecond
	}
	m := &Monitor{
		ps:    ps,
		slice: slice,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go m.loop()
	return m
}

// loop is the receiver: it advances the device and yields between slices.
func (m *Monitor) loop() {
	defer close(m.done)
	for {
		select {
		case <-m.stop:
			return
		default:
		}
		m.mu.Lock()
		m.ps.Advance(m.slice)
		m.mu.Unlock()
	}
}

// State returns a thread-safe snapshot of the accumulated measurements.
func (m *Monitor) State() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ps.Read()
}

// Mark requests a time-synced marker through the monitor.
func (m *Monitor) Mark(c byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ps.Mark(c)
}

// RunFor lets the monitor advance until at least d of virtual time has
// elapsed since the call, then returns the closing snapshot. It is the
// monitored equivalent of Advance+Read for callers that do not want to
// manage snapshots themselves.
func (m *Monitor) RunFor(d time.Duration) (State, State) {
	first := m.State()
	target := first.TimeAtRead + d
	for {
		st := m.State()
		if st.TimeAtRead >= target {
			return first, st
		}
		// Yield to the receiver goroutine.
		time.Sleep(50 * time.Microsecond)
	}
}

// Stop halts the receiver goroutine and returns the final snapshot. The
// PowerSensor may be used directly again afterwards.
func (m *Monitor) Stop() State {
	close(m.stop)
	<-m.done
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ps.Read()
}
