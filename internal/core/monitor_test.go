package core

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestMonitorAccumulates(t *testing.T) {
	dev := newBenchDevice(601, 8)
	ps, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(ps, time.Millisecond)
	first, second := m.RunFor(200 * time.Millisecond)
	final := m.Stop()

	if w := Watts(first, second, 0); math.Abs(w-96) > 3 {
		t.Fatalf("monitored power %v W, want ~96", w)
	}
	if final.Samples < second.Samples {
		t.Fatal("final snapshot regressed")
	}
	ps.Close()
}

func TestMonitorConcurrentSnapshots(t *testing.T) {
	dev := newBenchDevice(602, 5)
	ps, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(ps, time.Millisecond)

	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var prev State
			for i := 0; i < 200; i++ {
				st := m.State()
				if st.TimeAtRead < prev.TimeAtRead {
					errs <- "time went backwards"
					return
				}
				if st.ConsumedJoules[0] < prev.ConsumedJoules[0] {
					errs <- "energy went backwards"
					return
				}
				prev = st
			}
		}()
	}
	wg.Wait()
	m.Stop()
	ps.Close()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

func TestMonitorMarkDelivered(t *testing.T) {
	dev := newBenchDevice(603, 3)
	ps, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	var dump safeBuffer
	ps.StartDump(&dump)
	m := NewMonitor(ps, time.Millisecond)
	m.RunFor(10 * time.Millisecond)
	m.Mark('Z')
	m.RunFor(10 * time.Millisecond)
	m.Stop()
	ps.StopDump()
	ps.Close()
	if !dump.contains(" MZ") {
		t.Fatal("marker missing from monitored dump")
	}
}

// safeBuffer is a mutex-guarded byte sink: the dump writer runs on the
// monitor goroutine while the test reads.
type safeBuffer struct {
	mu  sync.Mutex
	buf []byte
}

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf = append(b.buf, p...)
	return len(p), nil
}

func (b *safeBuffer) contains(s string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return string(b.buf) != "" && indexOf(b.buf, s) >= 0
}

func indexOf(b []byte, s string) int {
	n := len(s)
	for i := 0; i+n <= len(b); i++ {
		if string(b[i:i+n]) == s {
			return i
		}
	}
	return -1
}

func TestMonitorStopIdempotentState(t *testing.T) {
	dev := newBenchDevice(604, 2)
	ps, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(ps, 500*time.Microsecond)
	m.RunFor(5 * time.Millisecond)
	final := m.Stop()
	if final.Samples == 0 {
		t.Fatal("no samples processed")
	}
	// After Stop, direct use of the PowerSensor works again.
	a := ps.Read()
	ps.Advance(10 * time.Millisecond)
	b := ps.Read()
	if b.Samples <= a.Samples {
		t.Fatal("direct use after Stop failed")
	}
	ps.Close()
}
