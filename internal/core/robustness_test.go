package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/analog"
	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// corruptTransport wraps a device and damages the byte stream: it drops or
// flips bytes with the given probabilities — a noisy USB cable.
type corruptTransport struct {
	*device.Device
	rnd      *rng.Source
	dropProb float64
	flipProb float64
	dropped  int
	flipped  int
}

func (c *corruptTransport) Read() []byte {
	buf := c.Device.Read()
	out := buf[:0]
	for _, b := range buf {
		r := c.rnd.Float64()
		switch {
		case r < c.dropProb:
			c.dropped++
		case r < c.dropProb+c.flipProb:
			out = append(out, b^byte(1<<c.rnd.Intn(8)))
			c.flipped++
		default:
			out = append(out, b)
		}
	}
	return out
}

func newCorrupt(seed uint64, amps, dropProb, flipProb float64) *corruptTransport {
	dev := device.New(seed, device.Slot{
		Module: analog.NewModule(analog.Slot10A, 12),
		Source: device.BenchSource{Supply: &bench.Supply{Nominal: 12}, Load: bench.ConstantLoad(amps)},
	})
	return &corruptTransport{Device: dev, rnd: rng.New(seed ^ 0xbad), dropProb: dropProb, flipProb: flipProb}
}

func TestHostSurvivesDroppedBytes(t *testing.T) {
	tr := newCorrupt(501, 8, 0.001, 0) // 0.1% byte loss
	ps, err := Open(tr)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()

	first := ps.Read()
	ps.Advance(500 * time.Millisecond)
	second := ps.Read()

	if tr.dropped == 0 {
		t.Skip("no bytes dropped this run")
	}
	if ps.Resyncs() == 0 {
		t.Fatal("decoder did not resynchronise despite byte loss")
	}
	// The energy estimate must stay close: each lost sample set costs at
	// most one 50 µs slice.
	w := Watts(first, second, 0)
	if math.Abs(w-96) > 4 {
		t.Fatalf("average power %v W under 0.1%% byte loss, want ~96", w)
	}
}

func TestHostSurvivesBitFlips(t *testing.T) {
	tr := newCorrupt(502, 5, 0, 0.0005)
	ps, err := Open(tr)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()

	first := ps.Read()
	ps.Advance(500 * time.Millisecond)
	second := ps.Read()
	if tr.flipped == 0 {
		t.Skip("no bits flipped this run")
	}
	// Flips inside the 10-bit level corrupt single samples; the average
	// over 10k samples must barely move.
	w := Watts(first, second, 0)
	if math.Abs(w-60) > 5 {
		t.Fatalf("average power %v W under bit flips, want ~60", w)
	}
}

func TestOpenFailsCleanlyOnGarbage(t *testing.T) {
	// A transport that answers with noise instead of a configuration.
	tr := &garbageTransport{rnd: rng.New(99)}
	if _, err := Open(tr); err == nil {
		t.Fatal("Open accepted a garbage device")
	}
}

type garbageTransport struct {
	rnd *rng.Source
	now time.Duration
}

func (g *garbageTransport) Write([]byte) {}
func (g *garbageTransport) Read() []byte {
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = byte(g.rnd.Intn(255)) // never the config terminator pattern
	}
	return buf[:32]
}
func (g *garbageTransport) Run(dt time.Duration) { g.now += dt }
func (g *garbageTransport) Now() time.Duration   { return g.now }

func TestFirmwareVersionQuery(t *testing.T) {
	dev := device.New(503, device.Slot{
		Module: analog.NewModule(analog.Slot10A, 12),
		Source: device.BenchSource{Supply: &bench.Supply{Nominal: 12}, Load: bench.ConstantLoad(1)},
	})
	ps, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	ps.Advance(10 * time.Millisecond)

	v, err := ps.FirmwareVersion()
	if err != nil {
		t.Fatal(err)
	}
	if v == "" {
		t.Fatal("empty version")
	}
	// The stream must restart after the query.
	before := ps.Read()
	ps.Advance(20 * time.Millisecond)
	after := ps.Read()
	if after.Samples == before.Samples {
		t.Fatal("stream did not resume after version query")
	}
}

// Fuzz the firmware with random command bytes: the device must neither
// panic nor corrupt its configuration.
func TestFirmwareCommandFuzz(t *testing.T) {
	dev := device.New(504, device.Slot{
		Module: analog.NewModule(analog.Slot10A, 12),
		Source: device.BenchSource{Supply: &bench.Supply{Nominal: 12}, Load: bench.ConstantLoad(2)},
	})
	want := dev.Firmware().SensorConfig(1) // voltage sensor config
	rnd := rng.New(505)
	for round := 0; round < 200; round++ {
		n := rnd.Intn(16) + 1
		cmd := make([]byte, n)
		for i := range cmd {
			// Exclude 'W' (config write) — any other byte must be harmless.
			for {
				cmd[i] = byte(rnd.Intn(256))
				if cmd[i] != protocol.CmdWriteConfig {
					break
				}
			}
		}
		dev.Write(cmd)
		dev.Run(time.Millisecond)
		dev.Read()
	}
	if got := dev.Firmware().SensorConfig(1); got != want {
		t.Fatalf("fuzz corrupted sensor config: %+v → %+v", want, got)
	}
	// The device must still function: open and measure.
	ps, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	first := ps.Read()
	ps.Advance(50 * time.Millisecond)
	second := ps.Read()
	if w := Watts(first, second, 0); math.Abs(w-24) > 3 {
		t.Fatalf("post-fuzz power %v W, want ~24", w)
	}
}

// Property: energy is additive over adjacent intervals.
func TestEnergyAdditivity(t *testing.T) {
	dev := device.New(506, device.Slot{
		Module: analog.NewModule(analog.Slot10A, 12),
		Source: device.BenchSource{Supply: &bench.Supply{Nominal: 12}, Load: bench.ConstantLoad(7)},
	})
	ps, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	a := ps.Read()
	ps.Advance(30 * time.Millisecond)
	b := ps.Read()
	ps.Advance(70 * time.Millisecond)
	c := ps.Read()
	sum := Joules(a, b, 0) + Joules(b, c, 0)
	whole := Joules(a, c, 0)
	if math.Abs(sum-whole) > 1e-9 {
		t.Fatalf("additivity violated: %v + %v != %v", Joules(a, b, 0), Joules(b, c, 0), whole)
	}
}

// End-to-end property: for any in-range constant load on any rail, the
// measured average power converges on V × I within the module's worst-case
// accuracy budget.
func TestQuickEndToEndAccuracy(t *testing.T) {
	r := rng.New(507)
	f := func(rawAmps, rawVolt uint16) bool {
		amps := (float64(rawAmps%1900) - 950) / 100 // −9.5 .. +9.5 A
		railV := 12.0
		if rawVolt%2 == 0 {
			railV = 3.3
		}
		dev := device.New(r.Uint64(), device.Slot{
			Module: analog.NewModule(analog.Slot10A, railV),
			Source: device.BenchSource{Supply: &bench.Supply{Nominal: railV}, Load: bench.ConstantLoad(amps)},
		})
		ps, err := Open(dev)
		if err != nil {
			return false
		}
		defer ps.Close()
		a := ps.Read()
		ps.Advance(40 * time.Millisecond)
		b := ps.Read()
		got := Watts(a, b, 0)
		want := railV * amps
		// Averaged over 800 samples the error budget shrinks well below
		// the per-sample worst case; 1.5 W leaves margin for nonlinearity.
		return math.Abs(got-want) < 1.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
