package core

import (
	"io"
	"testing"
	"time"
)

// BenchmarkContinuousDump measures the continuous-mode hot path: every
// 20 kHz sample set renders one dump line. Each iteration streams 100 ms
// of virtual time (~2000 lines), so ns/op divides by ~2000 for per-line
// cost. The headline is allocs/op: with the strconv.AppendFloat rewrite
// of writeDumpLine the dump adds zero allocations over the bare stream
// decode (~12.1k allocs/op either way), where the old per-line
// fmt.Sprintf string concatenation added ~9 allocs per line (~30.1k
// allocs/op total) and cost ~25% of throughput.
func BenchmarkContinuousDump(b *testing.B) {
	dev := newBenchDevice(9, 5)
	ps, err := Open(dev)
	if err != nil {
		b.Fatal(err)
	}
	defer ps.Close()
	ps.StartDump(io.Discard)
	// Warm up: the first lines grow the reused buffer to its final size.
	ps.Advance(10 * time.Millisecond)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps.Advance(100 * time.Millisecond)
	}
	b.StopTimer()
	if err := ps.StopDump(); err != nil {
		b.Fatal(err)
	}
	st := ps.Read()
	b.ReportMetric(float64(st.Samples)/b.Elapsed().Seconds(), "lines/s")
}
