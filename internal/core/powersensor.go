// Package core is the PowerSensor3 host library — the Go counterpart of the
// C++ PowerSensor class described in Section III-C of the paper.
//
// The library connects to a device, reads its sensor configuration, and
// consumes the 20 kHz sample stream, internally tracking the cumulative
// energy measured by each sensor pair. Both of the paper's measurement modes
// are supported, simultaneously if desired:
//
//   - Interval mode: request a State at two instants and derive the energy,
//     average power and elapsed time between them with Joules, Watts and
//     Seconds.
//   - Continuous mode: Dump writes every sample set to a writer at full
//     20 kHz resolution, including time-synced user marker characters.
//
// The real library drains USB from a lightweight thread; this simulation is
// single-threaded in virtual time, so the drain happens inside Advance,
// which steps the device and processes whatever arrived.
package core

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/protocol"
)

// Transport is the device link the host library drives. *device.Device
// implements it; tests may substitute fakes.
type Transport interface {
	// Write queues host-to-device command bytes.
	Write(cmd []byte)
	// Read drains available device-to-host bytes.
	Read() []byte
	// Run advances the device by dt of virtual time.
	Run(dt time.Duration)
	// Now returns the device's virtual time.
	Now() time.Duration
}

// MaxPairs is the number of sensor pairs (modules) a device can carry.
const MaxPairs = protocol.MaxModules

// State is a snapshot of the accumulated measurements, as returned by Read.
// Differencing two States yields energy, power and time over the interval.
type State struct {
	// ConsumedJoules is the cumulative energy per sensor pair since Open.
	ConsumedJoules [MaxPairs]float64
	// Watts is the instantaneous power per pair at snapshot time.
	Watts [MaxPairs]float64
	// Volts and Amps are the latest per-pair readings.
	Volts [MaxPairs]float64
	Amps  [MaxPairs]float64
	// TimeAtRead is the host virtual time of the snapshot.
	TimeAtRead time.Duration
	// Samples is the number of sample sets processed since Open.
	Samples uint64
}

// ErrNoDevice is returned by Open when the device does not answer the
// configuration request.
var ErrNoDevice = errors.New("core: no response from device")

// PowerSensor is a handle to an open device.
type PowerSensor struct {
	tr  Transport
	dec protocol.StreamDecoder

	configs [protocol.MaxSensors]protocol.SensorConfig
	pairs   int

	levels    [protocol.MaxSensors]int
	haveLevel [protocol.MaxSensors]bool

	consumed [MaxPairs]float64
	watts    [MaxPairs]float64
	volts    [MaxPairs]float64
	amps     [MaxPairs]float64
	samples  uint64

	// device-time reconstruction from 10-bit wrapping µs timestamps
	devMicros   uint64
	haveDevTime bool

	dump         io.Writer
	dumpErr      error
	dumpBuf      []byte // reused line buffer for writeDumpLine
	pendingMarks []byte
	currentSet   [protocol.MaxSensors]bool // sensors seen in the current set
	setHasMarker bool
	hooks        []sampleHook // attached observers, in attach order
	nextHookID   HookID
	totalResyncs int
}

// HookID identifies a sample observer registered with AttachSample.
type HookID int

// sampleHook is one attached observer.
type sampleHook struct {
	id HookID
	f  func(Sample)
}

// Sample is one processed 20 kHz sample set, as delivered to AttachSample
// observers. DeviceTime is reconstructed from the unwrapped 10-bit device
// timestamps.
type Sample struct {
	DeviceTime time.Duration
	Watts      [MaxPairs]float64
	Volts      [MaxPairs]float64
	Amps       [MaxPairs]float64
	Marker     bool
}

// Open connects to the device over tr: it stops any running stream, requests
// the sensor configuration, then starts streaming.
func Open(tr Transport) (*PowerSensor, error) {
	ps := &PowerSensor{tr: tr}
	// Stop any running stream and flush stale bytes so the configuration
	// response is parsed from a clean pipe.
	tr.Write([]byte{protocol.CmdStopStream})
	tr.Run(5 * time.Millisecond)
	tr.Read()
	tr.Write([]byte{protocol.CmdReadConfig})

	// Give the device time to answer: the 337-byte configuration block
	// takes a few ms of link time.
	deadline := tr.Now() + 100*time.Millisecond
	var buf []byte
	for tr.Now() < deadline {
		tr.Run(time.Millisecond)
		buf = append(buf, tr.Read()...)
		if n := len(buf); n > 0 && buf[n-1] == protocol.CmdConfigDone &&
			n >= protocol.MaxSensors*protocol.ConfigBlockLen+1 {
			break
		}
	}
	if len(buf) < protocol.MaxSensors*protocol.ConfigBlockLen+1 {
		return nil, fmt.Errorf("%w: got %d config bytes", ErrNoDevice, len(buf))
	}
	for i := 0; i < protocol.MaxSensors; i++ {
		cfg, err := protocol.UnmarshalConfig(buf[i*protocol.ConfigBlockLen:])
		if err != nil {
			return nil, fmt.Errorf("core: sensor %d config: %w", i, err)
		}
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("core: sensor %d: %w (is this a PowerSensor?)", i, err)
		}
		ps.configs[i] = cfg
	}
	for m := 0; m < MaxPairs; m++ {
		if ps.configs[2*m].Enabled && ps.configs[2*m+1].Enabled {
			ps.pairs = m + 1
		}
	}

	tr.Write([]byte{protocol.CmdStartStream})
	return ps, nil
}

// Pairs returns the number of active sensor pairs.
func (ps *PowerSensor) Pairs() int { return ps.pairs }

// SensorConfig returns the configuration of sensor index i (0..7).
func (ps *PowerSensor) SensorConfig(i int) protocol.SensorConfig {
	return ps.configs[i]
}

// Advance runs the device for dt of virtual time while draining and
// processing the sample stream. It is the virtual-time stand-in for the
// background receiver thread of the real library.
func (ps *PowerSensor) Advance(dt time.Duration) {
	const chunk = 10 * time.Millisecond
	for dt > 0 {
		step := dt
		if step > chunk {
			step = chunk
		}
		ps.tr.Run(step)
		ps.process(ps.tr.Read())
		dt -= step
	}
}

// process decodes stream bytes and folds samples into the energy totals.
func (ps *PowerSensor) process(buf []byte) {
	samples := ps.dec.Feed(nil, buf)
	for _, s := range samples {
		if s.IsTimestamp() {
			ps.finishSet()
			ps.advanceDevTime(uint64(s.Level))
			continue
		}
		ps.levels[s.Sensor] = s.Level
		ps.haveLevel[s.Sensor] = true
		ps.currentSet[s.Sensor] = true
		if s.IsUserMarker() {
			ps.setHasMarker = true
		}
	}
	ps.totalResyncs = ps.dec.Resyncs()
}

// advanceDevTime unwraps the 10-bit microsecond timestamp counter.
func (ps *PowerSensor) advanceDevTime(ts uint64) {
	if !ps.haveDevTime {
		ps.devMicros = ts
		ps.haveDevTime = true
		return
	}
	prev := ps.devMicros % protocol.TimestampWrapMicros
	delta := (ts + protocol.TimestampWrapMicros - prev) % protocol.TimestampWrapMicros
	if delta == 0 {
		delta = protocol.TimestampWrapMicros
	}
	ps.devMicros += delta
}

// finishSet integrates the completed sample set into the totals and emits
// the continuous-mode dump line.
func (ps *PowerSensor) finishSet() {
	complete := false
	for m := 0; m < ps.pairs; m++ {
		if ps.currentSet[2*m] || ps.currentSet[2*m+1] {
			complete = true
		}
	}
	if !complete {
		return // stream start: timestamp seen before any data
	}
	dt := float64(protocol.SampleIntervalMicros) / 1e6
	var total float64
	for m := 0; m < ps.pairs; m++ {
		ci, vi := 2*m, 2*m+1
		if !ps.haveLevel[ci] || !ps.haveLevel[vi] {
			continue
		}
		amps := ps.convertCurrent(ci)
		volts := ps.convertVoltage(vi)
		p := amps * volts
		ps.amps[m], ps.volts[m], ps.watts[m] = amps, volts, p
		ps.consumed[m] += p * dt
		total += p
	}
	ps.samples++
	for m := 0; m < ps.pairs; m++ {
		ps.currentSet[2*m], ps.currentSet[2*m+1] = false, false
	}
	if ps.dump != nil {
		ps.writeDumpLine(total)
	}
	if len(ps.hooks) > 0 {
		var s Sample
		s.DeviceTime = time.Duration(ps.devMicros) * time.Microsecond
		copy(s.Watts[:], ps.watts[:])
		copy(s.Volts[:], ps.volts[:])
		copy(s.Amps[:], ps.amps[:])
		s.Marker = ps.setHasMarker
		for _, h := range ps.hooks {
			h.f(s)
		}
	}
	ps.setHasMarker = false
}

// AttachSample registers a per-sample-set observer and returns an id for
// DetachSample. Any number of hooks can coexist — a transient capture
// (e.g. trace.Capture) can run on a sensor whose stream is already being
// ingested elsewhere — and they are invoked in attach order. Hooks run on
// the goroutine calling Advance.
func (ps *PowerSensor) AttachSample(f func(Sample)) HookID {
	id := ps.nextHookID
	ps.nextHookID++
	// Copy-on-write so an in-flight dispatch ranging over the old slice
	// never observes a mutation.
	hooks := make([]sampleHook, len(ps.hooks), len(ps.hooks)+1)
	copy(hooks, ps.hooks)
	ps.hooks = append(hooks, sampleHook{id: id, f: f})
	return id
}

// DetachSample removes a hook registered with AttachSample. Detaching an
// unknown id is a no-op. A hook detached from inside another hook still
// receives the sample set currently being dispatched; removal takes effect
// from the next set.
func (ps *PowerSensor) DetachSample(id HookID) {
	for i, h := range ps.hooks {
		if h.id == id {
			hooks := make([]sampleHook, 0, len(ps.hooks)-1)
			hooks = append(hooks, ps.hooks[:i]...)
			ps.hooks = append(hooks, ps.hooks[i+1:]...)
			return
		}
	}
}

// convertCurrent applies the device-stored conversion for a current channel.
func (ps *PowerSensor) convertCurrent(ch int) float64 {
	cfg := ps.configs[ch]
	pin := (float64(ps.levels[ch]) + 0.5) / protocol.Levels * protocol.VRef
	amps := (pin - protocol.VRef/2) / cfg.Sensitivity
	return float64(cfg.Polarity)*amps - cfg.Offset
}

// convertVoltage applies the device-stored conversion for a voltage channel.
func (ps *PowerSensor) convertVoltage(ch int) float64 {
	cfg := ps.configs[ch]
	pin := (float64(ps.levels[ch]) + 0.5) / protocol.Levels * protocol.VRef
	return pin/cfg.Sensitivity - cfg.Offset
}

// writeDumpLine emits one continuous-mode record: device time in seconds,
// per-pair power, total power, and any marker character. It runs once per
// 20 kHz sample set while a dump is active, so the line is assembled with
// strconv appends into a buffer reused across sets — no fmt machinery and
// no per-line allocations.
func (ps *PowerSensor) writeDumpLine(total float64) {
	if ps.dumpErr != nil {
		return
	}
	buf := append(ps.dumpBuf[:0], 'S', ' ')
	buf = strconv.AppendFloat(buf, float64(ps.devMicros)/1e6, 'f', 6, 64)
	for m := 0; m < ps.pairs; m++ {
		buf = append(buf, ' ')
		buf = strconv.AppendFloat(buf, ps.watts[m], 'f', 4, 64)
	}
	buf = append(buf, ' ')
	buf = strconv.AppendFloat(buf, total, 'f', 4, 64)
	if ps.setHasMarker && len(ps.pendingMarks) > 0 {
		buf = append(buf, ' ', 'M', ps.pendingMarks[0])
		ps.pendingMarks = ps.pendingMarks[1:]
	}
	buf = append(buf, '\n')
	ps.dumpBuf = buf
	if _, err := ps.dump.Write(buf); err != nil {
		ps.dumpErr = err
	}
}

// Read returns a snapshot of the accumulated state — the interval-based mode
// of Section III-C. Call Advance (or run a workload) between two Reads and
// difference them with Joules, Watts and Seconds.
func (ps *PowerSensor) Read() State {
	st := State{
		TimeAtRead: ps.tr.Now(),
		Samples:    ps.samples,
	}
	copy(st.ConsumedJoules[:], ps.consumed[:])
	copy(st.Watts[:], ps.watts[:])
	copy(st.Volts[:], ps.volts[:])
	copy(st.Amps[:], ps.amps[:])
	return st
}

// Mark requests a time-synced marker: the device flags the next sample set,
// and the continuous-mode dump annotates that set with c.
func (ps *PowerSensor) Mark(c byte) {
	ps.pendingMarks = append(ps.pendingMarks, c)
	ps.tr.Write([]byte{protocol.CmdMarker})
}

// StartDump enables continuous mode, recording every sample set to w.
func (ps *PowerSensor) StartDump(w io.Writer) {
	ps.dump = w
	ps.dumpErr = nil
}

// StopDump disables continuous mode and reports any write error encountered.
func (ps *PowerSensor) StopDump() error {
	ps.dump = nil
	return ps.dumpErr
}

// FirmwareVersion queries the device's firmware version string. The stream
// is paused for the exchange and restarted afterwards.
func (ps *PowerSensor) FirmwareVersion() (string, error) {
	ps.tr.Write([]byte{protocol.CmdStopStream})
	ps.tr.Run(2 * time.Millisecond)
	ps.process(ps.tr.Read()) // drain remaining samples first
	ps.tr.Write([]byte{protocol.CmdVersion})

	var buf []byte
	deadline := ps.tr.Now() + 50*time.Millisecond
	for ps.tr.Now() < deadline {
		ps.tr.Run(time.Millisecond)
		buf = append(buf, ps.tr.Read()...)
		if n := len(buf); n > 0 && buf[n-1] == protocol.VersionTerminator {
			ps.tr.Write([]byte{protocol.CmdStartStream})
			return string(buf[:n-1]), nil
		}
	}
	ps.tr.Write([]byte{protocol.CmdStartStream})
	return "", fmt.Errorf("core: no version response")
}

// Close stops the device stream.
func (ps *PowerSensor) Close() {
	ps.tr.Write([]byte{protocol.CmdStopStream})
	ps.tr.Run(time.Millisecond)
}

// Resyncs reports how many stream bytes were skipped to regain alignment.
func (ps *PowerSensor) Resyncs() int { return ps.totalResyncs }

// Joules returns the energy consumed by sensor pair between two states, or
// summed over all pairs if pair is -1 — matching the C++ API.
func Joules(first, second State, pair int) float64 {
	if pair >= 0 {
		return second.ConsumedJoules[pair] - first.ConsumedJoules[pair]
	}
	var sum float64
	for m := 0; m < MaxPairs; m++ {
		sum += second.ConsumedJoules[m] - first.ConsumedJoules[m]
	}
	return sum
}

// Seconds returns the elapsed time between two states.
func Seconds(first, second State) float64 {
	return (second.TimeAtRead - first.TimeAtRead).Seconds()
}

// Watts returns the average power between two states for a pair (or all
// pairs if pair is -1).
func Watts(first, second State, pair int) float64 {
	s := Seconds(first, second)
	if s <= 0 {
		return 0
	}
	return Joules(first, second, pair) / s
}
