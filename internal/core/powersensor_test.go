package core

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/analog"
	"repro/internal/bench"
	"repro/internal/device"
)

// newBenchDevice builds a device with one 12 V / 10 A module driving a
// constant load — the basic accuracy setup of Fig. 3.
func newBenchDevice(seed uint64, amps float64) *device.Device {
	return device.New(seed, device.Slot{
		Module: analog.NewModule(analog.Slot10A, 12),
		Source: device.BenchSource{
			Supply: &bench.Supply{Nominal: 12},
			Load:   bench.ConstantLoad(amps),
		},
	})
}

func TestOpenReadsConfig(t *testing.T) {
	dev := newBenchDevice(1, 0)
	ps, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	if ps.Pairs() != 1 {
		t.Fatalf("pairs = %d", ps.Pairs())
	}
	cfg := ps.SensorConfig(0)
	if cfg.Sensitivity != 0.120 || !cfg.Enabled {
		t.Fatalf("sensor 0 config = %+v", cfg)
	}
}

func TestMeasuredPowerMatchesLoad(t *testing.T) {
	dev := newBenchDevice(2, 8) // 8 A × 12 V = 96 W
	ps, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()

	first := ps.Read()
	ps.Advance(time.Second)
	second := ps.Read()

	j := Joules(first, second, 0)
	w := Watts(first, second, 0)
	s := Seconds(first, second)
	if math.Abs(s-1) > 0.001 {
		t.Fatalf("interval = %v s", s)
	}
	if math.Abs(w-96) > 2 {
		t.Fatalf("average power = %v W, want ~96", w)
	}
	if math.Abs(j-96) > 2 {
		t.Fatalf("energy = %v J, want ~96", j)
	}
}

func TestSumOverPairs(t *testing.T) {
	dev := device.New(3,
		device.Slot{
			Module: analog.NewModule(analog.Slot10A, 12),
			Source: device.BenchSource{Supply: &bench.Supply{Nominal: 12}, Load: bench.ConstantLoad(4)},
		},
		device.Slot{
			Module: analog.NewModule(analog.Slot10A, 3.3),
			Source: device.BenchSource{Supply: &bench.Supply{Nominal: 3.3}, Load: bench.ConstantLoad(2)},
		},
	)
	ps, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	if ps.Pairs() != 2 {
		t.Fatalf("pairs = %d", ps.Pairs())
	}
	first := ps.Read()
	ps.Advance(500 * time.Millisecond)
	second := ps.Read()
	total := Watts(first, second, -1)
	want := 12*4.0 + 3.3*2.0
	if math.Abs(total-want) > 2 {
		t.Fatalf("total power = %v, want ~%v", total, want)
	}
}

func TestSampleRateIs20kHz(t *testing.T) {
	dev := newBenchDevice(4, 1)
	ps, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	first := ps.Read()
	ps.Advance(time.Second)
	second := ps.Read()
	got := second.Samples - first.Samples
	if got < 19900 || got > 20100 {
		t.Fatalf("%d samples per second, want ~20000", got)
	}
}

func TestEnergyIsMonotonicUnderPositiveLoad(t *testing.T) {
	dev := newBenchDevice(5, 6)
	ps, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	prev := ps.Read()
	for i := 0; i < 20; i++ {
		ps.Advance(10 * time.Millisecond)
		cur := ps.Read()
		if Joules(prev, cur, 0) < 0 {
			t.Fatalf("energy decreased at step %d", i)
		}
		prev = cur
	}
}

func TestDumpContinuousMode(t *testing.T) {
	dev := newBenchDevice(6, 8)
	ps, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()

	var buf bytes.Buffer
	ps.StartDump(&buf)
	ps.Advance(50 * time.Millisecond)
	if err := ps.StopDump(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// 50 ms at 20 kHz ≈ 1000 lines.
	if len(lines) < 950 || len(lines) > 1050 {
		t.Fatalf("%d dump lines, want ~1000", len(lines))
	}
	for _, l := range lines[:5] {
		if !strings.HasPrefix(l, "S ") {
			t.Fatalf("bad dump line %q", l)
		}
	}
}

func TestMarkerLandsInDump(t *testing.T) {
	dev := newBenchDevice(7, 5)
	ps, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()

	var buf bytes.Buffer
	ps.StartDump(&buf)
	ps.Advance(5 * time.Millisecond)
	ps.Mark('A')
	ps.Advance(5 * time.Millisecond)
	ps.StopDump()

	if n := strings.Count(buf.String(), " MA"); n != 1 {
		t.Fatalf("marker appears %d times, want 1", n)
	}
	// The marker must be time-synced: it lands mid-dump, not at the edges.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	idx := -1
	for i, l := range lines {
		if strings.Contains(l, " MA") {
			idx = i
		}
	}
	if idx < len(lines)/4 || idx > 3*len(lines)/4 {
		t.Fatalf("marker at line %d of %d, expected near the middle", idx, len(lines))
	}
}

func TestInstantaneousWatts(t *testing.T) {
	dev := newBenchDevice(8, 8)
	ps, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	ps.Advance(10 * time.Millisecond)
	st := ps.Read()
	if math.Abs(st.Watts[0]-96) > 5 {
		t.Fatalf("instantaneous power = %v, want ~96", st.Watts[0])
	}
	if math.Abs(st.Volts[0]-12) > 0.2 {
		t.Fatalf("volts = %v", st.Volts[0])
	}
	if math.Abs(st.Amps[0]-8) > 0.5 {
		t.Fatalf("amps = %v", st.Amps[0])
	}
}

func TestNegativeCurrentMeasured(t *testing.T) {
	dev := newBenchDevice(9, -5)
	ps, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	ps.Advance(10 * time.Millisecond)
	st := ps.Read()
	if st.Amps[0] > -4.5 || st.Amps[0] < -5.5 {
		t.Fatalf("amps = %v, want ~-5", st.Amps[0])
	}
}

func TestWattsZeroInterval(t *testing.T) {
	dev := newBenchDevice(10, 1)
	ps, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	st := ps.Read()
	if w := Watts(st, st, 0); w != 0 {
		t.Fatalf("zero-interval watts = %v", w)
	}
}

func TestCloseStopsStream(t *testing.T) {
	dev := newBenchDevice(11, 1)
	ps, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	ps.Advance(time.Millisecond)
	ps.Close()
	if dev.Firmware().Streaming() {
		t.Fatal("device still streaming after Close")
	}
}

func TestNoResyncsOnCleanStream(t *testing.T) {
	dev := newBenchDevice(12, 3)
	ps, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	ps.Advance(100 * time.Millisecond)
	if ps.Resyncs() != 0 {
		t.Fatalf("%d resyncs on a clean stream", ps.Resyncs())
	}
}

// Energy conservation: Joules between two states must equal the integral of
// the dumped power series within quantization error.
func TestEnergyMatchesDumpIntegral(t *testing.T) {
	dev := newBenchDevice(13, 7)
	ps, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()

	var buf bytes.Buffer
	first := ps.Read()
	ps.StartDump(&buf)
	ps.Advance(100 * time.Millisecond)
	ps.StopDump()
	second := ps.Read()

	var sum float64
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	for _, l := range lines {
		fields := strings.Fields(l)
		if len(fields) < 4 || fields[0] != "S" {
			t.Fatalf("bad dump line %q", l)
		}
		w, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", l, err)
		}
		sum += w * 50e-6
	}
	j := Joules(first, second, 0)
	if math.Abs(sum-j)/j > 0.01 {
		t.Fatalf("dump integral %v J vs state diff %v J", sum, j)
	}
}
