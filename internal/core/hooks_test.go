package core

import (
	"testing"
	"time"
)

// TestAttachSampleCoexists verifies the multi-observer plumbing: attached
// hooks see every sample set, in attach order, alongside the legacy
// OnSample observer — and replacing OnSample (as trace.Capture does) does
// not disturb them.
func TestAttachSampleCoexists(t *testing.T) {
	dev := newBenchDevice(1, 4)
	ps, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()

	var legacy, a, b int
	var order []string
	ps.OnSample(func(Sample) { legacy++; order = append(order, "legacy") })
	ida := ps.AttachSample(func(Sample) { a++; order = append(order, "a") })
	idb := ps.AttachSample(func(Sample) { b++; order = append(order, "b") })

	ps.Advance(10 * time.Millisecond)
	if legacy == 0 || a != legacy || b != legacy {
		t.Fatalf("observer counts diverged: legacy=%d a=%d b=%d", legacy, a, b)
	}
	for i := 0; i+2 < len(order); i += 3 {
		if order[i] != "legacy" || order[i+1] != "a" || order[i+2] != "b" {
			t.Fatalf("bad dispatch order at %d: %v", i, order[i:i+3])
		}
	}

	// Replacing (then clearing) the OnSample slot must not touch hooks.
	ps.OnSample(nil)
	order = nil
	before := a
	ps.Advance(5 * time.Millisecond)
	if a == before {
		t.Fatal("hook a stopped after OnSample(nil)")
	}
	if legacy != b-(a-before) {
		t.Fatalf("legacy observer ran after removal: legacy=%d", legacy)
	}

	// Detach one hook; the other keeps running.
	ps.DetachSample(ida)
	aAfterDetach, bBefore := a, b
	ps.Advance(5 * time.Millisecond)
	if a != aAfterDetach {
		t.Fatalf("detached hook still ran: %d -> %d", aAfterDetach, a)
	}
	if b == bBefore {
		t.Fatal("remaining hook stopped after detaching the other")
	}
	ps.DetachSample(idb)
	ps.DetachSample(idb) // double-detach is a no-op
}
