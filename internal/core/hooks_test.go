package core

import (
	"testing"
	"time"
)

// TestAttachSampleCoexists verifies the multi-observer plumbing: any
// number of attached hooks see every sample set, in attach order, and
// attaching or detaching one (as trace.Capture does around a transient
// capture) does not disturb the others.
func TestAttachSampleCoexists(t *testing.T) {
	dev := newBenchDevice(1, 4)
	ps, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()

	var a, b int
	var order []string
	ida := ps.AttachSample(func(Sample) { a++; order = append(order, "a") })
	idb := ps.AttachSample(func(Sample) { b++; order = append(order, "b") })

	ps.Advance(10 * time.Millisecond)
	if a == 0 || b != a {
		t.Fatalf("observer counts diverged: a=%d b=%d", a, b)
	}
	for i := 0; i+1 < len(order); i += 2 {
		if order[i] != "a" || order[i+1] != "b" {
			t.Fatalf("bad dispatch order at %d: %v", i, order[i:i+2])
		}
	}

	// A transient third hook comes and goes without disturbing the rest.
	var c int
	idc := ps.AttachSample(func(Sample) { c++ })
	before := a
	ps.Advance(5 * time.Millisecond)
	if c == 0 || c != a-before {
		t.Fatalf("transient hook saw %d of %d sets", c, a-before)
	}
	ps.DetachSample(idc)
	cAfter := c
	ps.Advance(5 * time.Millisecond)
	if c != cAfter {
		t.Fatalf("detached transient hook still ran: %d -> %d", cAfter, c)
	}

	// Detach one of the originals; the other keeps running.
	ps.DetachSample(ida)
	aAfterDetach, bBefore := a, b
	ps.Advance(5 * time.Millisecond)
	if a != aAfterDetach {
		t.Fatalf("detached hook still ran: %d -> %d", aAfterDetach, a)
	}
	if b == bBefore {
		t.Fatal("remaining hook stopped after detaching the other")
	}
	ps.DetachSample(idb)
	ps.DetachSample(idb) // double-detach is a no-op
}
