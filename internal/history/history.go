// Package history is the long-horizon storage tier behind the fleet's
// downsample rings. Rings hold seconds of block-averaged points at full
// fidelity; the questions production fleets ask span hours ("how many
// joules did gpu0 burn between t1 and t2?" — the interval-read model of
// PMT). This package keeps hours of a station's summed-power series in
// a compressed per-station Series and answers windowed energy queries
// over it.
//
// Storage is Gorilla-style: points are (timestamp, watts) pairs encoded
// as delta-of-delta timestamps plus XOR-compressed float values, sealed
// into fixed-point-count blocks. The downsample ring pushes points at a
// fixed cadence, so the steady-state timestamp costs one bit; values are
// quantised to a configurable dyadic quantum (default ~1 mW) before
// encoding so block-average noise does not defeat the XOR window — the
// quantisation error is orders of magnitude below the trapezoid model
// error of the downsampling itself. Sealed blocks additionally carry
// their endpoints and their own trapezoidal energy sum, so a window
// query decodes only the two blocks its edges cut; fully covered blocks
// contribute a precomputed sum without touching their bits.
//
// The tier is deliberately pull-based: nothing here runs on a fleet's
// ingest hot path. The fleet drains ring points into Append from a sync
// path (queries, a daemon timer), and Append itself allocates only when
// a block seals — steady-state appends write bits into recycled buffers.
//
// Query semantics: EnergyWindow integrates the stored series over
// [from, to] with trapezoidal interpolation and partial-interval
// clipping at both edges — a window edge falling between two stored
// points takes the linearly interpolated slice of that interval, never
// snapping to the nearest point. An empty or inverted window is 0 J by
// contract, never NaN.
package history

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes a Series. The zero value is usable: a 1 MiB budget,
// ~1 mW value quantum, 1024-point blocks.
type Config struct {
	// MaxBytes bounds the compressed footprint of the series; once a
	// sealed block would push past it, oldest blocks are evicted. Zero
	// means DefaultMaxBytes; negative means unbounded.
	MaxBytes int
	// Quantum is the value granularity, in watts, applied before
	// encoding: values are rounded to the nearest multiple. A dyadic
	// quantum (a power of two, like the default 2^-10 W) zeroes the
	// float64 mantissa bits below it exactly, which is what lets the XOR
	// encoder store a noisy block average in a few bits. Zero means
	// DefaultQuantum; negative means lossless (no quantisation).
	Quantum float64
	// BlockPoints is the number of points per sealed block. Zero means
	// DefaultBlockPoints.
	BlockPoints int
}

const (
	// DefaultMaxBytes is the default per-series compressed budget:
	// 1 MiB holds on the order of 300k+ points — minutes of 1 ms ring
	// points, days of a 10 Hz software meter.
	DefaultMaxBytes = 1 << 20
	// DefaultQuantum is the default value quantum: 2^-10 W (~1 mW),
	// a worst-case rounding error of ~0.5 mW per point — noise floor
	// territory for the tens-of-watts rails the fleet measures.
	DefaultQuantum = 1.0 / 1024
	// DefaultBlockPoints is the default sealed-block size.
	DefaultBlockPoints = 1024

	// blockOverhead is the accounting estimate of one block's fixed
	// footprint (struct header, endpoints, slice header) charged against
	// MaxBytes on top of its encoded bits.
	blockOverhead = 64

	// rawPointBytes is the flat cost of one uncompressed point — an
	// (int64 nanoseconds, float64 watts) pair — the baseline the
	// compression ratio is measured against.
	rawPointBytes = 16
)

// Point is one decoded history sample: the block-averaged summed power
// the downsample ring produced at Time.
type Point struct {
	Time  time.Duration `json:"t"`
	Watts float64       `json:"w"`
}

// Stats is a point-in-time accounting snapshot of a Series, assembled
// from atomic counters — reading it takes no lock and cannot stall a
// concurrent append or query.
type Stats struct {
	// Points is the number of points currently held (sealed blocks plus
	// the active head block).
	Points uint64 `json:"points"`
	// Appended counts points ever accepted by Append.
	Appended uint64 `json:"appended"`
	// Dropped counts appends discarded for non-monotonic timestamps —
	// a repeated timestamp would make any rate derived from adjacent
	// points divide by zero, so the series refuses them at the door.
	Dropped uint64 `json:"dropped"`
	// EvictedPoints counts points dropped with their blocks to keep the
	// series inside its byte budget.
	EvictedPoints uint64 `json:"evicted_points"`
	// Blocks is the number of sealed blocks currently held.
	Blocks uint64 `json:"blocks"`
	// Bytes is the compressed footprint currently held, per-block
	// overhead included.
	Bytes uint64 `json:"bytes"`
}

// RawBytes is the flat float64 footprint the held points would occupy
// uncompressed.
func (st Stats) RawBytes() uint64 { return st.Points * rawPointBytes }

// Ratio is the compression ratio achieved: raw bytes over compressed
// bytes. Zero when nothing is stored.
func (st Stats) Ratio() float64 {
	if st.Bytes == 0 {
		return 0
	}
	return float64(st.RawBytes()) / float64(st.Bytes)
}

// block is one sealed, immutable run of consecutive points. Alongside
// the encoded bits it keeps its endpoints and its internal trapezoidal
// energy sum, so window queries decode a block only when a window edge
// falls inside it.
type block struct {
	count     int
	t0, tLast time.Duration
	v0Bits    uint64 // first value, float64 bits (decoder seed)
	v0, vLast float64
	sumJ      float64 // trapezoid energy across the block's own points
	bits      []byte
}

// headState is the active block being encoded: the appender's codec
// state plus the same summary fields a sealed block keeps. Its bit
// buffer is reused across seals, so steady-state appends allocate
// nothing.
type headState struct {
	count       int
	t0, tLast   time.Duration
	v0Bits      uint64
	v0, vLast   float64
	sumJ        float64
	prevDelta   int64
	prevVBits   uint64
	haveWin     bool
	lead, trail uint
	w           bitWriter
}

// blockView is the uniform read-side view of a block, sealed or head.
type blockView struct {
	count     int
	t0, tLast time.Duration
	v0Bits    uint64
	v0, vLast float64
	sumJ      float64
	bits      []byte
}

func (b *block) view() blockView {
	return blockView{count: b.count, t0: b.t0, tLast: b.tLast,
		v0Bits: b.v0Bits, v0: b.v0, vLast: b.vLast, sumJ: b.sumJ, bits: b.bits}
}

func (h *headState) view() blockView {
	return blockView{count: h.count, t0: h.t0, tLast: h.tLast,
		v0Bits: h.v0Bits, v0: h.v0, vLast: h.vLast, sumJ: h.sumJ, bits: h.w.buf}
}

// Series is one station's compressed long-horizon history: sealed
// blocks oldest-first plus the active head block. One appender and any
// number of queriers may use it concurrently; appends and queries
// serialise on an internal mutex (both are off every hot path), while
// Stats reads atomic counters lock-free.
type Series struct {
	mu       sync.Mutex
	maxBytes int     // 0 = unbounded
	quantum  float64 // 0 = lossless
	blockPts int

	blocks      []*block
	head        headState
	sealedBytes int // bits + overhead of the sealed blocks

	points   atomic.Uint64
	appended atomic.Uint64
	dropped  atomic.Uint64
	evicted  atomic.Uint64
	blocksN  atomic.Uint64
	bytes    atomic.Uint64
}

// New returns an empty series tuned by cfg (zero value: defaults).
func New(cfg Config) *Series {
	s := &Series{maxBytes: cfg.MaxBytes, quantum: cfg.Quantum, blockPts: cfg.BlockPoints}
	switch {
	case s.maxBytes == 0:
		s.maxBytes = DefaultMaxBytes
	case s.maxBytes < 0:
		s.maxBytes = 0
	}
	switch {
	case s.quantum == 0:
		s.quantum = DefaultQuantum
	case s.quantum < 0:
		s.quantum = 0
	}
	if s.blockPts <= 0 {
		s.blockPts = DefaultBlockPoints
	}
	return s
}

// Append records one point. Timestamps must be strictly increasing:
// a repeated or rewound timestamp is counted in Stats.Dropped and
// discarded, never stored — the zero-interval guard at the storage
// layer, so no rate or trapezoid derived from two adjacent history
// points can ever divide by zero. Steady-state appends allocate
// nothing; a block seal (every BlockPoints appends) allocates the
// sealed copy.
func (s *Series) Append(t time.Duration, w float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.quantum > 0 {
		w = math.Round(w/s.quantum) * s.quantum
	}
	h := &s.head
	if h.count == 0 {
		if n := len(s.blocks); n > 0 && t <= s.blocks[n-1].tLast {
			s.dropped.Add(1)
			return
		}
		vb := math.Float64bits(w)
		h.t0, h.tLast, h.v0, h.vLast = t, t, w, w
		h.v0Bits, h.prevVBits = vb, vb
		h.count, h.prevDelta, h.sumJ, h.haveWin = 1, 0, 0, false
	} else {
		if t <= h.tLast {
			s.dropped.Add(1)
			return
		}
		delta := int64(t - h.tLast)
		h.w.writeDoD(delta - h.prevDelta)
		h.prevDelta = delta
		h.writeValue(math.Float64bits(w))
		h.sumJ += (w + h.vLast) / 2 * time.Duration(delta).Seconds()
		h.tLast, h.vLast = t, w
		h.count++
	}
	s.points.Add(1)
	s.appended.Add(1)
	if h.count == s.blockPts {
		s.sealLocked()
	}
	s.bytes.Store(uint64(s.sealedBytes + len(h.w.buf) + blockOverhead))
}

// sealLocked closes the head block into an immutable sealed block and
// evicts oldest blocks while the series exceeds its byte budget. Called
// with s.mu held.
func (s *Series) sealLocked() {
	h := &s.head
	if h.count == 0 {
		return
	}
	blk := &block{count: h.count, t0: h.t0, tLast: h.tLast,
		v0Bits: h.v0Bits, v0: h.v0, vLast: h.vLast, sumJ: h.sumJ,
		bits: append([]byte(nil), h.w.buf...)}
	s.blocks = append(s.blocks, blk)
	s.sealedBytes += len(blk.bits) + blockOverhead
	h.count = 0
	h.w.reset()
	if s.maxBytes > 0 {
		for len(s.blocks) > 1 && s.sealedBytes+blockOverhead > s.maxBytes {
			old := s.blocks[0]
			s.sealedBytes -= len(old.bits) + blockOverhead
			copy(s.blocks, s.blocks[1:])
			s.blocks[len(s.blocks)-1] = nil
			s.blocks = s.blocks[:len(s.blocks)-1]
			s.evicted.Add(uint64(old.count))
			s.points.Add(^uint64(old.count - 1)) // -= count
		}
	}
	s.blocksN.Store(uint64(len(s.blocks)))
}

// Stats returns the series' accounting snapshot from atomic counters —
// no lock, so scrape paths may call it per station per scrape.
func (s *Series) Stats() Stats {
	return Stats{
		Points:        s.points.Load(),
		Appended:      s.appended.Load(),
		Dropped:       s.dropped.Load(),
		EvictedPoints: s.evicted.Load(),
		Blocks:        s.blocksN.Load(),
		Bytes:         s.bytes.Load(),
	}
}

// Bounds returns the timestamps of the oldest and newest points held,
// and whether the series holds any points at all.
func (s *Series) Bounds() (first, last time.Duration, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case len(s.blocks) > 0:
		first = s.blocks[0].t0
	case s.head.count > 0:
		first = s.head.t0
	default:
		return 0, 0, false
	}
	if s.head.count > 0 {
		return first, s.head.tLast, true
	}
	return first, s.blocks[len(s.blocks)-1].tLast, true
}
