// The bit-level codec of the long-horizon history tier: MSB-first bit
// strings, delta-of-delta timestamp encoding and XOR float encoding in
// the style of Facebook's Gorilla TSDB. See history.go for the tier
// overview and the on-disk-free block layout.

package history

import (
	"math"
	"math/bits"
	"time"
)

// bitWriter appends MSB-first bit strings into a growable byte buffer.
// The buffer is reused across blocks (reset keeps capacity), so
// steady-state appends write into already-grown storage and allocate
// nothing.
type bitWriter struct {
	buf  []byte
	free uint // unused low bits of the last byte; 0 when byte-aligned
}

func (w *bitWriter) reset() {
	w.buf = w.buf[:0]
	w.free = 0
}

// writeBits appends the low n bits of v, most significant first.
func (w *bitWriter) writeBits(v uint64, n uint) {
	v <<= 64 - n // left-align the payload
	for n > 0 {
		if w.free == 0 {
			w.buf = append(w.buf, 0)
			w.free = 8
		}
		take := w.free
		if take > n {
			take = n
		}
		w.buf[len(w.buf)-1] |= byte(v >> (64 - take) << (w.free - take))
		v <<= take
		n -= take
		w.free -= take
	}
}

func (w *bitWriter) writeBit(b uint64) { w.writeBits(b, 1) }

// bitReader consumes MSB-first bit strings from a byte buffer. Callers
// bound reads by the encoded point count, never by buffer exhaustion, so
// trailing pad bits in the final byte are never misread as data.
type bitReader struct {
	buf []byte
	pos uint // absolute bit cursor
}

func (r *bitReader) readBits(n uint) uint64 {
	var v uint64
	for n > 0 {
		b := r.buf[r.pos>>3]
		avail := 8 - (r.pos & 7)
		take := avail
		if take > n {
			take = n
		}
		chunk := uint64(b>>(avail-take)) & (1<<take - 1)
		v = v<<take | chunk
		r.pos += take
		n -= take
	}
	return v
}

func (r *bitReader) readBit() uint64 { return r.readBits(1) }

// writeDoD encodes one delta-of-delta of nanosecond timestamps with
// variable-width buckets. A fixed-cadence stream (the downsample ring's
// steady state) emits dod == 0, one bit per point; clock jitter and
// resyncs pay wider buckets, up to a raw 64-bit escape for arbitrary
// gaps (a station parked for hours, a ring wraparound the sync missed).
func (w *bitWriter) writeDoD(dod int64) {
	switch {
	case dod == 0:
		w.writeBit(0)
	case -64 <= dod && dod < 64:
		w.writeBits(0b10, 2)
		w.writeBits(uint64(dod+64), 7)
	case -2048 <= dod && dod < 2048:
		w.writeBits(0b110, 3)
		w.writeBits(uint64(dod+2048), 12)
	case -(1<<31) <= dod && dod < 1<<31:
		w.writeBits(0b1110, 4)
		w.writeBits(uint64(dod+1<<31), 32)
	default:
		w.writeBits(0b1111, 4)
		w.writeBits(uint64(dod), 64)
	}
}

func (r *bitReader) readDoD() int64 {
	if r.readBit() == 0 {
		return 0
	}
	if r.readBit() == 0 {
		return int64(r.readBits(7)) - 64
	}
	if r.readBit() == 0 {
		return int64(r.readBits(12)) - 2048
	}
	if r.readBit() == 0 {
		return int64(r.readBits(32)) - 1<<31
	}
	return int64(r.readBits(64))
}

// writeValue XOR-encodes one float64 against the previous value. An
// unchanged value costs one bit; otherwise the changed mantissa window
// is written, reusing the previous leading/trailing-zero window when it
// still covers the XOR (control '10') and re-declaring it otherwise
// ('11' + 5-bit leading count + 6-bit length). Quantisation upstream
// (Series.Append) zeroes low mantissa bits so the window stays narrow.
func (h *headState) writeValue(vb uint64) {
	xor := vb ^ h.prevVBits
	h.prevVBits = vb
	if xor == 0 {
		h.w.writeBit(0)
		return
	}
	h.w.writeBit(1)
	lead := uint(bits.LeadingZeros64(xor))
	if lead > 31 { // 5-bit field; deeper leads just widen the window
		lead = 31
	}
	trail := uint(bits.TrailingZeros64(xor))
	if h.haveWin && lead >= h.lead && trail >= h.trail {
		h.w.writeBit(0)
		h.w.writeBits(xor>>h.trail, 64-h.lead-h.trail)
		return
	}
	h.haveWin, h.lead, h.trail = true, lead, trail
	sig := 64 - lead - trail
	h.w.writeBit(1)
	h.w.writeBits(uint64(lead), 5)
	h.w.writeBits(uint64(sig-1), 6) // sig is 1..64, stored as 0..63
	h.w.writeBits(xor>>trail, sig)
}

// blockIter decodes one block's points in order, the active head block
// included (its bit buffer reads the same way; the point count bounds
// the iteration). Must be used under the owning Series' mutex.
type blockIter struct {
	r           bitReader
	count       int
	i           int
	t           time.Duration
	prevDelta   int64
	vBits       uint64
	lead, trail uint
}

func (bv *blockView) iter() blockIter {
	return blockIter{
		r:     bitReader{buf: bv.bits},
		count: bv.count,
		t:     bv.t0,
		vBits: bv.v0Bits,
	}
}

func (it *blockIter) next() (time.Duration, float64, bool) {
	if it.i >= it.count {
		return 0, 0, false
	}
	if it.i == 0 {
		it.i++
		return it.t, math.Float64frombits(it.vBits), true
	}
	it.prevDelta += it.r.readDoD()
	it.t += time.Duration(it.prevDelta)
	if it.r.readBit() == 1 {
		if it.r.readBit() == 1 {
			it.lead = uint(it.r.readBits(5))
			sig := uint(it.r.readBits(6)) + 1
			it.trail = 64 - it.lead - sig
		}
		it.vBits ^= it.r.readBits(64-it.lead-it.trail) << it.trail
	}
	it.i++
	return it.t, math.Float64frombits(it.vBits), true
}
