package history

import (
	"math"
	"testing"
	"time"

	"repro/internal/rng"
)

// fleetLikeWatts is the benchmark signal: the board-power shape the
// downsample ring feeds the tier in production — workload plateaus with
// sinusoidal swing and block-average noise.
func fleetLikeWatts(r *rng.Source, i int) float64 {
	base := 55.0
	if (i/3000)%2 == 1 {
		base = 78
	}
	return base + 2*math.Sin(float64(i)/40) + 0.3*r.Float64()
}

// BenchmarkHistoryAppend measures steady-state append cost on the
// default configuration and reports the achieved compression ratio —
// the BENCH_fleet.json history row. Allocations amortise to ~0: only a
// block seal (every 1024 appends) allocates.
func BenchmarkHistoryAppend(b *testing.B) {
	s := New(Config{})
	r := rng.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Append(time.Duration(i)*time.Millisecond, fleetLikeWatts(r, i))
	}
	b.StopTimer()
	st := s.Stats()
	if st.Bytes > 0 {
		b.ReportMetric(st.Ratio(), "ratio")
		b.ReportMetric(float64(st.Bytes)/float64(st.Points), "B/point")
	}
}

// BenchmarkEnergyWindow measures a windowed energy query over a series
// holding 100k points (~100 s of 1 ms ring output), with window edges
// cutting into sealed blocks on both sides — the worst case that still
// profits from the per-block energy sums.
func BenchmarkEnergyWindow(b *testing.B) {
	s := New(Config{})
	r := rng.New(2)
	const n = 100000
	for i := 0; i < n; i++ {
		s.Append(time.Duration(i)*time.Millisecond, fleetLikeWatts(r, i))
	}
	from := 7*time.Second + 300*time.Microsecond
	to := 93*time.Second + 700*time.Microsecond
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.EnergyWindow(from, to)
	}
	_ = sink
}
