// Windowed queries over a Series: trapezoidal energy integration with
// partial-interval clipping at both window edges, and windowed decode.

package history

import "time"

// SegmentEnergy returns the energy, in joules, of the linear power
// segment from (t0, w0) to (t1, w1) clipped to the window [from, to]:
// the clipped sub-interval's endpoint powers are linearly interpolated
// and trapezoid-integrated. A window edge falling strictly inside the
// segment therefore takes exactly the covered slice — never snapping to
// the nearer stored point. Degenerate inputs (t1 <= t0, to <= from, or
// no overlap) contribute exactly 0 J, never NaN: the zero-interval
// contract shared with pmt.Watts.
func SegmentEnergy(t0 time.Duration, w0 float64, t1 time.Duration, w1 float64, from, to time.Duration) float64 {
	if t1 <= t0 || to <= from {
		return 0
	}
	a, b := t0, t1
	if from > a {
		a = from
	}
	if to < b {
		b = to
	}
	if b <= a {
		return 0
	}
	span := (t1 - t0).Seconds()
	slope := (w1 - w0) / span
	wa := w0 + slope*(a-t0).Seconds()
	wb := w0 + slope*(b-t0).Seconds()
	return (wa + wb) / 2 * (b - a).Seconds()
}

// Integrate trapezoid-integrates a raw sampled power series over
// [from, to] with the same edge-clipping semantics as EnergyWindow —
// the reference integrator the history tier is tested against, and the
// fallback fleets use when a station runs without a history series.
// times must be ascending; len(watts) must equal len(times).
func Integrate(times []time.Duration, watts []float64, from, to time.Duration) float64 {
	var j float64
	for i := 1; i < len(times); i++ {
		j += SegmentEnergy(times[i-1], watts[i-1], times[i], watts[i], from, to)
	}
	return j
}

// EnergyWindow integrates the stored power series over [from, to], in
// joules. Edges clip: a window boundary falling between two stored
// points takes the linearly interpolated partial trapezoid of that
// interval. An empty or inverted window (to <= from), or a window
// wholly outside the stored span, returns exactly 0 J — never NaN.
//
// Sealed blocks fully covered by the window contribute their
// precomputed energy sum without decoding; only the blocks a window
// edge cuts are decoded, so a query's cost scales with the block count
// plus two block decodes, not the point count.
func (s *Series) EnergyWindow(from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	q := windowQuery{from: from, to: to}
	for _, b := range s.blocks {
		bv := b.view()
		if q.walk(&bv) {
			return q.joules
		}
	}
	bv := s.head.view()
	q.walk(&bv)
	return q.joules
}

// windowQuery accumulates one EnergyWindow pass: the running integral
// plus the previous point seen, which bridges the gap segments between
// blocks (a block boundary is still one sampling interval of the
// underlying series).
type windowQuery struct {
	from, to time.Duration
	joules   float64
	havePrev bool
	prevT    time.Duration
	prevW    float64
}

func (q *windowQuery) bridge(t time.Duration, w float64) {
	if q.havePrev {
		q.joules += SegmentEnergy(q.prevT, q.prevW, t, w, q.from, q.to)
	}
	q.havePrev, q.prevT, q.prevW = true, t, w
}

// walk folds one block into the query and reports whether the window is
// exhausted (every later block lies wholly past it).
func (q *windowQuery) walk(bv *blockView) bool {
	if bv.count == 0 {
		return false
	}
	switch {
	case bv.t0 >= q.to:
		// Whole block past the window: only the bridge from the
		// previous point into this block's first point can still
		// overlap, then the query is done.
		q.bridge(bv.t0, bv.v0)
		return true
	case bv.tLast <= q.from:
		// Whole block before the window: its internal segments cannot
		// overlap; carry the endpoints so the bridge into the next
		// block clips correctly.
		q.bridge(bv.t0, bv.v0)
		q.havePrev, q.prevT, q.prevW = true, bv.tLast, bv.vLast
	case q.from <= bv.t0 && bv.tLast <= q.to:
		// Fully covered: bridge in, then take the precomputed sum.
		q.bridge(bv.t0, bv.v0)
		q.joules += bv.sumJ
		q.havePrev, q.prevT, q.prevW = true, bv.tLast, bv.vLast
	default:
		// A window edge cuts this block: decode and clip per segment.
		it := bv.iter()
		for {
			t, w, ok := it.next()
			if !ok {
				break
			}
			q.bridge(t, w)
		}
	}
	return false
}

// PointsInto appends the stored points with timestamps in [from, to]
// (inclusive) to dst, oldest first, and returns the extended slice.
// Blocks wholly outside the window are skipped without decoding.
func (s *Series) PointsInto(dst []Point, from, to time.Duration) []Point {
	if to < from {
		return dst
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, b := range s.blocks {
		bv := b.view()
		dst = appendWindow(dst, &bv, from, to)
	}
	bv := s.head.view()
	return appendWindow(dst, &bv, from, to)
}

func appendWindow(dst []Point, bv *blockView, from, to time.Duration) []Point {
	if bv.count == 0 || bv.tLast < from || bv.t0 > to {
		return dst
	}
	it := bv.iter()
	for {
		t, w, ok := it.next()
		if !ok || t > to {
			break
		}
		if t >= from {
			dst = append(dst, Point{Time: t, Watts: w})
		}
	}
	return dst
}
