package history

import (
	"math"
	"testing"
	"time"

	"repro/internal/rng"
)

// synthSeries appends n points at the given cadence starting at start,
// with watts produced by f, into a fresh series built from cfg. It
// returns the series plus the raw times/values for reference checks.
func synthSeries(cfg Config, n int, start, cadence time.Duration, f func(i int) float64) (*Series, []time.Duration, []float64) {
	s := New(cfg)
	times := make([]time.Duration, n)
	watts := make([]float64, n)
	for i := 0; i < n; i++ {
		t := start + time.Duration(i)*cadence
		w := f(i)
		s.Append(t, w)
		times[i], watts[i] = t, w
	}
	return s, times, watts
}

func TestRoundTripLossless(t *testing.T) {
	r := rng.New(42)
	// Irregular cadence, noisy values, several sealed blocks: the codec
	// must reproduce both columns bit-exactly when quantisation is off.
	cfg := Config{Quantum: -1, BlockPoints: 64}
	s := New(cfg)
	n := 1000
	times := make([]time.Duration, n)
	watts := make([]float64, n)
	tm := time.Duration(0)
	for i := 0; i < n; i++ {
		tm += time.Millisecond + time.Duration(r.Intn(500))*time.Microsecond
		w := 40 + 40*r.Float64()
		if r.Intn(10) == 0 {
			w = 0 // rails idle to exactly zero sometimes
		}
		times[i], watts[i] = tm, w
		s.Append(tm, w)
	}
	pts := s.PointsInto(nil, 0, tm)
	if len(pts) != n {
		t.Fatalf("decoded %d points, want %d", len(pts), n)
	}
	for i, p := range pts {
		if p.Time != times[i] {
			t.Fatalf("point %d time %v, want %v", i, p.Time, times[i])
		}
		if p.Watts != watts[i] {
			t.Fatalf("point %d watts %v, want %v (bit-exact)", i, p.Watts, watts[i])
		}
	}
}

func TestQuantisationBound(t *testing.T) {
	r := rng.New(7)
	s := New(Config{BlockPoints: 128}) // default quantum
	n := 2000
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		w := 55 + 10*r.Float64()
		want[i] = w
		s.Append(time.Duration(i)*time.Millisecond, w)
	}
	pts := s.PointsInto(nil, 0, time.Duration(n)*time.Millisecond)
	if len(pts) != n {
		t.Fatalf("decoded %d points, want %d", len(pts), n)
	}
	for i, p := range pts {
		if math.Abs(p.Watts-want[i]) > DefaultQuantum/2+1e-12 {
			t.Fatalf("point %d quantisation error %v exceeds quantum/2", i, p.Watts-want[i])
		}
	}
}

func TestAppendRejectsNonMonotonic(t *testing.T) {
	s := New(Config{})
	s.Append(time.Second, 10)
	s.Append(time.Second, 11)           // zero interval: refused
	s.Append(500*time.Millisecond, 12)  // rewound: refused
	s.Append(1500*time.Millisecond, 13) // fine
	s.Append(1500*time.Millisecond, 14) // zero interval again
	if st := s.Stats(); st.Points != 2 || st.Dropped != 3 {
		t.Fatalf("points=%d dropped=%d, want 2 and 3", st.Points, st.Dropped)
	}
	// The refused zero-interval points must not poison derived rates:
	// the stored series has strictly increasing timestamps.
	pts := s.PointsInto(nil, 0, 2*time.Second)
	for i := 1; i < len(pts); i++ {
		if pts[i].Time <= pts[i-1].Time {
			t.Fatalf("stored timestamps not strictly increasing: %v then %v",
				pts[i-1].Time, pts[i].Time)
		}
	}
}

func TestEnergyWindowMatchesIntegrate(t *testing.T) {
	r := rng.New(11)
	// Lossless so the reference integral over the raw inputs is exact.
	s, times, watts := synthSeries(Config{Quantum: -1, BlockPoints: 32}, 500,
		10*time.Millisecond, time.Millisecond,
		func(i int) float64 { return 60 + 20*math.Sin(float64(i)/9) })
	_ = watts
	span := times[len(times)-1] - times[0]
	for trial := 0; trial < 200; trial++ {
		// Windows with edges landing between points, on points, outside
		// the stored span, and spanning sealed-block boundaries.
		from := times[0] + time.Duration(r.Intn(int(span)))
		to := from + time.Duration(r.Intn(int(span)))
		got := s.EnergyWindow(from, to)
		want := Integrate(times, watts, from, to)
		if math.IsNaN(got) {
			t.Fatalf("EnergyWindow(%v, %v) is NaN", from, to)
		}
		if diff := math.Abs(got - want); diff > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("EnergyWindow(%v, %v) = %v, want %v (diff %v)", from, to, got, want, diff)
		}
	}
}

func TestEnergyWindowZeroIntervalContract(t *testing.T) {
	s, times, _ := synthSeries(Config{}, 100, 0, time.Millisecond,
		func(i int) float64 { return 50 })
	mid := times[50]
	for _, tc := range []struct {
		name     string
		from, to time.Duration
	}{
		{"empty", mid, mid},
		{"inverted", mid, mid - time.Millisecond},
		{"before data", -time.Second, -time.Millisecond},
		{"after data", times[99] + time.Second, times[99] + 2*time.Second},
	} {
		if j := s.EnergyWindow(tc.from, tc.to); j != 0 {
			t.Fatalf("%s window: EnergyWindow = %v, want exactly 0", tc.name, j)
		}
	}
	// An empty series answers 0 too, whatever the window.
	if j := New(Config{}).EnergyWindow(0, time.Hour); j != 0 {
		t.Fatalf("empty series EnergyWindow = %v, want 0", j)
	}
}

// snapIntegrate is the buggy integrator the clipping contract exists to
// rule out: it snaps the window edges to the nearest stored points and
// integrates whole intervals only.
func snapIntegrate(times []time.Duration, watts []float64, from, to time.Duration) float64 {
	nearest := func(x time.Duration) int {
		best, bestD := 0, time.Duration(math.MaxInt64)
		for i, tt := range times {
			d := tt - x
			if d < 0 {
				d = -d
			}
			if d < bestD {
				best, bestD = i, d
			}
		}
		return best
	}
	i, j := nearest(from), nearest(to)
	var sum float64
	for k := i + 1; k <= j; k++ {
		sum += (watts[k-1] + watts[k]) / 2 * (times[k] - times[k-1]).Seconds()
	}
	return sum
}

func TestWindowEdgeClippingNotSnapping(t *testing.T) {
	// A step waveform sampled every second: 0 W until t=5s, 100 W after.
	// The window [4.4s, 5.6s] straddles the step with both edges strictly
	// between stored points, where clipping and snapping disagree wildly.
	s, times, watts := synthSeries(Config{Quantum: -1}, 11, 0, time.Second,
		func(i int) float64 {
			if i < 5 {
				return 0
			}
			return 100
		})
	from, to := 4400*time.Millisecond, 5600*time.Millisecond
	got := s.EnergyWindow(from, to)
	// Clipped: [4.4,5] ramps 40→100 W (0.6 s × 70 W = 42 J), [5,5.6]
	// holds 100 W (60 J).
	want := 102.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("clipped EnergyWindow = %v J, want %v J", got, want)
	}
	snapped := snapIntegrate(times, watts, from, to)
	if rel := math.Abs(snapped-want) / want; rel < 0.05 {
		t.Fatalf("test waveform too forgiving: snapping is only %.1f%% off", rel*100)
	}
}

func TestEvictionRespectsBudget(t *testing.T) {
	cfg := Config{MaxBytes: 4096, BlockPoints: 128}
	s := New(cfg)
	n := 20000
	r := rng.New(3)
	for i := 0; i < n; i++ {
		s.Append(time.Duration(i)*time.Millisecond, 50+5*r.Float64())
	}
	st := s.Stats()
	// The budget bounds the sealed blocks; the in-progress head block may
	// carry up to one block's worth of bits on top.
	if st.Bytes > uint64(cfg.MaxBytes+blockOverhead+512) {
		t.Fatalf("footprint %d over budget %d", st.Bytes, cfg.MaxBytes)
	}
	if st.EvictedPoints == 0 {
		t.Fatal("expected evictions against a 4 KiB budget")
	}
	if st.Points+st.EvictedPoints+st.Dropped != uint64(n) {
		t.Fatalf("points %d + evicted %d != appended %d", st.Points, st.EvictedPoints, n)
	}
	first, last, ok := s.Bounds()
	if !ok || first == 0 {
		t.Fatalf("bounds = %v..%v after eviction, want a moved-forward start", first, last)
	}
	if last != time.Duration(n-1)*time.Millisecond {
		t.Fatalf("newest bound %v, want %v", last, time.Duration(n-1)*time.Millisecond)
	}
	// Queries over the evicted span answer with what is retained: the
	// window clips to the held bounds rather than inventing data.
	j := s.EnergyWindow(0, last)
	want := s.EnergyWindow(first, last)
	if math.Abs(j-want) > 1e-9 {
		t.Fatalf("query over evicted span = %v, retained span = %v", j, want)
	}
}

func TestSteadyStateAppendZeroAlloc(t *testing.T) {
	s := New(Config{BlockPoints: 4096})
	// Warm exactly one full block so the head's bit buffer has grown to
	// steady-state capacity and a seal just finished.
	tm := time.Duration(0)
	r := rng.New(9)
	next := func() {
		tm += time.Millisecond
		s.Append(tm, 60+3*r.Float64())
	}
	for i := 0; i < 4096; i++ {
		next()
	}
	if got := s.Stats().Blocks; got != 1 {
		t.Fatalf("warmup sealed %d blocks, want 1", got)
	}
	// 513 appends (runs + AllocsPerRun's warmup call) stay inside the
	// fresh 4096-point head block: no seal, no buffer growth, and so not
	// one allocation — history appends ride the fleet's sync path, which
	// inherits ingest's zero-alloc discipline.
	if allocs := testing.AllocsPerRun(512, next); allocs != 0 {
		t.Fatalf("steady-state append allocates %v/op, want 0", allocs)
	}
}

func TestCompressionRatioOnFleetLikeSignal(t *testing.T) {
	// The shape the downsample ring actually produces: a tens-of-watts
	// board level with workload swings and block-average noise, at a
	// fixed 1 ms cadence. The acceptance floor is 4x over flat float64.
	r := rng.New(17)
	s := New(Config{})
	n := 60000
	for i := 0; i < n; i++ {
		base := 55.0
		if (i/3000)%2 == 1 {
			base = 78 // workload plateau
		}
		w := base + 2*math.Sin(float64(i)/40) + 0.3*r.Float64()
		s.Append(time.Duration(i)*time.Millisecond, w)
	}
	st := s.Stats()
	if ratio := st.Ratio(); ratio < 4 {
		t.Fatalf("compression ratio %.2fx (%d points in %d bytes), want >= 4x",
			ratio, st.Points, st.Bytes)
	}
}

func TestPointsIntoWindow(t *testing.T) {
	s, times, _ := synthSeries(Config{BlockPoints: 16}, 100, 0, time.Millisecond,
		func(i int) float64 { return float64(i) })
	from, to := times[23], times[71]
	pts := s.PointsInto(nil, from, to)
	if len(pts) != 71-23+1 {
		t.Fatalf("window decode returned %d points, want %d", len(pts), 71-23+1)
	}
	if pts[0].Time != from || pts[len(pts)-1].Time != to {
		t.Fatalf("window decode spans %v..%v, want %v..%v",
			pts[0].Time, pts[len(pts)-1].Time, from, to)
	}
	// Appending into a reused slice extends rather than reallocating.
	again := s.PointsInto(pts[:0], from, to)
	if &again[0] != &pts[0] {
		t.Fatal("PointsInto did not reuse the destination slice")
	}
}
