package source

import (
	"testing"
	"time"

	"repro/internal/analog"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/protocol"
)

// benchDriver is a minimal Driver: a bench-supply device with a constant
// load and no workload beyond the supply itself.
type benchDriver struct {
	dev *device.Device
	ps  *core.PowerSensor
}

func newBenchDriver(t *testing.T, amps float64) *benchDriver {
	t.Helper()
	dev := device.New(5, device.Slot{
		Module: analog.NewModule(analog.Slot10A, 12),
		Source: device.BenchSource{
			Supply: &bench.Supply{Nominal: 12},
			Load:   bench.ConstantLoad(amps),
		},
	})
	ps, err := core.Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	return &benchDriver{dev: dev, ps: ps}
}

func (d *benchDriver) Sensor() *core.PowerSensor { return d.ps }
func (d *benchDriver) Now() time.Duration        { return d.dev.Now() }
func (d *benchDriver) Advance(dt time.Duration)  { d.ps.Advance(dt) }
func (d *benchDriver) Close()                    { d.ps.Close() }

func TestBatchColumns(t *testing.T) {
	var b Batch
	b.Reset(2)
	if b.Len() != 0 || b.Stride() != 2 {
		t.Fatalf("fresh batch: len=%d stride=%d", b.Len(), b.Stride())
	}
	b.Append(time.Millisecond, []float64{1, 2}, 3)
	b.Append(2*time.Millisecond, []float64{4, 5}, 9)
	b.Mark()
	if b.Len() != 2 {
		t.Fatalf("len = %d, want 2", b.Len())
	}
	if got := b.Row(0); got[0] != 1 || got[1] != 2 {
		t.Errorf("row 0 = %v", got)
	}
	if got := b.Row(1); got[0] != 4 || got[1] != 5 {
		t.Errorf("row 1 = %v", got)
	}
	if b.Total[0] != 3 || b.Total[1] != 9 {
		t.Errorf("totals = %v", b.Total)
	}
	if len(b.Marks) != 1 || b.Marks[0] != 1 {
		t.Errorf("marks = %v, want [1]", b.Marks)
	}
	// Reset empties every column but keeps capacity for reuse.
	wasCap := cap(b.Chans)
	b.Reset(2)
	if b.Len() != 0 || len(b.Chans) != 0 || len(b.Marks) != 0 {
		t.Errorf("reset batch not empty: %+v", b)
	}
	if cap(b.Chans) != wasCap {
		t.Errorf("reset dropped capacity: %d -> %d", wasCap, cap(b.Chans))
	}
}

func TestSensorSourceBatches(t *testing.T) {
	src := NewSensor(newBenchDriver(t, 2), []string{"slot12"})
	defer src.Close()

	meta := src.Meta()
	if meta.Backend != "powersensor3" {
		t.Errorf("backend = %q", meta.Backend)
	}
	if meta.RateHz != protocol.SampleRateHz {
		t.Errorf("rate = %v, want %v", meta.RateHz, float64(protocol.SampleRateHz))
	}
	if len(meta.Channels) != 1 || meta.Channels[0] != "slot12" {
		t.Errorf("channels = %v", meta.Channels)
	}

	// 10 ms at 20 kHz → ~200 samples in one batch.
	var b Batch
	src.ReadInto(10*time.Millisecond, &b)
	if b.Stride() != 1 {
		t.Fatalf("stride = %d, want 1", b.Stride())
	}
	if n := b.Len(); n < 150 || n > 210 {
		t.Fatalf("batch of %d samples for 10ms at 20kHz", n)
	}
	for i := 0; i < b.Len(); i++ {
		if b.Total[i] <= 0 || b.Row(i)[0] != b.Total[i] {
			t.Fatalf("sample %d: total=%v chans=%v", i, b.Total[i], b.Row(i))
		}
		if i > 0 && b.Time[i] <= b.Time[i-1] {
			t.Fatalf("sample %d: time not increasing", i)
		}
	}
	if src.Joules() <= 0 {
		t.Error("no energy accumulated")
	}
	if src.Resyncs() != 0 {
		t.Errorf("resyncs = %d on a clean link", src.Resyncs())
	}
	if src.Now() < 10*time.Millisecond {
		t.Errorf("Now = %v after 10ms ReadInto", src.Now())
	}

	// A second ReadInto replaces the batch contents in the same arrays.
	first := b.Len()
	src.ReadInto(10*time.Millisecond, &b)
	if n := b.Len(); n < 150 || n > 210 {
		t.Fatalf("second batch of %d samples", n)
	}
	if b.Time[0] <= 10*time.Millisecond {
		t.Errorf("second batch starts at %v, want after the first %d samples", b.Time[0], first)
	}
}

func TestSensorSourceDerivesChannelNames(t *testing.T) {
	src := NewSensor(newBenchDriver(t, 1), nil)
	defer src.Close()
	if ch := src.Meta().Channels; len(ch) != 1 || ch[0] != "pair0" {
		t.Fatalf("derived channels = %v", ch)
	}
}

func TestPolledSourcePacing(t *testing.T) {
	// A 10 Hz meter over a constant 100 W device with an exact energy
	// counter.
	var ticks []time.Duration
	src := NewPolled(PolledConfig{
		Meta:   Meta{Backend: "fake", RateHz: 10, Channels: []string{"board"}},
		Tick:   func(t time.Duration) { ticks = append(ticks, t) },
		Watts:  func(time.Duration) float64 { return 100 },
		Joules: func(t time.Duration) float64 { return 100 * t.Seconds() },
	})
	defer src.Close()

	// 1 s at 10 Hz → exactly 10 polls.
	var b Batch
	src.ReadInto(time.Second, &b)
	if b.Len() != 10 {
		t.Fatalf("%d samples in 1s at 10Hz, want 10", b.Len())
	}
	for i := 0; i < b.Len(); i++ {
		want := time.Duration(i+1) * 100 * time.Millisecond
		if b.Time[i] != want {
			t.Errorf("sample %d at %v, want %v", i, b.Time[i], want)
		}
		if b.Total[i] != 100 || b.Row(i)[0] != 100 {
			t.Errorf("sample %d: %v W (row %v)", i, b.Total[i], b.Row(i))
		}
	}
	// Tick ran once at construction (t=0) and once per poll.
	if len(ticks) != 11 {
		t.Errorf("%d ticks, want 11", len(ticks))
	}
	if j := src.Joules(); j < 99 || j > 101 {
		t.Errorf("joules = %v, want ~100", j)
	}

	// A sub-interval ReadInto yields nothing but still advances time.
	src.ReadInto(40*time.Millisecond, &b)
	if b.Len() != 0 {
		t.Errorf("%d samples in 40ms at 10Hz", b.Len())
	}
	if src.Now() != 1040*time.Millisecond {
		t.Errorf("Now = %v", src.Now())
	}
	// The next pollable instant is not lost across short reads.
	src.ReadInto(60*time.Millisecond, &b)
	if b.Len() != 1 {
		t.Errorf("%d samples after crossing the poll instant", b.Len())
	}
}

func TestPolledSourceWattsFromEnergy(t *testing.T) {
	// No Watts function: power must come out of counter deltas.
	src := NewPolled(PolledConfig{
		Meta:   Meta{Backend: "rapl-like", RateHz: 1000, Channels: []string{"package"}},
		Joules: func(t time.Duration) float64 { return 42 * t.Seconds() },
	})
	defer src.Close()
	var b Batch
	src.ReadInto(10*time.Millisecond, &b)
	if b.Len() != 10 {
		t.Fatalf("%d samples in 10ms at 1kHz", b.Len())
	}
	for i := 0; i < b.Len(); i++ {
		if w := b.Total[i]; w < 41.9 || w > 42.1 {
			t.Errorf("sample %d: %v W, want ~42", i, w)
		}
	}
}

// TestPolledSourceMultiChannelStride pins the batch stride to the
// declared channel count: a polled meter configured with several
// channels must fill stride-wide rows (reading on channel 0, the rest
// zero), not stride-1 rows a consumer would mis-walk.
func TestPolledSourceMultiChannelStride(t *testing.T) {
	src := NewPolled(PolledConfig{
		Meta:   Meta{Backend: "fake", RateHz: 100, Channels: []string{"rail0", "rail1"}},
		Watts:  func(time.Duration) float64 { return 50 },
		Joules: func(t time.Duration) float64 { return 50 * t.Seconds() },
	})
	defer src.Close()
	var b Batch
	src.ReadInto(100*time.Millisecond, &b)
	if b.Stride() != 2 {
		t.Fatalf("stride = %d, want 2", b.Stride())
	}
	if b.Len() != 10 {
		t.Fatalf("%d samples in 100ms at 100Hz", b.Len())
	}
	if len(b.Chans) != 20 {
		t.Fatalf("chans column holds %d values, want 20", len(b.Chans))
	}
	for i := 0; i < b.Len(); i++ {
		row := b.Row(i)
		if row[0] != 50 || row[1] != 0 || b.Total[i] != 50 {
			t.Fatalf("sample %d: row=%v total=%v", i, row, b.Total[i])
		}
	}
}

// TestReadIntoSteadyStateZeroAlloc is the zero-allocation contract of the
// batch path: once the caller-owned batch reaches capacity, repeated
// reads allocate nothing.
func TestReadIntoSteadyStateZeroAlloc(t *testing.T) {
	src := NewPolled(PolledConfig{
		Meta:   Meta{Backend: "fake", RateHz: 1000, Channels: []string{"board"}},
		Watts:  func(time.Duration) float64 { return 75 },
		Joules: func(t time.Duration) float64 { return 75 * t.Seconds() },
	})
	defer src.Close()
	var b Batch
	src.ReadInto(100*time.Millisecond, &b) // warm the arrays
	allocs := testing.AllocsPerRun(100, func() {
		src.ReadInto(100*time.Millisecond, &b)
	})
	if allocs != 0 {
		t.Errorf("steady-state ReadInto allocates %v per call, want 0", allocs)
	}
}
