package source

import (
	"testing"
	"time"

	"repro/internal/analog"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/protocol"
)

// benchDriver is a minimal Driver: a bench-supply device with a constant
// load and no workload beyond the supply itself.
type benchDriver struct {
	dev *device.Device
	ps  *core.PowerSensor
}

func newBenchDriver(t *testing.T, amps float64) *benchDriver {
	t.Helper()
	dev := device.New(5, device.Slot{
		Module: analog.NewModule(analog.Slot10A, 12),
		Source: device.BenchSource{
			Supply: &bench.Supply{Nominal: 12},
			Load:   bench.ConstantLoad(amps),
		},
	})
	ps, err := core.Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	return &benchDriver{dev: dev, ps: ps}
}

func (d *benchDriver) Sensor() *core.PowerSensor { return d.ps }
func (d *benchDriver) Now() time.Duration        { return d.dev.Now() }
func (d *benchDriver) Advance(dt time.Duration)  { d.ps.Advance(dt) }
func (d *benchDriver) Close()                    { d.ps.Close() }

func TestSensorSourceBatches(t *testing.T) {
	src := NewSensor(newBenchDriver(t, 2), []string{"slot12"})
	defer src.Close()

	meta := src.Meta()
	if meta.Backend != "powersensor3" {
		t.Errorf("backend = %q", meta.Backend)
	}
	if meta.RateHz != protocol.SampleRateHz {
		t.Errorf("rate = %v, want %v", meta.RateHz, float64(protocol.SampleRateHz))
	}
	if len(meta.Channels) != 1 || meta.Channels[0] != "slot12" {
		t.Errorf("channels = %v", meta.Channels)
	}

	// 10 ms at 20 kHz → ~200 samples in one batch.
	batch := src.Read(10 * time.Millisecond)
	if len(batch) < 150 || len(batch) > 210 {
		t.Fatalf("batch of %d samples for 10ms at 20kHz", len(batch))
	}
	for i, s := range batch {
		if s.Total <= 0 || s.Chans[0] != s.Total {
			t.Fatalf("sample %d: total=%v chans=%v", i, s.Total, s.Chans)
		}
		if i > 0 && s.Time <= batch[i-1].Time {
			t.Fatalf("sample %d: time not increasing", i)
		}
	}
	if src.Joules() <= 0 {
		t.Error("no energy accumulated")
	}
	if src.Resyncs() != 0 {
		t.Errorf("resyncs = %d on a clean link", src.Resyncs())
	}
	if src.Now() < 10*time.Millisecond {
		t.Errorf("Now = %v after 10ms Read", src.Now())
	}
}

func TestSensorSourceDerivesChannelNames(t *testing.T) {
	src := NewSensor(newBenchDriver(t, 1), nil)
	defer src.Close()
	if ch := src.Meta().Channels; len(ch) != 1 || ch[0] != "pair0" {
		t.Fatalf("derived channels = %v", ch)
	}
}

func TestPolledSourcePacing(t *testing.T) {
	// A 10 Hz meter over a constant 100 W device with an exact energy
	// counter.
	var ticks []time.Duration
	src := NewPolled(PolledConfig{
		Meta:   Meta{Backend: "fake", RateHz: 10, Channels: []string{"board"}},
		Tick:   func(t time.Duration) { ticks = append(ticks, t) },
		Watts:  func(time.Duration) float64 { return 100 },
		Joules: func(t time.Duration) float64 { return 100 * t.Seconds() },
	})
	defer src.Close()

	// 1 s at 10 Hz → exactly 10 polls.
	batch := src.Read(time.Second)
	if len(batch) != 10 {
		t.Fatalf("%d samples in 1s at 10Hz, want 10", len(batch))
	}
	for i, s := range batch {
		want := time.Duration(i+1) * 100 * time.Millisecond
		if s.Time != want {
			t.Errorf("sample %d at %v, want %v", i, s.Time, want)
		}
		if s.Total != 100 {
			t.Errorf("sample %d: %v W", i, s.Total)
		}
	}
	// Tick ran once at construction (t=0) and once per poll.
	if len(ticks) != 11 {
		t.Errorf("%d ticks, want 11", len(ticks))
	}
	if j := src.Joules(); j < 99 || j > 101 {
		t.Errorf("joules = %v, want ~100", j)
	}

	// A sub-interval Read yields nothing but still advances time.
	if got := src.Read(40 * time.Millisecond); len(got) != 0 {
		t.Errorf("%d samples in 40ms at 10Hz", len(got))
	}
	if src.Now() != 1040*time.Millisecond {
		t.Errorf("Now = %v", src.Now())
	}
	// The next pollable instant is not lost across short Reads.
	if got := src.Read(60 * time.Millisecond); len(got) != 1 {
		t.Errorf("%d samples after crossing the poll instant", len(got))
	}
}

func TestPolledSourceWattsFromEnergy(t *testing.T) {
	// No Watts function: power must come out of counter deltas.
	src := NewPolled(PolledConfig{
		Meta:   Meta{Backend: "rapl-like", RateHz: 1000, Channels: []string{"package"}},
		Joules: func(t time.Duration) float64 { return 42 * t.Seconds() },
	})
	defer src.Close()
	batch := src.Read(10 * time.Millisecond)
	if len(batch) != 10 {
		t.Fatalf("%d samples in 10ms at 1kHz", len(batch))
	}
	for i, s := range batch {
		if s.Total < 41.9 || s.Total > 42.1 {
			t.Errorf("sample %d: %v W, want ~42", i, s.Total)
		}
	}
}
