package source

import (
	"fmt"
	"time"
)

// PolledConfig wires a software meter into a Polled source.
type PolledConfig struct {
	// Meta describes the meter. RateHz must be positive: it sets the
	// polling cadence. Channels must name at least one channel.
	Meta Meta
	// Tick, if set, drives the device-under-test's workload up to
	// virtual time t. It is called once per poll instant, before Watts
	// and Joules, so kernel launches and load changes land before the
	// meter integrates across them.
	Tick func(t time.Duration)
	// Watts returns the meter's power reading at virtual time t. Nil
	// derives power from Joules deltas — the way tools sample
	// energy-counter-only interfaces such as RAPL.
	Watts func(t time.Duration) float64
	// Joules returns the meter's cumulative energy counter at t.
	Joules func(t time.Duration) float64
	// Close, if set, releases the meter.
	Close func()
}

// Polled adapts a software meter — NVML, AMD SMI, the Jetson INA3221,
// RAPL — to the Source interface by polling it at its native refresh
// cadence on virtual time. Each ReadInto yields one batch: every poll
// instant that elapsed in the slice, appended straight into the caller's
// columns.
type Polled struct {
	cfg      PolledConfig
	interval time.Duration

	now      time.Duration
	lastPoll time.Duration
	lastJ    float64
	scratch  [MaxChannels]float64 // per-poll row handed to Batch.Append
}

// NewPolled returns a polled source over cfg. It panics on a
// non-positive rate, missing Joules, or channel counts outside
// 1..MaxChannels — construction-time wiring errors.
func NewPolled(cfg PolledConfig) *Polled {
	if cfg.Meta.RateHz <= 0 {
		panic(fmt.Sprintf("source: polled %q needs a positive rate", cfg.Meta.Backend))
	}
	if cfg.Joules == nil {
		panic(fmt.Sprintf("source: polled %q needs a Joules counter", cfg.Meta.Backend))
	}
	if n := len(cfg.Meta.Channels); n < 1 || n > MaxChannels {
		panic(fmt.Sprintf("source: polled %q has %d channels", cfg.Meta.Backend, n))
	}
	p := &Polled{
		cfg:      cfg,
		interval: time.Duration(float64(time.Second) / cfg.Meta.RateHz),
	}
	if p.cfg.Tick != nil {
		p.cfg.Tick(0)
	}
	// Prime the energy counter so Joules() deltas start from adoption.
	p.lastJ = p.cfg.Joules(0)
	return p
}

// Meta implements Source.
func (p *Polled) Meta() Meta { return p.cfg.Meta }

// Now implements Source.
func (p *Polled) Now() time.Duration { return p.now }

// ReadInto implements Source: it walks every poll instant inside the
// slice, advancing the workload and sampling the meter at each. Polled
// meters report one board/package-level reading per poll, so the whole
// reading lands on channel 0 and any further configured channels stay
// zero — the batch stride always matches the declared channel count.
func (p *Polled) ReadInto(d time.Duration, b *Batch) error {
	b.Reset(len(p.cfg.Meta.Channels))
	target := p.now + d
	for next := p.lastPoll + p.interval; next <= target; next += p.interval {
		if p.cfg.Tick != nil {
			p.cfg.Tick(next)
		}
		j := p.cfg.Joules(next)
		var w float64
		if p.cfg.Watts != nil {
			w = p.cfg.Watts(next)
		} else {
			w = (j - p.lastJ) / p.interval.Seconds()
		}
		p.lastJ = j
		p.scratch[0] = w
		b.Append(next, p.scratch[:], w)
		p.lastPoll = next
	}
	p.now = target
	return nil
}

// Joules implements Source, reporting the meter's own energy counter —
// integrated at the meter's native rate, which is exactly the
// under/over-estimation artifact the paper's comparisons expose.
func (p *Polled) Joules() float64 { return p.cfg.Joules(p.now) }

// Resyncs implements Source; software meters have no wire protocol.
func (p *Polled) Resyncs() int { return 0 }

// Close implements Source.
func (p *Polled) Close() {
	if p.cfg.Close != nil {
		p.cfg.Close()
	}
}
