package source

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/protocol"
)

// Driver is the device-under-test side a PowerSensor source advances: an
// open sensor plus whatever workload keeps its trace interesting.
// simsetup's rig-backed stations satisfy it.
type Driver interface {
	// Sensor returns the open PowerSensor3 attached to the DUT.
	Sensor() *core.PowerSensor
	// Now returns the driver's virtual time.
	Now() time.Duration
	// Advance runs DUT, workload and sensor forward by (at least) d.
	Advance(d time.Duration)
	// Close releases the sensor.
	Close()
}

// Sensor adapts a PowerSensor3 rig to the Source interface: the sensor's
// per-sample-set hook dispatch becomes batch emission at the native
// 20 kHz rate.
type Sensor struct {
	drv  Driver
	meta Meta
	hook core.HookID
	buf  []Sample
}

// NewSensor wraps drv as a streaming source. channels labels the sensor
// pairs; nil derives "pair0".."pairN" from the open sensor. NewSensor
// attaches a sample hook on the sensor; other observers (trace capture,
// experiment harnesses) can coexist via their own AttachSample hooks.
func NewSensor(drv Driver, channels []string) *Sensor {
	ps := drv.Sensor()
	if channels == nil {
		for m := 0; m < ps.Pairs(); m++ {
			channels = append(channels, fmt.Sprintf("pair%d", m))
		}
	}
	if len(channels) > MaxChannels {
		channels = channels[:MaxChannels]
	}
	s := &Sensor{
		drv: drv,
		meta: Meta{
			Backend:  "powersensor3",
			RateHz:   protocol.SampleRateHz,
			Channels: channels,
		},
	}
	n := len(channels)
	s.hook = ps.AttachSample(func(cs core.Sample) {
		var smp Sample
		smp.Time = cs.DeviceTime
		for m := 0; m < n; m++ {
			smp.Chans[m] = cs.Watts[m]
			smp.Total += cs.Watts[m]
		}
		smp.Marker = cs.Marker
		s.buf = append(s.buf, smp)
	})
	return s
}

// Meta implements Source.
func (s *Sensor) Meta() Meta { return s.meta }

// Now implements Source.
func (s *Sensor) Now() time.Duration { return s.drv.Now() }

// Read implements Source: it advances the driver (which streams and
// processes the 20 kHz samples) and returns the batch the hook collected.
func (s *Sensor) Read(d time.Duration) []Sample {
	s.buf = s.buf[:0]
	s.drv.Advance(d)
	return s.buf
}

// Joules implements Source, summing the host library's per-pair energy
// accumulators.
func (s *Sensor) Joules() float64 {
	st := s.drv.Sensor().Read()
	var sum float64
	for m := 0; m < core.MaxPairs; m++ {
		sum += st.ConsumedJoules[m]
	}
	return sum
}

// Resyncs implements Source.
func (s *Sensor) Resyncs() int { return s.drv.Sensor().Resyncs() }

// Close implements Source: it detaches the batching hook and releases the
// driver.
func (s *Sensor) Close() {
	s.drv.Sensor().DetachSample(s.hook)
	s.drv.Close()
}
