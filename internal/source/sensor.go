package source

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/protocol"
)

// Driver is the device-under-test side a PowerSensor source advances: an
// open sensor plus whatever workload keeps its trace interesting.
// simsetup's rig-backed stations satisfy it.
type Driver interface {
	// Sensor returns the open PowerSensor3 attached to the DUT.
	Sensor() *core.PowerSensor
	// Now returns the driver's virtual time.
	Now() time.Duration
	// Advance runs DUT, workload and sensor forward by (at least) d.
	Advance(d time.Duration)
	// Close releases the sensor.
	Close()
}

// Sensor adapts a PowerSensor3 rig to the Source interface: the sensor's
// per-sample-set hook dispatch becomes columnar batch emission at the
// native 20 kHz rate — the hook appends each sample set straight into the
// caller's Batch columns, so no intermediate per-sample structs exist.
type Sensor struct {
	drv  Driver
	meta Meta
	hook core.HookID
	cur  *Batch // batch being filled during ReadInto, nil otherwise
}

// NewSensor wraps drv as a streaming source. channels labels the sensor
// pairs; nil derives "pair0".."pairN" from the open sensor. NewSensor
// attaches a sample hook on the sensor; other observers (trace capture,
// experiment harnesses) can coexist via their own AttachSample hooks.
func NewSensor(drv Driver, channels []string) *Sensor {
	ps := drv.Sensor()
	if channels == nil {
		for m := 0; m < ps.Pairs(); m++ {
			channels = append(channels, fmt.Sprintf("pair%d", m))
		}
	}
	if len(channels) > MaxChannels {
		channels = channels[:MaxChannels]
	}
	s := &Sensor{
		drv: drv,
		meta: Meta{
			Backend:  "powersensor3",
			RateHz:   protocol.SampleRateHz,
			Channels: channels,
		},
	}
	n := len(channels)
	s.hook = ps.AttachSample(func(cs core.Sample) {
		b := s.cur
		if b == nil {
			// The driver advanced outside ReadInto (e.g. warm-up by a
			// harness sharing the sensor); nothing to collect into.
			return
		}
		var total float64
		for m := 0; m < n; m++ {
			total += cs.Watts[m]
		}
		b.Append(cs.DeviceTime, cs.Watts[:n], total)
		if cs.Marker {
			b.Mark()
		}
	})
	return s
}

// Meta implements Source.
func (s *Sensor) Meta() Meta { return s.meta }

// Now implements Source.
func (s *Sensor) Now() time.Duration { return s.drv.Now() }

// ReadInto implements Source: it advances the driver (which streams and
// processes the 20 kHz samples) while the hook appends every sample set
// into b's columns.
func (s *Sensor) ReadInto(d time.Duration, b *Batch) error {
	b.Reset(len(s.meta.Channels))
	s.cur = b
	s.drv.Advance(d)
	s.cur = nil
	return nil
}

// Joules implements Source, summing the host library's per-pair energy
// accumulators.
func (s *Sensor) Joules() float64 {
	st := s.drv.Sensor().Read()
	var sum float64
	for m := 0; m < core.MaxPairs; m++ {
		sum += st.ConsumedJoules[m]
	}
	return sum
}

// Resyncs implements Source.
func (s *Sensor) Resyncs() int { return s.drv.Sensor().Resyncs() }

// Close implements Source: it detaches the batching hook and releases the
// driver.
func (s *Sensor) Close() {
	s.drv.Sensor().DetachSample(s.hook)
	s.drv.Close()
}
