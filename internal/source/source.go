// Package source defines the streaming measurement source every fleet
// backend implements — the layer that lets one fleet manager serve
// heterogeneous meters.
//
// The paper's case studies (Section V-A1) run PowerSensor3 side by side
// with vendor counters (NVML, AMD SMI, the Jetson INA3221, RAPL) behind
// PMT's single Meter interface. This package is the streaming counterpart
// of that idea: a Source is anything that, driven forward in virtual time,
// yields timestamped power samples at its own native rate — 20 kHz for a
// PowerSensor3, ~10 Hz for NVML, ~1 kHz for RAPL.
//
// Delivery is batch-oriented and columnar: ReadInto advances the source by
// a time slice and fills a caller-owned Batch with the block of samples
// produced in it, so a 20 kHz sensor hands the fleet hundreds of samples
// per call instead of issuing one callback per 50 µs sample — and hands
// them as flat Time/Chans/Total arrays rather than an array of structs, so
// consumers fold whole columns without copying per-sample values around.
// Because the Batch is caller-owned and reused, the steady-state sample
// path allocates nothing. Consumers derive their pacing (downsample block
// sizes, ring cadence) from Meta.RateHz rather than assuming any fixed
// rate.
//
// Two adapters cover every backend in the repository:
//
//   - Sensor wraps a core.PowerSensor and the device-under-test driving it
//     (any Driver, e.g. simsetup's rig-backed stations), re-batching the
//     sample hooks.
//   - Polled wraps a software meter — a read function polled at the
//     meter's native cadence on virtual time, with an optional workload
//     tick driving the device-under-test between polls.
package source

import "time"

// MaxChannels is the most measurement channels a source can carry — equal
// to the PowerSensor3 module count, the widest backend.
const MaxChannels = 4

// Meta describes a source: what kind of meter it is and how it samples.
type Meta struct {
	// Backend names the measurement backend: "powersensor3", "nvml",
	// "amdsmi", "ina3221", "rapl", "synthetic".
	Backend string
	// RateHz is the native sample rate — the cadence ReadInto batches
	// arrive at, and the number consumers derive block sizes from.
	RateHz float64
	// Channels labels each measurement channel (e.g. "slot12",
	// "pcie8pin" for a PowerSensor3 rig; "package" for RAPL). Its length
	// is the channel count, at most MaxChannels.
	Channels []string
}

// Batch is a columnar buffer of consecutive samples: one flat array per
// column instead of an array of per-sample structs. The layout keeps the
// ingest fold tight — consumers stream down Total and Chans without
// copying 88-byte sample values — and lets a caller own (and reuse) the
// backing arrays across reads, which is what makes the steady-state
// sample path allocation-free.
//
// Sample i occupies Time[i], Total[i] and the stride-wide row
// Chans[i*stride : (i+1)*stride], where stride is the source's channel
// count. Marks holds the indices of time-synced user markers
// (PowerSensor3 only); it stays empty in steady state.
type Batch struct {
	// Time is the source-native timestamp column.
	Time []time.Duration
	// Chans is the per-channel power column block, sample-major: row i is
	// Chans[i*Stride() : (i+1)*Stride()], in watts.
	Chans []float64
	// Total is the summed-power column, in watts.
	Total []float64
	// Marks indexes the samples flagged as time-synced user markers.
	Marks []int

	stride int
}

// Reset empties the batch and sets its channel stride, keeping the backing
// arrays for reuse. Sources call it at the top of ReadInto.
func (b *Batch) Reset(stride int) {
	b.Time = b.Time[:0]
	b.Chans = b.Chans[:0]
	b.Total = b.Total[:0]
	b.Marks = b.Marks[:0]
	b.stride = stride
}

// Len returns the number of samples held.
func (b *Batch) Len() int { return len(b.Time) }

// Stride returns the channel count of each sample row.
func (b *Batch) Stride() int { return b.stride }

// Append adds one sample. chans must hold exactly Stride() per-channel
// values; it is copied into the batch's flat channel column.
func (b *Batch) Append(t time.Duration, chans []float64, total float64) {
	b.Time = append(b.Time, t)
	b.Chans = append(b.Chans, chans[:b.stride]...)
	b.Total = append(b.Total, total)
}

// Mark flags the most recently appended sample as a time-synced marker.
func (b *Batch) Mark() {
	b.Marks = append(b.Marks, len(b.Time)-1)
}

// Extend appends n uninitialised samples and returns the index of the
// first, growing every column as needed. Sources that know their sample
// count ahead of filling (a poll loop over a fixed cadence) use it to
// write Time[i], Total[i] and Row(i) with direct indexed stores instead
// of paying three append paths per sample. The appended entries hold
// stale values until the caller fills every one of them.
func (b *Batch) Extend(n int) int {
	base := len(b.Time)
	b.Time = extend(b.Time, n)
	b.Chans = extend(b.Chans, n*b.stride)
	b.Total = extend(b.Total, n)
	return base
}

// extend grows s by n entries, reusing capacity when available.
func extend[T any](s []T, n int) []T {
	if len(s)+n <= cap(s) {
		return s[: len(s)+n : cap(s)]
	}
	return append(s, make([]T, n)...)
}

// Row returns sample i's per-channel power values, a view into the flat
// channel column.
func (b *Batch) Row(i int) []float64 {
	return b.Chans[i*b.stride : (i+1)*b.stride]
}

// Overheader is implemented by sources that account their own sampling
// overhead: the cumulative wall-clock time spent inside ReadInto —
// driving the device under test and polling the backend — which is the
// measurement's footprint on the measured system. The fleet publishes it
// per station (Status.OverheadSeconds, powersensor_source_overhead_seconds)
// so operators can see when monitoring itself starts to distort the
// measurement, the overhead concern RAPL-based tools quantify.
// Overhead is read under the same single-goroutine confinement as
// ReadInto; implementations need no internal synchronisation.
type Overheader interface {
	Overhead() time.Duration
}

// Restarter is implemented by sources that can attempt recovery after a
// fault: re-open a wedged backend, resync a corrupted link, reset an
// erroring meter. The fleet's health watchdog calls Restart on a bounded
// backoff schedule when a source's ReadInto errors or goes silent; a
// source without it is simply parked once its restart budget runs out.
// Restart is called under the same single-goroutine confinement as
// ReadInto. It returns an error when the recovery attempt itself failed;
// a nil return means "try reading again", not a guarantee of health.
type Restarter interface {
	Restart() error
}

// Source is a streaming measurement source on virtual time. Sources are
// not safe for concurrent use; the fleet manager confines each to one
// goroutine.
type Source interface {
	// Meta describes the backend. It is constant over the source's life.
	Meta() Meta
	// Now returns the source's virtual time.
	Now() time.Duration
	// ReadInto advances the source by (at least) d of virtual time and
	// fills b — caller-owned, reset to the source's channel stride — with
	// the samples produced, oldest first. The batch's contents are valid
	// until the next ReadInto on the same batch; reusing one batch across
	// calls keeps the sample path allocation-free once its arrays reach
	// steady-state capacity.
	//
	// A non-nil error means the backend failed mid-read — a wedged
	// device, a poll returning garbage, a broken link. Samples already in
	// b are valid (the read failed after them); the caller decides
	// whether to retry, restart (see Restarter) or park the source.
	// Delivering no samples is not an error: a slice shorter than the
	// sample period legitimately yields an empty batch, and silence is
	// the consumer's gap detection's job, not the source's.
	ReadInto(d time.Duration, b *Batch) error
	// Joules returns the backend's cumulative energy counter, summed
	// over channels — the PowerSensor3 host-library accumulator, or the
	// vendor API's own energy counter integrated at its native rate.
	Joules() float64
	// Resyncs reports stream bytes skipped to regain protocol alignment;
	// zero for software meters, which have no wire protocol.
	Resyncs() int
	// Close releases the backend.
	Close()
}
