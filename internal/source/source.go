// Package source defines the streaming measurement source every fleet
// backend implements — the layer that lets one fleet manager serve
// heterogeneous meters.
//
// The paper's case studies (Section V-A1) run PowerSensor3 side by side
// with vendor counters (NVML, AMD SMI, the Jetson INA3221, RAPL) behind
// PMT's single Meter interface. This package is the streaming counterpart
// of that idea: a Source is anything that, driven forward in virtual time,
// yields timestamped power samples at its own native rate — 20 kHz for a
// PowerSensor3, ~10 Hz for NVML, ~1 kHz for RAPL.
//
// Delivery is batch-oriented: Read advances the source by a time slice and
// returns the block of samples produced in it, so a 20 kHz sensor hands
// the fleet hundreds of samples per call instead of issuing one callback
// per 50 µs sample. Consumers derive their pacing (downsample block sizes,
// ring cadence) from Meta.RateHz rather than assuming any fixed rate.
//
// Two adapters cover every backend in the repository:
//
//   - Sensor wraps a core.PowerSensor and the device-under-test driving it
//     (any Driver, e.g. simsetup's rig-backed stations), re-batching the
//     sample hooks.
//   - Polled wraps a software meter — a read function polled at the
//     meter's native cadence on virtual time, with an optional workload
//     tick driving the device-under-test between polls.
package source

import "time"

// MaxChannels is the most measurement channels a source can carry — equal
// to the PowerSensor3 module count, the widest backend.
const MaxChannels = 4

// Sample is one measurement instant from any backend. It is a plain value
// (fixed-size channel array) so batches move without per-sample
// allocation.
type Sample struct {
	// Time is the source's native timestamp of the sample.
	Time time.Duration
	// Chans holds per-channel power in watts; only the first
	// len(Meta.Channels) entries are meaningful.
	Chans [MaxChannels]float64
	// Total is the summed power over all channels.
	Total float64
	// Marker flags a time-synced user marker (PowerSensor3 only).
	Marker bool
}

// Meta describes a source: what kind of meter it is and how it samples.
type Meta struct {
	// Backend names the measurement backend: "powersensor3", "nvml",
	// "amdsmi", "ina3221", "rapl".
	Backend string
	// RateHz is the native sample rate — the cadence Read batches arrive
	// at, and the number consumers derive block sizes from.
	RateHz float64
	// Channels labels each measurement channel (e.g. "slot12",
	// "pcie8pin" for a PowerSensor3 rig; "package" for RAPL). Its length
	// is the channel count, at most MaxChannels.
	Channels []string
}

// Source is a streaming measurement source on virtual time. Sources are
// not safe for concurrent use; the fleet manager confines each to one
// goroutine.
type Source interface {
	// Meta describes the backend. It is constant over the source's life.
	Meta() Meta
	// Now returns the source's virtual time.
	Now() time.Duration
	// Read advances the source by (at least) d of virtual time and
	// returns the samples produced, oldest first. The returned slice is
	// reused by the next Read; callers must consume it before calling
	// again.
	Read(d time.Duration) []Sample
	// Joules returns the backend's cumulative energy counter, summed
	// over channels — the PowerSensor3 host-library accumulator, or the
	// vendor API's own energy counter integrated at its native rate.
	Joules() float64
	// Resyncs reports stream bytes skipped to regain protocol alignment;
	// zero for software meters, which have no wire protocol.
	Resyncs() int
	// Close releases the backend.
	Close()
}
