// Package calib implements the one-time calibration procedure of
// Section III-D: with the sensor modules unloaded (no current flowing), take
// 128 k samples, determine the Hall sensor's offset error from the average
// current reading and the voltage sensor's gain error against the known
// supply voltage, and store the corrections in the device's EEPROM.
//
// The paper's long-term stability measurement shows the corrections hold, so
// calibration is needed only once at production; the tests in this package
// verify both halves: accuracy improves after calibration, and the
// corrections survive a power cycle.
package calib

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/stats"
)

// DefaultSamples is the sample count the paper's procedure collects.
const DefaultSamples = 128 * 1024

// Result records the corrections determined for one sensor pair.
type Result struct {
	Pair           int
	CurrentOffsetA float64 // mean unloaded current reading (Hall offset)
	VoltageGain    float64 // measured/true voltage ratio
	NoiseARMS      float64 // residual current noise, for the report
}

// Reference is the known calibration condition per pair: the true rail
// voltage as read from the bench reference meter, with the load removed.
type Reference struct {
	TrueVolts float64
}

// Calibrate measures corrections for every active pair of an open sensor and
// writes them back to the device. refs must supply one Reference per pair.
// The device must be unloaded (zero current) for the duration.
func Calibrate(ps *core.PowerSensor, tr core.Transport, refs []Reference, samples int) ([]Result, error) {
	if samples <= 0 {
		samples = DefaultSamples
	}
	if len(refs) < ps.Pairs() {
		return nil, fmt.Errorf("calib: %d references for %d pairs", len(refs), ps.Pairs())
	}

	// Collect per-sample current and voltage readings for every pair.
	amps := make([][]float64, ps.Pairs())
	volts := make([][]float64, ps.Pairs())
	collected := 0
	hook := ps.AttachSample(func(s core.Sample) {
		if collected >= samples {
			return
		}
		for m := 0; m < ps.Pairs(); m++ {
			amps[m] = append(amps[m], s.Amps[m])
			volts[m] = append(volts[m], s.Volts[m])
		}
		collected++
	})
	defer ps.DetachSample(hook)

	span := time.Duration(samples+16) * protocol.SampleIntervalMicros * time.Microsecond
	ps.Advance(span)
	if collected < samples {
		return nil, fmt.Errorf("calib: collected %d of %d samples", collected, samples)
	}

	var results []Result
	for m := 0; m < ps.Pairs(); m++ {
		ai := stats.Summarize(amps[m])
		vi := stats.Summarize(volts[m])
		res := Result{
			Pair:           m,
			CurrentOffsetA: ai.Mean,
			VoltageGain:    vi.Mean / refs[m].TrueVolts,
			NoiseARMS:      ai.Std,
		}
		results = append(results, res)

		// Fold the corrections into the device configuration: the offset
		// adds to the current sensor's stored offset; the gain multiplies
		// the voltage sensor's stored sensitivity.
		ccfg := ps.SensorConfig(2 * m)
		ccfg.Offset += res.CurrentOffsetA
		vcfg := ps.SensorConfig(2*m + 1)
		vcfg.Sensitivity *= res.VoltageGain

		if err := writeConfig(tr, 2*m, ccfg); err != nil {
			return nil, err
		}
		if err := writeConfig(tr, 2*m+1, vcfg); err != nil {
			return nil, err
		}
	}
	// Let the device process the writes.
	tr.Run(10 * time.Millisecond)
	return results, nil
}

// writeConfig sends a CmdWriteConfig for one sensor.
func writeConfig(tr core.Transport, sensor int, cfg protocol.SensorConfig) error {
	if sensor < 0 || sensor >= protocol.MaxSensors {
		return fmt.Errorf("calib: sensor index %d out of range", sensor)
	}
	cmd := append([]byte{protocol.CmdWriteConfig, byte(sensor)}, protocol.MarshalConfig(cfg)...)
	tr.Write(cmd)
	return nil
}
