package calib

import (
	"math"
	"testing"
	"time"

	"repro/internal/analog"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/device"
)

// uncalibratedDevice builds a device whose module carries factory errors:
// a Hall offset and a voltage-divider gain error.
func uncalibratedDevice(seed uint64, offsetA, gainErr float64, load bench.Load) *device.Device {
	m := analog.NewModule(analog.Slot10A, 12)
	m.Current.OffsetA = offsetA
	m.Voltage.GainErr = gainErr
	return device.New(seed, device.Slot{
		Module: m,
		Source: device.BenchSource{Supply: &bench.Supply{Nominal: 12}, Load: load},
	})
}

func TestCalibrationFindsOffsetAndGain(t *testing.T) {
	dev := uncalibratedDevice(1, 0.30, 0.02, bench.ConstantLoad(0))
	ps, err := core.Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()

	res, err := Calibrate(ps, dev, []Reference{{TrueVolts: 12}}, 16*1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("%d results", len(res))
	}
	if math.Abs(res[0].CurrentOffsetA-0.30) > 0.02 {
		t.Errorf("offset = %v, want ~0.30", res[0].CurrentOffsetA)
	}
	if math.Abs(res[0].VoltageGain-1.02) > 0.005 {
		t.Errorf("gain = %v, want ~1.02", res[0].VoltageGain)
	}
}

func TestCalibrationImprovesAccuracy(t *testing.T) {
	dev := uncalibratedDevice(2, 0.25, 0.015, bench.ConstantLoad(0))
	ps, err := core.Open(dev)
	if err != nil {
		t.Fatal(err)
	}

	// Measure error before calibration at 8 A.
	measure := func() (ampErr, voltErr float64) {
		dev.SetSource(0, device.BenchSource{Supply: &bench.Supply{Nominal: 12}, Load: bench.ConstantLoad(8)})
		var sumA, sumV float64
		n := 0
		hook := ps.AttachSample(func(s core.Sample) {
			sumA += s.Amps[0]
			sumV += s.Volts[0]
			n++
		})
		ps.Advance(200 * time.Millisecond)
		ps.DetachSample(hook)
		dev.SetSource(0, device.BenchSource{Supply: &bench.Supply{Nominal: 12}, Load: bench.ConstantLoad(0)})
		ps.Advance(10 * time.Millisecond) // settle back to unloaded
		return sumA/float64(n) - 8, sumV/float64(n) - 12
	}

	ampBefore, voltBefore := measure()
	if _, err := Calibrate(ps, dev, []Reference{{TrueVolts: 12}}, 16*1024); err != nil {
		t.Fatal(err)
	}

	// The calibration wrote new configs to the device; reopen so the host
	// picks them up (the real psconfig flow reboots the device too).
	ps.Close()
	ps, err = core.Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	ampAfter, voltAfter := measure()

	if math.Abs(ampAfter) > math.Abs(ampBefore)/5 {
		t.Errorf("current error barely improved: %v → %v", ampBefore, ampAfter)
	}
	if math.Abs(voltAfter) > math.Abs(voltBefore)/5 {
		t.Errorf("voltage error barely improved: %v → %v", voltBefore, voltAfter)
	}
	if math.Abs(ampAfter) > 0.05 {
		t.Errorf("residual current error %v A too large", ampAfter)
	}
	if math.Abs(voltAfter) > 0.05 {
		t.Errorf("residual voltage error %v V too large", voltAfter)
	}
}

func TestCalibrationSurvivesPowerCycle(t *testing.T) {
	dev := uncalibratedDevice(3, 0.2, 0.01, bench.ConstantLoad(0))
	ps, err := core.Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Calibrate(ps, dev, []Reference{{TrueVolts: 12}}, 8*1024); err != nil {
		t.Fatal(err)
	}
	calibrated := dev.Firmware().SensorConfig(0)
	ps.Close()

	dev.PowerCycle()
	if got := dev.Firmware().SensorConfig(0); got != calibrated {
		t.Fatalf("config after power cycle = %+v, want %+v", got, calibrated)
	}
}

func TestCalibrateRequiresReferences(t *testing.T) {
	dev := uncalibratedDevice(4, 0, 0, bench.ConstantLoad(0))
	ps, err := core.Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	if _, err := Calibrate(ps, dev, nil, 1024); err == nil {
		t.Fatal("expected error with no references")
	}
}
