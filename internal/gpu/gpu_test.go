package gpu

import (
	"math"
	"testing"
	"time"
)

func TestIdlePower(t *testing.T) {
	g := New(RTX4000Ada(), 1)
	p := g.PowerAt(100 * time.Millisecond)
	if math.Abs(p-g.Spec().IdleW) > 3 {
		t.Fatalf("idle power = %v, want ~%v", p, g.Spec().IdleW)
	}
}

func TestKernelRaisesPower(t *testing.T) {
	g := New(RTX4000Ada(), 2)
	k := Kernel{Name: "fma", FLOPs: 100e12, Waves: 1, Intensity: 1, Efficiency: 0.9}
	run := g.LaunchKernel(k, 50*time.Millisecond)
	mid := run.Start + run.Duration()/2
	p := g.PowerAt(mid)
	if p < 2*g.Spec().IdleW {
		t.Fatalf("power under load = %v, idle = %v", p, g.Spec().IdleW)
	}
}

func TestPowerNeverExceedsLimitMuch(t *testing.T) {
	for _, spec := range []Spec{RTX4000Ada(), W7700(), JetsonAGXOrin()} {
		g := New(spec, 3)
		k := Kernel{FLOPs: 200e12, Waves: 8, Intensity: 1, Efficiency: 1}
		run := g.LaunchKernel(k, 10*time.Millisecond)
		for ts := run.Start; ts < run.End; ts += 500 * time.Microsecond {
			if p := g.PowerAt(ts); p > spec.LimitW*1.12+spec.CarrierBoardW {
				t.Fatalf("%s: power %v far above limit %v", spec.Name, p, spec.LimitW)
			}
		}
	}
}

func TestNvidiaClockRampsGradually(t *testing.T) {
	g := New(RTX4000Ada(), 4)
	k := Kernel{FLOPs: 400e12, Waves: 1, Intensity: 1, Efficiency: 1}
	run := g.LaunchKernel(k, 10*time.Millisecond)
	early := g.PowerAt(run.Start + 100*time.Millisecond)
	late := g.PowerAt(run.Start + 2*time.Second)
	if late <= early+10 {
		t.Fatalf("no ramp: early %v W, late %v W", early, late)
	}
}

func TestAmdSpikesEarly(t *testing.T) {
	g := New(W7700(), 5)
	k := Kernel{FLOPs: 300e12, Waves: 1, Intensity: 1, Efficiency: 1}
	run := g.LaunchKernel(k, 10*time.Millisecond)
	spike := g.PowerAt(run.Start + 15*time.Millisecond)
	dip := g.PowerAt(run.Start + 45*time.Millisecond)
	if spike < g.Spec().LimitW*0.85 {
		t.Fatalf("initial spike only %v W, limit %v", spike, g.Spec().LimitW)
	}
	if dip > spike*0.85 {
		t.Fatalf("no post-spike drop: spike %v, dip %v", spike, dip)
	}
	// Stabilises at the limit later on.
	late := g.PowerAt(run.Start + 1500*time.Millisecond)
	if math.Abs(late-g.Spec().LimitW) > 0.15*g.Spec().LimitW {
		t.Fatalf("late power %v not near the %v W limit", late, g.Spec().LimitW)
	}
}

func TestNvidiaSlowIdleReturn(t *testing.T) {
	nv := New(RTX4000Ada(), 6)
	amd := New(W7700(), 6)
	k := Kernel{FLOPs: 150e12, Waves: 1, Intensity: 1, Efficiency: 1}
	nvRun := nv.LaunchKernel(k, 10*time.Millisecond)
	amdRun := amd.LaunchKernel(k, 10*time.Millisecond)
	// 300 ms after the kernel, NVIDIA should still be well above idle,
	// AMD should be much closer to idle (Fig. 7 insets).
	nvAfter := nv.PowerAt(nvRun.End + 400*time.Millisecond)
	amdAfter := amd.PowerAt(amdRun.End + 400*time.Millisecond)
	nvExcess := (nvAfter - nv.Spec().IdleW) / nv.Spec().IdleW
	amdExcess := (amdAfter - amd.Spec().IdleW) / amd.Spec().IdleW
	if nvExcess < 0.3 {
		t.Fatalf("NVIDIA already at idle %v W after 400 ms", nvAfter)
	}
	if amdExcess > nvExcess {
		t.Fatalf("AMD (%.2f) decays slower than NVIDIA (%.2f)", amdExcess, nvExcess)
	}
}

func TestWaveDipsVisible(t *testing.T) {
	g := New(RTX4000Ada(), 7)
	g.SetAppClock(1800) // lock clocks so dips are not masked by the ramp
	k := Kernel{FLOPs: 500e12, Waves: 5, Intensity: 1, Efficiency: 1}
	run := g.LaunchKernel(k, 10*time.Millisecond)
	if len(run.WaveSpans) != 5 {
		t.Fatalf("%d wave spans", len(run.WaveSpans))
	}
	// Sample power right inside a wave and inside the following gap.
	inWave := g.PowerAt(run.WaveSpans[1] - 5*time.Millisecond)
	inGap := g.PowerAt(run.WaveSpans[1] + g.Spec().InterWaveGap - 200*time.Microsecond)
	if inGap > inWave-8 {
		t.Fatalf("no inter-wave dip: wave %v W, gap %v W", inWave, inGap)
	}
}

func TestAppClockControlsPower(t *testing.T) {
	duration := func(clock float64) (time.Duration, float64) {
		g := New(RTX4000Ada(), 8)
		g.SetAppClock(clock)
		k := Kernel{FLOPs: 100e12, Waves: 1, Intensity: 1, Efficiency: 1}
		run := g.LaunchKernel(k, 10*time.Millisecond)
		p := g.PowerAt(run.Start + run.Duration()/2)
		return run.Duration(), p
	}
	dLow, pLow := duration(1485)
	dHigh, pHigh := duration(1815)
	if dLow <= dHigh {
		t.Fatalf("lower clock not slower: %v vs %v", dLow, dHigh)
	}
	if pLow >= pHigh {
		t.Fatalf("lower clock not lower power: %v vs %v", pLow, pHigh)
	}
}

func TestEnergyEfficiencyPeaksBelowMaxClock(t *testing.T) {
	// The premise of the Fig. 8 experiment: TFLOP/J improves at reduced
	// clocks even though TFLOP/s drops.
	eff := func(clock float64) float64 {
		g := New(RTX4000Ada(), 9)
		g.SetAppClock(clock)
		k := Kernel{FLOPs: 100e12, Waves: 1, Intensity: 1, Efficiency: 1}
		run := g.LaunchKernel(k, 10*time.Millisecond)
		e0 := g.TrueEnergy()
		g.PowerAt(run.End)
		joules := g.TrueEnergy() - e0
		return 100.0 / joules // TFLOP of work / J
	}
	if eff(1485) <= eff(1815) {
		t.Fatal("efficiency at 1485 MHz should exceed 1815 MHz")
	}
}

func TestTrueEnergyMatchesPowerIntegral(t *testing.T) {
	g := New(W7700(), 10)
	k := Kernel{FLOPs: 50e12, Waves: 2, Intensity: 1, Efficiency: 1}
	run := g.LaunchKernel(k, 5*time.Millisecond)
	var sum float64
	const dt = 100 * time.Microsecond
	e0 := g.TrueEnergy()
	for ts := time.Duration(0); ts < run.End+100*time.Millisecond; ts += dt {
		sum += g.PowerAt(ts) * dt.Seconds()
	}
	got := g.TrueEnergy() - e0
	if math.Abs(sum-got)/got > 0.02 {
		t.Fatalf("power integral %v J vs TrueEnergy %v J", sum, got)
	}
}

func TestRailSplitConservesPower(t *testing.T) {
	g := New(RTX4000Ada(), 11)
	s3, s12, e12 := g.PCIeRails()
	k := Kernel{FLOPs: 100e12, Waves: 1, Intensity: 1, Efficiency: 1}
	run := g.LaunchKernel(k, 10*time.Millisecond)
	ts := run.Start + run.Duration()/2
	total := g.PowerAt(ts)
	v1, i1 := s3.VI(ts)
	v2, i2 := s12.VI(ts)
	v3, i3 := e12.VI(ts)
	sum := v1*i1 + v2*i2 + v3*i3
	if math.Abs(sum-total)/total > 0.02 {
		t.Fatalf("rails sum to %v, total %v", sum, total)
	}
	if v1 > 3.3 || v2 > 12 || v3 > 12 {
		t.Fatal("rail voltage above nominal")
	}
	// The slot limits must be respected.
	if v1*i1 > 10 {
		t.Fatalf("3.3 V slot rail carries %v W (>10 W)", v1*i1)
	}
	if v2*i2 > 66 {
		t.Fatalf("12 V slot rail carries %v W (>66 W)", v2*i2)
	}
}

func TestJetsonCarrierBoardVisibleOnlyOnUSBC(t *testing.T) {
	g := New(JetsonAGXOrin(), 12)
	rail := g.USBCRail()
	ts := 100 * time.Millisecond
	v, i := rail.VI(ts)
	usbPower := v * i
	module := g.ModulePower(ts)
	if usbPower <= module {
		t.Fatalf("USB-C power %v must exceed module power %v by the carrier share", usbPower, module)
	}
	if diff := usbPower - module; math.Abs(diff-g.Spec().CarrierBoardW) > 1.5 {
		t.Fatalf("carrier share = %v, want ~%v", diff, g.Spec().CarrierBoardW)
	}
}

func TestTFLOPSScalesWithClock(t *testing.T) {
	g := New(RTX4000Ada(), 13)
	if g.TFLOPS(g.Spec().BoostClockMHz) != g.Spec().PeakTensorTFLOPS {
		t.Fatal("peak at boost clock")
	}
	if g.TFLOPS(g.Spec().BoostClockMHz/2) != g.Spec().PeakTensorTFLOPS/2 {
		t.Fatal("linear clock scaling")
	}
}

func TestVendorString(t *testing.T) {
	if NVIDIA.String() != "NVIDIA" || AMD.String() != "AMD" || JetsonSoC.String() != "Jetson" {
		t.Fatal("vendor names")
	}
}

func BenchmarkPowerAt(b *testing.B) {
	g := New(RTX4000Ada(), 1)
	k := Kernel{FLOPs: 1e15, Waves: 4, Intensity: 1, Efficiency: 1}
	g.LaunchKernel(k, 0)
	ts := time.Duration(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts += 50 * time.Microsecond
		_ = g.PowerAt(ts)
	}
}
