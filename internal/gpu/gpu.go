// Package gpu provides behavioural power models of the accelerators the
// paper evaluates: the NVIDIA RTX 4000 Ada, the AMD Radeon Pro W7700, and
// the NVIDIA Jetson AGX Orin SoC.
//
// The paper's Fig. 7 depends on the *shape* of each device's power trace —
// clock ramp-up, per-wave execution phases with dips in between, power-limit
// governor transients, and slow idle decay — rather than on absolute
// silicon-accurate numbers. The model reproduces those shapes:
//
//   - NVIDIA: on kernel start the clock steps up quickly, then ramps
//     gradually to boost (the 95 W → 120 W climb); distinct waves of thread
//     blocks separated by short dips; after the kernel, over a second of
//     elevated power while clocks decay (Section V-A1).
//   - AMD: an initial spike to the power limit, a sharp drop, a ramp with a
//     brief overshoot, and stabilisation at the limit; fast return to idle.
//   - Jetson: NVIDIA-like but milder, plus a carrier board that draws power
//     the on-module sensor cannot see (Section V-B).
//
// The model runs in virtual time. Power queries must be (weakly) monotonic
// in t; the PowerSensor3 device and the vendor-API emulations share one GPU
// instance and sample it as they please.
package gpu

import (
	"fmt"
	"math"
	"time"

	"repro/internal/rng"
)

// Vendor distinguishes governor behaviours.
type Vendor int

// Vendors of the modelled devices.
const (
	NVIDIA Vendor = iota
	AMD
	JetsonSoC
)

// String returns the vendor name.
func (v Vendor) String() string {
	switch v {
	case NVIDIA:
		return "NVIDIA"
	case AMD:
		return "AMD"
	case JetsonSoC:
		return "Jetson"
	default:
		return fmt.Sprintf("Vendor(%d)", int(v))
	}
}

// Spec is the datasheet-level description of a device.
type Spec struct {
	Name   string
	Vendor Vendor

	// SMs is the number of streaming multiprocessors / compute units.
	SMs int

	// IdleW is the board idle power; LimitW the board power limit.
	IdleW  float64
	LimitW float64

	// Clock domain in MHz.
	IdleClockMHz  float64
	BaseClockMHz  float64
	BoostClockMHz float64

	// PeakTensorTFLOPS is the 16-bit tensor/matrix-core throughput at boost.
	PeakTensorTFLOPS float64

	// ClockRampMHzPerSec is the governor's upward clock slew when busy.
	ClockRampMHzPerSec float64

	// BoostHold is how long clocks stay up after work ends; IdleTau the
	// exponential decay constant afterwards.
	BoostHold time.Duration
	IdleTau   time.Duration

	// DynAlpha is the exponent of dynamic power versus clock.
	DynAlpha float64

	// CarrierBoardW is power drawn by parts the on-module sensor cannot
	// see (Jetson carrier board); zero for discrete cards.
	CarrierBoardW float64

	// InterWaveGap is the pause between thread-block waves, visible as a
	// power dip at high-resolution sampling.
	InterWaveGap time.Duration
}

// RTX4000Ada returns the NVIDIA RTX 4000 Ada Generation spec used in
// Section V-A (130 W board limit, 48 SMs).
func RTX4000Ada() Spec {
	return Spec{
		Name: "NVIDIA RTX 4000 Ada", Vendor: NVIDIA, SMs: 48,
		IdleW: 16, LimitW: 130,
		IdleClockMHz: 210, BaseClockMHz: 1500, BoostClockMHz: 1815,
		PeakTensorTFLOPS:   96,
		ClockRampMHzPerSec: 260, BoostHold: 300 * time.Millisecond,
		IdleTau: 450 * time.Millisecond, DynAlpha: 2.2,
		InterWaveGap: 3 * time.Millisecond,
	}
}

// W7700 returns the AMD Radeon Pro W7700 spec (150 W limit, 48 CUs).
func W7700() Spec {
	return Spec{
		Name: "AMD Radeon Pro W7700", Vendor: AMD, SMs: 48,
		IdleW: 15, LimitW: 150,
		IdleClockMHz: 300, BaseClockMHz: 1900, BoostClockMHz: 2226,
		PeakTensorTFLOPS:   76,
		ClockRampMHzPerSec: 2500, BoostHold: 40 * time.Millisecond,
		IdleTau: 90 * time.Millisecond, DynAlpha: 2.2,
		InterWaveGap: time.Millisecond,
	}
}

// JetsonAGXOrin returns the Jetson AGX Orin spec: a 60 W SoC module plus a
// carrier board the module's own sensor does not measure.
func JetsonAGXOrin() Spec {
	return Spec{
		Name: "NVIDIA Jetson AGX Orin", Vendor: JetsonSoC, SMs: 16,
		IdleW: 7, LimitW: 50,
		IdleClockMHz: 115, BaseClockMHz: 930, BoostClockMHz: 1300,
		// Dense FP16 tensor throughput at the 1.3 GHz GPU clock; the
		// beamformer's achieved ~25 TFLOP/s in Fig. 10 then follows from
		// the ~0.84 best variant efficiency.
		PeakTensorTFLOPS:   30,
		ClockRampMHzPerSec: 900, BoostHold: 150 * time.Millisecond,
		IdleTau: 250 * time.Millisecond, DynAlpha: 2.1,
		CarrierBoardW: 6,
		InterWaveGap:  2 * time.Millisecond,
	}
}

// Kernel describes a workload to launch.
type Kernel struct {
	Name string
	// FLOPs is the total floating-point work.
	FLOPs float64
	// Waves is how many sequential thread-block waves execute (the grid's
	// y-dimension in the paper's synthetic workload).
	Waves int
	// Intensity in (0, 1] scales dynamic power: compute-dense kernels pull
	// more power at a given clock than memory-bound ones.
	Intensity float64
	// Efficiency in (0, 1] scales achieved throughput versus peak.
	Efficiency float64
}

// wave is one scheduled execution span.
type wave struct {
	start, end time.Duration
	intensity  float64
}

// GPU is a stateful device instance.
type GPU struct {
	spec Spec

	appClockMHz float64 // locked application clock; 0 = governor default

	waves    []wave
	lastBusy time.Duration // end of the most recent completed work
	runStart time.Duration // start of the current/most recent kernel

	t     time.Duration // time of the last power query
	clock float64       // current clock, MHz
	power float64       // current board power (filtered), W

	noise  *rng.Source
	energy float64 // true consumed energy since creation, J
}

// New returns an idle GPU.
func New(spec Spec, seed uint64) *GPU {
	return &GPU{
		spec:  spec,
		clock: spec.IdleClockMHz,
		power: spec.IdleW,
		noise: rng.New(seed),
	}
}

// Spec returns the device description.
func (g *GPU) Spec() Spec { return g.spec }

// SetAppClock locks the application clock in MHz (0 restores the governor).
// Locked clocks are how the auto-tuning experiments sweep DVFS states.
func (g *GPU) SetAppClock(mhz float64) { g.appClockMHz = mhz }

// AppClock returns the locked application clock (0 if unlocked).
func (g *GPU) AppClock() float64 { return g.appClockMHz }

// EffectiveClock returns the clock the kernel would execute at in steady
// state: the locked app clock, or boost.
func (g *GPU) EffectiveClock() float64 {
	if g.appClockMHz > 0 {
		return g.appClockMHz
	}
	return g.spec.BoostClockMHz
}

// TFLOPS returns the achievable 16-bit throughput at the given clock.
func (g *GPU) TFLOPS(clockMHz float64) float64 {
	return g.spec.PeakTensorTFLOPS * clockMHz / g.spec.BoostClockMHz
}

// KernelRun reports the scheduled execution of a launched kernel.
type KernelRun struct {
	Start, End time.Duration
	WaveSpans  []time.Duration // end time of each wave
}

// Duration returns the wall-clock execution time.
func (r KernelRun) Duration() time.Duration { return r.End - r.Start }

// LaunchKernel schedules k starting at time at (which must not precede the
// last power query) and returns its timing. Execution time is derived from
// the kernel's FLOPs, its efficiency, and the steady-state clock.
func (g *GPU) LaunchKernel(k Kernel, at time.Duration) KernelRun {
	if at < g.t {
		at = g.t
	}
	if k.Waves < 1 {
		k.Waves = 1
	}
	if k.Intensity <= 0 {
		k.Intensity = 1
	}
	if k.Efficiency <= 0 {
		k.Efficiency = 1
	}
	clock := g.EffectiveClock()
	total := time.Duration(k.FLOPs / (g.TFLOPS(clock) * 1e12 * k.Efficiency) * float64(time.Second))
	perWave := total / time.Duration(k.Waves)
	if perWave <= 0 {
		perWave = time.Microsecond
	}

	run := KernelRun{Start: at}
	cursor := at
	for w := 0; w < k.Waves; w++ {
		g.waves = append(g.waves, wave{start: cursor, end: cursor + perWave, intensity: k.Intensity})
		cursor += perWave
		run.WaveSpans = append(run.WaveSpans, cursor)
		if w != k.Waves-1 {
			cursor += g.spec.InterWaveGap
		}
	}
	run.End = cursor
	if len(g.waves) > 0 && g.runStart < g.t {
		g.runStart = at
	}
	return run
}

// Busy reports whether work is scheduled at or after t.
func (g *GPU) Busy(t time.Duration) bool {
	for _, w := range g.waves {
		if w.end > t {
			return true
		}
	}
	return false
}

// utilization returns the intensity of the wave executing at t, or 0.
func (g *GPU) utilization(t time.Duration) float64 {
	for _, w := range g.waves {
		if t >= w.start && t < w.end {
			return w.intensity
		}
	}
	return 0
}

// PowerAt advances the device to time t and returns total power in watts,
// including any carrier board. Queries at or before the current time return
// the cached value.
func (g *GPU) PowerAt(t time.Duration) float64 {
	if t <= g.t {
		return g.power + g.spec.CarrierBoardW
	}
	// Step in bounded increments so the dynamics are step-size robust.
	const maxStep = 500 * time.Microsecond
	for g.t < t {
		step := t - g.t
		if step > maxStep {
			step = maxStep
		}
		g.advance(step)
	}
	g.pruneWaves()
	return g.power + g.spec.CarrierBoardW
}

// advance integrates the clock/power dynamics over dt.
func (g *GPU) advance(dt time.Duration) {
	now := g.t + dt
	u := g.utilization(now)
	if u > 0 {
		g.lastBusy = now
		if g.runStart == 0 || g.runStart < now-10*time.Minute {
			g.runStart = now
		}
	}

	// Clock dynamics.
	target := g.targetClock(now, u)
	switch {
	case g.appClockMHz > 0 && u > 0:
		g.clock = g.appClockMHz
	case u > 0 && g.clock < g.spec.BaseClockMHz-1:
		// PLL relock: the governor steps to base clock within milliseconds
		// of work arriving, then ramps boost bins slowly (below).
		a := 1 - math.Exp(-dt.Seconds()/0.008)
		g.clock += a * (g.spec.BaseClockMHz - g.clock)
		if g.clock >= g.spec.BaseClockMHz-1 {
			g.clock = g.spec.BaseClockMHz
		}
	case u > 0 && target > g.clock:
		g.clock += g.spec.ClockRampMHzPerSec * dt.Seconds() * rampScale(g.spec.Vendor)
		if g.clock > target {
			g.clock = target
		}
	case u > 0:
		g.clock = target
	default:
		// Idle: hold boost briefly, then decay exponentially.
		if now-g.lastBusy > g.spec.BoostHold {
			a := 1 - math.Exp(-dt.Seconds()/g.spec.IdleTau.Seconds())
			g.clock += a * (g.spec.IdleClockMHz - g.clock)
		}
	}

	// Instantaneous power target from clock, utilisation and governor.
	pt := g.targetPower(now, u)

	// Board VRM + capacitance smooth the power with a ~1.5 ms time constant.
	const vrmTau = 1.5e-3
	a := 1 - math.Exp(-dt.Seconds()/vrmTau)
	g.power += a * (pt - g.power)

	// Small supply ripple, ~0.5% RMS.
	g.power += g.noise.NormSigma(0.005 * g.power * math.Sqrt(dt.Seconds()/50e-6))
	if g.power < 0.5*g.spec.IdleW {
		g.power = 0.5 * g.spec.IdleW
	}

	g.energy += (g.power + g.spec.CarrierBoardW) * dt.Seconds()
	g.t = now
}

// rampScale differentiates how aggressively vendors raise clocks.
func rampScale(v Vendor) float64 {
	if v == AMD {
		return 4
	}
	return 1
}

// targetClock is the governor's desired clock under utilisation u.
func (g *GPU) targetClock(now time.Duration, u float64) float64 {
	if u <= 0 {
		return g.clock
	}
	if g.appClockMHz > 0 {
		return g.appClockMHz
	}
	return g.spec.BoostClockMHz
}

// targetPower computes the pre-filter power level.
func (g *GPU) targetPower(now time.Duration, u float64) float64 {
	s := g.spec
	if u <= 0 {
		// Idle, possibly still with boosted clocks: leakage and fabric
		// power scale weakly with the residual clock.
		frac := (g.clock - s.IdleClockMHz) / (s.BoostClockMHz - s.IdleClockMHz)
		if frac < 0 {
			frac = 0
		}
		return s.IdleW + 0.28*(s.LimitW-s.IdleW)*frac*0.5
	}

	dyn := (s.LimitW - s.IdleW) * u * math.Pow(g.clock/s.BoostClockMHz, s.DynAlpha)
	p := s.IdleW + dyn

	if s.Vendor == AMD && g.appClockMHz == 0 {
		p = g.amdGovernor(now, p)
	}
	if p > s.LimitW*1.06 {
		p = s.LimitW * 1.06 // brief overshoot headroom before the cap bites
	}
	return p
}

// amdGovernor shapes the W7700's characteristic transient: spike to the
// limit, sharp drop, ramp with brief overshoot, stabilisation at the limit
// (Fig. 7b).
func (g *GPU) amdGovernor(now time.Duration, raw float64) float64 {
	dt := (now - g.runStart).Seconds()
	limit := g.spec.LimitW
	switch {
	case dt < 0.02:
		return limit // initial spike to the power limit
	case dt < 0.06:
		return limit * 0.62 // sharp drop while the governor re-plans
	default:
		// Ramp back toward the limit with a small overshoot bump.
		p := limit * (1 - 0.38*math.Exp(-(dt-0.06)/0.12))
		p += 0.05 * limit * math.Exp(-sq((dt-0.45)/0.08))
		if raw < p {
			return raw
		}
		return p
	}
}

func sq(x float64) float64 { return x * x }

// pruneWaves drops waves that ended long before the current time.
func (g *GPU) pruneWaves() {
	cut := 0
	for cut < len(g.waves) && g.waves[cut].end < g.t-time.Second {
		cut++
	}
	if cut > 0 {
		g.waves = g.waves[cut:]
	}
}

// TrueEnergy returns the exact energy consumed since creation — the ground
// truth the measurement chain is judged against.
func (g *GPU) TrueEnergy() float64 { return g.energy }

// ClockMHz returns the current clock.
func (g *GPU) ClockMHz() float64 { return g.clock }

// ModulePower returns the power the on-module sensor sees: total power
// minus the carrier board share (Jetson); identical to total elsewhere.
func (g *GPU) ModulePower(t time.Duration) float64 {
	return g.PowerAt(t) - g.spec.CarrierBoardW
}
