package gpu

import (
	"time"

	"repro/internal/device"
)

// Rail split of a discrete PCIe card, as in Fig. 1 of the paper: the card
// draws from the PCIe slot's 3.3 V and 12 V rails (at most 75 W combined,
// 10 W of which on 3.3 V) and from the external 8-pin connector for the
// rest. The measurement setup intercepts all three with separate sensor
// modules on a modified riser card.
const (
	slot3v3W     = 2.8  // logic/aux draw on the 3.3 V slot rail
	slot12MaxW   = 55.0 // what this card takes from the 12 V slot rail
	slot12Frac   = 0.45 // share of 12 V power drawn via the slot below the cap
	railSagOhms  = 0.008
	usbCSagOhms  = 0.02
	nominal12V   = 12.0
	nominal3V3   = 3.3
	nominalUSBCV = 20.0 // USB-PD contract of the Jetson development kit
)

// split divides total board power across the three PCIe sources.
func split(total float64) (p3v3, pSlot12, pExt12 float64) {
	p3v3 = slot3v3W
	if p3v3 > total {
		p3v3 = total
		return p3v3, 0, 0
	}
	rest := total - p3v3
	pSlot12 = rest * slot12Frac
	if pSlot12 > slot12MaxW {
		pSlot12 = slot12MaxW
	}
	pExt12 = rest - pSlot12
	return p3v3, pSlot12, pExt12
}

// PCIeRails returns the three rail sources of a discrete card, in the order
// the paper instruments them: slot 3.3 V, slot 12 V, external 12 V. Each
// rail sags slightly under load, which is why every sensor module measures
// voltage too.
func (g *GPU) PCIeRails() (slot3, slot12, ext12 device.RailSource) {
	mk := func(sel func(total float64) float64, nominal, sag float64) device.RailSource {
		return device.SourceFunc(func(t time.Duration) (float64, float64) {
			p := sel(g.PowerAt(t))
			// Solve v = nominal − i·R with i = p/v (one fixed-point pass is
			// ample at these impedances).
			v := nominal
			i := p / v
			v = nominal - i*sag
			i = p / v
			return v, i
		})
	}
	slot3 = mk(func(tp float64) float64 { a, _, _ := split(tp); return a }, nominal3V3, railSagOhms)
	slot12 = mk(func(tp float64) float64 { _, b, _ := split(tp); return b }, nominal12V, railSagOhms)
	ext12 = mk(func(tp float64) float64 { _, _, c := split(tp); return c }, nominal12V, railSagOhms)
	return slot3, slot12, ext12
}

// USBCRail returns the single USB-C supply of a Jetson development kit —
// total system power including the carrier board, which is exactly what the
// on-module sensor misses (Section V-B).
func (g *GPU) USBCRail() device.RailSource {
	return device.SourceFunc(func(t time.Duration) (float64, float64) {
		p := g.PowerAt(t)
		v := nominalUSBCV
		i := p / v
		v = nominalUSBCV - i*usbCSagOhms
		i = p / v
		return v, i
	})
}
