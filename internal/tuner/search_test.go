package tuner

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/rig"
)

func searchOpts(budget int, obj Objective, seed uint64) SearchOptions {
	opts := SearchOptions{Objective: obj, Budget: budget, Seed: seed}
	opts.Trials = 2
	opts.Clocks = []float64{1485, 1635, 1815}
	opts.Problem = kernels.DefaultProblem()
	return opts
}

func TestSearchAlgorithmsFindGoodConfigs(t *testing.T) {
	for _, algo := range []string{"random", "hillclimb", "genetic"} {
		g := gpu.New(gpu.RTX4000Ada(), 900)
		r, err := rig.NewPCIe(g, 900)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Search(r, PowerSensor3Strategy, algo, searchOpts(40, MaximizeTFLOPS, 1))
		r.Close()
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(res.Evaluated) == 0 || len(res.Evaluated) > 40 {
			t.Fatalf("%s: evaluated %d configs with budget 40", algo, len(res.Evaluated))
		}
		// With 40 of 1536 points, any sane strategy should find ≥55 TFLOP/s
		// (the space's best is ~81, the median ~45).
		if res.Best.TFLOPS < 50 {
			t.Errorf("%s: best %.1f TFLOP/s too poor", algo, res.Best.TFLOPS)
		}
		if res.TuningTime <= 0 {
			t.Errorf("%s: no tuning time accounted", algo)
		}
	}
}

func TestGuidedBeatsRandomOnAverage(t *testing.T) {
	// Hill climbing exploits the smooth performance surface; over a few
	// seeds it should find at least as good a configuration as random
	// sampling at the same budget.
	var hcSum, rndSum float64
	const seeds = 3
	for s := uint64(0); s < seeds; s++ {
		g1 := gpu.New(gpu.RTX4000Ada(), 901+s)
		r1, err := rig.NewPCIe(g1, 901+s)
		if err != nil {
			t.Fatal(err)
		}
		hc, err := Search(r1, PowerSensor3Strategy, "hillclimb", searchOpts(30, MaximizeTFLOPS, s))
		r1.Close()
		if err != nil {
			t.Fatal(err)
		}
		g2 := gpu.New(gpu.RTX4000Ada(), 901+s)
		r2, err := rig.NewPCIe(g2, 901+s)
		if err != nil {
			t.Fatal(err)
		}
		rd, err := Search(r2, PowerSensor3Strategy, "random", searchOpts(30, MaximizeTFLOPS, s))
		r2.Close()
		if err != nil {
			t.Fatal(err)
		}
		hcSum += hc.Best.TFLOPS
		rndSum += rd.Best.TFLOPS
	}
	if hcSum < rndSum*0.95 {
		t.Errorf("hill climbing (%.1f avg) much worse than random (%.1f avg)",
			hcSum/seeds, rndSum/seeds)
	}
}

func TestSearchObjectiveEfficiency(t *testing.T) {
	g := gpu.New(gpu.RTX4000Ada(), 905)
	r, err := rig.NewPCIe(g, 905)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	res, err := Search(r, PowerSensor3Strategy, "hillclimb", searchOpts(30, MaximizeTFLOPJ, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Tuning for efficiency should land at a reduced clock.
	if res.Best.ClockMHz >= 1815 {
		t.Errorf("efficiency search chose max clock (%v MHz)", res.Best.ClockMHz)
	}
}

func TestSearchUnknownAlgorithm(t *testing.T) {
	g := gpu.New(gpu.RTX4000Ada(), 906)
	r, err := rig.NewPCIe(g, 906)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := Search(r, PowerSensor3Strategy, "simulated-annealing", searchOpts(10, MaximizeTFLOPS, 1)); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestConvergenceCurveMonotone(t *testing.T) {
	g := gpu.New(gpu.RTX4000Ada(), 907)
	r, err := rig.NewPCIe(g, 907)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	res, err := Search(r, PowerSensor3Strategy, "random", searchOpts(20, MaximizeTFLOPS, 3))
	if err != nil {
		t.Fatal(err)
	}
	curve := res.ConvergenceCurve(MaximizeTFLOPS)
	if len(curve) != len(res.Evaluated) {
		t.Fatal("curve length mismatch")
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatal("convergence curve not monotone")
		}
	}
	if curve[len(curve)-1] != res.Best.TFLOPS {
		t.Fatal("curve end != best")
	}
}

func TestNeighboursStayInBounds(t *testing.T) {
	corner := point{}
	for _, n := range corner.neighbours(10) {
		if n.bx < 0 || n.by < 0 || n.fb < 0 || n.fw < 0 || n.db < 0 || n.clk < 0 {
			t.Fatalf("negative coordinate in %+v", n)
		}
	}
	top := point{bx: 3, by: 3, fb: 3, fw: 3, db: 1, clk: 9}
	for _, n := range top.neighbours(10) {
		if n.bx > 3 || n.by > 3 || n.fb > 3 || n.fw > 3 || n.db > 1 || n.clk > 9 {
			t.Fatalf("out-of-range coordinate in %+v", n)
		}
	}
	// Interior point: 2 neighbours per 4-valued axis and the clock axis,
	// but the binary double-buffer axis only ever has 1.
	mid := point{bx: 1, by: 1, fb: 1, fw: 1, db: 0, clk: 5}
	if got := len(mid.neighbours(10)); got != 11 {
		t.Fatalf("%d neighbours, want 11", got)
	}
}

func TestFrontOf(t *testing.T) {
	ms := []Measurement{
		{TFLOPS: 80, TFLOPJ: 0.7},
		{TFLOPS: 60, TFLOPJ: 0.9},
		{TFLOPS: 50, TFLOPJ: 0.8}, // dominated
	}
	front := FrontOf(ms)
	if len(front) != 2 {
		t.Fatalf("front size %d", len(front))
	}
	if front[0].X > front[1].X {
		t.Fatal("front not sorted by efficiency")
	}
}

func TestSearchCachesRepeats(t *testing.T) {
	g := gpu.New(gpu.RTX4000Ada(), 908)
	r, err := rig.NewPCIe(g, 908)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Hill climbing revisits neighbours aggressively; Evaluated must hold
	// only unique configurations (the cache prevents re-measurement).
	res, err := Search(r, PowerSensor3Strategy, "hillclimb", searchOpts(25, MaximizeTFLOPS, 4))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, m := range res.Evaluated {
		key := m.Config.String() + string(rune(int(m.ClockMHz)))
		if seen[key] {
			t.Fatalf("configuration %s@%v measured twice", m.Config, m.ClockMHz)
		}
		seen[key] = true
	}
}
