// Package tuner reproduces the Kernel Tuner workflow of Sections V-A2 and
// V-B: exhaustively benchmark every code variant of the Tensor-Core
// Beamformer across a range of locked GPU clock frequencies, measuring both
// compute performance (TFLOP/s) and energy efficiency (TFLOP/J), and extract
// the Pareto front.
//
// Two measurement strategies are modelled, because their cost difference is
// the paper's headline tuning result (3.25× faster with PowerSensor3):
//
//   - PowerSensor3: each variant is measured directly — a handful of trials
//     suffices because the 20 kHz external sensor resolves a single kernel.
//   - Onboard: the ~10 Hz on-board sensor cannot resolve a short kernel, so
//     the tuner must additionally run each variant continuously for an
//     extended dwell (1–2 s in the paper) to collect enough samples.
package tuner

import (
	"fmt"
	"time"

	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/rig"
	"repro/internal/stats"
	"repro/internal/vendorapi"
)

// Strategy selects the energy-measurement backend.
type Strategy int

// Available strategies.
const (
	// PowerSensor3Strategy measures with the external 20 kHz sensor.
	PowerSensor3Strategy Strategy = iota
	// OnboardStrategy measures with the vendor's ~10 Hz on-board sensor.
	OnboardStrategy
)

// String names the strategy.
func (s Strategy) String() string {
	if s == PowerSensor3Strategy {
		return "powersensor3"
	}
	return "onboard"
}

// Options configure a tuning run.
type Options struct {
	// Clocks are the locked application clocks to sweep, in MHz.
	Clocks []float64
	// Trials is how many times each configuration is benchmarked (7 in the
	// paper).
	Trials int
	// Problem is the beamformer problem size.
	Problem kernels.BeamformerProblem
	// Configs restricts the variant space (nil = full 512-variant space).
	Configs []kernels.BeamformerConfig
	// OverheadPerConfig is the compile/setup cost per configuration.
	OverheadPerConfig time.Duration
	// OnboardDwell is the extra continuous-execution window the onboard
	// strategy needs per configuration.
	OnboardDwell time.Duration
}

// DefaultOptions returns the paper's experimental configuration for the
// given device: 512 variants × 10 clocks, 7 trials, ~1 s onboard dwell.
func DefaultOptions(spec gpu.Spec) Options {
	return Options{
		Clocks:            ClocksFor(spec),
		Trials:            7,
		Problem:           kernels.DefaultProblem(),
		OverheadPerConfig: 350 * time.Millisecond,
		OnboardDwell:      time.Second,
	}
}

// ClocksFor returns the ten tuned clock frequencies the paper sweeps on each
// device (Fig. 8 and Fig. 10 legends).
func ClocksFor(spec gpu.Spec) []float64 {
	switch spec.Vendor {
	case gpu.JetsonSoC:
		return []float64{408, 510, 612, 714, 816, 918, 1020, 1122, 1224, 1300}
	default:
		return []float64{1485, 1515, 1560, 1590, 1635, 1665, 1710, 1740, 1785, 1815}
	}
}

// Measurement is the benchmark result of one (variant, clock) configuration.
type Measurement struct {
	Config     kernels.BeamformerConfig
	ClockMHz   float64
	KernelTime time.Duration // mean over trials
	EnergyJ    float64       // mean over trials
	TFLOPS     float64       // compute performance
	TFLOPJ     float64       // energy efficiency
}

// Result is a complete tuning run.
type Result struct {
	Strategy     Strategy
	Measurements []Measurement
	// TuningTime is the total wall-clock the run would have taken on a real
	// testbed: measured kernel execution plus per-configuration overheads.
	TuningTime time.Duration
	// Front is the Pareto front over (TFLOPJ, TFLOPS), sorted by ascending
	// efficiency; Tags index into Measurements.
	Front []stats.Point
}

// Fastest returns the measurement with the highest TFLOPS.
func (r Result) Fastest() Measurement {
	best := r.Measurements[0]
	for _, m := range r.Measurements[1:] {
		if m.TFLOPS > best.TFLOPS {
			best = m
		}
	}
	return best
}

// MostEfficient returns the measurement with the highest TFLOP/J.
func (r Result) MostEfficient() Measurement {
	best := r.Measurements[0]
	for _, m := range r.Measurements[1:] {
		if m.TFLOPJ > best.TFLOPJ {
			best = m
		}
	}
	return best
}

// Tune runs the full benchmark sweep on the rig using the given strategy.
func Tune(r *rig.Rig, strategy Strategy, opts Options) (Result, error) {
	if opts.Trials <= 0 {
		return Result{}, fmt.Errorf("tuner: trials must be positive")
	}
	if len(opts.Clocks) == 0 {
		return Result{}, fmt.Errorf("tuner: no clocks to sweep")
	}
	configs := opts.Configs
	if configs == nil {
		configs = kernels.Space()
	}
	spec := r.GPU.Spec()

	var nvml *vendorapi.NVML
	if strategy == OnboardStrategy {
		nvml = vendorapi.NewNVML(r.GPU)
	}

	res := Result{Strategy: strategy}
	for _, cfg := range configs {
		for _, clock := range opts.Clocks {
			r.GPU.SetAppClock(clock)
			m := Measurement{Config: cfg, ClockMHz: clock}
			k := cfg.Kernel(spec, clock, opts.Problem)

			var sumDur time.Duration
			var sumJ float64
			for trial := 0; trial < opts.Trials; trial++ {
				dur, joules := r.MeasureKernel(k)
				sumDur += dur
				if strategy == PowerSensor3Strategy {
					sumJ += joules
				}
			}
			m.KernelTime = sumDur / time.Duration(opts.Trials)
			res.TuningTime += sumDur + opts.OverheadPerConfig

			if strategy == OnboardStrategy {
				// The on-board sensor cannot resolve a single kernel: run
				// the variant continuously for the dwell window and average
				// the 10 Hz readings.
				meanW := onboardDwell(r, nvml, k, opts.OnboardDwell)
				sumJ = float64(opts.Trials) * meanW * m.KernelTime.Seconds()
				res.TuningTime += opts.OnboardDwell
			}
			m.EnergyJ = sumJ / float64(opts.Trials)

			work := opts.Problem.FLOPs()
			m.TFLOPS = work / m.KernelTime.Seconds() / 1e12
			m.TFLOPJ = work / m.EnergyJ / 1e12
			res.Measurements = append(res.Measurements, m)
		}
	}
	r.GPU.SetAppClock(0)

	pts := make([]stats.Point, len(res.Measurements))
	for i, m := range res.Measurements {
		pts[i] = stats.Point{X: m.TFLOPJ, Y: m.TFLOPS, Tag: i}
	}
	res.Front = stats.ParetoFront(pts)
	return res, nil
}

// onboardDwell executes the kernel back-to-back for the dwell window while
// sampling the on-board sensor at its own rate, returning the mean power.
func onboardDwell(r *rig.Rig, nvml *vendorapi.NVML, k gpu.Kernel, dwell time.Duration) float64 {
	// One long launch with enough waves to span the dwell.
	single := k
	oneDur, _ := estimateDuration(r, k)
	waves := int(dwell/oneDur) + 1
	single.FLOPs = k.FLOPs * float64(waves)
	single.Waves = waves
	run := r.GPU.LaunchKernel(single, r.Now())

	var sum float64
	n := 0
	for ts := run.Start; ts < run.Start+dwell; ts += 100 * time.Millisecond {
		sum += nvml.PowerInstant(ts)
		n++
	}
	// Fast-forward the rig past the dwell: the onboard strategy does not
	// use the external sensor, so no 20 kHz samples are needed.
	r.Skip(run.End - r.Now() + 10*time.Millisecond)
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// estimateDuration predicts one kernel execution without measuring energy.
func estimateDuration(r *rig.Rig, k gpu.Kernel) (time.Duration, float64) {
	clock := r.GPU.EffectiveClock()
	secs := k.FLOPs / (r.GPU.TFLOPS(clock) * 1e12 * k.Efficiency)
	return time.Duration(secs * float64(time.Second)), 0
}
