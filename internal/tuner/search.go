// Search strategies for the auto-tuner.
//
// The paper's experiment benchmarks the full 5120-configuration space, but
// Kernel Tuner itself is a *search-optimizing* tuner (van Werkhoven, FGCS
// 2019): it normally explores a fraction of the space with an optimization
// algorithm. This file implements the strategies relevant to the paper's
// workflow — exhaustive, random sampling, greedy hill climbing in the
// parameter neighbourhood, and a small genetic algorithm — so the cost of
// tuning with each measurement backend can be studied at realistic search
// budgets, not just exhaustively.
package tuner

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/kernels"
	"repro/internal/rig"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Objective selects what the search optimises.
type Objective int

// Objectives.
const (
	// MaximizeTFLOPS tunes for compute performance.
	MaximizeTFLOPS Objective = iota
	// MaximizeTFLOPJ tunes for energy efficiency.
	MaximizeTFLOPJ
)

// String names the objective.
func (o Objective) String() string {
	if o == MaximizeTFLOPS {
		return "TFLOP/s"
	}
	return "TFLOP/J"
}

// score extracts the objective value from a measurement.
func (o Objective) score(m Measurement) float64 {
	if o == MaximizeTFLOPS {
		return m.TFLOPS
	}
	return m.TFLOPJ
}

// SearchOptions configure a guided search.
type SearchOptions struct {
	Options   // the measurement configuration (trials, problem, …)
	Objective Objective
	Budget    int    // maximum configurations to measure
	Seed      uint64 // randomised strategies
}

// SearchResult is the outcome of a guided search.
type SearchResult struct {
	Best      Measurement
	Evaluated []Measurement
	// TuningTime is the wall-clock cost of the search on a real testbed.
	TuningTime time.Duration
}

// point is a position in the discrete parameter space: the variant index
// axes plus the clock axis.
type point struct {
	bx, by, fb, fw, db, clk int
}

// axes of the space (must match kernels.Space ordering).
var (
	bxVals = []int{32, 64, 128, 256}
	byVals = []int{1, 2, 4, 8}
	fbVals = []int{1, 2, 4, 8}
	fwVals = []int{1, 2, 4, 8}
)

// config materialises the variant at a point.
func (p point) config() kernels.BeamformerConfig {
	return kernels.BeamformerConfig{
		BlockX:        bxVals[p.bx],
		BlockY:        byVals[p.by],
		FragsPerBlock: fbVals[p.fb],
		FragsPerWarp:  fwVals[p.fw],
		DoubleBuffer:  p.db == 1,
	}
}

// neighbours returns the points one step away along each axis.
func (p point) neighbours(nClocks int) []point {
	var out []point
	step := func(v, n int, set func(point, int) point) {
		if v > 0 {
			out = append(out, set(p, v-1))
		}
		if v < n-1 {
			out = append(out, set(p, v+1))
		}
	}
	step(p.bx, len(bxVals), func(q point, v int) point { q.bx = v; return q })
	step(p.by, len(byVals), func(q point, v int) point { q.by = v; return q })
	step(p.fb, len(fbVals), func(q point, v int) point { q.fb = v; return q })
	step(p.fw, len(fwVals), func(q point, v int) point { q.fw = v; return q })
	step(p.db, 2, func(q point, v int) point { q.db = v; return q })
	step(p.clk, nClocks, func(q point, v int) point { q.clk = v; return q })
	return out
}

// evaluator measures points, caching repeats (the tuner never re-benchmarks
// a configuration it has seen).
type evaluator struct {
	r     *rig.Rig
	opts  Options
	strat Strategy
	seen  map[point]Measurement
	order []Measurement
	time  time.Duration
}

func newEvaluator(r *rig.Rig, opts Options, strat Strategy) *evaluator {
	return &evaluator{r: r, opts: opts, strat: strat, seen: map[point]Measurement{}}
}

// measure benchmarks one point (cached).
func (e *evaluator) measure(p point) (Measurement, error) {
	if m, ok := e.seen[p]; ok {
		return m, nil
	}
	single := e.opts
	single.Configs = []kernels.BeamformerConfig{p.config()}
	single.Clocks = []float64{e.opts.Clocks[p.clk]}
	res, err := Tune(e.r, e.strat, single)
	if err != nil {
		return Measurement{}, err
	}
	m := res.Measurements[0]
	e.seen[p] = m
	e.order = append(e.order, m)
	e.time += res.TuningTime
	return m, nil
}

func (e *evaluator) budgetLeft(budget int) bool { return len(e.seen) < budget }

// Search runs the named strategy within the measurement budget.
func Search(r *rig.Rig, strategy Strategy, algo string, opts SearchOptions) (SearchResult, error) {
	if opts.Budget <= 0 {
		opts.Budget = 64
	}
	if len(opts.Clocks) == 0 {
		opts.Clocks = ClocksFor(r.GPU.Spec())
	}
	if opts.Trials <= 0 {
		opts.Trials = 3
	}
	if opts.Problem.M == 0 {
		opts.Problem = kernels.DefaultProblem()
	}
	ev := newEvaluator(r, opts.Options, strategy)
	rnd := rng.New(opts.Seed ^ 0x5ea6c4)

	var err error
	switch algo {
	case "random":
		err = randomSearch(ev, rnd, opts)
	case "hillclimb":
		err = hillClimb(ev, rnd, opts)
	case "genetic":
		err = geneticSearch(ev, rnd, opts)
	default:
		return SearchResult{}, fmt.Errorf("tuner: unknown search algorithm %q (have random, hillclimb, genetic)", algo)
	}
	if err != nil {
		return SearchResult{}, err
	}
	if len(ev.order) == 0 {
		return SearchResult{}, fmt.Errorf("tuner: search evaluated nothing")
	}
	res := SearchResult{Evaluated: ev.order, TuningTime: ev.time}
	res.Best = ev.order[0]
	for _, m := range ev.order[1:] {
		if opts.Objective.score(m) > opts.Objective.score(res.Best) {
			res.Best = m
		}
	}
	return res, nil
}

// randomPoint draws a uniform point.
func randomPoint(rnd *rng.Source, nClocks int) point {
	return point{
		bx:  rnd.Intn(len(bxVals)),
		by:  rnd.Intn(len(byVals)),
		fb:  rnd.Intn(len(fbVals)),
		fw:  rnd.Intn(len(fwVals)),
		db:  rnd.Intn(2),
		clk: rnd.Intn(nClocks),
	}
}

// randomSearch samples the space uniformly without replacement.
func randomSearch(ev *evaluator, rnd *rng.Source, opts SearchOptions) error {
	for ev.budgetLeft(opts.Budget) {
		p := randomPoint(rnd, len(opts.Clocks))
		if _, seen := ev.seen[p]; seen {
			continue
		}
		if _, err := ev.measure(p); err != nil {
			return err
		}
	}
	return nil
}

// hillClimb performs greedy restarts: from a random start, move to the best
// improving neighbour until none improves, then restart.
func hillClimb(ev *evaluator, rnd *rng.Source, opts SearchOptions) error {
	for ev.budgetLeft(opts.Budget) {
		cur := randomPoint(rnd, len(opts.Clocks))
		curM, err := ev.measure(cur)
		if err != nil {
			return err
		}
		for ev.budgetLeft(opts.Budget) {
			bestN := cur
			bestScore := opts.Objective.score(curM)
			improved := false
			for _, n := range cur.neighbours(len(opts.Clocks)) {
				if !ev.budgetLeft(opts.Budget) {
					break
				}
				m, err := ev.measure(n)
				if err != nil {
					return err
				}
				if s := opts.Objective.score(m); s > bestScore {
					bestN, bestScore, improved = n, s, true
					curM = m
				}
			}
			if !improved {
				break
			}
			cur = bestN
		}
	}
	return nil
}

// geneticSearch runs a small steady-state GA: tournament selection,
// single-axis crossover, point mutation.
func geneticSearch(ev *evaluator, rnd *rng.Source, opts SearchOptions) error {
	const popSize = 12
	type indiv struct {
		p point
		m Measurement
	}
	var pop []indiv
	for len(pop) < popSize && ev.budgetLeft(opts.Budget) {
		p := randomPoint(rnd, len(opts.Clocks))
		m, err := ev.measure(p)
		if err != nil {
			return err
		}
		pop = append(pop, indiv{p, m})
	}
	score := func(i indiv) float64 { return opts.Objective.score(i.m) }
	tournament := func() indiv {
		a, b := pop[rnd.Intn(len(pop))], pop[rnd.Intn(len(pop))]
		if score(a) >= score(b) {
			return a
		}
		return b
	}
	for ev.budgetLeft(opts.Budget) {
		a, b := tournament(), tournament()
		child := a.p
		// Uniform crossover per axis.
		if rnd.Intn(2) == 0 {
			child.bx = b.p.bx
		}
		if rnd.Intn(2) == 0 {
			child.by = b.p.by
		}
		if rnd.Intn(2) == 0 {
			child.fb = b.p.fb
		}
		if rnd.Intn(2) == 0 {
			child.fw = b.p.fw
		}
		if rnd.Intn(2) == 0 {
			child.db = b.p.db
		}
		if rnd.Intn(2) == 0 {
			child.clk = b.p.clk
		}
		// Mutation: one random axis re-drawn with probability 1/2.
		if rnd.Intn(2) == 0 {
			q := randomPoint(rnd, len(opts.Clocks))
			switch rnd.Intn(6) {
			case 0:
				child.bx = q.bx
			case 1:
				child.by = q.by
			case 2:
				child.fb = q.fb
			case 3:
				child.fw = q.fw
			case 4:
				child.db = q.db
			case 5:
				child.clk = q.clk
			}
		}
		m, err := ev.measure(child)
		if err != nil {
			return err
		}
		// Replace the worst member if the child beats it.
		worst := 0
		for i := range pop {
			if score(pop[i]) < score(pop[worst]) {
				worst = i
			}
		}
		if opts.Objective.score(m) > score(pop[worst]) {
			pop[worst] = indiv{child, m}
		}
	}
	return nil
}

// ConvergenceCurve returns the best-so-far objective value after each
// evaluation — the standard way to compare search strategies.
func (r SearchResult) ConvergenceCurve(obj Objective) []float64 {
	out := make([]float64, len(r.Evaluated))
	best := 0.0
	for i, m := range r.Evaluated {
		if s := obj.score(m); s > best {
			best = s
		}
		out[i] = best
	}
	return out
}

// FrontOf computes the Pareto front over a set of measurements.
func FrontOf(ms []Measurement) []stats.Point {
	pts := make([]stats.Point, len(ms))
	for i, m := range ms {
		pts[i] = stats.Point{X: m.TFLOPJ, Y: m.TFLOPS, Tag: i}
	}
	front := stats.ParetoFront(pts)
	sort.Slice(front, func(i, j int) bool { return front[i].X < front[j].X })
	return front
}
