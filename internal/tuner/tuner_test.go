package tuner

import (
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/rig"
)

// smallOptions returns a reduced search space for fast tests: 8 variants ×
// 3 clocks.
func smallOptions(spec gpu.Spec) Options {
	opts := DefaultOptions(spec)
	space := kernels.Space()
	var cfgs []kernels.BeamformerConfig
	for i := 0; i < len(space); i += 64 {
		cfgs = append(cfgs, space[i])
	}
	opts.Configs = cfgs
	clocks := ClocksFor(spec)
	opts.Clocks = []float64{clocks[0], clocks[5], clocks[9]}
	opts.Trials = 3
	return opts
}

func newRTXRig(t *testing.T, seed uint64) *rig.Rig {
	t.Helper()
	g := gpu.New(gpu.RTX4000Ada(), seed)
	r, err := rig.NewPCIe(g, seed)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTuneProducesAllMeasurements(t *testing.T) {
	r := newRTXRig(t, 1)
	defer r.Close()
	opts := smallOptions(r.GPU.Spec())
	res, err := Tune(r, PowerSensor3Strategy, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := len(opts.Configs) * len(opts.Clocks)
	if len(res.Measurements) != want {
		t.Fatalf("%d measurements, want %d", len(res.Measurements), want)
	}
	for _, m := range res.Measurements {
		if m.TFLOPS <= 0 || m.TFLOPJ <= 0 {
			t.Fatalf("non-positive metrics: %+v", m)
		}
	}
}

func TestParetoFrontNonEmptyAndUndominated(t *testing.T) {
	r := newRTXRig(t, 2)
	defer r.Close()
	res, err := Tune(r, PowerSensor3Strategy, smallOptions(r.GPU.Spec()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty Pareto front")
	}
	// The fastest and most efficient configurations must both be on the
	// front by definition.
	fast, eff := res.Fastest(), res.MostEfficient()
	var onFrontFast, onFrontEff bool
	for _, p := range res.Front {
		m := res.Measurements[p.Tag]
		if m == fast {
			onFrontFast = true
		}
		if m == eff {
			onFrontEff = true
		}
	}
	if !onFrontFast || !onFrontEff {
		t.Fatal("fastest/most-efficient not on the Pareto front")
	}
}

func TestFastestPrefersHighClockEfficientPrefersLow(t *testing.T) {
	r := newRTXRig(t, 3)
	defer r.Close()
	res, err := Tune(r, PowerSensor3Strategy, smallOptions(r.GPU.Spec()))
	if err != nil {
		t.Fatal(err)
	}
	fast, eff := res.Fastest(), res.MostEfficient()
	if fast.ClockMHz < eff.ClockMHz {
		t.Fatalf("fastest at %v MHz below most-efficient at %v MHz",
			fast.ClockMHz, eff.ClockMHz)
	}
	if eff.TFLOPJ <= fast.TFLOPJ {
		t.Fatal("most-efficient must beat fastest on TFLOP/J")
	}
	if fast.TFLOPS <= eff.TFLOPS {
		t.Fatal("fastest must beat most-efficient on TFLOP/s")
	}
}

func TestOnboardStrategySlower(t *testing.T) {
	r1 := newRTXRig(t, 4)
	defer r1.Close()
	opts := smallOptions(r1.GPU.Spec())
	ps3, err := Tune(r1, PowerSensor3Strategy, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2 := newRTXRig(t, 4)
	defer r2.Close()
	onboard, err := Tune(r2, OnboardStrategy, opts)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(onboard.TuningTime) / float64(ps3.TuningTime)
	// The paper reports 3.25×; the exact value depends on mean kernel time,
	// so accept a band around it.
	if ratio < 2.2 || ratio > 4.5 {
		t.Fatalf("onboard/PS3 tuning-time ratio = %.2f, want ~3.25", ratio)
	}
}

func TestOnboardEnergyAgreesRoughly(t *testing.T) {
	// The onboard estimate uses mean dwell power × kernel time; for steady
	// kernels this should be within tens of percent of the PS3 measurement.
	r1 := newRTXRig(t, 5)
	defer r1.Close()
	opts := smallOptions(r1.GPU.Spec())
	opts.Configs = opts.Configs[:2]
	opts.Clocks = opts.Clocks[:1]
	ps3, err := Tune(r1, PowerSensor3Strategy, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2 := newRTXRig(t, 5)
	defer r2.Close()
	onboard, err := Tune(r2, OnboardStrategy, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ps3.Measurements {
		a, b := ps3.Measurements[i].EnergyJ, onboard.Measurements[i].EnergyJ
		rel := (a - b) / a
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.35 {
			t.Fatalf("config %d: PS3 %v J vs onboard %v J", i, a, b)
		}
	}
}

func TestTuneValidation(t *testing.T) {
	r := newRTXRig(t, 6)
	defer r.Close()
	if _, err := Tune(r, PowerSensor3Strategy, Options{Clocks: []float64{1500}}); err == nil {
		t.Fatal("zero trials accepted")
	}
	if _, err := Tune(r, PowerSensor3Strategy, Options{Trials: 1}); err == nil {
		t.Fatal("no clocks accepted")
	}
}

func TestClocksForDevices(t *testing.T) {
	if got := ClocksFor(gpu.RTX4000Ada()); len(got) != 10 || got[0] != 1485 || got[9] != 1815 {
		t.Fatalf("RTX clocks = %v", got)
	}
	if got := ClocksFor(gpu.JetsonAGXOrin()); len(got) != 10 || got[0] != 408 || got[9] != 1300 {
		t.Fatalf("Jetson clocks = %v", got)
	}
}

func TestDefaultOptionsMatchPaper(t *testing.T) {
	opts := DefaultOptions(gpu.RTX4000Ada())
	if opts.Trials != 7 {
		t.Fatalf("trials = %d, paper averages over 7", opts.Trials)
	}
	if opts.OnboardDwell < 500*time.Millisecond {
		t.Fatal("onboard dwell should be around a second")
	}
	if len(kernels.Space())*len(opts.Clocks) != 5120 {
		t.Fatal("search space must be 5120 configurations")
	}
}
