package usb

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/protocol"
)

func TestRoundTrip(t *testing.T) {
	p := NewPipe()
	p.Advance(time.Second)
	if err := p.DeviceWrite([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	n := p.HostRead(buf)
	if n != 3 || !bytes.Equal(buf[:3], []byte{1, 2, 3}) {
		t.Fatalf("read %d bytes: %v", n, buf[:n])
	}
}

func TestHostCommands(t *testing.T) {
	p := NewPipe()
	p.HostWrite([]byte{'S'})
	p.HostWrite([]byte{'M', 'x'})
	got := p.DeviceRead()
	if !bytes.Equal(got, []byte{'S', 'M', 'x'}) {
		t.Fatalf("device read %v", got)
	}
	if len(p.DeviceRead()) != 0 {
		t.Fatal("second read not empty")
	}
}

func TestOverrunWhenHostStalls(t *testing.T) {
	p := NewPipeBuffer(64)
	// No Advance: link has no capacity, only the 64-byte buffer.
	if err := p.DeviceWrite(make([]byte, 64)); err != nil {
		t.Fatalf("first write should fit the buffer: %v", err)
	}
	if err := p.DeviceWrite([]byte{0}); err != ErrOverrun {
		t.Fatalf("expected overrun, got %v", err)
	}
	if p.Overruns() != 1 || p.DroppedBytes() != 1 {
		t.Fatalf("overruns=%d dropped=%d", p.Overruns(), p.DroppedBytes())
	}
}

func TestBandwidthAccounting(t *testing.T) {
	p := NewPipeBuffer(1000)
	if err := p.DeviceWrite(make([]byte, 1000)); err != nil {
		t.Fatalf("first write should fit the endpoint buffer: %v", err)
	}
	// No link capacity yet: the buffer is stuck full.
	if err := p.DeviceWrite([]byte{0}); err != ErrOverrun {
		t.Fatal("expected overrun with zero link capacity")
	}
	// One millisecond of link time drains the buffer into the host queue.
	p.Advance(time.Millisecond) // 1000 bytes of capacity
	if err := p.DeviceWrite(make([]byte, 1000)); err != nil {
		t.Fatalf("buffer should have drained over the link: %v", err)
	}
	// The host can now read exactly what crossed the link.
	if got := len(p.HostReadAll()); got != 1000 {
		t.Fatalf("host sees %d bytes, want 1000", got)
	}
}

func TestHostBufferBackpressure(t *testing.T) {
	p := NewPipeBuffer(1024)
	p.Advance(time.Hour) // effectively infinite link capacity
	// Nobody reads: the host OS buffer plus endpoint buffer eventually fill.
	total := 0
	for i := 0; i < 100; i++ {
		err := p.DeviceWrite(make([]byte, 1024))
		if err != nil {
			break
		}
		total += 1024
	}
	if total > HostBufferSize+1024 {
		t.Fatalf("accepted %d bytes with no reader; host buffer is %d", total, HostBufferSize)
	}
	if p.Overruns() == 0 {
		t.Fatal("expected overruns once buffers filled")
	}
	// Reading frees space again.
	p.HostReadAll()
	if err := p.DeviceWrite(make([]byte, 1024)); err != nil {
		t.Fatalf("write after drain: %v", err)
	}
}

func TestHostReadAll(t *testing.T) {
	p := NewPipe()
	p.Advance(time.Second)
	p.DeviceWrite([]byte{9, 8, 7})
	got := p.HostReadAll()
	if !bytes.Equal(got, []byte{9, 8, 7}) {
		t.Fatalf("got %v", got)
	}
	if p.Pending() != 0 {
		t.Fatal("pending after drain")
	}
}

// The paper's design point: 8 sensors at 20 kHz fits full-speed USB, but the
// raw ADC rate (no averaging) would not.
func TestDesignPointFitsLink(t *testing.T) {
	if !FitsLink(protocol.MaxSensors, protocol.SampleRateHz) {
		t.Fatal("8 sensors at 20 kHz must fit the link")
	}
	rawRate := 120000.0 * protocol.SamplesPerAverage // no averaging ≈ 720 kHz
	if FitsLink(protocol.MaxSensors, rawRate) {
		t.Fatal("raw ADC rate must exceed the link; this constraint motivated averaging")
	}
}

func TestSustained20kHzStreamNoOverrun(t *testing.T) {
	p := NewPipe()
	packet := make([]byte, 2*protocol.MaxSensors+2)
	interval := 50 * time.Microsecond
	for i := 0; i < 20000; i++ { // one virtual second
		p.Advance(interval)
		if err := p.DeviceWrite(packet); err != nil {
			t.Fatalf("overrun at sample %d: %v", i, err)
		}
		if i%100 == 0 {
			p.HostReadAll()
		}
	}
}

func BenchmarkDeviceWriteHostRead(b *testing.B) {
	p := NewPipe()
	packet := make([]byte, 18)
	buf := make([]byte, 4096)
	for i := 0; i < b.N; i++ {
		p.Advance(50 * time.Microsecond)
		_ = p.DeviceWrite(packet)
		if i%64 == 0 {
			for p.HostRead(buf) > 0 {
			}
		}
	}
}
