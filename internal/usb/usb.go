// Package usb models the full-speed (USB 1.1, 12 Mbit/s) link between the
// Black Pill microcontroller and the host.
//
// The link matters to the design: the paper explains that the ADC could run
// much faster, but the Black Pill's USB controller caps the sustainable data
// rate, so the firmware averages samples down to 20 kHz instead of adding a
// USB 2.0 PHY (Section III-B). The model therefore accounts for bandwidth in
// virtual time and reports overruns if the device produces data faster than
// the link and buffers can absorb.
//
// Data flows through three stages, as on real hardware:
//
//	device endpoint buffer → link (bandwidth-limited) → host OS buffer → reader
//
// A write is dropped (overrun) when the device endpoint buffer is full,
// which happens when the link is saturated or the host OS buffer has filled
// because nobody is reading.
package usb

import (
	"errors"
	"time"
)

// Link characteristics of full-speed USB with CDC-ACM framing.
const (
	// RawBitRate is the full-speed USB signalling rate.
	RawBitRate = 12_000_000

	// EffectiveByteRate is the usable payload rate after protocol overhead
	// (bit stuffing, token/handshake packets, CDC headers). Full-speed bulk
	// endpoints achieve roughly 1 MB/s in practice.
	EffectiveByteRate = 1_000_000

	// DefaultBufferSize is the device-side endpoint buffer: a few ms of
	// stream data, matching the small RAM of the STM32F411.
	DefaultBufferSize = 16 * 1024

	// HostBufferSize is the host OS serial buffer (kernel tty queue).
	HostBufferSize = 64 * 1024
)

// ErrOverrun is reported when the device endpoint buffer is full and a write
// is dropped; the firmware loses those samples.
var ErrOverrun = errors.New("usb: endpoint buffer overrun, samples dropped")

// Pipe is a virtual-time byte channel from device to host with a paired
// host-to-device command channel. It is not safe for concurrent use: the
// simulation is single-threaded in virtual time.
type Pipe struct {
	queue        []byte // accepted but not yet consumed bytes, in order
	hostToDevice []byte

	deviceBuf int // device endpoint buffer size
	hostBuf   int // host OS buffer size

	produced int     // total bytes accepted from the device
	consumed int     // total bytes handed to the host reader
	capacity float64 // total bytes the link could have carried so far

	overruns int
	dropped  int
}

// NewPipe returns a Pipe with the default buffer sizes.
func NewPipe() *Pipe {
	return &Pipe{deviceBuf: DefaultBufferSize, hostBuf: HostBufferSize}
}

// NewPipeBuffer returns a Pipe with a specific device endpoint buffer size.
func NewPipeBuffer(n int) *Pipe {
	return &Pipe{deviceBuf: n, hostBuf: HostBufferSize}
}

// Advance credits the link with dt of transfer capacity. The firmware calls
// this once per sample interval.
func (p *Pipe) Advance(dt time.Duration) {
	p.capacity += EffectiveByteRate * dt.Seconds()
}

// transferred returns how many produced bytes have crossed the link into the
// host OS buffer: limited by link bandwidth and by host buffer space.
func (p *Pipe) transferred() int {
	t := p.produced
	if c := int(p.capacity); c < t {
		t = c
	}
	if m := p.consumed + p.hostBuf; m < t {
		t = m
	}
	return t
}

// DeviceWrite queues bytes from the device toward the host. If the device
// endpoint buffer is full — link saturated or host not draining — the write
// is dropped and counted, mirroring the firmware's behaviour.
func (p *Pipe) DeviceWrite(b []byte) error {
	occupancy := p.produced - p.transferred()
	if occupancy+len(b) > p.deviceBuf {
		p.overruns++
		p.dropped += len(b)
		return ErrOverrun
	}
	p.queue = append(p.queue, b...)
	p.produced += len(b)
	return nil
}

// HostRead drains up to len(b) transferred bytes into b, returning the count.
func (p *Pipe) HostRead(b []byte) int {
	avail := p.transferred() - p.consumed
	if avail > len(b) {
		avail = len(b)
	}
	n := copy(b, p.queue[:avail])
	p.queue = p.queue[n:]
	p.consumed += n
	return n
}

// HostReadAll drains and returns every byte that has crossed the link.
func (p *Pipe) HostReadAll() []byte {
	avail := p.transferred() - p.consumed
	out := p.queue[:avail]
	p.queue = p.queue[avail:]
	p.consumed += avail
	return out
}

// HostWrite queues command bytes from the host toward the device. Commands
// are tiny; bandwidth accounting is not needed in that direction.
func (p *Pipe) HostWrite(b []byte) {
	p.hostToDevice = append(p.hostToDevice, b...)
}

// DeviceRead drains and returns all pending host command bytes.
func (p *Pipe) DeviceRead() []byte {
	out := p.hostToDevice
	p.hostToDevice = nil
	return out
}

// Pending returns how many device bytes are queued anywhere in the channel.
func (p *Pipe) Pending() int { return len(p.queue) }

// Overruns returns how many device writes were dropped.
func (p *Pipe) Overruns() int { return p.overruns }

// DroppedBytes returns the total bytes lost to overruns.
func (p *Pipe) DroppedBytes() int { return p.dropped }

// StreamBytesPerSecond returns the device-to-host data rate a configuration
// of nSensors at rateHz would generate: 2 bytes per sensor value plus one
// 2-byte timestamp packet per sample set.
func StreamBytesPerSecond(nSensors int, rateHz float64) float64 {
	return rateHz * float64(2*nSensors+2)
}

// FitsLink reports whether a stream configuration fits the usable USB
// bandwidth — the design constraint that fixed the 20 kHz sample rate.
func FitsLink(nSensors int, rateHz float64) bool {
	return StreamBytesPerSecond(nSensors, rateHz) <= EffectiveByteRate
}
