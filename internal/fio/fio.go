// Package fio is a workload generator in the spirit of the fio tool the
// paper uses for its storage case study (Section V-C): random/sequential
// read/write jobs with direct I/O semantics, a fixed queue depth (io_uring
// style), a runtime budget, and per-interval bandwidth reporting.
package fio

import (
	"fmt"
	"time"

	"repro/internal/rng"
	"repro/internal/ssd"
)

// Pattern selects the access pattern.
type Pattern int

// Supported patterns.
const (
	RandRead Pattern = iota
	RandWrite
	SeqRead
	SeqWrite
)

// String names the pattern in fio's vocabulary.
func (p Pattern) String() string {
	switch p {
	case RandRead:
		return "randread"
	case RandWrite:
		return "randwrite"
	case SeqRead:
		return "read"
	case SeqWrite:
		return "write"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Job describes one workload.
type Job struct {
	Pattern   Pattern
	BlockKiB  int           // request size in KiB
	IODepth   int           // outstanding requests (io_uring queue depth)
	Runtime   time.Duration // how long to run
	Seed      uint64
	ReportGap time.Duration // bandwidth series granularity (default 1 s)
}

// Result reports a finished job.
type Result struct {
	Job         Job
	BytesMoved  int64
	Elapsed     time.Duration
	MeanMiBps   float64
	SeriesTimes []float64 // seconds since job start
	SeriesMiBps []float64 // bandwidth per reporting interval
	IOPS        float64
}

// Run executes the job against the disk starting at the disk's current
// time. onTick, if non-nil, is called with monotonically increasing virtual
// times roughly every reporting interval boundary crossing and at least
// every few milliseconds of virtual time — the hook the experiments use to
// advance the PowerSensor3 in lockstep.
func Run(d *ssd.Disk, job Job, onTick func(now time.Duration)) Result {
	if job.IODepth <= 0 {
		job.IODepth = 1
	}
	if job.ReportGap <= 0 {
		job.ReportGap = time.Second
	}
	rnd := rng.New(job.Seed ^ 0x5eed)

	cfg := d.Config()
	pagesPerReq := job.BlockKiB * 1024 / cfg.PageBytes
	if pagesPerReq < 1 {
		pagesPerReq = 1
	}
	maxStart := cfg.LogicalPages - pagesPerReq

	start := d.Now()
	deadline := start + job.Runtime

	// The queue holds the completion times of outstanding requests; the
	// submission loop keeps IODepth requests in flight, submitting the next
	// when the earliest completes (io_uring poll-mode behaviour).
	type slot struct{ done time.Duration }
	queue := make([]slot, 0, job.IODepth)

	res := Result{Job: job}
	seqCursor := 0
	nextReport := start + job.ReportGap
	lastTick := start
	var windowBytes int64

	submit := func(at time.Duration) slot {
		var page int
		switch job.Pattern {
		case RandRead, RandWrite:
			page = rnd.Intn(maxStart + 1)
		default:
			page = seqCursor
			seqCursor += pagesPerReq
			if seqCursor > maxStart {
				seqCursor = 0
			}
		}
		comp := d.Submit(ssd.Request{
			Write:  job.Pattern == RandWrite || job.Pattern == SeqWrite,
			Page:   page,
			Pages:  pagesPerReq,
			Submit: at,
		})
		return slot{done: comp.Done}
	}

	// Prime the queue.
	for i := 0; i < job.IODepth; i++ {
		queue = append(queue, submit(start))
	}

	now := start
	for now < deadline {
		// Find the earliest completion.
		idx := 0
		for i := 1; i < len(queue); i++ {
			if queue[i].done < queue[idx].done {
				idx = i
			}
		}
		now = queue[idx].done
		d.Advance(now)
		res.BytesMoved += int64(pagesPerReq * cfg.PageBytes)
		windowBytes += int64(pagesPerReq * cfg.PageBytes)
		res.IOPS++

		// Reporting and tick callbacks.
		for now >= nextReport {
			res.SeriesTimes = append(res.SeriesTimes, (nextReport - start).Seconds())
			res.SeriesMiBps = append(res.SeriesMiBps,
				float64(windowBytes)/job.ReportGap.Seconds()/(1024*1024))
			windowBytes = 0
			nextReport += job.ReportGap
		}
		if onTick != nil && now-lastTick >= 2*time.Millisecond {
			onTick(now)
			lastTick = now
		}

		if now >= deadline {
			break
		}
		queue[idx] = submit(now)
	}

	res.Elapsed = now - start
	if res.Elapsed > 0 {
		res.MeanMiBps = float64(res.BytesMoved) / res.Elapsed.Seconds() / (1024 * 1024)
		res.IOPS /= res.Elapsed.Seconds()
	}
	if onTick != nil {
		onTick(now)
	}
	return res
}

// PreconditionSequential fills the drive with 128 KiB sequential writes —
// the state for the read experiment: every logical extent maps to intact
// flash pages. Requests are chained at queue depth 1, so the drive's clock
// advances through the fill as it would on a real system.
func PreconditionSequential(d *ssd.Disk) {
	cfg := d.Config()
	fillReq := 128 * 1024 / cfg.PageBytes
	for p := 0; p+fillReq <= cfg.LogicalPages; p += fillReq {
		c := d.Submit(ssd.Request{Write: true, Page: p, Pages: fillReq, Submit: d.Now()})
		d.Advance(c.Done)
	}
}

// Precondition prepares the drive the way the paper does before the write
// experiment (Section V-C): format (fresh mapping), fill sequentially with
// 128 KiB writes, then issue random 4 KiB writes until the FTL reaches
// steady-state garbage collection.
func Precondition(d *ssd.Disk, seed uint64) {
	PreconditionSequential(d)
	rnd := rng.New(seed ^ 0xfeed)
	churn := d.Config().LogicalPages / 2
	for i := 0; i < churn; i++ {
		page := rnd.Intn(d.Config().LogicalPages)
		c := d.Submit(ssd.Request{Write: true, Page: page, Pages: 1, Submit: d.Now()})
		d.Advance(c.Done)
	}
	// Let outstanding flash work and the SLC cache drain before the
	// measured phase begins.
	d.DrainSLC(d.Now() + time.Hour)
}
