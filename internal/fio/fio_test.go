package fio

import (
	"testing"
	"time"

	"repro/internal/ssd"
	"repro/internal/stats"
)

func smallDisk(seed uint64) *ssd.Disk {
	cfg := ssd.Samsung980Pro()
	cfg.LogicalPages = 32 * 1024 // 128 MiB for fast tests
	cfg.PagesPerBlock = 64
	cfg.SLCCachePages = 4 * 1024
	return ssd.New(cfg, seed)
}

func TestRandReadProducesBandwidth(t *testing.T) {
	d := smallDisk(1)
	Precondition(d, 1)
	res := Run(d, Job{Pattern: RandRead, BlockKiB: 128, IODepth: 8, Runtime: 2 * time.Second, Seed: 1}, nil)
	if res.MeanMiBps <= 0 {
		t.Fatal("no bandwidth")
	}
	if res.BytesMoved == 0 {
		t.Fatal("no data moved")
	}
}

// Fig. 12a's premise: bandwidth rises with request size until saturation.
func TestReadBandwidthRisesWithRequestSize(t *testing.T) {
	var prev float64
	for i, kib := range []int{4, 64, 1024} {
		d := smallDisk(2)
		PreconditionSequential(d)
		res := Run(d, Job{Pattern: RandRead, BlockKiB: kib, IODepth: 8, Runtime: time.Second, Seed: 3}, nil)
		if i > 0 && res.MeanMiBps <= prev {
			t.Fatalf("bandwidth at %d KiB (%v) not above %v", kib, res.MeanMiBps, prev)
		}
		prev = res.MeanMiBps
	}
}

func TestLargeReadsApproachLinkCeiling(t *testing.T) {
	d := smallDisk(3)
	PreconditionSequential(d)
	res := Run(d, Job{Pattern: RandRead, BlockKiB: 4096, IODepth: 8, Runtime: time.Second, Seed: 4}, nil)
	cfg := d.Config()
	if res.MeanMiBps < cfg.HostLinkMiBps*0.5 {
		t.Fatalf("4 MiB reads reach only %v MiB/s of %v link", res.MeanMiBps, cfg.HostLinkMiBps)
	}
	if res.MeanMiBps > cfg.HostLinkMiBps*1.05 {
		t.Fatalf("bandwidth %v exceeds the link ceiling", res.MeanMiBps)
	}
}

// Fig. 12b's premise: steady-state random-write bandwidth is variable.
func TestRandomWriteVariability(t *testing.T) {
	d := smallDisk(4)
	Precondition(d, 4)
	res := Run(d, Job{Pattern: RandWrite, BlockKiB: 4, IODepth: 8,
		Runtime: 20 * time.Second, Seed: 5, ReportGap: 500 * time.Millisecond}, nil)
	if len(res.SeriesMiBps) < 10 {
		t.Fatalf("only %d series points", len(res.SeriesMiBps))
	}
	s := stats.Summarize(res.SeriesMiBps)
	cv := s.Std / s.Mean
	if cv < 0.02 {
		t.Fatalf("write bandwidth too smooth (CV=%v); GC should cause variability", cv)
	}
	if d.Stats().WriteAmplification() <= 1.1 {
		t.Fatalf("WA=%v: steady-state random writes must amplify", d.Stats().WriteAmplification())
	}
}

func TestSeqReadFasterThanRandSmall(t *testing.T) {
	d1 := smallDisk(5)
	PreconditionSequential(d1)
	seq := Run(d1, Job{Pattern: SeqRead, BlockKiB: 4, IODepth: 8, Runtime: time.Second, Seed: 6}, nil)
	d2 := smallDisk(5)
	PreconditionSequential(d2)
	rnd := Run(d2, Job{Pattern: RandRead, BlockKiB: 4, IODepth: 8, Runtime: time.Second, Seed: 6}, nil)
	// Sequential 4 KiB reads hit consecutive pages that share flash pages.
	if seq.MeanMiBps < rnd.MeanMiBps {
		t.Fatalf("sequential (%v) slower than random (%v)", seq.MeanMiBps, rnd.MeanMiBps)
	}
}

func TestOnTickMonotonic(t *testing.T) {
	d := smallDisk(6)
	var last time.Duration = -1
	Run(d, Job{Pattern: RandWrite, BlockKiB: 4, IODepth: 4, Runtime: 200 * time.Millisecond, Seed: 7},
		func(now time.Duration) {
			if now < last {
				t.Fatalf("tick went backwards: %v after %v", now, last)
			}
			last = now
		})
	if last < 0 {
		t.Fatal("tick never called")
	}
}

func TestSeriesTimesAscending(t *testing.T) {
	d := smallDisk(7)
	Precondition(d, 7)
	res := Run(d, Job{Pattern: RandRead, BlockKiB: 64, IODepth: 4,
		Runtime: 3 * time.Second, Seed: 8}, nil)
	for i := 1; i < len(res.SeriesTimes); i++ {
		if res.SeriesTimes[i] <= res.SeriesTimes[i-1] {
			t.Fatal("series times not ascending")
		}
	}
}

func TestPreconditionFillsDrive(t *testing.T) {
	d := smallDisk(8)
	Precondition(d, 8)
	st := d.Stats()
	want := int64(d.Config().LogicalPages)
	if st.HostWritePages < want {
		t.Fatalf("precondition wrote %d pages, want ≥ %d", st.HostWritePages, want)
	}
}

func TestPatternString(t *testing.T) {
	if RandRead.String() != "randread" || RandWrite.String() != "randwrite" {
		t.Fatal("pattern names")
	}
	if SeqRead.String() != "read" || SeqWrite.String() != "write" {
		t.Fatal("sequential names")
	}
}

func BenchmarkFioRandRead128k(b *testing.B) {
	d := smallDisk(1)
	Precondition(d, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(d, Job{Pattern: RandRead, BlockKiB: 128, IODepth: 8,
			Runtime: 100 * time.Millisecond, Seed: uint64(i)}, nil)
	}
}
