package pipeline

import (
	"fmt"
	"math"
	"time"

	"repro/internal/source"
)

// RateLimit caps the delivered sample rate at maxHz: a sample passes only
// when at least 1/maxHz of virtual time elapsed since the last kept one,
// so a polled vendor meter can be ingested at a monitoring-friendly
// cadence without changing the backend. Markers on throttled samples
// reattach to the next kept sample (carrying across ReadInto boundaries
// if need be); only at station retirement can an owed mark be dropped,
// when the kept sample it is waiting for never arrives — the stream's
// delivery boundary, like Resample's open bin.
//
// The stage also accounts the sampling overhead the throttle exists to
// bound: the cumulative wall-clock time spent inside ReadInto — the cost
// of driving and polling the backend, the measurement's own footprint on
// the measured system (the RAPL-overhead concern) — is exposed through
// source.Overheader, published on fleet.Status as OverheadSeconds and
// exported as powersensor_source_overhead_seconds. With the simulated
// meters this measures the simulated poll-and-workload path, which is
// exactly where a real meter's syscall/SMBus cost would sit.
//
// Meta.RateHz is rewritten to the rate actually delivered, not maxHz
// itself: the throttle keeps every k-th sample of the inner grid where
// k = ceil(innerHz/maxHz), so the delivered rate is innerHz/k — equal to
// maxHz when maxHz divides the inner rate, lower when it does not (a
// 1 kHz meter limited to 999 Hz delivers 500 Hz: every other sample).
// Advertising the quantised rate keeps the fleet's block sizing and the
// exported powersensor_source_rate_hz honest. RateLimit panics on a
// non-positive maxHz.
func RateLimit(maxHz float64) Stage {
	if maxHz <= 0 {
		panic(fmt.Sprintf("pipeline: RateLimit needs a positive rate, got %v", maxHz))
	}
	return func(inner source.Source) source.Source {
		rate := maxHz
		if in := inner.Meta().RateHz; in > 0 {
			rate = in / math.Ceil(in/maxHz)
		}
		return &rateLimiter{
			wrap: wrap{inner: inner, meta: derive(inner, "ratelimit", rate)},
			min:  time.Duration(float64(time.Second) / maxHz),
		}
	}
}

type rateLimiter struct {
	wrap
	min       time.Duration // minimum virtual-time spacing of kept samples
	lastKept  time.Duration
	pendMarks int          // markers from throttled samples, owed to the next kept one
	in        source.Batch // reused scratch the inner source fills
	overhead  time.Duration
}

// ReadInto implements source.Source: the inner source fills the reused
// scratch batch, and samples respecting the minimum spacing copy through
// into the caller's columns. Like the Source it wraps, the stage is
// single-goroutine confined, so the overhead accumulator needs no atomics
// — the fleet reads it via Overhead under the same device mutex that
// serialises ReadInto.
func (l *rateLimiter) ReadInto(d time.Duration, b *source.Batch) error {
	began := time.Now()
	stride := len(l.meta.Channels)
	b.Reset(stride)
	err := l.inner.ReadInto(d, &l.in)
	in := &l.in
	n := in.Len()
	marks := in.Marks
	mk := 0
	for i := 0; i < n; i++ {
		owed := 0
		for mk < len(marks) && marks[mk] == i {
			owed++
			mk++
		}
		t := in.Time[i]
		if l.lastKept != 0 && t < l.lastKept+l.min {
			l.pendMarks += owed
			continue
		}
		b.Append(t, in.Chans[i*stride:(i+1)*stride], in.Total[i])
		for owed += l.pendMarks; owed > 0; owed-- {
			b.Mark()
		}
		l.pendMarks = 0
		l.lastKept = t
	}
	// One clock read feeds both accountings: the cumulative Overheader
	// counter and the stage's latency distribution.
	el := time.Since(began)
	l.overhead += el
	rateLimitHist.Record(el)
	return err
}

// Overhead implements source.Overheader with this stage's own
// accumulator. The window already spans the whole inner ReadInto, so it
// is not added to a deeper stage's accounting — nesting rate limiters
// reports the innermost work once, through the outermost counter.
func (l *rateLimiter) Overhead() time.Duration { return l.overhead }
