package pipeline

// Tests for the fault-injection stages: seed-pinned determinism (same
// seed, same inner stream, byte-identical faulted stream), each fault's
// transform semantics, marker survival through dropout compaction, and
// the steady-state zero-allocation contract with faults in the chain.

import (
	"math"
	"testing"
	"time"

	"repro/internal/source"
)

// faultedChain builds the five-fault reference chain over a fresh fake —
// every fault kind at once, seeds fixed, aggressive enough that each
// stage demonstrably transforms the stream.
func faultedChain() source.Source {
	raw := newFake(20000, func(i int) float64 { return 40 + float64(i%640)*0.1 })
	raw.markAt = map[int]bool{100: true, 500: true, 900: true}
	return Chain(raw,
		Dropout(0.3, 2*time.Millisecond, 11),
		Stuck(0.3, 2*time.Millisecond, 22),
		Spike(0.05, 10, 33),
		Skew(500),
		Jitter(5*time.Microsecond, 44),
	)
}

// TestFaultDeterminism is the reproducible-scenario contract: two chains
// built from the same seeds over the same inner stream deliver
// byte-identical faulted streams — timestamps, totals, channel rows and
// marker indices all equal, batch for batch, across uneven read slices.
func TestFaultDeterminism(t *testing.T) {
	a, b := faultedChain(), faultedChain()
	var ba, bb source.Batch
	slices := []time.Duration{
		7 * time.Millisecond, 500 * time.Microsecond, 13 * time.Millisecond,
		time.Millisecond, 21 * time.Millisecond,
	}
	for k := 0; k < 20; k++ {
		d := slices[k%len(slices)]
		a.ReadInto(d, &ba)
		b.ReadInto(d, &bb)
		if ba.Len() != bb.Len() {
			t.Fatalf("read %d: %d vs %d samples", k, ba.Len(), bb.Len())
		}
		for i := 0; i < ba.Len(); i++ {
			if ba.Time[i] != bb.Time[i] || ba.Total[i] != bb.Total[i] {
				t.Fatalf("read %d sample %d: (%v, %v) vs (%v, %v)",
					k, i, ba.Time[i], ba.Total[i], bb.Time[i], bb.Total[i])
			}
		}
		for i := range ba.Chans {
			if ba.Chans[i] != bb.Chans[i] {
				t.Fatalf("read %d: channel cell %d differs", k, i)
			}
		}
		if len(ba.Marks) != len(bb.Marks) {
			t.Fatalf("read %d: %d vs %d marks", k, len(ba.Marks), len(bb.Marks))
		}
		for i := range ba.Marks {
			if ba.Marks[i] != bb.Marks[i] {
				t.Fatalf("read %d: mark %d at %d vs %d", k, i, ba.Marks[i], bb.Marks[i])
			}
		}
	}
}

// TestDropoutCompaction pins the in-place compaction semantics against a
// clean twin of the same stream: every delivered sample is an unmodified
// raw sample, the dark windows' samples are exactly the missing ones, and
// markers survive if and only if their sample did — re-indexed to the
// compacted positions.
func TestDropoutCompaction(t *testing.T) {
	mk := map[int]bool{50: true, 250: true, 450: true, 650: true, 850: true}
	raw := newFake(20000, func(i int) float64 { return float64(i) })
	raw.markAt = mk
	ref := newFake(20000, func(i int) float64 { return float64(i) })
	ref.markAt = mk
	src := Chain(raw, Dropout(0.5, time.Millisecond, 7))

	var b, rb source.Batch
	src.ReadInto(50*time.Millisecond, &b)
	ref.ReadInto(50*time.Millisecond, &rb)
	if b.Len() == 0 || b.Len() >= rb.Len() {
		t.Fatalf("dropout delivered %d of %d samples — p=0.5 should drop some, not all",
			b.Len(), rb.Len())
	}

	// Raw totals are the 1-based sample ordinals, so each delivered total
	// identifies its raw sample: timestamps must match the raw stream's.
	refAt := make(map[float64]time.Duration, rb.Len())
	refMarked := make(map[float64]bool, len(mk))
	for i := 0; i < rb.Len(); i++ {
		refAt[rb.Total[i]] = rb.Time[i]
	}
	for _, m := range rb.Marks {
		refMarked[rb.Total[m]] = true
	}
	for i := 0; i < b.Len(); i++ {
		want, ok := refAt[b.Total[i]]
		if !ok || b.Time[i] != want {
			t.Fatalf("delivered sample %d (total %v at %v) is not a raw sample",
				i, b.Total[i], b.Time[i])
		}
	}
	// Marker survival: the delivered marks flag exactly the surviving
	// marked samples, at their compacted indices.
	marked := make(map[float64]bool, len(b.Marks))
	for _, m := range b.Marks {
		if m < 0 || m >= b.Len() {
			t.Fatalf("mark index %d outside the compacted batch (%d samples)", m, b.Len())
		}
		marked[b.Total[m]] = true
	}
	for i := 0; i < b.Len(); i++ {
		if refMarked[b.Total[i]] != marked[b.Total[i]] {
			t.Errorf("sample with total %v: marked in raw %v, in compacted %v",
				b.Total[i], refMarked[b.Total[i]], marked[b.Total[i]])
		}
	}
}

// TestDropoutTotalBlackout: p=1 blacks out every window — nothing is
// delivered, yet the source keeps its clock and energy accounting.
func TestDropoutTotalBlackout(t *testing.T) {
	src := Chain(newFake(20000, nil), Dropout(1, time.Millisecond, 1))
	var b source.Batch
	src.ReadInto(20*time.Millisecond, &b)
	if b.Len() != 0 || len(b.Marks) != 0 {
		t.Errorf("total blackout delivered %d samples, %d marks", b.Len(), len(b.Marks))
	}
	if src.Now() != 20*time.Millisecond {
		t.Errorf("clock = %v, want 20ms", src.Now())
	}
	if src.Joules() <= 0 {
		t.Error("energy truth lost with the dropped samples")
	}
}

// TestStuckRepeatsLastHealthy: with every window faulted after the first,
// the delivered stream repeats the last healthy sample's values while
// timestamps keep their native spacing — fake liveness.
func TestStuckRepeatsLastHealthy(t *testing.T) {
	raw := newFake(1000, func(i int) float64 { return float64(i) })
	src := Chain(raw, Stuck(1, time.Second, 3))
	var b source.Batch
	src.ReadInto(10*time.Millisecond, &b)
	if b.Len() != 10 {
		t.Fatalf("%d samples, want 10", b.Len())
	}
	// p=1: every window is faulted. The very first sample primes the hold
	// (nothing to repeat before it), so every later sample repeats it.
	for i := 1; i < b.Len(); i++ {
		if b.Total[i] != b.Total[0] {
			t.Errorf("sample %d total %v, want stuck at %v", i, b.Total[i], b.Total[0])
		}
		row, first := b.Row(i), b.Row(0)
		for m := range row {
			if row[m] != first[m] {
				t.Errorf("sample %d channel %d = %v, want %v", i, m, row[m], first[m])
			}
		}
		if b.Time[i] != b.Time[i-1]+time.Millisecond {
			t.Errorf("stuck stream lost its native spacing at %d", i)
		}
	}
}

// TestSpikeScalesEverySample: p=1 glitches every sample by mag — totals
// and rows scale together, and the backend's energy stays untouched.
func TestSpikeScalesEverySample(t *testing.T) {
	raw := newFake(1000, func(int) float64 { return 100 })
	ref := newFake(1000, func(int) float64 { return 100 })
	src := Chain(raw, Spike(1, 2.5, 9))
	var b, rb source.Batch
	src.ReadInto(10*time.Millisecond, &b)
	ref.ReadInto(10*time.Millisecond, &rb)
	for i := 0; i < b.Len(); i++ {
		if b.Total[i] != 2.5*rb.Total[i] {
			t.Errorf("sample %d total %v, want %v", i, b.Total[i], 2.5*rb.Total[i])
		}
		row, rrow := b.Row(i), rb.Row(i)
		for m := range row {
			if row[m] != 2.5*rrow[m] {
				t.Errorf("sample %d channel %d not scaled", i, m)
			}
		}
	}
	if src.Joules() != ref.Joules() {
		t.Errorf("glitches changed energy truth: %v vs %v", src.Joules(), ref.Joules())
	}
}

// TestSkewStretchesClock: timestamps and Now stretch together by the ppm
// factor — one coherent wrong clock.
func TestSkewStretchesClock(t *testing.T) {
	src := Chain(newFake(1000, nil), Skew(1000)) // 0.1% fast
	var b source.Batch
	src.ReadInto(time.Second, &b)
	if b.Len() != 1000 {
		t.Fatalf("%d samples", b.Len())
	}
	// Raw sample i+1 lands at (i+1) ms; skewed by ×1.001.
	for i := 0; i < b.Len(); i += 111 {
		raw := time.Duration(i+1) * time.Millisecond
		want := raw + time.Duration(float64(raw)*1e-3)
		if b.Time[i] != want {
			t.Errorf("sample %d at %v, want %v", i, b.Time[i], want)
		}
	}
	wantNow := time.Second + time.Duration(float64(time.Second)*1e-3)
	if src.Now() != wantNow {
		t.Errorf("Now = %v, want %v (skewed consistently)", src.Now(), wantNow)
	}
}

// TestJitterMonotoneNoise: timestamps wobble but never run backwards,
// across batch boundaries; values are untouched.
func TestJitterMonotoneNoise(t *testing.T) {
	raw := newFake(20000, func(int) float64 { return 60 })
	src := Chain(raw, Jitter(10*time.Microsecond, 5))
	var b source.Batch
	last := time.Duration(-1)
	var moved bool
	for k := 0; k < 10; k++ {
		src.ReadInto(10*time.Millisecond, &b)
		for i := 0; i < b.Len(); i++ {
			if b.Time[i] < last {
				t.Fatalf("jittered stream ran backwards: %v after %v", b.Time[i], last)
			}
			last = b.Time[i]
			if b.Total[i] != 60 {
				t.Fatalf("jitter touched a power value: %v", b.Total[i])
			}
			// Native grid is exact 50 µs multiples; any off-grid stamp
			// proves the noise was applied.
			if b.Time[i]%(50*time.Microsecond) != 0 {
				moved = true
			}
		}
	}
	if !moved {
		t.Error("no timestamp left the native grid — jitter did nothing")
	}
}

// TestFaultChainSteadyStateZeroAlloc extends the acceptance zero-alloc
// guard: a chain with every fault stage in it still allocates nothing in
// steady state.
func TestFaultChainSteadyStateZeroAlloc(t *testing.T) {
	src := faultedChain()
	var b source.Batch
	src.ReadInto(200*time.Millisecond, &b) // warm
	allocs := testing.AllocsPerRun(100, func() {
		src.ReadInto(5*time.Millisecond, &b)
	})
	if allocs != 0 {
		t.Errorf("steady-state faulted ReadInto allocates %v per call, want 0", allocs)
	}
}

// TestFaultedEnergyConservation: dropout and stuck overlay values, but
// the backend's Joules counter remains the truth the chain serves.
func TestFaultedEnergyConservation(t *testing.T) {
	raw := newFake(20000, func(i int) float64 { return 40 + float64(i%640)*0.1 })
	ref := newFake(20000, func(i int) float64 { return 40 + float64(i%640)*0.1 })
	src := Chain(raw, Dropout(0.5, time.Millisecond, 3), Stuck(0.5, time.Millisecond, 4))
	var b source.Batch
	for k := 0; k < 10; k++ {
		src.ReadInto(50*time.Millisecond, &b)
		ref.ReadInto(50*time.Millisecond, &b)
	}
	if math.Abs(src.Joules()-ref.Joules()) > 1e-9 {
		t.Errorf("faulted chain's Joules %v, want the backend truth %v",
			src.Joules(), ref.Joules())
	}
}
