package pipeline

import (
	"fmt"
	"time"

	"repro/internal/source"
)

// Resample converts the inner source's stream to outHz by energy-
// conserving bin averaging: virtual time is cut into fixed bins of
// 1/outHz, every inner sample lands in the bin covering its timestamp,
// and each non-empty bin emits one sample at the bin's right edge whose
// per-channel and summed power are the mean over the bin — so the
// integral of power over time (the energy) is preserved, which the
// delegated Joules counter states exactly. Time-synced markers are
// remapped, not averaged away: every marker on an inner sample reattaches
// to the resampled sample of its bin, so no mark in the delivered stream
// is lost (a bin holding several marked samples emits one sample carrying
// that many marks). Marks share the stream's delivery boundary: at
// station retirement, a mark inside the still-open bin is dropped with
// that bin's samples — the same granularity at which the fleet's own
// drain discards samples its source never delivered.
//
// Downsampling is the intended use (a 1 kHz view of a 20 kHz rig). An
// outHz above the inner rate degenerates to pass-through with timestamps
// snapped to bin edges — allowed, but it invents no samples.
//
// Resample panics on a non-positive outHz: a construction-time wiring
// error, like source.NewPolled's validation.
func Resample(outHz float64) Stage {
	if outHz <= 0 {
		panic(fmt.Sprintf("pipeline: Resample needs a positive rate, got %v", outHz))
	}
	return func(inner source.Source) source.Source {
		return &resampler{
			wrap:   wrap{inner: inner, meta: derive(inner, "resample", outHz)},
			period: time.Duration(float64(time.Second) / outHz),
		}
	}
}

type resampler struct {
	wrap
	period time.Duration // output bin width
	in     source.Batch  // reused scratch the inner source fills

	// In-flight bin: right edge (0 = none open), sample count, running
	// per-channel and summed-power sums, markers seen. Fixed-size
	// accumulators, persisted across ReadInto calls so bins spanning a
	// slice boundary close correctly on the next read.
	binEnd  time.Duration
	n       int
	sums    [source.MaxChannels]float64
	totSum  float64
	marks   int
	scratch [source.MaxChannels]float64 // emit's per-channel means
}

// ReadInto implements source.Source: it advances the inner source into
// the reused scratch batch, folds every sample into its bin, and appends
// one averaged sample per completed bin into b. A bin completes when a
// sample beyond its right edge arrives or when the source's clock passes
// the edge (no future sample can land in it), so the delivered stream
// lags the raw one by at most one bin.
func (r *resampler) ReadInto(d time.Duration, b *source.Batch) error {
	began := time.Now()
	stride := len(r.meta.Channels)
	b.Reset(stride)
	err := r.inner.ReadInto(d, &r.in)
	in := &r.in
	n := in.Len()
	marks := in.Marks
	mk := 0
	for i := 0; i < n; i++ {
		t := in.Time[i]
		if r.binEnd != 0 && t > r.binEnd {
			r.emit(b, stride)
		}
		if r.binEnd == 0 {
			// Right edge of the bin covering t; a sample exactly on an
			// edge belongs to the bin ending there.
			r.binEnd = (t + r.period - 1) / r.period * r.period
		}
		row := in.Chans[i*stride : (i+1)*stride]
		for m, w := range row {
			r.sums[m] += w
		}
		r.totSum += in.Total[i]
		r.n++
		for mk < len(marks) && marks[mk] == i {
			r.marks++
			mk++
		}
	}
	if r.binEnd != 0 && r.binEnd <= r.inner.Now() {
		r.emit(b, stride)
	}
	resampleHist.Record(time.Since(began))
	return err
}

// emit closes the in-flight bin into b: one sample at the bin edge
// carrying the bin means, re-marked once per marker the bin absorbed.
func (r *resampler) emit(b *source.Batch, stride int) {
	if r.n == 0 {
		r.binEnd = 0
		return
	}
	inv := 1 / float64(r.n)
	for m := 0; m < stride; m++ {
		r.scratch[m] = r.sums[m] * inv
		r.sums[m] = 0
	}
	b.Append(r.binEnd, r.scratch[:stride], r.totSum*inv)
	for ; r.marks > 0; r.marks-- {
		b.Mark()
	}
	r.totSum = 0
	r.n = 0
	r.binEnd = 0
}
