package pipeline

import (
	"math"
	"testing"
	"time"

	"repro/internal/source"
)

// fake is a deterministic two-channel source: sample i (1-based) carries
// summed power watt(i), split 25/75 across the channels. Samples land on
// exact multiples of the period, so bin and spacing arithmetic in the
// stage tests is exact.
type fake struct {
	rate    float64
	now     time.Duration
	last    time.Duration
	count   int
	joule   float64
	markAt  map[int]bool // 1-based ordinals flagged as markers
	watt    func(i int) float64
	scratch [2]float64
}

func newFake(rate float64, watt func(int) float64) *fake {
	if watt == nil {
		watt = func(int) float64 { return 60 }
	}
	return &fake{rate: rate, watt: watt}
}

func (f *fake) Meta() source.Meta {
	return source.Meta{Backend: "fake", RateHz: f.rate, Channels: []string{"a", "b"}}
}
func (f *fake) Now() time.Duration { return f.now }

func (f *fake) ReadInto(d time.Duration, b *source.Batch) error {
	b.Reset(2)
	period := time.Duration(float64(time.Second) / f.rate)
	target := f.now + d
	f.now = target
	for t := f.last + period; t <= target; t += period {
		f.count++
		w := f.watt(f.count)
		f.scratch[0], f.scratch[1] = 0.25*w, 0.75*w
		b.Append(t, f.scratch[:], w)
		if f.markAt[f.count] {
			b.Mark()
		}
		f.joule += w * period.Seconds()
		f.last = t
	}
	return nil
}

func (f *fake) Joules() float64 { return f.joule }
func (f *fake) Resyncs() int    { return 0 }
func (f *fake) Close()          {}

func TestResamplePacingAndMeans(t *testing.T) {
	// 20 kHz ramp resampled to 1 kHz: each 1 ms bin averages exactly 20
	// consecutive raw samples.
	raw := newFake(20000, func(i int) float64 { return float64(i) })
	src := Chain(raw, Resample(1000))

	meta := src.Meta()
	if meta.Backend != "fake+resample" {
		t.Errorf("backend = %q", meta.Backend)
	}
	if meta.RateHz != 1000 {
		t.Errorf("rate = %v, want 1000", meta.RateHz)
	}
	if len(meta.Channels) != 2 {
		t.Errorf("channels = %v", meta.Channels)
	}

	var b source.Batch
	src.ReadInto(10*time.Millisecond, &b)
	if b.Len() != 10 {
		t.Fatalf("%d samples in 10ms at 1kHz, want 10", b.Len())
	}
	for i := 0; i < b.Len(); i++ {
		if want := time.Duration(i+1) * time.Millisecond; b.Time[i] != want {
			t.Errorf("sample %d at %v, want %v", i, b.Time[i], want)
		}
		// Bin i averages raw samples 20i+1..20i+20: mean = 20i + 10.5.
		want := float64(20*i) + 10.5
		if math.Abs(b.Total[i]-want) > 1e-9 {
			t.Errorf("sample %d total = %v, want %v", i, b.Total[i], want)
		}
		row := b.Row(i)
		if math.Abs(row[0]-0.25*want) > 1e-9 || math.Abs(row[1]-0.75*want) > 1e-9 {
			t.Errorf("sample %d row = %v, want %v split 25/75", i, row, want)
		}
	}
}

func TestResampleConservesEnergy(t *testing.T) {
	// The resampled stream's own integral (mean × bin width) must match
	// the raw stream's (sample × period), and Joules must delegate the
	// backend counter untouched.
	raw := newFake(20000, func(i int) float64 { return 40 + float64(i%640)*0.1 })
	ref := newFake(20000, func(i int) float64 { return 40 + float64(i%640)*0.1 })
	src := Chain(raw, Resample(1000))

	var b source.Batch
	var rawJ, resJ float64
	for k := 0; k < 40; k++ { // 2 s in uneven 50 ms slices
		ref.ReadInto(50*time.Millisecond, &b)
		for i := 0; i < b.Len(); i++ {
			rawJ += b.Total[i] / 20000
		}
		src.ReadInto(50*time.Millisecond, &b)
		for i := 0; i < b.Len(); i++ {
			resJ += b.Total[i] / 1000
		}
	}
	if diff := math.Abs(resJ-rawJ) / rawJ; diff > 0.01 {
		t.Errorf("resampled energy %v J vs raw %v J: %.2f%% apart", resJ, rawJ, 100*diff)
	}
	if src.Joules() != raw.Joules() {
		t.Errorf("Joules not delegated: %v vs %v", src.Joules(), raw.Joules())
	}
}

func TestResampleRemapsMarkers(t *testing.T) {
	// Raw samples 21 and 25 both land in the second 1 ms bin; the bin's
	// one output sample must carry both marks.
	raw := newFake(20000, nil)
	raw.markAt = map[int]bool{21: true, 25: true}
	src := Chain(raw, Resample(1000))
	var b source.Batch
	src.ReadInto(5*time.Millisecond, &b)
	if b.Len() != 5 {
		t.Fatalf("%d samples, want 5", b.Len())
	}
	if len(b.Marks) != 2 || b.Marks[0] != 1 || b.Marks[1] != 1 {
		t.Errorf("marks = %v, want [1 1] (two marks on output sample 1)", b.Marks)
	}
}

func TestResampleAcrossReadBoundaries(t *testing.T) {
	// Slices that do not divide the bin width: bins span ReadInto calls
	// and must still emit exactly once, in order, with nothing dropped.
	raw := newFake(20000, nil)
	src := Chain(raw, Resample(1000))
	var b source.Batch
	var times []time.Duration
	for src.Now() < 100*time.Millisecond {
		src.ReadInto(700*time.Microsecond, &b)
		times = append(times, b.Time[:b.Len()]...)
	}
	if len(times) < 99 || len(times) > 101 {
		t.Fatalf("%d resampled samples over ~100ms at 1kHz", len(times))
	}
	for i, ts := range times {
		if want := time.Duration(i+1) * time.Millisecond; ts != want {
			t.Fatalf("sample %d at %v, want %v", i, ts, want)
		}
	}
}

func TestCalibrate(t *testing.T) {
	raw := newFake(1000, func(int) float64 { return 100 }) // rows (25, 75)
	raw.markAt = map[int]bool{3: true}
	src := Chain(raw, Calibrate(2, 1))
	if got := src.Meta().Backend; got != "fake+calib" {
		t.Errorf("backend = %q", got)
	}
	var b source.Batch
	src.ReadInto(10*time.Millisecond, &b)
	if b.Len() != 10 {
		t.Fatalf("%d samples", b.Len())
	}
	for i := 0; i < b.Len(); i++ {
		row := b.Row(i)
		if row[0] != 2*25+1 || row[1] != 2*75+1 {
			t.Fatalf("sample %d row = %v, want [51 151]", i, row)
		}
		if b.Total[i] != 202 {
			t.Fatalf("sample %d total = %v, want 202", i, b.Total[i])
		}
	}
	// Markers pass through with their indices unchanged.
	if len(b.Marks) != 1 || b.Marks[0] != 2 {
		t.Errorf("marks = %v, want [2]", b.Marks)
	}
	// Calibrated energy: 202 W over 10 ms.
	if want := 202 * 0.010; math.Abs(src.Joules()-want) > 1e-9 {
		t.Errorf("joules = %v, want %v", src.Joules(), want)
	}
}

func TestCalibratePerChannel(t *testing.T) {
	raw := newFake(1000, func(int) float64 { return 100 }) // rows (25, 75)
	src := Chain(raw, CalibratePerChannel([]float64{1, 0.5}, []float64{10, 0}))
	var b source.Batch
	src.ReadInto(2*time.Millisecond, &b)
	row := b.Row(0)
	if row[0] != 35 || row[1] != 37.5 || b.Total[0] != 72.5 {
		t.Errorf("row = %v total = %v, want [35 37.5] 72.5", row, b.Total[0])
	}
}

func TestRateLimit(t *testing.T) {
	// 1 kHz throttled to 100 Hz: every 10th sample passes, and a marker
	// on a dropped sample reattaches to the next kept one.
	raw := newFake(1000, nil)
	raw.markAt = map[int]bool{3: true}
	src := Chain(raw, RateLimit(100))
	if got := src.Meta().RateHz; got != 100 {
		t.Errorf("rate = %v, want 100", got)
	}
	if got := src.Meta().Backend; got != "fake+ratelimit" {
		t.Errorf("backend = %q", got)
	}
	var b source.Batch
	src.ReadInto(100*time.Millisecond, &b)
	if b.Len() != 10 {
		t.Fatalf("%d samples kept in 100ms at 100Hz, want 10", b.Len())
	}
	for i := 1; i < b.Len(); i++ {
		if gap := b.Time[i] - b.Time[i-1]; gap < 10*time.Millisecond {
			t.Errorf("samples %d-%d only %v apart, want >= 10ms", i-1, i, gap)
		}
	}
	// Raw sample 3 (3 ms, dropped) marks the kept sample at 11 ms (index 1).
	if len(b.Marks) != 1 || b.Marks[0] != 1 {
		t.Errorf("marks = %v, want [1]", b.Marks)
	}
	// Sampling overhead accrued and surfaces through Overheader.
	o, ok := src.(source.Overheader)
	if !ok {
		t.Fatal("rate-limited source does not implement Overheader")
	}
	if o.Overhead() <= 0 {
		t.Error("no sampling overhead accounted after a read")
	}
}

func TestRateLimitQuantisedRate(t *testing.T) {
	// A limit that does not divide the inner grid: min spacing 1/999 s on
	// 1 ms sample instants keeps every OTHER sample, so the delivered —
	// and advertised — rate is 500 Hz, not 999.
	raw := newFake(1000, nil)
	src := Chain(raw, RateLimit(999))
	if got := src.Meta().RateHz; got != 500 {
		t.Errorf("rate = %v, want the quantised 500", got)
	}
	var b source.Batch
	src.ReadInto(100*time.Millisecond, &b)
	if b.Len() != 50 {
		t.Errorf("%d samples kept in 100ms, want 50", b.Len())
	}
}

func TestRateLimitAboveNativeRate(t *testing.T) {
	// A limit above the native rate passes everything through and keeps
	// the native rate in Meta.
	raw := newFake(1000, nil)
	src := Chain(raw, RateLimit(1e6))
	if got := src.Meta().RateHz; got != 1000 {
		t.Errorf("rate = %v, want 1000", got)
	}
	var b source.Batch
	src.ReadInto(50*time.Millisecond, &b)
	if b.Len() != 50 {
		t.Errorf("%d samples, want all 50", b.Len())
	}
}

func TestSmooth(t *testing.T) {
	// A step input: the EWMA primes on the first sample, then converges
	// monotonically toward the new level without overshooting.
	raw := newFake(1000, func(i int) float64 {
		if i <= 10 {
			return 10
		}
		return 110
	})
	src := Chain(raw, Smooth(5*time.Millisecond))
	if got := src.Meta().Backend; got != "fake+smooth" {
		t.Errorf("backend = %q", got)
	}
	var b source.Batch
	src.ReadInto(100*time.Millisecond, &b)
	if b.Len() != 100 {
		t.Fatalf("%d samples", b.Len())
	}
	for i := 0; i < 10; i++ {
		if b.Total[i] != 10 {
			t.Fatalf("pre-step sample %d = %v, want 10", i, b.Total[i])
		}
	}
	for i := 11; i < 100; i++ {
		if b.Total[i] <= b.Total[i-1] || b.Total[i] > 110 {
			t.Fatalf("post-step sample %d = %v after %v: not monotone toward 110",
				i, b.Total[i], b.Total[i-1])
		}
	}
	// 90 samples is 18 time constants: essentially settled.
	if got := b.Total[99]; got < 109 {
		t.Errorf("settled value %v, want > 109", got)
	}
	// Channels smooth consistently with the total (same 25/75 split).
	row := b.Row(99)
	if math.Abs(row[0]-0.25*b.Total[99]) > 1e-9 {
		t.Errorf("channel 0 = %v, want %v", row[0], 0.25*b.Total[99])
	}
}

func TestChainComposition(t *testing.T) {
	raw := newFake(20000, nil)
	src := Chain(raw, Resample(1000), Calibrate(0.98, 0), Smooth(10*time.Millisecond))
	meta := src.Meta()
	if meta.Backend != "fake+resample+calib+smooth" {
		t.Errorf("backend = %q", meta.Backend)
	}
	if meta.RateHz != 1000 {
		t.Errorf("rate = %v, want 1000 (resample's, carried through)", meta.RateHz)
	}
	// No stages: identity.
	if got := Chain(raw); got != source.Source(raw) {
		t.Error("empty Chain did not return the source unchanged")
	}
	// Overhead forwards through stages stacked on a RateLimit.
	src2 := Chain(newFake(1000, nil), RateLimit(100), Smooth(50*time.Millisecond))
	var b source.Batch
	src2.ReadInto(time.Second, &b)
	if o, ok := src2.(source.Overheader); !ok || o.Overhead() <= 0 {
		t.Error("overhead accounting did not forward through the chain top")
	}
}

func TestChainSteadyStateZeroAlloc(t *testing.T) {
	// The acceptance contract: steady-state reads through a three-stage
	// chain allocate nothing once batch capacities are warm.
	src := Chain(newFake(20000, nil),
		Resample(1000), Calibrate(0.98, 0.25), Smooth(5*time.Millisecond))
	var b source.Batch
	src.ReadInto(200*time.Millisecond, &b) // warm every stage's arrays
	allocs := testing.AllocsPerRun(100, func() {
		src.ReadInto(5*time.Millisecond, &b)
	})
	if allocs != 0 {
		t.Errorf("steady-state chained ReadInto allocates %v per call, want 0", allocs)
	}
}

// TestStageHistsRecord: every stage kind records its ReadInto latency
// into its process-wide histogram. The hists are shared package state, so
// the test asserts deltas, not absolute counts.
func TestStageHistsRecord(t *testing.T) {
	hists := ReadHists()
	before := make(map[string]uint64, len(hists))
	for _, sh := range hists {
		before[sh.Stage] = sh.Hist.Count()
	}
	src := Chain(newFake(20000, nil),
		Dropout(0.1, time.Millisecond, 1), Stuck(0.1, time.Millisecond, 2),
		Spike(0.01, 10, 3), Skew(100), Jitter(10*time.Microsecond, 4),
		Resample(1000), Calibrate(0.98, 0), RateLimit(100), Smooth(50*time.Millisecond))
	var b source.Batch
	src.ReadInto(100*time.Millisecond, &b)
	for _, sh := range hists {
		if got := sh.Hist.Count(); got <= before[sh.Stage] {
			t.Errorf("stage %q histogram did not advance (%d -> %d)",
				sh.Stage, before[sh.Stage], got)
		}
	}
	// The stage set matches the backend tags stages append to Meta.
	want := []string{"resample", "calib", "ratelimit", "smooth",
		"dropout", "stuck", "spike", "skew", "jitter"}
	if len(hists) != len(want) {
		t.Fatalf("ReadHists returned %d stages, want %d", len(hists), len(want))
	}
	for i, w := range want {
		if hists[i].Stage != w {
			t.Errorf("stage %d = %q, want %q", i, hists[i].Stage, w)
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"resample-zero":  func() { Resample(0) },
		"ratelimit-neg":  func() { RateLimit(-1) },
		"smooth-zero":    func() { Smooth(0) },
		"calib-mismatch": func() { CalibratePerChannel([]float64{1}, []float64{0, 0}) },
		"calib-too-many": func() { CalibratePerChannel(make([]float64, 9), make([]float64, 9)) },
		"dropout-p":      func() { Dropout(1.5, time.Millisecond, 1) },
		"dropout-dur":    func() { Dropout(0.5, 0, 1) },
		"stuck-p":        func() { Stuck(-0.1, time.Millisecond, 1) },
		"spike-mag-one":  func() { Spike(0.5, 1, 1) },
		"spike-mag-neg":  func() { Spike(0.5, -2, 1) },
		"skew-too-fast":  func() { Skew(1e6) },
		"jitter-zero":    func() { Jitter(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on invalid construction", name)
				}
			}()
			fn()
		}()
	}
}
