package pipeline

import (
	"fmt"
	"time"

	"repro/internal/source"
)

// Calibrate overlays a uniform gain/offset on every channel:
// w' = gain*w + offset per channel, with the summed-power column
// recomputed from the calibrated rows. It is the software counterpart of
// re-trimming a sensor's current/voltage gains (the paper's Section III-C
// calibration) without reflashing: the raw station keeps serving the
// factory trim while a derived view serves the corrected stream.
//
// Because a gain/offset overlay rescales energy too, Calibrate does not
// delegate Joules: it integrates the calibrated summed power over the
// inter-sample gaps itself, so Status.Joules of a calibrated station
// reports calibrated energy.
func Calibrate(gain, offset float64) Stage {
	gains := [source.MaxChannels]float64{}
	offs := [source.MaxChannels]float64{}
	for m := range gains {
		gains[m], offs[m] = gain, offset
	}
	return newCalibrate(gains, offs)
}

// CalibratePerChannel is Calibrate with one gain/offset pair per channel
// (by channel index; channels beyond the slices keep identity). It panics
// when more than source.MaxChannels pairs are given or the slice lengths
// differ — construction-time wiring errors.
func CalibratePerChannel(gain, offset []float64) Stage {
	if len(gain) != len(offset) {
		panic(fmt.Sprintf("pipeline: CalibratePerChannel has %d gains but %d offsets",
			len(gain), len(offset)))
	}
	if len(gain) > source.MaxChannels {
		panic(fmt.Sprintf("pipeline: CalibratePerChannel has %d pairs, max %d",
			len(gain), source.MaxChannels))
	}
	gains := [source.MaxChannels]float64{}
	offs := [source.MaxChannels]float64{}
	for m := range gains {
		gains[m] = 1
	}
	copy(gains[:], gain)
	copy(offs[:], offset)
	return newCalibrate(gains, offs)
}

func newCalibrate(gains, offs [source.MaxChannels]float64) Stage {
	return func(inner source.Source) source.Source {
		return &calibrator{
			wrap:  wrap{inner: inner, meta: derive(inner, "calib", 0)},
			gains: gains,
			offs:  offs,
			lastT: inner.Now(),
		}
	}
}

type calibrator struct {
	wrap
	gains, offs [source.MaxChannels]float64
	lastT       time.Duration // timestamp of the last calibrated sample
	joule       float64       // calibrated energy integral
}

// ReadInto implements source.Source: the inner source fills the caller's
// batch directly and the overlay is applied in place in the batch fold —
// no scratch batch, no copies, no allocations. An inner error passes
// through after the samples that did arrive are calibrated, so a partial
// batch stays consistent with the delivered stream.
func (c *calibrator) ReadInto(d time.Duration, b *source.Batch) error {
	began := time.Now()
	err := c.inner.ReadInto(d, b)
	stride := b.Stride()
	n := b.Len()
	for i := 0; i < n; i++ {
		row := b.Chans[i*stride : (i+1)*stride]
		var total float64
		for m, w := range row {
			w = c.gains[m]*w + c.offs[m]
			row[m] = w
			total += w
		}
		b.Total[i] = total
		t := b.Time[i]
		c.joule += total * (t - c.lastT).Seconds()
		c.lastT = t
	}
	calibHist.Record(time.Since(began))
	return err
}

// Joules implements source.Source with the calibrated energy integral,
// accumulated at the delivered rate (the same native-rate integration a
// vendor counter performs).
func (c *calibrator) Joules() float64 { return c.joule }
