// Fault-injection stages: reproducible measurement-quality failures on
// the columnar Batch path. Real power instrumentation fails in
// well-documented ways — the POWER9 OCC evaluation (PAPERS.md) catalogs
// stale/stuck readings, glitch spikes and timestamp skew in production
// firmware — and this file injects exactly those modes between any two
// pipeline stages, so the fleet's health watchdog (internal/fleet) can be
// exercised against failures that replay identically from a seed.
//
// Every fault is deterministic and seed-pinned: randomness comes from one
// internal/rng source per stage instance, consumed in stream order (one
// draw per fault window for Dropout/Stuck, one per sample for Spike and
// Jitter), so the same seed over the same inner stream yields a
// byte-identical faulted stream — scenarios are regression tests, not
// dice rolls. Like every other stage, the faults transform the caller's
// batch in place and allocate nothing in steady state.
package pipeline

import (
	"fmt"
	"time"

	"repro/internal/rng"
	"repro/internal/source"
)

// faultWindows cuts virtual time into fixed dur-wide windows anchored at
// t=0 and decides per window — one rng draw each, in order — whether the
// window is faulted. Windows are consumed monotonically as sample
// timestamps cross their right edges, so the decision sequence depends
// only on the seed and the window grid, never on batch boundaries.
type faultWindows struct {
	rng    *rng.Source
	p      float64
	dur    time.Duration
	winEnd time.Duration // right edge of the current window
	active bool          // current window is faulted
}

// faultedAt reports whether the window covering t is faulted, advancing
// (and drawing) any windows t has moved past. Timestamps must be
// non-decreasing across calls — the Source contract.
func (f *faultWindows) faultedAt(t time.Duration) bool {
	for t >= f.winEnd {
		f.winEnd += f.dur
		f.active = f.rng.Float64() < f.p
	}
	return f.active
}

// Dropout models a source that goes silent in bursts — a wedged DMA, a
// dropped USB transfer, a poll that timed out: virtual time is cut into
// dur-wide windows and each window independently goes dark with
// probability p, deleting every sample inside it from the delivered
// stream. Timestamps keep their native spacing outside the dark windows,
// so the consumer sees real gaps (missed block deadlines), which is what
// the fleet watchdog's gap detection keys on. Markers on dropped samples
// are lost with them — the physical semantics of a dead link — while
// markers on surviving samples are re-indexed to their new positions.
//
// Meta.RateHz deliberately stays the inner source's nominal rate: the
// backend still claims its native cadence, the samples just never arrive.
// That mismatch is the fault. Joules delegates to the backend — energy
// was consumed whether or not the link delivered the samples.
//
// Dropout panics when p is outside [0, 1] or dur is not positive.
func Dropout(p float64, dur time.Duration, seed uint64) Stage {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("pipeline: Dropout needs p in [0, 1], got %v", p))
	}
	if dur <= 0 {
		panic(fmt.Sprintf("pipeline: Dropout needs a positive window, got %v", dur))
	}
	return func(inner source.Source) source.Source {
		return &dropout{
			wrap: wrap{inner: inner, meta: derive(inner, "dropout", 0)},
			win:  faultWindows{rng: rng.New(seed), p: p, dur: dur},
		}
	}
}

type dropout struct {
	wrap
	win faultWindows
}

// ReadInto implements source.Source: the inner source fills the caller's
// batch and the dark windows' samples are compacted away in place —
// surviving samples slide down, marker indices are remapped to the
// compacted positions, and the columns are truncated. No scratch batch,
// no allocations.
func (f *dropout) ReadInto(d time.Duration, b *source.Batch) error {
	began := time.Now()
	err := f.inner.ReadInto(d, b)
	n := b.Len()
	stride := b.Stride()
	marks := b.Marks
	mk, marksW := 0, 0
	w := 0
	for i := 0; i < n; i++ {
		if f.win.faultedAt(b.Time[i]) {
			for mk < len(marks) && marks[mk] == i {
				mk++ // marker on a dropped sample: lost with it
			}
			continue
		}
		if w != i {
			b.Time[w] = b.Time[i]
			b.Total[w] = b.Total[i]
			copy(b.Chans[w*stride:(w+1)*stride], b.Chans[i*stride:(i+1)*stride])
		}
		for mk < len(marks) && marks[mk] == i {
			marks[marksW] = w
			marksW++
			mk++
		}
		w++
	}
	b.Time = b.Time[:w]
	b.Total = b.Total[:w]
	b.Chans = b.Chans[:w*stride]
	b.Marks = marks[:marksW]
	dropoutHist.Record(time.Since(began))
	return err
}

// Stuck models a flatlined sensor — a register that stopped updating, an
// ADC repeating its last conversion: within each faulted dur-wide window
// (probability p, same windowing as Dropout) every sample's power values
// are replaced by an exact repeat of the last healthy sample's, while
// timestamps keep advancing normally. The delivered stream looks alive —
// right rate, right timing — but carries no information, the failure mode
// the fleet watchdog's flatline detection (runs of bit-identical totals)
// exists to catch. A window opening before any healthy sample has been
// seen passes through unchanged; there is nothing to repeat yet.
//
// Stuck panics when p is outside [0, 1] or dur is not positive.
func Stuck(p float64, dur time.Duration, seed uint64) Stage {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("pipeline: Stuck needs p in [0, 1], got %v", p))
	}
	if dur <= 0 {
		panic(fmt.Sprintf("pipeline: Stuck needs a positive window, got %v", dur))
	}
	return func(inner source.Source) source.Source {
		return &stuck{
			wrap: wrap{inner: inner, meta: derive(inner, "stuck", 0)},
			win:  faultWindows{rng: rng.New(seed), p: p, dur: dur},
		}
	}
}

type stuck struct {
	wrap
	win    faultWindows
	primed bool
	held   [source.MaxChannels]float64 // last healthy sample's row
	heldT  float64                     // last healthy sample's total
}

// ReadInto implements source.Source: an in-place overlay on the caller's
// batch, repeating the held values through faulted windows and refreshing
// them from healthy samples.
func (f *stuck) ReadInto(d time.Duration, b *source.Batch) error {
	began := time.Now()
	err := f.inner.ReadInto(d, b)
	n := b.Len()
	stride := b.Stride()
	for i := 0; i < n; i++ {
		row := b.Chans[i*stride : (i+1)*stride]
		if f.win.faultedAt(b.Time[i]) && f.primed {
			copy(row, f.held[:stride])
			b.Total[i] = f.heldT
			continue
		}
		copy(f.held[:stride], row)
		f.heldT = b.Total[i]
		f.primed = true
	}
	stuckHist.Record(time.Since(began))
	return err
}

// Spike models glitch outliers — a bus transient or conversion error
// scaling an isolated reading far off the trace: each delivered sample
// independently glitches with probability p, multiplying its total and
// every channel by mag. One uniform draw per sample keeps the stream
// seed-deterministic. Energy truth is untouched (Joules delegates): a
// misread sample does not change what the device consumed, which is
// exactly why a consumer should quarantine the outlier rather than
// integrate it.
//
// Spike panics when p is outside [0, 1] or mag is not positive. A mag
// below 1 models droop glitches; 1 is a no-op and also rejected.
func Spike(p, mag float64, seed uint64) Stage {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("pipeline: Spike needs p in [0, 1], got %v", p))
	}
	if mag <= 0 || mag == 1 {
		panic(fmt.Sprintf("pipeline: Spike needs a positive magnitude != 1, got %v", mag))
	}
	return func(inner source.Source) source.Source {
		return &spiker{
			wrap: wrap{inner: inner, meta: derive(inner, "spike", 0)},
			rng:  rng.New(seed),
			p:    p,
			mag:  mag,
		}
	}
}

type spiker struct {
	wrap
	rng *rng.Source
	p   float64
	mag float64
}

// ReadInto implements source.Source: an in-place overlay scaling the
// glitched samples' values.
func (f *spiker) ReadInto(d time.Duration, b *source.Batch) error {
	began := time.Now()
	err := f.inner.ReadInto(d, b)
	n := b.Len()
	stride := b.Stride()
	for i := 0; i < n; i++ {
		if f.rng.Float64() >= f.p {
			continue
		}
		b.Total[i] *= f.mag
		row := b.Chans[i*stride : (i+1)*stride]
		for m := range row {
			row[m] *= f.mag
		}
	}
	spikeHist.Record(time.Since(began))
	return err
}

// Skew models clock drift: the source's oscillator runs fast (positive
// ppm) or slow (negative) by ppm parts per million, so every delivered
// timestamp — and the source's Now — is stretched to t' = t*(1 + ppm/1e6).
// Power values are untouched; the fault is purely temporal, the slow
// divergence between a sensor's clock and the host's that the OCC paper
// documents firmware accumulating. Deterministic with no seed: drift is
// systematic, not noise.
//
// Skew panics when |ppm| is 1e6 or more — a clock that far off is not a
// drift model, and -1e6 would freeze or reverse time.
func Skew(ppm float64) Stage {
	if ppm <= -1e6 || ppm >= 1e6 {
		panic(fmt.Sprintf("pipeline: Skew needs |ppm| < 1e6, got %v", ppm))
	}
	return func(inner source.Source) source.Source {
		return &skewer{
			wrap: wrap{inner: inner, meta: derive(inner, "skew", 0)},
			f:    ppm * 1e-6,
		}
	}
}

type skewer struct {
	wrap
	f float64 // fractional rate error: t' = t + t*f
}

// Now implements source.Source on the skewed clock, consistently with the
// delivered timestamps — a consumer comparing sample times against Now
// sees one coherent (wrong) clock, as it would with real drifting
// hardware.
func (f *skewer) Now() time.Duration {
	t := f.inner.Now()
	return t + time.Duration(float64(t)*f.f)
}

// ReadInto implements source.Source: an in-place overlay on the timestamp
// column.
func (f *skewer) ReadInto(d time.Duration, b *source.Batch) error {
	began := time.Now()
	err := f.inner.ReadInto(d, b)
	for i, t := range b.Time {
		b.Time[i] = t + time.Duration(float64(t)*f.f)
	}
	skewHist.Record(time.Since(began))
	return err
}

// Jitter models timestamp noise: each delivered timestamp is perturbed by
// a Gaussian of standard deviation sd (one draw per sample, seed-pinned),
// clamped so the delivered stream stays non-decreasing — real timestamp
// noise wobbles sample spacing but a monotone counter never runs
// backwards. Power values and Now are untouched.
//
// Jitter panics when sd is not positive.
func Jitter(sd time.Duration, seed uint64) Stage {
	if sd <= 0 {
		panic(fmt.Sprintf("pipeline: Jitter needs a positive deviation, got %v", sd))
	}
	return func(inner source.Source) source.Source {
		return &jitterer{
			wrap: wrap{inner: inner, meta: derive(inner, "jitter", 0)},
			rng:  rng.New(seed),
			sd:   float64(sd),
		}
	}
}

type jitterer struct {
	wrap
	rng     *rng.Source
	sd      float64
	lastOut time.Duration // last delivered timestamp, for the monotone clamp
}

// ReadInto implements source.Source: an in-place overlay on the timestamp
// column, monotone across batch boundaries.
func (f *jitterer) ReadInto(d time.Duration, b *source.Batch) error {
	began := time.Now()
	err := f.inner.ReadInto(d, b)
	for i, t := range b.Time {
		t += time.Duration(f.rng.Norm() * f.sd)
		if t < f.lastOut {
			t = f.lastOut
		}
		b.Time[i] = t
		f.lastOut = t
	}
	jitterHist.Record(time.Since(began))
	return err
}
