package pipeline

import (
	"fmt"
	"math"
	"time"

	"repro/internal/source"
)

// Smooth low-pass filters the stream with an exponentially weighted
// moving average of time constant tau, applied per channel and to the
// summed-power column — the streaming counterpart of the paper's block
// averaging (Table II): quantisation noise on lightly loaded rails
// shrinks while step edges survive to within ~tau. Sample timing,
// markers and the delivered rate are untouched; Joules stays the
// backend's own counter (a steady-state EWMA conserves the mean, and the
// energy truth should not depend on a display filter).
//
// The smoothing factor per sample is 1 - exp(-period/tau) at the inner
// source's native period. Smooth panics on a non-positive tau.
func Smooth(tau time.Duration) Stage {
	if tau <= 0 {
		panic(fmt.Sprintf("pipeline: Smooth needs a positive time constant, got %v", tau))
	}
	return func(inner source.Source) source.Source {
		period := 1.0 / inner.Meta().RateHz
		return &smoother{
			wrap:  wrap{inner: inner, meta: derive(inner, "smooth", 0)},
			alpha: 1 - math.Exp(-period/tau.Seconds()),
		}
	}
}

type smoother struct {
	wrap
	alpha  float64
	primed bool // first sample initialises the state instead of decaying from zero
	chans  [source.MaxChannels]float64
	total  float64
}

// ReadInto implements source.Source: the inner source fills the caller's
// batch directly and the EWMA replaces each row and total in place — no
// scratch batch, no allocations.
func (s *smoother) ReadInto(d time.Duration, b *source.Batch) error {
	began := time.Now()
	err := s.inner.ReadInto(d, b)
	stride := b.Stride()
	n := b.Len()
	i := 0
	if !s.primed && n > 0 {
		s.primed = true
		copy(s.chans[:stride], b.Chans[:stride])
		s.total = b.Total[0]
		i = 1
	}
	for ; i < n; i++ {
		row := b.Chans[i*stride : (i+1)*stride]
		for m, w := range row {
			s.chans[m] += s.alpha * (w - s.chans[m])
			row[m] = s.chans[m]
		}
		s.total += s.alpha * (b.Total[i] - s.total)
		b.Total[i] = s.total
	}
	smoothHist.Record(time.Since(began))
	return err
}
