// Package pipeline is the derived-source layer: composable source.Source
// wrappers that stack on any measurement backend and stay on the
// zero-allocation columnar Batch path.
//
// The paper serves every backend at its native rate; real deployments
// need *views* on top of that — a 1 kHz resampled feed of a 20 kHz
// PowerSensor3 rig next to the raw one, a calibration overlay applied
// without reflashing the sensor, a polled vendor meter throttled so the
// monitoring itself does not distort the measurement (the sampling-
// overhead concern RAPL-based tools quantify). Each view is a stage
// wrapping an inner source:
//
//	any source.Source          e.g. powersensor3 @ 20 kHz
//	      │
//	  Resample                 rate conversion, energy-conserving bin
//	      │                    averaging, marker indices remapped
//	  Calibrate                per-channel gain/offset overlay applied
//	      │                    in the batch fold
//	  RateLimit                max delivered sample rate, cumulative
//	      │                    sampling-overhead accounting (Overheader)
//	   Smooth                  EWMA over Total and every channel
//	      │
//	 fleet.Device              block size and ring pacing derived from
//	                           the stage-rewritten Meta.RateHz
//
// Stages compose with Chain and in any order; each rewrites the source
// Meta it presents upward — the backend name grows a "+stage" suffix
// (e.g. "powersensor3+resample+calib") and RateHz reflects the delivered
// rate — so the fleet manager sizes downsample blocks for the derived
// stream with no special cases, and /metrics exposes the derived backend
// and rate like any other station's.
//
// Every stage preserves the steady-state zero-allocation contract of
// ReadInto: in-place stages (Calibrate, Smooth) transform the caller's
// batch columns directly, and re-batching stages (Resample, RateLimit)
// fill the caller's batch from one reused internal scratch batch — no
// per-sample, per-block or per-call allocations once array capacities
// are warm.
//
// Stage constructors panic on invalid parameters (a non-positive rate, a
// zero time constant): like source.NewPolled, these are construction-time
// wiring errors, not runtime conditions. simsetup's fleet-spec parser
// validates before constructing, so bad specs surface as errors there.
package pipeline

import (
	"time"

	"repro/internal/obs"
	"repro/internal/source"
)

// Per-stage ReadInto latency histograms, process-wide: every instance of
// a stage kind records into the same histogram, deepening the cumulative
// overhead-seconds counter (source.Overheader) into a distribution. Each
// observation spans the stage's whole ReadInto — the inner source's read
// included — so an outer stage's distribution dominates the stages below
// it, mirroring how RateLimit's Overhead already accounts nesting. The
// histograms are obs.Hist: lock-free and allocation-free to record, so
// the stages keep their steady-state zero-allocation contract.
var (
	resampleHist  obs.Hist
	calibHist     obs.Hist
	rateLimitHist obs.Hist
	smoothHist    obs.Hist
	dropoutHist   obs.Hist
	stuckHist     obs.Hist
	spikeHist     obs.Hist
	skewHist      obs.Hist
	jitterHist    obs.Hist
)

// StageHist pairs a stage kind's name — the backend "+suffix" tag the
// stage adds in derive — with its process-wide ReadInto latency
// histogram.
type StageHist struct {
	Stage string
	Hist  *obs.Hist
}

// stageHists is the fixed, ordered registry ReadHists exposes.
var stageHists = []StageHist{
	{"resample", &resampleHist},
	{"calib", &calibHist},
	{"ratelimit", &rateLimitHist},
	{"smooth", &smoothHist},
	{"dropout", &dropoutHist},
	{"stuck", &stuckHist},
	{"spike", &spikeHist},
	{"skew", &skewHist},
	{"jitter", &jitterHist},
}

// ReadHists returns every stage kind's latency histogram in a fixed
// order, for exporters rendering the powersensor_self_stage_read_seconds
// family. The returned slice is shared — treat it as read-only.
func ReadHists() []StageHist { return stageHists }

// Stage derives a new source from an inner one. Stages returned by this
// package wrap the inner source in place — they do not copy its stream —
// and are single-goroutine confined exactly like the Source they
// implement.
type Stage func(source.Source) source.Source

// Chain applies stages to src in order: Chain(s, A, B) yields B(A(s)),
// so the first stage is innermost (closest to the backend) and the last
// one's Meta is what consumers see. With no stages it returns src
// unchanged.
func Chain(src source.Source, stages ...Stage) source.Source {
	for _, stage := range stages {
		src = stage(src)
	}
	return src
}

// wrap is the shared base of every stage: it holds the inner source and
// the stage's rewritten Meta, and delegates the Source methods a stage
// does not transform. Stages embed it and override what they change.
type wrap struct {
	inner source.Source
	meta  source.Meta
}

// derive builds a stage's Meta from the inner source's: the backend name
// gains a "+suffix" tag, rateHz (when positive) replaces the delivered
// rate, and the channel labels become the stage's own copy so no slice is
// shared across the layer boundary.
func derive(inner source.Source, suffix string, rateHz float64) source.Meta {
	m := inner.Meta()
	m.Backend += "+" + suffix
	if rateHz > 0 {
		m.RateHz = rateHz
	}
	m.Channels = append([]string(nil), m.Channels...)
	return m
}

// Meta implements source.Source with the stage's rewritten metadata.
func (w *wrap) Meta() source.Meta { return w.meta }

// Now implements source.Source.
func (w *wrap) Now() time.Duration { return w.inner.Now() }

// Joules implements source.Source: rate conversion, throttling and
// smoothing all conserve energy, so the backend's own counter stays the
// truth. Calibrate overrides this — a gain/offset overlay rescales
// energy too.
func (w *wrap) Joules() float64 { return w.inner.Joules() }

// Resyncs implements source.Source.
func (w *wrap) Resyncs() int { return w.inner.Resyncs() }

// Close implements source.Source.
func (w *wrap) Close() { w.inner.Close() }

// Overhead implements source.Overheader by forwarding the accounting of
// whatever stage below carries it, so a RateLimit buried under further
// stages still surfaces through the top of the chain. Stages that do not
// account overhead contribute zero.
func (w *wrap) Overhead() time.Duration {
	if o, ok := w.inner.(source.Overheader); ok {
		return o.Overhead()
	}
	return 0
}

// Restart implements source.Restarter by forwarding the fleet watchdog's
// recovery attempt to whatever backend below can act on it, so a
// restartable source stays restartable under any stack of stages. With no
// Restarter below there is nothing to reset — stages themselves hold only
// derived state — and the attempt trivially succeeds.
func (w *wrap) Restart() error {
	if r, ok := w.inner.(source.Restarter); ok {
		return r.Restart()
	}
	return nil
}
