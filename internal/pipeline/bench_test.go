package pipeline

import (
	"testing"
	"time"

	"repro/internal/source"
)

// BenchmarkPipeline is the stage-stack hot path at the PowerSensor3 rate:
// one default 5 ms manager slice (100 raw samples at 20 kHz) per op,
// through each stage alone and through the acceptance three-stage chain.
// allocs/op must read 0 on every row — the zero-allocation ingest
// contract holds through arbitrary stage stacks (enforced hard by
// TestChainSteadyStateZeroAlloc).
func BenchmarkPipeline(b *testing.B) {
	for _, bc := range []struct {
		name   string
		stages []Stage
	}{
		{"resample", []Stage{Resample(1000)}},
		{"calibrate", []Stage{Calibrate(0.98, 0.25)}},
		{"smooth", []Stage{Smooth(5 * time.Millisecond)}},
		{"ratelimit", []Stage{RateLimit(1000)}},
		{"chain3", []Stage{Resample(1000), Calibrate(0.98, 0.25), Smooth(5 * time.Millisecond)}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			src := Chain(newFake(20000, nil), bc.stages...)
			var batch source.Batch
			src.ReadInto(100*time.Millisecond, &batch) // warm arrays
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src.ReadInto(5*time.Millisecond, &batch)
			}
			b.StopTimer()
			// 100 raw 20 kHz samples enter the stack per op, whatever the
			// delivered count is.
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/100, "ns/raw-sample")
		})
	}
}
