// Package ssd models an NVMe flash SSD at the level of detail the paper's
// storage case study (Section V-C) depends on: a multi-channel, multi-die
// flash back-end behind an FTL with superblock striping, a dynamic SLC write
// cache and greedy garbage collection.
//
// The two phenomena Fig. 12 demonstrates both emerge from this structure:
//
//   - Random-read bandwidth and power rise with request size until the dies
//     or the host link saturate (Fig. 12a): larger requests amortise
//     controller overhead and flash-page reads across more bytes.
//   - Sustained random writes show highly variable bandwidth once garbage
//     collection starts relocating pages, while power stays comparatively
//     flat — dies are busy either way, so bandwidth is not a power proxy
//     (Fig. 12b).
//
// The FTL manages superblocks: one erase block on every die, striped so
// consecutive programs land on consecutive dies, as real controllers do.
// Geometry and timing are scaled from the Samsung 980 PRO 1 TB: the
// simulated drive keeps the channel/die parallelism, the over-provisioning
// ratio and the latency ratios, with a reduced capacity so that steady state
// is reached within simulable time (documented on Samsung980Pro).
package ssd

import (
	"fmt"
	"time"
)

// Config describes the drive geometry, timing and power model.
type Config struct {
	// Channels and DiesPerChannel set the flash parallelism.
	Channels, DiesPerChannel int

	// PageBytes is the logical mapping unit (4 KiB).
	PageBytes int
	// PagesPerFlashPage is how many logical pages share one physical flash
	// page read (16 KiB flash pages → 4).
	PagesPerFlashPage int
	// PagesPerBlock is the logical pages per erase block on one die.
	PagesPerBlock int
	// LogicalPages is the advertised capacity in logical pages.
	LogicalPages int
	// OverProvision is the extra physical share (0.12 = 12%).
	OverProvision float64

	// SLCCachePages is the dynamic SLC cache capacity in logical pages.
	SLCCachePages int

	// Timing.
	ReadFlashPage time.Duration // one flash-page read
	ProgPage      time.Duration // one logical page TLC program (multi-plane amortised)
	ProgPageSLC   time.Duration // one logical page SLC program
	EraseBlock    time.Duration
	XferPerPage   time.Duration // channel transfer per logical page
	ControllerOp  time.Duration // per-command controller overhead
	HostLinkMiBps float64       // PCIe link ceiling

	// Power model.
	IdleW       float64
	DieReadW    float64 // per die actively reading
	DieProgW    float64 // per die actively programming
	DieEraseW   float64
	ControllerW float64 // controller+DRAM while IO is in flight
	PerGiBpsW   float64 // data-movement power per GiB/s of host throughput
}

// Samsung980Pro returns the scaled 980 PRO model: 8 channels × 2 dies,
// 1 GiB usable capacity (1024× smaller than the real 1 TB drive, so the
// write experiment reaches steady state in simulable time), with the real
// drive's parallelism, over-provisioning and latency ratios.
func Samsung980Pro() Config {
	return Config{
		Channels: 8, DiesPerChannel: 2,
		PageBytes:         4096,
		PagesPerFlashPage: 4,
		PagesPerBlock:     256, // 1 MiB per-die blocks → 16 MiB superblocks
		LogicalPages:      256 * 1024,
		OverProvision:     0.12,
		SLCCachePages:     24 * 1024, // ~96 MiB dynamic cache

		ReadFlashPage: 50 * time.Microsecond,
		ProgPage:      64 * time.Microsecond,
		ProgPageSLC:   20 * time.Microsecond,
		EraseBlock:    3 * time.Millisecond,
		XferPerPage:   3300 * time.Nanosecond,
		ControllerOp:  6 * time.Microsecond,
		HostLinkMiBps: 3500,

		IdleW: 1.3, DieReadW: 0.12, DieProgW: 0.30, DieEraseW: 0.40,
		ControllerW: 0.5, PerGiBpsW: 0.8,
	}
}

// Dies returns the total die count.
func (c Config) Dies() int { return c.Channels * c.DiesPerChannel }

// PagesPerSuperblock returns the logical pages in one striped superblock.
func (c Config) PagesPerSuperblock() int { return c.PagesPerBlock * c.Dies() }

// Superblocks returns the physical superblock count including OP, always at
// least one superblock above the logical capacity.
func (c Config) Superblocks() int {
	logical := (c.LogicalPages + c.PagesPerSuperblock() - 1) / c.PagesPerSuperblock()
	phys := int(float64(logical) * (1 + c.OverProvision))
	if phys < logical+2 {
		phys = logical + 2
	}
	return phys
}

// opKind labels what a die is doing.
type opKind uint8

const (
	opNone opKind = iota
	opRead
	opProg
	opErase
)

// die is one flash die's execution state.
type die struct {
	busyUntil time.Duration
	kind      opKind
}

// superblock bookkeeping.
type superblock struct {
	valid int
	free  bool
}

// Request is a host command handed to the disk.
type Request struct {
	Write  bool
	Page   int // starting logical page
	Pages  int // length in logical pages
	Submit time.Duration
}

// Completion reports when a request finished.
type Completion struct {
	Req  Request
	Done time.Duration
}

// Stats aggregates drive-internal activity.
type Stats struct {
	HostReadPages  int64
	HostWritePages int64
	GCMovedPages   int64
	Erases         int64 // superblock erases
	SLCHits        int64
}

// WriteAmplification returns (host+GC)/host writes.
func (s Stats) WriteAmplification() float64 {
	if s.HostWritePages == 0 {
		return 1
	}
	return float64(s.HostWritePages+s.GCMovedPages) / float64(s.HostWritePages)
}

// Disk is a simulated NVMe SSD.
type Disk struct {
	cfg Config

	mapTable []int32 // logical page → physical page (-1 = unmapped)
	revTable []int32 // physical page → logical page (-1 = free/invalid)
	sbs      []superblock
	freeCnt  int
	dies     []die

	open    int // superblock accepting host programs (-1 = none)
	openPtr int
	gc      int // superblock accepting GC relocations (-1 = none)
	gcPtr   int

	slcUsed int // logical pages currently in the SLC cache

	now          time.Duration
	linkBusyTill time.Duration
	hostBytes    float64
	hostBytesT   time.Duration
	lastGiBps    float64

	stats    Stats
	linkRate float64 // bytes/sec
}

// New formats a drive: all logical pages unmapped, all superblocks free.
func New(cfg Config, seed uint64) *Disk {
	_ = seed // geometry is deterministic; seed reserved for future wear models
	nPhys := cfg.Superblocks() * cfg.PagesPerSuperblock()
	d := &Disk{
		cfg:      cfg,
		mapTable: make([]int32, cfg.LogicalPages),
		revTable: make([]int32, nPhys),
		sbs:      make([]superblock, cfg.Superblocks()),
		dies:     make([]die, cfg.Dies()),
		open:     -1,
		gc:       -1,
		freeCnt:  cfg.Superblocks(),
		linkRate: cfg.HostLinkMiBps * 1024 * 1024,
	}
	for i := range d.mapTable {
		d.mapTable[i] = -1
	}
	for i := range d.revTable {
		d.revTable[i] = -1
	}
	for i := range d.sbs {
		d.sbs[i].free = true
	}
	return d
}

// Config returns the drive configuration.
func (d *Disk) Config() Config { return d.cfg }

// Stats returns drive-internal counters.
func (d *Disk) Stats() Stats { return d.stats }

// Now returns the drive's virtual time.
func (d *Disk) Now() time.Duration { return d.now }

// dieOf returns the die a physical page lives on: superblocks stripe
// consecutive slots across dies.
func (d *Disk) dieOf(phys int32) int {
	return int(phys) % d.cfg.Dies()
}

// Submit executes a request and returns its completion time. Submit times
// must be non-decreasing across calls.
func (d *Disk) Submit(req Request) Completion {
	if req.Page < 0 || req.Page+req.Pages > d.cfg.LogicalPages {
		panic(fmt.Sprintf("ssd: request [%d, %d) outside %d logical pages",
			req.Page, req.Page+req.Pages, d.cfg.LogicalPages))
	}
	if req.Submit > d.now {
		d.now = req.Submit
	}
	start := d.now + d.cfg.ControllerOp
	var done time.Duration
	if req.Write {
		done = d.doWrite(req, start)
	} else {
		done = d.doRead(req, start)
	}
	// Host link transfer serialises with other transfers but overlaps the
	// flash work where possible.
	xfer := time.Duration(float64(req.Pages*d.cfg.PageBytes) / d.linkRate * float64(time.Second))
	linkStart := maxDur(done-xfer, d.linkBusyTill)
	d.linkBusyTill = linkStart + xfer
	if d.linkBusyTill > done {
		done = d.linkBusyTill
	}
	d.hostBytes += float64(req.Pages * d.cfg.PageBytes)
	return Completion{Req: req, Done: done}
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// flashPageOf returns the (die, flash page on that die) a physical slot
// lives in: striping assigns slot s to die s mod D; the slots of one die are
// packed PagesPerFlashPage per physical flash page.
func (d *Disk) flashPageOf(phys int32) (dieID, fp int) {
	dieID = int(phys) % d.cfg.Dies()
	slotOnDie := int(phys) / d.cfg.Dies()
	return dieID, slotOnDie / d.cfg.PagesPerFlashPage
}

// doRead schedules the flash reads of a request and returns the finish time.
// Logical pages sharing a physical flash page cost one flash read plus one
// channel transfer per page — how larger or better-clustered requests earn
// their bandwidth (Fig. 12a).
func (d *Disk) doRead(req Request, start time.Duration) time.Duration {
	d.stats.HostReadPages += int64(req.Pages)
	finish := start

	// Count the logical pages needed from each unique flash page.
	type fpKey struct{ die, fp int }
	needed := make(map[fpKey]int, req.Pages)
	for p := req.Page; p < req.Page+req.Pages; p++ {
		phys := d.mapTable[p]
		if phys < 0 {
			continue // unmapped: controller returns zeroes
		}
		dieID, fp := d.flashPageOf(phys)
		needed[fpKey{dieID, fp}]++
	}
	for key, pages := range needed {
		dd := &d.dies[key.die]
		opStart := maxDur(start, dd.busyUntil)
		end := opStart + d.cfg.ReadFlashPage + time.Duration(pages)*d.cfg.XferPerPage
		dd.busyUntil = end
		dd.kind = opRead
		if end > finish {
			finish = end
		}
	}
	return finish
}

// doWrite programs the request's pages and returns the finish time.
func (d *Disk) doWrite(req Request, start time.Duration) time.Duration {
	d.stats.HostWritePages += int64(req.Pages)
	finish := start
	for p := req.Page; p < req.Page+req.Pages; p++ {
		if end := d.programPage(p, start); end > finish {
			finish = end
		}
	}
	return finish
}

// programPage writes one logical page into the open superblock, striped to
// the next die, invalidating the old copy and collecting garbage as needed.
func (d *Disk) programPage(lp int, start time.Duration) time.Duration {
	if d.open < 0 || d.openPtr >= d.cfg.PagesPerSuperblock() {
		d.ensureFree(1)
		d.open = d.takeFree()
		d.openPtr = 0
	}

	phys := int32(d.open*d.cfg.PagesPerSuperblock() + d.openPtr)
	d.openPtr++

	lat := d.cfg.ProgPage
	if d.slcUsed < d.cfg.SLCCachePages {
		lat = d.cfg.ProgPageSLC
		d.slcUsed++
		d.stats.SLCHits++
	}
	dd := &d.dies[d.dieOf(phys)]
	opStart := maxDur(start, dd.busyUntil)
	end := opStart + lat
	dd.busyUntil = end
	dd.kind = opProg

	if old := d.mapTable[lp]; old >= 0 {
		d.revTable[old] = -1
		d.sbs[int(old)/d.cfg.PagesPerSuperblock()].valid--
	}
	d.mapTable[lp] = phys
	d.revTable[phys] = int32(lp)
	d.sbs[d.open].valid++

	// Background reclaim once the free list is empty and cheap victims
	// exist; expensive compaction is deferred to allocation time, where it
	// appears as the foreground-GC stall real drives exhibit.
	for d.freeCnt < 1 {
		if !d.collect(false) {
			break
		}
	}
	return end
}

// ensureFree reclaims until at least n superblocks are free, forcing
// compaction when no cheap victims remain. Each collect erases one
// superblock, so progress is monotone; the guard catches impossible
// geometries.
func (d *Disk) ensureFree(n int) {
	for guard := 4 * len(d.sbs); d.freeCnt < n && guard > 0; guard-- {
		if !d.collect(false) && !d.collect(true) {
			break
		}
	}
	if d.freeCnt < 1 {
		panic("ssd: no reclaimable space")
	}
}

// takeFree claims a free superblock.
func (d *Disk) takeFree() int {
	for i := range d.sbs {
		if d.sbs[i].free {
			d.sbs[i].free = false
			d.sbs[i].valid = 0
			d.freeCnt--
			return i
		}
	}
	panic("ssd: takeFree with no free superblock")
}

// collect performs one greedy GC cycle: pick the closed superblock with the
// fewest valid pages, read its survivors, erase it, and re-place the
// survivors in the GC superblock. In cheap mode it refuses mostly-valid
// victims — relocating them costs endurance and bandwidth for almost no
// reclaimed space. Returns whether a victim was processed.
func (d *Disk) collect(force bool) bool {
	victim, bestValid := -1, 1<<30
	for i := range d.sbs {
		if d.sbs[i].free || i == d.open || i == d.gc {
			continue
		}
		if d.sbs[i].valid < bestValid {
			victim, bestValid = i, d.sbs[i].valid
		}
	}
	if victim < 0 || bestValid >= d.cfg.PagesPerSuperblock() {
		return false
	}
	if !force && bestValid > d.cfg.PagesPerSuperblock()*7/10 {
		return false
	}

	// Read survivors (before the erase, as the controller does), charging
	// each die its share.
	base := victim * d.cfg.PagesPerSuperblock()
	var moved []int32
	for s := 0; s < d.cfg.PagesPerSuperblock(); s++ {
		if lp := d.revTable[base+s]; lp >= 0 {
			moved = append(moved, lp)
			d.revTable[base+s] = -1
			dd := &d.dies[d.dieOf(int32(base+s))]
			dd.busyUntil += d.cfg.ReadFlashPage / time.Duration(d.cfg.PagesPerFlashPage)
			dd.kind = opRead
		}
	}

	// Erase: every die erases its constituent block (in parallel).
	for i := range d.dies {
		d.dies[i].busyUntil += d.cfg.EraseBlock / time.Duration(d.cfg.Dies())
		d.dies[i].kind = opErase
	}
	d.sbs[victim].free = true
	d.sbs[victim].valid = 0
	d.freeCnt++
	d.stats.Erases++

	// Re-place survivors into the GC superblock.
	for _, lp := range moved {
		if d.gc < 0 || d.gcPtr >= d.cfg.PagesPerSuperblock() {
			d.gc = d.takeFree()
			d.gcPtr = 0
		}
		phys := int32(d.gc*d.cfg.PagesPerSuperblock() + d.gcPtr)
		d.gcPtr++
		dd := &d.dies[d.dieOf(phys)]
		dd.busyUntil += d.cfg.ProgPage
		dd.kind = opProg
		d.mapTable[lp] = phys
		d.revTable[phys] = lp
		d.sbs[d.gc].valid++
		d.stats.GCMovedPages++
	}
	return true
}

// DrainSLC folds cached SLC pages back to TLC during idle time; callers
// invoke it periodically (the fio runner does). Each fold consumes die time.
func (d *Disk) DrainSLC(until time.Duration) {
	i := 0
	for d.slcUsed > 0 {
		dd := &d.dies[i%len(d.dies)]
		if dd.busyUntil >= until {
			return
		}
		dd.busyUntil += d.cfg.ProgPage
		dd.kind = opProg
		d.slcUsed--
		i++
	}
}

// SLCUsed returns the pages currently held in the SLC cache.
func (d *Disk) SLCUsed() int { return d.slcUsed }

// Advance moves the drive's clock forward (idle time).
func (d *Disk) Advance(t time.Duration) {
	if t > d.now {
		d.now = t
	}
}

// PowerAt returns the drive's power draw at time t: idle floor, per-die
// activity, controller overhead while commands are in flight, and a
// data-movement term proportional to recent host throughput.
func (d *Disk) PowerAt(t time.Duration) float64 {
	p := d.cfg.IdleW
	anyBusy := false
	for i := range d.dies {
		dd := &d.dies[i]
		if dd.busyUntil > t {
			anyBusy = true
			switch dd.kind {
			case opProg:
				p += d.cfg.DieProgW
			case opErase:
				p += d.cfg.DieEraseW
			default:
				p += d.cfg.DieReadW
			}
		}
	}
	if anyBusy || d.linkBusyTill > t {
		p += d.cfg.ControllerW
	}
	// Host-throughput term over a sliding accounting window.
	if t > d.hostBytesT {
		if dt := (t - d.hostBytesT).Seconds(); dt > 0.05 {
			d.lastGiBps = d.hostBytes / dt / (1 << 30)
			d.hostBytes = 0
			d.hostBytesT = t
		}
	}
	p += d.cfg.PerGiBpsW * d.lastGiBps
	return p
}
