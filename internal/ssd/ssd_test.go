package ssd

import (
	"testing"
	"time"

	"repro/internal/rng"
)

func smallConfig() Config {
	cfg := Samsung980Pro()
	cfg.LogicalPages = 16 * 1024 // 64 MiB drive for fast tests
	cfg.PagesPerBlock = 64       // keep a healthy number of blocks per die
	cfg.SLCCachePages = 2 * 1024
	return cfg
}

func TestFreshDriveReadsUnmapped(t *testing.T) {
	d := New(smallConfig(), 1)
	c := d.Submit(Request{Page: 0, Pages: 8, Submit: 0})
	// Unmapped reads skip flash; only controller + link time.
	if c.Done > time.Millisecond {
		t.Fatalf("unmapped read took %v", c.Done)
	}
}

func TestWriteThenReadMapping(t *testing.T) {
	d := New(smallConfig(), 2)
	d.Submit(Request{Write: true, Page: 100, Pages: 4, Submit: 0})
	c := d.Submit(Request{Page: 100, Pages: 4, Submit: d.Now() + time.Millisecond})
	if c.Done <= c.Req.Submit {
		t.Fatal("mapped read takes time")
	}
	if d.Stats().HostReadPages != 4 || d.Stats().HostWritePages != 4 {
		t.Fatalf("stats = %+v", d.Stats())
	}
}

func TestMappingInvariant(t *testing.T) {
	cfg := smallConfig()
	d := New(cfg, 3)
	// Random overwrites.
	for i := 0; i < 20000; i++ {
		page := (i * 7919) % cfg.LogicalPages
		d.Submit(Request{Write: true, Page: page, Pages: 1, Submit: d.Now()})
	}
	// Every mapped logical page must have a consistent reverse mapping.
	for lp, phys := range d.mapTable {
		if phys < 0 {
			continue
		}
		if got := d.revTable[phys]; got != int32(lp) {
			t.Fatalf("reverse map broken: lp %d → phys %d → lp %d", lp, phys, got)
		}
	}
	// Valid counters must sum to the mapped page count.
	mapped := 0
	for _, phys := range d.mapTable {
		if phys >= 0 {
			mapped++
		}
	}
	validSum := 0
	for _, b := range d.sbs {
		validSum += b.valid
	}
	if mapped != validSum {
		t.Fatalf("valid counters %d != mapped pages %d", validSum, mapped)
	}
}

func TestGarbageCollectionKicksIn(t *testing.T) {
	cfg := smallConfig()
	d := New(cfg, 4)
	rnd := rng.New(99)
	// Write 3 full drives' worth of uniformly random single pages: far
	// beyond physical capacity, forcing GC with scattered invalidation.
	for i := 0; i < 3*cfg.LogicalPages; i++ {
		page := rnd.Intn(cfg.LogicalPages)
		d.Submit(Request{Write: true, Page: page, Pages: 1, Submit: d.Now()})
	}
	st := d.Stats()
	if st.Erases == 0 {
		t.Fatal("no erases after overwriting the drive repeatedly")
	}
	if st.GCMovedPages == 0 {
		t.Fatal("no GC relocations")
	}
	if wa := st.WriteAmplification(); wa <= 1.05 {
		t.Fatalf("write amplification %v; random overwrite must exceed 1", wa)
	}
}

func TestSequentialFillHasLowWA(t *testing.T) {
	cfg := smallConfig()
	d := New(cfg, 5)
	req := 32
	// Two sequential passes: invalidation happens block-aligned, so GC
	// victims are empty and write amplification stays near 1.
	for pass := 0; pass < 2; pass++ {
		for p := 0; p+req <= cfg.LogicalPages; p += req {
			d.Submit(Request{Write: true, Page: p, Pages: req, Submit: d.Now()})
		}
	}
	if wa := d.Stats().WriteAmplification(); wa > 1.3 {
		t.Fatalf("sequential write amplification %v, want ~1", wa)
	}
}

func TestSLCCacheSpeedsBursts(t *testing.T) {
	cfg := smallConfig()
	fast := New(cfg, 6)
	cfgNo := cfg
	cfgNo.SLCCachePages = 0
	slow := New(cfgNo, 6)

	burst := func(d *Disk) time.Duration {
		t0 := d.Now()
		var last time.Duration
		for i := 0; i < 1024; i++ {
			c := d.Submit(Request{Write: true, Page: i, Pages: 1, Submit: d.Now()})
			last = c.Done
		}
		return last - t0
	}
	tFast := burst(fast)
	tSlow := burst(slow)
	if tFast >= tSlow {
		t.Fatalf("SLC cache did not speed burst: %v vs %v", tFast, tSlow)
	}
}

func TestPowerIdleVsActive(t *testing.T) {
	cfg := smallConfig()
	d := New(cfg, 7)
	idle := d.PowerAt(0)
	if idle < cfg.IdleW || idle > cfg.IdleW+0.1 {
		t.Fatalf("idle power %v", idle)
	}
	// Load the drive.
	for i := 0; i < 64; i++ {
		d.Submit(Request{Write: true, Page: i * 64, Pages: 32, Submit: d.Now()})
	}
	busy := d.PowerAt(d.Now())
	if busy <= idle+0.3 {
		t.Fatalf("busy power %v barely above idle %v", busy, idle)
	}
}

func TestPowerBoundedByWorstCase(t *testing.T) {
	cfg := smallConfig()
	worst := cfg.IdleW + float64(cfg.Dies())*cfg.DieEraseW + cfg.ControllerW +
		cfg.PerGiBpsW*cfg.HostLinkMiBps/1024
	d := New(cfg, 8)
	for i := 0; i < 2*cfg.LogicalPages; i++ {
		page := (i * 31) % cfg.LogicalPages
		d.Submit(Request{Write: true, Page: page, Pages: 1, Submit: d.Now()})
		if i%1000 == 0 {
			if p := d.PowerAt(d.Now()); p > worst {
				t.Fatalf("power %v exceeds worst case %v", p, worst)
			}
		}
	}
}

func TestRequestBoundsChecked(t *testing.T) {
	d := New(smallConfig(), 9)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range request")
		}
	}()
	d.Submit(Request{Page: d.Config().LogicalPages - 1, Pages: 2, Submit: 0})
}

func TestDrainSLCFreesCache(t *testing.T) {
	cfg := smallConfig()
	d := New(cfg, 10)
	for i := 0; i < 512; i++ {
		d.Submit(Request{Write: true, Page: i, Pages: 1, Submit: d.Now()})
	}
	if d.SLCUsed() == 0 {
		t.Skip("no SLC pages cached")
	}
	d.DrainSLC(d.Now() + 10*time.Second)
	if d.SLCUsed() != 0 {
		t.Fatalf("%d SLC pages left after drain", d.SLCUsed())
	}
}

func TestConfigDerived(t *testing.T) {
	cfg := Samsung980Pro()
	if cfg.Dies() != 16 {
		t.Fatalf("dies = %d", cfg.Dies())
	}
	logicalSBs := cfg.LogicalPages / cfg.PagesPerSuperblock()
	if cfg.Superblocks() <= logicalSBs {
		t.Fatal("no over-provisioning")
	}
}

func BenchmarkRandomWrites(b *testing.B) {
	cfg := smallConfig()
	d := New(cfg, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		page := (i * 7919) % cfg.LogicalPages
		d.Submit(Request{Write: true, Page: page, Pages: 1, Submit: d.Now()})
	}
}
