package protocol

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for sensor := 0; sensor < MaxSensors; sensor++ {
		for _, level := range []int{0, 1, 127, 128, 511, 512, Levels - 1} {
			for _, marker := range []bool{false, true} {
				in := Sample{Sensor: sensor, Level: level, Marker: marker}
				b := Encode(in)
				out, err := Decode(b[0], b[1])
				if err != nil {
					t.Fatalf("decode error: %v", err)
				}
				if out != in {
					t.Fatalf("round trip: got %+v, want %+v", out, in)
				}
			}
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(sensor uint8, level uint16, marker bool) bool {
		in := Sample{
			Sensor: int(sensor) % MaxSensors,
			Level:  int(level) % Levels,
			Marker: marker,
		}
		b := Encode(in)
		out, err := Decode(b[0], b[1])
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFramingBits(t *testing.T) {
	b := Encode(Sample{Sensor: 3, Level: 1023, Marker: true})
	if b[0]&0x80 == 0 {
		t.Error("first byte missing start bit")
	}
	if b[1]&0x80 != 0 {
		t.Error("second byte has start bit set")
	}
}

func TestEncodePanicsOnBadSensor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Encode(Sample{Sensor: 8, Level: 0})
}

func TestEncodePanicsOnBadLevel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Encode(Sample{Sensor: 0, Level: Levels})
}

func TestDecodeRejectsBadFraming(t *testing.T) {
	if _, err := Decode(0x00, 0x00); err != ErrNotFirstByte {
		t.Errorf("want ErrNotFirstByte, got %v", err)
	}
	if _, err := Decode(0x80, 0x80); err != ErrNotSecondByte {
		t.Errorf("want ErrNotSecondByte, got %v", err)
	}
}

func TestTimestampSample(t *testing.T) {
	s := TimestampSample(1024 + 37)
	if !s.IsTimestamp() {
		t.Fatal("timestamp sample not recognized")
	}
	if s.Level != 37 {
		t.Fatalf("timestamp level = %d, want 37 (wrapped)", s.Level)
	}
	if s.IsUserMarker() {
		t.Fatal("timestamp must not read as user marker")
	}
}

func TestUserMarkerOnlyOnSensorZero(t *testing.T) {
	if !(Sample{Sensor: 0, Level: 5, Marker: true}).IsUserMarker() {
		t.Error("sensor 0 + marker must be a user marker")
	}
	if (Sample{Sensor: 1, Level: 5, Marker: true}).IsUserMarker() {
		t.Error("sensor 1 + marker must not be a user marker")
	}
	if (Sample{Sensor: 0, Level: 5, Marker: false}).IsUserMarker() {
		t.Error("marker bit clear must not be a user marker")
	}
}

func TestStreamDecoderCleanStream(t *testing.T) {
	var buf []byte
	var want []Sample
	r := rng.New(5)
	for i := 0; i < 1000; i++ {
		s := Sample{Sensor: r.Intn(MaxSensors), Level: r.Intn(Levels), Marker: r.Intn(2) == 0}
		want = append(want, s)
		b := Encode(s)
		buf = append(buf, b[0], b[1])
	}
	var dec StreamDecoder
	// Feed in ragged chunks to exercise byte-at-a-time reassembly.
	var got []Sample
	for len(buf) > 0 {
		n := r.Intn(7) + 1
		if n > len(buf) {
			n = len(buf)
		}
		got = dec.Feed(got, buf[:n])
		buf = buf[n:]
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d samples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if dec.Resyncs() != 0 {
		t.Fatalf("clean stream caused %d resyncs", dec.Resyncs())
	}
}

func TestStreamDecoderResyncAfterTruncatedStart(t *testing.T) {
	s1 := Encode(Sample{Sensor: 2, Level: 700})
	s2 := Encode(Sample{Sensor: 3, Level: 30})
	// Host starts reading mid-packet: sees only the second byte of s1.
	stream := []byte{s1[1], s2[0], s2[1]}
	var dec StreamDecoder
	got := dec.Feed(nil, stream)
	if len(got) != 1 || got[0].Sensor != 3 || got[0].Level != 30 {
		t.Fatalf("got %+v", got)
	}
	if dec.Resyncs() == 0 {
		t.Fatal("expected a resync")
	}
}

func TestStreamDecoderResyncAfterLostSecondByte(t *testing.T) {
	s1 := Encode(Sample{Sensor: 1, Level: 100})
	s2 := Encode(Sample{Sensor: 4, Level: 200})
	// s1's second byte is lost in transit.
	stream := []byte{s1[0], s2[0], s2[1]}
	var dec StreamDecoder
	got := dec.Feed(nil, stream)
	if len(got) != 1 || got[0].Sensor != 4 || got[0].Level != 200 {
		t.Fatalf("got %+v", got)
	}
	if dec.Resyncs() == 0 {
		t.Fatal("expected a resync")
	}
}

func TestConfigRoundTrip(t *testing.T) {
	in := SensorConfig{
		Name:        "12V/10A",
		Volt:        12.0,
		Sensitivity: 0.120,
		Polarity:    -1,
		Enabled:     true,
	}
	out, err := UnmarshalConfig(MarshalConfig(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("got %+v, want %+v", out, in)
	}
}

func TestConfigNameTruncation(t *testing.T) {
	in := SensorConfig{Name: "a-very-long-sensor-name-exceeding-the-field", Polarity: 1}
	out, err := UnmarshalConfig(MarshalConfig(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Name) != NameLen {
		t.Fatalf("name %q not truncated to %d", out.Name, NameLen)
	}
}

func TestConfigTooShort(t *testing.T) {
	if _, err := UnmarshalConfig(make([]byte, 3)); err == nil {
		t.Fatal("expected error for short block")
	}
}

func TestQuickConfigRoundTrip(t *testing.T) {
	f := func(volt, sens float64, enabled bool, pol bool) bool {
		p := int8(1)
		if pol {
			p = -1
		}
		in := SensorConfig{Name: "x", Volt: volt, Sensitivity: sens, Polarity: p, Enabled: enabled}
		out, err := UnmarshalConfig(MarshalConfig(in))
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleRateArithmetic(t *testing.T) {
	// Section III-B: 8 sensors, 6-sample averaging → 50 µs → 20 kHz.
	if SampleRateHz != 20000 {
		t.Fatalf("sample rate = %v", SampleRateHz)
	}
}

func BenchmarkEncode(b *testing.B) {
	s := Sample{Sensor: 3, Level: 512}
	for i := 0; i < b.N; i++ {
		_ = Encode(s)
	}
}

func BenchmarkStreamDecoder(b *testing.B) {
	var buf []byte
	r := rng.New(1)
	for i := 0; i < 4096; i++ {
		p := Encode(Sample{Sensor: r.Intn(MaxSensors), Level: r.Intn(Levels)})
		buf = append(buf, p[0], p[1])
	}
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var dec StreamDecoder
		_ = dec.Feed(nil, buf)
	}
}

func TestValidateAcceptsRealConfigs(t *testing.T) {
	good := SensorConfig{Name: "12V/10A-I", Volt: 12, Sensitivity: 0.12, Polarity: 1, Enabled: true}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	disabled := SensorConfig{Polarity: -1}
	if err := disabled.Validate(); err != nil {
		t.Fatalf("disabled config rejected: %v", err)
	}
}

func TestValidateRejectsGarbage(t *testing.T) {
	cases := []SensorConfig{
		{Name: "x", Volt: 12, Sensitivity: 0.12, Polarity: 0, Enabled: true},       // bad polarity
		{Name: "x", Volt: 12, Sensitivity: -1, Polarity: 1, Enabled: true},         // bad sensitivity
		{Name: "x", Volt: 12, Sensitivity: 1e6, Polarity: 1, Enabled: true},        // absurd sensitivity
		{Name: "x", Volt: -5, Sensitivity: 0.12, Polarity: 1, Enabled: true},       // negative rail
		{Name: "\x01bad", Volt: 12, Sensitivity: 0.12, Polarity: 1, Enabled: true}, // binary name
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}
