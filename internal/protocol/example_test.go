package protocol_test

import (
	"fmt"

	"repro/internal/protocol"
)

// A sensor value travels as two bytes with framing, index and marker bits —
// the Section III-B wire format.
func ExampleEncode() {
	packet := protocol.Encode(protocol.Sample{Sensor: 3, Level: 612})
	decoded, err := protocol.Decode(packet[0], packet[1])
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("sensor %d level %d\n", decoded.Sensor, decoded.Level)
	// Output: sensor 3 level 612
}

// The stream decoder survives a host that starts reading mid-packet.
func ExampleStreamDecoder() {
	a := protocol.Encode(protocol.Sample{Sensor: 0, Level: 100})
	b := protocol.Encode(protocol.Sample{Sensor: 1, Level: 200})
	// The first byte of packet a was lost before the host attached.
	stream := []byte{a[1], b[0], b[1]}

	var dec protocol.StreamDecoder
	for _, s := range dec.Feed(nil, stream) {
		fmt.Printf("sensor %d level %d\n", s.Sensor, s.Level)
	}
	fmt.Printf("resyncs: %d\n", dec.Resyncs())
	// Output:
	// sensor 1 level 200
	// resyncs: 1
}
