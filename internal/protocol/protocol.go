// Package protocol defines the PowerSensor3 wire format shared by the
// firmware (internal/firmware) and the host library (internal/core).
//
// The device streams 2-byte packets over USB. Each packet carries a 10-bit
// ADC level plus 6 bits of metadata, exactly as described in Section III-B of
// the paper: one bit in each byte differentiates the first byte from the
// second, 3 bits carry the sensor index, and 1 bit carries a marker flag.
//
// Layout:
//
//	byte 0: 1 | index[2:0] | marker | level[9:7]
//	byte 1: 0 |          level[6:0]
//
// A marker bit with sensor index 0 is a *real* marker (time-synced user
// marker). A marker bit with a nonzero index is repurposed: index 7 carries
// the 10-bit device timestamp in microseconds that precedes each sample set.
package protocol

import (
	"errors"
	"fmt"
)

// Electrical and sampling constants of the PowerSensor3 design
// (Section III of the paper).
const (
	// MaxSensors is the number of sensor inputs: 4 modules × (current +
	// voltage) sensor pairs.
	MaxSensors = 8

	// MaxModules is the number of sensor module slots on the baseboard.
	MaxModules = 4

	// ADCBits is the resolution used from the STM32F411 ADC.
	ADCBits = 10

	// Levels is the number of distinct ADC codes.
	Levels = 1 << ADCBits

	// VRef is the ADC reference voltage in volts (STM32 VDDA).
	VRef = 3.3

	// SamplesPerAverage is how many consecutive raw conversions the CPU
	// averages per transmitted value.
	SamplesPerAverage = 6

	// SampleInterval is the interval between transmitted sample sets:
	// reading 8 sensors and averaging 6 samples amounts to 50 µs → 20 kHz.
	SampleIntervalMicros = 50

	// SampleRateHz is the resulting output sample rate.
	SampleRateHz = 1e6 / SampleIntervalMicros

	// TimestampIndex is the pseudo sensor index used for timestamp packets.
	TimestampIndex = 7

	// TimestampWrapMicros is the period of the 10-bit device timestamp.
	TimestampWrapMicros = 1 << ADCBits
)

// Host-to-device command bytes (Section III-B, "firmware supports several
// options through the host").
const (
	CmdStartStream    = 'S'  // start streaming sensor data
	CmdStopStream     = 'T'  // stop streaming
	CmdReadConfig     = 'R'  // send sensor configuration to host
	CmdWriteConfig    = 'W'  // receive sensor configuration from host
	CmdMarker         = 'M'  // attach a marker to the next sensor data
	CmdVersion        = 'V'  // send firmware version string
	CmdReboot         = 'X'  // reboot the device
	CmdRebootDFU      = 'D'  // reboot to DFU mode for firmware upload
	CmdConfigDone     = 0x2e // '.' terminates a configuration block
	VersionTerminator = '\n'
)

// Errors returned by the decoder.
var (
	ErrNotFirstByte  = errors.New("protocol: first byte does not have the start bit set")
	ErrNotSecondByte = errors.New("protocol: second byte has the start bit set")
)

// Sample is one decoded 2-byte packet.
type Sample struct {
	Sensor int  // 0..7; TimestampIndex means Level is a device timestamp
	Level  int  // 10-bit ADC level or timestamp value
	Marker bool // marker flag (meaningful per the index rules above)
}

// IsTimestamp reports whether the packet carries the device timestamp rather
// than an ADC level.
func (s Sample) IsTimestamp() bool {
	return s.Marker && s.Sensor == TimestampIndex
}

// IsUserMarker reports whether the packet carries a user marker: the marker
// bit is only a real marker on sensor 0.
func (s Sample) IsUserMarker() bool {
	return s.Marker && s.Sensor == 0
}

// Encode packs the sample into the 2-byte wire representation.
// It panics if the sensor index or level is out of range, as those can only
// arise from a firmware bug.
func Encode(s Sample) [2]byte {
	if s.Sensor < 0 || s.Sensor >= MaxSensors {
		panic(fmt.Sprintf("protocol: sensor index %d out of range", s.Sensor))
	}
	if s.Level < 0 || s.Level >= Levels {
		panic(fmt.Sprintf("protocol: level %d out of range", s.Level))
	}
	var m byte
	if s.Marker {
		m = 1
	}
	return [2]byte{
		0x80 | byte(s.Sensor)<<4 | m<<3 | byte(s.Level>>7),
		byte(s.Level & 0x7f),
	}
}

// Decode unpacks a 2-byte wire packet.
func Decode(b0, b1 byte) (Sample, error) {
	if b0&0x80 == 0 {
		return Sample{}, ErrNotFirstByte
	}
	if b1&0x80 != 0 {
		return Sample{}, ErrNotSecondByte
	}
	return Sample{
		Sensor: int(b0 >> 4 & 0x7),
		Level:  int(b0&0x7)<<7 | int(b1&0x7f),
		Marker: b0&0x08 != 0,
	}, nil
}

// TimestampSample builds the timestamp packet transmitted before each sample
// set: marker bit set, sensor index 7, level = microseconds mod 1024.
func TimestampSample(micros uint64) Sample {
	return Sample{
		Sensor: TimestampIndex,
		Level:  int(micros % TimestampWrapMicros),
		Marker: true,
	}
}

// StreamDecoder incrementally decodes the device byte stream, resynchronising
// on the start bit if a byte is lost (e.g. when the host starts reading mid
// stream).
type StreamDecoder struct {
	havePending bool
	pending     byte
	resyncs     int
}

// Feed consumes buf and appends decoded samples to dst, returning the
// extended slice. Bytes that cannot start a packet are skipped and counted as
// resynchronisations.
func (d *StreamDecoder) Feed(dst []Sample, buf []byte) []Sample {
	for _, b := range buf {
		if !d.havePending {
			if b&0x80 == 0 {
				d.resyncs++
				continue // wait for a first byte
			}
			d.pending = b
			d.havePending = true
			continue
		}
		if b&0x80 != 0 {
			// Expected a second byte but got a first byte: drop the
			// pending byte and restart from this one.
			d.resyncs++
			d.pending = b
			continue
		}
		s, err := Decode(d.pending, b)
		d.havePending = false
		if err != nil {
			d.resyncs++
			continue
		}
		dst = append(dst, s)
	}
	return dst
}

// Resyncs returns how many bytes were discarded to regain packet alignment.
func (d *StreamDecoder) Resyncs() int { return d.resyncs }

// SensorConfig is the per-sensor configuration stored in the device's virtual
// EEPROM and exchanged with the host (Section III-B1).
type SensorConfig struct {
	Name        string  // sensor name, at most NameLen bytes
	Volt        float64 // reference voltage of the monitored rail
	Sensitivity float64 // V/A for current sensors, gain for voltage sensors
	Offset      float64 // calibration offset: amperes (current) / volts (voltage)
	Polarity    int8    // +1 or -1; allows reversed sensor mounting
	Enabled     bool    // sensor state
}

// NameLen is the fixed on-wire length of the sensor name field.
const NameLen = 16

// ConfigBlockLen is the serialized size of one SensorConfig.
const ConfigBlockLen = NameLen + 8 + 8 + 8 + 1 + 1

// MarshalConfig serializes cfg into its fixed-size wire block.
func MarshalConfig(cfg SensorConfig) []byte {
	buf := make([]byte, ConfigBlockLen)
	copy(buf[:NameLen], cfg.Name)
	putFloat64(buf[NameLen:], cfg.Volt)
	putFloat64(buf[NameLen+8:], cfg.Sensitivity)
	putFloat64(buf[NameLen+16:], cfg.Offset)
	buf[NameLen+24] = byte(cfg.Polarity)
	if cfg.Enabled {
		buf[NameLen+25] = 1
	}
	return buf
}

// Validate reports whether the configuration is semantically plausible —
// the host library's defence against parsing a non-PowerSensor device's
// noise as configuration.
func (c SensorConfig) Validate() error {
	if c.Polarity != 1 && c.Polarity != -1 {
		return fmt.Errorf("protocol: polarity %d invalid", c.Polarity)
	}
	if !c.Enabled {
		return nil // disabled sensors may carry stale values
	}
	if c.Sensitivity <= 0 || c.Sensitivity > 100 {
		return fmt.Errorf("protocol: sensitivity %g implausible", c.Sensitivity)
	}
	if c.Volt < 0 || c.Volt > 1000 {
		return fmt.Errorf("protocol: rail voltage %g implausible", c.Volt)
	}
	for _, b := range []byte(c.Name) {
		if b < 0x20 || b > 0x7e {
			return fmt.Errorf("protocol: sensor name contains non-printable byte 0x%02x", b)
		}
	}
	return nil
}

// UnmarshalConfig parses a wire block produced by MarshalConfig.
func UnmarshalConfig(buf []byte) (SensorConfig, error) {
	if len(buf) < ConfigBlockLen {
		return SensorConfig{}, fmt.Errorf("protocol: config block too short: %d bytes", len(buf))
	}
	name := buf[:NameLen]
	end := 0
	for end < len(name) && name[end] != 0 {
		end++
	}
	return SensorConfig{
		Name:        string(name[:end]),
		Volt:        getFloat64(buf[NameLen:]),
		Sensitivity: getFloat64(buf[NameLen+8:]),
		Offset:      getFloat64(buf[NameLen+16:]),
		Polarity:    int8(buf[NameLen+24]),
		Enabled:     buf[NameLen+25] != 0,
	}, nil
}
