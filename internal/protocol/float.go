package protocol

import (
	"encoding/binary"
	"math"
)

// putFloat64 stores v little-endian at the start of buf.
func putFloat64(buf []byte, v float64) {
	binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
}

// getFloat64 loads a little-endian float64 from the start of buf.
func getFloat64(buf []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(buf))
}
