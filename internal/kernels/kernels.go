// Package kernels models the GPU workloads of the paper's case studies: the
// synthetic fused-multiply-add kernel of Fig. 7 and the Tensor-Core
// Beamformer of Figs. 8 and 10 with its full tunable-parameter space.
package kernels

import (
	"time"

	"repro/internal/gpu"
)

// SyntheticFMA builds the Fig. 7 workload: a grid whose x-dimension matches
// the SM/CU count and whose y-dimension is chosen so the kernel runs for
// roughly the target duration on the given device at its boost clock. Each
// y-slice executes as one wave, producing the distinct phases the paper's
// traces show.
func SyntheticFMA(spec gpu.Spec, target time.Duration) gpu.Kernel {
	const efficiency = 0.92 // dense FMA issues near peak
	flopsPerSecond := spec.PeakTensorTFLOPS * 1e12 * efficiency
	totalFLOPs := flopsPerSecond * target.Seconds()

	// Pick the y-dimension (waves) so one wave takes a few hundred ms,
	// matching the visible phase structure of Fig. 7.
	waves := int(target / (400 * time.Millisecond))
	if waves < 2 {
		waves = 2
	}
	return gpu.Kernel{
		Name:       "synthetic-fma",
		FLOPs:      totalFLOPs,
		Waves:      waves,
		Intensity:  1.0,
		Efficiency: efficiency,
	}
}
