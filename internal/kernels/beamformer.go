package kernels

import (
	"fmt"
	"math"

	"repro/internal/gpu"
)

// BeamformerProblem is the case-study problem size: 16-bit data with
// M=4096 beams, N=4096 samples, K=4096 elements (Section V-A2).
type BeamformerProblem struct {
	M, N, K int
}

// DefaultProblem returns the 4k × 4k × 4k configuration of Figs. 8 and 10.
func DefaultProblem() BeamformerProblem {
	return BeamformerProblem{M: 4096, N: 4096, K: 4096}
}

// FLOPs returns the floating-point work of one kernel execution: a complex
// matrix multiplication costs 8 real operations per element-triple.
func (p BeamformerProblem) FLOPs() float64 {
	return 8 * float64(p.M) * float64(p.N) * float64(p.K)
}

// BeamformerConfig is one tunable code variant of the Tensor-Core
// Beamformer. The parameters mirror the paper: thread block dimensions, the
// number of submatrices (fragments) per thread block and per warp, and
// whether double buffering in shared memory is applied.
type BeamformerConfig struct {
	BlockX        int  // threads per block, x
	BlockY        int  // thread rows per block
	FragsPerBlock int  // submatrices per thread block
	FragsPerWarp  int  // submatrices per warp
	DoubleBuffer  bool // double buffering in shared memory
}

// String renders the variant compactly for logs and reports.
func (c BeamformerConfig) String() string {
	db := 0
	if c.DoubleBuffer {
		db = 1
	}
	return fmt.Sprintf("bx%d.by%d.fb%d.fw%d.db%d",
		c.BlockX, c.BlockY, c.FragsPerBlock, c.FragsPerWarp, db)
}

// Space enumerates the full search space: 4×4×4×4×2 = 512 code variants,
// matching the paper's 512 variants × 10 clock frequencies = 5120
// configurations.
func Space() []BeamformerConfig {
	var out []BeamformerConfig
	for _, bx := range []int{32, 64, 128, 256} {
		for _, by := range []int{1, 2, 4, 8} {
			for _, fb := range []int{1, 2, 4, 8} {
				for _, fw := range []int{1, 2, 4, 8} {
					for _, db := range []bool{false, true} {
						out = append(out, BeamformerConfig{bx, by, fb, fw, db})
					}
				}
			}
		}
	}
	return out
}

// sharedMemBytes estimates the shared-memory footprint of a variant: each
// fragment stages 16×16 half-precision tiles, doubled when double-buffered.
func (c BeamformerConfig) sharedMemBytes() int {
	tiles := c.FragsPerBlock * c.BlockY
	bytes := tiles * 16 * 16 * 2 * 2 // A and B tiles, 2 bytes per element
	if c.DoubleBuffer {
		bytes *= 2
	}
	return bytes
}

// sharedMemBudget is the per-SM shared memory the variants compete for.
const sharedMemBudget = 96 * 1024

// Efficiency returns the fraction of the device's peak tensor throughput the
// variant achieves at the given clock. The surface encodes the standard
// performance phenomena of tensor-core GEMMs:
//
//   - an occupancy sweet spot in threads per block,
//   - instruction-level parallelism that saturates with fragments per warp,
//   - shared-memory pressure that throttles occupancy for big tiles,
//   - double buffering that helps exactly when shared memory still fits,
//   - a memory-bandwidth rolloff that grows with clock (compute outpaces
//     DRAM), steeper for variants with little data reuse.
//
// A small deterministic per-variant jitter spreads the cloud as real
// compilers do.
func (c BeamformerConfig) Efficiency(spec gpu.Spec, clockMHz float64) float64 {
	threads := c.BlockX * c.BlockY

	// Occupancy: peak near 256 threads/block, penalised at the extremes.
	occ := 1.0 - 0.22*math.Abs(math.Log2(float64(threads)/256))/3

	// ILP from fragments per warp: saturating benefit.
	ilp := 1 - 0.45*math.Exp(-float64(c.FragsPerWarp)/1.8)

	// Tile work per block: more fragments per block amortise loads, with
	// diminishing returns.
	reuse := 1 - 0.30*math.Exp(-float64(c.FragsPerBlock)/2.2)

	// Shared-memory pressure: exceeding the budget collapses occupancy.
	smem := c.sharedMemBytes()
	pressure := 1.0
	if smem > sharedMemBudget {
		pressure = float64(sharedMemBudget) / float64(smem) * 0.8
	}

	// Double buffering hides global-memory latency when it fits.
	dbl := 1.0
	if c.DoubleBuffer && smem <= sharedMemBudget {
		dbl = 1.08
	}

	// Memory rolloff: data reuse shrinks the DRAM pressure; at higher
	// clocks compute outpaces the memory system.
	reuseDepth := float64(c.FragsPerBlock*c.FragsPerWarp) / 64
	memPressure := 0.30 * (1 - reuseDepth)
	if memPressure < 0.03 {
		memPressure = 0.03
	}
	clockFrac := clockMHz / spec.BoostClockMHz
	mem := 1 / (1 + memPressure*clockFrac)

	eff := occ * ilp * reuse * pressure * dbl * mem

	// Instruction overheads (indexing, synchronisation, epilogue) cap even
	// the best tensor-core GEMMs well below peak.
	eff *= 0.80

	// Deterministic ±3% per-variant jitter.
	eff *= 1 + 0.03*(c.hash01()*2-1)

	if eff > 0.99 {
		eff = 0.99
	}
	if eff < 0.02 {
		eff = 0.02
	}
	return eff
}

// Intensity returns the variant's dynamic-power intensity: compute-denser
// variants (more ILP, double buffering) draw more power at a given clock.
func (c BeamformerConfig) Intensity() float64 {
	base := 0.62
	base += 0.06 * (1 - math.Exp(-float64(c.FragsPerWarp)/2))
	base += 0.04 * (1 - math.Exp(-float64(c.FragsPerBlock)/3))
	if c.DoubleBuffer {
		base += 0.03
	}
	return base
}

// hash01 maps the variant to a deterministic value in [0, 1).
func (c BeamformerConfig) hash01() float64 {
	h := uint64(2166136261)
	mix := func(v int) {
		h ^= uint64(v)
		h *= 16777619
		h ^= h >> 13
	}
	mix(c.BlockX)
	mix(c.BlockY * 131)
	mix(c.FragsPerBlock * 2477)
	mix(c.FragsPerWarp * 49031)
	if c.DoubleBuffer {
		mix(900001)
	}
	return float64(h%100000) / 100000
}

// Kernel materialises the variant as a launchable GPU kernel for the given
// device and clock.
func (c BeamformerConfig) Kernel(spec gpu.Spec, clockMHz float64, p BeamformerProblem) gpu.Kernel {
	return gpu.Kernel{
		Name:       "tcbf-" + c.String(),
		FLOPs:      p.FLOPs(),
		Waves:      1,
		Intensity:  c.Intensity(),
		Efficiency: c.Efficiency(spec, clockMHz),
	}
}
