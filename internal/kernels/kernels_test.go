package kernels

import (
	"math"
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/stats"
)

func TestSyntheticFMATargetsDuration(t *testing.T) {
	spec := gpu.RTX4000Ada()
	k := SyntheticFMA(spec, 2*time.Second)
	g := gpu.New(spec, 1)
	run := g.LaunchKernel(k, 0)
	if d := run.Duration(); d < 1500*time.Millisecond || d > 3*time.Second {
		t.Fatalf("kernel runs %v, want ~2 s", d)
	}
	if k.Waves < 2 {
		t.Fatalf("waves = %d; phases must be visible", k.Waves)
	}
}

func TestSpaceSize(t *testing.T) {
	// The paper: 512 code variants.
	if got := len(Space()); got != 512 {
		t.Fatalf("search space = %d variants, want 512", got)
	}
}

func TestSpaceDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Space() {
		s := c.String()
		if seen[s] {
			t.Fatalf("duplicate variant %s", s)
		}
		seen[s] = true
	}
}

func TestProblemFLOPs(t *testing.T) {
	p := DefaultProblem()
	want := 8 * 4096.0 * 4096 * 4096
	if p.FLOPs() != want {
		t.Fatalf("FLOPs = %v", p.FLOPs())
	}
}

func TestEfficiencyBounds(t *testing.T) {
	spec := gpu.RTX4000Ada()
	for _, c := range Space() {
		for _, clock := range []float64{1485, 1815} {
			e := c.Efficiency(spec, clock)
			if e <= 0 || e > 1 {
				t.Fatalf("%s @%v: efficiency %v out of (0,1]", c, clock, e)
			}
		}
	}
}

func TestBestEfficiencyIsRealistic(t *testing.T) {
	// The fastest variant should reach roughly 80-90% of peak — enough to
	// land near the paper's 80.4 TFLOP/s on a 96 TFLOPS device.
	spec := gpu.RTX4000Ada()
	best := 0.0
	for _, c := range Space() {
		if e := c.Efficiency(spec, spec.BoostClockMHz); e > best {
			best = e
		}
	}
	if best < 0.75 || best > 0.95 {
		t.Fatalf("best efficiency %v, want in [0.75, 0.95]", best)
	}
}

func TestSharedMemoryPressurePunishesHugeTiles(t *testing.T) {
	spec := gpu.RTX4000Ada()
	small := BeamformerConfig{BlockX: 128, BlockY: 2, FragsPerBlock: 4, FragsPerWarp: 4, DoubleBuffer: false}
	huge := BeamformerConfig{BlockX: 128, BlockY: 8, FragsPerBlock: 8, FragsPerWarp: 4, DoubleBuffer: true}
	if huge.sharedMemBytes() <= sharedMemBudget {
		t.Skip("huge config unexpectedly fits")
	}
	if huge.Efficiency(spec, 1815) >= small.Efficiency(spec, 1815) {
		t.Fatal("over-budget shared memory must hurt")
	}
}

func TestDoubleBufferingHelpsWhenFits(t *testing.T) {
	spec := gpu.RTX4000Ada()
	base := BeamformerConfig{BlockX: 128, BlockY: 2, FragsPerBlock: 2, FragsPerWarp: 4}
	db := base
	db.DoubleBuffer = true
	if db.sharedMemBytes() > sharedMemBudget {
		t.Skip("double-buffered config does not fit")
	}
	// Jitter differs per variant; require the benefit to exceed it.
	if db.Efficiency(spec, 1815) < base.Efficiency(spec, 1815)*1.00 {
		t.Fatalf("double buffering hurt: %v vs %v",
			db.Efficiency(spec, 1815), base.Efficiency(spec, 1815))
	}
}

func TestMemoryRolloffGrowsWithClock(t *testing.T) {
	spec := gpu.RTX4000Ada()
	c := BeamformerConfig{BlockX: 64, BlockY: 1, FragsPerBlock: 1, FragsPerWarp: 1}
	lo := c.Efficiency(spec, 1485)
	hi := c.Efficiency(spec, 1815)
	if hi >= lo {
		t.Fatalf("low-reuse variant should lose efficiency at high clock: %v vs %v", lo, hi)
	}
}

func TestIntensityRange(t *testing.T) {
	for _, c := range Space() {
		i := c.Intensity()
		if i < 0.6 || i > 0.8 {
			t.Fatalf("%s: intensity %v outside [0.6, 0.8]", c, i)
		}
	}
}

func TestEfficiencyDeterministic(t *testing.T) {
	spec := gpu.RTX4000Ada()
	c := Space()[137]
	if c.Efficiency(spec, 1600) != c.Efficiency(spec, 1600) {
		t.Fatal("efficiency not deterministic")
	}
}

func TestKernelMaterialisation(t *testing.T) {
	spec := gpu.RTX4000Ada()
	c := Space()[0]
	k := c.Kernel(spec, 1815, DefaultProblem())
	if k.FLOPs != DefaultProblem().FLOPs() {
		t.Fatal("FLOPs mismatch")
	}
	if k.Efficiency != c.Efficiency(spec, 1815) {
		t.Fatal("efficiency mismatch")
	}
	g := gpu.New(spec, 2)
	g.SetAppClock(1815)
	run := g.LaunchKernel(k, 0)
	// 5.5e11 FLOPs at tens of TFLOP/s → milliseconds.
	if run.Duration() < time.Millisecond || run.Duration() > 500*time.Millisecond {
		t.Fatalf("beamformer kernel runs %v", run.Duration())
	}
}

// The central premise of Fig. 8: across the space, performance and energy
// efficiency must correlate positively but imperfectly.
func TestPerfEfficiencyCorrelation(t *testing.T) {
	spec := gpu.RTX4000Ada()
	g := gpu.New(spec, 3)
	var perf, eff []float64
	for _, c := range Space() {
		for _, clock := range []float64{1485.0, 1665, 1815} {
			e := c.Efficiency(spec, clock)
			tf := g.TFLOPS(clock) * e
			powerW := spec.IdleW + (spec.LimitW-spec.IdleW)*c.Intensity()*
				math.Pow(clock/spec.BoostClockMHz, spec.DynAlpha)
			perf = append(perf, tf)
			eff = append(eff, tf/powerW)
		}
	}
	r := stats.Pearson(perf, eff)
	if r < 0.3 || r > 0.98 {
		t.Fatalf("perf/efficiency correlation r=%v, want positive but imperfect", r)
	}
}
