package export

// Tests for the sharded scrape renderer: per-shard generation
// invalidation (a busy station re-renders only its own shard's segment),
// shard-scoped cache eviction under churn, scrape well-formedness at 1k
// stations with live churn, and the render path's allocation bound.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/simsetup"
)

// twoShardFleet builds a manager holding one fast 20 kHz synth station
// and one slow 10 Hz nvml station whose names hash to different shards,
// returning the manager and the two shard indices.
func twoShardFleet(t *testing.T) (mgr *fleet.Manager, fastShard, slowShard int) {
	t.Helper()
	mgr = fleet.NewManager(fleet.Config{Shards: 8})
	t.Cleanup(mgr.Close)
	slowName := "slow0"
	slowShard = mgr.ShardOf(slowName)
	fastName := ""
	for i := 0; i < 100; i++ {
		if n := fmt.Sprintf("fast%d", i); mgr.ShardOf(n) != slowShard {
			fastName = n
			break
		}
	}
	if fastName == "" {
		t.Fatal("no candidate name hashed outside the slow station's shard")
	}
	fastShard = mgr.ShardOf(fastName)
	for _, st := range []struct{ name, kind string }{
		{fastName, "synth"}, {slowName, "nvml"},
	} {
		src, err := simsetup.NewStation(st.kind, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mgr.Add(st.name, st.kind, src); err != nil {
			t.Fatal(err)
		}
	}
	return mgr, fastShard, slowShard
}

// TestShardSegmentInvalidation pins the tentpole contract: a downsample
// block completed by one busy station invalidates that station's shard
// segment only — the repeat scrape re-renders one segment and serves the
// rest (including the idle station's series) from cache.
func TestShardSegmentInvalidation(t *testing.T) {
	mgr, fastShard, slowShard := twoShardFleet(t)
	// Warm to 205ms: the 10 Hz nvml station samples at 100ms multiples,
	// so the 2ms step below crosses no slow-station sample boundary
	// while the 20 kHz synth station completes two 1ms blocks.
	mgr.StepAll(205 * time.Millisecond)
	e := New(mgr)
	srv := httptest.NewServer(e.Handler())
	t.Cleanup(srv.Close)

	get(t, srv.URL+"/metrics") // cold: every shard renders
	cold := e.shardRenders.Load()
	if cold != uint64(mgr.ShardCount()) {
		t.Fatalf("cold scrape rendered %d segments, want %d", cold, mgr.ShardCount())
	}
	get(t, srv.URL+"/metrics") // idle repeat: all segments cached
	if n := e.shardRenders.Load(); n != cold {
		t.Fatalf("idle repeat scrape re-rendered %d segments", n-cold)
	}
	if hits := e.cacheHits.Load(); hits != 1 {
		t.Fatalf("idle repeat scrape was not a cache hit (hits=%d)", hits)
	}

	slowGen := mgr.ShardGen(slowShard)
	fastGen := mgr.ShardGen(fastShard)
	mgr.StepAll(2 * time.Millisecond)
	if mgr.ShardGen(slowShard) != slowGen {
		t.Fatal("slow shard's generation moved without a completed block")
	}
	if mgr.ShardGen(fastShard) == fastGen {
		t.Fatal("fast shard's generation did not move after two blocks")
	}

	_, body := get(t, srv.URL+"/metrics")
	if n := e.shardRenders.Load(); n != cold+1 {
		t.Errorf("busy-station scrape re-rendered %d segments, want exactly 1", n-cold)
	}
	if misses := e.cacheMisses.Load(); misses != 2 {
		t.Errorf("busy-station scrape misses = %d, want 2 (cold + this one)", misses)
	}
	// The slow station's series still serve — from the cached segment.
	if !strings.Contains(body, `powersensor_source_info{device="slow0",backend="nvml",kind="nvml"} 1`) {
		t.Error("cached shard's station missing from the assembled body")
	}
}

// TestShardChurnInvalidation pins the churn side of per-shard
// generations: hot-adding a station re-renders exactly the shard it
// hashed into, and retiring it again re-renders only that shard.
func TestShardChurnInvalidation(t *testing.T) {
	mgr, _, _ := twoShardFleet(t)
	e := New(mgr)
	srv := httptest.NewServer(e.Handler())
	t.Cleanup(srv.Close)

	get(t, srv.URL+"/metrics")
	base := e.shardRenders.Load()
	addSynth(t, mgr, "hot0", 7)
	get(t, srv.URL+"/metrics")
	if n := e.shardRenders.Load(); n != base+1 {
		t.Errorf("hot-add scrape re-rendered %d segments, want 1", n-base)
	}
	if err := mgr.Remove("hot0"); err != nil {
		t.Fatal(err)
	}
	_, body := get(t, srv.URL+"/metrics")
	if n := e.shardRenders.Load(); n != base+2 {
		t.Errorf("retire scrape re-rendered %d segments in total, want 2", n-base)
	}
	if strings.Contains(body, `device="hot0"`) {
		t.Error("retired station's series survived its shard's re-render")
	}
}

// TestScrapeChurn1k is the churn well-formedness contract at fleet
// scale: 1000 sharded stations stepping and churning while scrapes run —
// every body parses, the comment skeleton stays complete, and the churn
// counters stay monotonic with retired <= adopted.
func TestScrapeChurn1k(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 1000; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "st%d=synth", i)
	}
	mgr, err := fleet.FromSpec(sb.String(), 1, fleet.Config{RingCap: 128, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	mgr.StepAll(20 * time.Millisecond)
	srv := httptest.NewServer(New(mgr).Handler())
	t.Cleanup(srv.Close)

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(2)
	go func() { // stepper: the whole fleet stays busy
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
				mgr.StepAll(time.Millisecond)
			}
		}
	}()
	go func() { // churner: stations come and go under the scrapes
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("churn%d", i%10)
			addSynth(t, mgr, name, uint64(i))
			if err := mgr.Remove(name); err != nil {
				t.Errorf("Remove(%s): %v", name, err)
				return
			}
		}
	}()

	sample := regexp.MustCompile(`^[a-z_]+(\{[a-z_]+="[^"]*"(,[a-z_]+="[^"]*")*\})? -?[0-9]+(\.[0-9]+)?(e[+-][0-9]+)?$`)
	counter := func(body, name string) uint64 {
		m := regexp.MustCompile(name + ` ([0-9]+)\n`).FindStringSubmatch(body)
		if m == nil {
			t.Fatalf("scrape lost %s", name)
		}
		n, err := strconv.ParseUint(m[1], 10, 64)
		if err != nil {
			t.Fatalf("unparsable %s: %v", name, err)
		}
		return n
	}
	var lastAdopted, lastRetired uint64
	for i := 0; i < 8; i++ {
		code, body := get(t, srv.URL+"/metrics")
		if code != http.StatusOK {
			t.Fatalf("scrape %d: status %d", i, code)
		}
		comments := 0
		for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
			if strings.HasPrefix(line, "# ") {
				comments++
				continue
			}
			if !sample.MatchString(line) {
				t.Fatalf("malformed sample line at 1k under churn: %q", line)
			}
		}
		if comments != 82 {
			t.Fatalf("1k churn scrape has %d comment lines, want 82", comments)
		}
		adopted := counter(body, "powersensor_fleet_adopted_total")
		retired := counter(body, "powersensor_fleet_retired_total")
		if adopted < lastAdopted || retired < lastRetired {
			t.Fatalf("churn counters went backwards: adopted %d->%d retired %d->%d",
				lastAdopted, adopted, lastRetired, retired)
		}
		if retired > adopted {
			t.Fatalf("retired %d exceeds adopted %d", retired, adopted)
		}
		lastAdopted, lastRetired = adopted, retired
	}
	close(stop)
	churn.Wait()
}

// discardWriter is a ResponseWriter with a preallocated header and no
// body retention, so scrape allocation measurements see the render path
// rather than recorder bookkeeping.
type discardWriter struct{ h http.Header }

func (w *discardWriter) Header() http.Header         { return w.h }
func (w *discardWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *discardWriter) WriteHeader(int)             {}

// TestScrapeRenderAllocBound extends the zero-alloc scrape guard to a
// sharded 1k fleet: once label caches, segments and the pooled scrape
// state are warm, both the cache-hit path and the full re-render path
// allocate only net/http's Content-Type header value slice — one
// allocation per scrape, none of it proportional to fleet size.
func TestScrapeRenderAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under the race detector, so the pooled scrape state reallocates; the bound holds only in normal builds")
	}
	var sb strings.Builder
	for i := 0; i < 1000; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "st%d=synth", i)
	}
	mgr, err := fleet.FromSpec(sb.String(), 1, fleet.Config{RingCap: 128, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	mgr.StepAll(20 * time.Millisecond)

	// Pin the GC for the measurement: a collection landing inside an
	// AllocsPerRun window clears the scratch pool (same mechanism as the
	// race-build skip above), and the refill — a fleet-sized snapshot
	// rebuild — would charge thousands of allocations to whichever run
	// drew the emptied pool, measuring GC scheduling instead of the
	// render path.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	e := New(mgr).RenderWorkers(1)
	w := &discardWriter{h: make(http.Header, 4)}
	e.metrics(w, nil) // warm segments, labels and the pooled state
	e.metrics(w, nil)
	hit := testing.AllocsPerRun(20, func() { e.metrics(w, nil) })
	if hit > 1 {
		t.Errorf("cache-hit scrape allocates %v per call, want <= 1 (header only)", hit)
	}

	e2 := New(mgr).DisableBodyCache().RenderWorkers(1)
	e2.metrics(w, nil)
	e2.metrics(w, nil)
	render := testing.AllocsPerRun(20, func() { e2.metrics(w, nil) })
	if render > 1 {
		t.Errorf("full re-render scrape allocates %v per call, want <= 1 (header only)", render)
	}
}

// TestRenderWorkersParallel exercises the bounded worker pool: with
// several workers and every shard stale, the scrape must still produce
// a correct, complete body and refresh every segment exactly once.
func TestRenderWorkersParallel(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 64; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "st%d=synth", i)
	}
	mgr, err := fleet.FromSpec(sb.String(), 1, fleet.Config{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	mgr.StepAll(20 * time.Millisecond)
	e := New(mgr).RenderWorkers(4)
	srv := httptest.NewServer(e.Handler())
	t.Cleanup(srv.Close)

	_, body := get(t, srv.URL+"/metrics")
	for i := 0; i < 64; i++ {
		if !strings.Contains(body, fmt.Sprintf(`powersensor_board_watts{device="st%d"} `, i)) {
			t.Fatalf("parallel-rendered body lost st%d", i)
		}
	}
	if n := e.shardRenders.Load(); n != uint64(mgr.ShardCount()) {
		t.Errorf("parallel cold scrape rendered %d segments, want %d", n, mgr.ShardCount())
	}
	// And the refreshed cache serves a hit.
	get(t, srv.URL+"/metrics")
	if hits := e.cacheHits.Load(); hits != 1 {
		t.Errorf("repeat scrape after parallel render missed (hits=%d)", hits)
	}
}
