// Package export serves a fleet.Manager over HTTP: a Prometheus-style
// text exposition endpoint for scrapers, a JSON snapshot API for
// dashboards, and per-station trace downloads reusing the trace package's
// CSV/JSON writers. It is the observability surface of the fleet subsystem
// — modeled on standalone hardware exporters, but with no dependency
// beyond the standard library.
//
// The scrape path is built for large fleets: device statuses come from the
// manager's lock-free snapshots (a scrape never touches a station's ingest
// mutex), label blocks and HELP/TYPE headers are rendered once and cached,
// and each scrape renders every family in a single pass into a pooled
// reusable buffer — steady-state scrape cost is appending numbers. On top
// of that, the whole rendered body is cached per block-boundary
// generation (fleet.Manager.Gen): a repeat scrape arriving before any
// station completes a new downsample block — an idle fleet, or several
// scrapers sharing one exporter — serves the previous body for the cost
// of a memcpy.
//
// Fleets churn while serving: stations hot-added or retired mid-scrape
// simply appear in (or vanish from) the next snapshot, the
// powersensor_fleet_adopted_total / powersensor_fleet_retired_total
// counters account for the churn, and retirement drops the per-device
// label cache so retired names neither linger nor poison a reused name.
//
// Endpoints (all GET):
//
//	/metrics                      Prometheus text exposition (version 0.0.4)
//	/api/fleet                    JSON status of every station
//	/api/device/{name}/trace      recent downsampled trace; ?format=csv|json
//	                              (default csv), ?points=N caps the length
//	/healthz                      liveness probe
package export

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fleet"
)

// Exporter renders a fleet.Manager over HTTP.
type Exporter struct {
	mgr *fleet.Manager

	// labelMu guards labels, a per-device cache of rendered exposition
	// label blocks. Device names, backends, kinds and channel labels are
	// immutable for the life of a station, so each block is escaped and
	// formatted once instead of on every scrape — the scrape hot path
	// then only appends numbers. Retirement invalidates the cache: a
	// retired name must not linger (the fleet may churn through thousands
	// of stations), and the same name may return with a different kind or
	// channel set, so any advance of the manager's retired counter drops
	// the whole cache and lets the surviving fleet rebuild on next sight.
	// lastRetired is the counter value the cache was built against.
	labelMu     sync.Mutex
	labels      map[string]*devLabels
	lastRetired uint64

	// scratch pools per-scrape working state (the render buffer and the
	// resolved label list), so concurrent scrapes reuse buffers instead
	// of reallocating them.
	scratch sync.Pool

	// The rendered-body cache: when the fleet's block-boundary generation
	// (fleet.Manager.Gen) has not advanced since the last render, the
	// previous body is served as-is — repeat scrapes of an idle fleet (or
	// several scrapers hitting one exporter between block boundaries) pay
	// a memcpy instead of a full render. A cached body is at most one
	// downsample block stale, and its scrape-duration gauge reports the
	// cached render's cost. cacheGen is the generation the body was
	// rendered against, loaded BEFORE that render's snapshot so a block
	// landing mid-render invalidates conservatively. cacheHits counts
	// served-from-cache scrapes (read by tests and benchmarks).
	cacheOn   bool
	cacheMu   sync.Mutex
	cacheGen  uint64
	cacheBody []byte
	cacheHits atomic.Uint64
}

// devLabels is the pre-rendered label set of one station.
type devLabels struct {
	dev   string   // {device="X"}
	info  string   // {device="X",backend="B",kind="K"}
	pairs []string // {device="X",pair="0",channel="C"} per channel
}

// scrapeState is one scrape's reusable working memory.
type scrapeState struct {
	buf    []byte
	labels []*devLabels
	snap   []fleet.Status
}

// New returns an exporter over mgr, with the rendered-body cache on.
func New(mgr *fleet.Manager) *Exporter {
	e := &Exporter{mgr: mgr, labels: make(map[string]*devLabels), cacheOn: true}
	e.scratch.New = func() any {
		return &scrapeState{buf: make([]byte, 0, 16<<10)}
	}
	return e
}

// DisableBodyCache turns off the block-generation body cache, forcing
// every scrape down the full render path — for benchmarks and tests that
// measure or exercise rendering itself. Call before serving; it returns
// the exporter for chaining.
func (e *Exporter) DisableBodyCache() *Exporter {
	e.cacheOn = false
	return e
}

// labelsForAll resolves the cached rendered labels of every station in
// snap into st.labels, building missing entries on first sight. One lock
// acquisition covers the whole snapshot. retired is the manager's retired
// counter as read BEFORE the snapshot was taken: if any station retired
// since the cache was built, the cache is dropped wholesale. Reading the
// counter before the snapshot makes the invalidation conservative — a
// retirement landing between the two reads leaves a stale entry for at
// most one scrape. In that window the retired name can even be re-adopted
// and appear in the snapshot against the stale entry; the per-entry shape
// check below rebuilds it when the channel count changed (rendering with
// a too-short pairs slice would panic), and a same-shape stale entry
// serves old backend/kind labels for that one scrape until the next one
// observes the counter advance and clears the cache.
func (e *Exporter) labelsForAll(snap []fleet.Status, st *scrapeState, retired uint64) {
	st.labels = st.labels[:0]
	e.labelMu.Lock()
	defer e.labelMu.Unlock()
	if retired != e.lastRetired {
		e.lastRetired = retired
		clear(e.labels)
	}
	for i := range snap {
		s := &snap[i]
		l, ok := e.labels[s.Name]
		if ok && len(l.pairs) != s.Pairs {
			ok = false // name reused with a different channel set: rebuild
		}
		if !ok {
			l = &devLabels{
				dev: fmt.Sprintf(`{device="%s"}`, escapeLabel(s.Name)),
				info: fmt.Sprintf(`{device="%s",backend="%s",kind="%s"}`,
					escapeLabel(s.Name), escapeLabel(s.Backend), escapeLabel(s.Kind)),
			}
			for m := 0; m < s.Pairs; m++ {
				channel := fmt.Sprintf("pair%d", m)
				if m < len(s.Channels) {
					channel = s.Channels[m]
				}
				l.pairs = append(l.pairs, fmt.Sprintf(`{device="%s",pair="%d",channel="%s"}`,
					escapeLabel(s.Name), m, escapeLabel(channel)))
			}
			e.labels[s.Name] = l
		}
		st.labels = append(st.labels, l)
	}
}

// Handler returns the exporter's route table.
func (e *Exporter) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", e.metrics)
	mux.HandleFunc("GET /api/fleet", e.fleetJSON)
	mux.HandleFunc("GET /api/device/{name}/trace", e.deviceTrace)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /{$}", e.index)
	return mux
}

// index is a minimal landing page linking the endpoints.
func (e *Exporter) index(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<html><head><title>PowerSensor3 fleet</title></head><body>
<h1>PowerSensor3 fleet</h1>
<p>%d stations</p>
<ul>
<li><a href="/metrics">/metrics</a></li>
<li><a href="/api/fleet">/api/fleet</a></li>
<li>/api/device/{name}/trace?format=csv|json&amp;points=N</li>
</ul>
</body></html>
`, e.mgr.Size())
}

// header pre-renders one family's HELP/TYPE comment block.
func header(name, help, typ string) string {
	return "# HELP " + name + " " + help + "\n# TYPE " + name + " " + typ + "\n"
}

// The exposition skeleton, rendered once at package load. Family order is
// fixed so the output stays golden-testable.
var (
	hdrFleetDevices = header("powersensor_fleet_devices",
		"Stations owned by the fleet manager.", "gauge")
	hdrFleetAdopted = header("powersensor_fleet_adopted_total",
		"Stations ever adopted by the fleet manager.", "counter")
	hdrFleetRetired = header("powersensor_fleet_retired_total",
		"Stations ever retired from the fleet manager.", "counter")
	hdrSourceInfo = header("powersensor_source_info",
		"Measurement backend serving each station; always 1.", "gauge")
	hdrSourceRate = header("powersensor_source_rate_hz",
		"Native sample rate of each station's backend, in hertz.", "gauge")
	hdrSourceOverhead = header("powersensor_source_overhead_seconds",
		"Cumulative wall time each station's source spent sampling inside ReadInto, in seconds.", "gauge")
	hdrWatts = header("powersensor_watts",
		"Block-averaged power per measurement channel, in watts.", "gauge")
	hdrBoardWatts = header("powersensor_board_watts",
		"Block-averaged summed board power per station, in watts.", "gauge")
	hdrJoules = header("powersensor_joules_total",
		"Cumulative energy per station since adoption, in joules.", "counter")
	hdrSamples = header("powersensor_samples_total",
		"Sample sets ingested per station, at the source's native rate.", "counter")
	hdrMarks = header("powersensor_marks_total",
		"Time-synced user markers ingested per station.", "counter")
	hdrResyncs = header("powersensor_resyncs_total",
		"Stream bytes skipped to regain protocol alignment.", "counter")
	hdrDropped = header("powersensor_dropped_deliveries_total",
		"Subscriber deliveries dropped on full fan-out channels.", "counter")
	hdrRingPoints = header("powersensor_ring_points",
		"Downsampled points currently buffered per station.", "gauge")
	hdrVirtualSeconds = header("powersensor_device_virtual_seconds",
		"Virtual time of each station's clock, in seconds.", "gauge")
	hdrScrapeDuration = header("powersensor_scrape_duration_seconds",
		"Wall time spent rendering this scrape.", "gauge")
)

// appendSample renders one exposition line: name, optional label block,
// value, newline — all appends into the pooled buffer. Integral values
// (most of a scrape: counters, rates, the info gauge) take the integer
// formatter, several times cheaper than shortest-float; both spell
// integers below 1e15 identically, so the output is unchanged.
func appendSample(buf []byte, name, labels string, v float64) []byte {
	buf = append(buf, name...)
	buf = append(buf, labels...)
	buf = append(buf, ' ')
	if i := int64(v); float64(i) == v && (i > -1e15 && i < 1e15) {
		buf = strconv.AppendInt(buf, i, 10)
	} else {
		buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
	}
	return append(buf, '\n')
}

// metrics renders the Prometheus text exposition format: one pass per
// family straight into the pooled buffer, appending cached headers and
// label blocks plus freshly formatted numbers. Families and rows are
// emitted in deterministic order so the output is golden-testable.
func (e *Exporter) metrics(w http.ResponseWriter, _ *http.Request) {
	began := time.Now()
	st := e.scratch.Get().(*scrapeState)
	// Body cache: if no station produced a downsample block and no churn
	// happened since the last render, the previous body is still current
	// (to within one open block) — copy it out under the cache lock and
	// serve, skipping snapshot and render entirely. The copy (into the
	// pooled buffer) keeps the cached bytes immutable under concurrent
	// scrapes, and the response is written only after the lock is
	// released so a slow client cannot stall other scrapers.
	//
	// Cache misses render single-flight: cacheMu stays held across
	// snapshot, render and store. Were two same-generation renders
	// allowed to interleave, the one holding the OLDER snapshot could
	// store last (per-step published cells such as samples and overhead
	// advance without changing Gen), and later cache hits would serve
	// counters below values the fresher render already returned — a
	// counter regression scrapers would read as a reset. Serialising
	// renders makes every stored body at least as fresh as any body
	// served before it; the concurrent scrape that would have rendered a
	// duplicate waits briefly and then usually hits the fresh cache.
	var gen uint64
	if e.cacheOn {
		gen = e.mgr.Gen()
		e.cacheMu.Lock()
		if e.cacheBody != nil && e.cacheGen == gen {
			buf := append(st.buf[:0], e.cacheBody...)
			e.cacheMu.Unlock()
			e.cacheHits.Add(1)
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_, _ = w.Write(buf)
			st.buf = buf
			e.scratch.Put(st)
			return
		}
		// Miss: keep holding cacheMu through snapshot, render and store
		// (released just before the response is written).
	}
	// Churn counters load before the snapshot: labelsForAll's cache
	// invalidation depends on this ordering (see its comment), and a
	// scraper diffing adopted-retired against the device count then sees
	// the counters lag — never lead — the list. Retired loads first:
	// adopted only grows and bounds retired at every instant, so reading
	// it second keeps retired <= adopted within one exposition even when
	// churn cycles complete between the two loads.
	retired, adopted := e.mgr.Retired(), e.mgr.Adopted()
	snap := e.mgr.SnapshotInto(st.snap[:0])
	st.snap = snap
	e.labelsForAll(snap, st, retired)
	buf := st.buf[:0]

	buf = append(buf, hdrFleetDevices...)
	buf = appendSample(buf, "powersensor_fleet_devices", "", float64(len(snap)))
	buf = append(buf, hdrFleetAdopted...)
	buf = appendSample(buf, "powersensor_fleet_adopted_total", "", float64(adopted))
	buf = append(buf, hdrFleetRetired...)
	buf = appendSample(buf, "powersensor_fleet_retired_total", "", float64(retired))
	buf = append(buf, hdrSourceInfo...)
	for i := range snap {
		buf = appendSample(buf, "powersensor_source_info", st.labels[i].info, 1)
	}
	buf = append(buf, hdrSourceRate...)
	for i := range snap {
		buf = appendSample(buf, "powersensor_source_rate_hz", st.labels[i].dev, snap[i].RateHz)
	}
	buf = append(buf, hdrSourceOverhead...)
	for i := range snap {
		buf = appendSample(buf, "powersensor_source_overhead_seconds", st.labels[i].dev, snap[i].OverheadSeconds)
	}
	buf = append(buf, hdrWatts...)
	for i := range snap {
		for m, watts := range snap[i].PairWatts {
			buf = appendSample(buf, "powersensor_watts", st.labels[i].pairs[m], watts)
		}
	}
	buf = append(buf, hdrBoardWatts...)
	for i := range snap {
		buf = appendSample(buf, "powersensor_board_watts", st.labels[i].dev, snap[i].Watts)
	}
	buf = append(buf, hdrJoules...)
	for i := range snap {
		buf = appendSample(buf, "powersensor_joules_total", st.labels[i].dev, snap[i].Joules)
	}
	buf = append(buf, hdrSamples...)
	for i := range snap {
		buf = appendSample(buf, "powersensor_samples_total", st.labels[i].dev, float64(snap[i].Samples))
	}
	buf = append(buf, hdrMarks...)
	for i := range snap {
		buf = appendSample(buf, "powersensor_marks_total", st.labels[i].dev, float64(snap[i].Marks))
	}
	buf = append(buf, hdrResyncs...)
	for i := range snap {
		buf = appendSample(buf, "powersensor_resyncs_total", st.labels[i].dev, float64(snap[i].Resyncs))
	}
	buf = append(buf, hdrDropped...)
	for i := range snap {
		buf = appendSample(buf, "powersensor_dropped_deliveries_total", st.labels[i].dev, float64(snap[i].Dropped))
	}
	buf = append(buf, hdrRingPoints...)
	for i := range snap {
		buf = appendSample(buf, "powersensor_ring_points", st.labels[i].dev, float64(snap[i].RingLen))
	}
	buf = append(buf, hdrVirtualSeconds...)
	for i := range snap {
		buf = appendSample(buf, "powersensor_device_virtual_seconds", st.labels[i].dev, snap[i].Now.Seconds())
	}
	buf = append(buf, hdrScrapeDuration...)
	buf = appendSample(buf, "powersensor_scrape_duration_seconds", "", time.Since(began).Seconds())

	if e.cacheOn {
		// Store against the generation loaded before the snapshot (still
		// under the render lock): if a block landed mid-render the stored
		// generation is already stale and the next scrape re-renders —
		// the conservative direction.
		e.cacheBody = append(e.cacheBody[:0], buf...)
		e.cacheGen = gen
		e.cacheMu.Unlock()
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(buf)
	st.buf = buf
	e.scratch.Put(st)
}

// labelEscaper escapes label values per the exposition format.
var labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	return labelEscaper.Replace(s)
}

// fleetSnapshot is the /api/fleet response body.
type fleetSnapshot struct {
	Devices []fleet.Status `json:"devices"`
}

func (e *Exporter) fleetJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(fleetSnapshot{Devices: e.mgr.Snapshot()})
}

// deviceTrace serves the recent downsampled trace of one station.
func (e *Exporter) deviceTrace(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	d := e.mgr.Device(name)
	if d == nil {
		http.Error(w, fmt.Sprintf("unknown device %q (have %s)",
			name, strings.Join(e.mgr.Names(), ", ")), http.StatusNotFound)
		return
	}
	max := 0
	if s := r.URL.Query().Get("points"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			http.Error(w, fmt.Sprintf("bad points=%q (want a positive count)", s),
				http.StatusBadRequest)
			return
		}
		max = n
	}
	tr := d.Trace(max)
	switch format := r.URL.Query().Get("format"); format {
	case "", "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=%s.csv", sanitizeFilename(name)))
		if err := tr.WriteCSV(w); err != nil {
			// Headers are gone; nothing useful to do but note it.
			return
		}
	case "json":
		w.Header().Set("Content-Type", "application/json")
		_ = tr.WriteJSON(w)
	default:
		http.Error(w, fmt.Sprintf("bad format=%q (want csv or json)", format),
			http.StatusBadRequest)
	}
}

// sanitizeFilename keeps the download filename header safe.
func sanitizeFilename(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}
