// Package export serves a fleet.Manager over HTTP: a Prometheus-style
// text exposition endpoint for scrapers, a JSON snapshot API for
// dashboards, and per-station trace downloads reusing the trace package's
// CSV/JSON writers. It is the observability surface of the fleet subsystem
// — modeled on standalone hardware exporters, but with no dependency
// beyond the standard library.
//
// The scrape path is built for large fleets: device statuses come from the
// manager's lock-free snapshots (a scrape never touches a station's ingest
// mutex), label blocks and HELP/TYPE headers are rendered once and cached,
// and each scrape renders every family in a single pass into a pooled
// reusable buffer — steady-state scrape cost is appending numbers.
//
// Rendering and caching are sharded along the fleet manager's own
// partitions: each fleet shard has its own rendered exposition segment,
// cached against that shard's block-boundary generation
// (fleet.Manager.ShardGen). A scrape checks every shard's generation,
// re-renders only the stale segments (optionally across a bounded worker
// pool — see RenderWorkers), and assembles the body by concatenating the
// per-shard segments family-major, so the exposition stays grouped by
// family as the text format requires. One busy station therefore
// invalidates one shard's segment, and a repeat scrape re-renders 1/Nth
// of the fleet instead of all of it; a fully idle fleet serves every
// segment as a memcpy. Each segment is at most one downsample block
// stale.
//
// Fleets churn while serving: stations hot-added or retired mid-scrape
// simply appear in (or vanish from) the next snapshot, the
// powersensor_fleet_adopted_total / powersensor_fleet_retired_total
// counters account for the churn, and retirement drops the retiring
// station's shard label cache so retired names neither linger nor poison
// a reused name — names hash to shards deterministically, so the shard
// whose cache could go stale is always the shard whose retired counter
// advanced.
//
// The exposition has two sections. The fleet section — everything
// derived from station snapshots — is what the body cache holds. The
// self-telemetry tail (the powersensor_self_* families, build info and
// the scrape-duration gauge) renders fresh on every scrape, cache hit or
// not: it is the system observing itself, and serving week-old
// self-timings from an idle fleet's cached body would defeat the point.
// The tail renders the obs-layer histograms (ingest fold latency, driver
// pacing lateness, pipeline stage reads, scrape timing by path), the
// cache's own hit/miss counters, the lifecycle event-ring counters and
// fleet-wide ring occupancy — all from lock-free atomic reads, so a
// cache-hit scrape still never touches a station's ingest.
//
// Endpoints (all GET):
//
//	/metrics                      Prometheus text exposition (version 0.0.4)
//	/api/fleet                    JSON status of every station
//	/api/events                   JSON tail of the fleet lifecycle event
//	                              ring; ?n=N caps the tail (default 100)
//	/api/device/{name}/trace      recent downsampled trace; ?format=csv|json
//	                              (default csv), ?points=N caps the length
//	/api/device/{name}/energy     windowed energy query against the
//	                              long-horizon history tier: ?from= and ?to=
//	                              (seconds or Go durations) clip the window,
//	                              the response reports joules and the mean
//	                              watts over it; an empty window is 0 J
//	/api/device/{name}/history    long-range summed-power trace decoded from
//	                              the compressed history tier; ?from=, ?to=
//	                              window it, ?points=N decimates the result,
//	                              ?format=csv|json picks the trace encoding
//	/healthz                      fleet-aware liveness probe: 200 with
//	                              {"stations":N,"degraded":K} while any
//	                              station serves, 503 once every station
//	                              is stale or flatlined
package export

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/trace"
	"repro/internal/version"
)

// Exporter renders a fleet.Manager over HTTP.
type Exporter struct {
	mgr *fleet.Manager

	// shards holds one render cache per fleet shard, index-aligned with
	// the manager's shards: segment s renders exactly the stations of
	// fleet shard s, so fleet.Manager.ShardGen(s) is precisely the
	// staleness signal for segment s.
	shards []shardCache

	// renderWorkers bounds how many stale shard segments re-render
	// concurrently within one scrape. Defaults to GOMAXPROCS (clamped to
	// 8): on a single-CPU host stale segments render serially in the
	// scraping goroutine — the fan-out would only add handoff cost.
	renderWorkers int

	// scratch pools per-scrape working state (the render buffer, staged
	// per-shard segment copies and the resolved label list), so
	// concurrent scrapes reuse buffers instead of reallocating them.
	scratch sync.Pool

	// cacheOn gates the per-shard segment caches. A scrape is counted as
	// a cache hit only when every shard's segment was current — the
	// fleet section was assembled from memcpys alone; any stale segment
	// makes it a miss, however few shards re-rendered. Exported as
	// powersensor_self_scrape_cache_{hits,misses}_total.
	cacheOn     bool
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64

	// Per-shard render telemetry: how many segment re-renders scrapes
	// triggered (the sharding win shows as this counter advancing by ~1
	// per busy shard instead of by the shard count), and how long one
	// segment render takes.
	shardRenders    atomic.Uint64
	shardRenderHist obs.Hist

	// Scrape self-timing, split by serve path: full renders vs scrapes
	// whose fleet section came from the body cache. Exported as the
	// powersensor_self_scrape_seconds histogram.
	renderHist obs.Hist
	cachedHist obs.Hist
}

// shardCache is the render cache of one fleet shard: the shard's
// exposition segment, the generation it was rendered against, and the
// shard's own label cache.
type shardCache struct {
	// mu guards rendered/gen/seg/offs and serialises this shard's
	// re-renders single-flight. Shards lock independently — one shard
	// re-rendering never blocks another shard's memcpy.
	mu       sync.Mutex
	rendered bool // seg/gen valid; an empty shard's segment is legitimately empty
	gen      uint64
	seg      []byte
	// offs slices seg by per-device family: family f's rows for this
	// shard's stations are seg[offs[f]:offs[f+1]]. The assembly pass
	// concatenates family f across shards to keep the exposition
	// family-major as the text format requires.
	offs [nDevFams + 1]int

	// labelMu guards labels, this shard's cache of rendered exposition
	// label blocks. Device names, backends, kinds and channel labels are
	// immutable for the life of a station, so each block is escaped and
	// formatted once instead of on every scrape — the render path then
	// only appends numbers. Retirement invalidates the cache: a retired
	// name must not linger (the fleet may churn through thousands of
	// stations), and the same name may return with a different kind or
	// channel set. Names hash to shards deterministically, so only the
	// retiring station's own shard cache can go stale — any advance of
	// that shard's retired counter drops this shard's cache and lets its
	// surviving stations rebuild on next sight, leaving the other
	// shards' caches warm. lastRetired is the per-shard counter value
	// the cache was built against.
	labelMu     sync.Mutex
	labels      map[string]*devLabels
	lastRetired uint64
}

// devLabels is the pre-rendered label set of one station.
type devLabels struct {
	dev   string   // {device="X"}
	info  string   // {device="X",backend="B",kind="K"}
	pairs []string // {device="X",pair="0",channel="C"} per channel
}

// scrapeState is one scrape's reusable working memory.
type scrapeState struct {
	buf    []byte
	labels []*devLabels
	snap   []fleet.Status
	hist   obs.HistSnapshot

	// Per-shard staging for assembly: segment copies (so a shard
	// re-rendering concurrently can't mutate bytes mid-assembly), their
	// family offsets, and the indices of shards found stale this scrape.
	segs  [][]byte
	offs  [][nDevFams + 1]int
	stale []int
}

// New returns an exporter over mgr, with the per-shard segment caches on.
func New(mgr *fleet.Manager) *Exporter {
	nsh := 1
	if mgr != nil {
		nsh = mgr.ShardCount()
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	e := &Exporter{mgr: mgr, cacheOn: true, renderWorkers: workers}
	e.shards = make([]shardCache, nsh)
	for i := range e.shards {
		e.shards[i].labels = make(map[string]*devLabels)
	}
	e.scratch.New = func() any {
		return &scrapeState{
			buf:   make([]byte, 0, 16<<10),
			segs:  make([][]byte, nsh),
			offs:  make([][nDevFams + 1]int, nsh),
			stale: make([]int, 0, nsh),
		}
	}
	return e
}

// DisableBodyCache turns off the per-shard segment caches, forcing every
// scrape to re-render every shard — for benchmarks and tests that
// measure or exercise rendering itself. Call before serving; it returns
// the exporter for chaining.
func (e *Exporter) DisableBodyCache() *Exporter {
	e.cacheOn = false
	return e
}

// RenderWorkers bounds how many stale shard segments one scrape
// re-renders concurrently; n = 1 renders them serially in the scraping
// goroutine. Call before serving; it returns the exporter for chaining.
func (e *Exporter) RenderWorkers(n int) *Exporter {
	if n < 1 {
		n = 1
	}
	e.renderWorkers = n
	return e
}

// labelsForShard resolves the cached rendered labels of every station in
// snap (one shard's snapshot) into st.labels, building missing entries on
// first sight. One lock acquisition covers the whole snapshot. retired is
// the shard's retired counter as read BEFORE the snapshot was taken: if
// any of this shard's stations retired since the cache was built, the
// shard's cache is dropped wholesale — other shards' caches are untouched,
// which is what keeps the label cache bounded under churn (a churny name
// repeatedly clears only its own 1/Nth of the fleet's cached labels).
// Reading the counter before the snapshot makes the invalidation
// conservative — a retirement landing between the two reads leaves a
// stale entry for at most one scrape. In that window the retired name can
// even be re-adopted and appear in the snapshot against the stale entry;
// the per-entry shape check below rebuilds it when the channel count
// changed (rendering with a too-short pairs slice would panic), and a
// same-shape stale entry serves old backend/kind labels for that one
// scrape until the next one observes the counter advance and clears the
// cache.
func (e *Exporter) labelsForShard(sc *shardCache, snap []fleet.Status, st *scrapeState, retired uint64) {
	st.labels = st.labels[:0]
	sc.labelMu.Lock()
	defer sc.labelMu.Unlock()
	if retired != sc.lastRetired {
		sc.lastRetired = retired
		clear(sc.labels)
	}
	for i := range snap {
		s := &snap[i]
		l, ok := sc.labels[s.Name]
		if ok && len(l.pairs) != s.Pairs {
			ok = false // name reused with a different channel set: rebuild
		}
		if !ok {
			l = &devLabels{
				dev: fmt.Sprintf(`{device="%s"}`, escapeLabel(s.Name)),
				info: fmt.Sprintf(`{device="%s",backend="%s",kind="%s"}`,
					escapeLabel(s.Name), escapeLabel(s.Backend), escapeLabel(s.Kind)),
			}
			for m := 0; m < s.Pairs; m++ {
				channel := fmt.Sprintf("pair%d", m)
				if m < len(s.Channels) {
					channel = s.Channels[m]
				}
				l.pairs = append(l.pairs, fmt.Sprintf(`{device="%s",pair="%d",channel="%s"}`,
					escapeLabel(s.Name), m, escapeLabel(channel)))
			}
			sc.labels[s.Name] = l
		}
		st.labels = append(st.labels, l)
	}
}

// Handler returns the exporter's route table.
func (e *Exporter) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", e.metrics)
	mux.HandleFunc("GET /api/fleet", e.fleetJSON)
	mux.HandleFunc("GET /api/events", e.eventsJSON)
	mux.HandleFunc("GET /api/device/{name}/trace", e.deviceTrace)
	mux.HandleFunc("GET /api/device/{name}/energy", e.deviceEnergy)
	mux.HandleFunc("GET /api/device/{name}/history", e.deviceHistory)
	mux.HandleFunc("GET /healthz", e.healthz)
	mux.HandleFunc("GET /{$}", e.index)
	return mux
}

// healthz is the fleet-aware liveness probe: 200 with a station/degraded
// tally while any station still serves real data, 503 once every station
// is down (stale or flatlined — serving nothing, or serving fake
// liveness), so an orchestrator restarts the daemon only when the whole
// fleet is gone, not when one meter wedges. An empty fleet is healthy:
// the daemon itself is up, there is just nothing to measure yet.
func (e *Exporter) healthz(w http.ResponseWriter, _ *http.Request) {
	stations, degraded, down := e.mgr.HealthCounts()
	w.Header().Set("Content-Type", "application/json")
	if stations > 0 && down == stations {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	fmt.Fprintf(w, "{\"stations\":%d,\"degraded\":%d}\n", stations, degraded)
}

// index is a minimal landing page linking the endpoints.
func (e *Exporter) index(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<html><head><title>PowerSensor3 fleet</title></head><body>
<h1>PowerSensor3 fleet</h1>
<p>%d stations</p>
<ul>
<li><a href="/metrics">/metrics</a></li>
<li><a href="/api/fleet">/api/fleet</a></li>
<li><a href="/api/events">/api/events</a></li>
<li>/api/device/{name}/trace?format=csv|json&amp;points=N</li>
<li>/api/device/{name}/energy?from=S&amp;to=S</li>
<li>/api/device/{name}/history?from=S&amp;to=S&amp;points=N&amp;format=csv|json</li>
</ul>
</body></html>
`, e.mgr.Size())
}

// header pre-renders one family's HELP/TYPE comment block.
func header(name, help, typ string) string {
	return "# HELP " + name + " " + help + "\n# TYPE " + name + " " + typ + "\n"
}

// The exposition skeleton, rendered once at package load. Family order is
// fixed so the output stays golden-testable.
var (
	hdrFleetDevices = header("powersensor_fleet_devices",
		"Stations owned by the fleet manager.", "gauge")
	hdrFleetAdopted = header("powersensor_fleet_adopted_total",
		"Stations ever adopted by the fleet manager.", "counter")
	hdrFleetRetired = header("powersensor_fleet_retired_total",
		"Stations ever retired from the fleet manager.", "counter")
	hdrSourceInfo = header("powersensor_source_info",
		"Measurement backend serving each station; always 1.", "gauge")
	hdrSourceRate = header("powersensor_source_rate_hz",
		"Native sample rate of each station's backend, in hertz.", "gauge")
	hdrSourceOverhead = header("powersensor_source_overhead_seconds",
		"Cumulative wall time each station's source spent sampling inside ReadInto, in seconds.", "gauge")
	hdrWatts = header("powersensor_watts",
		"Block-averaged power per measurement channel, in watts.", "gauge")
	hdrBoardWatts = header("powersensor_board_watts",
		"Block-averaged summed board power per station, in watts.", "gauge")
	hdrJoules = header("powersensor_joules_total",
		"Cumulative energy per station since adoption, in joules.", "counter")
	hdrSamples = header("powersensor_samples_total",
		"Sample sets ingested per station, at the source's native rate.", "counter")
	hdrMarks = header("powersensor_marks_total",
		"Time-synced user markers ingested per station.", "counter")
	hdrResyncs = header("powersensor_resyncs_total",
		"Stream bytes skipped to regain protocol alignment.", "counter")
	hdrDropped = header("powersensor_dropped_deliveries_total",
		"Subscriber deliveries dropped on full fan-out channels.", "counter")
	hdrRingPoints = header("powersensor_ring_points",
		"Downsampled points currently buffered per station.", "gauge")
	hdrVirtualSeconds = header("powersensor_device_virtual_seconds",
		"Virtual time of each station's clock, in seconds.", "gauge")
	hdrStationHealth = header("powersensor_station_health",
		"Watchdog health rank per station: 0 healthy, 1 degraded, 2 flatlined, 3 stale.", "gauge")
	hdrStationGaps = header("powersensor_station_gaps_total",
		"Delivery-gap episodes the watchdog opened per station.", "counter")
	hdrStationFlatlines = header("powersensor_station_flatlines_total",
		"Flatline episodes (runs of bit-identical blocks) detected per station.", "counter")
	hdrStationSpikesQ = header("powersensor_station_spikes_quarantined_total",
		"Isolated glitch samples quarantined before ingest per station.", "counter")
	hdrStationRestarts = header("powersensor_station_restarts_total",
		"Source restart attempts the watchdog issued per station.", "counter")

	// Self-telemetry tail families: the system observing itself. These
	// render fresh on every scrape, after (and outside) the cached fleet
	// section.
	hdrSelfIngestFold = header(famIngestFold,
		"Latency of folding one ingest step's batch into the downsample state, fleet-wide, sampled 1-in-32 steps.", "histogram")
	hdrSelfPacing = header(famPacing,
		"How far past its absolute schedule each paced driver slice completed; empty on unpaced fleets.", "histogram")
	hdrSelfStageRead = header(famStageRead,
		"ReadInto latency per derived-source pipeline stage kind, inner source included; stage kinds never run are omitted.", "histogram")
	hdrSelfScrape = header(famScrape,
		"Time to assemble one /metrics body, by serve path (full render vs cached fleet section).", "histogram")
	hdrSelfCacheHits = header("powersensor_self_scrape_cache_hits_total",
		"Scrapes whose fleet section was served from the block-generation body cache.", "counter")
	hdrSelfCacheMisses = header("powersensor_self_scrape_cache_misses_total",
		"Scrapes that re-rendered at least one shard segment on a cold or stale cache.", "counter")
	hdrSelfShardRenders = header("powersensor_self_shard_renders_total",
		"Shard exposition segments re-rendered across all scrapes; one busy shard advances this by one per scrape, not by the shard count.", "counter")
	hdrSelfShardRender = header(famShardRender,
		"Time to re-render one stale shard's exposition segment.", "histogram")
	hdrSelfShardStep = header(famShardStep,
		"Wall time one fleet shard spent stepping its stations within one StepAll quantum.", "histogram")
	hdrSelfEvents = header("powersensor_self_events_total",
		"Fleet lifecycle events ever recorded (adopt, start, retire, close).", "counter")
	hdrSelfEventsDropped = header("powersensor_self_events_dropped_total",
		"Lifecycle events overwritten after the event ring filled.", "counter")
	hdrSelfRingFill = header("powersensor_self_ring_fill_ratio",
		"Fleet-wide ring occupancy: downsampled points held over total ring capacity.", "gauge")
	hdrSelfHistPoints = header("powersensor_self_history_points",
		"Points held across every station's compressed long-horizon history series.", "gauge")
	hdrSelfHistBytes = header("powersensor_self_history_bytes",
		"Compressed bytes held across every station's history series.", "gauge")
	hdrSelfHistBlocks = header("powersensor_self_history_blocks",
		"Sealed compressed blocks held across every station's history series.", "gauge")
	hdrSelfHistRatio = header("powersensor_self_history_compression_ratio",
		"Fleet-wide history compression ratio: raw float64 bytes over compressed bytes; 0 while empty.", "gauge")
	hdrSelfHistMissed = header("powersensor_self_history_ring_missed_total",
		"Ring points lost to wraparound before a history sync pass could drain them.", "counter")
	hdrSelfHistAppend = header(famHistAppend,
		"Time one station's ring-to-history sync pass took, drain and compressed append included.", "histogram")
	hdrSelfHistQuery = header(famHistQuery,
		"Time one windowed energy query took, its pre-query sync included.", "histogram")
	hdrBuildInfo = header("powersensor_build_info",
		"Build identity of this daemon; always 1.", "gauge")
	hdrScrapeDuration = header("powersensor_scrape_duration_seconds",
		"Wall time spent rendering this scrape.", "gauge")
)

// Histogram family names. Kept as constants so call sites can form the
// _bucket/_sum/_count series names by constant concatenation — resolved
// at compile time, nothing on the scrape path builds strings.
const (
	famIngestFold  = "powersensor_self_ingest_fold_seconds"
	famPacing      = "powersensor_self_pacing_late_seconds"
	famStageRead   = "powersensor_self_stage_read_seconds"
	famScrape      = "powersensor_self_scrape_seconds"
	famShardRender = "powersensor_self_shard_render_seconds"
	famShardStep   = "powersensor_self_shard_step_seconds"
	famHistAppend  = "powersensor_self_history_append_seconds"
	famHistQuery   = "powersensor_self_history_query_seconds"
)

// nDevFams counts the per-device exposition families — the ones rendered
// into per-shard segments and concatenated family-major at assembly. The
// three fleet-scalar families (devices, adopted, retired) precede them in
// the body but are appended directly, not segmented.
const nDevFams = 17

// devFamHdrs lists the per-device family HELP/TYPE blocks in exposition
// order, index-aligned with the family switch in renderShardSeg and the
// offs arrays of every shard segment.
var devFamHdrs = [nDevFams]string{
	hdrSourceInfo, hdrSourceRate, hdrSourceOverhead,
	hdrWatts, hdrBoardWatts, hdrJoules,
	hdrSamples, hdrMarks, hdrResyncs, hdrDropped,
	hdrRingPoints, hdrVirtualSeconds,
	hdrStationHealth, hdrStationGaps, hdrStationFlatlines,
	hdrStationSpikesQ, hdrStationRestarts,
}

// histSeries is the pre-rendered label set of one histogram series: a
// {le="..."} block per bucket (with any extra labels folded in) and the
// plain block the _sum/_count lines carry. Rendered once at package
// load, like the family headers, so scraping a histogram appends cached
// strings and freshly formatted numbers only.
type histSeries struct {
	buckets [obs.NumBuckets]string
	plain   string
}

// newHistSeries pre-renders the series whose extra labels are given as a
// rendered `k="v"` fragment ("" for none).
func newHistSeries(extra string) *histSeries {
	hs := &histSeries{}
	for i := range hs.buckets {
		le := "+Inf"
		if i < obs.NumBuckets-1 {
			le = strconv.FormatFloat(obs.BucketBound(i).Seconds(), 'g', -1, 64)
		}
		if extra == "" {
			hs.buckets[i] = `{le="` + le + `"}`
		} else {
			hs.buckets[i] = `{` + extra + `,le="` + le + `"}`
		}
	}
	if extra != "" {
		hs.plain = `{` + extra + `}`
	}
	return hs
}

var (
	histPlainSeries    = newHistSeries("")
	scrapeRenderSeries = newHistSeries(`path="render"`)
	scrapeCachedSeries = newHistSeries(`path="cached"`)

	// stageSeries is index-aligned with pipeline.ReadHists().
	stageSeries = func() []*histSeries {
		var out []*histSeries
		for _, sh := range pipeline.ReadHists() {
			out = append(out, newHistSeries(`stage="`+escapeLabel(sh.Stage)+`"`))
		}
		return out
	}()

	// buildInfoLine is the one constant sample of powersensor_build_info,
	// rendered once at load from the link-time-stamped version.
	buildInfoLine = "powersensor_build_info{version=\"" + escapeLabel(version.Version) +
		"\",go=\"" + escapeLabel(version.GoVersion()) + "\"} 1\n"
)

// appendHist renders one histogram series in exposition form: cumulative
// _bucket lines (the last is the +Inf bucket, equal to _count by
// construction — see obs.Hist.Snapshot), then _sum and _count. The
// series names are passed pre-joined so this appends only cached strings
// and numbers.
func appendHist(buf []byte, bucketName, sumName, countName string, hs *histSeries, snap *obs.HistSnapshot) []byte {
	var cum uint64
	for i := 0; i < obs.NumBuckets; i++ {
		cum += snap.Buckets[i]
		buf = appendSample(buf, bucketName, hs.buckets[i], float64(cum))
	}
	buf = appendSample(buf, sumName, hs.plain, snap.Sum.Seconds())
	buf = appendSample(buf, countName, hs.plain, float64(snap.Count))
	return buf
}

// appendSample renders one exposition line: name, optional label block,
// value, newline — all appends into the pooled buffer. Integral values
// (most of a scrape: counters, rates, the info gauge) take the integer
// formatter, several times cheaper than shortest-float; both spell
// integers below 1e15 identically, so the output is unchanged.
func appendSample(buf []byte, name, labels string, v float64) []byte {
	buf = append(buf, name...)
	buf = append(buf, labels...)
	buf = append(buf, ' ')
	if i := int64(v); float64(i) == v && (i > -1e15 && i < 1e15) {
		buf = strconv.AppendInt(buf, i, 10)
	} else {
		buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
	}
	return append(buf, '\n')
}

// metrics renders the Prometheus text exposition format. The fleet
// section is assembled from per-shard segments: each fleet shard's
// stations render into that shard's cached segment (keyed by the shard's
// block-boundary generation), and the body concatenates segment slices
// family-major so the exposition stays grouped by family. A scrape
// re-renders only the shards whose generation advanced; on an idle fleet
// the whole section is memcpys. Within a family, rows are grouped by
// shard (name-ordered within each shard) — the exposition format orders
// families, not rows, so scrapers are indifferent, and /api/fleet still
// serves the globally name-sorted view. The self-telemetry tail
// (appendSelf) renders fresh on every scrape so the daemon's view of
// itself never goes stale behind its own cache.
func (e *Exporter) metrics(w http.ResponseWriter, _ *http.Request) {
	began := time.Now()
	st := e.scratch.Get().(*scrapeState)
	// Churn counters load before the segments are staged: a scraper
	// diffing adopted-retired against the device count then sees the
	// counters lag — never lead — the per-shard lists. Retired loads
	// first: adopted only grows and bounds retired at every instant, so
	// reading it second keeps retired <= adopted within one exposition
	// even when churn cycles complete between the two loads.
	retired, adopted := e.mgr.Retired(), e.mgr.Adopted()
	cached := false
	if e.cacheOn {
		// Pass 1: under each shard's lock, copy current segments out and
		// collect the stale ones. The copy (into pooled staging) keeps
		// cached bytes immutable under concurrent scrapes, and assembly
		// below runs with no locks held so a slow shard render on one
		// scrape cannot stall another scrape's memcpys.
		st.stale = st.stale[:0]
		for s := range e.shards {
			sc := &e.shards[s]
			sc.mu.Lock()
			if sc.rendered && sc.gen == e.mgr.ShardGen(s) {
				st.segs[s] = append(st.segs[s][:0], sc.seg...)
				st.offs[s] = sc.offs
				sc.mu.Unlock()
				continue
			}
			sc.mu.Unlock()
			st.stale = append(st.stale, s)
		}
		// Pass 2: re-render the stale shards (each single-flight under
		// its own lock) and stage the results. A scrape counts as a hit
		// only when pass 1 found nothing stale.
		if len(st.stale) == 0 {
			e.cacheHits.Add(1)
			cached = true
		} else {
			e.renderStale(st)
			e.cacheMisses.Add(1)
		}
	} else {
		for s := range e.shards {
			st.segs[s] = e.renderShardSeg(s, st, st.segs[s], &st.offs[s])
		}
	}

	// Assemble: fleet scalars, then each per-device family concatenated
	// across shards.
	buf := st.buf[:0]
	buf = append(buf, hdrFleetDevices...)
	buf = appendSample(buf, "powersensor_fleet_devices", "", float64(e.mgr.Size()))
	buf = append(buf, hdrFleetAdopted...)
	buf = appendSample(buf, "powersensor_fleet_adopted_total", "", float64(adopted))
	buf = append(buf, hdrFleetRetired...)
	buf = appendSample(buf, "powersensor_fleet_retired_total", "", float64(retired))
	for f := 0; f < nDevFams; f++ {
		buf = append(buf, devFamHdrs[f]...)
		for s := range st.segs {
			o := &st.offs[s]
			buf = append(buf, st.segs[s][o[f]:o[f+1]]...)
		}
	}

	buf = e.appendSelf(buf, &st.hist, began)
	// The scrape records itself after its own tail rendered, so each
	// body's scrape histogram covers every scrape before this one.
	if cached {
		e.cachedHist.Record(time.Since(began))
	} else {
		e.renderHist.Record(time.Since(began))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(buf)
	st.buf = buf
	e.scratch.Put(st)
}

// renderStale refreshes the segments of the shards st.stale lists and
// stages them into st. With renderWorkers == 1 (the default on a
// single-CPU host) the stale shards render serially in the scraping
// goroutine; otherwise up to renderWorkers goroutines pull stale shards
// off a shared cursor, each with its own pooled scratch. Distinct shards
// write distinct st.segs slots, so staging needs no lock.
func (e *Exporter) renderStale(st *scrapeState) {
	if e.renderWorkers <= 1 || len(st.stale) == 1 {
		for _, s := range st.stale {
			e.renderStaleOne(s, st, st)
		}
		return
	}
	n := e.renderWorkers
	if n > len(st.stale) {
		n = len(st.stale)
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	states := make([]*scrapeState, n)
	for w := range states {
		states[w] = e.scratch.Get().(*scrapeState)
	}
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(ws *scrapeState) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(st.stale) {
					return
				}
				e.renderStaleOne(st.stale[i], ws, st)
			}
		}(states[w])
	}
	wg.Wait()
	for _, ws := range states {
		e.scratch.Put(ws)
	}
}

// renderStaleOne re-renders shard s's segment if it is still stale —
// another scrape may have refreshed it since the caller's staleness pass,
// in which case the fresh segment is just staged — and copies the result
// into st. render provides the snapshot/label scratch (the worker's own
// state under parallel rendering); st receives the staged segment.
//
// The generation is loaded under the shard lock BEFORE the snapshot
// inside renderShardSeg: if a block lands mid-render the stored
// generation is already stale and the next scrape re-renders — the
// conservative direction. Holding the lock across render also keeps
// same-shard renders single-flight: were two same-generation renders
// allowed to interleave, the one holding the OLDER snapshot could store
// last (per-step published cells such as samples and overhead advance
// without changing the generation), and later cache hits would serve
// counters below values the fresher render already returned — a counter
// regression scrapers would read as a reset.
func (e *Exporter) renderStaleOne(s int, render, st *scrapeState) {
	sc := &e.shards[s]
	sc.mu.Lock()
	if gen := e.mgr.ShardGen(s); !sc.rendered || sc.gen != gen {
		renderBegan := time.Now()
		sc.seg = e.renderShardSeg(s, render, sc.seg, &sc.offs)
		sc.gen, sc.rendered = gen, true
		e.shardRenders.Add(1)
		e.shardRenderHist.Record(time.Since(renderBegan))
	}
	st.segs[s] = append(st.segs[s][:0], sc.seg...)
	st.offs[s] = sc.offs
	sc.mu.Unlock()
}

// renderShardSeg renders fleet shard s's stations into seg (reused;
// returned re-sliced), recording per-family byte offsets into offs. Rows
// within each family follow the shard's name-sorted device list. st
// provides snapshot and label scratch only — seg is the caller's buffer
// (a shardCache's cached segment, or scrape-local staging when the cache
// is off).
func (e *Exporter) renderShardSeg(s int, st *scrapeState, seg []byte, offs *[nDevFams + 1]int) []byte {
	shRetired := e.mgr.ShardRetired(s)
	snap := e.mgr.ShardSnapshotInto(s, st.snap[:0])
	st.snap = snap
	e.labelsForShard(&e.shards[s], snap, st, shRetired)
	seg = seg[:0]
	for f := 0; f < nDevFams; f++ {
		offs[f] = len(seg)
		for i := range snap {
			seg = appendDevFam(seg, f, &snap[i], st.labels[i])
		}
	}
	offs[nDevFams] = len(seg)
	return seg
}

// appendDevFam appends one station's rows of per-device family f —
// index-aligned with devFamHdrs.
func appendDevFam(buf []byte, f int, s *fleet.Status, l *devLabels) []byte {
	switch f {
	case 0:
		return appendSample(buf, "powersensor_source_info", l.info, 1)
	case 1:
		return appendSample(buf, "powersensor_source_rate_hz", l.dev, s.RateHz)
	case 2:
		return appendSample(buf, "powersensor_source_overhead_seconds", l.dev, s.OverheadSeconds)
	case 3:
		for m, watts := range s.PairWatts {
			buf = appendSample(buf, "powersensor_watts", l.pairs[m], watts)
		}
		return buf
	case 4:
		return appendSample(buf, "powersensor_board_watts", l.dev, s.Watts)
	case 5:
		return appendSample(buf, "powersensor_joules_total", l.dev, s.Joules)
	case 6:
		return appendSample(buf, "powersensor_samples_total", l.dev, float64(s.Samples))
	case 7:
		return appendSample(buf, "powersensor_marks_total", l.dev, float64(s.Marks))
	case 8:
		return appendSample(buf, "powersensor_resyncs_total", l.dev, float64(s.Resyncs))
	case 9:
		return appendSample(buf, "powersensor_dropped_deliveries_total", l.dev, float64(s.Dropped))
	case 10:
		return appendSample(buf, "powersensor_ring_points", l.dev, float64(s.RingLen))
	case 11:
		return appendSample(buf, "powersensor_device_virtual_seconds", l.dev, s.Now.Seconds())
	case 12:
		return appendSample(buf, "powersensor_station_health", l.dev, float64(fleet.HealthLevel(s.Health)))
	case 13:
		return appendSample(buf, "powersensor_station_gaps_total", l.dev, float64(s.Gaps))
	case 14:
		return appendSample(buf, "powersensor_station_flatlines_total", l.dev, float64(s.Flatlines))
	case 15:
		return appendSample(buf, "powersensor_station_spikes_quarantined_total", l.dev, float64(s.SpikesQuarantined))
	default:
		return appendSample(buf, "powersensor_station_restarts_total", l.dev, float64(s.Restarts))
	}
}

// appendSelf renders the self-telemetry tail — fresh on every scrape,
// never cached. Everything here reads atomic cells (histogram buckets,
// counters, the devices' published ring lengths): no manager lock, no
// ingest mutex, no allocation beyond the buffer's own growth, so the
// tail keeps both the cache-hit fast path and the lock-freedom of the
// scrape intact. hs is the scrape's pooled snapshot scratch.
func (e *Exporter) appendSelf(buf []byte, hs *obs.HistSnapshot, began time.Time) []byte {
	buf = append(buf, hdrSelfIngestFold...)
	e.mgr.IngestFoldHist().Snapshot(hs)
	buf = appendHist(buf, famIngestFold+"_bucket", famIngestFold+"_sum", famIngestFold+"_count", histPlainSeries, hs)
	buf = append(buf, hdrSelfPacing...)
	e.mgr.PaceLatenessHist().Snapshot(hs)
	buf = appendHist(buf, famPacing+"_bucket", famPacing+"_sum", famPacing+"_count", histPlainSeries, hs)
	// Stage histograms are process-wide; a stage kind no source in this
	// process ever ran would render as an all-zero distribution, so those
	// are omitted rather than claiming an empty measurement.
	buf = append(buf, hdrSelfStageRead...)
	for i, sh := range pipeline.ReadHists() {
		sh.Hist.Snapshot(hs)
		if hs.Count == 0 {
			continue
		}
		buf = appendHist(buf, famStageRead+"_bucket", famStageRead+"_sum", famStageRead+"_count", stageSeries[i], hs)
	}
	buf = append(buf, hdrSelfScrape...)
	e.renderHist.Snapshot(hs)
	buf = appendHist(buf, famScrape+"_bucket", famScrape+"_sum", famScrape+"_count", scrapeRenderSeries, hs)
	e.cachedHist.Snapshot(hs)
	buf = appendHist(buf, famScrape+"_bucket", famScrape+"_sum", famScrape+"_count", scrapeCachedSeries, hs)
	buf = append(buf, hdrSelfCacheHits...)
	buf = appendSample(buf, "powersensor_self_scrape_cache_hits_total", "", float64(e.cacheHits.Load()))
	buf = append(buf, hdrSelfCacheMisses...)
	buf = appendSample(buf, "powersensor_self_scrape_cache_misses_total", "", float64(e.cacheMisses.Load()))
	buf = append(buf, hdrSelfShardRenders...)
	buf = appendSample(buf, "powersensor_self_shard_renders_total", "", float64(e.shardRenders.Load()))
	buf = append(buf, hdrSelfShardRender...)
	e.shardRenderHist.Snapshot(hs)
	buf = appendHist(buf, famShardRender+"_bucket", famShardRender+"_sum", famShardRender+"_count", histPlainSeries, hs)
	buf = append(buf, hdrSelfShardStep...)
	e.mgr.ShardStepHist().Snapshot(hs)
	buf = appendHist(buf, famShardStep+"_bucket", famShardStep+"_sum", famShardStep+"_count", histPlainSeries, hs)
	ev := e.mgr.Events()
	buf = append(buf, hdrSelfEvents...)
	buf = appendSample(buf, "powersensor_self_events_total", "", float64(ev.Total()))
	buf = append(buf, hdrSelfEventsDropped...)
	buf = appendSample(buf, "powersensor_self_events_dropped_total", "", float64(ev.Dropped()))
	buf = append(buf, hdrSelfRingFill...)
	held, capacity := e.mgr.RingOccupancy()
	ratio := 0.0
	if capacity > 0 {
		ratio = float64(held) / float64(capacity)
	}
	buf = appendSample(buf, "powersensor_self_ring_fill_ratio", "", ratio)
	// The history tier's footprint and drain health, aggregated from the
	// per-station atomic counters, plus the shared sync/query timings.
	hist := e.mgr.HistoryStats()
	buf = append(buf, hdrSelfHistPoints...)
	buf = appendSample(buf, "powersensor_self_history_points", "", float64(hist.Points))
	buf = append(buf, hdrSelfHistBytes...)
	buf = appendSample(buf, "powersensor_self_history_bytes", "", float64(hist.Bytes))
	buf = append(buf, hdrSelfHistBlocks...)
	buf = appendSample(buf, "powersensor_self_history_blocks", "", float64(hist.Blocks))
	buf = append(buf, hdrSelfHistRatio...)
	buf = appendSample(buf, "powersensor_self_history_compression_ratio", "", hist.Ratio())
	buf = append(buf, hdrSelfHistMissed...)
	buf = appendSample(buf, "powersensor_self_history_ring_missed_total", "", float64(hist.RingMissed))
	buf = append(buf, hdrSelfHistAppend...)
	e.mgr.HistoryAppendHist().Snapshot(hs)
	buf = appendHist(buf, famHistAppend+"_bucket", famHistAppend+"_sum", famHistAppend+"_count", histPlainSeries, hs)
	buf = append(buf, hdrSelfHistQuery...)
	e.mgr.HistoryQueryHist().Snapshot(hs)
	buf = appendHist(buf, famHistQuery+"_bucket", famHistQuery+"_sum", famHistQuery+"_count", histPlainSeries, hs)
	buf = append(buf, hdrBuildInfo...)
	buf = append(buf, buildInfoLine...)
	buf = append(buf, hdrScrapeDuration...)
	buf = appendSample(buf, "powersensor_scrape_duration_seconds", "", time.Since(began).Seconds())
	return buf
}

// labelEscaper escapes label values per the exposition format.
var labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	return labelEscaper.Replace(s)
}

// fleetJSON serves the versioned /api/fleet body (see FleetJSON). The
// fleet generation doubles as the ETag: a client (a federation head
// polling many leaves) sending If-None-Match gets 304 with no body while
// the fleet sits at the same block-boundary fingerprint. The generation
// loads before the snapshot, so a block landing between the two reads
// makes the ETag conservatively old — the client refetches, never serves
// stale.
func (e *Exporter) fleetJSON(w http.ResponseWriter, r *http.Request) {
	gen := e.mgr.Gen()
	etag := FleetETag(gen)
	w.Header().Set("ETag", etag)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(FleetJSON{
		Schema:     FleetSchemaVersion,
		Generation: gen,
		Devices:    e.mgr.Snapshot(),
	})
}

// eventLog is the /api/events response body: the most recent lifecycle
// events oldest-first, plus the ring's lifetime totals. A gap between
// total and len(events) (or a first seq above dropped+1) means older
// events were overwritten.
type eventLog struct {
	Total   uint64      `json:"total"`
	Dropped uint64      `json:"dropped"`
	Events  []obs.Event `json:"events"`
}

// eventsJSON serves the tail of the fleet's lifecycle event ring. ?n=N
// caps the tail at the N most recent events (default 100, at most the
// ring's capacity).
func (e *Exporter) eventsJSON(w http.ResponseWriter, r *http.Request) {
	max := 100
	if s := r.URL.Query().Get("n"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			http.Error(w, fmt.Sprintf("bad n=%q (want a positive count)", s),
				http.StatusBadRequest)
			return
		}
		max = n
	}
	ring := e.mgr.Events()
	events := ring.Tail(max)
	if events == nil {
		events = []obs.Event{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(eventLog{Total: ring.Total(), Dropped: ring.Dropped(), Events: events})
}

// deviceTrace serves the recent downsampled trace of one station.
func (e *Exporter) deviceTrace(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	d := e.mgr.Device(name)
	if d == nil {
		http.Error(w, fmt.Sprintf("unknown device %q (have %s)",
			name, strings.Join(e.mgr.Names(), ", ")), http.StatusNotFound)
		return
	}
	max := 0
	if s := r.URL.Query().Get("points"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			http.Error(w, fmt.Sprintf("bad points=%q (want a positive count)", s),
				http.StatusBadRequest)
			return
		}
		max = n
	}
	tr := d.Trace(max)
	switch format := r.URL.Query().Get("format"); format {
	case "", "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=%s.csv", sanitizeFilename(name)))
		if err := tr.WriteCSV(w); err != nil {
			// Headers are gone; nothing useful to do but note it.
			return
		}
	case "json":
		w.Header().Set("Content-Type", "application/json")
		_ = tr.WriteJSON(w)
	default:
		http.Error(w, fmt.Sprintf("bad format=%q (want csv or json)", format),
			http.StatusBadRequest)
	}
}

// parseWindowTime parses a ?from= / ?to= query value: a plain number is
// seconds of virtual time, anything else must parse as a Go duration
// ("1.5s", "250ms"). Negative instants are rejected — virtual time
// starts at zero.
func parseWindowTime(s string) (time.Duration, error) {
	if secs, err := strconv.ParseFloat(s, 64); err == nil {
		d := time.Duration(secs * float64(time.Second))
		if d < 0 {
			return 0, fmt.Errorf("negative instant %q", s)
		}
		return d, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("want seconds or a non-negative duration, got %q", s)
	}
	return d, nil
}

// windowOf resolves a request's [from, to] window: from defaults to 0,
// to defaults to the station's current virtual time. An inverted window
// is not an error — it is a legitimate empty window, 0 J by contract.
func windowOf(r *http.Request, d *fleet.Device) (from, to time.Duration, err error) {
	to = d.Status().Now
	if s := r.URL.Query().Get("from"); s != "" {
		if from, err = parseWindowTime(s); err != nil {
			return 0, 0, fmt.Errorf("bad from=%s", err)
		}
	}
	if s := r.URL.Query().Get("to"); s != "" {
		if to, err = parseWindowTime(s); err != nil {
			return 0, 0, fmt.Errorf("bad to=%s", err)
		}
	}
	return from, to, nil
}

// energyAnswer is the /api/device/{name}/energy response body.
type energyAnswer struct {
	Device      string  `json:"device"`
	FromSeconds float64 `json:"from_seconds"`
	ToSeconds   float64 `json:"to_seconds"`
	Joules      float64 `json:"joules"`
	// MeanWatts is Joules over the window's width; 0 on an empty or
	// inverted window, by the zero-interval contract — never NaN.
	MeanWatts float64 `json:"mean_watts"`
}

// deviceEnergy serves a windowed energy query over one station's
// long-horizon history tier (or its ring, on stations running without
// the tier): the HTTP face of Device.EnergyWindow.
func (e *Exporter) deviceEnergy(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	d := e.mgr.Device(name)
	if d == nil {
		http.Error(w, fmt.Sprintf("unknown device %q (have %s)",
			name, strings.Join(e.mgr.Names(), ", ")), http.StatusNotFound)
		return
	}
	from, to, err := windowOf(r, d)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ans := energyAnswer{
		Device:      name,
		FromSeconds: from.Seconds(),
		ToSeconds:   to.Seconds(),
		Joules:      d.EnergyWindow(from, to),
	}
	if width := (to - from).Seconds(); width > 0 {
		ans.MeanWatts = ans.Joules / width
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(ans)
}

// deviceHistory serves a long-range summed-power trace decoded from one
// station's compressed history tier, reusing the trace package's CSV and
// JSON writers. ?from=/?to= window the export, ?points=N decimates it by
// stride to at most N points (default 2000 — a window spanning hours of
// millisecond points would otherwise ship millions of rows), and the
// trace carries one channel: the station's summed board power.
func (e *Exporter) deviceHistory(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	d := e.mgr.Device(name)
	if d == nil {
		http.Error(w, fmt.Sprintf("unknown device %q (have %s)",
			name, strings.Join(e.mgr.Names(), ", ")), http.StatusNotFound)
		return
	}
	from, to, err := windowOf(r, d)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	max := 2000
	if s := r.URL.Query().Get("points"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			http.Error(w, fmt.Sprintf("bad points=%q (want a positive count)", s),
				http.StatusBadRequest)
			return
		}
		max = n
	}
	pts := d.HistoryInto(nil, from, to)
	// Stride decimation keeps the first and the stride-aligned points; the
	// trapezoid over the survivors still brackets the window's span.
	if len(pts) > max {
		stride := (len(pts) + max - 1) / max
		kept := pts[:0]
		for i := 0; i < len(pts); i += stride {
			kept = append(kept, pts[i])
		}
		pts = kept
	}
	tr := &trace.Trace{Pairs: 1, Points: make([]trace.Point, 0, len(pts))}
	for _, p := range pts {
		tr.Points = append(tr.Points, trace.Point{
			Time: p.Time, Watts: []float64{p.Watts}, TotalW: p.Watts,
		})
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=%s-history.csv", sanitizeFilename(name)))
		if err := tr.WriteCSV(w); err != nil {
			return
		}
	case "json":
		w.Header().Set("Content-Type", "application/json")
		_ = tr.WriteJSON(w)
	default:
		http.Error(w, fmt.Sprintf("bad format=%q (want csv or json)", format),
			http.StatusBadRequest)
	}
}

// sanitizeFilename keeps the download filename header safe.
func sanitizeFilename(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}
