// Package export serves a fleet.Manager over HTTP: a Prometheus-style
// text exposition endpoint for scrapers, a JSON snapshot API for
// dashboards, and per-station trace downloads reusing the trace package's
// CSV/JSON writers. It is the observability surface of the fleet subsystem
// — modeled on standalone hardware exporters, but with no dependency
// beyond the standard library.
//
// The scrape path is built for large fleets: device statuses come from the
// manager's lock-free snapshots (a scrape never touches a station's ingest
// mutex), label blocks and HELP/TYPE headers are rendered once and cached,
// and each scrape renders every family in a single pass into a pooled
// reusable buffer — steady-state scrape cost is appending numbers. On top
// of that, the whole rendered body is cached per block-boundary
// generation (fleet.Manager.Gen): a repeat scrape arriving before any
// station completes a new downsample block — an idle fleet, or several
// scrapers sharing one exporter — serves the previous body for the cost
// of a memcpy.
//
// Fleets churn while serving: stations hot-added or retired mid-scrape
// simply appear in (or vanish from) the next snapshot, the
// powersensor_fleet_adopted_total / powersensor_fleet_retired_total
// counters account for the churn, and retirement drops the per-device
// label cache so retired names neither linger nor poison a reused name.
//
// The exposition has two sections. The fleet section — everything
// derived from station snapshots — is what the body cache holds. The
// self-telemetry tail (the powersensor_self_* families, build info and
// the scrape-duration gauge) renders fresh on every scrape, cache hit or
// not: it is the system observing itself, and serving week-old
// self-timings from an idle fleet's cached body would defeat the point.
// The tail renders the obs-layer histograms (ingest fold latency, driver
// pacing lateness, pipeline stage reads, scrape timing by path), the
// cache's own hit/miss counters, the lifecycle event-ring counters and
// fleet-wide ring occupancy — all from lock-free atomic reads, so a
// cache-hit scrape still never touches a station's ingest.
//
// Endpoints (all GET):
//
//	/metrics                      Prometheus text exposition (version 0.0.4)
//	/api/fleet                    JSON status of every station
//	/api/events                   JSON tail of the fleet lifecycle event
//	                              ring; ?n=N caps the tail (default 100)
//	/api/device/{name}/trace      recent downsampled trace; ?format=csv|json
//	                              (default csv), ?points=N caps the length
//	/healthz                      liveness probe
package export

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/version"
)

// Exporter renders a fleet.Manager over HTTP.
type Exporter struct {
	mgr *fleet.Manager

	// labelMu guards labels, a per-device cache of rendered exposition
	// label blocks. Device names, backends, kinds and channel labels are
	// immutable for the life of a station, so each block is escaped and
	// formatted once instead of on every scrape — the scrape hot path
	// then only appends numbers. Retirement invalidates the cache: a
	// retired name must not linger (the fleet may churn through thousands
	// of stations), and the same name may return with a different kind or
	// channel set, so any advance of the manager's retired counter drops
	// the whole cache and lets the surviving fleet rebuild on next sight.
	// lastRetired is the counter value the cache was built against.
	labelMu     sync.Mutex
	labels      map[string]*devLabels
	lastRetired uint64

	// scratch pools per-scrape working state (the render buffer and the
	// resolved label list), so concurrent scrapes reuse buffers instead
	// of reallocating them.
	scratch sync.Pool

	// The rendered-body cache: when the fleet's block-boundary generation
	// (fleet.Manager.Gen) has not advanced since the last render, the
	// previous body is served as-is — repeat scrapes of an idle fleet (or
	// several scrapers hitting one exporter between block boundaries) pay
	// a memcpy instead of a full render. A cached body is at most one
	// downsample block stale. cacheGen is the generation the body was
	// rendered against, loaded BEFORE that render's snapshot so a block
	// landing mid-render invalidates conservatively. The cache holds only
	// the fleet section of the body; the self-telemetry tail is appended
	// fresh on every scrape. cacheHits/cacheMisses count how scrapes were
	// served, exported as powersensor_self_scrape_cache_{hits,misses}_total.
	cacheOn     bool
	cacheMu     sync.Mutex
	cacheGen    uint64
	cacheBody   []byte
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64

	// Scrape self-timing, split by serve path: full renders vs scrapes
	// whose fleet section came from the body cache. Exported as the
	// powersensor_self_scrape_seconds histogram.
	renderHist obs.Hist
	cachedHist obs.Hist
}

// devLabels is the pre-rendered label set of one station.
type devLabels struct {
	dev   string   // {device="X"}
	info  string   // {device="X",backend="B",kind="K"}
	pairs []string // {device="X",pair="0",channel="C"} per channel
}

// scrapeState is one scrape's reusable working memory.
type scrapeState struct {
	buf    []byte
	labels []*devLabels
	snap   []fleet.Status
	hist   obs.HistSnapshot
}

// New returns an exporter over mgr, with the rendered-body cache on.
func New(mgr *fleet.Manager) *Exporter {
	e := &Exporter{mgr: mgr, labels: make(map[string]*devLabels), cacheOn: true}
	e.scratch.New = func() any {
		return &scrapeState{buf: make([]byte, 0, 16<<10)}
	}
	return e
}

// DisableBodyCache turns off the block-generation body cache, forcing
// every scrape down the full render path — for benchmarks and tests that
// measure or exercise rendering itself. Call before serving; it returns
// the exporter for chaining.
func (e *Exporter) DisableBodyCache() *Exporter {
	e.cacheOn = false
	return e
}

// labelsForAll resolves the cached rendered labels of every station in
// snap into st.labels, building missing entries on first sight. One lock
// acquisition covers the whole snapshot. retired is the manager's retired
// counter as read BEFORE the snapshot was taken: if any station retired
// since the cache was built, the cache is dropped wholesale. Reading the
// counter before the snapshot makes the invalidation conservative — a
// retirement landing between the two reads leaves a stale entry for at
// most one scrape. In that window the retired name can even be re-adopted
// and appear in the snapshot against the stale entry; the per-entry shape
// check below rebuilds it when the channel count changed (rendering with
// a too-short pairs slice would panic), and a same-shape stale entry
// serves old backend/kind labels for that one scrape until the next one
// observes the counter advance and clears the cache.
func (e *Exporter) labelsForAll(snap []fleet.Status, st *scrapeState, retired uint64) {
	st.labels = st.labels[:0]
	e.labelMu.Lock()
	defer e.labelMu.Unlock()
	if retired != e.lastRetired {
		e.lastRetired = retired
		clear(e.labels)
	}
	for i := range snap {
		s := &snap[i]
		l, ok := e.labels[s.Name]
		if ok && len(l.pairs) != s.Pairs {
			ok = false // name reused with a different channel set: rebuild
		}
		if !ok {
			l = &devLabels{
				dev: fmt.Sprintf(`{device="%s"}`, escapeLabel(s.Name)),
				info: fmt.Sprintf(`{device="%s",backend="%s",kind="%s"}`,
					escapeLabel(s.Name), escapeLabel(s.Backend), escapeLabel(s.Kind)),
			}
			for m := 0; m < s.Pairs; m++ {
				channel := fmt.Sprintf("pair%d", m)
				if m < len(s.Channels) {
					channel = s.Channels[m]
				}
				l.pairs = append(l.pairs, fmt.Sprintf(`{device="%s",pair="%d",channel="%s"}`,
					escapeLabel(s.Name), m, escapeLabel(channel)))
			}
			e.labels[s.Name] = l
		}
		st.labels = append(st.labels, l)
	}
}

// Handler returns the exporter's route table.
func (e *Exporter) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", e.metrics)
	mux.HandleFunc("GET /api/fleet", e.fleetJSON)
	mux.HandleFunc("GET /api/events", e.eventsJSON)
	mux.HandleFunc("GET /api/device/{name}/trace", e.deviceTrace)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /{$}", e.index)
	return mux
}

// index is a minimal landing page linking the endpoints.
func (e *Exporter) index(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<html><head><title>PowerSensor3 fleet</title></head><body>
<h1>PowerSensor3 fleet</h1>
<p>%d stations</p>
<ul>
<li><a href="/metrics">/metrics</a></li>
<li><a href="/api/fleet">/api/fleet</a></li>
<li><a href="/api/events">/api/events</a></li>
<li>/api/device/{name}/trace?format=csv|json&amp;points=N</li>
</ul>
</body></html>
`, e.mgr.Size())
}

// header pre-renders one family's HELP/TYPE comment block.
func header(name, help, typ string) string {
	return "# HELP " + name + " " + help + "\n# TYPE " + name + " " + typ + "\n"
}

// The exposition skeleton, rendered once at package load. Family order is
// fixed so the output stays golden-testable.
var (
	hdrFleetDevices = header("powersensor_fleet_devices",
		"Stations owned by the fleet manager.", "gauge")
	hdrFleetAdopted = header("powersensor_fleet_adopted_total",
		"Stations ever adopted by the fleet manager.", "counter")
	hdrFleetRetired = header("powersensor_fleet_retired_total",
		"Stations ever retired from the fleet manager.", "counter")
	hdrSourceInfo = header("powersensor_source_info",
		"Measurement backend serving each station; always 1.", "gauge")
	hdrSourceRate = header("powersensor_source_rate_hz",
		"Native sample rate of each station's backend, in hertz.", "gauge")
	hdrSourceOverhead = header("powersensor_source_overhead_seconds",
		"Cumulative wall time each station's source spent sampling inside ReadInto, in seconds.", "gauge")
	hdrWatts = header("powersensor_watts",
		"Block-averaged power per measurement channel, in watts.", "gauge")
	hdrBoardWatts = header("powersensor_board_watts",
		"Block-averaged summed board power per station, in watts.", "gauge")
	hdrJoules = header("powersensor_joules_total",
		"Cumulative energy per station since adoption, in joules.", "counter")
	hdrSamples = header("powersensor_samples_total",
		"Sample sets ingested per station, at the source's native rate.", "counter")
	hdrMarks = header("powersensor_marks_total",
		"Time-synced user markers ingested per station.", "counter")
	hdrResyncs = header("powersensor_resyncs_total",
		"Stream bytes skipped to regain protocol alignment.", "counter")
	hdrDropped = header("powersensor_dropped_deliveries_total",
		"Subscriber deliveries dropped on full fan-out channels.", "counter")
	hdrRingPoints = header("powersensor_ring_points",
		"Downsampled points currently buffered per station.", "gauge")
	hdrVirtualSeconds = header("powersensor_device_virtual_seconds",
		"Virtual time of each station's clock, in seconds.", "gauge")

	// Self-telemetry tail families: the system observing itself. These
	// render fresh on every scrape, after (and outside) the cached fleet
	// section.
	hdrSelfIngestFold = header(famIngestFold,
		"Latency of folding one ingest step's batch into the downsample state, fleet-wide, sampled 1-in-32 steps.", "histogram")
	hdrSelfPacing = header(famPacing,
		"How far past its absolute schedule each paced driver slice completed; empty on unpaced fleets.", "histogram")
	hdrSelfStageRead = header(famStageRead,
		"ReadInto latency per derived-source pipeline stage kind, inner source included; stage kinds never run are omitted.", "histogram")
	hdrSelfScrape = header(famScrape,
		"Time to assemble one /metrics body, by serve path (full render vs cached fleet section).", "histogram")
	hdrSelfCacheHits = header("powersensor_self_scrape_cache_hits_total",
		"Scrapes whose fleet section was served from the block-generation body cache.", "counter")
	hdrSelfCacheMisses = header("powersensor_self_scrape_cache_misses_total",
		"Scrapes that re-rendered the fleet section on a cold or stale body cache.", "counter")
	hdrSelfEvents = header("powersensor_self_events_total",
		"Fleet lifecycle events ever recorded (adopt, start, retire, close).", "counter")
	hdrSelfEventsDropped = header("powersensor_self_events_dropped_total",
		"Lifecycle events overwritten after the event ring filled.", "counter")
	hdrSelfRingFill = header("powersensor_self_ring_fill_ratio",
		"Fleet-wide ring occupancy: downsampled points held over total ring capacity.", "gauge")
	hdrBuildInfo = header("powersensor_build_info",
		"Build identity of this daemon; always 1.", "gauge")
	hdrScrapeDuration = header("powersensor_scrape_duration_seconds",
		"Wall time spent rendering this scrape.", "gauge")
)

// Histogram family names. Kept as constants so call sites can form the
// _bucket/_sum/_count series names by constant concatenation — resolved
// at compile time, nothing on the scrape path builds strings.
const (
	famIngestFold = "powersensor_self_ingest_fold_seconds"
	famPacing     = "powersensor_self_pacing_late_seconds"
	famStageRead  = "powersensor_self_stage_read_seconds"
	famScrape     = "powersensor_self_scrape_seconds"
)

// histSeries is the pre-rendered label set of one histogram series: a
// {le="..."} block per bucket (with any extra labels folded in) and the
// plain block the _sum/_count lines carry. Rendered once at package
// load, like the family headers, so scraping a histogram appends cached
// strings and freshly formatted numbers only.
type histSeries struct {
	buckets [obs.NumBuckets]string
	plain   string
}

// newHistSeries pre-renders the series whose extra labels are given as a
// rendered `k="v"` fragment ("" for none).
func newHistSeries(extra string) *histSeries {
	hs := &histSeries{}
	for i := range hs.buckets {
		le := "+Inf"
		if i < obs.NumBuckets-1 {
			le = strconv.FormatFloat(obs.BucketBound(i).Seconds(), 'g', -1, 64)
		}
		if extra == "" {
			hs.buckets[i] = `{le="` + le + `"}`
		} else {
			hs.buckets[i] = `{` + extra + `,le="` + le + `"}`
		}
	}
	if extra != "" {
		hs.plain = `{` + extra + `}`
	}
	return hs
}

var (
	histPlainSeries    = newHistSeries("")
	scrapeRenderSeries = newHistSeries(`path="render"`)
	scrapeCachedSeries = newHistSeries(`path="cached"`)

	// stageSeries is index-aligned with pipeline.ReadHists().
	stageSeries = func() []*histSeries {
		var out []*histSeries
		for _, sh := range pipeline.ReadHists() {
			out = append(out, newHistSeries(`stage="`+escapeLabel(sh.Stage)+`"`))
		}
		return out
	}()

	// buildInfoLine is the one constant sample of powersensor_build_info,
	// rendered once at load from the link-time-stamped version.
	buildInfoLine = "powersensor_build_info{version=\"" + escapeLabel(version.Version) +
		"\",go=\"" + escapeLabel(version.GoVersion()) + "\"} 1\n"
)

// appendHist renders one histogram series in exposition form: cumulative
// _bucket lines (the last is the +Inf bucket, equal to _count by
// construction — see obs.Hist.Snapshot), then _sum and _count. The
// series names are passed pre-joined so this appends only cached strings
// and numbers.
func appendHist(buf []byte, bucketName, sumName, countName string, hs *histSeries, snap *obs.HistSnapshot) []byte {
	var cum uint64
	for i := 0; i < obs.NumBuckets; i++ {
		cum += snap.Buckets[i]
		buf = appendSample(buf, bucketName, hs.buckets[i], float64(cum))
	}
	buf = appendSample(buf, sumName, hs.plain, snap.Sum.Seconds())
	buf = appendSample(buf, countName, hs.plain, float64(snap.Count))
	return buf
}

// appendSample renders one exposition line: name, optional label block,
// value, newline — all appends into the pooled buffer. Integral values
// (most of a scrape: counters, rates, the info gauge) take the integer
// formatter, several times cheaper than shortest-float; both spell
// integers below 1e15 identically, so the output is unchanged.
func appendSample(buf []byte, name, labels string, v float64) []byte {
	buf = append(buf, name...)
	buf = append(buf, labels...)
	buf = append(buf, ' ')
	if i := int64(v); float64(i) == v && (i > -1e15 && i < 1e15) {
		buf = strconv.AppendInt(buf, i, 10)
	} else {
		buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
	}
	return append(buf, '\n')
}

// metrics renders the Prometheus text exposition format: one pass per
// family straight into the pooled buffer, appending cached headers and
// label blocks plus freshly formatted numbers. Families and rows are
// emitted in deterministic order so the output is golden-testable. The
// body has two sections: the snapshot-derived fleet section, which the
// body cache may serve, and the self-telemetry tail (appendSelf), which
// renders fresh on every scrape so the daemon's view of itself never
// goes stale behind its own cache.
func (e *Exporter) metrics(w http.ResponseWriter, _ *http.Request) {
	began := time.Now()
	st := e.scratch.Get().(*scrapeState)
	// Body cache: if no station produced a downsample block and no churn
	// happened since the last render, the previous fleet section is still
	// current (to within one open block) — copy it out under the cache
	// lock, skipping snapshot and render entirely. The copy (into the
	// pooled buffer) keeps the cached bytes immutable under concurrent
	// scrapes, and the response is written only after the lock is
	// released so a slow client cannot stall other scrapers.
	//
	// Cache misses render single-flight: cacheMu stays held across
	// snapshot, render and store. Were two same-generation renders
	// allowed to interleave, the one holding the OLDER snapshot could
	// store last (per-step published cells such as samples and overhead
	// advance without changing Gen), and later cache hits would serve
	// counters below values the fresher render already returned — a
	// counter regression scrapers would read as a reset. Serialising
	// renders makes every stored body at least as fresh as any body
	// served before it; the concurrent scrape that would have rendered a
	// duplicate waits briefly and then usually hits the fresh cache.
	var buf []byte
	cached := false
	if e.cacheOn {
		gen := e.mgr.Gen()
		e.cacheMu.Lock()
		if e.cacheBody != nil && e.cacheGen == gen {
			buf = append(st.buf[:0], e.cacheBody...)
			e.cacheMu.Unlock()
			e.cacheHits.Add(1)
			cached = true
		} else {
			// Miss: cacheMu stays held through snapshot, render and store.
			buf = e.renderFleet(st, gen)
		}
	} else {
		buf = e.renderFleet(st, 0)
	}
	buf = e.appendSelf(buf, &st.hist, began)
	// The scrape records itself after its own tail rendered, so each
	// body's scrape histogram covers every scrape before this one.
	if cached {
		e.cachedHist.Record(time.Since(began))
	} else {
		e.renderHist.Record(time.Since(began))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(buf)
	st.buf = buf
	e.scratch.Put(st)
}

// renderFleet renders the snapshot-derived fleet section into st's
// pooled buffer and, when the body cache is on (the caller then holds
// cacheMu, which this releases), stores the section against gen.
func (e *Exporter) renderFleet(st *scrapeState, gen uint64) []byte {
	// Churn counters load before the snapshot: labelsForAll's cache
	// invalidation depends on this ordering (see its comment), and a
	// scraper diffing adopted-retired against the device count then sees
	// the counters lag — never lead — the list. Retired loads first:
	// adopted only grows and bounds retired at every instant, so reading
	// it second keeps retired <= adopted within one exposition even when
	// churn cycles complete between the two loads.
	retired, adopted := e.mgr.Retired(), e.mgr.Adopted()
	snap := e.mgr.SnapshotInto(st.snap[:0])
	st.snap = snap
	e.labelsForAll(snap, st, retired)
	buf := st.buf[:0]

	buf = append(buf, hdrFleetDevices...)
	buf = appendSample(buf, "powersensor_fleet_devices", "", float64(len(snap)))
	buf = append(buf, hdrFleetAdopted...)
	buf = appendSample(buf, "powersensor_fleet_adopted_total", "", float64(adopted))
	buf = append(buf, hdrFleetRetired...)
	buf = appendSample(buf, "powersensor_fleet_retired_total", "", float64(retired))
	buf = append(buf, hdrSourceInfo...)
	for i := range snap {
		buf = appendSample(buf, "powersensor_source_info", st.labels[i].info, 1)
	}
	buf = append(buf, hdrSourceRate...)
	for i := range snap {
		buf = appendSample(buf, "powersensor_source_rate_hz", st.labels[i].dev, snap[i].RateHz)
	}
	buf = append(buf, hdrSourceOverhead...)
	for i := range snap {
		buf = appendSample(buf, "powersensor_source_overhead_seconds", st.labels[i].dev, snap[i].OverheadSeconds)
	}
	buf = append(buf, hdrWatts...)
	for i := range snap {
		for m, watts := range snap[i].PairWatts {
			buf = appendSample(buf, "powersensor_watts", st.labels[i].pairs[m], watts)
		}
	}
	buf = append(buf, hdrBoardWatts...)
	for i := range snap {
		buf = appendSample(buf, "powersensor_board_watts", st.labels[i].dev, snap[i].Watts)
	}
	buf = append(buf, hdrJoules...)
	for i := range snap {
		buf = appendSample(buf, "powersensor_joules_total", st.labels[i].dev, snap[i].Joules)
	}
	buf = append(buf, hdrSamples...)
	for i := range snap {
		buf = appendSample(buf, "powersensor_samples_total", st.labels[i].dev, float64(snap[i].Samples))
	}
	buf = append(buf, hdrMarks...)
	for i := range snap {
		buf = appendSample(buf, "powersensor_marks_total", st.labels[i].dev, float64(snap[i].Marks))
	}
	buf = append(buf, hdrResyncs...)
	for i := range snap {
		buf = appendSample(buf, "powersensor_resyncs_total", st.labels[i].dev, float64(snap[i].Resyncs))
	}
	buf = append(buf, hdrDropped...)
	for i := range snap {
		buf = appendSample(buf, "powersensor_dropped_deliveries_total", st.labels[i].dev, float64(snap[i].Dropped))
	}
	buf = append(buf, hdrRingPoints...)
	for i := range snap {
		buf = appendSample(buf, "powersensor_ring_points", st.labels[i].dev, float64(snap[i].RingLen))
	}
	buf = append(buf, hdrVirtualSeconds...)
	for i := range snap {
		buf = appendSample(buf, "powersensor_device_virtual_seconds", st.labels[i].dev, snap[i].Now.Seconds())
	}

	if e.cacheOn {
		// Store against the generation loaded before the snapshot (still
		// under the render lock): if a block landed mid-render the stored
		// generation is already stale and the next scrape re-renders —
		// the conservative direction.
		e.cacheBody = append(e.cacheBody[:0], buf...)
		e.cacheGen = gen
		e.cacheMu.Unlock()
		e.cacheMisses.Add(1)
	}
	return buf
}

// appendSelf renders the self-telemetry tail — fresh on every scrape,
// never cached. Everything here reads atomic cells (histogram buckets,
// counters, the devices' published ring lengths): no manager lock, no
// ingest mutex, no allocation beyond the buffer's own growth, so the
// tail keeps both the cache-hit fast path and the lock-freedom of the
// scrape intact. hs is the scrape's pooled snapshot scratch.
func (e *Exporter) appendSelf(buf []byte, hs *obs.HistSnapshot, began time.Time) []byte {
	buf = append(buf, hdrSelfIngestFold...)
	e.mgr.IngestFoldHist().Snapshot(hs)
	buf = appendHist(buf, famIngestFold+"_bucket", famIngestFold+"_sum", famIngestFold+"_count", histPlainSeries, hs)
	buf = append(buf, hdrSelfPacing...)
	e.mgr.PaceLatenessHist().Snapshot(hs)
	buf = appendHist(buf, famPacing+"_bucket", famPacing+"_sum", famPacing+"_count", histPlainSeries, hs)
	// Stage histograms are process-wide; a stage kind no source in this
	// process ever ran would render as an all-zero distribution, so those
	// are omitted rather than claiming an empty measurement.
	buf = append(buf, hdrSelfStageRead...)
	for i, sh := range pipeline.ReadHists() {
		sh.Hist.Snapshot(hs)
		if hs.Count == 0 {
			continue
		}
		buf = appendHist(buf, famStageRead+"_bucket", famStageRead+"_sum", famStageRead+"_count", stageSeries[i], hs)
	}
	buf = append(buf, hdrSelfScrape...)
	e.renderHist.Snapshot(hs)
	buf = appendHist(buf, famScrape+"_bucket", famScrape+"_sum", famScrape+"_count", scrapeRenderSeries, hs)
	e.cachedHist.Snapshot(hs)
	buf = appendHist(buf, famScrape+"_bucket", famScrape+"_sum", famScrape+"_count", scrapeCachedSeries, hs)
	buf = append(buf, hdrSelfCacheHits...)
	buf = appendSample(buf, "powersensor_self_scrape_cache_hits_total", "", float64(e.cacheHits.Load()))
	buf = append(buf, hdrSelfCacheMisses...)
	buf = appendSample(buf, "powersensor_self_scrape_cache_misses_total", "", float64(e.cacheMisses.Load()))
	ev := e.mgr.Events()
	buf = append(buf, hdrSelfEvents...)
	buf = appendSample(buf, "powersensor_self_events_total", "", float64(ev.Total()))
	buf = append(buf, hdrSelfEventsDropped...)
	buf = appendSample(buf, "powersensor_self_events_dropped_total", "", float64(ev.Dropped()))
	buf = append(buf, hdrSelfRingFill...)
	held, capacity := e.mgr.RingOccupancy()
	ratio := 0.0
	if capacity > 0 {
		ratio = float64(held) / float64(capacity)
	}
	buf = appendSample(buf, "powersensor_self_ring_fill_ratio", "", ratio)
	buf = append(buf, hdrBuildInfo...)
	buf = append(buf, buildInfoLine...)
	buf = append(buf, hdrScrapeDuration...)
	buf = appendSample(buf, "powersensor_scrape_duration_seconds", "", time.Since(began).Seconds())
	return buf
}

// labelEscaper escapes label values per the exposition format.
var labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	return labelEscaper.Replace(s)
}

// fleetSnapshot is the /api/fleet response body.
type fleetSnapshot struct {
	Devices []fleet.Status `json:"devices"`
}

func (e *Exporter) fleetJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(fleetSnapshot{Devices: e.mgr.Snapshot()})
}

// eventLog is the /api/events response body: the most recent lifecycle
// events oldest-first, plus the ring's lifetime totals. A gap between
// total and len(events) (or a first seq above dropped+1) means older
// events were overwritten.
type eventLog struct {
	Total   uint64      `json:"total"`
	Dropped uint64      `json:"dropped"`
	Events  []obs.Event `json:"events"`
}

// eventsJSON serves the tail of the fleet's lifecycle event ring. ?n=N
// caps the tail at the N most recent events (default 100, at most the
// ring's capacity).
func (e *Exporter) eventsJSON(w http.ResponseWriter, r *http.Request) {
	max := 100
	if s := r.URL.Query().Get("n"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			http.Error(w, fmt.Sprintf("bad n=%q (want a positive count)", s),
				http.StatusBadRequest)
			return
		}
		max = n
	}
	ring := e.mgr.Events()
	events := ring.Tail(max)
	if events == nil {
		events = []obs.Event{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(eventLog{Total: ring.Total(), Dropped: ring.Dropped(), Events: events})
}

// deviceTrace serves the recent downsampled trace of one station.
func (e *Exporter) deviceTrace(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	d := e.mgr.Device(name)
	if d == nil {
		http.Error(w, fmt.Sprintf("unknown device %q (have %s)",
			name, strings.Join(e.mgr.Names(), ", ")), http.StatusNotFound)
		return
	}
	max := 0
	if s := r.URL.Query().Get("points"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			http.Error(w, fmt.Sprintf("bad points=%q (want a positive count)", s),
				http.StatusBadRequest)
			return
		}
		max = n
	}
	tr := d.Trace(max)
	switch format := r.URL.Query().Get("format"); format {
	case "", "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=%s.csv", sanitizeFilename(name)))
		if err := tr.WriteCSV(w); err != nil {
			// Headers are gone; nothing useful to do but note it.
			return
		}
	case "json":
		w.Header().Set("Content-Type", "application/json")
		_ = tr.WriteJSON(w)
	default:
		http.Error(w, fmt.Sprintf("bad format=%q (want csv or json)", format),
			http.StatusBadRequest)
	}
}

// sanitizeFilename keeps the download filename header safe.
func sanitizeFilename(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}
