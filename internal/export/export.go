// Package export serves a fleet.Manager over HTTP: a Prometheus-style
// text exposition endpoint for scrapers, a JSON snapshot API for
// dashboards, and per-station trace downloads reusing the trace package's
// CSV/JSON writers. It is the observability surface of the fleet subsystem
// — modeled on standalone hardware exporters, but with no dependency
// beyond the standard library.
//
// Endpoints (all GET):
//
//	/metrics                      Prometheus text exposition (version 0.0.4)
//	/api/fleet                    JSON status of every station
//	/api/device/{name}/trace      recent downsampled trace; ?format=csv|json
//	                              (default csv), ?points=N caps the length
//	/healthz                      liveness probe
package export

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/fleet"
)

// Exporter renders a fleet.Manager over HTTP.
type Exporter struct {
	mgr *fleet.Manager

	// labelMu guards labels, a per-device cache of rendered exposition
	// label blocks. Device names, backends, kinds and channel labels are
	// immutable for the life of a manager, so each block is escaped and
	// formatted once instead of on every scrape — the scrape hot path
	// then only appends numbers.
	labelMu sync.Mutex
	labels  map[string]*devLabels
}

// devLabels is the pre-rendered label set of one station.
type devLabels struct {
	dev   string   // {device="X"}
	info  string   // {device="X",backend="B",kind="K"}
	pairs []string // {device="X",pair="0",channel="C"} per channel
}

// New returns an exporter over mgr.
func New(mgr *fleet.Manager) *Exporter {
	return &Exporter{mgr: mgr, labels: make(map[string]*devLabels)}
}

// labelsFor returns the cached rendered labels for st, building them on
// first sight of the device.
func (e *Exporter) labelsFor(st fleet.Status) *devLabels {
	e.labelMu.Lock()
	defer e.labelMu.Unlock()
	if l, ok := e.labels[st.Name]; ok {
		return l
	}
	l := &devLabels{
		dev: fmt.Sprintf(`{device="%s"}`, escapeLabel(st.Name)),
		info: fmt.Sprintf(`{device="%s",backend="%s",kind="%s"}`,
			escapeLabel(st.Name), escapeLabel(st.Backend), escapeLabel(st.Kind)),
	}
	for m := 0; m < st.Pairs; m++ {
		channel := fmt.Sprintf("pair%d", m)
		if m < len(st.Channels) {
			channel = st.Channels[m]
		}
		l.pairs = append(l.pairs, fmt.Sprintf(`{device="%s",pair="%d",channel="%s"}`,
			escapeLabel(st.Name), m, escapeLabel(channel)))
	}
	e.labels[st.Name] = l
	return l
}

// Handler returns the exporter's route table.
func (e *Exporter) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", e.metrics)
	mux.HandleFunc("GET /api/fleet", e.fleetJSON)
	mux.HandleFunc("GET /api/device/{name}/trace", e.deviceTrace)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /{$}", e.index)
	return mux
}

// index is a minimal landing page linking the endpoints.
func (e *Exporter) index(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<html><head><title>PowerSensor3 fleet</title></head><body>
<h1>PowerSensor3 fleet</h1>
<p>%d stations</p>
<ul>
<li><a href="/metrics">/metrics</a></li>
<li><a href="/api/fleet">/api/fleet</a></li>
<li>/api/device/{name}/trace?format=csv|json&amp;points=N</li>
</ul>
</body></html>
`, e.mgr.Size())
}

// family is one Prometheus metric family rendered by the scrape.
type family struct {
	name string
	help string
	typ  string // gauge or counter
	rows []row
}

type row struct {
	labels string // rendered {..} block, may be empty
	value  float64
}

// metrics renders the Prometheus text exposition format. Families and rows
// are emitted in deterministic order so the output is golden-testable.
func (e *Exporter) metrics(w http.ResponseWriter, _ *http.Request) {
	began := time.Now()
	snap := e.mgr.Snapshot()

	families := []family{
		{name: "powersensor_fleet_devices", typ: "gauge",
			help: "Stations owned by the fleet manager.",
			rows: []row{{value: float64(len(snap))}}},
		{name: "powersensor_source_info", typ: "gauge",
			help: "Measurement backend serving each station; always 1."},
		{name: "powersensor_source_rate_hz", typ: "gauge",
			help: "Native sample rate of each station's backend, in hertz."},
		{name: "powersensor_watts", typ: "gauge",
			help: "Block-averaged power per measurement channel, in watts."},
		{name: "powersensor_board_watts", typ: "gauge",
			help: "Block-averaged summed board power per station, in watts."},
		{name: "powersensor_joules_total", typ: "counter",
			help: "Cumulative energy per station since adoption, in joules."},
		{name: "powersensor_samples_total", typ: "counter",
			help: "Sample sets ingested per station, at the source's native rate."},
		{name: "powersensor_resyncs_total", typ: "counter",
			help: "Stream bytes skipped to regain protocol alignment."},
		{name: "powersensor_dropped_deliveries_total", typ: "counter",
			help: "Subscriber deliveries dropped on full fan-out channels."},
		{name: "powersensor_ring_points", typ: "gauge",
			help: "Downsampled points currently buffered per station."},
		{name: "powersensor_device_virtual_seconds", typ: "gauge",
			help: "Virtual time of each station's clock, in seconds."},
	}
	byName := make(map[string]*family, len(families))
	for i := range families {
		byName[families[i].name] = &families[i]
	}
	add := func(fam, labels string, v float64) {
		f := byName[fam]
		f.rows = append(f.rows, row{labels: labels, value: v})
	}
	for _, st := range snap {
		l := e.labelsFor(st)
		add("powersensor_source_info", l.info, 1)
		add("powersensor_source_rate_hz", l.dev, st.RateHz)
		for m, watts := range st.PairWatts {
			add("powersensor_watts", l.pairs[m], watts)
		}
		add("powersensor_board_watts", l.dev, st.Watts)
		add("powersensor_joules_total", l.dev, st.Joules)
		add("powersensor_samples_total", l.dev, float64(st.Samples))
		add("powersensor_resyncs_total", l.dev, float64(st.Resyncs))
		add("powersensor_dropped_deliveries_total", l.dev, float64(st.Dropped))
		add("powersensor_ring_points", l.dev, float64(st.RingLen))
		add("powersensor_device_virtual_seconds", l.dev, st.Now.Seconds())
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	var num []byte // reused strconv scratch
	value := func(v float64) {
		num = strconv.AppendFloat(num[:0], v, 'g', -1, 64)
		b.Write(num)
		b.WriteByte('\n')
	}
	for _, f := range families {
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.help)
		b.WriteString("\n# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.typ)
		b.WriteByte('\n')
		for _, r := range f.rows {
			b.WriteString(f.name)
			b.WriteString(r.labels)
			b.WriteByte(' ')
			value(r.value)
		}
	}
	b.WriteString("# HELP powersensor_scrape_duration_seconds Wall time spent rendering this scrape.\n")
	b.WriteString("# TYPE powersensor_scrape_duration_seconds gauge\n")
	b.WriteString("powersensor_scrape_duration_seconds ")
	value(time.Since(began).Seconds())
	// io.WriteString reaches http.ResponseWriter's WriteString, avoiding
	// a full copy of the rendered body.
	_, _ = io.WriteString(w, b.String())
}

// labelEscaper escapes label values per the exposition format.
var labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	return labelEscaper.Replace(s)
}

// fleetSnapshot is the /api/fleet response body.
type fleetSnapshot struct {
	Devices []fleet.Status `json:"devices"`
}

func (e *Exporter) fleetJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(fleetSnapshot{Devices: e.mgr.Snapshot()})
}

// deviceTrace serves the recent downsampled trace of one station.
func (e *Exporter) deviceTrace(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	d := e.mgr.Device(name)
	if d == nil {
		http.Error(w, fmt.Sprintf("unknown device %q (have %s)",
			name, strings.Join(e.mgr.Names(), ", ")), http.StatusNotFound)
		return
	}
	max := 0
	if s := r.URL.Query().Get("points"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			http.Error(w, fmt.Sprintf("bad points=%q (want a positive count)", s),
				http.StatusBadRequest)
			return
		}
		max = n
	}
	tr := d.Trace(max)
	switch format := r.URL.Query().Get("format"); format {
	case "", "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=%s.csv", sanitizeFilename(name)))
		if err := tr.WriteCSV(w); err != nil {
			// Headers are gone; nothing useful to do but note it.
			return
		}
	case "json":
		w.Header().Set("Content-Type", "application/json")
		_ = tr.WriteJSON(w)
	default:
		http.Error(w, fmt.Sprintf("bad format=%q (want csv or json)", format),
			http.StatusBadRequest)
	}
}

// sanitizeFilename keeps the download filename header safe.
func sanitizeFilename(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}
