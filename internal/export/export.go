// Package export serves a fleet.Manager over HTTP: a Prometheus-style
// text exposition endpoint for scrapers, a JSON snapshot API for
// dashboards, and per-station trace downloads reusing the trace package's
// CSV/JSON writers. It is the observability surface of the fleet subsystem
// — modeled on standalone hardware exporters, but with no dependency
// beyond the standard library.
//
// Endpoints (all GET):
//
//	/metrics                      Prometheus text exposition (version 0.0.4)
//	/api/fleet                    JSON status of every station
//	/api/device/{name}/trace      recent downsampled trace; ?format=csv|json
//	                              (default csv), ?points=N caps the length
//	/healthz                      liveness probe
package export

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/fleet"
)

// Exporter renders a fleet.Manager over HTTP.
type Exporter struct {
	mgr *fleet.Manager
}

// New returns an exporter over mgr.
func New(mgr *fleet.Manager) *Exporter { return &Exporter{mgr: mgr} }

// Handler returns the exporter's route table.
func (e *Exporter) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", e.metrics)
	mux.HandleFunc("GET /api/fleet", e.fleetJSON)
	mux.HandleFunc("GET /api/device/{name}/trace", e.deviceTrace)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /{$}", e.index)
	return mux
}

// index is a minimal landing page linking the endpoints.
func (e *Exporter) index(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<html><head><title>PowerSensor3 fleet</title></head><body>
<h1>PowerSensor3 fleet</h1>
<p>%d stations</p>
<ul>
<li><a href="/metrics">/metrics</a></li>
<li><a href="/api/fleet">/api/fleet</a></li>
<li>/api/device/{name}/trace?format=csv|json&amp;points=N</li>
</ul>
</body></html>
`, e.mgr.Size())
}

// family is one Prometheus metric family rendered by the scrape.
type family struct {
	name string
	help string
	typ  string // gauge or counter
	rows []row
}

type row struct {
	labels string // rendered {..} block, may be empty
	value  float64
}

// metrics renders the Prometheus text exposition format. Families and rows
// are emitted in deterministic order so the output is golden-testable.
func (e *Exporter) metrics(w http.ResponseWriter, _ *http.Request) {
	began := time.Now()
	snap := e.mgr.Snapshot()

	dev := func(name string) string {
		return fmt.Sprintf(`{device="%s"}`, escapeLabel(name))
	}
	families := []family{
		{name: "powersensor_fleet_devices", typ: "gauge",
			help: "Stations owned by the fleet manager.",
			rows: []row{{value: float64(len(snap))}}},
		{name: "powersensor_watts", typ: "gauge",
			help: "Block-averaged power per sensor pair, in watts."},
		{name: "powersensor_board_watts", typ: "gauge",
			help: "Block-averaged summed board power per station, in watts."},
		{name: "powersensor_joules_total", typ: "counter",
			help: "Cumulative energy per station since adoption, in joules."},
		{name: "powersensor_samples_total", typ: "counter",
			help: "20 kHz sample sets ingested per station."},
		{name: "powersensor_resyncs_total", typ: "counter",
			help: "Stream bytes skipped to regain protocol alignment."},
		{name: "powersensor_dropped_deliveries_total", typ: "counter",
			help: "Subscriber deliveries dropped on full fan-out channels."},
		{name: "powersensor_ring_points", typ: "gauge",
			help: "Downsampled points currently buffered per station."},
		{name: "powersensor_device_virtual_seconds", typ: "gauge",
			help: "Virtual time of each station's clock, in seconds."},
	}
	byName := make(map[string]*family, len(families))
	for i := range families {
		byName[families[i].name] = &families[i]
	}
	add := func(fam, labels string, v float64) {
		f := byName[fam]
		f.rows = append(f.rows, row{labels: labels, value: v})
	}
	for _, st := range snap {
		for m, w := range st.PairWatts {
			add("powersensor_watts",
				fmt.Sprintf(`{device="%s",pair="%d"}`, escapeLabel(st.Name), m), w)
		}
		add("powersensor_board_watts", dev(st.Name), st.Watts)
		add("powersensor_joules_total", dev(st.Name), st.Joules)
		add("powersensor_samples_total", dev(st.Name), float64(st.Samples))
		add("powersensor_resyncs_total", dev(st.Name), float64(st.Resyncs))
		add("powersensor_dropped_deliveries_total", dev(st.Name), float64(st.Dropped))
		add("powersensor_ring_points", dev(st.Name), float64(st.RingLen))
		add("powersensor_device_virtual_seconds", dev(st.Name), st.Now.Seconds())
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	for _, f := range families {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, r := range f.rows {
			fmt.Fprintf(&b, "%s%s %s\n", f.name, r.labels, formatValue(r.value))
		}
	}
	fmt.Fprintf(&b, "# HELP powersensor_scrape_duration_seconds Wall time spent rendering this scrape.\n")
	fmt.Fprintf(&b, "# TYPE powersensor_scrape_duration_seconds gauge\n")
	fmt.Fprintf(&b, "powersensor_scrape_duration_seconds %s\n",
		formatValue(time.Since(began).Seconds()))
	_, _ = w.Write([]byte(b.String()))
}

// formatValue renders a sample value the way Prometheus clients do:
// shortest round-trippable float.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelEscaper escapes label values per the exposition format.
var labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	return labelEscaper.Replace(s)
}

// fleetSnapshot is the /api/fleet response body.
type fleetSnapshot struct {
	Devices []fleet.Status `json:"devices"`
}

func (e *Exporter) fleetJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(fleetSnapshot{Devices: e.mgr.Snapshot()})
}

// deviceTrace serves the recent downsampled trace of one station.
func (e *Exporter) deviceTrace(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	d := e.mgr.Device(name)
	if d == nil {
		http.Error(w, fmt.Sprintf("unknown device %q (have %s)",
			name, strings.Join(e.mgr.Names(), ", ")), http.StatusNotFound)
		return
	}
	max := 0
	if s := r.URL.Query().Get("points"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			http.Error(w, fmt.Sprintf("bad points=%q (want a positive count)", s),
				http.StatusBadRequest)
			return
		}
		max = n
	}
	tr := d.Trace(max)
	switch format := r.URL.Query().Get("format"); format {
	case "", "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=%s.csv", sanitizeFilename(name)))
		if err := tr.WriteCSV(w); err != nil {
			// Headers are gone; nothing useful to do but note it.
			return
		}
	case "json":
		w.Header().Set("Content-Type", "application/json")
		_ = tr.WriteJSON(w)
	default:
		http.Error(w, fmt.Sprintf("bad format=%q (want csv or json)", format),
			http.StatusBadRequest)
	}
}

// sanitizeFilename keeps the download filename header safe.
func sanitizeFilename(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}
